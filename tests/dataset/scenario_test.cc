#include "src/dataset/scenario.h"

#include <algorithm>
#include <fstream>
#include <limits>
#include <set>

#include "gtest/gtest.h"
#include "src/dataset/registry.h"
#include "src/dataset/workloads.h"
#include "tests/testing/test_util.h"

namespace linbp {
namespace dataset {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

// ---- Spec parsing -------------------------------------------------------

TEST(ScenarioSpecTest, ParsesNameAndParams) {
  std::string error;
  auto parsed = ParseScenarioSpec("sbm:n=100,k=4,mode=heterophily", &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->name, "sbm");
  EXPECT_EQ(parsed->params.Int("n", 0), 100);
  EXPECT_EQ(parsed->params.Int("k", 0), 4);
  EXPECT_EQ(parsed->params.Str("mode", ""), "heterophily");
  EXPECT_TRUE(parsed->params.UnconsumedKeys().empty());
}

TEST(ScenarioSpecTest, BareNameHasNoParams) {
  std::string error;
  auto parsed = ParseScenarioSpec("dblp", &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->name, "dblp");
  EXPECT_EQ(parsed->params.Int("whatever", 7), 7);
}

TEST(ScenarioSpecTest, RejectsMalformedSpecs) {
  std::string error;
  EXPECT_FALSE(ParseScenarioSpec("", &error).has_value());
  EXPECT_FALSE(ParseScenarioSpec(":n=3", &error).has_value());
  EXPECT_FALSE(ParseScenarioSpec("sbm:n", &error).has_value());
  EXPECT_NE(error.find("key=value"), std::string::npos);
  EXPECT_FALSE(ParseScenarioSpec("sbm:=3", &error).has_value());
  EXPECT_FALSE(ParseScenarioSpec("sbm:n=1,n=2", &error).has_value());
  EXPECT_NE(error.find("duplicate"), std::string::npos);
}

TEST(ScenarioSpecTest, TracksUnconsumedKeysAndValueErrors) {
  std::string error;
  auto parsed = ParseScenarioSpec("x:a=1,b=2", &error);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->params.Int("a", 0), 1);
  const std::vector<std::string> unconsumed =
      parsed->params.UnconsumedKeys();
  ASSERT_EQ(unconsumed.size(), 1u);
  EXPECT_EQ(unconsumed[0], "b");

  auto bad = ParseScenarioSpec("x:n=abc", &error);
  ASSERT_TRUE(bad.has_value());
  EXPECT_EQ(bad->params.Int("n", 5), 5);
  EXPECT_NE(bad->params.value_error().find("expects an integer"),
            std::string::npos);
}

TEST(ScenarioSpecTest, IntRejectsFractions) {
  std::string error;
  auto parsed = ParseScenarioSpec("x:n=1.5", &error);
  ASSERT_TRUE(parsed.has_value());
  parsed->params.Int("n", 0);
  EXPECT_FALSE(parsed->params.value_error().empty());
}

TEST(ScenarioSpecTest, IntParsesLargeValuesExactly) {
  // Above 2^53 a double round trip would silently round: 2^53 + 1 used
  // to come back as 2^53. The strtoll path is exact over all of int64.
  std::string error;
  auto parsed = ParseScenarioSpec(
      "x:a=9007199254740993,b=9223372036854775807,c=-9223372036854775808",
      &error);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->params.Int("a", 0), 9007199254740993LL);
  EXPECT_EQ(parsed->params.Int("b", 0),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(parsed->params.Int("c", 0),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_TRUE(parsed->params.value_error().empty())
      << parsed->params.value_error();
}

TEST(ScenarioSpecTest, IntRejectsOutOfRangeInsteadOfCastingUndefined) {
  // 2^63 overflows int64: the old strtod path invoked UB casting it
  // back. It must land on the value_error path instead.
  std::string error;
  auto parsed = ParseScenarioSpec("x:n=9223372036854775808", &error);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->params.Int("n", 7), 7);
  EXPECT_NE(parsed->params.value_error().find("out of int64 range"),
            std::string::npos)
      << parsed->params.value_error();
}

TEST(ScenarioSpecTest, IntScientificNotationIsExactOrRejected) {
  std::string error;
  auto parsed = ParseScenarioSpec("x:ok=1e6,big=1e20", &error);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->params.Int("ok", 0), 1000000);
  EXPECT_TRUE(parsed->params.value_error().empty());
  // 1e20 is an integer but beyond both int64 and the exact double range;
  // the old code cast it to int64 (undefined behavior).
  EXPECT_EQ(parsed->params.Int("big", 3), 3);
  EXPECT_NE(parsed->params.value_error().find("out of"), std::string::npos)
      << parsed->params.value_error();
}

// ---- Registry -----------------------------------------------------------

TEST(RegistryTest, ListsAtLeastTheBuiltins) {
  std::set<std::string> names;
  for (const ScenarioInfo& info : ListScenarios()) names.insert(info.name);
  for (const char* expected : {"sbm", "rmat", "fraud", "dblp", "kronecker",
                               "file", "snap"}) {
    EXPECT_TRUE(names.count(expected)) << expected;
  }
  EXPECT_GE(names.size(), 6u);
}

TEST(RegistryTest, RejectsUnknownScenarioAndParameters) {
  std::string error;
  EXPECT_FALSE(MakeScenario("warp-drive", &error).has_value());
  EXPECT_NE(error.find("unknown scenario"), std::string::npos);
  EXPECT_NE(error.find("sbm"), std::string::npos);  // lists known names

  EXPECT_FALSE(MakeScenario("sbm:n=100,pine=3", &error).has_value());
  EXPECT_NE(error.find("unknown parameter 'pine'"), std::string::npos);

  EXPECT_FALSE(MakeScenario("sbm:n=abc", &error).has_value());
  EXPECT_NE(error.find("expects an integer"), std::string::npos);
}

// A malformed spec value must come back as an error, never reach a
// generator's LINBP_CHECK and abort the process.
TEST(RegistryTest, OutOfRangeParameterValuesErrorInsteadOfAborting) {
  for (const char* spec :
       {"sbm:deg=0", "sbm:deg=-3", "sbm:labeled=2", "sbm:belief=0",
        "sbm:strength=0", "sbm:n=999999999999", "rmat:ef=0",
        "rmat:labeled=-0.1", "fraud:reviews=0", "fraud:camouflage=2",
        "kronecker:labeled=2", "kronecker:extra-digits=99",
        "dblp:labeled=0.9"}) {
    std::string error;
    EXPECT_FALSE(MakeScenario(spec, &error).has_value()) << spec;
    EXPECT_FALSE(error.empty()) << spec;
  }
}

TEST(RegistryTest, CustomScenarioRegistersAndRuns) {
  RegisterScenario(
      {"tiny-path", "a 3-node path for tests", "strength=0.2"},
      [](ScenarioParams& params, const exec::ExecContext&,
         std::string*) -> std::optional<Scenario> {
        const double strength = params.Double("strength", 0.2);
        Scenario scenario;
        scenario.graph = Graph(3, {{0, 1, 1.0}, {1, 2, 1.0}});
        scenario.k = 2;
        scenario.coupling_residual =
            UniformHomophilyCoupling(2, strength).residual();
        scenario.ground_truth = {0, 0, 1};
        RevealGroundTruth(1.0, 0.5, 1, &scenario);
        return scenario;
      });
  std::string error;
  auto scenario = MakeScenario("tiny-path:strength=0.1", &error);
  ASSERT_TRUE(scenario.has_value()) << error;
  EXPECT_EQ(scenario->name, "tiny-path");
  EXPECT_EQ(scenario->spec, "tiny-path:strength=0.1");
  EXPECT_EQ(scenario->graph.num_nodes(), 3);
  EXPECT_EQ(scenario->explicit_nodes.size(), 3u);
}

// ---- Workload invariants ------------------------------------------------

// Every built-in synthetic scenario must materialize consistently: shapes
// line up, explicit nodes are sorted with nonzero belief rows, ground
// truth (when present) covers the graph, and the coupling validates.
TEST(BuiltinScenarioTest, AllMaterializeConsistently) {
  const std::vector<std::string> specs = {
      "sbm:n=200,k=4,deg=6,seed=2",
      "sbm:n=200,k=2,deg=6,mode=heterophily,seed=2",
      "rmat:scale=8,ef=4,k=3,seed=2",
      "fraud:users=120,products=60,seed=2",
      "dblp:papers=150,authors=160,conferences=6,terms=80,seed=2",
      "kronecker:g=1,seed=2",
  };
  for (const std::string& spec : specs) {
    std::string error;
    auto scenario = MakeScenario(spec, &error);
    ASSERT_TRUE(scenario.has_value()) << spec << ": " << error;
    const std::int64_t n = scenario->graph.num_nodes();
    EXPECT_GT(n, 0) << spec;
    EXPECT_GT(scenario->graph.num_undirected_edges(), 0) << spec;
    EXPECT_GE(scenario->k, 2) << spec;
    EXPECT_EQ(scenario->explicit_residuals.rows(), n) << spec;
    EXPECT_EQ(scenario->explicit_residuals.cols(), scenario->k) << spec;
    ASSERT_FALSE(scenario->explicit_nodes.empty()) << spec;
    EXPECT_TRUE(std::is_sorted(scenario->explicit_nodes.begin(),
                               scenario->explicit_nodes.end()))
        << spec;
    for (const std::int64_t v : scenario->explicit_nodes) {
      ASSERT_GE(v, 0) << spec;
      ASSERT_LT(v, n) << spec;
      double magnitude = 0.0;
      double row_sum = 0.0;
      for (std::int64_t c = 0; c < scenario->k; ++c) {
        magnitude += std::abs(scenario->explicit_residuals.At(v, c));
        row_sum += scenario->explicit_residuals.At(v, c);
      }
      EXPECT_GT(magnitude, 0.0) << spec << " node " << v;
      EXPECT_NEAR(row_sum, 0.0, 1e-12) << spec << " node " << v;
    }
    if (scenario->HasGroundTruth()) {
      ASSERT_EQ(static_cast<std::int64_t>(scenario->ground_truth.size()), n)
          << spec;
      for (const int cls : scenario->ground_truth) {
        EXPECT_GE(cls, -1) << spec;
        EXPECT_LT(cls, scenario->k) << spec;
      }
      EXPECT_GT(scenario->NumGroundTruthNodes(), 0) << spec;
    }
    // Coupling() aborts on an invalid residual; reaching here proves it.
    EXPECT_EQ(scenario->Coupling().k(), scenario->k) << spec;
  }
}

TEST(SbmWorkloadTest, HomophilyEdgesStayInClass) {
  const LabeledGraph lg = SbmGraph(300, 3, 6.0, 1.0, /*seed=*/5);
  EXPECT_EQ(lg.graph.num_nodes(), 300);
  for (const Edge& e : lg.graph.edges()) {
    EXPECT_EQ(lg.labels[e.u], lg.labels[e.v]);
  }
}

TEST(SbmWorkloadTest, HeterophilyEdgesCrossClasses) {
  const LabeledGraph lg = SbmGraph(300, 3, 6.0, 0.0, /*seed=*/5);
  for (const Edge& e : lg.graph.edges()) {
    EXPECT_NE(lg.labels[e.u], lg.labels[e.v]);
  }
}

TEST(SbmWorkloadTest, CouplingSignTracksMode) {
  std::string error;
  auto homophily = MakeScenario("sbm:n=100,k=4,seed=1", &error);
  auto heterophily =
      MakeScenario("sbm:n=100,k=4,mode=heterophily,seed=1", &error);
  ASSERT_TRUE(homophily.has_value() && heterophily.has_value()) << error;
  EXPECT_GT(homophily->coupling_residual.At(0, 0), 0.0);
  EXPECT_LT(heterophily->coupling_residual.At(0, 0), 0.0);
  // The heterophily residual is the negated homophily residual.
  testing::ExpectMatrixNear(
      heterophily->coupling_residual,
      homophily->coupling_residual.Scale(-1.0), 1e-15);
}

TEST(RmatWorkloadTest, PlantsVoronoiLabels) {
  const LabeledGraph lg =
      RmatGraph(/*scale=*/9, /*edge_factor=*/6.0, /*k=*/3, 0.57, 0.19, 0.19,
                /*seed=*/4);
  EXPECT_EQ(lg.graph.num_nodes(), 512);
  EXPECT_GT(lg.graph.num_undirected_edges(), 512);
  std::set<int> classes;
  std::int64_t labeled = 0;
  for (std::int64_t v = 0; v < lg.graph.num_nodes(); ++v) {
    if (lg.labels[v] >= 0) {
      ++labeled;
      classes.insert(lg.labels[v]);
      EXPECT_GT(lg.graph.Degree(v), 0) << v;  // isolated nodes stay -1
    }
  }
  EXPECT_GT(labeled, lg.graph.num_nodes() / 4);
  EXPECT_GE(classes.size(), 2u);
}

TEST(RmatWorkloadTest, DegreesAreSkewed) {
  const LabeledGraph lg =
      RmatGraph(/*scale=*/10, /*edge_factor=*/8.0, /*k=*/3, 0.57, 0.19,
                0.19, /*seed=*/4);
  std::int64_t max_degree = 0;
  for (std::int64_t v = 0; v < lg.graph.num_nodes(); ++v) {
    max_degree = std::max(max_degree, lg.graph.Degree(v));
  }
  // A power-law hub dwarfs the average degree (2 * ef = 16).
  EXPECT_GT(max_degree, 64);
}

TEST(FraudWorkloadTest, IsBipartiteWithAuctionRoles) {
  const std::int64_t users = 150;
  const std::int64_t products = 80;
  const LabeledGraph lg = FraudBipartiteGraph(users, products, 0.2, 0.15,
                                              4.0, 0.1, /*seed=*/9);
  EXPECT_EQ(lg.graph.num_nodes(), users + products);
  // Bipartite: every edge connects a user to a product.
  for (const Edge& e : lg.graph.edges()) {
    const bool u_is_user = e.u < users;
    const bool v_is_user = e.v < users;
    EXPECT_NE(u_is_user, v_is_user);
  }
  // All three roles are present, and only products carry the shill role.
  std::set<int> user_roles;
  std::set<int> product_roles;
  for (std::int64_t v = 0; v < lg.graph.num_nodes(); ++v) {
    (v < users ? user_roles : product_roles).insert(lg.labels[v]);
  }
  EXPECT_EQ(user_roles, (std::set<int>{0, 2}));
  EXPECT_EQ(product_roles, (std::set<int>{0, 1}));
}

TEST(FileScenarioTest, LoadsGraphBeliefsAndLabels) {
  const std::string graph_path = TempPath("file_scenario.edges");
  const std::string beliefs_path = TempPath("file_scenario.beliefs");
  const std::string labels_path = TempPath("file_scenario.labels");
  WriteFile(graph_path, "0 1\n1 2\n2 3\n");
  WriteFile(beliefs_path, "0 0 0.1\n0 1 -0.1\n3 1 0.1\n3 0 -0.1\n");
  WriteFile(labels_path, "0 0\n1 0\n2 1\n3 1\n");
  std::string error;
  auto scenario = MakeScenario("file:graph=" + graph_path +
                                   ",beliefs=" + beliefs_path +
                                   ",labels=" + labels_path,
                               &error);
  ASSERT_TRUE(scenario.has_value()) << error;
  EXPECT_EQ(scenario->graph.num_nodes(), 4);
  EXPECT_EQ(scenario->k, 2);
  EXPECT_EQ(scenario->explicit_nodes,
            (std::vector<std::int64_t>{0, 3}));
  ASSERT_TRUE(scenario->HasGroundTruth());
  EXPECT_EQ(scenario->ground_truth, (std::vector<int>{0, 0, 1, 1}));
}

TEST(FileScenarioTest, RequiresPathsAndPropagatesParseErrors) {
  std::string error;
  EXPECT_FALSE(MakeScenario("file", &error).has_value());
  EXPECT_NE(error.find("requires graph="), std::string::npos);

  const std::string bad_graph = TempPath("file_scenario_bad.edges");
  WriteFile(bad_graph, "0 x\n");
  EXPECT_FALSE(MakeScenario("file:graph=" + bad_graph + ",beliefs=whatever",
                            &error)
                   .has_value());
  EXPECT_NE(error.find(":1:"), std::string::npos) << error;
}

TEST(ResolveCouplingSpecTest, KnowsAllPresets) {
  std::string error;
  for (const auto& [name, k] :
       std::vector<std::pair<std::string, std::int64_t>>{
           {"homophily2", 2},
           {"heterophily2", 2},
           {"auction", 3},
           {"dblp4", 4},
           {"kronecker3", 3}}) {
    const auto coupling = ResolveCouplingSpec(name, &error);
    ASSERT_TRUE(coupling.has_value()) << name << ": " << error;
    EXPECT_EQ(coupling->k(), k) << name;
  }
  EXPECT_FALSE(ResolveCouplingSpec(TempPath("no_such_matrix"), &error)
                   .has_value());
}

}  // namespace
}  // namespace dataset
}  // namespace linbp
