#include "src/dataset/update_stream.h"

#include <cstdio>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/dataset/registry.h"
#include "src/graph/graph.h"
#include "src/la/dense_matrix.h"

namespace linbp {
namespace dataset {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(ParseUpdateLineTest, ParsesEveryKind) {
  UpdateOp op;
  std::string error;

  ASSERT_TRUE(ParseUpdateLine("a 3 7 1.25", 0, &op, &error)) << error;
  EXPECT_EQ(op.kind, UpdateKind::kAddEdge);
  EXPECT_EQ(op.u, 3);
  EXPECT_EQ(op.v, 7);
  EXPECT_EQ(op.weight, 1.25);

  ASSERT_TRUE(ParseUpdateLine("d 10 2", 0, &op, &error)) << error;
  EXPECT_EQ(op.kind, UpdateKind::kDeleteEdge);
  EXPECT_EQ(op.u, 10);
  EXPECT_EQ(op.v, 2);

  ASSERT_TRUE(ParseUpdateLine("w 0 1 0.5", 0, &op, &error)) << error;
  EXPECT_EQ(op.kind, UpdateKind::kReweightEdge);
  EXPECT_EQ(op.weight, 0.5);

  ASSERT_TRUE(ParseUpdateLine("b 4 3 0.1 -0.05 -0.05", 3, &op, &error))
      << error;
  EXPECT_EQ(op.kind, UpdateKind::kBeliefUpdate);
  EXPECT_EQ(op.u, 4);
  EXPECT_EQ(op.residuals, (std::vector<double>{0.1, -0.05, -0.05}));
}

// The corruption matrix: every malformed line is an error return with a
// specific message — never an abort, never a partially parsed op.
TEST(ParseUpdateLineTest, RejectsMalformedLines) {
  struct Case {
    const char* line;
    std::int64_t expected_k;
    const char* expect;
  };
  const std::vector<Case> cases = {
      {"", 0, "empty update line"},
      {"   ", 0, "empty update line"},
      {"x 0 1 1.0", 0, "unknown update command"},
      {"add 0 1 1.0", 0, "unknown update command"},
      {"# comment", 0, "unknown update command"},
      {"a 0 1", 0, "fields"},
      {"a 0 1 1.0 extra", 0, "fields"},
      {"a zero 1 1.0", 0, "malformed node id"},
      {"a 0 1x 1.0", 0, "malformed node id"},
      {"a 0 1 fast", 0, "malformed weight token"},
      {"a 0 1 1.0q", 0, "malformed weight token"},
      {"a 0 1 1e999", 0, "non-finite weight"},
      {"a 0 1 nan", 0, "non-finite weight"},
      {"a 0 1 inf", 0, "non-finite weight"},
      {"d 0", 0, "fields"},
      {"d 0 1 1.0", 0, "fields"},
      {"w 0 1", 0, "fields"},
      {"w 0 1 -inf", 0, "non-finite weight"},
      {"b 2", 0, "expected 'b node k r_1 ... r_k'"},
      {"b 2 1 0.5", 0, "k >= 2"},
      {"b 2 two 0.1 -0.1", 0, "malformed node id or class count"},
      {"b 2 2 0.1", 0, "carries"},
      {"b 2 2 0.1 -0.1 0.0", 0, "carries"},
      {"b 2 2 0.1 nan", 0, "non-finite residual"},
      {"b 2 2 0.1 oops", 0, "malformed residual token"},
      // A class count that disagrees with the problem's k.
      {"b 2 3 0.1 -0.05 -0.05", 2, "problem has 2"},
  };
  for (const Case& c : cases) {
    UpdateOp op;
    std::string error;
    EXPECT_FALSE(ParseUpdateLine(c.line, c.expected_k, &op, &error))
        << "line '" << c.line << "' parsed";
    EXPECT_NE(error.find(c.expect), std::string::npos)
        << "line '" << c.line << "' gave: " << error;
  }
}

TEST(ParseUpdateLineTest, CommentPredicateMatchesReaderSkips) {
  EXPECT_TRUE(IsUpdateStreamComment(""));
  EXPECT_TRUE(IsUpdateStreamComment("   "));
  EXPECT_TRUE(IsUpdateStreamComment("# anything"));
  EXPECT_TRUE(IsUpdateStreamComment("  # indented"));
  EXPECT_FALSE(IsUpdateStreamComment("a 0 1 1.0"));
}

TEST(UpdateStreamIoTest, WriteReadRoundTripsExactly) {
  // Weights chosen to need all 17 digits.
  std::vector<UpdateOp> ops;
  ops.push_back({UpdateKind::kAddEdge, 0, 1, 1.0 / 3.0, {}});
  ops.push_back({UpdateKind::kDeleteEdge, 5, 2, 1.0, {}});
  ops.push_back({UpdateKind::kReweightEdge, 3, 4, 0.1 + 0.2, {}});
  ops.push_back(
      {UpdateKind::kBeliefUpdate, 7, 0, 1.0, {2.0 / 7.0, -1.0 / 7.0, -1.0 / 7.0}});

  const std::string path = TempPath("roundtrip_updates.txt");
  ASSERT_TRUE(WriteUpdateStream(ops, path));
  std::string error;
  const auto read = ReadUpdateStream(path, 3, &error);
  ASSERT_TRUE(read.has_value()) << error;
  ASSERT_EQ(read->size(), ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ((*read)[i].kind, ops[i].kind) << i;
    EXPECT_EQ((*read)[i].u, ops[i].u) << i;
    EXPECT_EQ((*read)[i].v, ops[i].v) << i;
    if (ops[i].kind == UpdateKind::kAddEdge ||
        ops[i].kind == UpdateKind::kReweightEdge) {
      EXPECT_EQ((*read)[i].weight, ops[i].weight) << i;
    }
    EXPECT_EQ((*read)[i].residuals, ops[i].residuals) << i;
  }
  std::remove(path.c_str());
}

TEST(UpdateStreamIoTest, ReadReportsPathAndLineNumber) {
  const std::string path = TempPath("bad_updates.txt");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("# header\na 0 1 1.0\nd 0 oops\n", f);
    std::fclose(f);
  }
  std::string error;
  EXPECT_FALSE(ReadUpdateStream(path, 0, &error).has_value());
  EXPECT_NE(error.find(path + ":3:"), std::string::npos) << error;
  EXPECT_NE(error.find("malformed node id"), std::string::npos) << error;
  std::remove(path.c_str());

  error.clear();
  EXPECT_FALSE(
      ReadUpdateStream(TempPath("no_such_stream.txt"), 0, &error).has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

TEST(UpdateStreamTraceTest, GeneratedTraceRepliesCleanlyOnTheProblem) {
  std::string error;
  const auto scenario =
      MakeScenario("sbm:n=120,k=3,deg=6,seed=9", &error);
  ASSERT_TRUE(scenario.has_value()) << error;

  UpdateTraceOptions options;
  options.num_ops = 50;
  options.seed = 4;
  const UpdateTrace trace = GenerateUpdateTrace(*scenario, options);
  EXPECT_EQ(static_cast<std::int64_t>(trace.ops.size()), options.num_ops);
  // Held-out edges keep the start graph a strict subset of the scenario's.
  EXPECT_LE(trace.start_edges.size(), scenario->graph.edges().size());

  // Every op must be valid at its position: the problem-level replay
  // applies the exact same validation as the warm states.
  std::vector<Edge> edges = trace.start_edges;
  DenseMatrix residuals = scenario->explicit_residuals;
  ASSERT_TRUE(ApplyUpdateOpsToProblem(trace.ops, scenario->graph.num_nodes(),
                                      &edges, &residuals, &error))
      << error;

  // Belief ops never grow the explicit set (the SBP parity invariant):
  // a nonzero residual row stays nonzero, a zero row stays zero.
  for (std::int64_t v = 0; v < scenario->graph.num_nodes(); ++v) {
    bool was_explicit = false;
    bool is_explicit = false;
    for (std::int64_t c = 0; c < residuals.cols(); ++c) {
      was_explicit |= scenario->explicit_residuals.At(v, c) != 0.0;
      is_explicit |= residuals.At(v, c) != 0.0;
    }
    EXPECT_EQ(was_explicit, is_explicit) << "node " << v;
  }

  // The trace round-trips through its own text format.
  const std::string path = TempPath("trace_updates.txt");
  ASSERT_TRUE(WriteUpdateStream(trace.ops, path));
  const auto read = ReadUpdateStream(path, scenario->k, &error);
  ASSERT_TRUE(read.has_value()) << error;
  ASSERT_EQ(read->size(), trace.ops.size());
  for (std::size_t i = 0; i < trace.ops.size(); ++i) {
    EXPECT_EQ(FormatUpdateOp((*read)[i]), FormatUpdateOp(trace.ops[i])) << i;
  }
  std::remove(path.c_str());
}

TEST(UpdateStreamTraceTest, DeterministicForAFixedSeed) {
  std::string error;
  const auto scenario = MakeScenario("sbm:n=80,k=2,deg=5,seed=2", &error);
  ASSERT_TRUE(scenario.has_value()) << error;
  UpdateTraceOptions options;
  options.num_ops = 24;
  options.seed = 11;
  const UpdateTrace first = GenerateUpdateTrace(*scenario, options);
  const UpdateTrace second = GenerateUpdateTrace(*scenario, options);
  ASSERT_EQ(first.ops.size(), second.ops.size());
  for (std::size_t i = 0; i < first.ops.size(); ++i) {
    EXPECT_EQ(FormatUpdateOp(first.ops[i]), FormatUpdateOp(second.ops[i]));
  }
  options.seed = 12;
  const UpdateTrace other = GenerateUpdateTrace(*scenario, options);
  std::string a;
  std::string b;
  for (const UpdateOp& op : first.ops) a += FormatUpdateOp(op) + "\n";
  for (const UpdateOp& op : other.ops) b += FormatUpdateOp(op) + "\n";
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace dataset
}  // namespace linbp
