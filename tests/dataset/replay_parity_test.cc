// Replay parity: applying an interleaved add/delete/reweight/belief
// trace against a WARM incremental state must land on the same beliefs
// as a from-scratch solve of the final problem, for LinBP and SBP, at
// every thread count. This is the end-to-end guarantee behind
// `linbp_cli serve`: a long-lived server that has consumed a stream is
// indistinguishable (to 1e-9) from one freshly booted on the final graph.

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/convergence.h"
#include "src/core/coupling.h"
#include "src/core/linbp.h"
#include "src/core/linbp_incremental.h"
#include "src/core/sbp.h"
#include "src/core/sbp_incremental.h"
#include "src/dataset/registry.h"
#include "src/dataset/update_stream.h"
#include "src/exec/exec_context.h"
#include "src/graph/graph.h"
#include "src/la/dense_matrix.h"

namespace linbp {
namespace dataset {
namespace {

struct ParityCase {
  const char* spec;
  std::uint64_t seed;
  int threads;  // 0 = ExecContext::Default() (honors LINBP_THREADS)
};

std::string CaseName(const ::testing::TestParamInfo<ParityCase>& info) {
  std::string name = info.param.spec;
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name + "_t" + std::to_string(info.param.threads);
}

class ReplayParityTest : public ::testing::TestWithParam<ParityCase> {};

TEST_P(ReplayParityTest, WarmReplayMatchesColdSolve) {
  const ParityCase& param = GetParam();
  const exec::ExecContext ctx =
      param.threads == 0 ? exec::ExecContext::Default()
                         : exec::ExecContext::WithThreads(param.threads);

  std::string error;
  const auto scenario = MakeScenario(param.spec, &error);
  ASSERT_TRUE(scenario.has_value()) << error;

  UpdateTraceOptions trace_options;
  trace_options.num_ops = 48;
  trace_options.seed = param.seed;
  const UpdateTrace trace = GenerateUpdateTrace(*scenario, trace_options);
  const std::int64_t n = scenario->graph.num_nodes();
  const Graph start(n, trace.start_edges);

  // The cold side: the final problem after every update.
  std::vector<Edge> final_edges = trace.start_edges;
  DenseMatrix final_residuals = scenario->explicit_residuals;
  ASSERT_TRUE(ApplyUpdateOpsToProblem(trace.ops, n, &final_edges,
                                      &final_residuals, &error))
      << error;
  const Graph final_graph(n, final_edges);

  // One eps convergent on BOTH endpoint graphs, so the warm replay and
  // the cold solve share a well-posed fixed point.
  const CouplingMatrix coupling = scenario->Coupling();
  const double eps =
      0.5 * std::min(ExactEpsilonThreshold(start, coupling,
                                           LinBpVariant::kLinBp),
                     ExactEpsilonThreshold(final_graph, coupling,
                                           LinBpVariant::kLinBp));
  ASSERT_GT(eps, 0.0);
  const DenseMatrix hhat = coupling.ScaledResidual(eps);

  LinBpOptions options;
  options.max_iterations = 2000;
  options.tolerance = 1e-13;
  options.exec = ctx;

  // LinBP: warm replay op by op.
  LinBpState warm(start, hhat, scenario->explicit_residuals, options);
  ASSERT_TRUE(warm.converged());
  for (const UpdateOp& op : trace.ops) {
    ASSERT_GE(ApplyUpdateOp(op, &warm, &error), 0)
        << FormatUpdateOp(op) << ": " << error;
    ASSERT_TRUE(warm.converged()) << FormatUpdateOp(op);
  }
  const LinBpState cold(final_graph, hhat, final_residuals, options);
  ASSERT_TRUE(cold.converged());
  EXPECT_LE(warm.beliefs().MaxAbsDiff(cold.beliefs()), 1e-9);

  // SBP: same trace against the single-pass state.
  SbpState sbp = SbpState::FromGraph(start, coupling.residual(),
                                     scenario->explicit_residuals,
                                     scenario->explicit_nodes, ctx);
  for (const UpdateOp& op : trace.ops) {
    ASSERT_GE(ApplyUpdateOp(op, &sbp, &error), 0)
        << FormatUpdateOp(op) << ": " << error;
  }
  std::vector<std::int64_t> final_explicit;
  for (std::int64_t v = 0; v < final_residuals.rows(); ++v) {
    for (std::int64_t c = 0; c < final_residuals.cols(); ++c) {
      if (final_residuals.At(v, c) != 0.0) {
        final_explicit.push_back(v);
        break;
      }
    }
  }
  const SbpResult sbp_cold = RunSbp(final_graph, coupling.residual(),
                                    final_residuals, final_explicit, ctx);
  EXPECT_EQ(sbp.geodesic(), sbp_cold.geodesic);
  EXPECT_LE(sbp.beliefs().MaxAbsDiff(sbp_cold.beliefs), 1e-9);
}

// Serial and 4-thread contexts explicitly (bit-identical kernels make
// the 1e-9 bound thread-count independent), plus Default() so a CI pass
// with LINBP_THREADS set exercises whatever it asks for.
INSTANTIATE_TEST_SUITE_P(
    Traces, ReplayParityTest,
    ::testing::Values(
        ParityCase{"sbm:n=300,k=3,deg=6,mode=homophily,seed=5", 21, 1},
        ParityCase{"sbm:n=300,k=3,deg=6,mode=homophily,seed=5", 21, 4},
        ParityCase{"sbm:n=250,k=2,deg=7,mode=heterophily,seed=6", 22, 4},
        ParityCase{"rmat:scale=8,ef=5,k=3,seed=7", 23, 1},
        ParityCase{"rmat:scale=8,ef=5,k=3,seed=7", 23, 4},
        ParityCase{"fraud:users=150,products=80,seed=8", 24, 0},
        ParityCase{"dblp:papers=120,authors=130,terms=60,seed=9", 25, 0},
        ParityCase{"kronecker:g=2,seed=10", 26, 4}),
    CaseName);

}  // namespace
}  // namespace dataset
}  // namespace linbp
