// ShardStreamReader: per-block reads match the bulk loader, every
// corruption is an error return, and the residency byte accounting is
// exact.

#include "src/dataset/shard_stream.h"

#include <cstdint>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "src/dataset/registry.h"
#include "src/dataset/shard.h"
#include "tests/testing/test_util.h"

namespace linbp {
namespace dataset {
namespace {

using linbp::testing::ReadBytes;
using linbp::testing::WriteBytes;

constexpr char kSpec[] = "sbm:n=600,k=3,deg=6,seed=11";
constexpr std::int64_t kShards = 4;

Scenario TestScenario() {
  std::string error;
  auto scenario = MakeScenario(kSpec, &error);
  EXPECT_TRUE(scenario.has_value()) << error;
  return std::move(*scenario);
}

std::string ShardScenario(const Scenario& scenario,
                          const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::string error;
  const auto result = ShardSnapshot(scenario, kShards, dir, &error);
  EXPECT_TRUE(result.has_value()) << error;
  return result.has_value() ? result->manifest_path : "";
}

ShardStreamReader OpenReader(const std::string& manifest) {
  std::string error;
  auto reader = ShardStreamReader::Open(manifest, &error);
  EXPECT_TRUE(reader.has_value()) << error;
  return std::move(*reader);
}

TEST(ShardStreamReaderTest, BlocksReassembleTheScenario) {
  const Scenario scenario = TestScenario();
  const std::string manifest = ShardScenario(scenario, "reader_blocks");
  const ShardStreamReader reader = OpenReader(manifest);
  ASSERT_EQ(reader.num_shards(), kShards);
  EXPECT_EQ(reader.num_nodes(), scenario.graph.num_nodes());
  EXPECT_EQ(reader.nnz(), scenario.graph.num_directed_edges());
  EXPECT_EQ(reader.name(), scenario.name);
  EXPECT_EQ(reader.spec(), scenario.spec);

  const auto& row_ptr = scenario.graph.adjacency().row_ptr();
  const auto& col_idx = scenario.graph.adjacency().col_idx();
  const auto& values = scenario.graph.adjacency().values();
  std::int64_t covered_rows = 0;
  std::int64_t covered_nnz = 0;
  for (std::int64_t s = 0; s < reader.num_shards(); ++s) {
    ShardStreamBlock block;
    std::string error;
    ASSERT_TRUE(reader.ReadBlock(s, &block, &error)) << error;
    EXPECT_EQ(block.shard, s);
    EXPECT_EQ(block.row_begin, reader.row_begin(s));
    EXPECT_EQ(block.row_end, reader.row_end(s));
    covered_rows += block.num_rows();
    covered_nnz += block.nnz();
    // Every entry matches the monolithic CSR's slice.
    const std::int64_t nnz_begin = row_ptr[block.row_begin];
    for (std::int64_t r = 0; r < block.num_rows(); ++r) {
      EXPECT_EQ(block.row_ptr[r], row_ptr[block.row_begin + r] - nnz_begin);
    }
    for (std::int64_t e = 0; e < block.nnz(); ++e) {
      EXPECT_EQ(block.col_idx[e], col_idx[nnz_begin + e]);
      EXPECT_EQ(block.values[e], values[nnz_begin + e]);
    }
    for (std::size_t i = 0; i < block.explicit_nodes.size(); ++i) {
      const std::int64_t v = block.explicit_nodes[i];
      for (std::int64_t c = 0; c < reader.k(); ++c) {
        EXPECT_EQ(block.explicit_rows[i * reader.k() + c],
                  scenario.explicit_residuals.At(v, c));
      }
    }
  }
  EXPECT_EQ(covered_rows, scenario.graph.num_nodes());
  EXPECT_EQ(covered_nnz, scenario.graph.num_directed_edges());
}

TEST(ShardStreamReaderTest, ResidencyAccountingIsExact) {
  const Scenario scenario = TestScenario();
  const std::string manifest = ShardScenario(scenario, "reader_bytes");
  const ShardStreamReader reader = OpenReader(manifest);
  EXPECT_EQ(reader.resident_csr_bytes(), 0);
  EXPECT_EQ(reader.peak_resident_csr_bytes(), 0);

  std::string error;
  {
    ShardStreamBlock a;
    ASSERT_TRUE(reader.ReadBlock(0, &a, &error)) << error;
    EXPECT_EQ(reader.resident_csr_bytes(), reader.block_csr_bytes(0));
    {
      ShardStreamBlock b;
      ASSERT_TRUE(reader.ReadBlock(1, &b, &error)) << error;
      EXPECT_EQ(reader.resident_csr_bytes(),
                reader.block_csr_bytes(0) + reader.block_csr_bytes(1));
      // Move transfers, not duplicates, the accounting.
      ShardStreamBlock moved = std::move(b);
      EXPECT_EQ(reader.resident_csr_bytes(),
                reader.block_csr_bytes(0) + reader.block_csr_bytes(1));
    }
    EXPECT_EQ(reader.resident_csr_bytes(), reader.block_csr_bytes(0));
  }
  EXPECT_EQ(reader.resident_csr_bytes(), 0);
  EXPECT_EQ(reader.peak_resident_csr_bytes(),
            reader.block_csr_bytes(0) + reader.block_csr_bytes(1));
  EXPECT_LE(reader.block_csr_bytes(0), reader.max_block_csr_bytes());
}

TEST(ShardStreamReaderTest, RejectsEveryCorruption) {
  const Scenario scenario = TestScenario();
  const std::string manifest = ShardScenario(scenario, "reader_corrupt");
  const std::string shard1 =
      std::filesystem::path(manifest).parent_path() / ShardFileName(1);
  const std::vector<char> pristine = ReadBytes(shard1);

  const ShardStreamReader reader = OpenReader(manifest);
  ShardStreamBlock block;
  std::string error;

  // Payload bit flip -> checksum mismatch.
  std::vector<char> bytes = pristine;
  bytes[64 + 33] ^= 0x04;
  WriteBytes(shard1, bytes);
  EXPECT_FALSE(reader.ReadBlock(1, &block, &error));
  EXPECT_NE(error.find("checksum mismatch"), std::string::npos) << error;
  EXPECT_EQ(reader.resident_csr_bytes(), 0);

  // Header row range disagreeing with the manifest.
  bytes = pristine;
  bytes[16] ^= 0x01;
  WriteBytes(shard1, bytes);
  EXPECT_FALSE(reader.ReadBlock(1, &block, &error));
  EXPECT_NE(error.find("disagrees with its manifest entry"),
            std::string::npos)
      << error;

  // Truncation below the declared payload.
  bytes = pristine;
  bytes.resize(bytes.size() - 16);
  WriteBytes(shard1, bytes);
  EXPECT_FALSE(reader.ReadBlock(1, &block, &error));

  // Wrong magic.
  bytes = pristine;
  bytes[0] = 'X';
  WriteBytes(shard1, bytes);
  EXPECT_FALSE(reader.ReadBlock(1, &block, &error));
  EXPECT_NE(error.find("bad magic"), std::string::npos) << error;

  // Missing file.
  std::filesystem::remove(shard1);
  EXPECT_FALSE(reader.ReadBlock(1, &block, &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos) << error;

  // Restored bytes read cleanly again (the reader holds no stale state).
  WriteBytes(shard1, pristine);
  EXPECT_TRUE(reader.ReadBlock(1, &block, &error)) << error;
  EXPECT_EQ(reader.resident_csr_bytes(), reader.block_csr_bytes(1));
}

TEST(ShardStreamReaderTest, OpenValidatesTheManifest) {
  const Scenario scenario = TestScenario();
  const std::string manifest = ShardScenario(scenario, "reader_manifest");
  std::string error;
  EXPECT_FALSE(
      ShardStreamReader::Open("/nonexistent/manifest.lbpm", &error)
          .has_value());

  std::vector<char> bytes = ReadBytes(manifest);
  bytes[70] ^= 0x10;
  WriteBytes(manifest, bytes);
  EXPECT_FALSE(ShardStreamReader::Open(manifest, &error).has_value());
  EXPECT_NE(error.find("checksum mismatch"), std::string::npos) << error;
}

TEST(ShardManifestInfoTest, ReportsTotalShardPayloadBytes) {
  const Scenario scenario = TestScenario();
  const std::string manifest = ShardScenario(scenario, "reader_info");
  std::string error;
  const auto info = ReadShardManifestInfo(manifest, &error);
  ASSERT_TRUE(info.has_value()) << error;
  ASSERT_EQ(static_cast<std::int64_t>(info->shards.size()), kShards);
  // The declared payload bytes equal the on-disk file sizes minus the
  // 64-byte headers — the writer emits exactly the declared sections.
  std::int64_t total = 0;
  const std::filesystem::path dir =
      std::filesystem::path(manifest).parent_path();
  for (const ShardRangeInfo& shard : info->shards) {
    EXPECT_GT(shard.payload_bytes, 0);
    EXPECT_EQ(static_cast<std::uintmax_t>(shard.payload_bytes + 64),
              std::filesystem::file_size(dir / shard.file));
    total += shard.payload_bytes;
  }
  EXPECT_EQ(info->total_shard_payload_bytes, total);
  EXPECT_GT(info->total_shard_payload_bytes, info->file_bytes);
}

}  // namespace
}  // namespace dataset
}  // namespace linbp
