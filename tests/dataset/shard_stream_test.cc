// ShardStreamReader: per-block reads match the bulk loader, every
// corruption is an error return, and the residency byte accounting is
// exact.

#include "src/dataset/shard_stream.h"

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "src/dataset/registry.h"
#include "src/dataset/shard.h"
#include "tests/testing/test_util.h"

namespace linbp {
namespace dataset {
namespace {

using linbp::testing::ReadBytes;
using linbp::testing::WriteBytes;

constexpr char kSpec[] = "sbm:n=600,k=3,deg=6,seed=11";
constexpr std::int64_t kShards = 4;

Scenario TestScenario() {
  std::string error;
  auto scenario = MakeScenario(kSpec, &error);
  EXPECT_TRUE(scenario.has_value()) << error;
  return std::move(*scenario);
}

std::string ShardScenario(const Scenario& scenario, const std::string& name,
                          ShardCompression compression =
                              ShardCompression::kNone) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::string error;
  const auto result =
      ShardSnapshot(scenario, kShards, dir, &error, compression);
  EXPECT_TRUE(result.has_value()) << error;
  return result.has_value() ? result->manifest_path : "";
}

ShardStreamReader OpenReader(const std::string& manifest) {
  std::string error;
  auto reader = ShardStreamReader::Open(manifest, &error);
  EXPECT_TRUE(reader.has_value()) << error;
  return std::move(*reader);
}

TEST(ShardStreamReaderTest, BlocksReassembleTheScenario) {
  const Scenario scenario = TestScenario();
  const std::string manifest = ShardScenario(scenario, "reader_blocks");
  const ShardStreamReader reader = OpenReader(manifest);
  ASSERT_EQ(reader.num_shards(), kShards);
  EXPECT_EQ(reader.num_nodes(), scenario.graph.num_nodes());
  EXPECT_EQ(reader.nnz(), scenario.graph.num_directed_edges());
  EXPECT_EQ(reader.name(), scenario.name);
  EXPECT_EQ(reader.spec(), scenario.spec);

  const auto& row_ptr = scenario.graph.adjacency().row_ptr();
  const auto& col_idx = scenario.graph.adjacency().col_idx();
  const auto& values = scenario.graph.adjacency().values();
  std::int64_t covered_rows = 0;
  std::int64_t covered_nnz = 0;
  for (std::int64_t s = 0; s < reader.num_shards(); ++s) {
    ShardStreamBlock block;
    std::string error;
    ASSERT_TRUE(reader.ReadBlock(s, &block, &error)) << error;
    EXPECT_EQ(block.shard, s);
    EXPECT_EQ(block.row_begin, reader.row_begin(s));
    EXPECT_EQ(block.row_end, reader.row_end(s));
    covered_rows += block.num_rows();
    covered_nnz += block.nnz();
    // Every entry matches the monolithic CSR's slice.
    const std::int64_t nnz_begin = row_ptr[block.row_begin];
    for (std::int64_t r = 0; r < block.num_rows(); ++r) {
      EXPECT_EQ(block.row_ptr[r], row_ptr[block.row_begin + r] - nnz_begin);
    }
    for (std::int64_t e = 0; e < block.nnz(); ++e) {
      EXPECT_EQ(block.col_idx[e], col_idx[nnz_begin + e]);
      EXPECT_EQ(block.values[e], values[nnz_begin + e]);
    }
    for (std::size_t i = 0; i < block.explicit_nodes.size(); ++i) {
      const std::int64_t v = block.explicit_nodes[i];
      for (std::int64_t c = 0; c < reader.k(); ++c) {
        EXPECT_EQ(block.explicit_rows[i * reader.k() + c],
                  scenario.explicit_residuals.At(v, c));
      }
    }
  }
  EXPECT_EQ(covered_rows, scenario.graph.num_nodes());
  EXPECT_EQ(covered_nnz, scenario.graph.num_directed_edges());
}

TEST(ShardStreamReaderTest, ResidencyAccountingIsExact) {
  const Scenario scenario = TestScenario();
  const std::string manifest = ShardScenario(scenario, "reader_bytes");
  const ShardStreamReader reader = OpenReader(manifest);
  EXPECT_EQ(reader.resident_csr_bytes(), 0);
  EXPECT_EQ(reader.peak_resident_csr_bytes(), 0);

  std::string error;
  {
    ShardStreamBlock a;
    ASSERT_TRUE(reader.ReadBlock(0, &a, &error)) << error;
    EXPECT_EQ(reader.resident_csr_bytes(), reader.block_csr_bytes(0));
    {
      ShardStreamBlock b;
      ASSERT_TRUE(reader.ReadBlock(1, &b, &error)) << error;
      EXPECT_EQ(reader.resident_csr_bytes(),
                reader.block_csr_bytes(0) + reader.block_csr_bytes(1));
      // Move transfers, not duplicates, the accounting.
      ShardStreamBlock moved = std::move(b);
      EXPECT_EQ(reader.resident_csr_bytes(),
                reader.block_csr_bytes(0) + reader.block_csr_bytes(1));
    }
    EXPECT_EQ(reader.resident_csr_bytes(), reader.block_csr_bytes(0));
  }
  EXPECT_EQ(reader.resident_csr_bytes(), 0);
  EXPECT_EQ(reader.peak_resident_csr_bytes(),
            reader.block_csr_bytes(0) + reader.block_csr_bytes(1));
  EXPECT_LE(reader.block_csr_bytes(0), reader.max_block_csr_bytes());
}

TEST(ShardStreamReaderTest, RejectsEveryCorruption) {
  const Scenario scenario = TestScenario();
  const std::string manifest = ShardScenario(scenario, "reader_corrupt");
  const std::string shard1 =
      std::filesystem::path(manifest).parent_path() / ShardFileName(1);
  const std::vector<char> pristine = ReadBytes(shard1);

  const ShardStreamReader reader = OpenReader(manifest);
  ShardStreamBlock block;
  std::string error;

  // Payload bit flip -> checksum mismatch.
  std::vector<char> bytes = pristine;
  bytes[64 + 33] ^= 0x04;
  WriteBytes(shard1, bytes);
  EXPECT_FALSE(reader.ReadBlock(1, &block, &error));
  EXPECT_NE(error.find("checksum mismatch"), std::string::npos) << error;
  EXPECT_EQ(reader.resident_csr_bytes(), 0);

  // Header row range disagreeing with the manifest.
  bytes = pristine;
  bytes[16] ^= 0x01;
  WriteBytes(shard1, bytes);
  EXPECT_FALSE(reader.ReadBlock(1, &block, &error));
  EXPECT_NE(error.find("disagrees with its manifest entry"),
            std::string::npos)
      << error;

  // Truncation below the declared payload.
  bytes = pristine;
  bytes.resize(bytes.size() - 16);
  WriteBytes(shard1, bytes);
  EXPECT_FALSE(reader.ReadBlock(1, &block, &error));

  // Wrong magic.
  bytes = pristine;
  bytes[0] = 'X';
  WriteBytes(shard1, bytes);
  EXPECT_FALSE(reader.ReadBlock(1, &block, &error));
  EXPECT_NE(error.find("bad magic"), std::string::npos) << error;

  // Missing file.
  std::filesystem::remove(shard1);
  EXPECT_FALSE(reader.ReadBlock(1, &block, &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos) << error;

  // Restored bytes read cleanly again (the reader holds no stale state).
  WriteBytes(shard1, pristine);
  EXPECT_TRUE(reader.ReadBlock(1, &block, &error)) << error;
  EXPECT_EQ(reader.resident_csr_bytes(), reader.block_csr_bytes(1));
}

TEST(ShardStreamReaderTest, OpenValidatesTheManifest) {
  const Scenario scenario = TestScenario();
  const std::string manifest = ShardScenario(scenario, "reader_manifest");
  std::string error;
  EXPECT_FALSE(
      ShardStreamReader::Open("/nonexistent/manifest.lbpm", &error)
          .has_value());

  std::vector<char> bytes = ReadBytes(manifest);
  bytes[70] ^= 0x10;
  WriteBytes(manifest, bytes);
  EXPECT_FALSE(ShardStreamReader::Open(manifest, &error).has_value());
  EXPECT_NE(error.find("checksum mismatch"), std::string::npos) << error;
}

// ---- Compressed (v2) streams ---------------------------------------------

// FNV-1a, reimplemented so the corruption tests can forge checksum-valid
// hostile bytes that only the structural decode can reject.
std::uint64_t TestFnv1a(const char* data, std::size_t size) {
  std::uint64_t hash = 14695981039346656037ull;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 1099511628211ull;
  }
  return hash;
}

void FixChecksum(std::vector<char>* bytes) {
  const std::uint64_t checksum =
      TestFnv1a(bytes->data() + 64, bytes->size() - 64);
  std::memcpy(bytes->data() + 56, &checksum, 8);
}

// Byte offset of shard `index`'s manifest entry; v2 entries carry an
// extra i64 payload_bytes before the checksum.
std::size_t ManifestEntryOffset(const std::vector<char>& manifest,
                                std::int64_t index) {
  std::uint32_t version = 0;
  std::memcpy(&version, manifest.data() + 8, 4);
  std::int64_t k = 0;
  std::memcpy(&k, manifest.data() + 24, 8);
  std::size_t off = 64;
  auto skip_string = [&] {
    std::uint32_t length = 0;
    std::memcpy(&length, manifest.data() + off, 4);
    off += 4 + length;
  };
  skip_string();  // name
  skip_string();  // spec
  off += static_cast<std::size_t>(k * k) * 8;  // coupling residual
  for (std::int64_t s = 0; s < index; ++s) {
    off += (version >= 2 ? 8 * 5 : 8 * 4) + 8;
    skip_string();  // file name
  }
  return off;
}

// Reads one LEB128 varint from pristine test bytes (trusted input).
std::uint64_t ReadTestVarint(const std::vector<char>& bytes,
                             std::size_t* off) {
  std::uint64_t value = 0;
  int shift = 0;
  while (true) {
    const unsigned char byte = static_cast<unsigned char>(bytes[*off]);
    ++*off;
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
}

TEST(ShardStreamReaderTest, CompressedBlocksMatchTheMonolithicCsr) {
  const Scenario scenario = TestScenario();
  for (const bool f32 : {false, true}) {
    const std::string manifest = ShardScenario(
        scenario, f32 ? "v2_blocks_f32" : "v2_blocks_f64",
        f32 ? ShardCompression::kF32 : ShardCompression::kF64);
    const ShardStreamReader reader = OpenReader(manifest);
    EXPECT_EQ(reader.version(), kShardFormatVersionV2);
    EXPECT_EQ(reader.values_f32(), f32);
    const auto& row_ptr = scenario.graph.adjacency().row_ptr();
    const auto& col_idx = scenario.graph.adjacency().col_idx();
    const auto& values = scenario.graph.adjacency().values();
    for (std::int64_t s = 0; s < reader.num_shards(); ++s) {
      ShardStreamBlock block;
      std::string error;
      ASSERT_TRUE(reader.ReadBlock(s, &block, &error)) << error;
      // Exactly one value representation is populated per block.
      EXPECT_EQ(block.values.empty(), f32);
      EXPECT_EQ(block.values_f32.empty(), !f32);
      const std::int64_t nnz_begin = row_ptr[block.row_begin];
      for (std::int64_t r = 0; r < block.num_rows(); ++r) {
        ASSERT_EQ(block.row_ptr[r],
                  row_ptr[block.row_begin + r] - nnz_begin);
      }
      for (std::int64_t e = 0; e < block.nnz(); ++e) {
        ASSERT_EQ(block.col_idx[e], col_idx[nnz_begin + e]);
        if (f32) {
          ASSERT_EQ(block.values_f32[e],
                    static_cast<float>(values[nnz_begin + e]));
        } else {
          ASSERT_EQ(block.values[e], values[nnz_begin + e]);
        }
      }
    }
  }
}

TEST(ShardStreamReaderTest, CompressedReadsCountEncodedBytes) {
  const Scenario scenario = TestScenario();
  const std::string manifest =
      ShardScenario(scenario, "v2_encoded", ShardCompression::kF64);
  const ShardStreamReader reader = OpenReader(manifest);
  const std::filesystem::path dir =
      std::filesystem::path(manifest).parent_path();
  std::int64_t expected_file = 0;
  std::int64_t expected_encoded = 0;
  std::string error;
  for (std::int64_t s = 0; s < reader.num_shards(); ++s) {
    ShardStreamBlock block;
    ASSERT_TRUE(reader.ReadBlock(s, &block, &error)) << error;
    const std::int64_t file_size = static_cast<std::int64_t>(
        std::filesystem::file_size(dir / ShardFileName(s)));
    expected_file += file_size;
    expected_encoded += file_size - 64;
  }
  EXPECT_EQ(reader.file_bytes_read_total(), expected_file);
  EXPECT_EQ(reader.encoded_bytes_read_total(), expected_encoded);
  // The whole point of v2: the wire bytes undercut the decoded CSR.
  EXPECT_LT(reader.encoded_bytes_read_total(),
            reader.csr_bytes_read_total());
}

TEST(ShardStreamReaderTest, UncompressedReadsCountNoEncodedBytes) {
  const Scenario scenario = TestScenario();
  const std::string manifest = ShardScenario(scenario, "v1_encoded");
  const ShardStreamReader reader = OpenReader(manifest);
  ShardStreamBlock block;
  std::string error;
  ASSERT_TRUE(reader.ReadBlock(0, &block, &error)) << error;
  EXPECT_EQ(reader.version(), kShardFormatVersion);
  EXPECT_GT(reader.file_bytes_read_total(), 0);
  EXPECT_EQ(reader.encoded_bytes_read_total(), 0);
}

// The v2 corruption matrix: every malformed column section is an error
// return naming the defect — never a crash — even when every checksum on
// the path to it has been re-forged to match the hostile bytes.
TEST(ShardStreamReaderTest, CompressedRejectsEveryColumnSectionCorruption) {
  const Scenario scenario = TestScenario();
  const std::string manifest =
      ShardScenario(scenario, "v2_corrupt", ShardCompression::kF64);
  const std::string shard1 =
      std::filesystem::path(manifest).parent_path() / ShardFileName(1);
  const std::vector<char> shard_pristine = ReadBytes(shard1);
  const std::vector<char> manifest_pristine = ReadBytes(manifest);

  // Applies `mutate` to shard 1, re-forges the shard header checksum,
  // the manifest entry checksum, and the manifest header checksum, then
  // expects both the streamed and the bulk load to fail with `what`.
  const auto expect_rejected =
      [&](const std::string& what,
          const std::function<void(std::vector<char>*)>& mutate) {
        std::vector<char> shard = shard_pristine;
        mutate(&shard);
        FixChecksum(&shard);
        std::uint64_t forged = 0;
        std::memcpy(&forged, shard.data() + 56, 8);
        WriteBytes(shard1, shard);
        std::vector<char> man = manifest_pristine;
        std::memcpy(man.data() + ManifestEntryOffset(man, 1) + 40, &forged,
                    8);
        FixChecksum(&man);
        WriteBytes(manifest, man);

        std::string error;
        auto reader = ShardStreamReader::Open(manifest, &error);
        ASSERT_TRUE(reader.has_value()) << what << ": " << error;
        ShardStreamBlock block;
        EXPECT_FALSE(reader->ReadBlock(1, &block, &error)) << what;
        EXPECT_NE(error.find(what), std::string::npos)
            << what << " -> " << error;
        EXPECT_EQ(reader->resident_csr_bytes(), 0) << what;
        EXPECT_FALSE(LoadShardedSnapshot(manifest, &error).has_value())
            << what;
        EXPECT_NE(error.find(what), std::string::npos)
            << what << " -> " << error;
      };

  // The column section starts at byte 72: 64-byte header, then the u64
  // encoded-section size. Row 1's nnz varint leads the section.
  expect_rejected("truncated varint", [](std::vector<char>* shard) {
    const std::uint64_t one = 1;
    std::memcpy(shard->data() + 64, &one, 8);
    (*shard)[72] = static_cast<char>(0x80);
  });

  expect_rejected("varint overflow (more than 5 bytes)",
                  [](std::vector<char>* shard) {
                    for (int i = 0; i < 5; ++i) {
                      (*shard)[72 + i] = static_cast<char>(0x80);
                    }
                  });

  expect_rejected("column id out of range", [&](std::vector<char>* shard) {
    std::size_t off = 72;
    const std::uint64_t nnz0 = ReadTestVarint(*shard, &off);
    ASSERT_GE(nnz0, 1u);
    // Overwrite the first (absolute) column id with the 5-byte varint
    // for 2^32 - 1 — far past any node id.
    const unsigned char huge[5] = {0xFF, 0xFF, 0xFF, 0xFF, 0x0F};
    std::memcpy(shard->data() + off, huge, 5);
  });

  expect_rejected("non-monotone delta (columns not strictly increasing)",
                  [&](std::vector<char>* shard) {
                    std::size_t off = 72;
                    const std::uint64_t nnz0 = ReadTestVarint(*shard, &off);
                    ASSERT_GE(nnz0, 2u);
                    ReadTestVarint(*shard, &off);  // first column id
                    (*shard)[off] = 0x00;  // delta 0: not strictly rising
                  });

  expect_rejected("trailing bytes in the column section",
                  [](std::vector<char>* shard) {
                    std::uint64_t encoded = 0;
                    std::memcpy(&encoded, shard->data() + 64, 8);
                    encoded += 8;  // steal the first value's bytes
                    std::memcpy(shard->data() + 64, &encoded, 8);
                  });

  // Wrong value-section size: the file ends before the values the header
  // counts promise.
  {
    std::vector<char> shard = shard_pristine;
    shard.resize(shard.size() - 4);
    FixChecksum(&shard);
    std::uint64_t forged = 0;
    std::memcpy(&forged, shard.data() + 56, 8);
    WriteBytes(shard1, shard);
    std::vector<char> man = manifest_pristine;
    std::memcpy(man.data() + ManifestEntryOffset(man, 1) + 40, &forged, 8);
    FixChecksum(&man);
    WriteBytes(manifest, man);
    std::string error;
    auto reader = ShardStreamReader::Open(manifest, &error);
    ASSERT_TRUE(reader.has_value()) << error;
    ShardStreamBlock block;
    EXPECT_FALSE(reader->ReadBlock(1, &block, &error));
    EXPECT_NE(error.find("truncated"), std::string::npos) << error;
  }

  // Forged checksums around a tampered stored value: per-block structure
  // stays valid, so only the bulk loader's cross-shard symmetry sweep
  // can catch it — with an error, never a crash.
  {
    std::vector<char> shard = shard_pristine;
    std::uint64_t encoded = 0;
    std::memcpy(&encoded, shard.data() + 64, 8);
    const double tweaked = 7.5;
    std::memcpy(shard.data() + 72 + encoded, &tweaked, 8);
    FixChecksum(&shard);
    std::uint64_t forged = 0;
    std::memcpy(&forged, shard.data() + 56, 8);
    WriteBytes(shard1, shard);
    std::vector<char> man = manifest_pristine;
    std::memcpy(man.data() + ManifestEntryOffset(man, 1) + 40, &forged, 8);
    FixChecksum(&man);
    WriteBytes(manifest, man);
    std::string error;
    EXPECT_FALSE(LoadShardedSnapshot(manifest, &error).has_value());
    EXPECT_NE(error.find("invalid adjacency payload"), std::string::npos)
        << error;
  }

  // Restored pristine bytes stream cleanly again.
  WriteBytes(shard1, shard_pristine);
  WriteBytes(manifest, manifest_pristine);
  const ShardStreamReader reader = OpenReader(manifest);
  ShardStreamBlock block;
  std::string error;
  EXPECT_TRUE(reader.ReadBlock(1, &block, &error)) << error;
}

// ---- Decoded-block cache -------------------------------------------------

TEST(ShardBlockCacheTest, LruEvictsToStayWithinBudget) {
  const Scenario scenario = TestScenario();
  const std::string manifest = ShardScenario(scenario, "cache_lru");
  const ShardStreamReader reader = OpenReader(manifest);
  std::string error;

  auto read_block = [&](std::int64_t s) {
    auto block = std::make_shared<ShardStreamBlock>();
    EXPECT_TRUE(reader.ReadBlock(s, block.get(), &error)) << error;
    return std::shared_ptr<const ShardStreamBlock>(std::move(block));
  };

  // Budget for roughly two blocks.
  ShardBlockCache cache(2 * reader.max_block_csr_bytes());
  EXPECT_EQ(cache.Lookup(0), nullptr);
  EXPECT_EQ(cache.misses_total(), 1);
  cache.Insert(0, read_block(0));
  cache.Insert(1, read_block(1));
  EXPECT_NE(cache.Lookup(0), nullptr);
  EXPECT_NE(cache.Lookup(1), nullptr);
  EXPECT_EQ(cache.hits_total(), 2);
  EXPECT_LE(cache.cached_bytes(), cache.budget_bytes());

  // A third block forces the least-recently-used entry out: block 0's
  // hit predates block 1's, so 0 is the victim.
  cache.Insert(2, read_block(2));
  EXPECT_GE(cache.evictions_total(), 1);
  EXPECT_LE(cache.cached_bytes(), cache.budget_bytes());
  EXPECT_EQ(cache.Lookup(0), nullptr);  // the LRU victim
  EXPECT_NE(cache.Lookup(2), nullptr);
}

TEST(ShardBlockCacheTest, ZeroBudgetAndOversizedBlocksNeverCache) {
  const Scenario scenario = TestScenario();
  const std::string manifest = ShardScenario(scenario, "cache_off");
  const ShardStreamReader reader = OpenReader(manifest);
  std::string error;
  auto block = std::make_shared<ShardStreamBlock>();
  ASSERT_TRUE(reader.ReadBlock(0, block.get(), &error)) << error;

  ShardBlockCache off(0);
  off.Insert(0, block);
  EXPECT_EQ(off.Lookup(0), nullptr);
  EXPECT_EQ(off.cached_bytes(), 0);

  // A budget smaller than the block: Insert is a no-op, not an eviction
  // storm.
  ShardBlockCache tiny(16);
  tiny.Insert(0, block);
  EXPECT_EQ(tiny.cached_bytes(), 0);
  EXPECT_EQ(tiny.evictions_total(), 0);
  EXPECT_EQ(tiny.Lookup(0), nullptr);
}

TEST(ShardBlockCacheTest, DuplicateInsertKeepsTheFirstBlock) {
  const Scenario scenario = TestScenario();
  const std::string manifest = ShardScenario(scenario, "cache_dup");
  const ShardStreamReader reader = OpenReader(manifest);
  std::string error;
  auto first = std::make_shared<ShardStreamBlock>();
  ASSERT_TRUE(reader.ReadBlock(0, first.get(), &error)) << error;
  auto second = std::make_shared<ShardStreamBlock>();
  ASSERT_TRUE(reader.ReadBlock(0, second.get(), &error)) << error;

  ShardBlockCache cache(8 * reader.max_block_csr_bytes());
  cache.Insert(0, first);
  const std::int64_t bytes_after_first = cache.cached_bytes();
  cache.Insert(0, second);
  EXPECT_EQ(cache.cached_bytes(), bytes_after_first);
  EXPECT_EQ(cache.Lookup(0).get(), first.get());
}

TEST(ShardManifestInfoTest, ReportsTotalShardPayloadBytes) {
  const Scenario scenario = TestScenario();
  const std::string manifest = ShardScenario(scenario, "reader_info");
  std::string error;
  const auto info = ReadShardManifestInfo(manifest, &error);
  ASSERT_TRUE(info.has_value()) << error;
  ASSERT_EQ(static_cast<std::int64_t>(info->shards.size()), kShards);
  // The declared payload bytes equal the on-disk file sizes minus the
  // 64-byte headers — the writer emits exactly the declared sections.
  std::int64_t total = 0;
  const std::filesystem::path dir =
      std::filesystem::path(manifest).parent_path();
  for (const ShardRangeInfo& shard : info->shards) {
    EXPECT_GT(shard.payload_bytes, 0);
    EXPECT_EQ(static_cast<std::uintmax_t>(shard.payload_bytes + 64),
              std::filesystem::file_size(dir / shard.file));
    total += shard.payload_bytes;
  }
  EXPECT_EQ(info->total_shard_payload_bytes, total);
  EXPECT_GT(info->total_shard_payload_bytes, info->file_bytes);
}

}  // namespace
}  // namespace dataset
}  // namespace linbp
