#include "src/dataset/snapshot.h"

#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "src/dataset/registry.h"
#include "tests/testing/test_util.h"

namespace linbp {
namespace dataset {
namespace {

using linbp::testing::ReadBytes;
using linbp::testing::WriteBytes;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

Scenario TestScenario() {
  std::string error;
  auto scenario =
      MakeScenario("fraud:users=80,products=40,seed=13", &error);
  EXPECT_TRUE(scenario.has_value()) << error;
  return std::move(*scenario);
}

std::string SavedSnapshot(const Scenario& scenario, const std::string& name) {
  const std::string path = TempPath(name);
  std::string error;
  EXPECT_TRUE(SaveSnapshot(scenario, path, &error)) << error;
  return path;
}

void ExpectScenariosIdentical(const Scenario& a, const Scenario& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.spec, b.spec);
  EXPECT_EQ(a.k, b.k);
  // CSR arrays must match bit for bit.
  EXPECT_EQ(a.graph.adjacency().row_ptr(), b.graph.adjacency().row_ptr());
  EXPECT_EQ(a.graph.adjacency().col_idx(), b.graph.adjacency().col_idx());
  EXPECT_EQ(a.graph.adjacency().values(), b.graph.adjacency().values());
  EXPECT_EQ(a.graph.weighted_degrees(), b.graph.weighted_degrees());
  EXPECT_EQ(a.coupling_residual.data(), b.coupling_residual.data());
  EXPECT_EQ(a.explicit_residuals.data(), b.explicit_residuals.data());
  EXPECT_EQ(a.explicit_nodes, b.explicit_nodes);
  EXPECT_EQ(a.ground_truth, b.ground_truth);
}

TEST(SnapshotTest, RoundTripsBitIdentically) {
  const Scenario original = TestScenario();
  const std::string path = SavedSnapshot(original, "roundtrip.lbps");
  std::string error;
  const auto loaded = LoadSnapshot(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  ExpectScenariosIdentical(original, *loaded);

  // The derived edge list is the canonical (u < v, sorted) ordering the
  // generators produce, with identical weights.
  ASSERT_EQ(loaded->graph.edges().size(), original.graph.edges().size());
  EXPECT_EQ(loaded->graph.num_undirected_edges(),
            original.graph.num_undirected_edges());

  // Saving the loaded scenario reproduces the file byte for byte.
  const std::string resaved = SavedSnapshot(*loaded, "roundtrip2.lbps");
  EXPECT_EQ(ReadBytes(path), ReadBytes(resaved));
}

TEST(SnapshotTest, RoundTripsWithoutGroundTruth) {
  std::string error;
  auto original = MakeScenario("kronecker:g=1,seed=4", &error);
  ASSERT_TRUE(original.has_value()) << error;
  ASSERT_FALSE(original->HasGroundTruth());
  const std::string path = SavedSnapshot(*original, "no_truth.lbps");
  const auto loaded = LoadSnapshot(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  ExpectScenariosIdentical(*original, *loaded);
}

TEST(SnapshotTest, ParallelLoadIsBitIdenticalToSerial) {
  const Scenario original = TestScenario();
  const std::string path = SavedSnapshot(original, "parallel.lbps");
  std::string error;
  const auto serial =
      LoadSnapshot(path, &error, exec::ExecContext::Serial());
  ASSERT_TRUE(serial.has_value()) << error;
  const auto threaded =
      LoadSnapshot(path, &error, exec::ExecContext::WithThreads(4));
  ASSERT_TRUE(threaded.has_value()) << error;
  ExpectScenariosIdentical(*serial, *threaded);
}

TEST(SnapshotTest, InfoReadsHeaderWithoutDeserializing) {
  const Scenario original = TestScenario();
  const std::string path = SavedSnapshot(original, "info.lbps");
  std::string error;
  const auto info = ReadSnapshotInfo(path, &error);
  ASSERT_TRUE(info.has_value()) << error;
  EXPECT_EQ(info->version, kSnapshotVersion);
  EXPECT_EQ(info->num_nodes, original.graph.num_nodes());
  EXPECT_EQ(info->k, original.k);
  EXPECT_EQ(info->nnz, original.graph.num_directed_edges());
  EXPECT_EQ(info->num_explicit,
            static_cast<std::int64_t>(original.explicit_nodes.size()));
  EXPECT_TRUE(info->has_ground_truth);
  EXPECT_EQ(info->name, "fraud");
  EXPECT_EQ(info->spec, "fraud:users=80,products=40,seed=13");
}

TEST(SnapshotTest, SaveReportsBufferedWriteFailures) {
  // /dev/full accepts the open but fails every flush with ENOSPC — the
  // disk-full scenario. A writer that skips the flush/close check would
  // report success for a file that was never durably written.
  if (!std::ifstream("/dev/full").good()) {
    GTEST_SKIP() << "/dev/full not available";
  }
  const Scenario scenario = TestScenario();
  std::string error;
  EXPECT_FALSE(SaveSnapshot(scenario, "/dev/full", &error));
  EXPECT_NE(error.find("failed"), std::string::npos) << error;
}

TEST(SnapshotTest, SaveReportsUnwritablePaths) {
  const Scenario scenario = TestScenario();
  std::string error;
  EXPECT_FALSE(SaveSnapshot(scenario, ::testing::TempDir(), &error));
  EXPECT_NE(error.find("cannot write"), std::string::npos) << error;
}

TEST(SnapshotTest, RejectsMissingAndTruncatedFiles) {
  std::string error;
  EXPECT_FALSE(LoadSnapshot(TempPath("absent.lbps"), &error).has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos);

  const Scenario original = TestScenario();
  const std::string path = SavedSnapshot(original, "truncate.lbps");
  const std::vector<char> bytes = ReadBytes(path);
  // Shorter than the header.
  WriteBytes(path, std::vector<char>(bytes.begin(), bytes.begin() + 40));
  EXPECT_FALSE(LoadSnapshot(path, &error).has_value());
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;
  // Header intact, payload cut.
  WriteBytes(path,
             std::vector<char>(bytes.begin(), bytes.end() - 100));
  EXPECT_FALSE(LoadSnapshot(path, &error).has_value());
  // (either the checksum or the section reads catch it first)
  EXPECT_FALSE(error.empty());
}

TEST(SnapshotTest, RejectsBadMagicVersionAndEndianness) {
  const Scenario original = TestScenario();
  const std::string path = SavedSnapshot(original, "header.lbps");
  const std::vector<char> bytes = ReadBytes(path);
  std::string error;

  std::vector<char> bad_magic = bytes;
  bad_magic[0] = 'X';
  WriteBytes(path, bad_magic);
  EXPECT_FALSE(LoadSnapshot(path, &error).has_value());
  EXPECT_NE(error.find("bad magic"), std::string::npos) << error;

  std::vector<char> bad_version = bytes;
  const std::uint32_t version = 99;
  std::memcpy(bad_version.data() + 8, &version, 4);
  WriteBytes(path, bad_version);
  EXPECT_FALSE(LoadSnapshot(path, &error).has_value());
  EXPECT_NE(error.find("unsupported snapshot version 99"),
            std::string::npos)
      << error;

  // A big-endian writer would emit the tag byte-swapped.
  std::vector<char> swapped = bytes;
  std::swap(swapped[12], swapped[15]);
  std::swap(swapped[13], swapped[14]);
  WriteBytes(path, swapped);
  EXPECT_FALSE(LoadSnapshot(path, &error).has_value());
  EXPECT_NE(error.find("big-endian"), std::string::npos) << error;

  EXPECT_FALSE(ReadSnapshotInfo(path, &error).has_value());
}

TEST(SnapshotTest, RejectsCorruptedPayloadAndHeaderCounts) {
  const Scenario original = TestScenario();
  const std::string path = SavedSnapshot(original, "corrupt.lbps");
  const std::vector<char> bytes = ReadBytes(path);
  std::string error;

  // Flip one payload byte: the checksum must catch it.
  std::vector<char> flipped = bytes;
  flipped[flipped.size() - 7] ^= 0x20;
  WriteBytes(path, flipped);
  EXPECT_FALSE(LoadSnapshot(path, &error).has_value());
  EXPECT_NE(error.find("checksum mismatch"), std::string::npos) << error;

  // num_explicit > num_nodes in the header.
  std::vector<char> bad_counts = bytes;
  const std::int64_t huge = original.graph.num_nodes() + 1;
  std::memcpy(bad_counts.data() + 40, &huge, 8);
  WriteBytes(path, bad_counts);
  EXPECT_FALSE(LoadSnapshot(path, &error).has_value());
  EXPECT_NE(error.find("counts out of range"), std::string::npos) << error;

  // Appended trailing garbage changes the payload, so it cannot pass.
  std::vector<char> padded = bytes;
  padded.insert(padded.end(), 16, '\0');
  WriteBytes(path, padded);
  EXPECT_FALSE(LoadSnapshot(path, &error).has_value());
}

// Helpers for crafting checksum-valid but structurally hostile payloads:
// the loader must reject them with errors, never crash or abort.
std::uint64_t TestFnv1a(const char* data, std::size_t size) {
  std::uint64_t hash = 14695981039346656037ull;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 1099511628211ull;
  }
  return hash;
}

void FixChecksum(std::vector<char>* bytes) {
  const std::uint64_t checksum =
      TestFnv1a(bytes->data() + 64, bytes->size() - 64);
  std::memcpy(bytes->data() + 56, &checksum, 8);
}

// Byte offset of the CSR row_ptr section inside the payload.
std::size_t RowPtrOffset(const std::vector<char>& bytes) {
  std::int64_t k = 0;
  std::memcpy(&k, bytes.data() + 24, 8);
  std::size_t off = 64;
  auto skip_string = [&] {
    std::uint32_t length = 0;
    std::memcpy(&length, bytes.data() + off, 4);
    off += 4 + length;
  };
  skip_string();  // name
  skip_string();  // spec
  off += static_cast<std::size_t>(k * k) * 8;  // coupling residual
  return off;
}

TEST(SnapshotTest, RejectsChecksumValidRowPtrCorruption) {
  const Scenario original = TestScenario();
  const std::string path = SavedSnapshot(original, "hostile_rowptr.lbps");
  std::vector<char> bytes = ReadBytes(path);
  // row_ptr[1] = 1000000 with nnz far smaller: without the up-front
  // whole-array monotonicity check the entry sweep would read col_idx a
  // million entries out of bounds.
  const std::int64_t huge = 1000000;
  std::memcpy(bytes.data() + RowPtrOffset(bytes) + 8, &huge, 8);
  FixChecksum(&bytes);
  WriteBytes(path, bytes);
  std::string error;
  EXPECT_FALSE(LoadSnapshot(path, &error).has_value());
  EXPECT_NE(error.find("invalid CSR row pointers"), std::string::npos)
      << error;
}

TEST(SnapshotTest, RejectsChecksumValidAsymmetry) {
  const Scenario original = TestScenario();
  const std::string path = SavedSnapshot(original, "hostile_values.lbps");
  std::vector<char> bytes = ReadBytes(path);
  // Overwrite the first stored value only: its mirror keeps the old
  // weight, so the symmetry sweep must reject the payload.
  const std::size_t values_offset =
      RowPtrOffset(bytes) +
      static_cast<std::size_t>(original.graph.num_nodes() + 1) * 8 +
      static_cast<std::size_t>(original.graph.num_directed_edges()) * 4;
  const double tweaked = 7.5;
  std::memcpy(bytes.data() + values_offset, &tweaked, 8);
  FixChecksum(&bytes);
  WriteBytes(path, bytes);
  std::string error;
  EXPECT_FALSE(LoadSnapshot(path, &error).has_value());
  EXPECT_NE(error.find("invalid adjacency payload"), std::string::npos)
      << error;
}

TEST(SnapshotTest, RejectsHugeNnzWithoutAllocating) {
  const Scenario original = TestScenario();
  const std::string path = SavedSnapshot(original, "hostile_nnz.lbps");
  std::vector<char> bytes = ReadBytes(path);
  // An nnz so large that count * sizeof(T) wraps size_t: the bounds
  // check must reject it before any resize, not abort on length_error.
  const std::int64_t nnz = std::int64_t{1} << 62;
  std::memcpy(bytes.data() + 32, &nnz, 8);
  WriteBytes(path, bytes);
  std::string error;
  EXPECT_FALSE(LoadSnapshot(path, &error).has_value());
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;
}

TEST(SnapshotTest, LoadedScenarioRunsEndToEnd) {
  const Scenario original = TestScenario();
  const std::string path = SavedSnapshot(original, "end_to_end.lbps");
  std::string error;
  const auto loaded = LoadSnapshot(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  // The reconstructed graph is a fully functional Graph: symmetric
  // adjacency, consistent degrees, usable by the solvers.
  EXPECT_TRUE(loaded->graph.adjacency().IsSymmetric());
  EXPECT_EQ(loaded->Coupling().k(), loaded->k);
  for (std::int64_t v = 0; v < loaded->graph.num_nodes(); ++v) {
    EXPECT_EQ(loaded->graph.Degree(v), original.graph.Degree(v));
  }
}

}  // namespace
}  // namespace dataset
}  // namespace linbp
