#include "src/dataset/shard.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "src/dataset/registry.h"
#include "src/dataset/snapshot.h"
#include "tests/testing/test_util.h"

namespace linbp {
namespace dataset {
namespace {

using linbp::testing::ReadBytes;
using linbp::testing::WriteBytes;

std::string TempDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// (Value-returning helpers cannot ASSERT, and dereferencing an empty
// optional after a failed EXPECT is UB — so both report the failure and
// return an inert sentinel the caller's own assertions then catch.)
Scenario TestScenario() {
  std::string error;
  auto scenario =
      MakeScenario("fraud:users=80,products=40,seed=13", &error);
  if (!scenario.has_value()) {
    ADD_FAILURE() << "TestScenario: " << error;
    // A minimal but structurally valid sentinel: downstream save/load
    // helpers run without CHECK-aborting, and the caller's assertions
    // against the real scenario's properties fail cleanly.
    Scenario sentinel;
    sentinel.name = "sentinel";
    sentinel.k = 2;
    sentinel.coupling_residual = DenseMatrix(2, 2);
    sentinel.graph = Graph(2, {Edge{0, 1, 1.0}});
    sentinel.explicit_residuals = DenseMatrix(2, 2);
    return sentinel;
  }
  return std::move(*scenario);
}

// Writes the test scenario as a sharded snapshot; returns the manifest
// path (empty on failure).
std::string ShardedScenario(const Scenario& scenario, const std::string& name,
                            std::int64_t shards) {
  const std::string dir = TempDir(name);
  std::string error;
  const auto result = ShardSnapshot(scenario, shards, dir, &error);
  if (!result.has_value()) {
    ADD_FAILURE() << "ShardedScenario: " << error;
    return std::string();
  }
  EXPECT_GE(result->num_shards, 1);
  EXPECT_LE(result->num_shards, shards);
  return result->manifest_path;
}

void ExpectScenariosIdentical(const Scenario& a, const Scenario& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.spec, b.spec);
  EXPECT_EQ(a.k, b.k);
  EXPECT_EQ(a.graph.adjacency().row_ptr(), b.graph.adjacency().row_ptr());
  EXPECT_EQ(a.graph.adjacency().col_idx(), b.graph.adjacency().col_idx());
  EXPECT_EQ(a.graph.adjacency().values(), b.graph.adjacency().values());
  EXPECT_EQ(a.graph.weighted_degrees(), b.graph.weighted_degrees());
  EXPECT_EQ(a.coupling_residual.data(), b.coupling_residual.data());
  EXPECT_EQ(a.explicit_residuals.data(), b.explicit_residuals.data());
  EXPECT_EQ(a.explicit_nodes, b.explicit_nodes);
  EXPECT_EQ(a.ground_truth, b.ground_truth);
}

// The FNV-1a the formats use, reimplemented so the corruption tests can
// forge "checksum-valid" hostile bytes.
std::uint64_t TestFnv1a(const char* data, std::size_t size) {
  std::uint64_t hash = 14695981039346656037ull;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 1099511628211ull;
  }
  return hash;
}

void FixChecksum(std::vector<char>* bytes) {
  const std::uint64_t checksum =
      TestFnv1a(bytes->data() + 64, bytes->size() - 64);
  std::memcpy(bytes->data() + 56, &checksum, 8);
}

// Byte offset of shard `index`'s manifest entry (the i64 row_begin).
// Reads the header version: v2 entries carry an extra i64 payload_bytes.
std::size_t ManifestEntryOffset(const std::vector<char>& manifest,
                                std::int64_t index) {
  std::uint32_t version = 0;
  std::memcpy(&version, manifest.data() + 8, 4);
  std::int64_t k = 0;
  std::memcpy(&k, manifest.data() + 24, 8);
  std::size_t off = 64;
  auto skip_string = [&] {
    std::uint32_t length = 0;
    std::memcpy(&length, manifest.data() + off, 4);
    off += 4 + length;
  };
  skip_string();  // name
  skip_string();  // spec
  off += static_cast<std::size_t>(k * k) * 8;  // coupling residual
  for (std::int64_t s = 0; s < index; ++s) {
    // row_begin, row_end, nnz, num_explicit, [payload_bytes,] checksum
    off += (version >= 2 ? 8 * 5 : 8 * 4) + 8;
    skip_string();  // file name
  }
  return off;
}

// Rewrites one shard file's payload byte and re-forges every checksum on
// the path to it (shard header, manifest entry, manifest header), so only
// the structural validation can catch the change.
void TamperShardValueAndForgeChecksums(const std::string& manifest_path,
                                       const std::string& shard_path) {
  std::vector<char> shard = ReadBytes(shard_path);
  std::int64_t row_begin = 0, row_end = 0, nnz = 0;
  std::memcpy(&row_begin, shard.data() + 16, 8);
  std::memcpy(&row_end, shard.data() + 24, 8);
  std::memcpy(&nnz, shard.data() + 32, 8);
  ASSERT_GT(nnz, 0);
  // First stored value of the shard: after the local row_ptr and col_idx.
  const std::size_t values_offset =
      64 + static_cast<std::size_t>(row_end - row_begin + 1) * 8 +
      static_cast<std::size_t>(nnz) * 4;
  const double tweaked = 7.5;
  std::memcpy(shard.data() + values_offset, &tweaked, 8);
  FixChecksum(&shard);
  std::uint64_t forged = 0;
  std::memcpy(&forged, shard.data() + 56, 8);
  WriteBytes(shard_path, shard);

  std::vector<char> manifest = ReadBytes(manifest_path);
  const std::size_t entry = ManifestEntryOffset(manifest, 0);
  std::memcpy(manifest.data() + entry + 32, &forged, 8);
  FixChecksum(&manifest);
  WriteBytes(manifest_path, manifest);
}

TEST(ShardTest, RoundTripsBitIdenticallyToMonolithicSnapshot) {
  const Scenario original = TestScenario();
  const std::string manifest = ShardedScenario(original, "roundtrip", 4);
  std::string error;
  const auto loaded = LoadShardedSnapshot(manifest, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  ExpectScenariosIdentical(original, *loaded);

  // The acceptance bar: a sharded load is indistinguishable from the
  // monolithic snapshot of the same scenario — byte for byte when both
  // are re-saved monolithically.
  const std::string mono = ::testing::TempDir() + "/shard_vs_mono.lbps";
  const std::string remono = ::testing::TempDir() + "/shard_vs_mono2.lbps";
  ASSERT_TRUE(SaveSnapshot(original, mono, &error)) << error;
  ASSERT_TRUE(SaveSnapshot(*loaded, remono, &error)) << error;
  EXPECT_EQ(ReadBytes(mono), ReadBytes(remono));
}

TEST(ShardTest, SingleShardAndMoreShardsThanRowsBothWork) {
  const Scenario original = TestScenario();
  std::string error;
  for (const std::int64_t shards : {std::int64_t{1}, std::int64_t{100000}}) {
    const std::string manifest = ShardedScenario(
        original, "count" + std::to_string(shards), shards);
    const auto loaded = LoadShardedSnapshot(manifest, &error);
    ASSERT_TRUE(loaded.has_value()) << error;
    ExpectScenariosIdentical(original, *loaded);
  }
}

TEST(ShardTest, RoundTripsWithoutGroundTruth) {
  std::string error;
  auto original = MakeScenario("kronecker:g=1,seed=4", &error);
  ASSERT_TRUE(original.has_value()) << error;
  ASSERT_FALSE(original->HasGroundTruth());
  const std::string manifest = ShardedScenario(*original, "no_truth", 3);
  const auto loaded = LoadShardedSnapshot(manifest, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  ExpectScenariosIdentical(*original, *loaded);
}

TEST(ShardTest, ParallelLoadIsBitIdenticalToSerial) {
  const Scenario original = TestScenario();
  const std::string manifest = ShardedScenario(original, "parallel", 4);
  std::string error;
  const auto serial =
      LoadShardedSnapshot(manifest, &error, exec::ExecContext::Serial());
  ASSERT_TRUE(serial.has_value()) << error;
  const auto threaded = LoadShardedSnapshot(
      manifest, &error, exec::ExecContext::WithThreads(4));
  ASSERT_TRUE(threaded.has_value()) << error;
  ExpectScenariosIdentical(*serial, *threaded);
}

TEST(ShardTest, SnapScenarioAcceptsManifestTransparently) {
  const Scenario original = TestScenario();
  const std::string manifest = ShardedScenario(original, "registry", 3);
  EXPECT_TRUE(LooksLikeShardManifest(manifest));
  std::string error;
  const auto loaded = MakeScenario("snap:path=" + manifest, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  ExpectScenariosIdentical(original, *loaded);

  // A monolithic snapshot is NOT mistaken for a manifest.
  const std::string mono = ::testing::TempDir() + "/registry_mono.lbps";
  ASSERT_TRUE(SaveSnapshot(original, mono, &error)) << error;
  EXPECT_FALSE(LooksLikeShardManifest(mono));
  const auto mono_loaded = MakeScenario("snap:path=" + mono, &error);
  ASSERT_TRUE(mono_loaded.has_value()) << error;
  ExpectScenariosIdentical(original, *mono_loaded);
}

TEST(ShardTest, ManifestInfoReportsTheShardTable) {
  const Scenario original = TestScenario();
  const std::string manifest = ShardedScenario(original, "info", 4);
  std::string error;
  const auto info = ReadShardManifestInfo(manifest, &error);
  ASSERT_TRUE(info.has_value()) << error;
  EXPECT_EQ(info->version, kShardFormatVersion);
  EXPECT_EQ(info->num_nodes, original.graph.num_nodes());
  EXPECT_EQ(info->k, original.k);
  EXPECT_EQ(info->nnz, original.graph.num_directed_edges());
  EXPECT_EQ(info->num_explicit,
            static_cast<std::int64_t>(original.explicit_nodes.size()));
  EXPECT_TRUE(info->has_ground_truth);
  EXPECT_EQ(info->name, "fraud");
  ASSERT_EQ(static_cast<std::int64_t>(info->shards.size()), 4);
  std::int64_t nnz_sum = 0;
  std::int64_t expected_begin = 0;
  for (const ShardRangeInfo& shard : info->shards) {
    EXPECT_EQ(shard.row_begin, expected_begin);
    EXPECT_GT(shard.row_end, shard.row_begin);
    expected_begin = shard.row_end;
    nnz_sum += shard.nnz;
  }
  EXPECT_EQ(expected_begin, original.graph.num_nodes());
  EXPECT_EQ(nnz_sum, info->nnz);
}

// ---- Compressed (v2) shards ----------------------------------------------

// Shards with an explicit compression choice; returns the manifest path.
std::string ShardedCompressed(const Scenario& scenario,
                              const std::string& name, std::int64_t shards,
                              ShardCompression compression) {
  const std::string dir = TempDir(name);
  std::string error;
  const auto result =
      ShardSnapshot(scenario, shards, dir, &error, compression);
  if (!result.has_value()) {
    ADD_FAILURE() << "ShardedCompressed: " << error;
    return std::string();
  }
  return result->manifest_path;
}

TEST(ShardTest, CompressedF64RoundTripsBitIdentically) {
  const Scenario original = TestScenario();
  const std::string manifest = ShardedCompressed(
      original, "v2_f64", 4, ShardCompression::kF64);
  std::string error;
  const auto loaded = LoadShardedSnapshot(manifest, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  ExpectScenariosIdentical(original, *loaded);
}

TEST(ShardTest, CompressedF32RoundTripWidensStoredFloatsExactly) {
  const Scenario original = TestScenario();
  const std::string manifest = ShardedCompressed(
      original, "v2_f32", 4, ShardCompression::kF32);
  std::string error;
  const auto loaded = LoadShardedSnapshot(manifest, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  // Structure and the f64 side sections survive untouched; only the
  // adjacency values pass through a single f32 narrowing.
  EXPECT_EQ(original.graph.adjacency().row_ptr(),
            loaded->graph.adjacency().row_ptr());
  EXPECT_EQ(original.graph.adjacency().col_idx(),
            loaded->graph.adjacency().col_idx());
  EXPECT_EQ(original.explicit_residuals.data(),
            loaded->explicit_residuals.data());
  EXPECT_EQ(original.ground_truth, loaded->ground_truth);
  const auto& expected = original.graph.adjacency().values();
  const auto& actual = loaded->graph.adjacency().values();
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t e = 0; e < expected.size(); ++e) {
    ASSERT_EQ(actual[e],
              static_cast<double>(static_cast<float>(expected[e])))
        << "entry " << e;
  }

  // Narrowing is idempotent: re-sharding the loaded scenario as f32 and
  // loading again is a bit-identical round trip.
  const std::string manifest2 = ShardedCompressed(
      *loaded, "v2_f32_again", 4, ShardCompression::kF32);
  const auto reloaded = LoadShardedSnapshot(manifest2, &error);
  ASSERT_TRUE(reloaded.has_value()) << error;
  ExpectScenariosIdentical(*loaded, *reloaded);
}

TEST(ShardTest, CompressedParallelLoadIsBitIdenticalToSerial) {
  const Scenario original = TestScenario();
  const std::string manifest = ShardedCompressed(
      original, "v2_parallel", 4, ShardCompression::kF64);
  std::string error;
  const auto serial =
      LoadShardedSnapshot(manifest, &error, exec::ExecContext::Serial());
  ASSERT_TRUE(serial.has_value()) << error;
  const auto threaded = LoadShardedSnapshot(
      manifest, &error, exec::ExecContext::WithThreads(4));
  ASSERT_TRUE(threaded.has_value()) << error;
  ExpectScenariosIdentical(*serial, *threaded);
}

TEST(ShardTest, ManifestInfoReportsV2CompressionAndBothSizes) {
  const Scenario original = TestScenario();
  for (const bool f32 : {false, true}) {
    const std::string manifest = ShardedCompressed(
        original, f32 ? "v2_info_f32" : "v2_info_f64", 4,
        f32 ? ShardCompression::kF32 : ShardCompression::kF64);
    std::string error;
    const auto info = ReadShardManifestInfo(manifest, &error);
    ASSERT_TRUE(info.has_value()) << error;
    EXPECT_EQ(info->version, kShardFormatVersionV2);
    EXPECT_EQ(info->values_f32, f32);
    const std::filesystem::path dir =
        std::filesystem::path(manifest).parent_path();
    std::int64_t encoded_total = 0;
    std::int64_t decoded_total = 0;
    for (const ShardRangeInfo& shard : info->shards) {
      // Declared on-disk payload equals the file size minus the header;
      // the decoded side is what the resident CSR blocks will cost.
      EXPECT_EQ(static_cast<std::uintmax_t>(shard.payload_bytes + 64),
                std::filesystem::file_size(dir / shard.file));
      EXPECT_GT(shard.decoded_bytes, shard.payload_bytes);
      encoded_total += shard.payload_bytes;
      decoded_total += shard.decoded_bytes;
    }
    EXPECT_EQ(info->total_encoded_payload_bytes, encoded_total);
    EXPECT_EQ(info->total_shard_payload_bytes, decoded_total);
    // Delta+varint columns must beat raw i32s on a sorted-neighbor graph.
    EXPECT_LT(info->total_encoded_payload_bytes,
              info->total_shard_payload_bytes);
  }
}

// ---- Corruption matrix ---------------------------------------------------

TEST(ShardTest, RejectsMissingShardFile) {
  const Scenario original = TestScenario();
  const std::string manifest = ShardedScenario(original, "missing", 3);
  const std::string victim =
      (std::filesystem::path(manifest).parent_path() / ShardFileName(1))
          .string();
  std::filesystem::remove(victim);
  std::string error;
  EXPECT_FALSE(LoadShardedSnapshot(manifest, &error).has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

TEST(ShardTest, RejectsManifestChecksumMismatch) {
  const Scenario original = TestScenario();
  const std::string manifest = ShardedScenario(original, "man_check", 3);
  std::vector<char> bytes = ReadBytes(manifest);
  bytes[bytes.size() - 3] ^= 0x40;  // flip a payload byte, keep the header
  WriteBytes(manifest, bytes);
  std::string error;
  EXPECT_FALSE(LoadShardedSnapshot(manifest, &error).has_value());
  EXPECT_NE(error.find("checksum mismatch"), std::string::npos) << error;
  EXPECT_FALSE(ReadShardManifestInfo(manifest, &error).has_value());
}

TEST(ShardTest, RejectsBadMagicVersionAndEndianness) {
  const Scenario original = TestScenario();
  const std::string manifest = ShardedScenario(original, "man_header", 3);
  const std::vector<char> bytes = ReadBytes(manifest);
  std::string error;

  std::vector<char> bad_magic = bytes;
  bad_magic[0] = 'X';
  WriteBytes(manifest, bad_magic);
  EXPECT_FALSE(LoadShardedSnapshot(manifest, &error).has_value());
  EXPECT_NE(error.find("bad magic"), std::string::npos) << error;

  std::vector<char> bad_version = bytes;
  const std::uint32_t version = 99;
  std::memcpy(bad_version.data() + 8, &version, 4);
  WriteBytes(manifest, bad_version);
  EXPECT_FALSE(LoadShardedSnapshot(manifest, &error).has_value());
  EXPECT_NE(error.find("unsupported shard manifest version 99"),
            std::string::npos)
      << error;

  std::vector<char> swapped = bytes;
  std::swap(swapped[12], swapped[15]);
  std::swap(swapped[13], swapped[14]);
  WriteBytes(manifest, swapped);
  EXPECT_FALSE(LoadShardedSnapshot(manifest, &error).has_value());
  EXPECT_NE(error.find("big-endian"), std::string::npos) << error;
}

TEST(ShardTest, RejectsRowRangeGapAndOverlap) {
  const Scenario original = TestScenario();
  for (const std::int64_t delta : {std::int64_t{1}, std::int64_t{-1}}) {
    const std::string manifest = ShardedScenario(
        original, delta > 0 ? "gap" : "overlap", 3);
    std::vector<char> bytes = ReadBytes(manifest);
    // Shift shard 1's row_begin: +1 opens a gap, -1 overlaps shard 0.
    const std::size_t entry = ManifestEntryOffset(bytes, 1);
    std::int64_t row_begin = 0;
    std::memcpy(&row_begin, bytes.data() + entry, 8);
    row_begin += delta;
    std::memcpy(bytes.data() + entry, &row_begin, 8);
    FixChecksum(&bytes);
    WriteBytes(manifest, bytes);
    std::string error;
    EXPECT_FALSE(LoadShardedSnapshot(manifest, &error).has_value());
    EXPECT_NE(error.find("gap or overlap"), std::string::npos) << error;
  }
}

TEST(ShardTest, RejectsShardChecksumMismatch) {
  const Scenario original = TestScenario();
  const std::string manifest = ShardedScenario(original, "shard_check", 3);
  const std::string victim =
      (std::filesystem::path(manifest).parent_path() / ShardFileName(0))
          .string();
  std::vector<char> bytes = ReadBytes(victim);
  bytes[bytes.size() - 5] ^= 0x10;
  WriteBytes(victim, bytes);
  std::string error;
  EXPECT_FALSE(LoadShardedSnapshot(manifest, &error).has_value());
  EXPECT_NE(error.find("checksum mismatch"), std::string::npos) << error;
}

TEST(ShardTest, RejectsShardHeaderDisagreeingWithManifest) {
  const Scenario original = TestScenario();
  const std::string manifest = ShardedScenario(original, "mismatch", 3);
  const std::string victim =
      (std::filesystem::path(manifest).parent_path() / ShardFileName(2))
          .string();
  std::vector<char> bytes = ReadBytes(victim);
  // Claim a different shard index (payload untouched, checksums intact).
  const std::uint32_t wrong_index = 7;
  std::memcpy(bytes.data() + 52, &wrong_index, 4);
  WriteBytes(victim, bytes);
  std::string error;
  EXPECT_FALSE(LoadShardedSnapshot(manifest, &error).has_value());
  EXPECT_NE(error.find("disagrees with its manifest entry"),
            std::string::npos)
      << error;
}

TEST(ShardTest, RejectsTruncatedShardFile) {
  const Scenario original = TestScenario();
  const std::string manifest = ShardedScenario(original, "truncated", 3);
  const std::string victim =
      (std::filesystem::path(manifest).parent_path() / ShardFileName(1))
          .string();
  const std::vector<char> bytes = ReadBytes(victim);
  WriteBytes(victim,
             std::vector<char>(bytes.begin(), bytes.end() - 64));
  std::string error;
  EXPECT_FALSE(LoadShardedSnapshot(manifest, &error).has_value());
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;
}

TEST(ShardTest, RejectsCrossShardAsymmetryWithForgedChecksums) {
  const Scenario original = TestScenario();
  const std::string manifest = ShardedScenario(original, "asymmetry", 3);
  const std::string victim =
      (std::filesystem::path(manifest).parent_path() / ShardFileName(0))
          .string();
  // Overwrite one stored value inside shard 0 and re-forge every
  // checksum: the mirror entry (in shard 0 or a later shard) keeps the
  // old weight, so only the global cross-shard symmetry sweep can catch
  // the corruption — with an error, never a crash.
  TamperShardValueAndForgeChecksums(manifest, victim);
  std::string error;
  EXPECT_FALSE(LoadShardedSnapshot(manifest, &error).has_value());
  EXPECT_NE(error.find("invalid adjacency payload"), std::string::npos)
      << error;
}

TEST(ShardTest, RejectsHugeShardCountsWithoutAllocating) {
  const Scenario original = TestScenario();
  const std::string manifest = ShardedScenario(original, "huge", 2);
  std::vector<char> bytes = ReadBytes(manifest);
  // Declare an absurd global and shard-0 nnz with a fixed-up manifest
  // checksum: the preflight against actual shard file sizes must reject
  // it before any multi-terabyte resize.
  const std::int64_t huge = std::int64_t{1} << 40;
  std::memcpy(bytes.data() + 32, &huge, 8);
  const std::size_t entry = ManifestEntryOffset(bytes, 0);
  std::int64_t nnz1 = 0;
  std::memcpy(&nnz1, bytes.data() + ManifestEntryOffset(bytes, 1) + 16, 8);
  const std::int64_t huge0 = huge - nnz1;
  std::memcpy(bytes.data() + entry + 16, &huge0, 8);
  FixChecksum(&bytes);
  WriteBytes(manifest, bytes);
  std::string error;
  EXPECT_FALSE(LoadShardedSnapshot(manifest, &error).has_value());
  EXPECT_NE(error.find("truncated shard payload"), std::string::npos)
      << error;
}

TEST(ShardTest, RejectsOverflowingShardCountSums) {
  const Scenario original = TestScenario();
  const std::string manifest = ShardedScenario(original, "overflow", 2);
  std::vector<char> bytes = ReadBytes(manifest);
  // Two entries at the per-shard 2^48 cap: a naive int64 accumulation
  // across a 2^20-entry table could wrap, so the parser must bound each
  // entry against the remaining manifest total instead.
  const std::int64_t huge = std::int64_t{1} << 48;
  std::memcpy(bytes.data() + ManifestEntryOffset(bytes, 0) + 16, &huge, 8);
  std::memcpy(bytes.data() + ManifestEntryOffset(bytes, 1) + 16, &huge, 8);
  FixChecksum(&bytes);
  WriteBytes(manifest, bytes);
  std::string error;
  EXPECT_FALSE(LoadShardedSnapshot(manifest, &error).has_value());
  EXPECT_NE(error.find("exceed the manifest totals"), std::string::npos)
      << error;
}

TEST(ShardTest, RejectsExplicitNodeOutsideItsShard) {
  const Scenario original = TestScenario();
  const std::string manifest = ShardedScenario(original, "expl_range", 3);
  const std::string victim =
      (std::filesystem::path(manifest).parent_path() / ShardFileName(0))
          .string();
  std::vector<char> shard = ReadBytes(victim);
  std::int64_t row_begin = 0, row_end = 0, nnz = 0, num_explicit = 0;
  std::memcpy(&row_begin, shard.data() + 16, 8);
  std::memcpy(&row_end, shard.data() + 24, 8);
  std::memcpy(&nnz, shard.data() + 32, 8);
  std::memcpy(&num_explicit, shard.data() + 40, 8);
  ASSERT_GT(num_explicit, 0);
  const std::size_t explicit_offset =
      64 + static_cast<std::size_t>(row_end - row_begin + 1) * 8 +
      static_cast<std::size_t>(nnz) * 12;
  // Point the first explicit id past the shard's row range and forge the
  // checksums; the per-shard range check must reject it.
  std::memcpy(shard.data() + explicit_offset, &row_end, 8);
  FixChecksum(&shard);
  std::uint64_t forged = 0;
  std::memcpy(&forged, shard.data() + 56, 8);
  WriteBytes(victim, shard);
  std::vector<char> manifest_bytes = ReadBytes(manifest);
  std::memcpy(manifest_bytes.data() + ManifestEntryOffset(manifest_bytes, 0) +
                  32,
              &forged, 8);
  FixChecksum(&manifest_bytes);
  WriteBytes(manifest, manifest_bytes);
  std::string error;
  EXPECT_FALSE(LoadShardedSnapshot(manifest, &error).has_value());
  EXPECT_NE(error.find("outside the shard's row range"), std::string::npos)
      << error;
}

TEST(ShardTest, WriterRejectsBadInputsWithErrors) {
  const Scenario original = TestScenario();
  std::string error;
  EXPECT_FALSE(ShardSnapshot(original, 0, TempDir("bad_count"), &error)
                   .has_value());
  EXPECT_NE(error.find("shard count"), std::string::npos) << error;

  Scenario empty;
  empty.k = 2;
  empty.coupling_residual = DenseMatrix(2, 2);
  empty.explicit_residuals = DenseMatrix(0, 2);
  EXPECT_FALSE(
      ShardSnapshot(empty, 2, TempDir("empty"), &error).has_value());
  EXPECT_NE(error.find("empty scenario"), std::string::npos) << error;
}

TEST(ShardTest, LoadedScenarioRunsEndToEnd) {
  const Scenario original = TestScenario();
  const std::string manifest = ShardedScenario(original, "end_to_end", 4);
  std::string error;
  const auto loaded = LoadShardedSnapshot(manifest, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_TRUE(loaded->graph.adjacency().IsSymmetric());
  EXPECT_EQ(loaded->Coupling().k(), loaded->k);
  for (std::int64_t v = 0; v < loaded->graph.num_nodes(); ++v) {
    EXPECT_EQ(loaded->graph.Degree(v), original.graph.Degree(v));
  }
}

}  // namespace
}  // namespace dataset
}  // namespace linbp
