// Shared gtest entry point linked into every test binary.

#include "gtest/gtest.h"

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
