// Shared helpers for the test suite.

#ifndef LINBP_TESTS_TESTING_TEST_UTIL_H_
#define LINBP_TESTS_TESTING_TEST_UTIL_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/graph/graph.h"
#include "src/la/dense_matrix.h"
#include "src/la/sparse_matrix.h"
#include "src/util/random.h"

namespace linbp {
namespace testing {

/// EXPECTs every entry of two matrices to agree within `tol`.
inline void ExpectMatrixNear(const DenseMatrix& actual,
                             const DenseMatrix& expected, double tol) {
  ASSERT_EQ(actual.rows(), expected.rows());
  ASSERT_EQ(actual.cols(), expected.cols());
  for (std::int64_t r = 0; r < actual.rows(); ++r) {
    for (std::int64_t c = 0; c < actual.cols(); ++c) {
      EXPECT_NEAR(actual.At(r, c), expected.At(r, c), tol)
          << "at (" << r << ", " << c << ")\nactual:\n"
          << actual.ToString() << "\nexpected:\n"
          << expected.ToString();
    }
  }
}

/// EXPECTs two sparse matrices to agree within `tol`: same shape, and every
/// entry of either pattern matches (entries stored on one side only must be
/// within `tol` of zero). Densifying keeps the comparison independent of
/// the CSR pattern, which differs across construction orders.
inline void ExpectSparseNear(const SparseMatrix& actual,
                             const SparseMatrix& expected, double tol) {
  ASSERT_EQ(actual.rows(), expected.rows());
  ASSERT_EQ(actual.cols(), expected.cols());
  const DenseMatrix a = actual.ToDense();
  const DenseMatrix e = expected.ToDense();
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    for (std::int64_t c = 0; c < a.cols(); ++c) {
      EXPECT_NEAR(a.At(r, c), e.At(r, c), tol)
          << "at (" << r << ", " << c << "); actual nnz "
          << actual.NumNonZeros() << ", expected nnz "
          << expected.NumNonZeros();
    }
  }
}

/// EXPECTs two vectors to agree within `tol`.
inline void ExpectVectorNear(const std::vector<double>& actual,
                             const std::vector<double>& expected, double tol) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_NEAR(actual[i], expected[i], tol) << "at index " << i;
  }
}

/// Reads a whole file as raw bytes (EXPECT-fails on a missing file).
inline std::vector<char> ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  const std::streamoff size = in.tellg();
  in.seekg(0);
  std::vector<char> bytes(static_cast<std::size_t>(size));
  in.read(bytes.data(), size);
  return bytes;
}

/// Overwrites a file with raw bytes (the corruption-test primitive).
inline void WriteBytes(const std::string& path,
                       const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Random dense matrix with entries uniform in [-scale, scale].
inline DenseMatrix RandomMatrix(std::int64_t rows, std::int64_t cols,
                                double scale, std::uint64_t seed) {
  Rng rng(seed);
  DenseMatrix m(rows, cols);
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      m.At(r, c) = scale * (2.0 * rng.NextDouble() - 1.0);
    }
  }
  return m;
}

/// Random symmetric matrix with entries uniform in [-scale, scale].
inline DenseMatrix RandomSymmetricMatrix(std::int64_t dim, double scale,
                                         std::uint64_t seed) {
  Rng rng(seed);
  DenseMatrix m(dim, dim);
  for (std::int64_t r = 0; r < dim; ++r) {
    for (std::int64_t c = r; c < dim; ++c) {
      const double v = scale * (2.0 * rng.NextDouble() - 1.0);
      m.At(r, c) = v;
      m.At(c, r) = v;
    }
  }
  return m;
}

/// Random symmetric residual coupling matrix: rows and columns sum to 0,
/// entries on the order of `scale`.
inline DenseMatrix RandomResidualCoupling(std::int64_t k, double scale,
                                          std::uint64_t seed) {
  // Project a random symmetric matrix onto the doubly-centered subspace:
  // X - row_mean - col_mean + total_mean keeps symmetry and zeroes all row
  // and column sums.
  const DenseMatrix raw = RandomSymmetricMatrix(k, scale, seed);
  std::vector<double> row_mean(k, 0.0);
  double total = 0.0;
  for (std::int64_t r = 0; r < k; ++r) {
    for (std::int64_t c = 0; c < k; ++c) row_mean[r] += raw.At(r, c);
    total += row_mean[r];
    row_mean[r] /= static_cast<double>(k);
  }
  total /= static_cast<double>(k * k);
  DenseMatrix out(k, k);
  for (std::int64_t r = 0; r < k; ++r) {
    for (std::int64_t c = 0; c < k; ++c) {
      out.At(r, c) = raw.At(r, c) - row_mean[r] - row_mean[c] + total;
    }
  }
  return out;
}

/// Samples `count` distinct unit-weight edges absent from `existing`
/// (in either orientation) between distinct nodes in [0, n). O(count *
/// |existing|) per draw; fine for the small graphs the tests use.
inline std::vector<Edge> RandomFreshEdges(std::vector<Edge> existing,
                                          std::int64_t n, Rng& rng,
                                          std::int64_t count) {
  std::vector<Edge> fresh;
  auto present = [&](std::int64_t u, std::int64_t v) {
    for (const Edge& e : existing) {
      if ((e.u == u && e.v == v) || (e.u == v && e.v == u)) return true;
    }
    return false;
  };
  while (static_cast<std::int64_t>(fresh.size()) < count) {
    const std::int64_t u = rng.NextInt(0, n - 1);
    const std::int64_t v = rng.NextInt(0, n - 1);
    if (u == v || present(u, v)) continue;
    existing.push_back({u, v, 1.0});
    fresh.push_back({u, v, 1.0});
  }
  return fresh;
}

}  // namespace testing
}  // namespace linbp

#endif  // LINBP_TESTS_TESTING_TEST_UTIL_H_
