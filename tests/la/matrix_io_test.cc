#include "src/la/matrix_io.h"

#include <fstream>

#include "gtest/gtest.h"
#include "tests/testing/test_util.h"

namespace linbp {
namespace {

using testing::ExpectMatrixNear;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

TEST(MatrixIoTest, RoundTrip) {
  const DenseMatrix original = testing::RandomMatrix(4, 3, 2.0, 5);
  const std::string path = TempPath("matrix.txt");
  ASSERT_TRUE(WriteDenseMatrix(original, path));
  std::string error;
  const auto loaded = ReadDenseMatrix(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  ExpectMatrixNear(*loaded, original, 0.0);
}

TEST(MatrixIoTest, CommentsAndBlankLines) {
  const std::string path = TempPath("commented.txt");
  WriteFile(path, "# coupling\n1 2 # trailing comment\n\n3 4\n");
  std::string error;
  const auto loaded = ReadDenseMatrix(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  ExpectMatrixNear(*loaded, DenseMatrix{{1, 2}, {3, 4}}, 0.0);
}

TEST(MatrixIoTest, RejectsRaggedRows) {
  const std::string path = TempPath("ragged.txt");
  WriteFile(path, "1 2\n3\n");
  std::string error;
  EXPECT_FALSE(ReadDenseMatrix(path, &error).has_value());
  EXPECT_NE(error.find("inconsistent"), std::string::npos);
}

TEST(MatrixIoTest, RejectsBadNumbers) {
  const std::string path = TempPath("nan.txt");
  WriteFile(path, "1 two\n");
  std::string error;
  EXPECT_FALSE(ReadDenseMatrix(path, &error).has_value());
  EXPECT_NE(error.find("bad number"), std::string::npos);
}

TEST(MatrixIoTest, RejectsEmptyFile) {
  const std::string path = TempPath("empty.txt");
  WriteFile(path, "# nothing\n");
  std::string error;
  EXPECT_FALSE(ReadDenseMatrix(path, &error).has_value());
  EXPECT_NE(error.find("no rows"), std::string::npos);
}

TEST(MatrixIoTest, MissingFile) {
  std::string error;
  EXPECT_FALSE(ReadDenseMatrix(TempPath("absent.txt"), &error).has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace linbp
