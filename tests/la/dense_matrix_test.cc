#include "src/la/dense_matrix.h"

#include "gtest/gtest.h"
#include "tests/testing/test_util.h"

namespace linbp {
namespace {

using testing::ExpectMatrixNear;
using testing::ExpectVectorNear;
using testing::RandomMatrix;

TEST(DenseMatrixTest, DefaultIsEmpty) {
  DenseMatrix m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
}

TEST(DenseMatrixTest, ZeroInitialized) {
  DenseMatrix m(2, 3);
  for (std::int64_t r = 0; r < 2; ++r) {
    for (std::int64_t c = 0; c < 3; ++c) EXPECT_EQ(m.At(r, c), 0.0);
  }
}

TEST(DenseMatrixTest, InitializerList) {
  DenseMatrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.At(0, 0), 1.0);
  EXPECT_EQ(m.At(1, 2), 6.0);
}

TEST(DenseMatrixTest, Identity) {
  const DenseMatrix eye = DenseMatrix::Identity(3);
  ExpectMatrixNear(eye, DenseMatrix{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}, 0.0);
}

TEST(DenseMatrixTest, Diagonal) {
  const DenseMatrix d = DenseMatrix::Diagonal({2.0, -1.0});
  ExpectMatrixNear(d, DenseMatrix{{2, 0}, {0, -1}}, 0.0);
}

TEST(DenseMatrixTest, AddSubScale) {
  DenseMatrix a{{1, 2}, {3, 4}};
  DenseMatrix b{{5, 6}, {7, 8}};
  ExpectMatrixNear(a.Add(b), DenseMatrix{{6, 8}, {10, 12}}, 0.0);
  ExpectMatrixNear(b.Sub(a), DenseMatrix{{4, 4}, {4, 4}}, 0.0);
  ExpectMatrixNear(a.Scale(2.0), DenseMatrix{{2, 4}, {6, 8}}, 0.0);
  ExpectMatrixNear(a.AddScalar(1.0), DenseMatrix{{2, 3}, {4, 5}}, 0.0);
}

TEST(DenseMatrixTest, MultiplyHandValue) {
  DenseMatrix a{{1, 2}, {3, 4}};
  DenseMatrix b{{5, 6}, {7, 8}};
  ExpectMatrixNear(a.Multiply(b), DenseMatrix{{19, 22}, {43, 50}}, 1e-14);
}

TEST(DenseMatrixTest, MultiplyRectangular) {
  DenseMatrix a{{1, 0, 2}, {0, 3, 0}};
  DenseMatrix b{{1, 1}, {2, 0}, {0, 5}};
  ExpectMatrixNear(a.Multiply(b), DenseMatrix{{1, 11}, {6, 0}}, 1e-14);
}

TEST(DenseMatrixTest, MultiplyByIdentity) {
  const DenseMatrix a = RandomMatrix(4, 4, 2.0, /*seed=*/1);
  ExpectMatrixNear(a.Multiply(DenseMatrix::Identity(4)), a, 0.0);
  ExpectMatrixNear(DenseMatrix::Identity(4).Multiply(a), a, 0.0);
}

TEST(DenseMatrixTest, Transpose) {
  DenseMatrix a{{1, 2, 3}, {4, 5, 6}};
  ExpectMatrixNear(a.Transpose(), DenseMatrix{{1, 4}, {2, 5}, {3, 6}}, 0.0);
}

TEST(DenseMatrixTest, TransposeOfProduct) {
  const DenseMatrix a = RandomMatrix(3, 4, 1.0, 2);
  const DenseMatrix b = RandomMatrix(4, 5, 1.0, 3);
  ExpectMatrixNear(a.Multiply(b).Transpose(),
                   b.Transpose().Multiply(a.Transpose()), 1e-12);
}

TEST(DenseMatrixTest, MultiplyVector) {
  DenseMatrix a{{1, 2}, {3, 4}, {5, 6}};
  ExpectVectorNear(a.MultiplyVector({1.0, -1.0}), {-1.0, -1.0, -1.0}, 1e-14);
}

TEST(DenseMatrixTest, MaxAbsAndDiff) {
  DenseMatrix a{{1, -7}, {3, 4}};
  DenseMatrix b{{1, -7}, {3, 9}};
  EXPECT_EQ(a.MaxAbs(), 7.0);
  EXPECT_EQ(a.MaxAbsDiff(b), 5.0);
  EXPECT_EQ(a.MaxAbsDiff(a), 0.0);
}

TEST(DenseMatrixTest, IsSymmetric) {
  EXPECT_TRUE((DenseMatrix{{1, 2}, {2, 3}}).IsSymmetric());
  EXPECT_FALSE((DenseMatrix{{1, 2}, {2.1, 3}}).IsSymmetric());
  EXPECT_TRUE((DenseMatrix{{1, 2}, {2.1, 3}}).IsSymmetric(/*tol=*/0.2));
  EXPECT_FALSE(RandomMatrix(2, 3, 1.0, 4).IsSymmetric());  // non-square
}

TEST(DenseMatrixTest, VectorizeIsColumnMajor) {
  DenseMatrix a{{1, 4}, {2, 5}, {3, 6}};
  ExpectVectorNear(a.Vectorize(), {1, 2, 3, 4, 5, 6}, 0.0);
}

TEST(DenseMatrixTest, VectorizeRoundTrip) {
  const DenseMatrix a = RandomMatrix(4, 3, 5.0, 5);
  ExpectMatrixNear(DenseMatrix::FromVectorized(a.Vectorize(), 4, 3), a, 0.0);
}

TEST(DenseMatrixTest, KroneckerHandValue) {
  DenseMatrix a{{1, 2}, {3, 4}};
  DenseMatrix b{{0, 1}, {1, 0}};
  ExpectMatrixNear(a.Kronecker(b),
                   DenseMatrix{{0, 1, 0, 2},
                               {1, 0, 2, 0},
                               {0, 3, 0, 4},
                               {3, 0, 4, 0}},
                   0.0);
}

TEST(DenseMatrixTest, KroneckerMixedProductProperty) {
  // (A (x) B)(C (x) D) = AC (x) BD.
  const DenseMatrix a = RandomMatrix(2, 2, 1.0, 6);
  const DenseMatrix b = RandomMatrix(3, 3, 1.0, 7);
  const DenseMatrix c = RandomMatrix(2, 2, 1.0, 8);
  const DenseMatrix d = RandomMatrix(3, 3, 1.0, 9);
  ExpectMatrixNear(a.Kronecker(b).Multiply(c.Kronecker(d)),
                   a.Multiply(c).Kronecker(b.Multiply(d)), 1e-12);
}

// Roth's column lemma, the identity behind Prop. 7 of the paper:
// vec(X Y Z) = (Z^T (x) X) vec(Y).
TEST(DenseMatrixTest, RothsColumnLemma) {
  const DenseMatrix x = RandomMatrix(3, 4, 1.0, 10);
  const DenseMatrix y = RandomMatrix(4, 2, 1.0, 11);
  const DenseMatrix z = RandomMatrix(2, 5, 1.0, 12);
  const std::vector<double> lhs = x.Multiply(y).Multiply(z).Vectorize();
  const std::vector<double> rhs =
      z.Transpose().Kronecker(x).MultiplyVector(y.Vectorize());
  ExpectVectorNear(lhs, rhs, 1e-12);
}

class DenseMatrixRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(DenseMatrixRandomTest, MultiplyAssociativity) {
  const std::uint64_t seed = GetParam();
  const DenseMatrix a = RandomMatrix(3, 4, 1.0, seed);
  const DenseMatrix b = RandomMatrix(4, 2, 1.0, seed + 100);
  const DenseMatrix c = RandomMatrix(2, 3, 1.0, seed + 200);
  ExpectMatrixNear(a.Multiply(b).Multiply(c), a.Multiply(b.Multiply(c)),
                   1e-12);
}

TEST_P(DenseMatrixRandomTest, DistributivityOverAddition) {
  const std::uint64_t seed = GetParam();
  const DenseMatrix a = RandomMatrix(3, 3, 1.0, seed);
  const DenseMatrix b = RandomMatrix(3, 3, 1.0, seed + 1);
  const DenseMatrix c = RandomMatrix(3, 3, 1.0, seed + 2);
  ExpectMatrixNear(a.Add(b).Multiply(c),
                   a.Multiply(c).Add(b.Multiply(c)), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DenseMatrixRandomTest,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace linbp
