#include "src/la/kron_ops.h"

#include "gtest/gtest.h"
#include "src/graph/generators.h"
#include "src/graph/graph.h"
#include "tests/testing/test_util.h"

namespace linbp {
namespace {

using testing::ExpectMatrixNear;
using testing::ExpectVectorNear;
using testing::RandomMatrix;
using testing::RandomResidualCoupling;

// Dense reference of the LinBP operator: Hhat (x) A [- Hhat^2 (x) D].
DenseMatrix DenseLinBpOperator(const Graph& graph, const DenseMatrix& hhat,
                               bool with_echo) {
  const DenseMatrix a = graph.adjacency().ToDense();
  DenseMatrix m = hhat.Kronecker(a);
  if (with_echo) {
    const DenseMatrix d = DenseMatrix::Diagonal(graph.weighted_degrees());
    m = m.Sub(hhat.Multiply(hhat).Kronecker(d));
  }
  return m;
}

TEST(DenseOperatorTest, AppliesMatrix) {
  const DenseOperator op(DenseMatrix{{1, 2}, {3, 4}});
  EXPECT_EQ(op.dim(), 2);
  std::vector<double> y;
  op.Apply({1.0, 1.0}, &y);
  ExpectVectorNear(y, {3.0, 7.0}, 0.0);
}

TEST(LinBpPropagateTest, SingleEdgeHandValue) {
  // Two nodes, one edge. A*B*Hhat swaps the rows of B then modulates.
  const Graph g(2, {{0, 1, 1.0}});
  const DenseMatrix hhat{{0.1, -0.1}, {-0.1, 0.1}};
  DenseMatrix beliefs{{1.0, -1.0}, {0.0, 0.0}};
  const DenseMatrix out =
      LinBpPropagate(g.adjacency(), g.weighted_degrees(), hhat,
                     hhat.Multiply(hhat), beliefs, /*with_echo=*/false);
  // Node 1 receives Hhat^T * [1, -1] = [0.2, -0.2]; node 0 receives zero.
  ExpectMatrixNear(out, DenseMatrix{{0, 0}, {0.2, -0.2}}, 1e-14);
}

TEST(LinBpPropagateTest, EchoCancellationSubtractsDBH2) {
  const Graph g(2, {{0, 1, 1.0}});
  const DenseMatrix hhat{{0.1, -0.1}, {-0.1, 0.1}};
  const DenseMatrix hhat2 = hhat.Multiply(hhat);
  DenseMatrix beliefs{{1.0, -1.0}, {2.0, -2.0}};
  const DenseMatrix with_echo =
      LinBpPropagate(g.adjacency(), g.weighted_degrees(), hhat, hhat2,
                     beliefs, /*with_echo=*/true);
  const DenseMatrix without_echo =
      LinBpPropagate(g.adjacency(), g.weighted_degrees(), hhat, hhat2,
                     beliefs, /*with_echo=*/false);
  const DenseMatrix echo = beliefs.Multiply(hhat2);  // degrees are 1
  ExpectMatrixNear(with_echo, without_echo.Sub(echo), 1e-14);
}

class LinBpOperatorTest
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(LinBpOperatorTest, MatchesDenseKroneckerMatrix) {
  const auto [seed, with_echo] = GetParam();
  const Graph graph = RandomConnectedGraph(7, 6, seed);
  const DenseMatrix hhat = RandomResidualCoupling(3, 0.1, seed + 1);
  const LinBpOperator op(&graph.adjacency(), graph.weighted_degrees(), hhat,
                         with_echo);
  ASSERT_EQ(op.dim(), 21);
  const DenseMatrix reference = DenseLinBpOperator(graph, hhat, with_echo);
  const DenseMatrix x = RandomMatrix(21, 1, 1.0, seed + 2);
  std::vector<double> x_vec(21);
  for (int i = 0; i < 21; ++i) x_vec[i] = x.At(i, 0);
  std::vector<double> y;
  op.Apply(x_vec, &y);
  ExpectVectorNear(y, reference.MultiplyVector(x_vec), 1e-12);
}

TEST_P(LinBpOperatorTest, WeightedGraphMatchesDense) {
  const auto [seed, with_echo] = GetParam();
  const Graph graph =
      RandomWeightedConnectedGraph(6, 5, 0.5, 2.0, seed + 100);
  const DenseMatrix hhat = RandomResidualCoupling(2, 0.1, seed + 101);
  const LinBpOperator op(&graph.adjacency(), graph.weighted_degrees(), hhat,
                         with_echo);
  const DenseMatrix reference = DenseLinBpOperator(graph, hhat, with_echo);
  std::vector<double> x_vec(12);
  Rng rng(seed + 102);
  for (auto& v : x_vec) v = rng.NextDouble();
  std::vector<double> y;
  op.Apply(x_vec, &y);
  ExpectVectorNear(y, reference.MultiplyVector(x_vec), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndEcho, LinBpOperatorTest,
    ::testing::Combine(::testing::Range(0, 6), ::testing::Bool()));

TEST(VectorizeBeliefsTest, RoundTrip) {
  const DenseMatrix b = RandomMatrix(5, 3, 1.0, 9);
  const std::vector<double> v = VectorizeBeliefs(b);
  // Column-major: entry (s, j) lands at index j*n + s.
  EXPECT_EQ(v[2 * 5 + 3], b.At(3, 2));
  ExpectMatrixNear(UnvectorizeBeliefs(v, 5, 3), b, 0.0);
}

}  // namespace
}  // namespace linbp
