#include "src/la/sparse_matrix.h"

#include "gtest/gtest.h"
#include "src/util/random.h"
#include "tests/testing/test_util.h"

namespace linbp {
namespace {

using testing::ExpectMatrixNear;
using testing::ExpectSparseNear;
using testing::ExpectVectorNear;
using testing::RandomMatrix;

SparseMatrix RandomSparse(std::int64_t rows, std::int64_t cols,
                          std::int64_t entries, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Triplet> triplets;
  for (std::int64_t i = 0; i < entries; ++i) {
    triplets.push_back({rng.NextInt(0, rows - 1), rng.NextInt(0, cols - 1),
                        2.0 * rng.NextDouble() - 1.0});
  }
  return SparseMatrix::FromTriplets(rows, cols, std::move(triplets));
}

TEST(SparseMatrixTest, EmptyMatrix) {
  SparseMatrix m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.NumNonZeros(), 0);
  EXPECT_EQ(m.At(1, 2), 0.0);
}

TEST(SparseMatrixTest, FromTripletsBasic) {
  const SparseMatrix m =
      SparseMatrix::FromTriplets(2, 3, {{0, 1, 2.0}, {1, 0, -1.0}});
  EXPECT_EQ(m.NumNonZeros(), 2);
  EXPECT_EQ(m.At(0, 1), 2.0);
  EXPECT_EQ(m.At(1, 0), -1.0);
  EXPECT_EQ(m.At(0, 0), 0.0);
}

TEST(SparseMatrixTest, DuplicateTripletsAreSummed) {
  const SparseMatrix m = SparseMatrix::FromTriplets(
      2, 2, {{0, 0, 1.0}, {0, 0, 2.5}, {1, 1, -1.0}, {0, 0, 0.5}});
  EXPECT_EQ(m.NumNonZeros(), 2);
  EXPECT_EQ(m.At(0, 0), 4.0);
  EXPECT_EQ(m.At(1, 1), -1.0);
}

TEST(SparseMatrixTest, RowsAreSortedByColumn) {
  const SparseMatrix m = SparseMatrix::FromTriplets(
      1, 5, {{0, 4, 1.0}, {0, 0, 2.0}, {0, 2, 3.0}});
  ASSERT_EQ(m.NumNonZeros(), 3);
  EXPECT_EQ(m.col_idx()[0], 0);
  EXPECT_EQ(m.col_idx()[1], 2);
  EXPECT_EQ(m.col_idx()[2], 4);
}

TEST(SparseMatrixTest, ToDenseHandValue) {
  const SparseMatrix m =
      SparseMatrix::FromTriplets(2, 2, {{0, 1, 3.0}, {1, 0, 4.0}});
  ExpectMatrixNear(m.ToDense(), DenseMatrix{{0, 3}, {4, 0}}, 0.0);
}

TEST(SparseMatrixTest, MultiplyVectorMatchesDense) {
  const SparseMatrix m = RandomSparse(6, 4, 12, /*seed=*/1);
  Rng rng(2);
  std::vector<double> x(4);
  for (auto& v : x) v = rng.NextDouble();
  ExpectVectorNear(m.MultiplyVector(x), m.ToDense().MultiplyVector(x), 1e-13);
}

TEST(SparseMatrixTest, TransposeMultiplyVectorMatchesDense) {
  const SparseMatrix m = RandomSparse(6, 4, 12, /*seed=*/3);
  Rng rng(4);
  std::vector<double> x(6);
  for (auto& v : x) v = rng.NextDouble();
  ExpectVectorNear(m.TransposeMultiplyVector(x),
                   m.ToDense().Transpose().MultiplyVector(x), 1e-13);
}

TEST(SparseMatrixTest, MultiplyDenseMatchesDense) {
  const SparseMatrix m = RandomSparse(5, 5, 10, /*seed=*/5);
  const DenseMatrix b = RandomMatrix(5, 3, 1.0, 6);
  ExpectMatrixNear(m.MultiplyDense(b), m.ToDense().Multiply(b), 1e-13);
}

TEST(SparseMatrixTest, TransposeMatchesDense) {
  const SparseMatrix m = RandomSparse(4, 7, 15, /*seed=*/7);
  ExpectMatrixNear(m.Transpose().ToDense(), m.ToDense().Transpose(), 0.0);
}

TEST(SparseMatrixTest, AbsRowAndColSums) {
  const SparseMatrix m = SparseMatrix::FromTriplets(
      2, 2, {{0, 0, -2.0}, {0, 1, 3.0}, {1, 1, -4.0}});
  ExpectVectorNear(m.AbsRowSums(), {5.0, 4.0}, 0.0);
  ExpectVectorNear(m.AbsColSums(), {2.0, 7.0}, 0.0);
}

TEST(SparseMatrixTest, SquaredRowSums) {
  const SparseMatrix m = SparseMatrix::FromTriplets(
      2, 2, {{0, 0, -2.0}, {0, 1, 3.0}, {1, 1, 0.5}});
  ExpectVectorNear(m.SquaredRowSums(), {13.0, 0.25}, 1e-15);
}

TEST(SparseMatrixTest, IsSymmetric) {
  EXPECT_TRUE(SparseMatrix::FromTriplets(2, 2, {{0, 1, 2.0}, {1, 0, 2.0}})
                  .IsSymmetric());
  EXPECT_FALSE(SparseMatrix::FromTriplets(2, 2, {{0, 1, 2.0}, {1, 0, 3.0}})
                   .IsSymmetric());
  EXPECT_FALSE(
      SparseMatrix::FromTriplets(2, 2, {{0, 1, 2.0}}).IsSymmetric());
  EXPECT_FALSE(RandomSparse(2, 3, 2, 8).IsSymmetric());  // non-square
}

class SparseRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(SparseRandomTest, DenseRoundTripsThroughKernels) {
  const std::uint64_t seed = GetParam();
  const SparseMatrix m = RandomSparse(8, 8, 20, seed);
  const DenseMatrix dense = m.ToDense();
  // Transpose twice is the identity transformation.
  ExpectSparseNear(m.Transpose().Transpose(), m, 0.0);
  // SpMM against the identity reproduces the matrix.
  ExpectMatrixNear(m.MultiplyDense(DenseMatrix::Identity(8)), dense, 0.0);
}

TEST_P(SparseRandomTest, AtMatchesDense) {
  const SparseMatrix m = RandomSparse(6, 6, 14, GetParam() + 40);
  const DenseMatrix dense = m.ToDense();
  for (std::int64_t r = 0; r < 6; ++r) {
    for (std::int64_t c = 0; c < 6; ++c) {
      EXPECT_EQ(m.At(r, c), dense.At(r, c));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseRandomTest, ::testing::Range(0, 8));

TEST(SparseMatrixFromCsrTest, AdoptsArraysExactly) {
  const SparseMatrix original = RandomSparse(40, 30, 120, /*seed=*/11);
  const SparseMatrix adopted = SparseMatrix::FromCsr(
      40, 30, original.row_ptr(), original.col_idx(), original.values());
  EXPECT_EQ(adopted.row_ptr(), original.row_ptr());
  EXPECT_EQ(adopted.col_idx(), original.col_idx());
  EXPECT_EQ(adopted.values(), original.values());
}

TEST(SparseMatrixFromCsrTest, ParallelValidationMatchesSerial) {
  const SparseMatrix original = RandomSparse(200, 200, 4000, /*seed=*/12);
  const SparseMatrix adopted = SparseMatrix::FromCsr(
      200, 200, original.row_ptr(), original.col_idx(), original.values(),
      exec::ExecContext::WithThreads(4));
  EXPECT_EQ(adopted.col_idx(), original.col_idx());
  EXPECT_EQ(adopted.values(), original.values());
}

// The block-apply entry points (the out-of-core kernels) must reproduce
// the member kernels exactly when applied one row block at a time with
// rebased local row pointers.
TEST(BlockApplyKernelsTest, SpmmRowsMatchesMultiplyDenseBlockwise) {
  const SparseMatrix m = RandomSparse(120, 120, 1500, /*seed=*/21);
  const DenseMatrix b = linbp::testing::RandomMatrix(120, 5, 1.0, 22);
  const DenseMatrix expected = m.MultiplyDense(b);

  DenseMatrix out(120, 5);
  const std::vector<std::int64_t> cuts = {0, 13, 40, 41, 90, 120};
  for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
    const std::int64_t row_begin = cuts[i];
    const std::int64_t row_end = cuts[i + 1];
    const std::int64_t rows = row_end - row_begin;
    const std::int64_t nnz_begin = m.row_ptr()[row_begin];
    // Rebased local CSR slice, exactly what a shard block holds.
    std::vector<std::int64_t> local_row_ptr(rows + 1);
    for (std::int64_t r = 0; r <= rows; ++r) {
      local_row_ptr[r] = m.row_ptr()[row_begin + r] - nnz_begin;
    }
    SpmmRows(local_row_ptr.data(), m.col_idx().data() + nnz_begin,
             m.values().data() + nnz_begin, 0, rows, b.data().data(), 5,
             out.mutable_data().data() + row_begin * 5);
  }
  EXPECT_EQ(out.MaxAbsDiff(expected), 0.0);
}

TEST(BlockApplyKernelsTest, SpmvRowsMatchesMultiplyVectorBlockwise) {
  const SparseMatrix m = RandomSparse(90, 90, 900, /*seed=*/23);
  std::vector<double> x(90);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = 0.05 * i - 2.0;
  const std::vector<double> expected = m.MultiplyVector(x);

  std::vector<double> y(90, 0.0);
  for (const std::int64_t row_begin : {0, 30, 60}) {
    const std::int64_t rows = 30;
    const std::int64_t nnz_begin = m.row_ptr()[row_begin];
    std::vector<std::int64_t> local_row_ptr(rows + 1);
    for (std::int64_t r = 0; r <= rows; ++r) {
      local_row_ptr[r] = m.row_ptr()[row_begin + r] - nnz_begin;
    }
    SpmvRows(local_row_ptr.data(), m.col_idx().data() + nnz_begin,
             m.values().data() + nnz_begin, 0, rows, x.data(),
             y.data() + row_begin);
  }
  EXPECT_EQ(y, expected);
}

TEST(SparseMatrixFromCsrDeathTest, RejectsBrokenInvariants) {
  const SparseMatrix m = RandomSparse(10, 10, 30, /*seed=*/13);
  // row_ptr of the wrong length.
  EXPECT_DEATH(SparseMatrix::FromCsr(9, 10, m.row_ptr(), m.col_idx(),
                                     m.values()),
               "row_ptr");
  // Unsorted columns within a row.
  std::vector<std::int64_t> row_ptr = {0, 2};
  std::vector<std::int32_t> col_idx = {3, 1};
  std::vector<double> values = {1.0, 2.0};
  EXPECT_DEATH(
      SparseMatrix::FromCsr(1, 10, row_ptr, col_idx, values),
      "strictly");
  // Column index out of range.
  col_idx = {1, 30};
  EXPECT_DEATH(SparseMatrix::FromCsr(1, 10, row_ptr, col_idx, values),
               "col_idx");
}

}  // namespace
}  // namespace linbp
