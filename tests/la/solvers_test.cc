#include "src/la/solvers.h"

#include <cmath>

#include "gtest/gtest.h"
#include "src/la/dense_linalg.h"
#include "tests/testing/test_util.h"

namespace linbp {
namespace {

using testing::ExpectVectorNear;
using testing::RandomSymmetricMatrix;

TEST(PowerIterationTest, DiagonalMatrix) {
  const DenseOperator op(DenseMatrix::Diagonal({1.0, -3.0, 2.0}));
  const PowerIterationResult result = PowerIteration(op);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.spectral_radius, 3.0, 1e-7);
}

TEST(PowerIterationTest, ZeroMatrix) {
  const DenseOperator op(DenseMatrix(4, 4));
  const PowerIterationResult result = PowerIteration(op);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.spectral_radius, 0.0);
}

TEST(PowerIterationTest, EmptyOperator) {
  const DenseOperator op(DenseMatrix(0, 0));
  EXPECT_TRUE(PowerIteration(op).converged);
}

class PowerIterationRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(PowerIterationRandomTest, MatchesJacobiEigenvaluesOnSymmetric) {
  const DenseMatrix a = RandomSymmetricMatrix(6, 1.0, GetParam());
  const DenseOperator op(a);
  const PowerIterationResult result = PowerIteration(op, 3000, 1e-12);
  EXPECT_NEAR(result.spectral_radius, SymmetricSpectralRadius(a), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PowerIterationRandomTest,
                         ::testing::Range(0, 10));

class PowerIterationNonSymmetricTest : public ::testing::TestWithParam<int> {
};

TEST_P(PowerIterationNonSymmetricTest, NonNegative2x2HandFormula) {
  // Perron-Frobenius case (as used for the edge matrix of Appendix G):
  // for [[a, b], [c, d]] >= 0 the dominant eigenvalue is
  // ((a+d) + sqrt((a-d)^2 + 4bc)) / 2.
  Rng rng(GetParam() + 60);
  const double a = rng.NextDouble();
  const double b = rng.NextDouble() + 0.1;
  const double c = rng.NextDouble() + 0.1;
  const double d = rng.NextDouble();
  const DenseOperator op(DenseMatrix{{a, b}, {c, d}});
  const double expected =
      0.5 * ((a + d) + std::sqrt((a - d) * (a - d) + 4.0 * b * c));
  EXPECT_NEAR(PowerIteration(op, 3000, 1e-13).spectral_radius, expected,
              1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PowerIterationNonSymmetricTest,
                         ::testing::Range(0, 8));

TEST(JacobiSolveTest, SolvesAgainstDirectSolve) {
  // y = (I - M)^-1 x with rho(M) < 1.
  const DenseMatrix m = RandomSymmetricMatrix(5, 0.12, /*seed=*/3);
  const DenseOperator op(m);
  std::vector<double> x = {1.0, -2.0, 0.5, 0.0, 3.0};
  const JacobiResult jacobi = JacobiSolve(op, x, 500, 1e-14);
  EXPECT_TRUE(jacobi.converged);
  const auto lu =
      LuFactorization::Compute(DenseMatrix::Identity(5).Sub(m));
  ASSERT_TRUE(lu.has_value());
  ExpectVectorNear(jacobi.solution, lu->Solve(x), 1e-10);
}

TEST(JacobiSolveTest, IdentityMinusZeroOperator) {
  const DenseOperator op(DenseMatrix(3, 3));
  const JacobiResult jacobi = JacobiSolve(op, {1.0, 2.0, 3.0});
  EXPECT_TRUE(jacobi.converged);
  // One sweep reaches the fixed point; the second detects it.
  EXPECT_LE(jacobi.iterations, 2);
  ExpectVectorNear(jacobi.solution, {1.0, 2.0, 3.0}, 0.0);
}

TEST(JacobiSolveTest, DoesNotConvergeBeyondSpectralRadiusOne) {
  // M = 2 I has rho = 2; the fixed point iteration must not converge.
  const DenseOperator op(DenseMatrix::Identity(3).Scale(2.0));
  const JacobiResult jacobi = JacobiSolve(op, {1.0, 1.0, 1.0}, 60, 1e-12);
  EXPECT_FALSE(jacobi.converged);
  EXPECT_GT(jacobi.last_delta, 1.0);
}

TEST(JacobiSolveTest, GeometricSeriesHandValue) {
  // Scalar case: y = x / (1 - m) for |m| < 1.
  const DenseOperator op(DenseMatrix{{0.5}});
  const JacobiResult jacobi = JacobiSolve(op, {1.0}, 500, 1e-14);
  EXPECT_TRUE(jacobi.converged);
  EXPECT_NEAR(jacobi.solution[0], 2.0, 1e-12);
}

}  // namespace
}  // namespace linbp
