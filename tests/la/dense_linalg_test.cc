#include "src/la/dense_linalg.h"

#include <algorithm>
#include <cmath>

#include "gtest/gtest.h"
#include "tests/testing/test_util.h"

namespace linbp {
namespace {

using testing::ExpectMatrixNear;
using testing::ExpectVectorNear;
using testing::RandomMatrix;
using testing::RandomSymmetricMatrix;

TEST(LuFactorizationTest, SolvesHandSystem) {
  // 2x + y = 5, x + 3y = 10  =>  x = 1, y = 3.
  const auto lu = LuFactorization::Compute(DenseMatrix{{2, 1}, {1, 3}});
  ASSERT_TRUE(lu.has_value());
  ExpectVectorNear(lu->Solve({5, 10}), {1, 3}, 1e-12);
}

TEST(LuFactorizationTest, SolveRequiresPivoting) {
  // Zero top-left pivot forces a row swap.
  const auto lu = LuFactorization::Compute(DenseMatrix{{0, 1}, {1, 0}});
  ASSERT_TRUE(lu.has_value());
  ExpectVectorNear(lu->Solve({3, 7}), {7, 3}, 1e-12);
}

TEST(LuFactorizationTest, DetectsSingularMatrix) {
  EXPECT_FALSE(
      LuFactorization::Compute(DenseMatrix{{1, 2}, {2, 4}}).has_value());
  EXPECT_FALSE(
      LuFactorization::Compute(DenseMatrix(3, 3)).has_value());
}

TEST(LuFactorizationTest, SolveMatrixMatchesColumnSolves) {
  const DenseMatrix a = RandomMatrix(5, 5, 1.0, 21).Add(
      DenseMatrix::Identity(5).Scale(3.0));  // well-conditioned
  const DenseMatrix b = RandomMatrix(5, 3, 1.0, 22);
  const auto lu = LuFactorization::Compute(a);
  ASSERT_TRUE(lu.has_value());
  const DenseMatrix x = lu->SolveMatrix(b);
  ExpectMatrixNear(a.Multiply(x), b, 1e-10);
}

TEST(InverseTest, HandValue) {
  const auto inv = Inverse(DenseMatrix{{4, 7}, {2, 6}});
  ASSERT_TRUE(inv.has_value());
  ExpectMatrixNear(*inv, DenseMatrix{{0.6, -0.7}, {-0.2, 0.4}}, 1e-12);
}

TEST(InverseTest, SingularReturnsNullopt) {
  EXPECT_FALSE(Inverse(DenseMatrix{{1, 1}, {1, 1}}).has_value());
}

class InverseRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(InverseRandomTest, ProductWithInverseIsIdentity) {
  const DenseMatrix a = RandomMatrix(4, 4, 1.0, GetParam()).Add(
      DenseMatrix::Identity(4).Scale(2.5));
  const auto inv = Inverse(a);
  ASSERT_TRUE(inv.has_value());
  ExpectMatrixNear(a.Multiply(*inv), DenseMatrix::Identity(4), 1e-10);
  ExpectMatrixNear(inv->Multiply(a), DenseMatrix::Identity(4), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InverseRandomTest, ::testing::Range(0, 8));

TEST(SymmetricEigenvaluesTest, DiagonalMatrix) {
  auto values = SymmetricEigenvalues(DenseMatrix::Diagonal({3.0, -1.0, 2.0}));
  std::sort(values.begin(), values.end());
  ExpectVectorNear(values, {-1.0, 2.0, 3.0}, 1e-12);
}

TEST(SymmetricEigenvaluesTest, HandValue2x2) {
  // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
  auto values = SymmetricEigenvalues(DenseMatrix{{2, 1}, {1, 2}});
  std::sort(values.begin(), values.end());
  ExpectVectorNear(values, {1.0, 3.0}, 1e-12);
}

TEST(SymmetricEigenvaluesTest, PaperCouplingMatrix) {
  // rho(Hhat_o) ~ 0.6292 for the Fig. 1c residual (Example 20).
  const DenseMatrix hhat =
      DenseMatrix{{0.6, 0.3, 0.1}, {0.3, 0.0, 0.7}, {0.1, 0.7, 0.2}}
          .AddScalar(-1.0 / 3.0);
  EXPECT_NEAR(SymmetricSpectralRadius(hhat), 0.62915, 1e-4);
}

class SymmetricEigenRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(SymmetricEigenRandomTest, TraceAndFrobeniusInvariants) {
  const DenseMatrix a = RandomSymmetricMatrix(5, 2.0, GetParam());
  const auto values = SymmetricEigenvalues(a);
  double trace = 0.0;
  double frobenius_sq = 0.0;
  for (std::int64_t i = 0; i < 5; ++i) {
    trace += a.At(i, i);
    for (std::int64_t j = 0; j < 5; ++j) {
      frobenius_sq += a.At(i, j) * a.At(i, j);
    }
  }
  double eigen_sum = 0.0;
  double eigen_sq_sum = 0.0;
  for (const double v : values) {
    eigen_sum += v;
    eigen_sq_sum += v * v;
  }
  EXPECT_NEAR(eigen_sum, trace, 1e-9);
  EXPECT_NEAR(eigen_sq_sum, frobenius_sq, 1e-8);
}

TEST_P(SymmetricEigenRandomTest, EigenvaluesSolveCharacteristicSystem) {
  // For each eigenvalue lambda, A - lambda I must be singular.
  const DenseMatrix a = RandomSymmetricMatrix(4, 1.0, GetParam() + 50);
  for (const double lambda : SymmetricEigenvalues(a)) {
    const DenseMatrix shifted =
        a.Sub(DenseMatrix::Identity(4).Scale(lambda));
    // Singular matrices have at least one tiny singular value; test via the
    // inverse blowing up or failing outright.
    const auto inv = Inverse(shifted);
    if (inv.has_value()) {
      EXPECT_GT(inv->MaxAbs(), 1e6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SymmetricEigenRandomTest,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace linbp
