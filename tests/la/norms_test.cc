#include "src/la/norms.h"

#include <cmath>

#include "gtest/gtest.h"
#include "src/la/dense_linalg.h"
#include "tests/testing/test_util.h"

namespace linbp {
namespace {

using testing::RandomSymmetricMatrix;

SparseMatrix ToSparse(const DenseMatrix& d) {
  std::vector<Triplet> triplets;
  for (std::int64_t r = 0; r < d.rows(); ++r) {
    for (std::int64_t c = 0; c < d.cols(); ++c) {
      if (d.At(r, c) != 0.0) triplets.push_back({r, c, d.At(r, c)});
    }
  }
  return SparseMatrix::FromTriplets(d.rows(), d.cols(), std::move(triplets));
}

TEST(NormsTest, FrobeniusHandValue) {
  const DenseMatrix a{{3, 0}, {0, 4}};
  EXPECT_DOUBLE_EQ(FrobeniusNorm(a), 5.0);
}

TEST(NormsTest, Induced1IsMaxColumnSum) {
  const DenseMatrix a{{1, -5}, {2, 3}};
  EXPECT_DOUBLE_EQ(Induced1Norm(a), 8.0);  // |−5| + |3|
}

TEST(NormsTest, InducedInfIsMaxRowSum) {
  const DenseMatrix a{{1, -5}, {2, 3}};
  EXPECT_DOUBLE_EQ(InducedInfNorm(a), 6.0);  // |1| + |−5|
}

TEST(NormsTest, MinNormPicksSmallest) {
  const DenseMatrix a{{1, -5}, {2, 3}};
  EXPECT_DOUBLE_EQ(MinNorm(a),
                   std::min({FrobeniusNorm(a), 8.0, 6.0}));
}

TEST(NormsTest, EmptyMatrixNormsAreZero) {
  const SparseMatrix empty(0, 0);
  EXPECT_EQ(FrobeniusNorm(empty), 0.0);
  EXPECT_EQ(Induced1Norm(empty), 0.0);
  EXPECT_EQ(InducedInfNorm(empty), 0.0);
}

class NormsRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(NormsRandomTest, SparseNormsMatchDense) {
  const DenseMatrix a = RandomSymmetricMatrix(6, 2.0, GetParam());
  const SparseMatrix s = ToSparse(a);
  EXPECT_NEAR(FrobeniusNorm(s), FrobeniusNorm(a), 1e-12);
  EXPECT_NEAR(Induced1Norm(s), Induced1Norm(a), 1e-12);
  EXPECT_NEAR(InducedInfNorm(s), InducedInfNorm(a), 1e-12);
  EXPECT_NEAR(MinNorm(s), MinNorm(a), 1e-12);
}

TEST_P(NormsRandomTest, NormsUpperBoundSpectralRadius) {
  // Lemma 9 rests on rho(X) <= ||X|| for sub-multiplicative norms.
  const DenseMatrix a = RandomSymmetricMatrix(5, 1.0, GetParam() + 10);
  const double rho = SymmetricSpectralRadius(a);
  EXPECT_LE(rho, FrobeniusNorm(a) + 1e-10);
  EXPECT_LE(rho, Induced1Norm(a) + 1e-10);
  EXPECT_LE(rho, InducedInfNorm(a) + 1e-10);
  EXPECT_LE(rho, MinNorm(a) + 1e-10);
}

TEST_P(NormsRandomTest, NormsAreSubMultiplicative) {
  const DenseMatrix a = RandomSymmetricMatrix(4, 1.0, GetParam() + 20);
  const DenseMatrix b = RandomSymmetricMatrix(4, 1.0, GetParam() + 30);
  const DenseMatrix ab = a.Multiply(b);
  EXPECT_LE(FrobeniusNorm(ab), FrobeniusNorm(a) * FrobeniusNorm(b) + 1e-10);
  EXPECT_LE(Induced1Norm(ab), Induced1Norm(a) * Induced1Norm(b) + 1e-10);
  EXPECT_LE(InducedInfNorm(ab),
            InducedInfNorm(a) * InducedInfNorm(b) + 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormsRandomTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace linbp
