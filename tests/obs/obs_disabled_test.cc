// Compiled with -DLINBP_OBS_DISABLED (see CMakeLists.txt): the
// LINBP_OBS_* macros must expand to nothing — no series created, no
// values recorded — proving the compile-time off switch really removes
// the instrumentation rather than just muting it.

#include "gtest/gtest.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"

#ifndef LINBP_OBS_DISABLED
#error "this test must be built with LINBP_OBS_DISABLED"
#endif

namespace linbp {
namespace obs {
namespace {

TEST(ObsDisabledTest, MacrosCreateNoSeries) {
  Registry& global = Registry::Global();
  global.Reset();
  const std::size_t before = global.num_metrics();
  LINBP_OBS_COUNTER_ADD("disabled_total", 1);
  LINBP_OBS_GAUGE_SET("disabled_gauge", 5);
  LINBP_OBS_HISTOGRAM_OBSERVE("disabled_seconds", 0.1);
  EXPECT_EQ(global.num_metrics(), before);
}

TEST(ObsDisabledTest, TimeSeriesMacrosCreateNoSeries) {
  TimeSeriesRegistry& global = TimeSeriesRegistry::Global();
  const std::size_t before = global.num_series();
  TimeSeriesSample sample;
  sample.sweep = 1;
  LINBP_OBS_TIMESERIES_BEGIN_RUN("disabled_series");
  LINBP_OBS_TIMESERIES_APPEND("disabled_series", sample);
  EXPECT_EQ(global.num_series(), before);
}

TEST(ObsDisabledTest, ClassApisStillWork) {
  // The flag gates only the macros; the library types keep full
  // behavior so one linbp_obs serves both build modes without ODR
  // hazards.
  Registry registry;
  registry.GetCounter("direct_total").Add(2);
  EXPECT_EQ(registry.GetCounter("direct_total").Value(), 2);
}

}  // namespace
}  // namespace obs
}  // namespace linbp
