// Span-tree semantics: per-thread nesting, the no-tracer no-op path,
// attribute export, and JSON structure.

#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "src/obs/trace.h"

namespace linbp {
namespace obs {
namespace {

// Keep the process-wide tracer slot clean around every test.
class TraceTest : public ::testing::Test {
 protected:
  void TearDown() override { SetActiveTracer(nullptr); }
};

TEST_F(TraceTest, ScopedSpanIsNoOpWithoutActiveTracer) {
  ASSERT_EQ(ActiveTracer(), nullptr);
  ScopedSpan span("orphan");
  EXPECT_FALSE(span.active());
  span.SetAttr("ignored", 1);  // must not crash
}

TEST_F(TraceTest, NestingFollowsScopeOrder) {
  Tracer tracer;
  SetActiveTracer(&tracer);
  {
    ScopedSpan outer("outer");
    EXPECT_TRUE(outer.active());
    { ScopedSpan inner("inner"); }
    { ScopedSpan sibling("sibling"); }
  }
  SetActiveTracer(nullptr);
  EXPECT_EQ(tracer.num_spans(), 3u);
  const std::string json = tracer.Json();
  // inner and sibling render inside outer's children array.
  const std::size_t outer_pos = json.find("\"outer\"");
  const std::size_t inner_pos = json.find("\"inner\"");
  const std::size_t sibling_pos = json.find("\"sibling\"");
  ASSERT_NE(outer_pos, std::string::npos);
  ASSERT_NE(inner_pos, std::string::npos);
  ASSERT_NE(sibling_pos, std::string::npos);
  EXPECT_LT(outer_pos, inner_pos);
  EXPECT_LT(inner_pos, sibling_pos);
  // Completed spans export a non-negative duration.
  EXPECT_EQ(json.find("\"dur_s\":-1"), std::string::npos);
}

TEST_F(TraceTest, SpansOnDifferentThreadsAreIndependentRoots) {
  Tracer tracer;
  SetActiveTracer(&tracer);
  {
    ScopedSpan main_span("main_root");
    std::thread worker([] { ScopedSpan span("worker_root"); });
    worker.join();
  }
  SetActiveTracer(nullptr);
  EXPECT_EQ(tracer.num_spans(), 2u);
  // Both spans are roots: neither name may appear inside the other's
  // children (the JSON nests children inside the parent object).
  const std::string json = tracer.Json();
  const std::size_t main_pos = json.find("\"main_root\"");
  const std::size_t worker_pos = json.find("\"worker_root\"");
  ASSERT_NE(main_pos, std::string::npos);
  ASSERT_NE(worker_pos, std::string::npos);
  // The worker span must not be rendered within main_root's subtree:
  // main_root has an empty children list.
  EXPECT_NE(json.find("\"children\":[]"), std::string::npos);
}

TEST_F(TraceTest, AttributesExportAsJsonValues) {
  Tracer tracer;
  SetActiveTracer(&tracer);
  {
    ScopedSpan span("attrs");
    span.SetAttr("sweep", 3);
    span.SetAttr("delta", 0.5);
    span.SetAttr("label", "a\"b");
  }
  SetActiveTracer(nullptr);
  const std::string json = tracer.Json();
  EXPECT_NE(json.find("\"sweep\":3"), std::string::npos);
  EXPECT_NE(json.find("\"delta\":0.5"), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"a\\\"b\""), std::string::npos);
}

TEST_F(TraceTest, OpenSpansExportWithSentinelDuration) {
  Tracer tracer;
  const int index = tracer.BeginSpan("open");
  const std::string json = tracer.Json();
  EXPECT_NE(json.find("\"dur_s\":-1"), std::string::npos);
  tracer.EndSpan(index, {});
}

}  // namespace
}  // namespace obs
}  // namespace linbp
