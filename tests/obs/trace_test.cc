// Span-tree semantics: per-thread nesting, the no-tracer no-op path,
// attribute export, and JSON structure.

#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "src/obs/trace.h"

namespace linbp {
namespace obs {
namespace {

// Keep the process-wide tracer slot clean around every test.
class TraceTest : public ::testing::Test {
 protected:
  void TearDown() override { SetActiveTracer(nullptr); }
};

TEST_F(TraceTest, ScopedSpanIsNoOpWithoutActiveTracer) {
  ASSERT_EQ(ActiveTracer(), nullptr);
  ScopedSpan span("orphan");
  EXPECT_FALSE(span.active());
  span.SetAttr("ignored", 1);  // must not crash
}

TEST_F(TraceTest, NestingFollowsScopeOrder) {
  Tracer tracer;
  SetActiveTracer(&tracer);
  {
    ScopedSpan outer("outer");
    EXPECT_TRUE(outer.active());
    { ScopedSpan inner("inner"); }
    { ScopedSpan sibling("sibling"); }
  }
  SetActiveTracer(nullptr);
  EXPECT_EQ(tracer.num_spans(), 3u);
  const std::string json = tracer.Json();
  // inner and sibling render inside outer's children array.
  const std::size_t outer_pos = json.find("\"outer\"");
  const std::size_t inner_pos = json.find("\"inner\"");
  const std::size_t sibling_pos = json.find("\"sibling\"");
  ASSERT_NE(outer_pos, std::string::npos);
  ASSERT_NE(inner_pos, std::string::npos);
  ASSERT_NE(sibling_pos, std::string::npos);
  EXPECT_LT(outer_pos, inner_pos);
  EXPECT_LT(inner_pos, sibling_pos);
  // Completed spans export a non-negative duration.
  EXPECT_EQ(json.find("\"dur_s\":-1"), std::string::npos);
}

TEST_F(TraceTest, SpansOnDifferentThreadsAreIndependentRoots) {
  Tracer tracer;
  SetActiveTracer(&tracer);
  {
    ScopedSpan main_span("main_root");
    std::thread worker([] { ScopedSpan span("worker_root"); });
    worker.join();
  }
  SetActiveTracer(nullptr);
  EXPECT_EQ(tracer.num_spans(), 2u);
  // Both spans are roots: neither name may appear inside the other's
  // children (the JSON nests children inside the parent object).
  const std::string json = tracer.Json();
  const std::size_t main_pos = json.find("\"main_root\"");
  const std::size_t worker_pos = json.find("\"worker_root\"");
  ASSERT_NE(main_pos, std::string::npos);
  ASSERT_NE(worker_pos, std::string::npos);
  // The worker span must not be rendered within main_root's subtree:
  // main_root has an empty children list.
  EXPECT_NE(json.find("\"children\":[]"), std::string::npos);
}

TEST_F(TraceTest, AttributesExportAsJsonValues) {
  Tracer tracer;
  SetActiveTracer(&tracer);
  {
    ScopedSpan span("attrs");
    span.SetAttr("sweep", 3);
    span.SetAttr("delta", 0.5);
    span.SetAttr("label", "a\"b");
  }
  SetActiveTracer(nullptr);
  const std::string json = tracer.Json();
  EXPECT_NE(json.find("\"sweep\":3"), std::string::npos);
  EXPECT_NE(json.find("\"delta\":0.5"), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"a\\\"b\""), std::string::npos);
}

TEST_F(TraceTest, OpenSpansExportWithSentinelDuration) {
  Tracer tracer;
  const int index = tracer.BeginSpan("open");
  const std::string json = tracer.Json();
  EXPECT_NE(json.find("\"dur_s\":-1"), std::string::npos);
  tracer.EndSpan(index, {});
}

TEST_F(TraceTest, ChromeTraceExportsCompleteEvents) {
  Tracer tracer;
  SetActiveTracer(&tracer);
  {
    ScopedSpan outer("outer");
    outer.SetAttr("sweep", 3);
    outer.SetAttr("label", "a\"b");
    { ScopedSpan inner("inner"); }
  }
  SetActiveTracer(nullptr);
  const std::string json = tracer.ChromeTraceJson();
  // Top-level shape: a JSON array of "ph":"X" complete events.
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"inner\""), std::string::npos);
  // Timestamps and durations are microseconds; pid/tid present on every
  // event; attributes travel in "args" with escaping intact.
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":0"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":0"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{"), std::string::npos);
  EXPECT_NE(json.find("\"sweep\":3"), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"a\\\"b\""), std::string::npos);
}

TEST_F(TraceTest, ChromeTraceNestsByContainmentOnOneTid) {
  Tracer tracer;
  SetActiveTracer(&tracer);
  {
    ScopedSpan outer("outer");
    { ScopedSpan inner("inner"); }
  }
  SetActiveTracer(nullptr);
  const std::string json = tracer.ChromeTraceJson();
  // chrome://tracing infers nesting from time containment within one
  // tid: inner must start no earlier than outer and both must share a
  // tid (single-threaded here, so every event carries tid 0).
  const std::size_t outer_pos = json.find("\"name\":\"outer\"");
  const std::size_t inner_pos = json.find("\"name\":\"inner\"");
  ASSERT_NE(outer_pos, std::string::npos);
  ASSERT_NE(inner_pos, std::string::npos);
  EXPECT_EQ(json.find("\"tid\":1"), std::string::npos);

  auto event_field = [&](std::size_t from, const char* field) {
    const std::size_t pos = json.find(field, from);
    EXPECT_NE(pos, std::string::npos) << field;
    return std::atof(json.c_str() + pos + std::strlen(field));
  };
  const double outer_ts = event_field(outer_pos, "\"ts\":");
  const double outer_dur = event_field(outer_pos, "\"dur\":");
  const double inner_ts = event_field(inner_pos, "\"ts\":");
  const double inner_dur = event_field(inner_pos, "\"dur\":");
  EXPECT_LE(outer_ts, inner_ts);
  EXPECT_LE(inner_ts + inner_dur, outer_ts + outer_dur + 1e-3);
}

TEST_F(TraceTest, ChromeTraceSkipsOpenSpansAndAssignsThreadIds) {
  Tracer tracer;
  SetActiveTracer(&tracer);
  {
    ScopedSpan main_span("main_root");
    std::thread worker([] { ScopedSpan span("worker_root"); });
    worker.join();
  }
  const int open = tracer.BeginSpan("still_open");
  SetActiveTracer(nullptr);
  const std::string json = tracer.ChromeTraceJson();
  // The unfinished span has no duration and must not emit an event.
  EXPECT_EQ(json.find("still_open"), std::string::npos);
  // The worker thread gets its own stable tid.
  EXPECT_NE(json.find("\"tid\":0"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos);
  tracer.EndSpan(open, {});
}

TEST_F(TraceTest, ChromeTraceOfEmptyTracerIsAnEmptyArray) {
  Tracer tracer;
  EXPECT_EQ(tracer.ChromeTraceJson(), "[]");
}

}  // namespace
}  // namespace obs
}  // namespace linbp
