// Registry/metric semantics: shard merging, quantile interpolation,
// the runtime null-sink, exposition formats, and write-path concurrency
// (the CI TSan job runs this binary).

#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"

namespace linbp {
namespace obs {
namespace {

TEST(CounterTest, MergesShardsAndResets) {
  Counter counter;
  counter.Add(5);
  counter.Increment();
  EXPECT_EQ(counter.Value(), 6);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge gauge;
  gauge.Set(7);
  gauge.Set(-3);
  EXPECT_EQ(gauge.Value(), -3);
  gauge.Reset();
  EXPECT_EQ(gauge.Value(), 0);
}

TEST(HistogramTest, BucketsCountSumAndQuantiles) {
  Histogram hist({1.0, 2.0, 4.0});
  for (const double v : {0.5, 1.5, 1.5, 3.0, 100.0}) hist.Observe(v);
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 5);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.5 + 1.5 + 3.0 + 100.0);
  ASSERT_EQ(snap.counts.size(), 4u);  // 3 finite buckets + overflow
  EXPECT_EQ(snap.counts[0], 1);
  EXPECT_EQ(snap.counts[1], 2);
  EXPECT_EQ(snap.counts[2], 1);
  EXPECT_EQ(snap.counts[3], 1);
  // Quantiles interpolate inside the bucket; the overflow bucket clamps
  // to the largest finite bound instead of inventing a value.
  EXPECT_GT(snap.Quantile(0.5), 1.0);
  EXPECT_LE(snap.Quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(HistogramSnapshot{}.Quantile(0.5), 0.0);
}

TEST(HistogramTest, NanLandsInOverflowWithoutPoisoningSum) {
  Histogram hist({1.0});
  hist.Observe(0.5);
  hist.Observe(std::numeric_limits<double>::quiet_NaN());
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 2);
  EXPECT_EQ(snap.counts[1], 1);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5);
}

TEST(RegistryTest, ReturnsStableReferencesPerSeries) {
  Registry registry;
  Counter& a = registry.GetCounter("ops_total");
  Counter& b = registry.GetCounter("ops_total");
  EXPECT_EQ(&a, &b);
  // Label sets are part of the identity.
  Counter& add = registry.GetCounter("ops_total", {{"kind", "add"}});
  EXPECT_NE(&a, &add);
  EXPECT_EQ(registry.num_metrics(), 2u);
  a.Add(3);
  registry.Reset();
  EXPECT_EQ(a.Value(), 0);  // reference survives Reset
}

TEST(RegistryTest, DisabledRegistryIsANullSink) {
  Registry registry;
  Counter& counter = registry.GetCounter("c_total");
  Histogram& hist = registry.GetHistogram("h_seconds");
  registry.SetEnabled(false);
  counter.Add(10);
  hist.Observe(0.5);
  EXPECT_EQ(counter.Value(), 0);
  EXPECT_EQ(hist.Count(), 0);
  registry.SetEnabled(true);
  counter.Add(2);
  EXPECT_EQ(counter.Value(), 2);
}

TEST(RegistryTest, ConcurrentWritersMergeExactly) {
  Registry registry;
  Counter& counter = registry.GetCounter("hammer_total");
  Histogram& hist = registry.GetHistogram("hammer_seconds");
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &hist] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        counter.Add(1);
        hist.Observe(1e-4);
      }
    });
  }
  // Concurrent reads must see consistent (if stale) merges.
  (void)counter.Value();
  (void)hist.Snapshot();
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), kThreads * kOpsPerThread);
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, kThreads * kOpsPerThread);
  EXPECT_NEAR(snap.sum, kThreads * kOpsPerThread * 1e-4, 1e-6);
}

TEST(RegistryTest, ConcurrentSeriesCreationIsSafe) {
  Registry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < 50; ++i) {
        registry.GetCounter("shared_total").Add(1);
        registry.GetCounter("per_thread_total",
                            {{"t", std::to_string(t)}}).Add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(registry.GetCounter("shared_total").Value(), kThreads * 50);
  EXPECT_EQ(registry.num_metrics(), 1u + kThreads);
}

TEST(RegistryTest, PrometheusTextExposition) {
  Registry registry;
  registry.GetCounter("ops_total", {{"kind", "add"}}).Add(2);
  registry.GetCounter("ops_total", {{"kind", "delete"}}).Add(1);
  registry.GetGauge("depth").Set(4);
  registry.GetHistogram("lat_seconds", {}, {0.1, 1.0}).Observe(0.05);
  const std::string text = registry.PrometheusText();

  // One # TYPE line per metric name, even with label variants.
  std::size_t type_lines = 0;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("# TYPE ops_total", 0) == 0) ++type_lines;
  }
  EXPECT_EQ(type_lines, 1u);
  EXPECT_NE(text.find("# TYPE ops_total counter"), std::string::npos);
  EXPECT_NE(text.find("ops_total{kind=\"add\"} 2"), std::string::npos);
  EXPECT_NE(text.find("ops_total{kind=\"delete\"} 1"), std::string::npos);
  EXPECT_NE(text.find("# TYPE depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_seconds histogram"), std::string::npos);
  // Cumulative buckets ending in +Inf, plus _sum and _count.
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"0.1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_count 1"), std::string::npos);
}

TEST(RegistryTest, JsonCarriesQuantiles) {
  Registry registry;
  registry.GetCounter("c_total").Add(3);
  Histogram& hist = registry.GetHistogram("h_seconds", {}, {1.0, 2.0});
  hist.Observe(0.5);
  hist.Observe(1.5);
  const std::string json = registry.Json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"c_total\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
}

TEST(JsonEscapeTest, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(ObsMacroTest, MacrosRecordIntoTheGlobalRegistry) {
  Registry& global = Registry::Global();
  global.Reset();
  LINBP_OBS_COUNTER_ADD("macro_test_total", 2);
  LINBP_OBS_COUNTER_ADD("macro_test_total", 3);
  LINBP_OBS_GAUGE_SET("macro_test_gauge", 9);
  LINBP_OBS_HISTOGRAM_OBSERVE("macro_test_seconds", 0.25);
  EXPECT_EQ(global.GetCounter("macro_test_total").Value(), 5);
  EXPECT_EQ(global.GetGauge("macro_test_gauge").Value(), 9);
  EXPECT_EQ(global.GetHistogram("macro_test_seconds").Count(), 1);
}

}  // namespace
}  // namespace obs
}  // namespace linbp
