// Bounded time-series recorder: append/decimate determinism, run
// lifecycle, registry integration, and JSON shape.

#include <atomic>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/obs/timeseries.h"

namespace linbp {
namespace obs {
namespace {

TimeSeriesSample Sample(int sweep) {
  TimeSeriesSample sample;
  sample.sweep = sweep;
  sample.delta = 1.0 / sweep;
  sample.delta_l2 = 2.0 / sweep;
  sample.seconds = 0.001 * sweep;
  sample.bytes_streamed = 100 * sweep;
  sample.precision = sweep % 2 == 0 ? "f32" : "f64";
  return sample;
}

TEST(TimeSeriesTest, StoresEverySampleBelowCapacity) {
  TimeSeries series(8);
  series.BeginRun();
  for (int i = 1; i <= 5; ++i) series.Append(Sample(i));
  const std::vector<TimeSeriesSample> samples = series.Samples();
  ASSERT_EQ(samples.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(samples[i].sweep, i + 1);
    EXPECT_DOUBLE_EQ(samples[i].delta, 1.0 / (i + 1));
    EXPECT_EQ(samples[i].bytes_streamed, 100 * (i + 1));
  }
  EXPECT_EQ(series.stride(), 1);
  EXPECT_EQ(series.total_appends(), 5);
}

TEST(TimeSeriesTest, DecimationBoundsMemoryAndKeepsStrideSpacing) {
  const std::size_t capacity = 8;
  TimeSeries series(capacity);
  series.BeginRun();
  const int total = 1000;
  for (int i = 1; i <= total; ++i) series.Append(Sample(i));
  const std::vector<TimeSeriesSample> samples = series.Samples();
  // Never more than capacity retained, never fewer than capacity/2 once
  // enough samples flowed, and every retained sample sits exactly one
  // stride from the previous (append index i*stride).
  EXPECT_LE(samples.size(), capacity);
  EXPECT_GE(samples.size(), capacity / 2);
  ASSERT_GE(samples.size(), 2u);
  EXPECT_EQ(samples[0].sweep, 1);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].sweep - samples[i - 1].sweep, series.stride());
  }
  EXPECT_EQ(series.total_appends(), total);
}

TEST(TimeSeriesTest, DecimationIsDeterministic) {
  TimeSeries a(16);
  TimeSeries b(16);
  a.BeginRun();
  b.BeginRun();
  for (int i = 1; i <= 777; ++i) {
    a.Append(Sample(i));
    b.Append(Sample(i));
  }
  const std::vector<TimeSeriesSample> sa = a.Samples();
  const std::vector<TimeSeriesSample> sb = b.Samples();
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].sweep, sb[i].sweep);
    EXPECT_EQ(sa[i].delta, sb[i].delta);
    EXPECT_EQ(sa[i].seconds, sb[i].seconds);
  }
  EXPECT_EQ(a.Json(), b.Json());
}

TEST(TimeSeriesTest, BeginRunResetsSamplesAndCountsRuns) {
  TimeSeries series(8);
  series.BeginRun();
  for (int i = 1; i <= 30; ++i) series.Append(Sample(i));
  EXPECT_GT(series.stride(), 1);
  series.BeginRun();
  series.Append(Sample(1));
  const std::vector<TimeSeriesSample> samples = series.Samples();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].sweep, 1);
  EXPECT_EQ(series.stride(), 1);
  EXPECT_EQ(series.runs(), 2);
  EXPECT_EQ(series.total_appends(), 1);
}

TEST(TimeSeriesTest, DisabledFlagMakesRecordingANoOp) {
  std::atomic<bool> enabled{false};
  TimeSeries series(8, &enabled);
  series.BeginRun();
  series.Append(Sample(1));
  EXPECT_EQ(series.Samples().size(), 0u);
  EXPECT_EQ(series.runs(), 0);
  enabled.store(true);
  series.BeginRun();
  series.Append(Sample(2));
  EXPECT_EQ(series.Samples().size(), 1u);
  EXPECT_EQ(series.runs(), 1);
}

TEST(TimeSeriesTest, JsonCarriesRunMetadataAndSampleFields) {
  TimeSeries series(8);
  series.BeginRun();
  series.Append(Sample(1));
  const std::string json = series.Json();
  EXPECT_NE(json.find("\"runs\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"total_appends\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"stride\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"samples\":[{"), std::string::npos) << json;
  EXPECT_NE(json.find("\"sweep\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"delta\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"delta_l2\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"seconds\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"bytes_streamed\":100"), std::string::npos) << json;
  EXPECT_NE(json.find("\"precision\":\"f64\""), std::string::npos) << json;
}

TEST(TimeSeriesRegistryTest, GetReturnsTheSameSeriesByName) {
  TimeSeriesRegistry& registry = TimeSeriesRegistry::Global();
  registry.Reset();
  TimeSeries& a = registry.Get("test_series_identity");
  TimeSeries& b = registry.Get("test_series_identity");
  EXPECT_EQ(&a, &b);
  EXPECT_GE(registry.num_series(), 1u);
}

TEST(TimeSeriesRegistryTest, JsonListsSeriesByName) {
  TimeSeriesRegistry& registry = TimeSeriesRegistry::Global();
  registry.Reset();
  TimeSeries& series = registry.Get("test_series_json");
  series.BeginRun();
  series.Append(Sample(1));
  const std::string json = registry.Json();
  EXPECT_NE(json.find("\"series\":["), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"test_series_json\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"samples\":[{"), std::string::npos) << json;
}

TEST(TimeSeriesRegistryTest, SetEnabledGatesRecordingAtRuntime) {
  TimeSeriesRegistry& registry = TimeSeriesRegistry::Global();
  registry.Reset();
  TimeSeries& series = registry.Get("test_series_gated");
  registry.SetEnabled(false);
  series.BeginRun();
  series.Append(Sample(1));
  EXPECT_EQ(series.Samples().size(), 0u);
  registry.SetEnabled(true);
  series.BeginRun();
  series.Append(Sample(1));
  EXPECT_EQ(series.Samples().size(), 1u);
}

}  // namespace
}  // namespace obs
}  // namespace linbp
