// RunDoubleBuffered: ordering, error propagation, and the at-most-two
// live items guarantee in both serial and overlapped mode.

#include "src/exec/pipeline.h"

#include <atomic>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace linbp {
namespace exec {
namespace {

// Counts live instances so tests can assert the two-slot window.
struct CountedItem {
  CountedItem() = default;
  explicit CountedItem(std::int64_t v) : value(v), live(&LiveCounter()) {
    Bump(1);
  }
  ~CountedItem() { Bump(-1); }
  CountedItem(CountedItem&& other) noexcept
      : value(other.value), live(other.live) {
    other.live = nullptr;
  }
  CountedItem& operator=(CountedItem&& other) noexcept {
    Bump(-1);
    value = other.value;
    live = other.live;
    other.live = nullptr;
    return *this;
  }

  static std::atomic<int>& LiveCounter() {
    static std::atomic<int> counter{0};
    return counter;
  }
  static std::atomic<int>& PeakCounter() {
    static std::atomic<int> counter{0};
    return counter;
  }

  void Bump(int delta) {
    if (live == nullptr) return;
    const int now = live->fetch_add(delta) + delta;
    int seen = PeakCounter().load();
    while (seen < now && !PeakCounter().compare_exchange_weak(seen, now)) {
    }
  }

  std::int64_t value = -1;
  std::atomic<int>* live = nullptr;
};

TEST(PipelineTest, ConsumesEveryItemInOrder) {
  for (const bool overlap : {false, true}) {
    std::vector<std::int64_t> consumed;
    std::string error;
    const bool ok = RunDoubleBuffered<std::int64_t>(
        5, overlap,
        [](std::int64_t i, std::int64_t* item, std::string*) {
          *item = i * 10;
          return true;
        },
        [&consumed](std::int64_t i, std::int64_t* item, std::string*) {
          EXPECT_EQ(*item, i * 10);
          consumed.push_back(*item);
          return true;
        },
        &error);
    EXPECT_TRUE(ok) << error;
    EXPECT_EQ(consumed,
              (std::vector<std::int64_t>{0, 10, 20, 30, 40}));
  }
}

TEST(PipelineTest, AtMostTwoItemsLive) {
  for (const bool overlap : {false, true}) {
    CountedItem::LiveCounter().store(0);
    CountedItem::PeakCounter().store(0);
    std::string error;
    const bool ok = RunDoubleBuffered<CountedItem>(
        8, overlap,
        [](std::int64_t i, CountedItem* item, std::string*) {
          *item = CountedItem(i);
          return true;
        },
        [](std::int64_t i, CountedItem* item, std::string*) {
          EXPECT_EQ(item->value, i);
          return true;
        },
        &error);
    EXPECT_TRUE(ok) << error;
    EXPECT_EQ(CountedItem::LiveCounter().load(), 0)
        << "overlap=" << overlap;
    EXPECT_LE(CountedItem::PeakCounter().load(), 2)
        << "overlap=" << overlap;
    EXPECT_GE(CountedItem::PeakCounter().load(), 1);
  }
}

TEST(PipelineTest, ProduceFailureStopsWithError) {
  for (const bool overlap : {false, true}) {
    std::vector<std::int64_t> consumed;
    std::string error;
    const bool ok = RunDoubleBuffered<std::int64_t>(
        5, overlap,
        [](std::int64_t i, std::int64_t* item, std::string* err) {
          if (i == 2) {
            *err = "item 2 unreadable";
            return false;
          }
          *item = i;
          return true;
        },
        [&consumed](std::int64_t, std::int64_t* item, std::string*) {
          consumed.push_back(*item);
          return true;
        },
        &error);
    EXPECT_FALSE(ok);
    EXPECT_EQ(error, "item 2 unreadable");
    // Items before the failure were consumed; nothing after it.
    EXPECT_EQ(consumed, (std::vector<std::int64_t>{0, 1}));
  }
}

TEST(PipelineTest, ConsumeFailureStopsWithError) {
  std::string error;
  const bool ok = RunDoubleBuffered<std::int64_t>(
      4, /*overlap=*/true,
      [](std::int64_t i, std::int64_t* item, std::string*) {
        *item = i;
        return true;
      },
      [](std::int64_t i, std::int64_t*, std::string* err) {
        if (i == 1) {
          *err = "consumer rejected item 1";
          return false;
        }
        return true;
      },
      &error);
  EXPECT_FALSE(ok);
  EXPECT_EQ(error, "consumer rejected item 1");
}

TEST(PipelineTest, EmptyAndSingleItem) {
  std::string error;
  int consumed = 0;
  EXPECT_TRUE(RunDoubleBuffered<int>(
      0, true, [](std::int64_t, int*, std::string*) { return true; },
      [](std::int64_t, int*, std::string*) { return true; }, &error));
  EXPECT_TRUE(RunDoubleBuffered<int>(
      1, true,
      [](std::int64_t, int* item, std::string*) {
        *item = 7;
        return true;
      },
      [&consumed](std::int64_t, int* item, std::string*) {
        consumed = *item;
        return true;
      },
      &error));
  EXPECT_EQ(consumed, 7);
}

}  // namespace
}  // namespace exec
}  // namespace linbp
