// Equivalence of the parallel CSR kernels with the serial reference.
//
// SpMM and SpMV assign whole output rows to one block, so a parallel run
// must be BIT-IDENTICAL to the serial kernel for every thread count (the
// static partition changes which thread computes a row, never the
// floating-point evaluation order inside it). TransposeMultiplyVector
// reduces per-block partials instead and is checked to tight tolerance
// plus run-to-run determinism. The solver-level checks extend the
// guarantee to RunLinBp / RunSbp outputs.

#include <cstdint>
#include <limits>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/linbp.h"
#include "src/core/sbp.h"
#include "src/exec/exec_context.h"
#include "src/graph/beliefs.h"
#include "src/graph/generators.h"
#include "src/la/sparse_matrix.h"
#include "tests/testing/test_util.h"

namespace linbp {
namespace {

using exec::ExecContext;

const int kThreadCounts[] = {1, 2, 4, 8};

// Kronecker powers 5 and 7 (n = 243 / 2187, nnz = 1024 / 16384): power 5
// exercises the small-input serial fallback, power 7 the parallel blocks.
const int kPowers[] = {5, 7};

void ExpectBitEqual(const std::vector<double>& actual,
                    const std::vector<double>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i], expected[i]) << "at index " << i;
  }
}

TEST(KernelEquivalenceTest, SpMMIsBitExactAcrossThreadCounts) {
  for (const int power : kPowers) {
    const Graph graph = KroneckerPowerGraph(power);
    const DenseMatrix b = testing::RandomMatrix(graph.num_nodes(), 3,
                                                /*scale=*/1.0, /*seed=*/7);
    const DenseMatrix serial =
        graph.adjacency().MultiplyDense(b, ExecContext::Serial());
    for (const int threads : kThreadCounts) {
      const DenseMatrix parallel =
          graph.adjacency().MultiplyDense(b, ExecContext::WithThreads(threads));
      SCOPED_TRACE(::testing::Message()
                   << "power " << power << ", threads " << threads);
      ExpectBitEqual(parallel.data(), serial.data());
    }
  }
}

TEST(KernelEquivalenceTest, SpMMIsBitExactForWideDenseOperands) {
  // k = 19 spans two cache tiles plus a remainder column tile.
  const Graph graph = KroneckerPowerGraph(5);
  const DenseMatrix b = testing::RandomMatrix(graph.num_nodes(), 19,
                                              /*scale=*/1.0, /*seed=*/11);
  const DenseMatrix serial =
      graph.adjacency().MultiplyDense(b, ExecContext::Serial());
  ExpectBitEqual(
      graph.adjacency().MultiplyDense(b, ExecContext::WithThreads(8)).data(),
      serial.data());
  // The tiled kernel also matches the dense reference numerically.
  testing::ExpectMatrixNear(serial, graph.adjacency().ToDense().Multiply(b),
                            1e-12);
}

TEST(KernelEquivalenceTest, SpMVIsBitExactAcrossThreadCounts) {
  for (const int power : kPowers) {
    const Graph graph = KroneckerPowerGraph(power);
    std::vector<double> x(graph.num_nodes());
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = 0.25 * static_cast<double>(i % 17) - 1.0;
    }
    const std::vector<double> serial =
        graph.adjacency().MultiplyVector(x, ExecContext::Serial());
    for (const int threads : kThreadCounts) {
      SCOPED_TRACE(::testing::Message()
                   << "power " << power << ", threads " << threads);
      ExpectBitEqual(
          graph.adjacency().MultiplyVector(x, ExecContext::WithThreads(threads)),
          serial);
    }
  }
}

TEST(KernelEquivalenceTest, SpMVSkipsStoredZeroWeights) {
  // Stored zeros must not contribute — even against non-finite vector
  // entries, which 0 * inf would turn into NaN.
  const SparseMatrix m = SparseMatrix::FromTriplets(
      2, 3, {{0, 0, 0.0}, {0, 1, 2.0}, {1, 2, 0.0}});
  const std::vector<double> x = {
      std::numeric_limits<double>::infinity(), 3.0,
      std::numeric_limits<double>::quiet_NaN()};
  const std::vector<double> y = m.MultiplyVector(x, ExecContext::Serial());
  EXPECT_EQ(y[0], 6.0);
  EXPECT_EQ(y[1], 0.0);
  const std::vector<double> xt = {
      std::numeric_limits<double>::infinity(), 0.0};
  const std::vector<double> yt =
      m.TransposeMultiplyVector(xt, ExecContext::Serial());
  EXPECT_EQ(yt[0], 0.0);
  EXPECT_EQ(yt[1], std::numeric_limits<double>::infinity());
  EXPECT_EQ(yt[2], 0.0);
}

TEST(KernelEquivalenceTest, TransposeSpMVMatchesSerialAndIsDeterministic) {
  for (const int power : kPowers) {
    const Graph graph = KroneckerPowerGraph(power);
    std::vector<double> x(graph.num_nodes());
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = 0.5 * static_cast<double>(i % 13) - 2.0;
    }
    const std::vector<double> serial =
        graph.adjacency().TransposeMultiplyVector(x, ExecContext::Serial());
    for (const int threads : kThreadCounts) {
      SCOPED_TRACE(::testing::Message()
                   << "power " << power << ", threads " << threads);
      const ExecContext ctx = ExecContext::WithThreads(threads);
      const std::vector<double> first =
          graph.adjacency().TransposeMultiplyVector(x, ctx);
      // Block-ordered reduction: equal to serial up to rounding ...
      testing::ExpectVectorNear(first, serial, 1e-12);
      // ... and exactly reproducible for a fixed context.
      ExpectBitEqual(graph.adjacency().TransposeMultiplyVector(x, ctx),
                     first);
    }
  }
}

TEST(KernelEquivalenceTest, RunLinBpIsBitExactAcrossThreadCounts) {
  const Graph graph = KroneckerPowerGraph(5);
  const DenseMatrix hhat =
      testing::RandomResidualCoupling(3, /*scale=*/0.002, /*seed=*/3);
  const SeededBeliefs seeded =
      SeedPaperBeliefs(graph.num_nodes(), 3, graph.num_nodes() / 20 + 1, 21);
  LinBpOptions options;
  options.exec = ExecContext::Serial();
  const LinBpResult serial = RunLinBp(graph, hhat, seeded.residuals, options);
  ASSERT_TRUE(serial.converged);
  for (const int threads : kThreadCounts) {
    SCOPED_TRACE(::testing::Message() << "threads " << threads);
    options.exec = ExecContext::WithThreads(threads);
    const LinBpResult parallel =
        RunLinBp(graph, hhat, seeded.residuals, options);
    EXPECT_EQ(parallel.iterations, serial.iterations);
    EXPECT_EQ(parallel.last_delta, serial.last_delta);
    ExpectBitEqual(parallel.beliefs.data(), serial.beliefs.data());
  }
}

TEST(KernelEquivalenceTest, RunSbpIsBitExactAcrossThreadCounts) {
  const Graph graph = KroneckerPowerGraph(7);
  const DenseMatrix hhat =
      testing::RandomResidualCoupling(3, /*scale=*/0.01, /*seed=*/5);
  const SeededBeliefs seeded =
      SeedPaperBeliefs(graph.num_nodes(), 3, graph.num_nodes() / 50 + 1, 22);
  const SbpResult serial = RunSbp(graph, hhat, seeded.residuals,
                                  seeded.explicit_nodes, ExecContext::Serial());
  for (const int threads : kThreadCounts) {
    SCOPED_TRACE(::testing::Message() << "threads " << threads);
    const SbpResult parallel =
        RunSbp(graph, hhat, seeded.residuals, seeded.explicit_nodes,
               ExecContext::WithThreads(threads));
    EXPECT_EQ(parallel.geodesic, serial.geodesic);
    ExpectBitEqual(parallel.beliefs.data(), serial.beliefs.data());
  }
}

}  // namespace
}  // namespace linbp
