// Equivalence of the parallel CSR kernels with the serial reference.
//
// SpMM and SpMV assign whole output rows to one block, so a parallel run
// must be BIT-IDENTICAL to the serial kernel for every thread count (the
// static partition changes which thread computes a row, never the
// floating-point evaluation order inside it). TransposeMultiplyVector
// reduces per-block partials instead and is checked to tight tolerance
// plus run-to-run determinism. The solver-level checks extend the
// guarantee to RunLinBp / RunSbp outputs.

#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/linbp.h"
#include "src/core/sbp.h"
#include "src/exec/exec_context.h"
#include "src/graph/beliefs.h"
#include "src/graph/generators.h"
#include "src/la/sparse_matrix.h"
#include "tests/testing/test_util.h"

namespace linbp {
namespace {

using exec::ExecContext;

const int kThreadCounts[] = {1, 2, 4, 8};

// Kronecker powers 5 and 7 (n = 243 / 2187, nnz = 1024 / 16384): power 5
// exercises the small-input serial fallback, power 7 the parallel blocks.
const int kPowers[] = {5, 7};

void ExpectBitEqual(const std::vector<double>& actual,
                    const std::vector<double>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i], expected[i]) << "at index " << i;
  }
}

TEST(KernelEquivalenceTest, SpMMIsBitExactAcrossThreadCounts) {
  for (const int power : kPowers) {
    const Graph graph = KroneckerPowerGraph(power);
    const DenseMatrix b = testing::RandomMatrix(graph.num_nodes(), 3,
                                                /*scale=*/1.0, /*seed=*/7);
    const DenseMatrix serial =
        graph.adjacency().MultiplyDense(b, ExecContext::Serial());
    for (const int threads : kThreadCounts) {
      const DenseMatrix parallel =
          graph.adjacency().MultiplyDense(b, ExecContext::WithThreads(threads));
      SCOPED_TRACE(::testing::Message()
                   << "power " << power << ", threads " << threads);
      ExpectBitEqual(parallel.data(), serial.data());
    }
  }
}

TEST(KernelEquivalenceTest, SpMMIsBitExactForWideDenseOperands) {
  // k = 19 spans two cache tiles plus a remainder column tile.
  const Graph graph = KroneckerPowerGraph(5);
  const DenseMatrix b = testing::RandomMatrix(graph.num_nodes(), 19,
                                              /*scale=*/1.0, /*seed=*/11);
  const DenseMatrix serial =
      graph.adjacency().MultiplyDense(b, ExecContext::Serial());
  ExpectBitEqual(
      graph.adjacency().MultiplyDense(b, ExecContext::WithThreads(8)).data(),
      serial.data());
  // The tiled kernel also matches the dense reference numerically.
  testing::ExpectMatrixNear(serial, graph.adjacency().ToDense().Multiply(b),
                            1e-12);
}

TEST(KernelEquivalenceTest, SpMVIsBitExactAcrossThreadCounts) {
  for (const int power : kPowers) {
    const Graph graph = KroneckerPowerGraph(power);
    std::vector<double> x(graph.num_nodes());
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = 0.25 * static_cast<double>(i % 17) - 1.0;
    }
    const std::vector<double> serial =
        graph.adjacency().MultiplyVector(x, ExecContext::Serial());
    for (const int threads : kThreadCounts) {
      SCOPED_TRACE(::testing::Message()
                   << "power " << power << ", threads " << threads);
      ExpectBitEqual(
          graph.adjacency().MultiplyVector(x, ExecContext::WithThreads(threads)),
          serial);
    }
  }
}

TEST(KernelEquivalenceTest, SpMVSkipsStoredZeroWeights) {
  // Stored zeros must not contribute — even against non-finite vector
  // entries, which 0 * inf would turn into NaN.
  const SparseMatrix m = SparseMatrix::FromTriplets(
      2, 3, {{0, 0, 0.0}, {0, 1, 2.0}, {1, 2, 0.0}});
  const std::vector<double> x = {
      std::numeric_limits<double>::infinity(), 3.0,
      std::numeric_limits<double>::quiet_NaN()};
  const std::vector<double> y = m.MultiplyVector(x, ExecContext::Serial());
  EXPECT_EQ(y[0], 6.0);
  EXPECT_EQ(y[1], 0.0);
  const std::vector<double> xt = {
      std::numeric_limits<double>::infinity(), 0.0};
  const std::vector<double> yt =
      m.TransposeMultiplyVector(xt, ExecContext::Serial());
  EXPECT_EQ(yt[0], 0.0);
  EXPECT_EQ(yt[1], std::numeric_limits<double>::infinity());
  EXPECT_EQ(yt[2], 0.0);
}

TEST(KernelEquivalenceTest, TransposeSpMVMatchesSerialAndIsDeterministic) {
  for (const int power : kPowers) {
    const Graph graph = KroneckerPowerGraph(power);
    std::vector<double> x(graph.num_nodes());
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = 0.5 * static_cast<double>(i % 13) - 2.0;
    }
    const std::vector<double> serial =
        graph.adjacency().TransposeMultiplyVector(x, ExecContext::Serial());
    for (const int threads : kThreadCounts) {
      SCOPED_TRACE(::testing::Message()
                   << "power " << power << ", threads " << threads);
      const ExecContext ctx = ExecContext::WithThreads(threads);
      const std::vector<double> first =
          graph.adjacency().TransposeMultiplyVector(x, ctx);
      // Block-ordered reduction: equal to serial up to rounding ...
      testing::ExpectVectorNear(first, serial, 1e-12);
      // ... and exactly reproducible for a fixed context.
      ExpectBitEqual(graph.adjacency().TransposeMultiplyVector(x, ctx),
                     first);
    }
  }
}

void ExpectBitEqualF32(const std::vector<float>& actual,
                       const std::vector<float>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i], expected[i]) << "at index " << i;
  }
}

TEST(KernelEquivalenceTest, F32SpMMIsBitExactAcrossThreadCounts) {
  for (const int power : kPowers) {
    const Graph graph = KroneckerPowerGraph(power);
    const DenseMatrixF32 b = DenseMatrixF32::FromF64(testing::RandomMatrix(
        graph.num_nodes(), 3, /*scale=*/1.0, /*seed=*/7));
    const DenseMatrixF32 serial =
        graph.adjacency().MultiplyDenseF32(b, ExecContext::Serial());
    for (const int threads : kThreadCounts) {
      const DenseMatrixF32 parallel = graph.adjacency().MultiplyDenseF32(
          b, ExecContext::WithThreads(threads));
      SCOPED_TRACE(::testing::Message()
                   << "power " << power << ", threads " << threads);
      ExpectBitEqualF32(parallel.data(), serial.data());
    }
  }
}

TEST(KernelEquivalenceTest, F32SpMVIsBitExactAcrossThreadCounts) {
  for (const int power : kPowers) {
    const Graph graph = KroneckerPowerGraph(power);
    std::vector<float> x(graph.num_nodes());
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = 0.25f * static_cast<float>(i % 17) - 1.0f;
    }
    const std::vector<float> serial =
        graph.adjacency().MultiplyVectorF32(x, ExecContext::Serial());
    for (const int threads : kThreadCounts) {
      SCOPED_TRACE(::testing::Message()
                   << "power " << power << ", threads " << threads);
      ExpectBitEqualF32(graph.adjacency().MultiplyVectorF32(
                            x, ExecContext::WithThreads(threads)),
                        serial);
    }
  }
}

TEST(KernelEquivalenceTest, F32SpMVSkipsStoredZeroWeights) {
  // The stored-zero skip lives in the one shared SpmvRowsT implementation,
  // so float inherits the same non-finite masking as double.
  const SparseMatrix m = SparseMatrix::FromTriplets(
      2, 3, {{0, 0, 0.0}, {0, 1, 2.0}, {1, 2, 0.0}});
  const std::vector<float> x = {std::numeric_limits<float>::infinity(), 3.0f,
                                std::numeric_limits<float>::quiet_NaN()};
  const std::vector<float> y = m.MultiplyVectorF32(x, ExecContext::Serial());
  EXPECT_EQ(y[0], 6.0f);
  EXPECT_EQ(y[1], 0.0f);
}

// The public entry points must be thin row-range dispatches over the ONE
// templated kernel per scalar type: calling SpmmRowsT / SpmvRowsT
// directly over the full row range must reproduce MultiplyDense* /
// MultiplyVector* to the byte, in both precisions. This is the guard
// against the row-range and whole-matrix paths drifting apart.
TEST(KernelEquivalenceTest, EntryPointsMatchRawRowRangeKernelsByMemcmp) {
  const Graph graph = KroneckerPowerGraph(7);
  const SparseMatrix& m = graph.adjacency();
  const std::int64_t n = m.rows();
  const std::int64_t k = 3;
  const DenseMatrix b64 =
      testing::RandomMatrix(n, k, /*scale=*/1.0, /*seed=*/13);
  const DenseMatrixF32 b32 = DenseMatrixF32::FromF64(b64);
  std::vector<float> x32(n);
  std::vector<double> x64(n);
  for (std::int64_t i = 0; i < n; ++i) {
    x64[i] = 0.5 * static_cast<double>(i % 11) - 2.0;
    x32[i] = static_cast<float>(x64[i]);
  }

  const DenseMatrix spmm64 = m.MultiplyDense(b64, ExecContext::Serial());
  std::vector<double> raw64(n * k, 0.0);
  SpmmRowsT<double>(m.row_ptr().data(), m.col_idx().data(),
                    m.values().data(), 0, n, b64.data().data(), k,
                    raw64.data());
  ASSERT_EQ(spmm64.data().size(), raw64.size());
  EXPECT_EQ(std::memcmp(spmm64.data().data(), raw64.data(),
                        raw64.size() * sizeof(double)),
            0);

  const DenseMatrixF32 spmm32 = m.MultiplyDenseF32(b32, ExecContext::Serial());
  const auto values32 = m.values_f32();
  std::vector<float> raw32(n * k, 0.0f);
  SpmmRowsT<float>(m.row_ptr().data(), m.col_idx().data(), values32->data(),
                   0, n, b32.data().data(), k, raw32.data());
  ASSERT_EQ(spmm32.data().size(), raw32.size());
  EXPECT_EQ(std::memcmp(spmm32.data().data(), raw32.data(),
                        raw32.size() * sizeof(float)),
            0);

  const std::vector<double> spmv64 =
      m.MultiplyVector(x64, ExecContext::Serial());
  std::vector<double> rawv64(n, 0.0);
  SpmvRowsT<double>(m.row_ptr().data(), m.col_idx().data(),
                    m.values().data(), 0, n, x64.data(), rawv64.data());
  EXPECT_EQ(std::memcmp(spmv64.data(), rawv64.data(), n * sizeof(double)),
            0);

  const std::vector<float> spmv32 =
      m.MultiplyVectorF32(x32, ExecContext::Serial());
  std::vector<float> rawv32(n, 0.0f);
  SpmvRowsT<float>(m.row_ptr().data(), m.col_idx().data(), values32->data(),
                   0, n, x32.data(), rawv32.data());
  EXPECT_EQ(std::memcmp(spmv32.data(), rawv32.data(), n * sizeof(float)), 0);
}

TEST(KernelEquivalenceTest, F32RunLinBpIsBitExactAcrossThreadCounts) {
  // The f32 sweep loop keeps per-row ownership and fp64 chunk-ordered
  // norms, so — like the f64 path — its result must not depend on the
  // thread count at all.
  const Graph graph = KroneckerPowerGraph(5);
  const DenseMatrix hhat =
      testing::RandomResidualCoupling(3, /*scale=*/0.002, /*seed=*/3);
  const SeededBeliefs seeded =
      SeedPaperBeliefs(graph.num_nodes(), 3, graph.num_nodes() / 20 + 1, 21);
  LinBpOptions options;
  options.precision = Precision::kF32;
  options.exec = ExecContext::Serial();
  const LinBpResult serial = RunLinBp(graph, hhat, seeded.residuals, options);
  ASSERT_TRUE(serial.converged);
  for (const int threads : kThreadCounts) {
    SCOPED_TRACE(::testing::Message() << "threads " << threads);
    options.exec = ExecContext::WithThreads(threads);
    const LinBpResult parallel =
        RunLinBp(graph, hhat, seeded.residuals, options);
    EXPECT_EQ(parallel.iterations, serial.iterations);
    EXPECT_EQ(parallel.last_delta, serial.last_delta);
    ExpectBitEqual(parallel.beliefs.data(), serial.beliefs.data());
  }
}

TEST(KernelEquivalenceTest, RunLinBpIsBitExactAcrossThreadCounts) {
  const Graph graph = KroneckerPowerGraph(5);
  const DenseMatrix hhat =
      testing::RandomResidualCoupling(3, /*scale=*/0.002, /*seed=*/3);
  const SeededBeliefs seeded =
      SeedPaperBeliefs(graph.num_nodes(), 3, graph.num_nodes() / 20 + 1, 21);
  LinBpOptions options;
  options.exec = ExecContext::Serial();
  const LinBpResult serial = RunLinBp(graph, hhat, seeded.residuals, options);
  ASSERT_TRUE(serial.converged);
  for (const int threads : kThreadCounts) {
    SCOPED_TRACE(::testing::Message() << "threads " << threads);
    options.exec = ExecContext::WithThreads(threads);
    const LinBpResult parallel =
        RunLinBp(graph, hhat, seeded.residuals, options);
    EXPECT_EQ(parallel.iterations, serial.iterations);
    EXPECT_EQ(parallel.last_delta, serial.last_delta);
    ExpectBitEqual(parallel.beliefs.data(), serial.beliefs.data());
  }
}

TEST(KernelEquivalenceTest, RunSbpIsBitExactAcrossThreadCounts) {
  const Graph graph = KroneckerPowerGraph(7);
  const DenseMatrix hhat =
      testing::RandomResidualCoupling(3, /*scale=*/0.01, /*seed=*/5);
  const SeededBeliefs seeded =
      SeedPaperBeliefs(graph.num_nodes(), 3, graph.num_nodes() / 50 + 1, 22);
  const SbpResult serial = RunSbp(graph, hhat, seeded.residuals,
                                  seeded.explicit_nodes, ExecContext::Serial());
  for (const int threads : kThreadCounts) {
    SCOPED_TRACE(::testing::Message() << "threads " << threads);
    const SbpResult parallel =
        RunSbp(graph, hhat, seeded.residuals, seeded.explicit_nodes,
               ExecContext::WithThreads(threads));
    EXPECT_EQ(parallel.geodesic, serial.geodesic);
    ExpectBitEqual(parallel.beliefs.data(), serial.beliefs.data());
  }
}

}  // namespace
}  // namespace linbp
