#include "src/exec/thread_pool.h"

#include <atomic>
#include <stdexcept>
#include <vector>

#include "gtest/gtest.h"
#include "src/exec/exec_context.h"

namespace linbp {
namespace exec {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  constexpr std::int64_t kTasks = 1000;
  std::vector<std::atomic<int>> hits(kTasks);
  pool.ParallelRun(kTasks, [&](std::int64_t i) { hits[i].fetch_add(1); });
  for (std::int64_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, EmptyAndNegativeRangesRunNothing) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelRun(0, [&](std::int64_t) { calls.fetch_add(1); });
  pool.ParallelRun(-5, [&](std::int64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::vector<std::int64_t> order;
  pool.ParallelRun(5, [&](std::int64_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::int64_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, ClampsNonPositiveThreadCounts) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.num_threads(), 1);
}

TEST(ThreadPoolTest, PropagatesTheFirstException) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  EXPECT_THROW(
      pool.ParallelRun(100,
                       [&](std::int64_t i) {
                         calls.fetch_add(1);
                         if (i == 37) throw std::runtime_error("task 37");
                       }),
      std::runtime_error);
  // Every index was drained (run or skipped after cancellation).
  EXPECT_LE(calls.load(), 100);
  // The pool stays usable after an exception.
  std::atomic<int> after{0};
  pool.ParallelRun(10, [&](std::int64_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 10);
}

TEST(ThreadPoolTest, OversubscriptionCompletes) {
  // Far more threads than cores and more tasks than threads: everything
  // still runs exactly once.
  ThreadPool pool(16);
  constexpr std::int64_t kTasks = 5000;
  std::vector<std::atomic<int>> hits(kTasks);
  pool.ParallelRun(kTasks, [&](std::int64_t i) { hits[i].fetch_add(1); });
  std::int64_t total = 0;
  for (auto& h : hits) total += h.load();
  EXPECT_EQ(total, kTasks);
}

TEST(ThreadPoolTest, NestedParallelRunFallsBackToSerial) {
  ThreadPool pool(4);
  std::atomic<int> inner_calls{0};
  pool.ParallelRun(4, [&](std::int64_t) {
    pool.ParallelRun(8, [&](std::int64_t) { inner_calls.fetch_add(1); });
  });
  EXPECT_EQ(inner_calls.load(), 32);
}

TEST(ThreadPoolTest, BackToBackBatchesReuseWorkers) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::int64_t> sum{0};
    pool.ParallelRun(64, [&](std::int64_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 64 * 63 / 2);
  }
}

TEST(ExecContextTest, SerialHasOneThread) {
  EXPECT_EQ(ExecContext().threads(), 1);
  EXPECT_EQ(ExecContext::Serial().threads(), 1);
  EXPECT_TRUE(ExecContext::Serial().IsSerial());
}

TEST(ExecContextTest, WithThreadsClampsAndResolvesHardware) {
  EXPECT_EQ(ExecContext::WithThreads(-1).threads(), 1);
  EXPECT_EQ(ExecContext::WithThreads(1).threads(), 1);
  EXPECT_EQ(ExecContext::WithThreads(4).threads(), 4);
  EXPECT_GE(ExecContext::WithThreads(0).threads(), 1);  // hardware width
}

TEST(ExecContextTest, ParseThreadsSpec) {
  EXPECT_EQ(ParseThreadsSpec(nullptr), 1);
  EXPECT_EQ(ParseThreadsSpec(""), 1);
  EXPECT_EQ(ParseThreadsSpec("3"), 3);
  EXPECT_EQ(ParseThreadsSpec("-2"), 1);
  EXPECT_EQ(ParseThreadsSpec("abc"), 1);
  EXPECT_EQ(ParseThreadsSpec("4x"), 1);
  EXPECT_GE(ParseThreadsSpec("0"), 1);  // hardware width
  // Absurd values clamp instead of wrapping through int.
  EXPECT_EQ(ParseThreadsSpec("5000000000"), kMaxThreads);
  EXPECT_EQ(ParseThreadsSpec("4294967297"), kMaxThreads);
}

TEST(ExecContextTest, ParallelForTilesTheRangeExactly) {
  const ExecContext ctx = ExecContext::WithThreads(4);
  std::vector<std::atomic<int>> hits(10000);
  ctx.ParallelFor(100, 10000, /*min_grain=*/128,
                  [&](std::int64_t begin, std::int64_t end) {
                    for (std::int64_t i = begin; i < end; ++i) {
                      hits[i].fetch_add(1);
                    }
                  });
  for (std::int64_t i = 0; i < 10000; ++i) {
    EXPECT_EQ(hits[i].load(), i >= 100 ? 1 : 0) << "index " << i;
  }
}

TEST(ExecContextTest, ParallelForEmptyRangeRunsNothing) {
  const ExecContext ctx = ExecContext::WithThreads(4);
  int calls = 0;
  ctx.ParallelFor(5, 5, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  ctx.ParallelFor(7, 3, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ExecContextTest, SmallRangesStaySerialUnderTheGrain) {
  const ExecContext ctx = ExecContext::WithThreads(8);
  // 100 items with a 64-item grain: at most one chunk -> exactly one call.
  int calls = 0;
  ctx.ParallelFor(0, 100, /*min_grain=*/64,
                  [&](std::int64_t begin, std::int64_t end) {
                    ++calls;
                    EXPECT_EQ(begin, 0);
                    EXPECT_EQ(end, 100);
                  });
  EXPECT_EQ(calls, 1);
}

TEST(ExecContextTest, NumChunksHonorsGrainAndWidth) {
  const ExecContext ctx = ExecContext::WithThreads(4);
  EXPECT_EQ(ctx.NumChunks(0, 100), 1);
  EXPECT_EQ(ctx.NumChunks(99, 100), 1);
  EXPECT_EQ(ctx.NumChunks(200, 100), 2);
  EXPECT_EQ(ctx.NumChunks(100000, 100), 4);  // capped at threads()
  EXPECT_EQ(ExecContext::Serial().NumChunks(100000, 100), 1);
}

TEST(ExecContextTest, RunChunksPropagatesExceptions) {
  const ExecContext ctx = ExecContext::WithThreads(4);
  EXPECT_THROW(ctx.RunChunks(4096, 4,
                             [&](std::int64_t chunk, std::int64_t,
                                 std::int64_t) {
                               if (chunk == 2) {
                                 throw std::runtime_error("chunk 2");
                               }
                             }),
               std::runtime_error);
}

}  // namespace
}  // namespace exec
}  // namespace linbp
