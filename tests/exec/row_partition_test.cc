#include "src/exec/row_partition.h"

#include <cstdint>
#include <vector>

#include "gtest/gtest.h"

namespace linbp {
namespace exec {
namespace {

// Asserts the partition tiles [0, num_rows) with monotone bounds.
void ExpectTiles(const RowPartition& p, std::int64_t num_rows) {
  ASSERT_GE(p.num_blocks(), 1);
  EXPECT_EQ(p.begin(0), 0);
  EXPECT_EQ(p.end(p.num_blocks() - 1), num_rows);
  for (std::int64_t b = 0; b < p.num_blocks(); ++b) {
    EXPECT_LE(p.begin(b), p.end(b)) << "block " << b;
    if (b > 0) {
      EXPECT_EQ(p.begin(b), p.end(b - 1)) << "block " << b;
    }
  }
}

// CSR row_ptr from per-row nnz counts.
std::vector<std::int64_t> RowPtr(const std::vector<std::int64_t>& nnz) {
  std::vector<std::int64_t> row_ptr(nnz.size() + 1, 0);
  for (std::size_t r = 0; r < nnz.size(); ++r) {
    row_ptr[r + 1] = row_ptr[r] + nnz[r];
  }
  return row_ptr;
}

TEST(RowPartitionTest, UniformTilesTheRowRange) {
  const RowPartition p = RowPartition::Uniform(10, 3);
  EXPECT_EQ(p.num_blocks(), 3);
  ExpectTiles(p, 10);
}

TEST(RowPartitionTest, UniformClampsBlocksToRows) {
  const RowPartition p = RowPartition::Uniform(2, 8);
  EXPECT_EQ(p.num_blocks(), 2);
  ExpectTiles(p, 2);
}

TEST(RowPartitionTest, UniformHandlesZeroRows) {
  const RowPartition p = RowPartition::Uniform(0, 4);
  EXPECT_EQ(p.num_blocks(), 1);
  EXPECT_EQ(p.begin(0), 0);
  EXPECT_EQ(p.end(0), 0);
}

TEST(RowPartitionTest, NnzBalancedTilesAndHasNoEmptyBlocks) {
  const RowPartition p =
      RowPartition::NnzBalanced(RowPtr({5, 1, 1, 1, 1, 1, 1, 1, 5, 5}), 4);
  ExpectTiles(p, 10);
  EXPECT_LE(p.num_blocks(), 4);
  for (std::int64_t b = 0; b < p.num_blocks(); ++b) {
    EXPECT_GT(p.end(b) - p.begin(b), 0) << "block " << b;
  }
}

TEST(RowPartitionTest, NnzBalancedBalancesSkewedRows) {
  // One heavy row at the front: a uniform split would put all the work in
  // block 0; the nnz-balanced split isolates the heavy row.
  std::vector<std::int64_t> nnz(100, 1);
  nnz[0] = 1000;
  const auto row_ptr = RowPtr(nnz);
  const RowPartition p = RowPartition::NnzBalanced(row_ptr, 4);
  ExpectTiles(p, 100);
  // Block 0 must not extend past the heavy row plus a few light rows: its
  // nnz is within 2x of the ideal 1100 / 4 = 275... except the heavy row
  // alone exceeds it, so block 0 is exactly that indivisible row region.
  EXPECT_LE(p.end(0), 2);
  // The light tail is spread over the remaining blocks.
  EXPECT_GE(p.num_blocks(), 2);
}

TEST(RowPartitionTest, NnzBalancedHandlesEmptyMatrix) {
  const RowPartition p = RowPartition::NnzBalanced(RowPtr({0, 0, 0, 0}), 3);
  ExpectTiles(p, 4);
}

TEST(RowPartitionTest, NnzBalancedSingleBlock) {
  const RowPartition p = RowPartition::NnzBalanced(RowPtr({2, 3, 4}), 1);
  EXPECT_EQ(p.num_blocks(), 1);
  ExpectTiles(p, 3);
}

TEST(RowPartitionTest, NnzBalancedMoreBlocksThanRows) {
  const RowPartition p = RowPartition::NnzBalanced(RowPtr({7, 7}), 16);
  EXPECT_LE(p.num_blocks(), 2);
  ExpectTiles(p, 2);
}

TEST(RowPartitionTest, NnzBalancedEqualRowsSplitEvenly) {
  const RowPartition p =
      RowPartition::NnzBalanced(RowPtr(std::vector<std::int64_t>(64, 4)), 4);
  ASSERT_EQ(p.num_blocks(), 4);
  for (std::int64_t b = 0; b < 4; ++b) {
    EXPECT_EQ(p.end(b) - p.begin(b), 16) << "block " << b;
  }
}

}  // namespace
}  // namespace exec
}  // namespace linbp
