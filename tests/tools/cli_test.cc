#include "tools/cli_lib.h"

#include <fstream>
#include <sstream>

#include "gtest/gtest.h"
#include "src/graph/generators.h"
#include "src/graph/io.h"
#include "src/la/matrix_io.h"

namespace linbp {
namespace cli {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

// A labeled path: node 0 says class 0, node 4 says class 1.
struct Fixture {
  std::string graph_path = TempPath("cli_graph.txt");
  std::string beliefs_path = TempPath("cli_beliefs.txt");
  Fixture() {
    WriteFile(graph_path, "0 1\n1 2\n2 3\n3 4\n");
    WriteFile(beliefs_path, "0 0 0.1\n0 1 -0.1\n4 0 -0.1\n4 1 0.1\n");
  }
};

TEST(ParseOptionsTest, RequiresGraphAndBeliefs) {
  std::string error;
  EXPECT_FALSE(ParseOptions({}, &error).has_value());
  EXPECT_NE(error.find("required"), std::string::npos);
  EXPECT_FALSE(ParseOptions({"--graph=g"}, &error).has_value());
}

TEST(ParseOptionsTest, RejectsUnknownFlagsAndMethods) {
  std::string error;
  EXPECT_FALSE(
      ParseOptions({"--graph=g", "--beliefs=b", "--bogus"}, &error)
          .has_value());
  EXPECT_NE(error.find("unknown argument"), std::string::npos);
  EXPECT_FALSE(ParseOptions({"--graph=g", "--beliefs=b",
                             "--method=magic"},
                            &error)
                   .has_value());
  EXPECT_NE(error.find("unknown method"), std::string::npos);
}

TEST(ParseOptionsTest, ParsesEverything) {
  std::string error;
  const auto options = ParseOptions(
      {"--graph=g", "--beliefs=b", "--coupling=auction", "--method=sbp",
       "--eps=0.01", "--k=3", "--output=o", "--report"},
      &error);
  ASSERT_TRUE(options.has_value()) << error;
  EXPECT_EQ(options->coupling, "auction");
  EXPECT_EQ(options->method, "sbp");
  EXPECT_EQ(options->eps, "0.01");
  EXPECT_EQ(options->k, 3);
  EXPECT_TRUE(options->report);
}

TEST(ParseOptionsTest, ParsesThreads) {
  std::string error;
  const auto options = ParseOptions(
      {"--graph=g", "--beliefs=b", "--threads=2"}, &error);
  ASSERT_TRUE(options.has_value()) << error;
  EXPECT_EQ(options->threads, 2);
  // Absent flag defers to the environment default.
  const auto defaulted = ParseOptions({"--graph=g", "--beliefs=b"}, &error);
  ASSERT_TRUE(defaulted.has_value()) << error;
  EXPECT_EQ(defaulted->threads, -1);
  for (const char* bad :
       {"--threads=-1", "--threads=abc", "--threads=4x", "--threads="}) {
    EXPECT_FALSE(ParseOptions({"--graph=g", "--beliefs=b", bad}, &error)
                     .has_value())
        << bad;
    EXPECT_NE(error.find("--threads"), std::string::npos) << bad;
  }
}

TEST(RunPipelineTest, ThreadedRunMatchesSerial) {
  const Fixture fixture;
  std::string serial_output;
  std::string threaded_output;
  std::string error;
  for (const std::string method : {"linbp", "sbp"}) {
    Options options;
    options.graph_path = fixture.graph_path;
    options.beliefs_path = fixture.beliefs_path;
    options.method = method;
    options.threads = 1;
    ASSERT_EQ(RunPipeline(options, &serial_output, &error), 0) << error;
    options.threads = 4;
    ASSERT_EQ(RunPipeline(options, &threaded_output, &error), 0) << error;
    EXPECT_EQ(threaded_output, serial_output) << method;
  }
}

TEST(RunPipelineTest, LabelsAPathWithEveryMethod) {
  const Fixture fixture;
  for (const std::string method : {"bp", "linbp", "linbp*", "sbp"}) {
    Options options;
    options.graph_path = fixture.graph_path;
    options.beliefs_path = fixture.beliefs_path;
    options.method = method;
    std::string output;
    std::string error;
    ASSERT_EQ(RunPipeline(options, &output, &error), 0)
        << method << ": " << error;
    // Expect 5 lines; nodes near 0 get class 0, near 4 get class 1.
    std::istringstream lines(output);
    std::string line;
    std::vector<std::string> rows;
    while (std::getline(lines, line)) rows.push_back(line);
    ASSERT_EQ(rows.size(), 5u) << method;
    EXPECT_EQ(rows[0], "0 0") << method;
    EXPECT_EQ(rows[1], "1 0") << method;
    EXPECT_EQ(rows[3], "3 1") << method;
    EXPECT_EQ(rows[4], "4 1") << method;
  }
}

TEST(RunPipelineTest, WritesOutputFile) {
  const Fixture fixture;
  Options options;
  options.graph_path = fixture.graph_path;
  options.beliefs_path = fixture.beliefs_path;
  options.output_path = TempPath("cli_labels.txt");
  std::string output;
  std::string error;
  ASSERT_EQ(RunPipeline(options, &output, &error), 0) << error;
  std::ifstream in(options.output_path);
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_EQ(contents.str(), output);
}

TEST(RunPipelineTest, CouplingFromFile) {
  const Fixture fixture;
  const std::string coupling_path = TempPath("cli_coupling.txt");
  WriteFile(coupling_path, "0.8 0.2\n0.2 0.8\n");
  Options options;
  options.graph_path = fixture.graph_path;
  options.beliefs_path = fixture.beliefs_path;
  options.coupling = coupling_path;
  std::string output;
  std::string error;
  EXPECT_EQ(RunPipeline(options, &output, &error), 0) << error;
}

TEST(RunPipelineTest, ResidualCouplingFromFile) {
  const Fixture fixture;
  const std::string coupling_path = TempPath("cli_residual.txt");
  WriteFile(coupling_path, "0.3 -0.3\n-0.3 0.3\n");
  Options options;
  options.graph_path = fixture.graph_path;
  options.beliefs_path = fixture.beliefs_path;
  options.coupling = coupling_path;
  std::string output;
  std::string error;
  EXPECT_EQ(RunPipeline(options, &output, &error), 0) << error;
}

TEST(RunPipelineTest, ExplicitEpsTooLargeDiverges) {
  const Fixture fixture;
  Options options;
  options.graph_path = fixture.graph_path;
  options.beliefs_path = fixture.beliefs_path;
  options.eps = "5.0";  // way past the threshold on a path
  std::string output;
  std::string error;
  EXPECT_EQ(RunPipeline(options, &output, &error), 2);
  EXPECT_NE(error.find("diverged"), std::string::npos);
}

TEST(RunPipelineTest, ReportsMissingInputs) {
  Options options;
  options.graph_path = TempPath("absent_graph.txt");
  options.beliefs_path = TempPath("absent_beliefs.txt");
  std::string output;
  std::string error;
  EXPECT_EQ(RunPipeline(options, &output, &error), 1);
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

TEST(RunPipelineTest, KMismatchRejected) {
  const Fixture fixture;
  Options options;
  options.graph_path = fixture.graph_path;
  options.beliefs_path = fixture.beliefs_path;
  options.k = 5;  // homophily2 has k = 2
  std::string output;
  std::string error;
  EXPECT_EQ(RunPipeline(options, &output, &error), 1);
  EXPECT_NE(error.find("disagrees"), std::string::npos);
}

TEST(RunPipelineTest, HeterophilyFlipsTheMiddle) {
  const Fixture fixture;
  Options options;
  options.graph_path = fixture.graph_path;
  options.beliefs_path = fixture.beliefs_path;
  options.coupling = "heterophily2";
  options.method = "sbp";
  std::string output;
  std::string error;
  ASSERT_EQ(RunPipeline(options, &output, &error), 0) << error;
  std::istringstream lines(output);
  std::string line;
  std::vector<std::string> rows;
  while (std::getline(lines, line)) rows.push_back(line);
  // Node 1 is adjacent to the class-0 seed: heterophily flips it.
  EXPECT_EQ(rows[1], "1 1");
}

}  // namespace
}  // namespace cli
}  // namespace linbp
