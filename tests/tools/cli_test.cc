#include "tools/cli_lib.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <regex>
#include <sstream>

#include "gtest/gtest.h"
#include "src/graph/generators.h"
#include "src/graph/io.h"
#include "src/la/matrix_io.h"

namespace linbp {
namespace cli {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

// A labeled path: node 0 says class 0, node 4 says class 1.
struct Fixture {
  std::string graph_path = TempPath("cli_graph.txt");
  std::string beliefs_path = TempPath("cli_beliefs.txt");
  Fixture() {
    WriteFile(graph_path, "0 1\n1 2\n2 3\n3 4\n");
    WriteFile(beliefs_path, "0 0 0.1\n0 1 -0.1\n4 0 -0.1\n4 1 0.1\n");
  }
};

TEST(ParseOptionsTest, RequiresGraphAndBeliefs) {
  std::string error;
  EXPECT_FALSE(ParseOptions({}, &error).has_value());
  EXPECT_NE(error.find("required"), std::string::npos);
  EXPECT_FALSE(ParseOptions({"--graph=g"}, &error).has_value());
}

TEST(ParseOptionsTest, RejectsUnknownFlagsAndMethods) {
  std::string error;
  EXPECT_FALSE(
      ParseOptions({"--graph=g", "--beliefs=b", "--bogus"}, &error)
          .has_value());
  EXPECT_NE(error.find("unknown argument"), std::string::npos);
  EXPECT_FALSE(ParseOptions({"--graph=g", "--beliefs=b",
                             "--method=magic"},
                            &error)
                   .has_value());
  EXPECT_NE(error.find("unknown method"), std::string::npos);
}

TEST(ParseOptionsTest, ParsesEverything) {
  std::string error;
  const auto options = ParseOptions(
      {"--graph=g", "--beliefs=b", "--coupling=auction", "--method=sbp",
       "--eps=0.01", "--k=3", "--output=o", "--report"},
      &error);
  ASSERT_TRUE(options.has_value()) << error;
  EXPECT_EQ(options->coupling, "auction");
  EXPECT_EQ(options->method, "sbp");
  EXPECT_EQ(options->eps, "0.01");
  EXPECT_EQ(options->k, 3);
  EXPECT_TRUE(options->report);
}

TEST(ParseOptionsTest, ParsesThreads) {
  std::string error;
  const auto options = ParseOptions(
      {"--graph=g", "--beliefs=b", "--threads=2"}, &error);
  ASSERT_TRUE(options.has_value()) << error;
  EXPECT_EQ(options->threads, 2);
  // Absent flag defers to the environment default.
  const auto defaulted = ParseOptions({"--graph=g", "--beliefs=b"}, &error);
  ASSERT_TRUE(defaulted.has_value()) << error;
  EXPECT_EQ(defaulted->threads, -1);
  for (const char* bad :
       {"--threads=-1", "--threads=abc", "--threads=4x", "--threads="}) {
    EXPECT_FALSE(ParseOptions({"--graph=g", "--beliefs=b", bad}, &error)
                     .has_value())
        << bad;
    EXPECT_NE(error.find("--threads"), std::string::npos) << bad;
  }
}

TEST(RunPipelineTest, ThreadedRunMatchesSerial) {
  const Fixture fixture;
  std::string serial_output;
  std::string threaded_output;
  std::string error;
  for (const std::string method : {"linbp", "sbp"}) {
    Options options;
    options.graph_path = fixture.graph_path;
    options.beliefs_path = fixture.beliefs_path;
    options.method = method;
    options.threads = 1;
    ASSERT_EQ(RunPipeline(options, &serial_output, &error), 0) << error;
    options.threads = 4;
    ASSERT_EQ(RunPipeline(options, &threaded_output, &error), 0) << error;
    EXPECT_EQ(threaded_output, serial_output) << method;
  }
}

TEST(RunPipelineTest, LabelsAPathWithEveryMethod) {
  const Fixture fixture;
  for (const std::string method : {"bp", "linbp", "linbp*", "sbp"}) {
    Options options;
    options.graph_path = fixture.graph_path;
    options.beliefs_path = fixture.beliefs_path;
    options.method = method;
    std::string output;
    std::string error;
    ASSERT_EQ(RunPipeline(options, &output, &error), 0)
        << method << ": " << error;
    // Expect 5 lines; nodes near 0 get class 0, near 4 get class 1.
    std::istringstream lines(output);
    std::string line;
    std::vector<std::string> rows;
    while (std::getline(lines, line)) rows.push_back(line);
    ASSERT_EQ(rows.size(), 5u) << method;
    EXPECT_EQ(rows[0], "0 0") << method;
    EXPECT_EQ(rows[1], "1 0") << method;
    EXPECT_EQ(rows[3], "3 1") << method;
    EXPECT_EQ(rows[4], "4 1") << method;
  }
}

TEST(RunPipelineTest, WritesOutputFile) {
  const Fixture fixture;
  Options options;
  options.graph_path = fixture.graph_path;
  options.beliefs_path = fixture.beliefs_path;
  options.output_path = TempPath("cli_labels.txt");
  std::string output;
  std::string error;
  ASSERT_EQ(RunPipeline(options, &output, &error), 0) << error;
  std::ifstream in(options.output_path);
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_EQ(contents.str(), output);
}

TEST(RunPipelineTest, CouplingFromFile) {
  const Fixture fixture;
  const std::string coupling_path = TempPath("cli_coupling.txt");
  WriteFile(coupling_path, "0.8 0.2\n0.2 0.8\n");
  Options options;
  options.graph_path = fixture.graph_path;
  options.beliefs_path = fixture.beliefs_path;
  options.coupling = coupling_path;
  std::string output;
  std::string error;
  EXPECT_EQ(RunPipeline(options, &output, &error), 0) << error;
}

TEST(RunPipelineTest, ResidualCouplingFromFile) {
  const Fixture fixture;
  const std::string coupling_path = TempPath("cli_residual.txt");
  WriteFile(coupling_path, "0.3 -0.3\n-0.3 0.3\n");
  Options options;
  options.graph_path = fixture.graph_path;
  options.beliefs_path = fixture.beliefs_path;
  options.coupling = coupling_path;
  std::string output;
  std::string error;
  EXPECT_EQ(RunPipeline(options, &output, &error), 0) << error;
}

TEST(RunPipelineTest, ExplicitEpsTooLargeDiverges) {
  const Fixture fixture;
  Options options;
  options.graph_path = fixture.graph_path;
  options.beliefs_path = fixture.beliefs_path;
  options.eps = "5.0";  // way past the threshold on a path
  std::string output;
  std::string error;
  EXPECT_EQ(RunPipeline(options, &output, &error), 2);
  EXPECT_NE(error.find("diverged"), std::string::npos);
}

TEST(RunPipelineTest, ReportsMissingInputs) {
  Options options;
  options.graph_path = TempPath("absent_graph.txt");
  options.beliefs_path = TempPath("absent_beliefs.txt");
  std::string output;
  std::string error;
  EXPECT_EQ(RunPipeline(options, &output, &error), 1);
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

TEST(RunPipelineTest, KMismatchRejected) {
  const Fixture fixture;
  Options options;
  options.graph_path = fixture.graph_path;
  options.beliefs_path = fixture.beliefs_path;
  options.k = 5;  // homophily2 has k = 2
  std::string output;
  std::string error;
  EXPECT_EQ(RunPipeline(options, &output, &error), 1);
  EXPECT_NE(error.find("disagrees"), std::string::npos);
}

TEST(ParseOptionsTest, ScenarioAndFilesAreMutuallyExclusive) {
  std::string error;
  const auto options = ParseOptions({"--scenario=sbm:n=100"}, &error);
  ASSERT_TRUE(options.has_value()) << error;
  EXPECT_EQ(options->scenario, "sbm:n=100");
  EXPECT_FALSE(
      ParseOptions({"--scenario=sbm", "--graph=g", "--beliefs=b"}, &error)
          .has_value());
  EXPECT_NE(error.find("mutually exclusive"), std::string::npos);
}

TEST(RunPipelineTest, ScenarioSpecRunsEndToEnd) {
  Options options;
  options.scenario = "sbm:n=200,k=3,deg=6,seed=2";
  for (const std::string method : {"linbp", "sbp"}) {
    options.method = method;
    std::string output;
    std::string error;
    ASSERT_EQ(RunPipeline(options, &output, &error), 0)
        << method << ": " << error;
    // One "v class..." line per node.
    EXPECT_EQ(std::count(output.begin(), output.end(), '\n'), 200) << method;
  }
}

TEST(RunPipelineTest, ScenarioErrorsPropagate) {
  Options options;
  options.scenario = "warp-drive";
  std::string output;
  std::string error;
  EXPECT_EQ(RunPipeline(options, &output, &error), 1);
  EXPECT_NE(error.find("unknown scenario"), std::string::npos);
}

TEST(RunPipelineTest, ScenarioCouplingOverrideMustMatchK) {
  Options options;
  options.scenario = "sbm:n=100,k=3,seed=2";
  options.coupling = "homophily2";  // k = 2 vs the scenario's 3
  std::string output;
  std::string error;
  EXPECT_EQ(RunPipeline(options, &output, &error), 1);
  EXPECT_NE(error.find("disagrees"), std::string::npos);
}

TEST(RunMainTest, ListShowsScenarios) {
  std::string output;
  std::string error;
  ASSERT_EQ(RunMain({"list"}, &output, &error), 0) << error;
  for (const char* name : {"sbm", "rmat", "fraud", "dblp", "kronecker",
                           "file", "snap"}) {
    EXPECT_NE(output.find(name), std::string::npos) << name;
  }
}

TEST(RunMainTest, ConvertInfoAndSnapRoundTrip) {
  const std::string snapshot = TempPath("cli_convert.lbps");
  std::string output;
  std::string error;
  ASSERT_EQ(RunMain({"convert", "--scenario=fraud:users=60,products=30",
                     "--out=" + snapshot},
                    &output, &error),
            0)
      << error;
  EXPECT_NE(output.find("fraud"), std::string::npos);

  ASSERT_EQ(RunMain({"info", "--snapshot=" + snapshot}, &output, &error), 0)
      << error;
  EXPECT_NE(output.find("version:       1"), std::string::npos) << output;
  EXPECT_NE(output.find("ground truth:  yes"), std::string::npos) << output;

  ASSERT_EQ(RunMain({"--scenario=snap:path=" + snapshot, "--method=sbp"},
                    &output, &error),
            0)
      << error;
  EXPECT_EQ(std::count(output.begin(), output.end(), '\n'), 90);
}

TEST(RunMainTest, ConvertExportsTextFiles) {
  const std::string graph_path = TempPath("cli_export.edges");
  const std::string beliefs_path = TempPath("cli_export.beliefs");
  const std::string labels_path = TempPath("cli_export.labels");
  std::string output;
  std::string error;
  ASSERT_EQ(RunMain({"convert", "--scenario=sbm:n=100,k=2,seed=4",
                     "--out-graph=" + graph_path,
                     "--out-beliefs=" + beliefs_path,
                     "--out-labels=" + labels_path},
                    &output, &error),
            0)
      << error;
  // The exported text files form a runnable file: scenario.
  ASSERT_EQ(RunMain({"--scenario=file:graph=" + graph_path + ",beliefs=" +
                         beliefs_path + ",labels=" + labels_path,
                     "--method=sbp"},
                    &output, &error),
            0)
      << error;
  EXPECT_EQ(std::count(output.begin(), output.end(), '\n'), 100);
}

TEST(RunMainTest, ShardSubcommandRoundTripsThroughSnap) {
  const std::string dir = TempPath("cli_shards");
  std::string output;
  std::string error;
  ASSERT_EQ(RunMain({"shard", "--scenario=fraud:users=60,products=30",
                     "--out-dir=" + dir, "--shards=3", "--threads=2"},
                    &output, &error),
            0)
      << error;
  EXPECT_NE(output.find("3 shard(s)"), std::string::npos) << output;
  EXPECT_NE(output.find("manifest"), std::string::npos) << output;

  // `info` detects the manifest magic and prints the shard table.
  const std::string manifest = dir + "/manifest.lbpm";
  ASSERT_EQ(RunMain({"info", "--snapshot=" + manifest}, &output, &error), 0)
      << error;
  EXPECT_NE(output.find("sharded snapshot"), std::string::npos) << output;
  EXPECT_NE(output.find("shards:        3"), std::string::npos) << output;
  EXPECT_NE(output.find("shard 2: rows ["), std::string::npos) << output;

  // The manifest is a runnable snap: scenario producing the same labels
  // as the monolithic snapshot of the same spec.
  std::string sharded_labels;
  ASSERT_EQ(RunMain({"--scenario=snap:path=" + manifest, "--method=sbp"},
                    &sharded_labels, &error),
            0)
      << error;
  const std::string snapshot = TempPath("cli_shard_mono.lbps");
  ASSERT_EQ(RunMain({"convert", "--scenario=fraud:users=60,products=30",
                     "--out=" + snapshot},
                    &output, &error),
            0)
      << error;
  std::string mono_labels;
  ASSERT_EQ(RunMain({"--scenario=snap:path=" + snapshot, "--method=sbp"},
                    &mono_labels, &error),
            0)
      << error;
  EXPECT_EQ(sharded_labels, mono_labels);
}

TEST(RunMainTest, ConvertWritesShardedOutput) {
  const std::string dir = TempPath("cli_convert_shards");
  std::string output;
  std::string error;
  ASSERT_EQ(RunMain({"convert", "--scenario=sbm:n=100,k=2,seed=4",
                     "--out-shards=" + dir, "--shards=2"},
                    &output, &error),
            0)
      << error;
  EXPECT_NE(output.find("2 shards"), std::string::npos) << output;
  ASSERT_EQ(RunMain({"info", "--snapshot=" + dir + "/manifest.lbpm"},
                    &output, &error),
            0)
      << error;
  EXPECT_NE(output.find("nodes:         100"), std::string::npos) << output;
}

TEST(RunMainTest, StreamSolveMatchesInMemory) {
  const std::string dir = TempPath("cli_stream_shards");
  std::string output;
  std::string error;
  ASSERT_EQ(RunMain({"shard",
                     "--scenario=sbm:n=500,k=4,deg=8,seed=9",
                     "--out-dir=" + dir, "--shards=4"},
                    &output, &error),
            0)
      << error;
  const std::string manifest = dir + "/manifest.lbpm";

  // The streamed labels must equal the in-memory labels byte for byte,
  // for both LinBP variants and across thread counts.
  for (const std::string method : {"linbp", "linbp*"}) {
    std::string in_memory;
    ASSERT_EQ(RunMain({"--scenario=snap:path=" + manifest,
                       "--method=" + method},
                      &in_memory, &error),
              0)
        << error;
    for (const std::string threads : {"1", "4"}) {
      std::string streamed;
      ASSERT_EQ(RunMain({"--stream", "--scenario=snap:path=" + manifest,
                         "--method=" + method, "--threads=" + threads},
                        &streamed, &error),
                0)
          << error;
      EXPECT_EQ(streamed, in_memory)
          << "method=" << method << " threads=" << threads;
    }
  }
}

TEST(RunMainTest, StreamRejectsBadInputs) {
  std::string output;
  std::string error;
  // --stream needs a scenario spec...
  EXPECT_EQ(RunMain({"--stream", "--graph=g", "--beliefs=b"}, &output,
                    &error),
            1);
  EXPECT_NE(error.find("--stream requires"), std::string::npos) << error;
  // ...a streaming-capable method...
  EXPECT_EQ(RunMain({"--stream", "--scenario=snap:path=x",
                     "--method=sbp"},
                    &output, &error),
            1);
  EXPECT_NE(error.find("--stream supports"), std::string::npos) << error;
  // ...and an actual shard manifest, not a monolithic snapshot.
  const std::string snapshot = TempPath("cli_stream_mono.lbps");
  ASSERT_EQ(RunMain({"convert", "--scenario=sbm:n=60,k=2,seed=4",
                     "--out=" + snapshot},
                    &output, &error),
            0)
      << error;
  EXPECT_EQ(RunMain({"--stream", "--scenario=snap:path=" + snapshot},
                    &output, &error),
            1);
  EXPECT_NE(error.find("not a shard manifest"), std::string::npos) << error;
  // Non-snap scenarios cannot stream.
  EXPECT_EQ(RunMain({"--stream", "--scenario=sbm:n=60,k=2"}, &output,
                    &error),
            1);
  EXPECT_NE(error.find("snap:path="), std::string::npos) << error;
}

TEST(RunMainTest, CompressedShardsStreamBitIdenticalLabels) {
  // convert --out-shards --compress -> --stream solve == monolithic
  // in-memory solve, for both v2 encodings, with and without the cache.
  std::string output;
  std::string error;
  const std::string spec = "sbm:n=500,k=4,deg=8,seed=9";
  std::string in_memory;
  ASSERT_EQ(RunMain({"--scenario=" + spec}, &in_memory, &error), 0) << error;

  for (const std::string compress : {"--compress", "--compress=f64"}) {
    const std::string dir =
        TempPath("cli_v2_shards_" + std::to_string(compress.size()));
    ASSERT_EQ(RunMain({"convert", "--scenario=" + spec,
                       "--out-shards=" + dir, "--shards=4", compress},
                      &output, &error),
              0)
        << error;
    const std::string manifest = dir + "/manifest.lbpm";
    for (const std::string budget : {"0", "100000000"}) {
      std::string streamed;
      ASSERT_EQ(RunMain({"--stream", "--scenario=snap:path=" + manifest,
                         "--threads=4", "--cache-budget=" + budget},
                        &streamed, &error),
                0)
          << error;
      EXPECT_EQ(streamed, in_memory)
          << compress << " cache-budget=" << budget;
    }
  }
}

TEST(RunMainTest, F32CompressedStreamMatchesItsBulkLoad) {
  // f32 shards lose one narrowing at write time, so the reference is the
  // in-memory solve of the SAME manifest (which widens the floats), not
  // of the original scenario.
  std::string output;
  std::string error;
  const std::string dir = TempPath("cli_v2f32_shards");
  ASSERT_EQ(RunMain({"shard", "--scenario=sbm:n=500,k=4,deg=8,seed=9",
                     "--out-dir=" + dir, "--shards=4", "--compress=f32"},
                    &output, &error),
            0)
      << error;
  const std::string manifest = dir + "/manifest.lbpm";
  std::string in_memory;
  ASSERT_EQ(RunMain({"--scenario=snap:path=" + manifest}, &in_memory,
                    &error),
            0)
      << error;
  std::string streamed;
  ASSERT_EQ(RunMain({"--stream", "--scenario=snap:path=" + manifest},
                    &streamed, &error),
            0)
      << error;
  EXPECT_EQ(streamed, in_memory);
}

TEST(RunMainTest, CompressFlagRejectsUnknownEncodings) {
  std::string output;
  std::string error;
  EXPECT_EQ(RunMain({"convert", "--scenario=sbm:n=60,k=2",
                     "--out-shards=" + TempPath("cli_badcomp"),
                     "--compress=f16"},
                    &output, &error),
            1);
  EXPECT_NE(error.find("--compress must be f64 or f32"), std::string::npos)
      << error;
}

TEST(RunMainTest, CacheBudgetValidation) {
  std::string output;
  std::string error;
  // Not a number.
  EXPECT_EQ(RunMain({"--stream", "--scenario=snap:path=x",
                     "--cache-budget=lots"},
                    &output, &error),
            1);
  EXPECT_NE(error.find("--cache-budget must be a byte count >= 0"),
            std::string::npos)
      << error;
  // Negative.
  EXPECT_EQ(RunMain({"--stream", "--scenario=snap:path=x",
                     "--cache-budget=-1"},
                    &output, &error),
            1);
  EXPECT_NE(error.find("--cache-budget must be a byte count >= 0"),
            std::string::npos)
      << error;
  // Without --stream the budget is meaningless.
  EXPECT_EQ(RunMain({"--scenario=sbm:n=60,k=2", "--cache-budget=1000"},
                    &output, &error),
            1);
  EXPECT_NE(error.find("--cache-budget requires --stream"),
            std::string::npos)
      << error;
}

TEST(RunMainTest, InfoReportsV2CompressionAndRatio) {
  const std::string dir = TempPath("cli_v2_info");
  std::string output;
  std::string error;
  ASSERT_EQ(RunMain({"shard", "--scenario=sbm:n=200,k=2,seed=5",
                     "--out-dir=" + dir, "--shards=2", "--compress=f64"},
                    &output, &error),
            0)
      << error;
  ASSERT_EQ(RunMain({"info", "--snapshot=" + dir + "/manifest.lbpm"},
                    &output, &error),
            0)
      << error;
  EXPECT_NE(output.find("version:       2"), std::string::npos) << output;
  EXPECT_NE(output.find("compression:   varint-f64"), std::string::npos)
      << output;
  EXPECT_NE(output.find("decoded;"), std::string::npos) << output;
  EXPECT_NE(output.find("encoded on disk, ratio"), std::string::npos)
      << output;

  // The f32 encoding names itself too.
  const std::string dir32 = TempPath("cli_v2_info_f32");
  ASSERT_EQ(RunMain({"shard", "--scenario=sbm:n=200,k=2,seed=5",
                     "--out-dir=" + dir32, "--shards=2", "--compress=f32"},
                    &output, &error),
            0)
      << error;
  ASSERT_EQ(RunMain({"info", "--snapshot=" + dir32 + "/manifest.lbpm"},
                    &output, &error),
            0)
      << error;
  EXPECT_NE(output.find("compression:   varint-f32"), std::string::npos)
      << output;
}

TEST(RunMainTest, InfoReportsShardPayloadBytes) {
  const std::string dir = TempPath("cli_payload_shards");
  std::string output;
  std::string error;
  ASSERT_EQ(RunMain({"shard", "--scenario=sbm:n=200,k=2,seed=5",
                     "--out-dir=" + dir, "--shards=2"},
                    &output, &error),
            0)
      << error;
  ASSERT_EQ(RunMain({"info", "--snapshot=" + dir + "/manifest.lbpm"},
                    &output, &error),
            0)
      << error;
  EXPECT_NE(output.find("payload bytes"), std::string::npos) << output;
  EXPECT_NE(output.find("(all shards)"), std::string::npos) << output;
}

TEST(RunMainTest, SubcommandErrors) {
  std::string output;
  std::string error;
  EXPECT_EQ(RunMain({"convert", "--scenario=sbm"}, &output, &error), 1);
  EXPECT_NE(error.find("pick at least one"), std::string::npos);
  EXPECT_EQ(RunMain({"convert", "--out=x"}, &output, &error), 1);
  EXPECT_NE(error.find("--scenario is required"), std::string::npos);
  EXPECT_EQ(RunMain({"info"}, &output, &error), 1);
  EXPECT_NE(error.find("--snapshot is required"), std::string::npos);
  EXPECT_EQ(RunMain({"info", "--bogus=1"}, &output, &error), 1);
  EXPECT_EQ(RunMain({"list", "extra"}, &output, &error), 1);
  EXPECT_EQ(RunMain({"shard", "--scenario=sbm"}, &output, &error), 1);
  EXPECT_NE(error.find("--out-dir"), std::string::npos);
  EXPECT_EQ(RunMain({"shard", "--scenario=sbm", "--out-dir=/tmp/x",
                     "--shards=0"},
                    &output, &error),
            1);
  EXPECT_NE(error.find("--shards"), std::string::npos);
  // Exporting labels from a truthless scenario fails cleanly.
  EXPECT_EQ(RunMain({"convert", "--scenario=kronecker:g=1",
                     "--out-labels=" + TempPath("cli_no_truth.labels")},
                    &output, &error),
            1);
  EXPECT_NE(error.find("no ground truth"), std::string::npos);
}

TEST(RunPipelineTest, HeterophilyFlipsTheMiddle) {
  const Fixture fixture;
  Options options;
  options.graph_path = fixture.graph_path;
  options.beliefs_path = fixture.beliefs_path;
  options.coupling = "heterophily2";
  options.method = "sbp";
  std::string output;
  std::string error;
  ASSERT_EQ(RunPipeline(options, &output, &error), 0) << error;
  std::istringstream lines(output);
  std::string line;
  std::vector<std::string> rows;
  while (std::getline(lines, line)) rows.push_back(line);
  // Node 1 is adjacent to the class-0 seed: heterophily flips it.
  EXPECT_EQ(rows[1], "1 1");
}

TEST(RunServeTest, AnswersQueriesAndAppliesUpdates) {
  ServeOptions options;
  options.scenario = "sbm:n=60,k=3,deg=5,seed=4";
  std::istringstream in(
      "stats\n"
      "# a comment between commands\n"
      "q 0 5\n"
      "a 0 59 1.0\n"
      "d 0 59\n"
      "labels\n"
      "quit\n");
  std::ostringstream out;
  std::string error;
  ASSERT_EQ(RunServe(options, in, out, &error), 0) << error;

  std::istringstream lines(out.str());
  std::string line;
  std::vector<std::string> rows;
  while (std::getline(lines, line)) rows.push_back(line);
  // stats + 2 query labels + 2 update acks + 60 labels.
  ASSERT_EQ(rows.size(), 65u) << out.str();
  EXPECT_NE(rows[0].find("nodes=60"), std::string::npos) << rows[0];
  EXPECT_NE(rows[0].find("converged=1"), std::string::npos) << rows[0];
  EXPECT_EQ(rows[1].rfind("0 ", 0), 0u) << rows[1];
  EXPECT_EQ(rows[2].rfind("5 ", 0), 0u) << rows[2];
  EXPECT_EQ(rows[3].rfind("ok sweeps=", 0), 0u) << rows[3];
  EXPECT_EQ(rows[4].rfind("ok sweeps=", 0), 0u) << rows[4];
  // Adding then deleting edge (0, 59) restores the initial labels.
  EXPECT_EQ(rows[5], rows[1]);
}

TEST(RunServeTest, HostileLinesGetErrorRepliesAndTouchNothing) {
  ServeOptions options;
  options.scenario = "sbm:n=40,k=2,deg=4,seed=6";
  // Every line between the two stats probes is invalid in its own way:
  // grammar, range, semantics, numerics, and unknown commands.
  const std::vector<std::string> hostile = {
      "a 0 0 1.0",            // self-loop
      "a 0 99 1.0",           // endpoint out of range
      "a 0 1 nan",            // non-finite weight
      "a 0 1",                // missing field
      "d 7 8",                // edge that does not exist
      "w 7 8 2.0",            // reweight of a missing edge
      "b 0 3 0.1 0.0 -0.1",   // wrong class count (k=2)
      "b 99 2 0.1 -0.1",      // node out of range
      "b 0 2 0.1 oops",       // malformed residual
      "q 99",                 // query out of range
      "q zero",               // malformed query id
      "labels now",           // labels takes no arguments
      "frobnicate 1 2",       // unknown command
  };
  std::string script = "stats\n";
  for (const std::string& line : hostile) script += line + "\n";
  script += "stats\nquit\n";
  std::istringstream in(script);
  std::ostringstream out;
  std::string error;
  ASSERT_EQ(RunServe(options, in, out, &error), 0) << error;

  std::istringstream lines(out.str());
  std::string line;
  std::vector<std::string> rows;
  while (std::getline(lines, line)) rows.push_back(line);
  ASSERT_EQ(rows.size(), hostile.size() + 2) << out.str();
  for (std::size_t i = 0; i < hostile.size(); ++i) {
    EXPECT_EQ(rows[i + 1].rfind("error: ", 0), 0u)
        << "'" << hostile[i] << "' got: " << rows[i + 1];
  }
  // The state never moved: the stats lines bracket the abuse unchanged.
  EXPECT_EQ(rows.front(), rows.back());
}

TEST(RunServeTest, DivergentEpsFailsSetupCleanly) {
  ServeOptions options;
  options.scenario = "sbm:n=30,k=2,deg=4,seed=8";
  options.eps = "25.0";
  std::istringstream in("stats\n");
  std::ostringstream out;
  std::string error;
  EXPECT_EQ(RunServe(options, in, out, &error), 1);
  // The divergence early-abort usually fires first with its diagnostic
  // message; hitting max_iterations without converging is also valid.
  EXPECT_TRUE(error.find("diverging") != std::string::npos ||
              error.find("did not converge") != std::string::npos)
      << error;
}

// The in-process version of the CI round-trip: trace a scenario, feed
// the stream through serve warm, and demand byte-identical labels to a
// cold pipeline run on the final snapshot at the same eps.
TEST(RunServeTest, TraceThenServeMatchesColdSolve) {
  const std::string dir = TempPath("cli_trace_roundtrip");
  std::string output;
  std::string error;
  ASSERT_EQ(RunMain({"trace", "--scenario=sbm:n=80,k=3,deg=5,seed=12",
                     "--ops=30", "--seed=3", "--out-dir=" + dir},
                    &output, &error),
            0)
      << error;
  EXPECT_NE(output.find("30 ops"), std::string::npos) << output;

  std::ifstream eps_in(dir + "/eps.txt");
  std::string eps;
  ASSERT_TRUE(std::getline(eps_in, eps));

  std::ifstream updates(dir + "/updates.txt");
  std::stringstream script;
  script << updates.rdbuf();
  script << "labels\n";

  ServeOptions serve;
  serve.scenario = "snap:path=" + dir + "/start.lbps";
  serve.eps = eps;
  std::ostringstream served;
  ASSERT_EQ(RunServe(serve, script, served, &error), 0) << error;

  // Split the serve output into update acks and label lines.
  std::istringstream lines(served.str());
  std::string line;
  std::string warm_labels;
  int acks = 0;
  while (std::getline(lines, line)) {
    if (line.rfind("ok sweeps=", 0) == 0) {
      ++acks;
    } else {
      ASSERT_NE(line.rfind("error: ", 0), 0u) << line;
      warm_labels += line + "\n";
    }
  }
  EXPECT_EQ(acks, 30);

  Options cold;
  cold.scenario = "snap:path=" + dir + "/final.lbps";
  cold.eps = eps;
  std::string cold_labels;
  ASSERT_EQ(RunPipeline(cold, &cold_labels, &error), 0) << error;
  EXPECT_EQ(warm_labels, cold_labels);
}

TEST(LowRamWarningTest, UnknownAvailableNeverWarns) {
  // 0 from util::AvailableMemoryBytes means "unknown", not "no memory":
  // the warning must stay silent then, no matter how large the payload.
  EXPECT_FALSE(LowRamWarning(std::int64_t{1} << 60, 0));
  EXPECT_FALSE(LowRamWarning(0, 0));
  EXPECT_TRUE(LowRamWarning(10, 5));
  EXPECT_FALSE(LowRamWarning(5, 10));
  EXPECT_FALSE(LowRamWarning(5, 5));
}

TEST(RunServeTest, StatsReportsLatencyTelemetry) {
  ServeOptions options;
  options.scenario = "sbm:n=40,k=2,deg=4,seed=6";
  std::istringstream in(
      "a 0 39 1.0\n"
      "q 0\n"
      "stats\n"
      "quit\n");
  std::ostringstream out;
  std::string error;
  ASSERT_EQ(RunServe(options, in, out, &error), 0) << error;
  std::istringstream lines(out.str());
  std::string line;
  std::vector<std::string> rows;
  while (std::getline(lines, line)) rows.push_back(line);
  ASSERT_EQ(rows.size(), 3u) << out.str();
  const std::string& stats = rows[2];
  // One successful update and one successful query; stats stays ONE line
  // and carries their counts plus latency percentiles.
  EXPECT_NE(stats.find(" updates=1 "), std::string::npos) << stats;
  EXPECT_NE(stats.find(" queries=1 "), std::string::npos) << stats;
  EXPECT_NE(stats.find("update_p50_ms="), std::string::npos) << stats;
  EXPECT_NE(stats.find("update_p95_ms="), std::string::npos) << stats;
  EXPECT_NE(stats.find("query_p50_ms="), std::string::npos) << stats;
  EXPECT_NE(stats.find("query_p95_ms="), std::string::npos) << stats;
}

// Structural check over a Prometheus text-exposition dump: every line is
// a comment or a `name{labels} value` sample, every sample's base name
// was announced by exactly one preceding # TYPE line, and histogram
// samples only use the _bucket/_sum/_count suffixes.
void ExpectValidPrometheusText(const std::string& text) {
  const std::regex type_re(
      "# TYPE ([a-zA-Z_][a-zA-Z0-9_]*) (counter|gauge|histogram)");
  const std::regex sample_re(
      "([a-zA-Z_][a-zA-Z0-9_]*)"
      "(\\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""
      "(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\\})?"
      " -?[0-9]+(\\.[0-9]+)?([eE][-+]?[0-9]+)?");
  std::map<std::string, std::string> typed;  // name -> kind
  std::istringstream lines(text);
  std::string line;
  std::smatch match;
  std::size_t samples = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      ASSERT_TRUE(std::regex_match(line, match, type_re)) << line;
      EXPECT_EQ(typed.count(match[1]), 0u)
          << "duplicate # TYPE for " << match[1];
      typed[match[1]] = match[2];
      continue;
    }
    ASSERT_TRUE(std::regex_match(line, match, sample_re)) << line;
    ++samples;
    std::string name = match[1];
    if (typed.count(name) != 0) {
      EXPECT_NE(typed[name], "histogram")
          << "bare sample for histogram " << name << ": " << line;
      continue;
    }
    // Histogram samples: strip the expansion suffix.
    bool found = false;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::string tail = suffix;
      if (name.size() > tail.size() &&
          name.compare(name.size() - tail.size(), tail.size(), tail) == 0) {
        const std::string base = name.substr(0, name.size() - tail.size());
        if (typed.count(base) != 0 && typed[base] == "histogram") {
          found = true;
          break;
        }
      }
    }
    EXPECT_TRUE(found) << "sample without # TYPE: " << line;
  }
  EXPECT_GT(samples, 0u);
}

TEST(RunServeTest, MetricsCommandEmitsValidPrometheusText) {
  ServeOptions options;
  options.scenario = "sbm:n=40,k=2,deg=4,seed=6";
  std::istringstream in(
      "metrics now\n"
      "a 0 39 1.0\n"
      "q 0\n"
      "metrics\n"
      "quit\n");
  std::ostringstream out;
  std::string error;
  ASSERT_EQ(RunServe(options, in, out, &error), 0) << error;
  std::istringstream lines(out.str());
  std::string line;
  std::vector<std::string> rows;
  while (std::getline(lines, line)) rows.push_back(line);
  ASSERT_GE(rows.size(), 4u) << out.str();
  EXPECT_EQ(rows[0], "error: metrics takes no arguments");
  EXPECT_EQ(rows[1].rfind("ok sweeps=", 0), 0u) << rows[1];
  // Everything after the query reply is the exposition dump.
  std::string text;
  for (std::size_t i = 3; i < rows.size(); ++i) text += rows[i] + "\n";
  ExpectValidPrometheusText(text);
  EXPECT_NE(text.find("serve_updates_total{kind=\"add\"}"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE serve_update_seconds histogram"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("serve_queries_total"), std::string::npos) << text;
  EXPECT_NE(text.find("linbp_sweeps_total"), std::string::npos) << text;
}

TEST(RunMainTest, MetricsOutWritesReportWithoutChangingLabels) {
  const std::string dir = TempPath("cli_metrics_shards");
  std::string output;
  std::string error;
  ASSERT_EQ(RunMain({"shard", "--scenario=sbm:n=300,k=3,deg=6,seed=5",
                     "--out-dir=" + dir, "--shards=4"},
                    &output, &error),
            0)
      << error;
  const std::string manifest = dir + "/manifest.lbpm";

  std::string plain;
  ASSERT_EQ(RunMain({"--stream", "--scenario=snap:path=" + manifest},
                    &plain, &error),
            0)
      << error;

  const std::string report_path = TempPath("cli_metrics_report.json");
  std::string instrumented;
  ASSERT_EQ(RunMain({"--stream", "--scenario=snap:path=" + manifest,
                     "--quiet", "--metrics-out=" + report_path},
                    &instrumented, &error),
            0)
      << error;
  // The flags are observability-only: label output stays byte-stable.
  EXPECT_EQ(instrumented, plain);

  std::ifstream report_in(report_path);
  std::stringstream report;
  report << report_in.rdbuf();
  const std::string json = report.str();
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  // Registry + span tree, with the streamed-solve series populated:
  // per-sweep spans, prefetch-stall time, and stream byte counters.
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"trace\""), std::string::npos);
  EXPECT_NE(json.find("linbp_sweep"), std::string::npos);
  EXPECT_NE(json.find("linbp_sweep_seconds"), std::string::npos);
  EXPECT_NE(json.find("pipeline_prefetch_stall_seconds"),
            std::string::npos);
  EXPECT_NE(json.find("shard_stream_bytes_read_total"), std::string::npos);
  EXPECT_NE(json.find("shard_stream_csr_bytes_total"), std::string::npos);

  // A bad path fails loudly, not silently.
  EXPECT_EQ(RunMain({"--stream", "--scenario=snap:path=" + manifest,
                     "--metrics-out=/nonexistent-dir/report.json"},
                    &output, &error),
            1);
  EXPECT_NE(error.find("metrics report"), std::string::npos) << error;
}

}  // namespace
}  // namespace cli
}  // namespace linbp
