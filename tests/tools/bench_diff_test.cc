// bench_diff: parsing of both bench JSON shapes, record matching,
// threshold gating, host-provenance warnings, and CLI exit codes.

#include "tools/bench_diff_lib.h"

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace linbp {
namespace cli {
namespace {

// A minimal repo-format bench file with one record.
std::string RepoFile(double load_seconds, const std::string& host_threads) {
  return std::string("{\"context\":{\"date\":\"2026-01-01\"},\"runs\":[{") +
         "\"bench\":\"snapshot_load\",\"scenario\":\"sbm:n=1000\"," +
         "\"threads\":1,\"reps\":3," +
         "\"load_seconds\":" + std::to_string(load_seconds) + "," +
         "\"host\":{\"hardware_threads\":" + host_threads +
         ",\"build\":\"Release\"}}]}";
}

std::vector<BenchRecord> MustParse(const std::string& json) {
  std::vector<BenchRecord> records;
  std::string error;
  EXPECT_TRUE(ParseBenchRecords(json, &records, &error)) << error;
  return records;
}

TEST(BenchDiffParseTest, ReadsRepoFormat) {
  const std::vector<BenchRecord> records = MustParse(RepoFile(0.5, "1"));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].key, "bench=snapshot_load scenario=sbm:n=1000 "
                            "threads=1 reps=3");
  EXPECT_DOUBLE_EQ(records[0].numbers.at("load_seconds"), 0.5);
  EXPECT_EQ(records[0].host.at("hardware_threads"), "1");
  EXPECT_EQ(records[0].host.at("build"), "Release");
}

TEST(BenchDiffParseTest, ReadsGoogleBenchmarkFormat) {
  const std::string json =
      "{\"context\":{\"host_name\":\"ci\",\"num_cpus\":4,"
      "\"date\":\"ignored\",\"load_avg\":[0.1],"
      "\"library_build_type\":\"release\"},"
      "\"benchmarks\":[{\"name\":\"BM_Spmm/1024\",\"real_time\":12.5,"
      "\"cpu_time\":12.0,\"iterations\":100,\"time_unit\":\"ms\"}]}";
  const std::vector<BenchRecord> records = MustParse(json);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].key, "BM_Spmm/1024");
  EXPECT_DOUBLE_EQ(records[0].numbers.at("real_time"), 12.5);
  EXPECT_DOUBLE_EQ(records[0].numbers.at("cpu_time"), 12.0);
  // The shared context becomes per-record host provenance, minus the
  // noise fields (date, load_avg) that differ on every run.
  EXPECT_EQ(records[0].host.at("host_name"), "ci");
  EXPECT_EQ(records[0].host.at("num_cpus"), "4");
  EXPECT_EQ(records[0].host.count("date"), 0u);
  EXPECT_EQ(records[0].host.count("load_avg"), 0u);
}

TEST(BenchDiffParseTest, RejectsMalformedJson) {
  std::vector<BenchRecord> records;
  std::string error;
  EXPECT_FALSE(ParseBenchRecords("{\"runs\":[", &records, &error));
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_FALSE(ParseBenchRecords("42", &records, &error));
  EXPECT_FALSE(error.empty());
}

TEST(BenchDiffTest, GatedFieldClassification) {
  EXPECT_TRUE(IsGatedTimingField("load_seconds"));
  EXPECT_TRUE(IsGatedTimingField("real_time"));
  EXPECT_TRUE(IsGatedTimingField("cpu_time"));
  EXPECT_FALSE(IsGatedTimingField("iterations"));
  EXPECT_FALSE(IsGatedTimingField("bytes_per_second"));
}

TEST(BenchDiffTest, ImprovementAndSmallSlowdownPass) {
  const BenchDiffResult result =
      DiffBenchRecords(MustParse(RepoFile(0.5, "1")),
                       MustParse(RepoFile(0.6, "1")));
  EXPECT_FALSE(result.failed);
  EXPECT_EQ(result.regressions, 0);
  ASSERT_FALSE(result.entries.empty());
  bool saw_load = false;
  for (const BenchDiffEntry& entry : result.entries) {
    if (entry.field != "load_seconds") continue;
    saw_load = true;
    EXPECT_TRUE(entry.gated);
    EXPECT_NEAR(entry.percent, 20.0, 1e-9);
    EXPECT_FALSE(entry.regression);
  }
  EXPECT_TRUE(saw_load);
  EXPECT_TRUE(result.warnings.empty());
  EXPECT_TRUE(result.missing.empty());
}

TEST(BenchDiffTest, SlowdownPastThresholdFails) {
  BenchDiffOptions options;
  options.threshold = 5.0;
  const BenchDiffResult result = DiffBenchRecords(
      MustParse(RepoFile(0.1, "1")), MustParse(RepoFile(0.6, "1")), options);
  EXPECT_TRUE(result.failed);
  EXPECT_EQ(result.regressions, 1);
  const std::string report = FormatBenchDiffReport(result, options);
  EXPECT_NE(report.find("REGRESSION"), std::string::npos) << report;
  EXPECT_NE(report.find("FAIL"), std::string::npos) << report;
}

TEST(BenchDiffTest, UngatedFieldNeverRegresses) {
  // reps is identity, so fabricate an informational numeric field.
  const std::string base =
      "[{\"bench\":\"x\",\"ops\":1,\"bytes\":100.0}]";
  const std::string cur =
      "[{\"bench\":\"x\",\"ops\":1,\"bytes\":100000.0}]";
  const BenchDiffResult result =
      DiffBenchRecords(MustParse(base), MustParse(cur));
  EXPECT_FALSE(result.failed);
  EXPECT_EQ(result.regressions, 0);
}

TEST(BenchDiffTest, MissingRecordIsANoteUnlessFlagged) {
  const std::string two =
      "[{\"bench\":\"a\",\"run_seconds\":0.1},"
      "{\"bench\":\"b\",\"run_seconds\":0.2}]";
  const std::string one = "[{\"bench\":\"a\",\"run_seconds\":0.1}]";
  BenchDiffOptions options;
  BenchDiffResult result =
      DiffBenchRecords(MustParse(two), MustParse(one), options);
  EXPECT_FALSE(result.failed);
  ASSERT_EQ(result.missing.size(), 1u);
  EXPECT_NE(result.missing[0].find("bench=b"), std::string::npos);

  options.fail_on_missing = true;
  result = DiffBenchRecords(MustParse(two), MustParse(one), options);
  EXPECT_TRUE(result.failed);
  // And the reverse direction: an extra current record only warns.
  result = DiffBenchRecords(MustParse(one), MustParse(two), options);
  EXPECT_FALSE(result.failed);
  EXPECT_FALSE(result.warnings.empty());
}

TEST(BenchDiffTest, PrecisionIsIdentityNotMetric) {
  // The precision field enters the record key (so f32 and f64 runs name
  // different records) and never shows up as a compared number.
  const std::string f64 =
      "[{\"bench\":\"stream_solve\",\"scenario\":\"sbm:n=1000\","
      "\"precision\":\"f64\",\"stream_solve_seconds\":0.4}]";
  const std::vector<BenchRecord> records = MustParse(f64);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_NE(records[0].key.find("precision=f64"), std::string::npos)
      << records[0].key;
  EXPECT_EQ(records[0].numbers.count("precision"), 0u);
}

TEST(BenchDiffTest, PrecisionMismatchNeverPairsAndWarns) {
  const std::string f64 =
      "[{\"bench\":\"stream_solve\",\"scenario\":\"sbm:n=1000\","
      "\"precision\":\"f64\",\"stream_solve_seconds\":0.4}]";
  const std::string f32 =
      "[{\"bench\":\"stream_solve\",\"scenario\":\"sbm:n=1000\","
      "\"precision\":\"f32\",\"stream_solve_seconds\":0.1}]";
  const BenchDiffResult result =
      DiffBenchRecords(MustParse(f64), MustParse(f32));
  // Not a comparison, not a regression — the 4x "speedup" is just the
  // narrower scalar and must never enter the gate.
  EXPECT_TRUE(result.entries.empty());
  EXPECT_EQ(result.regressions, 0);
  ASSERT_EQ(result.missing.size(), 1u);
  bool saw_precision_warning = false;
  for (const std::string& warning : result.warnings) {
    if (warning.find("precision mismatch") != std::string::npos) {
      saw_precision_warning = true;
      EXPECT_NE(warning.find("\"f64\""), std::string::npos) << warning;
      EXPECT_NE(warning.find("\"f32\""), std::string::npos) << warning;
      EXPECT_NE(warning.find("not comparable"), std::string::npos) << warning;
    }
  }
  EXPECT_TRUE(saw_precision_warning);
}

TEST(BenchDiffTest, PrecisionMissingVsPresentAlsoSeparates) {
  // A baseline recorded before the precision seam (no field) must not
  // pair with a current f64 record: the field's presence is part of the
  // identity, and the warning names the absent side.
  const std::string old_record =
      "[{\"bench\":\"stream_solve\",\"scenario\":\"sbm:n=1000\","
      "\"stream_solve_seconds\":0.4}]";
  const std::string new_record =
      "[{\"bench\":\"stream_solve\",\"scenario\":\"sbm:n=1000\","
      "\"precision\":\"f64\",\"stream_solve_seconds\":0.4}]";
  const BenchDiffResult result =
      DiffBenchRecords(MustParse(old_record), MustParse(new_record));
  EXPECT_TRUE(result.entries.empty());
  ASSERT_EQ(result.missing.size(), 1u);
  bool saw_precision_warning = false;
  for (const std::string& warning : result.warnings) {
    if (warning.find("precision mismatch") != std::string::npos) {
      saw_precision_warning = true;
      EXPECT_NE(warning.find("(absent)"), std::string::npos) << warning;
    }
  }
  EXPECT_TRUE(saw_precision_warning);
}

TEST(BenchDiffTest, CompressionAndCacheBudgetAreIdentityNotMetric) {
  // Like precision, the shard encoding and cache budget enter the record
  // key — compressed and raw (or cached and uncached) runs name
  // different records and never pair.
  const std::string compressed =
      "[{\"bench\":\"stream_solve\",\"scenario\":\"sbm:n=1000\","
      "\"compression\":\"varint-f64\",\"cache_budget\":1000000,"
      "\"stream_solve_seconds\":0.4}]";
  const std::vector<BenchRecord> records = MustParse(compressed);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_NE(records[0].key.find("compression=varint-f64"), std::string::npos)
      << records[0].key;
  EXPECT_NE(records[0].key.find("cache_budget=1000000"), std::string::npos)
      << records[0].key;
  EXPECT_EQ(records[0].numbers.count("cache_budget"), 0u);
}

TEST(BenchDiffTest, CompressionMismatchNeverPairsAndWarns) {
  const std::string raw =
      "[{\"bench\":\"stream_solve\",\"scenario\":\"sbm:n=1000\","
      "\"compression\":\"none\",\"stream_solve_seconds\":0.4}]";
  const std::string compressed =
      "[{\"bench\":\"stream_solve\",\"scenario\":\"sbm:n=1000\","
      "\"compression\":\"varint-f64\",\"stream_solve_seconds\":0.2}]";
  const BenchDiffResult result =
      DiffBenchRecords(MustParse(raw), MustParse(compressed));
  // The 2x "speedup" is a different wire format, not a regression fix.
  EXPECT_TRUE(result.entries.empty());
  EXPECT_EQ(result.regressions, 0);
  ASSERT_EQ(result.missing.size(), 1u);
  bool saw_warning = false;
  for (const std::string& warning : result.warnings) {
    if (warning.find("compression mismatch") != std::string::npos) {
      saw_warning = true;
      EXPECT_NE(warning.find("\"none\""), std::string::npos) << warning;
      EXPECT_NE(warning.find("\"varint-f64\""), std::string::npos) << warning;
      EXPECT_NE(warning.find("not comparable"), std::string::npos) << warning;
    }
  }
  EXPECT_TRUE(saw_warning);
}

TEST(BenchDiffTest, CacheBudgetMissingVsPresentAlsoSeparates) {
  // A baseline recorded before the cache existed (no field) must not
  // pair with a cached current run: disk traffic differs by design.
  const std::string old_record =
      "[{\"bench\":\"stream_solve\",\"scenario\":\"sbm:n=1000\","
      "\"stream_solve_seconds\":0.4}]";
  const std::string cached =
      "[{\"bench\":\"stream_solve\",\"scenario\":\"sbm:n=1000\","
      "\"cache_budget\":1000000,\"stream_solve_seconds\":0.1}]";
  const BenchDiffResult result =
      DiffBenchRecords(MustParse(old_record), MustParse(cached));
  EXPECT_TRUE(result.entries.empty());
  ASSERT_EQ(result.missing.size(), 1u);
  bool saw_warning = false;
  for (const std::string& warning : result.warnings) {
    if (warning.find("cache_budget mismatch") != std::string::npos) {
      saw_warning = true;
      EXPECT_NE(warning.find("(absent)"), std::string::npos) << warning;
      EXPECT_NE(warning.find("disk traffic differs by design"),
                std::string::npos)
          << warning;
    }
  }
  EXPECT_TRUE(saw_warning);
}

TEST(BenchDiffTest, HostMismatchWarnsButDoesNotGate) {
  BenchDiffOptions options;
  const BenchDiffResult result = DiffBenchRecords(
      MustParse(RepoFile(0.5, "1")), MustParse(RepoFile(0.5, "64")), options);
  EXPECT_FALSE(result.failed);
  ASSERT_FALSE(result.warnings.empty());
  bool saw_host_warning = false;
  for (const std::string& warning : result.warnings) {
    if (warning.find("hardware_threads") != std::string::npos) {
      saw_host_warning = true;
      EXPECT_NE(warning.find("not comparable"), std::string::npos) << warning;
    }
  }
  EXPECT_TRUE(saw_host_warning);
  const std::string report = FormatBenchDiffReport(result, options);
  EXPECT_NE(report.find("hardware_threads"), std::string::npos) << report;
}

TEST(BenchDiffTest, ReportCountsFieldsAndVerdict) {
  BenchDiffOptions options;
  const BenchDiffResult result = DiffBenchRecords(
      MustParse(RepoFile(0.5, "1")), MustParse(RepoFile(0.5, "1")), options);
  const std::string report = FormatBenchDiffReport(result, options);
  EXPECT_NE(report.find("OK"), std::string::npos) << report;
  EXPECT_NE(report.find("0 regressions"), std::string::npos) << report;
  EXPECT_NE(report.find("0 missing"), std::string::npos) << report;
}

class BenchDiffMainTest : public ::testing::Test {
 protected:
  std::string WriteTemp(const std::string& name, const std::string& body) {
    const std::string path =
        ::testing::TempDir() + "/bench_diff_" + name + ".json";
    std::ofstream out(path);
    out << body;
    return path;
  }
};

TEST_F(BenchDiffMainTest, ExitCodesFollowTheGate) {
  const std::string base = WriteTemp("base", RepoFile(0.1, "1"));
  const std::string same = WriteTemp("same", RepoFile(0.1, "1"));
  const std::string slow = WriteTemp("slow", RepoFile(5.0, "1"));

  std::string output;
  std::string error;
  EXPECT_EQ(BenchDiffMain({"--baseline=" + base, "--current=" + same},
                          &output, &error),
            0)
      << error;
  EXPECT_NE(output.find("OK"), std::string::npos) << output;

  output.clear();
  EXPECT_EQ(BenchDiffMain({"--baseline=" + base, "--current=" + slow},
                          &output, &error),
            1);
  EXPECT_NE(output.find("FAIL"), std::string::npos) << output;

  // A generous threshold turns the same pair green.
  output.clear();
  EXPECT_EQ(BenchDiffMain({"--baseline=" + base, "--current=" + slow,
                           "--threshold=100"},
                          &output, &error),
            0)
      << error;
}

TEST_F(BenchDiffMainTest, UsageAndParseErrorsExitTwo) {
  std::string output;
  std::string error;
  EXPECT_EQ(BenchDiffMain({"--baseline=/nonexistent.json",
                           "--current=/nonexistent.json"},
                          &output, &error),
            2);
  EXPECT_FALSE(error.empty());

  error.clear();
  EXPECT_EQ(BenchDiffMain({"--bogus-flag"}, &output, &error), 2);
  EXPECT_FALSE(error.empty());

  error.clear();
  const std::string bad = WriteTemp("bad", "{\"runs\":[");
  EXPECT_EQ(BenchDiffMain({"--baseline=" + bad, "--current=" + bad},
                          &output, &error),
            2);
  EXPECT_FALSE(error.empty());

  error.clear();
  const std::string base = WriteTemp("base2", RepoFile(0.1, "1"));
  EXPECT_EQ(BenchDiffMain({"--baseline=" + base, "--current=" + base,
                           "--threshold=0"},
                          &output, &error),
            2);
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace cli
}  // namespace linbp
