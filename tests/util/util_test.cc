#include <cmath>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/util/mem_info.h"
#include "src/util/random.h"
#include "src/util/table_printer.h"
#include "src/util/timer.h"

namespace linbp {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.NextBounded(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_EQ(rng.NextInt(5, 5), 5);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int samples = 20000;
  for (int i = 0; i < samples; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / samples, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / samples, 1.0, 0.05);
}

TEST(RngDeathTest, BoundedRejectsZero) {
  Rng rng(1);
  EXPECT_DEATH(rng.NextBounded(0), "");
}

TEST(WallTimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double elapsed = timer.Millis();
  EXPECT_GE(elapsed, 15.0);
  EXPECT_LT(elapsed, 2000.0);
  timer.Reset();
  EXPECT_LT(timer.Millis(), 15.0);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"a", "bbbb"});
  table.AddRow({"1", "2"});
  table.AddRow({"333", "4"});
  const std::string rendered = table.ToString();
  // All lines have the same width.
  std::size_t first_newline = rendered.find('\n');
  const std::size_t width = first_newline;
  std::size_t pos = 0;
  while (pos < rendered.size()) {
    const std::size_t next = rendered.find('\n', pos);
    ASSERT_NE(next, std::string::npos);
    EXPECT_EQ(next - pos, width) << rendered;
    pos = next + 1;
  }
}

TEST(TablePrinterTest, NumFormatsSignificantDigits) {
  EXPECT_EQ(TablePrinter::Num(1234.567, 4), "1235");
  EXPECT_EQ(TablePrinter::Num(0.000123456, 3), "0.000123");
  EXPECT_EQ(TablePrinter::Num(-2.5, 2), "-2.5");
}

TEST(TablePrinterTest, IntGroupsThousands) {
  EXPECT_EQ(TablePrinter::Int(0), "0");
  EXPECT_EQ(TablePrinter::Int(999), "999");
  EXPECT_EQ(TablePrinter::Int(1000), "1 000");
  EXPECT_EQ(TablePrinter::Int(1048576), "1 048 576");
  EXPECT_EQ(TablePrinter::Int(-12345), "-12 345");
}

TEST(TablePrinterDeathTest, RowArityChecked) {
  TablePrinter table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only one"}), "");
}

TEST(MemInfoTest, ProbesAreNonNegative) {
  // The probes must never go negative (0 means "unknown"). No
  // peak-vs-current cross-check: the two procfs reads are not atomic,
  // so RSS can legitimately grow past a just-read high-water mark.
  EXPECT_GE(util::PeakRssBytes(), 0);
  EXPECT_GE(util::CurrentRssBytes(), 0);
  EXPECT_GE(util::AvailableMemoryBytes(), 0);
}

TEST(MemInfoTest, ParserReturnsUnknownNotZeroBytes) {
  // The 0 return is the "unknown" sentinel; every malformed shape must
  // collapse to it rather than a fabricated small number.
  const std::string field = "MemAvailable";
  const auto parse = [&](const std::string& text) {
    std::istringstream in(text);
    return util::internal::ParseProcKbLines(in, field);
  };
  EXPECT_EQ(parse("MemAvailable:      2048 kB\n"), 2048 * 1024);
  EXPECT_EQ(parse("MemTotal: 4096 kB\nMemAvailable: 1 kB\n"), 1024);
  // Missing field, empty input, wrong unit, negative, and non-numeric
  // values are all "unknown".
  EXPECT_EQ(parse(""), 0);
  EXPECT_EQ(parse("MemTotal: 4096 kB\n"), 0);
  EXPECT_EQ(parse("MemAvailable: 2048 MB\n"), 0);
  EXPECT_EQ(parse("MemAvailable: -5 kB\n"), 0);
  EXPECT_EQ(parse("MemAvailable: lots kB\n"), 0);
  // A prefix match is not the field ("MemAvailableExtra" != field).
  EXPECT_EQ(parse("MemAvailableExtra: 7 kB\n"), 0);
}

TEST(MemInfoTest, PeakTracksAllocation) {
  const std::int64_t before = util::PeakRssBytes();
  if (before == 0) GTEST_SKIP() << "procfs unavailable";
  // Touch 64 MiB so the high-water mark must move well past any noise.
  std::vector<char> ballast(64 << 20);
  for (std::size_t i = 0; i < ballast.size(); i += 4096) ballast[i] = 1;
  EXPECT_GE(util::PeakRssBytes(), before + (32 << 20));
}

}  // namespace
}  // namespace linbp
