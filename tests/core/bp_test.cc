#include "src/core/bp.h"

#include <cmath>

#include "gtest/gtest.h"
#include "src/core/coupling.h"
#include "src/graph/beliefs.h"
#include "src/graph/generators.h"
#include "tests/testing/test_util.h"

namespace linbp {
namespace {

using testing::ExpectMatrixNear;

// Priors with every row uniform except the listed (node, class, strength)
// overrides (residual form converted to probabilities).
DenseMatrix PriorsWithSeeds(
    std::int64_t n, std::int64_t k,
    const std::vector<std::tuple<std::int64_t, std::int64_t, double>>& seeds) {
  DenseMatrix residual(n, k);
  for (const auto& [node, cls, strength] : seeds) {
    const auto row = ExplicitResidualForClass(k, cls, strength);
    for (std::int64_t c = 0; c < k; ++c) residual.At(node, c) = row[c];
  }
  return ResidualToProbability(residual);
}

TEST(ExactMarginalsTest, UniformEverythingIsUniform) {
  const Graph g = PathGraph(3);
  const DenseMatrix h = HomophilyCoupling2().ScaledStochastic(0.0);
  const DenseMatrix priors = PriorsWithSeeds(3, 2, {});
  const DenseMatrix marginals = ExactMarginals(g, h, priors);
  ExpectMatrixNear(marginals, priors, 1e-12);
}

TEST(ExactMarginalsTest, SingleNodeIsItsPrior) {
  const Graph g(1, {});
  const DenseMatrix priors{{0.7, 0.3}};
  const DenseMatrix h = HomophilyCoupling2().ScaledStochastic(0.3);
  ExpectMatrixNear(ExactMarginals(g, h, priors), priors, 1e-12);
}

TEST(ExactMarginalsTest, HomophilyPullsNeighborTowardSeed) {
  const Graph g = PathGraph(2);
  const DenseMatrix h{{0.8, 0.2}, {0.2, 0.8}};
  const DenseMatrix priors = PriorsWithSeeds(2, 2, {{0, 0, 0.5}});
  const DenseMatrix marginals = ExactMarginals(g, h, priors);
  EXPECT_GT(marginals.At(1, 0), 0.5);
}

TEST(BpTest, UniformInputsStayUniform) {
  const Graph g = CycleGraph(6);
  const DenseMatrix h = AuctionCoupling().ScaledStochastic(0.1);
  const DenseMatrix priors = PriorsWithSeeds(6, 3, {});
  const BpResult result = RunBp(g, h, priors);
  EXPECT_TRUE(result.converged);
  ExpectMatrixNear(result.beliefs, priors, 1e-9);
}

TEST(BpTest, HomophilyPropagatesLabelsAlongPath) {
  const Graph g = PathGraph(5);
  const DenseMatrix h{{0.8, 0.2}, {0.2, 0.8}};
  const DenseMatrix priors = PriorsWithSeeds(5, 2, {{0, 0, 0.6}});
  const BpResult result = RunBp(g, h, priors);
  ASSERT_TRUE(result.converged);
  for (std::int64_t v = 0; v < 5; ++v) {
    EXPECT_GT(result.beliefs.At(v, 0), 0.5) << v;
  }
  // Influence decays with distance.
  EXPECT_GT(result.beliefs.At(1, 0), result.beliefs.At(2, 0));
  EXPECT_GT(result.beliefs.At(2, 0), result.beliefs.At(3, 0));
}

TEST(BpTest, HeterophilyAlternatesLabelsAlongPath) {
  // "Opposites attract": neighbors of a T node should lean S.
  const Graph g = PathGraph(4);
  const DenseMatrix h{{0.3, 0.7}, {0.7, 0.3}};
  const DenseMatrix priors = PriorsWithSeeds(4, 2, {{0, 0, 0.6}});
  const BpResult result = RunBp(g, h, priors);
  ASSERT_TRUE(result.converged);
  EXPECT_LT(result.beliefs.At(1, 0), 0.5);
  EXPECT_GT(result.beliefs.At(2, 0), 0.5);
  EXPECT_LT(result.beliefs.At(3, 0), 0.5);
}

TEST(BpTest, BeliefsAreNormalized) {
  const Graph g = TorusExampleGraph();
  const DenseMatrix h = AuctionCoupling().ScaledStochastic(0.2);
  const DenseMatrix priors =
      PriorsWithSeeds(8, 3, {{0, 0, 0.3}, {1, 1, 0.3}, {2, 2, 0.3}});
  const BpResult result = RunBp(g, h, priors);
  for (std::int64_t v = 0; v < 8; ++v) {
    double sum = 0.0;
    for (std::int64_t c = 0; c < 3; ++c) {
      sum += result.beliefs.At(v, c);
      EXPECT_GE(result.beliefs.At(v, c), 0.0);
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(BpTest, IterationCapReported) {
  const Graph g = CycleGraph(8);
  const DenseMatrix h = HomophilyCoupling2().ScaledStochastic(0.9);
  const DenseMatrix priors = PriorsWithSeeds(8, 2, {{0, 0, 0.5}});
  BpOptions options;
  options.max_iterations = 3;
  options.tolerance = 0.0;
  const BpResult result = RunBp(g, h, priors, options);
  EXPECT_EQ(result.iterations, 3);
  EXPECT_FALSE(result.converged);
}

TEST(BpTest, ContradictoryHardEvidenceBreaksDown) {
  // Two adjacent nodes both *certainly* accomplices is impossible under the
  // auction model (H(A, A) = 0): the message products collapse to zero and
  // BP must report the breakdown instead of fabricating beliefs.
  const Graph g = PathGraph(3);
  const DenseMatrix h{{0.6, 0.3, 0.1}, {0.3, 0.0, 0.7}, {0.1, 0.7, 0.2}};
  DenseMatrix priors(3, 3);
  for (int v = 0; v < 3; ++v) priors.At(v, 1) = 1.0;  // one-hot accomplice
  const BpResult result = RunBp(g, h, priors);
  EXPECT_TRUE(result.diverged);
  EXPECT_FALSE(result.converged);
}

TEST(BpTest, KeepMessagesReturnsNormalizedMessages) {
  const Graph g = PathGraph(4);
  const DenseMatrix h = HomophilyCoupling2().ScaledStochastic(0.3);
  const DenseMatrix priors = PriorsWithSeeds(4, 2, {{0, 0, 0.4}});
  BpOptions options;
  options.keep_messages = true;
  options.tolerance = 1e-13;
  options.max_iterations = 500;
  const BpResult result = RunBp(g, h, priors, options);
  ASSERT_TRUE(result.converged);
  ASSERT_EQ(result.messages.size(),
            static_cast<std::size_t>(g.num_directed_edges() * 2));
  // Every message sums to k (Eq. 3's normalization).
  for (std::int64_t e = 0; e < g.num_directed_edges(); ++e) {
    EXPECT_NEAR(result.messages[e * 2] + result.messages[e * 2 + 1], 2.0,
                1e-12);
  }
}

TEST(BpDeathTest, RejectsNegativeCoupling) {
  const Graph g = PathGraph(2);
  EXPECT_DEATH(
      RunBp(g, DenseMatrix{{1.2, -0.2}, {-0.2, 1.2}},
            PriorsWithSeeds(2, 2, {})),
      "H must be >= 0");
}

// BP is exact on trees: beliefs equal the brute-force marginals of the
// pairwise MRF (the foundational property the paper builds on).
struct TreeCase {
  const char* name;
  int graph_kind;  // 0 = path, 1 = star (binary tree), 2 = binary tree 7
  int k;
  std::uint64_t seed;
};

class BpTreeExactTest : public ::testing::TestWithParam<TreeCase> {};

TEST_P(BpTreeExactTest, MatchesExactMarginalsOnTrees) {
  const TreeCase& param = GetParam();
  Graph g = param.graph_kind == 0   ? PathGraph(6)
            : param.graph_kind == 1 ? BinaryTreeGraph(5)
                                    : BinaryTreeGraph(7);
  // Random valid stochastic coupling and priors.
  const DenseMatrix hhat =
      testing::RandomResidualCoupling(param.k, 0.08, param.seed);
  const CouplingMatrix coupling = CouplingMatrix::FromResidual(hhat);
  const DenseMatrix h = coupling.ScaledStochastic(1.0);
  Rng rng(param.seed + 1);
  DenseMatrix residual(g.num_nodes(), param.k);
  for (std::int64_t v = 0; v < g.num_nodes(); ++v) {
    if (!rng.NextBernoulli(0.5)) continue;
    double sum = 0.0;
    for (std::int64_t c = 0; c + 1 < param.k; ++c) {
      residual.At(v, c) = 0.15 * (2.0 * rng.NextDouble() - 1.0);
      sum += residual.At(v, c);
    }
    residual.At(v, param.k - 1) = -sum;
  }
  const DenseMatrix priors = ResidualToProbability(residual);

  BpOptions options;
  options.max_iterations = 200;
  options.tolerance = 1e-13;
  const BpResult bp = RunBp(g, h, priors, options);
  ASSERT_TRUE(bp.converged);
  const DenseMatrix exact = ExactMarginals(g, h, priors);
  ExpectMatrixNear(bp.beliefs, exact, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BpTreeExactTest,
    ::testing::Values(TreeCase{"path_k2_a", 0, 2, 1},
                      TreeCase{"path_k2_b", 0, 2, 2},
                      TreeCase{"path_k3", 0, 3, 3},
                      TreeCase{"star_k2", 1, 2, 4},
                      TreeCase{"star_k3", 1, 3, 5},
                      TreeCase{"star_k4", 1, 4, 6},
                      TreeCase{"tree7_k2", 2, 2, 7},
                      TreeCase{"tree7_k3", 2, 3, 8},
                      TreeCase{"tree7_k4", 2, 4, 9}),
    [](const ::testing::TestParamInfo<TreeCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace linbp
