// End-to-end reproduction of Example 20 / Fig. 4 of the paper: on the torus
// graph with the Fig. 1c coupling matrix, the standardized beliefs of node
// v4 under BP, LinBP and LinBP* all converge to the SBP limit
// [-0.069, 1.258, -1.189] as eps_H -> 0, and each algorithm stops
// converging exactly at its predicted threshold.

#include <cmath>

#include "gtest/gtest.h"
#include "src/core/bp.h"
#include "src/core/convergence.h"
#include "src/core/coupling.h"
#include "src/core/labeling.h"
#include "src/core/linbp.h"
#include "src/core/sbp.h"
#include "src/graph/beliefs.h"
#include "src/graph/generators.h"
#include "tests/testing/test_util.h"

namespace linbp {
namespace {

class Example20Test : public ::testing::Test {
 protected:
  Example20Test() : graph_(TorusExampleGraph()), explicit_(8, 3) {
    const double seeds[3][3] = {{2, -1, -1}, {-1, 2, -1}, {-1, -1, 2}};
    for (int v = 0; v < 3; ++v) {
      for (int c = 0; c < 3; ++c) explicit_.At(v, c) = seeds[v][c];
    }
  }

  std::vector<double> SbpStandardized() const {
    const SbpResult sbp = RunSbp(graph_, AuctionCoupling().residual(),
                                 explicit_, {0, 1, 2});
    return Standardize(BeliefRow(sbp.beliefs, 3));
  }

  Graph graph_;
  DenseMatrix explicit_;
};

TEST_F(Example20Test, SbpLimitValues) {
  const std::vector<double> standardized = SbpStandardized();
  EXPECT_NEAR(standardized[0], -0.069, 1e-3);
  EXPECT_NEAR(standardized[1], 1.258, 1e-3);
  EXPECT_NEAR(standardized[2], -1.189, 1e-3);
}

TEST_F(Example20Test, LinBpApproachesSbpForSmallEps) {
  const std::vector<double> sbp = SbpStandardized();
  for (const LinBpVariant variant :
       {LinBpVariant::kLinBp, LinBpVariant::kLinBpStar}) {
    LinBpOptions options;
    options.variant = variant;
    options.max_iterations = 400;
    options.tolerance = 1e-16;
    const LinBpResult lin = RunLinBp(
        graph_, AuctionCoupling().ScaledResidual(0.01), explicit_, options);
    ASSERT_TRUE(lin.converged);
    const std::vector<double> standardized =
        Standardize(BeliefRow(lin.beliefs, 3));
    for (int c = 0; c < 3; ++c) {
      EXPECT_NEAR(standardized[c], sbp[c], 5e-3) << "class " << c;
    }
  }
}

TEST_F(Example20Test, BpApproachesSbpForSmallEps) {
  const std::vector<double> sbp = SbpStandardized();
  // Scale explicit beliefs into valid probabilities: 0.1 * [2,-1,-1] keeps
  // residuals small; eps keeps H non-negative.
  const double eps = 0.01;
  BpOptions options;
  options.max_iterations = 500;
  options.tolerance = 1e-14;
  const BpResult bp =
      RunBp(graph_, AuctionCoupling().ScaledStochastic(eps),
            ResidualToProbability(explicit_.Scale(0.1)), options);
  ASSERT_TRUE(bp.converged);
  const std::vector<double> standardized = Standardize(
      BeliefRow(ProbabilityToResidual(bp.beliefs), 3));
  for (int c = 0; c < 3; ++c) {
    EXPECT_NEAR(standardized[c], sbp[c], 5e-2) << "class " << c;
  }
}

TEST_F(Example20Test, TopBeliefOfV4IsClass2) {
  // Fig. 4: class 2 (index 1) dominates for v4 across all methods.
  const SbpResult sbp = RunSbp(graph_, AuctionCoupling().residual(),
                               explicit_, {0, 1, 2});
  const TopBeliefAssignment top = TopBeliefs(sbp.beliefs);
  EXPECT_EQ(top.classes[3], std::vector<int>{1});
}

TEST_F(Example20Test, ConvergenceBoundariesBehaveAsPredicted) {
  // eps = 0.45 < 0.488: both converge. 0.55: only LinBP*. 0.7: neither.
  LinBpOptions options;
  options.max_iterations = 4000;
  options.tolerance = 1e-14;

  // Perturb the (highly symmetric) Example 20 seeds slightly: the symmetric
  // seeds are orthogonal to the unstable eigenmode, so exact arithmetic
  // would hide the divergence that Lemma 8 predicts for generic inputs.
  DenseMatrix perturbed = explicit_;
  perturbed.At(0, 0) += 0.01;
  perturbed.At(0, 1) -= 0.01;

  auto run = [&](double eps, LinBpVariant variant) {
    options.variant = variant;
    return RunLinBp(graph_, AuctionCoupling().ScaledResidual(eps), perturbed,
                    options);
  };
  EXPECT_TRUE(run(0.45, LinBpVariant::kLinBp).converged);
  EXPECT_TRUE(run(0.45, LinBpVariant::kLinBpStar).converged);
  EXPECT_TRUE(run(0.55, LinBpVariant::kLinBp).diverged);
  EXPECT_TRUE(run(0.55, LinBpVariant::kLinBpStar).converged);
  EXPECT_TRUE(run(0.70, LinBpVariant::kLinBp).diverged);
  EXPECT_TRUE(run(0.70, LinBpVariant::kLinBpStar).diverged);
}

TEST_F(Example20Test, SigmaDecaysCubically) {
  // Fig. 4d: sigma(bhat_v4) = eps^3 * 0.332 in the SBP limit.
  for (const double eps : {0.05, 0.1, 0.2}) {
    LinBpOptions options;
    options.max_iterations = 1000;
    options.tolerance = 1e-16;
    const LinBpResult lin = RunLinBp(
        graph_, AuctionCoupling().ScaledResidual(eps), explicit_, options);
    ASSERT_TRUE(lin.converged);
    const double sigma = StandardDeviation(BeliefRow(lin.beliefs, 3));
    // LinBP's sigma approaches the SBP line as eps -> 0; at these scales
    // it matches within ~20%.
    EXPECT_NEAR(sigma, eps * eps * eps * 0.3323,
                0.25 * eps * eps * eps * 0.3323)
        << "eps " << eps;
  }
}

}  // namespace
}  // namespace linbp
