// Fig. 10b consistency: incremental SBP (Algorithm 4) after edge
// insertions must match a full from-scratch recompute within 1e-9.

#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/coupling.h"
#include "src/core/sbp.h"
#include "src/core/sbp_incremental.h"
#include "src/graph/beliefs.h"
#include "src/graph/generators.h"
#include "src/graph/graph.h"
#include "tests/testing/test_util.h"

namespace linbp {
namespace {

using testing::ExpectMatrixNear;
using testing::RandomFreshEdges;

constexpr double kRecomputeTol = 1e-9;

void ExpectMatchesRecompute(const SbpState& state, const Graph& graph,
                            const DenseMatrix& hhat,
                            const DenseMatrix& residuals,
                            const std::vector<std::int64_t>& explicit_nodes) {
  const SbpResult cold = RunSbp(graph, hhat, residuals, explicit_nodes);
  EXPECT_EQ(state.geodesic(), cold.geodesic);
  ExpectMatrixNear(state.beliefs(), cold.beliefs, kRecomputeTol);
}

TEST(SbpIncrementalConsistencyTest, SingleEdgeInsertionMatchesRecompute) {
  const std::int64_t n = 30;
  const Graph g = RandomConnectedGraph(n, 20, /*seed=*/51);
  const DenseMatrix hhat = AuctionCoupling().ScaledResidual(0.25);
  const SeededBeliefs seeded = SeedPaperBeliefs(n, 3, 6, /*seed=*/52);

  SbpState state =
      SbpState::FromGraph(g, hhat, seeded.residuals, seeded.explicit_nodes);
  Rng rng(501);
  const std::vector<Edge> fresh = RandomFreshEdges(g.edges(), n, rng, 1);
  state.AddEdges(fresh);

  std::vector<Edge> all = g.edges();
  all.insert(all.end(), fresh.begin(), fresh.end());
  ExpectMatchesRecompute(state, Graph(n, all), hhat, seeded.residuals,
                         seeded.explicit_nodes);
}

TEST(SbpIncrementalConsistencyTest, EdgeBatchSequenceMatchesRecompute) {
  const std::int64_t n = 45;
  // Sparse and possibly disconnected so insertions reshuffle geodesics.
  const Graph start = ErdosRenyiGraph(n, 25, /*seed=*/61);
  const DenseMatrix hhat =
      testing::RandomResidualCoupling(3, 0.2, /*seed=*/62);
  const SeededBeliefs seeded = SeedPaperBeliefs(n, 3, 5, /*seed=*/63);

  SbpState state = SbpState::FromGraph(start, hhat, seeded.residuals,
                                       seeded.explicit_nodes);
  std::vector<Edge> all = start.edges();
  Rng rng(601);
  for (int round = 0; round < 5; ++round) {
    const std::vector<Edge> batch = RandomFreshEdges(all, n, rng, 2);
    state.AddEdges(batch);
    all.insert(all.end(), batch.begin(), batch.end());
    ExpectMatchesRecompute(state, Graph(n, all), hhat, seeded.residuals,
                           seeded.explicit_nodes);
  }
}

TEST(SbpIncrementalConsistencyTest, InsertionTouchesOnlyAffectedRegion) {
  // Fig. 10b's speedup argument: an inserted edge far from the labeled
  // frontier recomputes only a small affected region, yet still agrees
  // with the full recompute.
  const std::int64_t n = 64;
  const Graph g = GridGraph(8, 8);
  const DenseMatrix hhat = HomophilyCoupling2().ScaledResidual(0.3);
  DenseMatrix e(n, 2);
  e.At(0, 0) = 0.1;
  e.At(0, 1) = -0.1;
  SbpState state = SbpState::FromGraph(g, hhat, e, {0});

  // A short-cut edge in the far corner of the grid.
  state.AddEdges({{54, 63, 1.0}});
  std::vector<Edge> all = g.edges();
  all.push_back({54, 63, 1.0});
  ExpectMatchesRecompute(state, Graph(n, all), hhat, e, {0});
  EXPECT_LT(state.last_update_recomputed_nodes(), n / 2);
}

}  // namespace
}  // namespace linbp
