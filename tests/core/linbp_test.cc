#include "src/core/linbp.h"

#include <cmath>
#include <cstring>

#include "gtest/gtest.h"
#include "src/core/bp.h"
#include "src/core/closed_form.h"
#include "src/core/coupling.h"
#include "src/core/labeling.h"
#include "src/graph/beliefs.h"
#include "src/graph/generators.h"
#include "src/obs/metrics.h"
#include "src/obs/timeseries.h"
#include "src/obs/trace.h"
#include "tests/testing/test_util.h"

namespace linbp {
namespace {

using testing::ExpectMatrixNear;

DenseMatrix SeedResiduals(std::int64_t n, std::int64_t k, std::uint64_t seed,
                          double fraction = 0.3) {
  const SeededBeliefs seeded = SeedPaperBeliefs(
      n, k, std::max<std::int64_t>(1, static_cast<std::int64_t>(n * fraction)),
      seed);
  return seeded.residuals;
}

TEST(LinBpTest, NoExplicitBeliefsYieldZero) {
  const Graph g = CycleGraph(5);
  const DenseMatrix hhat = AuctionCoupling().ScaledResidual(0.1);
  const LinBpResult result = RunLinBp(g, hhat, DenseMatrix(5, 3));
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.beliefs.MaxAbs(), 0.0);
}

TEST(LinBpTest, IsolatedExplicitNodeKeepsItsBeliefs) {
  const Graph g(3, {{0, 1, 1.0}});  // node 2 isolated
  const DenseMatrix hhat = HomophilyCoupling2().ScaledResidual(0.2);
  DenseMatrix e(3, 2);
  e.At(2, 0) = 0.1;
  e.At(2, 1) = -0.1;
  const LinBpResult result = RunLinBp(g, hhat, e);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.beliefs.At(2, 0), 0.1, 1e-14);
  EXPECT_EQ(result.beliefs.At(0, 0), 0.0);
}

TEST(LinBpTest, BeliefRowsStayCentered) {
  const Graph g = TorusExampleGraph();
  const DenseMatrix hhat = AuctionCoupling().ScaledResidual(0.1);
  const DenseMatrix e = SeedResiduals(8, 3, /*seed=*/3, 0.4);
  const LinBpResult result = RunLinBp(g, hhat, e);
  ASSERT_TRUE(result.converged);
  for (std::int64_t v = 0; v < 8; ++v) {
    double sum = 0.0;
    for (std::int64_t c = 0; c < 3; ++c) sum += result.beliefs.At(v, c);
    EXPECT_NEAR(sum, 0.0, 1e-10) << v;
  }
}

TEST(LinBpTest, DivergenceDetectedAboveThreshold) {
  // Example 20: LinBP diverges on the torus for eps_H > ~0.488.
  const Graph g = TorusExampleGraph();
  const DenseMatrix hhat = AuctionCoupling().ScaledResidual(0.6);
  DenseMatrix e(8, 3);
  e.At(0, 0) = 0.1;
  e.At(0, 1) = -0.05;
  e.At(0, 2) = -0.05;
  LinBpOptions options;
  options.max_iterations = 600;
  const LinBpResult result = RunLinBp(g, hhat, e, options);
  EXPECT_TRUE(result.diverged);
  EXPECT_FALSE(result.converged);
}

TEST(LinBpTest, StarVariantConvergesWhereEchoVariantDiverges) {
  // Between the two thresholds (0.488 < eps < 0.658) only LinBP* converges.
  const Graph g = TorusExampleGraph();
  const DenseMatrix hhat = AuctionCoupling().ScaledResidual(0.55);
  DenseMatrix e(8, 3);
  e.At(0, 0) = 0.1;
  e.At(0, 1) = -0.05;
  e.At(0, 2) = -0.05;
  LinBpOptions options;
  options.max_iterations = 2000;
  options.variant = LinBpVariant::kLinBp;
  EXPECT_TRUE(RunLinBp(g, hhat, e, options).diverged);
  options.variant = LinBpVariant::kLinBpStar;
  const LinBpResult star = RunLinBp(g, hhat, e, options);
  EXPECT_FALSE(star.diverged);
  EXPECT_TRUE(star.converged);
}

// Lemma 12 / Corollary 13: scaling E scales B linearly and leaves the
// standardized (and top-belief) assignment unchanged.
TEST(LinBpTest, ScalingExplicitBeliefsScalesFinalBeliefs) {
  const Graph g = RandomConnectedGraph(12, 8, /*seed=*/4);
  const DenseMatrix hhat = AuctionCoupling().ScaledResidual(0.05);
  const DenseMatrix e = SeedResiduals(12, 3, /*seed=*/5);
  const LinBpResult base = RunLinBp(g, hhat, e);
  const LinBpResult scaled = RunLinBp(g, hhat, e.Scale(7.5));
  ASSERT_TRUE(base.converged && scaled.converged);
  ExpectMatrixNear(scaled.beliefs, base.beliefs.Scale(7.5), 1e-9);
  ExpectMatrixNear(StandardizeRows(scaled.beliefs),
                   StandardizeRows(base.beliefs), 1e-8);
}

TEST(LinBpTest, WeightedEdgesScaleInfluence) {
  // A heavier edge transmits proportionally more residual belief.
  const DenseMatrix hhat = HomophilyCoupling2().ScaledResidual(0.1);
  DenseMatrix e(2, 2);
  e.At(0, 0) = 0.1;
  e.At(0, 1) = -0.1;
  const Graph light(2, {{0, 1, 1.0}});
  const Graph heavy(2, {{0, 1, 2.0}});
  const LinBpResult b_light = RunLinBp(light, hhat, e);
  const LinBpResult b_heavy = RunLinBp(heavy, hhat, e);
  ASSERT_TRUE(b_light.converged && b_heavy.converged);
  EXPECT_GT(b_heavy.beliefs.At(1, 0), 1.9 * b_light.beliefs.At(1, 0));
}

TEST(LinBpTest, ExactModulationMatchesSeries) {
  // Hhat* = (I - Hhat^2)^-1 Hhat = Hhat + Hhat^3 + Hhat^5 + ...
  const DenseMatrix hhat = AuctionCoupling().ScaledResidual(0.3);
  const DenseMatrix hstar = ExactModulation(hhat);
  DenseMatrix series = hhat;
  DenseMatrix power = hhat;
  for (int i = 0; i < 60; ++i) {
    power = power.Multiply(hhat).Multiply(hhat);
    series = series.Add(power);
  }
  ExpectMatrixNear(hstar, series, 1e-10);
}

TEST(LinBpTest, ExactVariantApproachesLinBpForSmallResiduals) {
  const Graph g = RandomConnectedGraph(10, 6, /*seed=*/6);
  const DenseMatrix hhat = AuctionCoupling().ScaledResidual(0.02);
  const DenseMatrix e = SeedResiduals(10, 3, /*seed=*/7);
  LinBpOptions options;
  options.variant = LinBpVariant::kLinBp;
  const LinBpResult plain = RunLinBp(g, hhat, e, options);
  options.variant = LinBpVariant::kLinBpExact;
  const LinBpResult exact = RunLinBp(g, hhat, e, options);
  ASSERT_TRUE(plain.converged && exact.converged);
  // Difference is O(hhat^3) relative to an O(hhat) signal.
  EXPECT_LT(plain.beliefs.MaxAbsDiff(exact.beliefs),
            1e-3 * plain.beliefs.MaxAbs());
}

TEST(LinBpTest, InstrumentationIsBitInvisible) {
  const Graph g = RandomConnectedGraph(40, 30, /*seed=*/9);
  const DenseMatrix hhat = AuctionCoupling().ScaledResidual(0.05);
  const DenseMatrix e = SeedResiduals(40, 3, /*seed=*/10);

  // Baseline: metrics and time series null-sinked, no tracer, no
  // observer, no diagnostics extras.
  obs::Registry::Global().SetEnabled(false);
  obs::TimeSeriesRegistry::Global().SetEnabled(false);
  const LinBpResult plain = RunLinBp(g, hhat, e);
  obs::Registry::Global().SetEnabled(true);
  obs::TimeSeriesRegistry::Global().SetEnabled(true);

  // Fully instrumented: metrics on, time series recording, span tracer
  // installed, sweep observer attached, spectral estimate requested.
  obs::Tracer tracer;
  obs::SetActiveTracer(&tracer);
  LinBpOptions options;
  options.estimate_spectral_radius = true;
  int observed_sweeps = 0;
  std::int64_t observed_rows = 0;
  options.sweep_observer = [&](const SweepTelemetry& telemetry) {
    ++observed_sweeps;
    observed_rows = telemetry.rows;
    EXPECT_GE(telemetry.seconds, 0.0);
    EXPECT_GE(telemetry.delta_l2, 0.0);
  };
  const LinBpResult traced = RunLinBp(g, hhat, e, options);
  obs::SetActiveTracer(nullptr);

  ASSERT_TRUE(plain.converged && traced.converged);
  EXPECT_EQ(traced.iterations, plain.iterations);
  EXPECT_EQ(observed_sweeps, traced.iterations);
  EXPECT_EQ(observed_rows, 40);
  EXPECT_GE(tracer.num_spans(),
            static_cast<std::size_t>(traced.iterations));
  // The instrumented run recorded one time-series sample per sweep.
  const std::vector<obs::TimeSeriesSample> samples =
      obs::TimeSeriesRegistry::Global().Get("linbp_sweep").Samples();
  EXPECT_EQ(samples.size(), static_cast<std::size_t>(traced.iterations));
  // And its diagnostics carry a contraction fit plus the spectral
  // estimate the options requested.
  EXPECT_GT(traced.diagnostics.empirical_contraction, 0.0);
  EXPECT_LT(traced.diagnostics.empirical_contraction, 1.0);
  EXPECT_GT(traced.diagnostics.spectral_radius_estimate, 0.0);
  EXPECT_EQ(traced.diagnostics.predicted_sweeps_to_tolerance, 0.0);
  // Bit identity, not a tolerance: telemetry must never touch the math.
  ASSERT_EQ(plain.beliefs.rows(), traced.beliefs.rows());
  ASSERT_EQ(plain.beliefs.cols(), traced.beliefs.cols());
  EXPECT_EQ(std::memcmp(plain.beliefs.data().data(),
                        traced.beliefs.data().data(),
                        plain.beliefs.data().size() * sizeof(double)),
            0);
}

TEST(LinBpTest, ContractionFitMatchesSpectralRadiusOnTorus) {
  // On a converging run the fitted rho-hat tracks rho(M): the Jacobi
  // residual contracts by exactly rho(M) per sweep asymptotically
  // (Eq. 13). Torus at eps 0.45, just under the ~0.488 threshold of
  // Example 20, converges slowly enough for a clean trailing fit.
  const Graph g = TorusExampleGraph();
  const DenseMatrix hhat = AuctionCoupling().ScaledResidual(0.45);
  DenseMatrix e(8, 3);
  e.At(0, 0) = 0.1;
  e.At(0, 1) = -0.05;
  e.At(0, 2) = -0.05;
  LinBpOptions options;
  options.max_iterations = 2000;
  options.tolerance = 1e-14;
  options.estimate_spectral_radius = true;
  const LinBpResult result = RunLinBp(g, hhat, e, options);
  ASSERT_TRUE(result.converged);
  const ConvergenceDiagnostics& diag = result.diagnostics;
  ASSERT_GT(diag.spectral_radius_estimate, 0.0);
  EXPECT_LT(diag.spectral_radius_estimate, 1.0);
  EXPECT_GT(diag.fitted_sweeps, 2);
  EXPECT_NEAR(diag.empirical_contraction, diag.spectral_radius_estimate,
              0.05);
}

TEST(LinBpTest, PredictsRemainingSweepsWhenStoppedEarly) {
  const Graph g = TorusExampleGraph();
  const DenseMatrix hhat = AuctionCoupling().ScaledResidual(0.45);
  DenseMatrix e(8, 3);
  e.At(0, 0) = 0.1;
  e.At(0, 1) = -0.05;
  e.At(0, 2) = -0.05;
  LinBpOptions options;
  options.tolerance = 1e-14;
  options.max_iterations = 40;  // stop well before convergence
  const LinBpResult result = RunLinBp(g, hhat, e, options);
  ASSERT_FALSE(result.converged);
  ASSERT_FALSE(result.failed);
  // rho-hat in (0, 1) plus a positive prediction of the remaining work.
  EXPECT_GT(result.diagnostics.empirical_contraction, 0.0);
  EXPECT_LT(result.diagnostics.empirical_contraction, 1.0);
  EXPECT_GT(result.diagnostics.predicted_sweeps_to_tolerance, 0.0);
}

TEST(LinBpTest, DivergenceAbortsEarlyWithDiagnosticError) {
  // Example 20 again (eps 0.6 > ~0.488 diverges), but unlike the
  // magnitude-threshold path the early abort stops in O(patience)
  // sweeps with a diagnostic error instead of iterating until beliefs
  // exceed 1e12.
  const Graph g = TorusExampleGraph();
  const DenseMatrix hhat = AuctionCoupling().ScaledResidual(0.6);
  DenseMatrix e(8, 3);
  e.At(0, 0) = 0.1;
  e.At(0, 1) = -0.05;
  e.At(0, 2) = -0.05;
  LinBpOptions options;
  options.max_iterations = 600;
  const LinBpResult result = RunLinBp(g, hhat, e, options);
  EXPECT_TRUE(result.failed);
  EXPECT_TRUE(result.diverged);
  EXPECT_FALSE(result.converged);
  EXPECT_LT(result.iterations, 100);
  EXPECT_NE(result.error.find("diverging"), std::string::npos)
      << result.error;
  EXPECT_NE(result.error.find("rho_hat="), std::string::npos)
      << result.error;
  EXPECT_GT(result.diagnostics.empirical_contraction, 1.0);
  // The abort computed the exact criterion for its message: rho(M) > 1
  // confirms Lemma 8's divergence verdict.
  EXPECT_GT(result.diagnostics.spectral_radius_estimate, 1.0);
}

TEST(LinBpTest, DivergencePatienceZeroDisablesEarlyAbort) {
  const Graph g = TorusExampleGraph();
  const DenseMatrix hhat = AuctionCoupling().ScaledResidual(0.6);
  DenseMatrix e(8, 3);
  e.At(0, 0) = 0.1;
  e.At(0, 1) = -0.05;
  e.At(0, 2) = -0.05;
  LinBpOptions options;
  options.max_iterations = 600;
  options.divergence_patience = 0;
  const LinBpResult result = RunLinBp(g, hhat, e, options);
  // The old magnitude-threshold path: diverged but not failed, and the
  // run had to iterate until beliefs crossed divergence_threshold.
  EXPECT_TRUE(result.diverged);
  EXPECT_FALSE(result.failed);
  EXPECT_TRUE(result.error.empty()) << result.error;
}

// The headline quality result (Sect. 7, Fig. 7f): LinBP's top-belief
// assignment matches BP's for small eps_H.
class LinBpVsBpTest : public ::testing::TestWithParam<int> {};

TEST_P(LinBpVsBpTest, TopBeliefsMatchBpForSmallEps) {
  const std::uint64_t seed = GetParam();
  const Graph g = RandomConnectedGraph(30, 25, seed);
  const CouplingMatrix coupling = AuctionCoupling();
  const double eps = 0.02;
  const DenseMatrix e = SeedResiduals(30, 3, seed + 1, 0.25);

  BpOptions bp_options;
  bp_options.max_iterations = 300;
  bp_options.tolerance = 1e-13;
  const BpResult bp = RunBp(g, coupling.ScaledStochastic(eps),
                            ResidualToProbability(e), bp_options);
  ASSERT_TRUE(bp.converged);

  LinBpOptions lin_options;
  lin_options.max_iterations = 300;
  const LinBpResult lin =
      RunLinBp(g, coupling.ScaledResidual(eps), e, lin_options);
  ASSERT_TRUE(lin.converged);

  const TopBeliefAssignment bp_top =
      TopBeliefs(ProbabilityToResidual(bp.beliefs));
  const TopBeliefAssignment lin_top = TopBeliefs(lin.beliefs);
  const QualityMetrics metrics = CompareAssignments(bp_top, lin_top);
  EXPECT_GT(metrics.f1, 0.95) << "seed " << seed;
}

TEST_P(LinBpVsBpTest, ResidualBeliefsTrackBpResiduals) {
  const std::uint64_t seed = GetParam();
  const Graph g = RandomConnectedGraph(15, 10, seed + 100);
  const CouplingMatrix coupling = AuctionCoupling();
  const double eps = 0.01;
  const DenseMatrix e = SeedResiduals(15, 3, seed + 101, 0.3);

  BpOptions bp_options;
  bp_options.max_iterations = 300;
  bp_options.tolerance = 1e-14;
  const BpResult bp = RunBp(g, coupling.ScaledStochastic(eps),
                            ResidualToProbability(e), bp_options);
  ASSERT_TRUE(bp.converged);
  const LinBpResult lin = RunLinBp(g, coupling.ScaledResidual(eps), e);
  ASSERT_TRUE(lin.converged);

  // Residuals agree to second order in eps (both ~1e-2 here, error ~1e-4).
  const DenseMatrix bp_residual = ProbabilityToResidual(bp.beliefs);
  EXPECT_LT(lin.beliefs.MaxAbsDiff(bp_residual), 5e-4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinBpVsBpTest, ::testing::Range(0, 6));

// Larger class counts: LinBP stays consistent with its closed form for any
// k (the derivation never assumes k = 2 or 3).
class LinBpManyClassesTest : public ::testing::TestWithParam<int> {};

TEST_P(LinBpManyClassesTest, IterativeMatchesClosedForm) {
  const std::int64_t k = GetParam();
  const Graph g = RandomConnectedGraph(8, 6, /*seed=*/17 + k);
  const DenseMatrix hhat =
      testing::RandomResidualCoupling(k, 0.3 / static_cast<double>(k),
                                      23 + k);
  Rng rng(29 + k);
  DenseMatrix e(8, k);
  for (std::int64_t v = 0; v < 4; ++v) {
    double sum = 0.0;
    for (std::int64_t c = 0; c + 1 < k; ++c) {
      e.At(v, c) = 0.1 * (2.0 * rng.NextDouble() - 1.0);
      sum += e.At(v, c);
    }
    e.At(v, k - 1) = -sum;
  }
  LinBpOptions options;
  options.max_iterations = 500;
  options.tolerance = 1e-14;
  const LinBpResult iterative = RunLinBp(g, hhat, e, options);
  ASSERT_TRUE(iterative.converged) << "k=" << k;
  const DenseMatrix closed = ClosedFormLinBpDense(g, hhat, e);
  ExpectMatrixNear(iterative.beliefs, closed, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(ClassCounts, LinBpManyClassesTest,
                         ::testing::Values(2, 4, 5, 7));

}  // namespace
}  // namespace linbp
