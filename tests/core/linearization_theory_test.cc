// Numerical verification of the linearization lemmas of Sect. 4: the
// centered BP equations (Lemma 5) and the steady-state message equation
// (Lemma 6) hold for BP's actual messages up to higher-order residual
// terms. These tests bridge the BP implementation and the LinBP derivation.

#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/bp.h"
#include "src/core/coupling.h"
#include "src/core/linbp.h"
#include "src/graph/beliefs.h"
#include "src/graph/generators.h"
#include "tests/testing/test_util.h"

namespace linbp {
namespace {

struct SteadyState {
  Graph graph;
  DenseMatrix hhat;              // scaled residual coupling
  DenseMatrix belief_residuals;  // bhat from BP
  DenseMatrix explicit_residuals;
  std::vector<double> messages;  // raw messages (centered around 1)
  double eps;
};

SteadyState RunToSteadyState(double eps, std::uint64_t seed) {
  SteadyState state{RandomConnectedGraph(12, 8, seed),
                    DenseMatrix(),
                    DenseMatrix(),
                    DenseMatrix(),
                    {},
                    eps};
  const CouplingMatrix coupling = AuctionCoupling();
  state.hhat = coupling.ScaledResidual(eps);
  const SeededBeliefs seeded =
      SeedPaperBeliefs(state.graph.num_nodes(), 3, 4, seed + 1);
  state.explicit_residuals = seeded.residuals;
  BpOptions options;
  options.max_iterations = 2000;
  options.tolerance = 1e-15;
  options.keep_messages = true;
  const BpResult bp = RunBp(state.graph, coupling.ScaledStochastic(eps),
                            ResidualToProbability(seeded.residuals), options);
  EXPECT_TRUE(bp.converged);
  state.belief_residuals = ProbabilityToResidual(bp.beliefs);
  state.messages = bp.messages;
  return state;
}

// Lemma 6: mhat_st = k (I - Hhat^2)^-1 Hhat (bhat_s - Hhat bhat_t), with an
// error that is higher order in the residual magnitudes.
TEST(LinearizationTheoryTest, Lemma6SteadyStateMessages) {
  const double eps = 0.01;
  const SteadyState state = RunToSteadyState(eps, /*seed=*/3);
  const std::int64_t k = 3;
  const DenseMatrix modulation = ExactModulation(state.hhat);  // (I-H^2)^-1 H

  const auto& row_ptr = state.graph.adjacency().row_ptr();
  const auto& col_idx = state.graph.adjacency().col_idx();
  double max_message = 0.0;
  double max_error = 0.0;
  for (std::int64_t s = 0; s < state.graph.num_nodes(); ++s) {
    for (std::int64_t e = row_ptr[s]; e < row_ptr[s + 1]; ++e) {
      const std::int64_t t = col_idx[e];
      // Predicted residual message (column-vector convention: the message
      // transforms via Hhat^T = Hhat).
      std::vector<double> combined(k);
      for (std::int64_t i = 0; i < k; ++i) {
        double ht = 0.0;
        for (std::int64_t j = 0; j < k; ++j) {
          ht += state.hhat.At(j, i) * state.belief_residuals.At(t, j);
        }
        combined[i] = state.belief_residuals.At(s, i) - ht;
      }
      for (std::int64_t i = 0; i < k; ++i) {
        double predicted = 0.0;
        for (std::int64_t j = 0; j < k; ++j) {
          predicted += modulation.At(j, i) * combined[j];
        }
        predicted *= static_cast<double>(k);
        const double actual = state.messages[e * k + i] - 1.0;
        max_message = std::max(max_message, std::abs(actual));
        max_error = std::max(max_error, std::abs(actual - predicted));
      }
    }
  }
  ASSERT_GT(max_message, 0.0);
  // The linearization error is second order: at eps = 0.01 the residual
  // messages are ~1e-3 and the error a few percent of them.
  EXPECT_LT(max_error, 0.05 * max_message);
}

TEST(LinearizationTheoryTest, Lemma6ErrorShrinksWithEps) {
  // Halving eps should shrink the *relative* linearization error roughly
  // linearly (the dropped terms are one order higher).
  auto relative_error = [](double eps, std::uint64_t seed) {
    const SteadyState state = RunToSteadyState(eps, seed);
    const std::int64_t k = 3;
    const DenseMatrix modulation = ExactModulation(state.hhat);
    const auto& row_ptr = state.graph.adjacency().row_ptr();
    const auto& col_idx = state.graph.adjacency().col_idx();
    double max_message = 0.0;
    double max_error = 0.0;
    for (std::int64_t s = 0; s < state.graph.num_nodes(); ++s) {
      for (std::int64_t e = row_ptr[s]; e < row_ptr[s + 1]; ++e) {
        const std::int64_t t = col_idx[e];
        for (std::int64_t i = 0; i < k; ++i) {
          double predicted = 0.0;
          for (std::int64_t j = 0; j < k; ++j) {
            double ht = 0.0;
            for (std::int64_t g = 0; g < k; ++g) {
              ht += state.hhat.At(g, j) * state.belief_residuals.At(t, g);
            }
            predicted += modulation.At(j, i) *
                         (state.belief_residuals.At(s, j) - ht);
          }
          predicted *= static_cast<double>(k);
          const double actual = state.messages[e * k + i] - 1.0;
          max_message = std::max(max_message, std::abs(actual));
          max_error = std::max(max_error, std::abs(actual - predicted));
        }
      }
    }
    return max_error / max_message;
  };
  const double coarse = relative_error(0.04, 7);
  const double fine = relative_error(0.01, 7);
  EXPECT_LT(fine, coarse);
}

// Lemma 5 (first equation): bhat_s(i) ~ ehat_s(i) + (1/k) sum_u mhat_us(i).
TEST(LinearizationTheoryTest, Lemma5CenteredBeliefUpdate) {
  const double eps = 0.01;
  const SteadyState state = RunToSteadyState(eps, /*seed=*/11);
  const std::int64_t k = 3;
  const auto& row_ptr = state.graph.adjacency().row_ptr();
  const std::vector<std::int64_t> reverse =
      ReverseEdgeIndex(state.graph.adjacency());
  double max_belief = 0.0;
  double max_error = 0.0;
  for (std::int64_t s = 0; s < state.graph.num_nodes(); ++s) {
    for (std::int64_t i = 0; i < k; ++i) {
      double incoming = 0.0;
      for (std::int64_t e = row_ptr[s]; e < row_ptr[s + 1]; ++e) {
        incoming += state.messages[reverse[e] * k + i] - 1.0;
      }
      const double predicted =
          state.explicit_residuals.At(s, i) +
          incoming / static_cast<double>(k);
      const double actual = state.belief_residuals.At(s, i);
      max_belief = std::max(max_belief, std::abs(actual));
      max_error = std::max(max_error, std::abs(actual - predicted));
    }
  }
  ASSERT_GT(max_belief, 0.0);
  EXPECT_LT(max_error, 0.05 * max_belief);
}

}  // namespace
}  // namespace linbp
