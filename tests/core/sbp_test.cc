#include "src/core/sbp.h"

#include <set>
#include <utility>

#include "gtest/gtest.h"
#include "src/core/coupling.h"
#include "src/core/labeling.h"
#include "src/core/linbp.h"
#include "src/graph/beliefs.h"
#include "src/graph/generators.h"
#include "src/la/kron_ops.h"
#include "tests/testing/test_util.h"

namespace linbp {
namespace {

using testing::ExpectMatrixNear;
using testing::ExpectVectorNear;

TEST(GeodesicNumbersTest, PathFromOneEnd) {
  const Graph g = PathGraph(4);
  EXPECT_EQ(GeodesicNumbers(g, {0}),
            (std::vector<std::int64_t>{0, 1, 2, 3}));
}

TEST(GeodesicNumbersTest, MultipleSourcesTakeMinimum) {
  const Graph g = PathGraph(5);
  EXPECT_EQ(GeodesicNumbers(g, {0, 4}),
            (std::vector<std::int64_t>{0, 1, 2, 1, 0}));
}

TEST(GeodesicNumbersTest, UnreachableComponent) {
  const Graph g(4, {{0, 1, 1.0}, {2, 3, 1.0}});
  const auto geodesic = GeodesicNumbers(g, {0});
  EXPECT_EQ(geodesic[1], 1);
  EXPECT_EQ(geodesic[2], kUnreachable);
  EXPECT_EQ(geodesic[3], kUnreachable);
}

TEST(GeodesicNumbersTest, DuplicateSourcesAreFine) {
  const Graph g = PathGraph(3);
  EXPECT_EQ(GeodesicNumbers(g, {0, 0, 0}),
            (std::vector<std::int64_t>{0, 1, 2}));
}

// Example 18: the modified adjacency matrix of the Fig. 5 graph.
TEST(ModifiedAdjacencyTest, MatchesExample18) {
  const Graph g = Figure5ExampleGraph();
  const auto geodesic = GeodesicNumbers(g, {1, 6});  // v2, v7 explicit
  const SparseMatrix a_star = ModifiedAdjacency(g, geodesic);
  // Expected directed edges (0-indexed): from geodesic level g to g+1:
  // v2->v3, v2->v4, v7->v3, v7->v6, v3->v1, v4->v1, v4->v5, v6->v5.
  const std::set<std::pair<std::int64_t, std::int64_t>> expected = {
      {1, 2}, {1, 3}, {6, 2}, {6, 5}, {2, 0}, {3, 0}, {3, 4}, {5, 4}};
  std::set<std::pair<std::int64_t, std::int64_t>> actual;
  for (std::int64_t s = 0; s < a_star.rows(); ++s) {
    for (std::int64_t e = a_star.row_ptr()[s]; e < a_star.row_ptr()[s + 1];
         ++e) {
      actual.emplace(s, a_star.col_idx()[e]);
    }
  }
  EXPECT_EQ(actual, expected);
  // The dropped edge v1-v5 connects two geodesic-2 nodes (Example 18).
  EXPECT_EQ(a_star.At(0, 4), 0.0);
  EXPECT_EQ(a_star.At(4, 0), 0.0);
}

TEST(ModifiedAdjacencyTest, SymmetrizationRecoversAdjacencyOnPath) {
  // On a path labeled at one end every edge crosses geodesic levels, so no
  // edge is dropped and A* + A*^T reassembles the full adjacency matrix.
  const Graph g = PathGraph(7);
  const auto geodesic = GeodesicNumbers(g, {0});
  const SparseMatrix a_star = ModifiedAdjacency(g, geodesic);
  std::vector<Triplet> entries;
  for (std::int64_t s = 0; s < a_star.rows(); ++s) {
    for (std::int64_t e = a_star.row_ptr()[s]; e < a_star.row_ptr()[s + 1];
         ++e) {
      const std::int64_t t = a_star.col_idx()[e];
      const double w = a_star.values()[e];
      entries.push_back({s, t, w});
      entries.push_back({t, s, w});
    }
  }
  const SparseMatrix symmetrized =
      SparseMatrix::FromTriplets(g.num_nodes(), g.num_nodes(), entries);
  testing::ExpectSparseNear(symmetrized, g.adjacency(), 0.0);
}

TEST(ModifiedAdjacencyTest, ResultIsAcyclic) {
  // Lemma 17(1): A* has no directed cycles; every edge increases the
  // geodesic number by exactly 1.
  const Graph g = RandomConnectedGraph(30, 25, /*seed=*/3);
  const auto geodesic = GeodesicNumbers(g, {0, 5, 9});
  const SparseMatrix a_star = ModifiedAdjacency(g, geodesic);
  for (std::int64_t s = 0; s < a_star.rows(); ++s) {
    for (std::int64_t e = a_star.row_ptr()[s]; e < a_star.row_ptr()[s + 1];
         ++e) {
      EXPECT_EQ(geodesic[a_star.col_idx()[e]], geodesic[s] + 1);
    }
  }
}

// Example 16: bhat'_v1 = zeta(Hhat_o^2 (2 ehat_v2 + ehat_v7)).
TEST(SbpTest, Example16StandardizedBeliefs) {
  const Graph g = Figure5ExampleGraph();
  const DenseMatrix hhat = AuctionCoupling().residual();
  DenseMatrix e(7, 3);
  const std::vector<double> ev2 = {0.10, -0.02, -0.08};
  const std::vector<double> ev7 = {-0.03, 0.09, -0.06};
  for (int c = 0; c < 3; ++c) {
    e.At(1, c) = ev2[c];
    e.At(6, c) = ev7[c];
  }
  const SbpResult result = RunSbp(g, hhat, e, {1, 6});
  // Expected: Hhat^2 applied to (2 ev2 + ev7). (Hhat is symmetric, so the
  // row-vector convention matches the matrix-vector product.)
  std::vector<double> combined(3);
  for (int c = 0; c < 3; ++c) combined[c] = 2.0 * ev2[c] + ev7[c];
  const std::vector<double> expected =
      hhat.Multiply(hhat).MultiplyVector(combined);
  ExpectVectorNear(Standardize(BeliefRow(result.beliefs, 0)),
                   Standardize(expected), 1e-10);
}

// Example 20: bhat'_v4 = zeta(Hhat_o^3 (ehat_v1 + ehat_v3))
//                      ~ [-0.069, 1.258, -1.189].
TEST(SbpTest, Example20StandardizedBeliefs) {
  const Graph g = TorusExampleGraph();
  const DenseMatrix hhat = AuctionCoupling().residual();
  DenseMatrix e(8, 3);
  const double seeds[3][3] = {{2, -1, -1}, {-1, 2, -1}, {-1, -1, 2}};
  for (int v = 0; v < 3; ++v) {
    for (int c = 0; c < 3; ++c) e.At(v, c) = seeds[v][c];
  }
  const SbpResult result = RunSbp(g, hhat, e, {0, 1, 2});
  EXPECT_EQ(result.geodesic[3], 3);
  const std::vector<double> standardized =
      Standardize(BeliefRow(result.beliefs, 3));
  EXPECT_NEAR(standardized[0], -0.069, 1e-3);
  EXPECT_NEAR(standardized[1], 1.258, 1e-3);
  EXPECT_NEAR(standardized[2], -1.189, 1e-3);
}

// sigma(bhat_v4) = eps^3 * 0.332 for Hhat = eps * Hhat_o (Example 20).
TEST(SbpTest, Example20SigmaScalesCubically) {
  const Graph g = TorusExampleGraph();
  DenseMatrix e(8, 3);
  const double seeds[3][3] = {{2, -1, -1}, {-1, 2, -1}, {-1, -1, 2}};
  for (int v = 0; v < 3; ++v) {
    for (int c = 0; c < 3; ++c) e.At(v, c) = seeds[v][c];
  }
  for (const double eps : {0.1, 0.01}) {
    const DenseMatrix hhat = AuctionCoupling().ScaledResidual(eps);
    const SbpResult result = RunSbp(g, hhat, e, {0, 1, 2});
    EXPECT_NEAR(StandardDeviation(BeliefRow(result.beliefs, 3)),
                eps * eps * eps * 0.3323, eps * eps * eps * 1e-3);
  }
}

TEST(SbpTest, StandardizedBeliefsIndependentOfScale) {
  const Graph g = RandomConnectedGraph(20, 15, /*seed=*/5);
  const SeededBeliefs seeded = SeedPaperBeliefs(20, 3, 4, /*seed=*/6);
  const SbpResult a = RunSbp(g, AuctionCoupling().ScaledResidual(1.0),
                             seeded.residuals, seeded.explicit_nodes);
  const SbpResult b = RunSbp(g, AuctionCoupling().ScaledResidual(0.013),
                             seeded.residuals, seeded.explicit_nodes);
  ExpectMatrixNear(StandardizeRows(a.beliefs), StandardizeRows(b.beliefs),
                   1e-9);
}

TEST(SbpTest, UnreachableNodesGetZeroBeliefs) {
  const Graph g(4, {{0, 1, 1.0}, {2, 3, 1.0}});
  DenseMatrix e(4, 2);
  e.At(0, 0) = 0.1;
  e.At(0, 1) = -0.1;
  const SbpResult result =
      RunSbp(g, HomophilyCoupling2().ScaledResidual(0.5), e, {0});
  EXPECT_EQ(result.geodesic[2], kUnreachable);
  EXPECT_EQ(result.beliefs.At(2, 0), 0.0);
  EXPECT_EQ(result.beliefs.At(3, 1), 0.0);
}

TEST(SbpTest, WeightedPathMultipliesWeights) {
  // Def. 15: a path's weight is the product of its edge weights.
  const Graph g(3, {{0, 1, 2.0}, {1, 2, 3.0}});
  const DenseMatrix hhat = HomophilyCoupling2().ScaledResidual(0.5);
  DenseMatrix e(3, 2);
  e.At(0, 0) = 0.1;
  e.At(0, 1) = -0.1;
  const SbpResult result = RunSbp(g, hhat, e, {0});
  const std::vector<double> expected = hhat.Multiply(hhat).MultiplyVector(
      {0.1 * 6.0, -0.1 * 6.0});  // weight 2 * 3 = 6
  ExpectVectorNear(BeliefRow(result.beliefs, 2), expected, 1e-13);
}

// Lemma 17(2): SBP over A equals LinBP (without echo) over A*^T.
class SbpLemma17Test : public ::testing::TestWithParam<int> {};

TEST_P(SbpLemma17Test, SbpEqualsLinBpOnModifiedAdjacency) {
  const std::uint64_t seed = GetParam();
  const Graph g = RandomConnectedGraph(25, 20, seed);
  const DenseMatrix hhat = testing::RandomResidualCoupling(3, 0.2, seed + 1);
  const SeededBeliefs seeded = SeedPaperBeliefs(25, 3, 5, seed + 2);

  const SbpResult sbp =
      RunSbp(g, hhat, seeded.residuals, seeded.explicit_nodes);

  // LinBP* over A*^T: iterate B <- E + A*^T B Hhat. The DAG guarantees
  // convergence after max_geodesic iterations.
  const SparseMatrix a_star_t =
      ModifiedAdjacency(g, sbp.geodesic).Transpose();
  DenseMatrix b = seeded.residuals;
  const DenseMatrix hhat2 = hhat.Multiply(hhat);
  const std::vector<double> no_degrees(g.num_nodes(), 0.0);
  for (std::int64_t it = 0; it <= sbp.max_geodesic + 1; ++it) {
    b = seeded.residuals.Add(LinBpPropagate(
        a_star_t, no_degrees, hhat, hhat2, b, /*with_echo=*/false));
  }
  ExpectMatrixNear(sbp.beliefs, b, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SbpLemma17Test, ::testing::Range(0, 6));

// Theorem 19: standardized LinBP converges to standardized SBP as
// eps_H -> 0+ (and thus their top-belief assignments coincide).
class SbpTheorem19Test : public ::testing::TestWithParam<int> {};

TEST_P(SbpTheorem19Test, LinBpApproachesSbpForSmallEps) {
  const std::uint64_t seed = GetParam();
  const Graph g = RandomConnectedGraph(20, 14, seed + 50);
  const CouplingMatrix coupling = AuctionCoupling();
  const SeededBeliefs seeded =
      SeedPaperBeliefs(20, 3, 4, seed + 51, /*extra_digits=*/3);

  const double eps = 1e-4;
  const SbpResult sbp = RunSbp(g, coupling.ScaledResidual(eps),
                               seeded.residuals, seeded.explicit_nodes);
  LinBpOptions options;
  options.max_iterations = 500;
  options.tolerance = 1e-16;
  const LinBpResult lin =
      RunLinBp(g, coupling.ScaledResidual(eps), seeded.residuals, options);
  ASSERT_TRUE(lin.converged);

  // Compare standardized rows only where SBP reached the node.
  std::int64_t compared = 0;
  const DenseMatrix lin_std = StandardizeRows(lin.beliefs);
  const DenseMatrix sbp_std = StandardizeRows(sbp.beliefs);
  for (std::int64_t v = 0; v < g.num_nodes(); ++v) {
    if (sbp.geodesic[v] == kUnreachable) continue;
    ++compared;
    for (std::int64_t c = 0; c < 3; ++c) {
      EXPECT_NEAR(lin_std.At(v, c), sbp_std.At(v, c), 5e-2)
          << "node " << v << " class " << c;
    }
  }
  EXPECT_EQ(compared, g.num_nodes());

  // Top-belief assignments agree except for numerical ties.
  const QualityMetrics metrics =
      CompareAssignments(TopBeliefs(sbp.beliefs), TopBeliefs(lin.beliefs));
  EXPECT_GT(metrics.f1, 0.95);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SbpTheorem19Test, ::testing::Range(0, 6));

}  // namespace
}  // namespace linbp
