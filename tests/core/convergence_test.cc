#include "src/core/convergence.h"

#include <cmath>

#include "gtest/gtest.h"
#include "src/core/coupling.h"
#include "src/graph/beliefs.h"
#include "src/graph/generators.h"
#include "tests/testing/test_util.h"

namespace linbp {
namespace {

TEST(ConvergenceTest, AdjacencySpectralRadiusOfCycle) {
  EXPECT_NEAR(AdjacencySpectralRadius(CycleGraph(8)), 2.0, 1e-7);
}

TEST(ConvergenceTest, AdjacencySpectralRadiusOfPath2) {
  EXPECT_NEAR(AdjacencySpectralRadius(PathGraph(2)), 1.0, 1e-7);
}

TEST(ConvergenceTest, WeightedAdjacencyRadiusScales) {
  const Graph unit(2, {{0, 1, 1.0}});
  const Graph heavy(2, {{0, 1, 3.0}});
  EXPECT_NEAR(AdjacencySpectralRadius(heavy),
              3.0 * AdjacencySpectralRadius(unit), 1e-6);
}

// Example 20's full set of convergence constants on the torus graph.
TEST(ConvergenceTest, Example20Constants) {
  const Graph g = TorusExampleGraph();
  const CouplingMatrix coupling = AuctionCoupling();
  const ConvergenceReport report = AnalyzeConvergence(g, coupling);
  EXPECT_NEAR(report.adjacency_spectral_radius, 1.0 + std::sqrt(2.0),
              1e-6);                                              // ~2.414
  EXPECT_NEAR(report.coupling_spectral_radius, 0.6292, 1e-3);     // ~0.629
  EXPECT_NEAR(report.exact_epsilon_linbp, 0.4877, 2e-3);          // ~0.488
  EXPECT_NEAR(report.exact_epsilon_linbp_star, 0.6583, 2e-3);     // ~0.658
  EXPECT_NEAR(report.sufficient_epsilon_linbp, 0.3598, 2e-3);     // ~0.360
  EXPECT_NEAR(report.sufficient_epsilon_linbp_star, 0.4545, 2e-3);// ~0.455
}

TEST(ConvergenceTest, LinBpStarThresholdIsClosedForm) {
  const Graph g = RandomConnectedGraph(20, 15, /*seed=*/1);
  const CouplingMatrix coupling = AuctionCoupling();
  const double threshold =
      ExactEpsilonThreshold(g, coupling, LinBpVariant::kLinBpStar);
  const double expected =
      1.0 / (CouplingSpectralRadius(coupling.residual()) *
             AdjacencySpectralRadius(g));
  EXPECT_NEAR(threshold, expected, 1e-9);
}

TEST(ConvergenceTest, LinBpConvergesPredicate) {
  const Graph g = TorusExampleGraph();
  const CouplingMatrix coupling = AuctionCoupling();
  EXPECT_TRUE(
      LinBpConverges(g, coupling.ScaledResidual(0.4), LinBpVariant::kLinBp));
  EXPECT_FALSE(
      LinBpConverges(g, coupling.ScaledResidual(0.6), LinBpVariant::kLinBp));
  EXPECT_TRUE(LinBpConverges(g, coupling.ScaledResidual(0.6),
                             LinBpVariant::kLinBpStar));
  EXPECT_FALSE(LinBpConverges(g, coupling.ScaledResidual(0.7),
                              LinBpVariant::kLinBpStar));
}

// Lemma 8 is exact: the iterative updates converge strictly below the
// threshold and diverge strictly above it.
class ExactThresholdTest : public ::testing::TestWithParam<int> {};

TEST_P(ExactThresholdTest, ThresholdSeparatesConvergenceFromDivergence) {
  const std::uint64_t seed = GetParam();
  const Graph g = RandomConnectedGraph(12, 10, seed);
  const DenseMatrix residual = testing::RandomResidualCoupling(3, 1.0, seed);
  const CouplingMatrix coupling = CouplingMatrix::FromResidual(residual);
  const SeededBeliefs seeded = SeedPaperBeliefs(12, 3, 4, seed + 5);

  for (const LinBpVariant variant :
       {LinBpVariant::kLinBp, LinBpVariant::kLinBpStar}) {
    const double threshold = ExactEpsilonThreshold(g, coupling, variant);
    LinBpOptions options;
    options.variant = variant;
    options.max_iterations = 3000;
    options.tolerance = 1e-11;
    const LinBpResult below =
        RunLinBp(g, coupling.ScaledResidual(0.9 * threshold),
                 seeded.residuals, options);
    EXPECT_FALSE(below.diverged);
    EXPECT_TRUE(below.converged);
    const LinBpResult above =
        RunLinBp(g, coupling.ScaledResidual(1.1 * threshold),
                 seeded.residuals, options);
    EXPECT_TRUE(above.diverged || !above.converged);
  }
}

TEST_P(ExactThresholdTest, SufficientBoundsAreConservative) {
  const std::uint64_t seed = GetParam();
  const Graph g = RandomConnectedGraph(15, 12, seed + 100);
  const CouplingMatrix coupling = CouplingMatrix::FromResidual(
      testing::RandomResidualCoupling(3, 1.0, seed + 100));
  for (const LinBpVariant variant :
       {LinBpVariant::kLinBp, LinBpVariant::kLinBpStar}) {
    const double exact = ExactEpsilonThreshold(g, coupling, variant);
    const double sufficient = SufficientEpsilonBound(g, coupling, variant);
    EXPECT_LE(sufficient, exact * (1.0 + 1e-6));
    EXPECT_GT(sufficient, 0.0);
  }
  // Lemma 23 is also conservative (w.r.t. the LinBP exact threshold).
  const double simple = SimpleEpsilonBound(g, coupling);
  EXPECT_LE(simple,
            ExactEpsilonThreshold(g, coupling, LinBpVariant::kLinBp) *
                (1.0 + 1e-6));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactThresholdTest, ::testing::Range(0, 5));

TEST(ConvergenceTest, WeightedGraphThresholdAccountsForWeights) {
  // Heavier edges shrink the convergence region.
  const CouplingMatrix coupling = AuctionCoupling();
  const Graph light = RandomWeightedConnectedGraph(10, 6, 1.0, 1.0, 7);
  const Graph heavy = RandomWeightedConnectedGraph(10, 6, 2.0, 2.0, 7);
  EXPECT_GT(ExactEpsilonThreshold(light, coupling, LinBpVariant::kLinBpStar),
            ExactEpsilonThreshold(heavy, coupling, LinBpVariant::kLinBpStar));
}

}  // namespace
}  // namespace linbp
