#include "src/core/linbp_incremental.h"

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/coupling.h"
#include "src/graph/beliefs.h"
#include "src/graph/generators.h"
#include "tests/testing/test_util.h"

namespace linbp {
namespace {

using testing::ExpectMatrixNear;

LinBpOptions TightOptions(LinBpVariant variant = LinBpVariant::kLinBp) {
  LinBpOptions options;
  options.variant = variant;
  options.max_iterations = 1000;
  options.tolerance = 1e-13;
  return options;
}

TEST(LinBpStateTest, ColdStartMatchesRunLinBp) {
  const Graph g = RandomConnectedGraph(20, 15, /*seed=*/1);
  const DenseMatrix hhat = AuctionCoupling().ScaledResidual(0.05);
  const SeededBeliefs seeded = SeedPaperBeliefs(20, 3, 5, /*seed=*/2);
  const LinBpState state(g, hhat, seeded.residuals, TightOptions());
  ASSERT_TRUE(state.converged());
  const LinBpResult reference =
      RunLinBp(g, hhat, seeded.residuals, TightOptions());
  ExpectMatrixNear(state.beliefs(), reference.beliefs, 1e-11);
}

TEST(LinBpStateTest, BeliefUpdateMatchesColdSolve) {
  const Graph g = RandomConnectedGraph(25, 20, /*seed=*/3);
  const DenseMatrix hhat = AuctionCoupling().ScaledResidual(0.05);
  SeededBeliefs seeded = SeedPaperBeliefs(25, 3, 6, /*seed=*/4);
  LinBpState state(g, hhat, seeded.residuals, TightOptions());

  // Flip one node's explicit beliefs.
  DenseMatrix row(1, 3);
  row.At(0, 0) = -0.08;
  row.At(0, 1) = 0.05;
  row.At(0, 2) = 0.03;
  const std::int64_t node = seeded.explicit_nodes[0];
  state.UpdateExplicitBeliefs({node}, row);
  ASSERT_TRUE(state.converged());

  for (int c = 0; c < 3; ++c) seeded.residuals.At(node, c) = row.At(0, c);
  const LinBpResult reference =
      RunLinBp(g, hhat, seeded.residuals, TightOptions());
  ExpectMatrixNear(state.beliefs(), reference.beliefs, 1e-10);
}

TEST(LinBpStateTest, F32StateColdAndWarmSolvesTrackF64) {
  // A warm state in f32 belief storage: the cold solve and a warm
  // re-solve after a belief update both stay within float resolution of
  // the f64 state, and the stored beliefs are exactly representable as
  // float (the loop computed them in f32 and widened on exit).
  const Graph g = RandomConnectedGraph(25, 20, /*seed=*/3);
  const DenseMatrix hhat = AuctionCoupling().ScaledResidual(0.05);
  SeededBeliefs seeded = SeedPaperBeliefs(25, 3, 6, /*seed=*/4);
  LinBpOptions f32_options = TightOptions();
  f32_options.tolerance = 1e-7;  // reachable by a float-stored iterate
  f32_options.precision = Precision::kF32;
  LinBpOptions f64_options = TightOptions();
  f64_options.tolerance = 1e-7;
  LinBpState f32_state(g, hhat, seeded.residuals, f32_options);
  LinBpState f64_state(g, hhat, seeded.residuals, f64_options);
  ASSERT_TRUE(f32_state.converged());
  ASSERT_TRUE(f64_state.converged());
  ExpectMatrixNear(f32_state.beliefs(), f64_state.beliefs(), 1e-5);

  DenseMatrix row(1, 3);
  row.At(0, 0) = -0.08;
  row.At(0, 1) = 0.05;
  row.At(0, 2) = 0.03;
  const std::int64_t node = seeded.explicit_nodes[0];
  ASSERT_GE(f32_state.UpdateExplicitBeliefs({node}, row), 0);
  ASSERT_GE(f64_state.UpdateExplicitBeliefs({node}, row), 0);
  ASSERT_TRUE(f32_state.converged());
  ExpectMatrixNear(f32_state.beliefs(), f64_state.beliefs(), 1e-5);
  for (std::int64_t v = 0; v < f32_state.beliefs().rows(); ++v) {
    for (std::int64_t c = 0; c < f32_state.beliefs().cols(); ++c) {
      const double b = f32_state.beliefs().At(v, c);
      EXPECT_EQ(b, static_cast<double>(static_cast<float>(b)));
    }
  }
}

TEST(LinBpStateTest, WarmStartUsesFewerSweepsForSmallChanges) {
  const Graph g = RandomConnectedGraph(200, 300, /*seed=*/5);
  const DenseMatrix hhat = AuctionCoupling().ScaledResidual(0.03);
  const SeededBeliefs seeded = SeedPaperBeliefs(200, 3, 20, /*seed=*/6);
  LinBpState state(g, hhat, seeded.residuals, TightOptions());
  const int cold = state.cold_start_iterations();

  // A tiny nudge to one explicit belief re-converges much faster.
  DenseMatrix row(1, 3);
  const std::int64_t node = seeded.explicit_nodes[0];
  for (int c = 0; c < 3; ++c) {
    row.At(0, c) = seeded.residuals.At(node, c) * 1.01;
  }
  const int warm = state.UpdateExplicitBeliefs({node}, row);
  ASSERT_TRUE(state.converged());
  EXPECT_LT(warm, cold);
}

TEST(LinBpStateTest, EdgeUpdateMatchesColdSolve) {
  const Graph g = RandomConnectedGraph(25, 15, /*seed=*/7);
  const DenseMatrix hhat = AuctionCoupling().ScaledResidual(0.04);
  const SeededBeliefs seeded = SeedPaperBeliefs(25, 3, 5, /*seed=*/8);
  LinBpState state(g, hhat, seeded.residuals, TightOptions());

  // Add an edge not present yet.
  std::int64_t u = 0;
  std::int64_t v = 0;
  for (u = 0; u < 25 && v == 0; ++u) {
    for (std::int64_t w = u + 1; w < 25; ++w) {
      if (g.adjacency().At(u, w) == 0.0) {
        v = w;
        break;
      }
    }
    if (v != 0) break;
  }
  ASSERT_NE(v, 0);
  state.AddEdges({{u, v, 1.0}});
  ASSERT_TRUE(state.converged());

  std::vector<Edge> edges = g.edges();
  edges.push_back({u, v, 1.0});
  const LinBpResult reference = RunLinBp(Graph(25, edges), hhat,
                                         seeded.residuals, TightOptions());
  ExpectMatrixNear(state.beliefs(), reference.beliefs, 1e-10);
}

TEST(LinBpStateTest, AddEdgesRejectsInvalidBatchesWithoutAborting) {
  const Graph g = PathGraph(4);  // edges 0-1, 1-2, 2-3
  const DenseMatrix hhat = AuctionCoupling().ScaledResidual(0.05);
  const SeededBeliefs seeded = SeedPaperBeliefs(4, 3, 2, /*seed=*/3);
  LinBpState state(g, hhat, seeded.residuals, TightOptions());
  ASSERT_TRUE(state.converged());
  const DenseMatrix before = state.beliefs();

  // Every invalid batch reports an error and leaves the state untouched
  // (beliefs AND graph) — the PR 3 "errors, never crashes" convention.
  struct Case {
    std::vector<Edge> batch;
    const char* expect;
  };
  const std::vector<Case> cases = {
      {{{0, 1, 1.0}}, "already exists"},
      {{{0, 2, 1.0}, {2, 0, 1.0}}, "duplicate edge"},
      {{{0, 4, 1.0}}, "outside"},
      {{{-1, 2, 1.0}}, "outside"},
      {{{2, 2, 1.0}}, "self-loop"},
      {{{0, 2, std::nan("")}}, "non-finite"},
      // A valid edge does not rescue a batch with an invalid one.
      {{{0, 2, 1.0}, {1, 3, 1.0}, {1, 3, 2.0}}, "duplicate edge"},
  };
  for (const Case& c : cases) {
    std::string error;
    EXPECT_EQ(state.AddEdges(c.batch, &error), -1);
    EXPECT_NE(error.find(c.expect), std::string::npos) << error;
    EXPECT_EQ(state.graph().num_undirected_edges(),
              g.num_undirected_edges());
    ExpectMatrixNear(state.beliefs(), before, 0.0);
  }
  // The null-error overload still refuses without crashing.
  EXPECT_EQ(state.AddEdges({{0, 1, 1.0}}), -1);

  // After all the rejections, a valid batch still applies cleanly.
  std::string error;
  EXPECT_GT(state.AddEdges({{0, 2, 1.0}}, &error), 0) << error;
  ASSERT_TRUE(state.converged());
  std::vector<Edge> edges = g.edges();
  edges.push_back({0, 2, 1.0});
  const LinBpResult reference = RunLinBp(Graph(4, edges), hhat,
                                         seeded.residuals, TightOptions());
  ExpectMatrixNear(state.beliefs(), reference.beliefs, 1e-10);
}

TEST(LinBpStateTest, RemoveEdgesMatchesColdSolve) {
  const Graph g = RandomConnectedGraph(25, 20, /*seed=*/11);
  const DenseMatrix hhat = AuctionCoupling().ScaledResidual(0.04);
  const SeededBeliefs seeded = SeedPaperBeliefs(25, 3, 5, /*seed=*/12);
  LinBpState state(g, hhat, seeded.residuals, TightOptions());

  // Drop two edges in one batch (endpoint order flipped on the second:
  // removal is by undirected pair, not by stored orientation).
  std::vector<Edge> edges = g.edges();
  const Edge first = edges[0];
  const Edge second = edges[edges.size() / 2];
  EXPECT_GT(state.RemoveEdges({{first.u, first.v, 1.0},
                               {second.v, second.u, 1.0}}),
            0);
  ASSERT_TRUE(state.converged());
  EXPECT_EQ(state.graph().num_undirected_edges(),
            g.num_undirected_edges() - 2);

  edges.erase(edges.begin() + static_cast<std::ptrdiff_t>(edges.size() / 2));
  edges.erase(edges.begin());
  const LinBpResult reference = RunLinBp(Graph(25, edges), hhat,
                                         seeded.residuals, TightOptions());
  ExpectMatrixNear(state.beliefs(), reference.beliefs, 1e-10);
}

TEST(LinBpStateTest, UpdateEdgeWeightsMatchesColdSolve) {
  const Graph g = RandomConnectedGraph(25, 20, /*seed=*/13);
  const DenseMatrix hhat = AuctionCoupling().ScaledResidual(0.04);
  const SeededBeliefs seeded = SeedPaperBeliefs(25, 3, 5, /*seed=*/14);
  LinBpState state(g, hhat, seeded.residuals, TightOptions());

  std::vector<Edge> edges = g.edges();
  const std::size_t a = 0;
  const std::size_t b = edges.size() / 2;
  EXPECT_GT(state.UpdateEdgeWeights({{edges[a].u, edges[a].v, 2.0},
                                     {edges[b].v, edges[b].u, 0.25}}),
            0);
  ASSERT_TRUE(state.converged());
  // Reweighting never changes the edge count.
  EXPECT_EQ(state.graph().num_undirected_edges(), g.num_undirected_edges());

  edges[a].weight = 2.0;
  edges[b].weight = 0.25;
  const LinBpResult reference = RunLinBp(Graph(25, edges), hhat,
                                         seeded.residuals, TightOptions());
  ExpectMatrixNear(state.beliefs(), reference.beliefs, 1e-10);
}

TEST(LinBpStateTest, RemoveAndReweightRejectInvalidBatchesWithoutAborting) {
  const Graph g = PathGraph(4);  // edges 0-1, 1-2, 2-3
  const DenseMatrix hhat = AuctionCoupling().ScaledResidual(0.05);
  const SeededBeliefs seeded = SeedPaperBeliefs(4, 3, 2, /*seed=*/5);
  LinBpState state(g, hhat, seeded.residuals, TightOptions());
  ASSERT_TRUE(state.converged());
  const DenseMatrix before = state.beliefs();

  struct Case {
    std::vector<Edge> batch;
    const char* expect;
  };
  // Shared failure modes: absent edge, out-of-range endpoint, self-loop,
  // duplicate pair in the batch (orientation-insensitive), and a valid
  // edge failing to rescue an invalid batch.
  const std::vector<Case> shared_cases = {
      {{{0, 2, 1.0}}, "does not exist"},
      {{{0, 4, 1.0}}, "outside"},
      {{{-1, 2, 1.0}}, "outside"},
      {{{2, 2, 1.0}}, "self-loop"},
      {{{0, 1, 1.0}, {1, 0, 2.0}}, "duplicate edge"},
      {{{0, 1, 1.0}, {1, 3, 1.0}}, "does not exist"},
  };
  for (const Case& c : shared_cases) {
    std::string error;
    EXPECT_EQ(state.RemoveEdges(c.batch, &error), -1);
    EXPECT_NE(error.find(c.expect), std::string::npos) << error;
    error.clear();
    EXPECT_EQ(state.UpdateEdgeWeights(c.batch, &error), -1);
    EXPECT_NE(error.find(c.expect), std::string::npos) << error;
    EXPECT_EQ(state.graph().num_undirected_edges(),
              g.num_undirected_edges());
    ExpectMatrixNear(state.beliefs(), before, 0.0);
  }
  // Reweighting validates the new weight; removal ignores it (an edge is
  // named by its endpoints).
  std::string error;
  EXPECT_EQ(state.UpdateEdgeWeights({{0, 1, std::nan("")}}, &error), -1);
  EXPECT_NE(error.find("non-finite"), std::string::npos) << error;
  ExpectMatrixNear(state.beliefs(), before, 0.0);
  EXPECT_GT(state.RemoveEdges({{0, 1, std::nan("")}}, &error), 0) << error;
  EXPECT_EQ(state.graph().num_undirected_edges(),
            g.num_undirected_edges() - 1);
}

TEST(LinBpStateTest, UpdateExplicitBeliefsRejectsInvalidBatches) {
  const Graph g = PathGraph(4);
  const DenseMatrix hhat = AuctionCoupling().ScaledResidual(0.05);
  const SeededBeliefs seeded = SeedPaperBeliefs(4, 3, 2, /*seed=*/7);
  LinBpState state(g, hhat, seeded.residuals, TightOptions());
  ASSERT_TRUE(state.converged());
  const DenseMatrix before = state.beliefs();

  DenseMatrix row(1, 3);
  row.At(0, 0) = 0.05;
  row.At(0, 1) = -0.05;
  struct Case {
    std::vector<std::int64_t> nodes;
    DenseMatrix residuals;
    const char* expect;
  };
  DenseMatrix bad_row = row;
  bad_row.At(0, 2) = std::nan("");
  const std::vector<Case> cases = {
      {{4}, row, "outside"},
      {{-1}, row, "outside"},
      {{0, 1}, row, "rows"},          // 2 nodes, 1 residual row
      {{0}, DenseMatrix(1, 2), "coupling has 3"},
      {{0}, bad_row, "non-finite"},
  };
  for (const Case& c : cases) {
    std::string error;
    EXPECT_EQ(state.UpdateExplicitBeliefs(c.nodes, c.residuals, &error), -1);
    EXPECT_NE(error.find(c.expect), std::string::npos) << error;
    ExpectMatrixNear(state.beliefs(), before, 0.0);
  }
  // The null-error overload refuses without crashing, then a valid
  // update still applies.
  EXPECT_EQ(state.UpdateExplicitBeliefs({4}, row), -1);
  EXPECT_GT(state.UpdateExplicitBeliefs({0}, row), 0);
  ASSERT_TRUE(state.converged());
}

TEST(LinBpStateTest, DivergentEdgeUpdateRollsBackGraphAndBeliefs) {
  const Graph g = RandomConnectedGraph(25, 20, /*seed=*/17);
  const DenseMatrix hhat = AuctionCoupling().ScaledResidual(0.04);
  const SeededBeliefs seeded = SeedPaperBeliefs(25, 3, 5, /*seed=*/18);
  LinBpState state(g, hhat, seeded.residuals, TightOptions());
  ASSERT_TRUE(state.converged());
  const DenseMatrix before = state.beliefs();

  // Reweighting every edge by 50x scales rho(M) well past 1, so the
  // warm re-solve diverges. The early abort turns that into a failed
  // solve, and the all-or-nothing contract rolls the mutation back.
  std::vector<Edge> heavy = g.edges();
  for (Edge& e : heavy) e.weight = 50.0;
  std::string error;
  EXPECT_EQ(state.UpdateEdgeWeights(heavy, &error), -1);
  EXPECT_NE(error.find("diverging"), std::string::npos) << error;
  EXPECT_NE(error.find("rho_hat="), std::string::npos) << error;
  EXPECT_FALSE(state.converged());
  for (const Edge& e : state.graph().edges()) {
    EXPECT_EQ(e.weight, 1.0);
  }
  ExpectMatrixNear(state.beliefs(), before, 0.0);
  // The abort's diagnostics survive on the state for inspection.
  EXPECT_GT(state.diagnostics().empirical_contraction, 1.0);
  EXPECT_GT(state.diagnostics().spectral_radius_estimate, 1.0);

  // A sane reweight on the rolled-back state still applies cleanly.
  Edge mild = g.edges()[0];
  mild.weight = 1.5;
  EXPECT_GT(state.UpdateEdgeWeights({mild}, &error), 0) << error;
  ASSERT_TRUE(state.converged());
}

TEST(LinBpStateTest, DivergentAddEdgesRollsBackGraph) {
  const Graph g = RandomConnectedGraph(25, 20, /*seed=*/19);
  const DenseMatrix hhat = AuctionCoupling().ScaledResidual(0.04);
  const SeededBeliefs seeded = SeedPaperBeliefs(25, 3, 5, /*seed=*/20);
  LinBpState state(g, hhat, seeded.residuals, TightOptions());
  ASSERT_TRUE(state.converged());
  const DenseMatrix before = state.beliefs();

  // Adding every missing edge at weight 50 pushes rho(M) far above 1.
  std::vector<Edge> dense_batch;
  for (std::int64_t u = 0; u < 25; ++u) {
    for (std::int64_t v = u + 1; v < 25; ++v) {
      if (g.adjacency().At(u, v) == 0.0) dense_batch.push_back({u, v, 50.0});
    }
  }
  std::string error;
  EXPECT_EQ(state.AddEdges(dense_batch, &error), -1);
  EXPECT_NE(error.find("diverging"), std::string::npos) << error;
  EXPECT_EQ(state.graph().num_undirected_edges(), g.num_undirected_edges());
  ExpectMatrixNear(state.beliefs(), before, 0.0);
}

TEST(LinBpStateTest, StarVariantSupported) {
  const Graph g = RandomConnectedGraph(15, 10, /*seed=*/9);
  const DenseMatrix hhat = AuctionCoupling().ScaledResidual(0.05);
  const SeededBeliefs seeded = SeedPaperBeliefs(15, 3, 4, /*seed=*/10);
  LinBpState state(g, hhat, seeded.residuals,
                   TightOptions(LinBpVariant::kLinBpStar));
  ASSERT_TRUE(state.converged());
  const LinBpResult reference =
      RunLinBp(g, hhat, seeded.residuals,
               TightOptions(LinBpVariant::kLinBpStar));
  ExpectMatrixNear(state.beliefs(), reference.beliefs, 1e-11);
}

TEST(LinBpStateDeathTest, ExactVariantRejected) {
  const Graph g = PathGraph(3);
  EXPECT_DEATH(LinBpState(g, AuctionCoupling().ScaledResidual(0.05),
                          DenseMatrix(3, 3),
                          TightOptions(LinBpVariant::kLinBpExact)),
               "kLinBp");
}

class LinBpIncrementalRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(LinBpIncrementalRandomTest, SequencesOfUpdatesStayExact) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed + 31);
  const std::int64_t n = 30;
  const Graph g = RandomConnectedGraph(n, 25, seed);
  const DenseMatrix hhat =
      testing::RandomResidualCoupling(3, 0.03, seed + 1);
  SeededBeliefs seeded = SeedPaperBeliefs(n, 3, 6, seed + 2);
  LinBpState state(g, hhat, seeded.residuals, TightOptions());
  std::vector<Edge> edges = g.edges();

  for (int round = 0; round < 3; ++round) {
    if (round % 2 == 0) {
      // Belief update.
      const std::int64_t node = rng.NextInt(0, n - 1);
      DenseMatrix row(1, 3);
      double sum = 0.0;
      for (int c = 0; c < 2; ++c) {
        row.At(0, c) = 0.1 * (2.0 * rng.NextDouble() - 1.0);
        sum += row.At(0, c);
      }
      row.At(0, 2) = -sum;
      state.UpdateExplicitBeliefs({node}, row);
      for (int c = 0; c < 3; ++c) {
        seeded.residuals.At(node, c) = row.At(0, c);
      }
    } else {
      // Edge update.
      while (true) {
        const std::int64_t u = rng.NextInt(0, n - 1);
        const std::int64_t v = rng.NextInt(0, n - 1);
        if (u == v) continue;
        bool exists = false;
        for (const Edge& e : edges) {
          if ((e.u == u && e.v == v) || (e.u == v && e.v == u)) exists = true;
        }
        if (exists) continue;
        state.AddEdges({{u, v, 1.0}});
        edges.push_back({u, v, 1.0});
        break;
      }
    }
    ASSERT_TRUE(state.converged());
    const LinBpResult reference = RunLinBp(
        Graph(n, edges), hhat, seeded.residuals, TightOptions());
    ExpectMatrixNear(state.beliefs(), reference.beliefs, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinBpIncrementalRandomTest,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace linbp
