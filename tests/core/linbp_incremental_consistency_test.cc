// Fig. 10b consistency: incremental LinBP after edge insertions must match
// a full from-scratch recompute within 1e-9.

#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/coupling.h"
#include "src/core/linbp.h"
#include "src/core/linbp_incremental.h"
#include "src/graph/beliefs.h"
#include "src/graph/generators.h"
#include "src/graph/graph.h"
#include "tests/testing/test_util.h"

namespace linbp {
namespace {

using testing::ExpectMatrixNear;
using testing::RandomFreshEdges;

constexpr double kRecomputeTol = 1e-9;

TEST(LinBpIncrementalConsistencyTest, SingleEdgeInsertionMatchesRecompute) {
  const std::int64_t n = 30;
  const Graph g = RandomConnectedGraph(n, 20, /*seed=*/5);
  const DenseMatrix hhat = AuctionCoupling().ScaledResidual(0.05);
  const SeededBeliefs seeded = SeedPaperBeliefs(n, 3, 6, /*seed=*/6);

  LinBpState state(g, hhat, seeded.residuals);
  ASSERT_TRUE(state.converged());

  Rng rng(99);
  const std::vector<Edge> fresh = RandomFreshEdges(g.edges(), n, rng, 1);
  state.AddEdges(fresh);
  ASSERT_TRUE(state.converged());

  std::vector<Edge> all = g.edges();
  all.insert(all.end(), fresh.begin(), fresh.end());
  const LinBpResult cold = RunLinBp(Graph(n, all), hhat, seeded.residuals);
  ASSERT_TRUE(cold.converged);
  ExpectMatrixNear(state.beliefs(), cold.beliefs, kRecomputeTol);
}

TEST(LinBpIncrementalConsistencyTest, EdgeBatchSequenceMatchesRecompute) {
  const std::int64_t n = 40;
  const Graph start = RandomConnectedGraph(n, 25, /*seed=*/11);
  const DenseMatrix hhat =
      testing::RandomResidualCoupling(3, 0.03, /*seed=*/12);
  const SeededBeliefs seeded = SeedPaperBeliefs(n, 3, 8, /*seed=*/13);

  LinBpState state(start, hhat, seeded.residuals);
  ASSERT_TRUE(state.converged());
  std::vector<Edge> all = start.edges();

  for (int round = 0; round < 4; ++round) {
    Rng edge_rng(1000 + round);
    const std::vector<Edge> batch = RandomFreshEdges(all, n, edge_rng, 3);
    state.AddEdges(batch);
    ASSERT_TRUE(state.converged());
    all.insert(all.end(), batch.begin(), batch.end());

    const LinBpResult cold = RunLinBp(Graph(n, all), hhat, seeded.residuals);
    ASSERT_TRUE(cold.converged);
    ExpectMatrixNear(state.beliefs(), cold.beliefs, kRecomputeTol);
  }
}

TEST(LinBpIncrementalConsistencyTest, WarmStartUsesFewerSweepsThanCold) {
  // The point of Fig. 10b: after a localized change, the warm start
  // converges in no more sweeps than the cold start.
  const std::int64_t n = 60;
  const Graph g = RandomConnectedGraph(n, 40, /*seed=*/31);
  const DenseMatrix hhat = AuctionCoupling().ScaledResidual(0.04);
  const SeededBeliefs seeded = SeedPaperBeliefs(n, 3, 10, /*seed=*/32);

  LinBpState state(g, hhat, seeded.residuals);
  ASSERT_TRUE(state.converged());

  Rng rng(77);
  const std::vector<Edge> fresh = RandomFreshEdges(g.edges(), n, rng, 1);
  const int warm_sweeps = state.AddEdges(fresh);
  ASSERT_TRUE(state.converged());
  EXPECT_LE(warm_sweeps, state.cold_start_iterations());
}

TEST(LinBpIncrementalConsistencyTest, ExplicitBeliefUpdateMatchesRecompute) {
  const std::int64_t n = 25;
  const Graph g = RandomConnectedGraph(n, 15, /*seed=*/41);
  const DenseMatrix hhat = AuctionCoupling().ScaledResidual(0.05);
  const SeededBeliefs seeded = SeedPaperBeliefs(n, 3, 5, /*seed=*/42);

  LinBpState state(g, hhat, seeded.residuals);
  ASSERT_TRUE(state.converged());

  // Flip the sign of one labeled node's beliefs.
  const std::int64_t node = seeded.explicit_nodes.front();
  DenseMatrix row(1, 3);
  for (std::int64_t c = 0; c < 3; ++c) {
    row.At(0, c) = -seeded.residuals.At(node, c);
  }
  state.UpdateExplicitBeliefs({node}, row);
  ASSERT_TRUE(state.converged());

  DenseMatrix updated = seeded.residuals;
  for (std::int64_t c = 0; c < 3; ++c) {
    updated.At(node, c) = row.At(0, c);
  }
  const LinBpResult cold = RunLinBp(g, hhat, updated);
  ASSERT_TRUE(cold.converged);
  ExpectMatrixNear(state.beliefs(), cold.beliefs, kRecomputeTol);
}

}  // namespace
}  // namespace linbp
