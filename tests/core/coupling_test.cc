#include "src/core/coupling.h"

#include <cmath>

#include "gtest/gtest.h"
#include "tests/testing/test_util.h"

namespace linbp {
namespace {

using testing::ExpectMatrixNear;

TEST(CouplingMatrixTest, FromStochasticCenters) {
  const CouplingMatrix coupling = HomophilyCoupling2();
  ExpectMatrixNear(coupling.residual(),
                   DenseMatrix{{0.3, -0.3}, {-0.3, 0.3}}, 1e-12);
}

TEST(CouplingMatrixTest, ResidualRowsSumToZero) {
  for (const CouplingMatrix& coupling :
       {HomophilyCoupling2(), HeterophilyCoupling2(), AuctionCoupling(),
        KroneckerExperimentCoupling(), DblpCoupling()}) {
    const DenseMatrix& residual = coupling.residual();
    for (std::int64_t i = 0; i < residual.rows(); ++i) {
      double row_sum = 0.0;
      double col_sum = 0.0;
      for (std::int64_t j = 0; j < residual.cols(); ++j) {
        row_sum += residual.At(i, j);
        col_sum += residual.At(j, i);
      }
      EXPECT_NEAR(row_sum, 0.0, 1e-12);
      EXPECT_NEAR(col_sum, 0.0, 1e-12);
    }
    EXPECT_TRUE(residual.IsSymmetric(1e-12));
  }
}

TEST(CouplingMatrixTest, AuctionResidualMatchesExample20) {
  // Hhat_o = Fig. 1c matrix - 1/3 (Example 20).
  const DenseMatrix expected =
      DenseMatrix{{0.6, 0.3, 0.1}, {0.3, 0.0, 0.7}, {0.1, 0.7, 0.2}}
          .AddScalar(-1.0 / 3.0);
  ExpectMatrixNear(AuctionCoupling().residual(), expected, 1e-12);
}

TEST(CouplingMatrixTest, ScaledResidualScalesLinearly) {
  const CouplingMatrix coupling = AuctionCoupling();
  ExpectMatrixNear(coupling.ScaledResidual(0.5),
                   coupling.residual().Scale(0.5), 1e-15);
}

TEST(CouplingMatrixTest, ScaledStochasticRowsSumToOne) {
  const CouplingMatrix coupling = KroneckerExperimentCoupling();
  const DenseMatrix h = coupling.ScaledStochastic(0.01);
  for (std::int64_t i = 0; i < h.rows(); ++i) {
    double row_sum = 0.0;
    for (std::int64_t j = 0; j < h.cols(); ++j) row_sum += h.At(i, j);
    EXPECT_NEAR(row_sum, 1.0, 1e-12);
  }
}

TEST(CouplingMatrixTest, MaxStochasticScale) {
  // Fig. 6b residual: the most negative entry is -6, so eps <= (1/3)/6.
  EXPECT_NEAR(KroneckerExperimentCoupling().MaxStochasticScale(),
              1.0 / 18.0, 1e-12);
  // At that scale the stochastic matrix has a zero entry but none negative.
  const DenseMatrix h =
      KroneckerExperimentCoupling().ScaledStochastic(1.0 / 18.0);
  for (const double v : h.data()) EXPECT_GE(v, -1e-12);
}

TEST(CouplingMatrixTest, MaxStochasticScaleInfiniteForZeroResidual) {
  const CouplingMatrix coupling =
      CouplingMatrix::FromResidual(DenseMatrix(2, 2));
  EXPECT_TRUE(std::isinf(coupling.MaxStochasticScale()));
}

TEST(CouplingMatrixTest, IsHomophilyClassification) {
  EXPECT_TRUE(HomophilyCoupling2().IsHomophily());
  EXPECT_FALSE(HeterophilyCoupling2().IsHomophily());
  // Fig. 1c mixes homophily (H) with heterophily (A/F).
  EXPECT_FALSE(AuctionCoupling().IsHomophily());
  EXPECT_TRUE(DblpCoupling().IsHomophily());
  EXPECT_TRUE(UniformHomophilyCoupling(5, 0.1).IsHomophily());
}

TEST(CouplingMatrixTest, UniformHomophilyResidual) {
  const CouplingMatrix coupling = UniformHomophilyCoupling(3, 0.1);
  ExpectMatrixNear(coupling.residual(),
                   DenseMatrix{{0.2, -0.1, -0.1},
                               {-0.1, 0.2, -0.1},
                               {-0.1, -0.1, 0.2}},
                   1e-12);
}

TEST(CouplingMatrixTest, DblpCouplingMatchesFigure11a) {
  const CouplingMatrix coupling = DblpCoupling();
  const DenseMatrix& residual = coupling.residual();
  EXPECT_EQ(residual.rows(), 4);
  EXPECT_EQ(residual.At(0, 0), 6.0);
  EXPECT_EQ(residual.At(0, 1), -2.0);
}

TEST(CouplingMatrixDeathTest, RejectsAsymmetricStochastic) {
  EXPECT_DEATH(CouplingMatrix::FromStochastic(
                   DenseMatrix{{0.7, 0.3}, {0.2, 0.8}}),
               "symmetric");
}

TEST(CouplingMatrixDeathTest, RejectsNonStochasticRows) {
  EXPECT_DEATH(CouplingMatrix::FromStochastic(
                   DenseMatrix{{0.9, 0.3}, {0.3, 0.9}}),
               "sum to 1");
}

TEST(CouplingMatrixDeathTest, RejectsNegativeEntries) {
  EXPECT_DEATH(CouplingMatrix::FromStochastic(
                   DenseMatrix{{1.2, -0.2}, {-0.2, 1.2}}),
               "non-negative");
}

TEST(CouplingMatrixDeathTest, RejectsUncenteredResidual) {
  EXPECT_DEATH(CouplingMatrix::FromResidual(
                   DenseMatrix{{0.2, 0.1}, {0.1, 0.2}}),
               "sum to 0");
}

class RandomCouplingTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomCouplingTest, RandomResidualsAreValid) {
  const DenseMatrix residual =
      testing::RandomResidualCoupling(4, 0.1, GetParam());
  // Must pass validation without aborting.
  const CouplingMatrix coupling = CouplingMatrix::FromResidual(residual);
  EXPECT_EQ(coupling.k(), 4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCouplingTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace linbp
