#include "src/core/mooij.h"

#include <cmath>

#include "gtest/gtest.h"
#include "src/core/convergence.h"
#include "src/core/coupling.h"
#include "src/graph/generators.h"
#include "tests/testing/test_util.h"

namespace linbp {
namespace {

TEST(MooijCouplingConstantTest, BinaryHomophilyHandValue) {
  // c(H) for [[0.6, 0.4], [0.4, 0.6]]: the only cross ratio is
  // (0.6 * 0.6) / (0.4 * 0.4) = 2.25, so c = tanh(log(2.25)/4) = 0.2.
  const DenseMatrix h{{0.6, 0.4}, {0.4, 0.6}};
  EXPECT_NEAR(MooijCouplingConstant(h), 0.2, 1e-12);
}

TEST(MooijCouplingConstantTest, UniformCouplingHasZeroConstant) {
  const DenseMatrix h{{0.5, 0.5}, {0.5, 0.5}};
  EXPECT_EQ(MooijCouplingConstant(h), 0.0);
}

TEST(MooijCouplingConstantTest, ZeroEntryDegenerates) {
  // Fig. 1c has H(A, A) = 0, so the bound collapses to c = 1.
  const DenseMatrix h =
      AuctionCoupling().residual().AddScalar(1.0 / 3.0);
  EXPECT_EQ(MooijCouplingConstant(h), 1.0);
}

TEST(MooijCouplingConstantTest, SymmetricInLogRatio) {
  // Swapping numerator and denominator must not change the constant.
  const DenseMatrix h{{0.7, 0.3}, {0.3, 0.7}};
  const DenseMatrix h_swapped{{0.3, 0.7}, {0.7, 0.3}};
  EXPECT_NEAR(MooijCouplingConstant(h), MooijCouplingConstant(h_swapped),
              1e-12);
}

TEST(EdgeMatrixSpectralRadiusTest, PathIsNilpotent) {
  // On a path every non-backtracking walk dies at an endpoint: rho = 0.
  EXPECT_NEAR(EdgeMatrixSpectralRadius(PathGraph(6)), 0.0, 1e-6);
}

TEST(EdgeMatrixSpectralRadiusTest, CycleIsOne) {
  // On a cycle every directed edge has exactly one continuation: rho = 1.
  EXPECT_NEAR(EdgeMatrixSpectralRadius(CycleGraph(7)), 1.0, 1e-6);
}

TEST(EdgeMatrixSpectralRadiusTest, RegularGraphIsDegreeMinusOne) {
  // For a d-regular graph the non-backtracking radius is d - 1.
  const Graph k4(4, {{0, 1, 1.0},
                     {0, 2, 1.0},
                     {0, 3, 1.0},
                     {1, 2, 1.0},
                     {1, 3, 1.0},
                     {2, 3, 1.0}});
  EXPECT_NEAR(EdgeMatrixSpectralRadius(k4), 2.0, 1e-6);
}

class EdgeMatrixRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(EdgeMatrixRandomTest, EdgeRadiusBelowAdjacencyRadius) {
  // Appendix G observes rho(A_edge) < rho(A) (roughly rho(A_edge) + 1 ~
  // rho(A) on real networks).
  const Graph g = RandomConnectedGraph(30, 40, GetParam());
  EXPECT_LT(EdgeMatrixSpectralRadius(g), AdjacencySpectralRadius(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EdgeMatrixRandomTest, ::testing::Range(0, 6));

TEST(CompareConvergenceBoundsTest, ReportsBothSides) {
  const Graph g = CycleGraph(10);
  const DenseMatrix hhat = HomophilyCoupling2().ScaledResidual(0.2);
  const BoundComparison comparison = CompareConvergenceBounds(g, hhat);
  EXPECT_NEAR(comparison.adjacency_radius, 2.0, 1e-6);
  EXPECT_NEAR(comparison.edge_matrix_radius, 1.0, 1e-6);
  // rho(Hhat) = 2 * 0.2 * 0.3... : Hhat = 0.2*[[0.3,-0.3],[-0.3,0.3]] has
  // eigenvalues {0, 0.12}; rho = 0.12.
  EXPECT_NEAR(comparison.linbp_star_value, 0.12 * 2.0, 1e-6);
  EXPECT_GT(comparison.coupling_constant, 0.0);
  EXPECT_NEAR(comparison.mooij_value, comparison.coupling_constant * 1.0,
              1e-9);
}

TEST(CompareConvergenceBoundsTest, NeitherBoundSubsumesTheOther) {
  // Appendix G's point, direction 1: on a binary-class cycle the Mooij
  // bound can hold while LinBP*'s criterion is violated.
  const Graph cycle = CycleGraph(12);
  const DenseMatrix binary = HomophilyCoupling2().ScaledResidual(1.0);
  const BoundComparison b1 = CompareConvergenceBounds(cycle, binary);
  // c(H) for [[0.8, 0.2], [0.2, 0.8]] is tanh(log(16)/4) ~ 0.6; rho(Hhat) =
  // 0.6 and rho(A) = 2: BP's bound holds (0.6 < 1), LinBP*'s does not.
  EXPECT_LT(b1.mooij_value, 1.0);
  EXPECT_GT(b1.linbp_star_value, 1.0);

  // Direction 2 (multi-class, c(H) > rho(Hhat)): a near-heterophily 3-class
  // coupling on K4 where rho(A_edge) = 2 and rho(A) = 3. At scale 0.65 the
  // cross-ratios are extreme (c ~ 0.54 so c * 2 > 1) while the linear
  // residual stays small (rho(Hhat) * 3 ~ 0.92 < 1).
  const Graph k4(4, {{0, 1, 1.0},
                     {0, 2, 1.0},
                     {0, 3, 1.0},
                     {1, 2, 1.0},
                     {1, 3, 1.0},
                     {2, 3, 1.0}});
  const DenseMatrix base{{0.02, 0.49, 0.49},
                         {0.49, 0.02, 0.49},
                         {0.49, 0.49, 0.02}};
  const DenseMatrix multi =
      CouplingMatrix::FromStochastic(base).residual().Scale(0.65);
  const BoundComparison b2 = CompareConvergenceBounds(k4, multi);
  EXPECT_GE(b2.mooij_value, 1.0);
  EXPECT_LT(b2.linbp_star_value, 1.0);
}

}  // namespace
}  // namespace linbp
