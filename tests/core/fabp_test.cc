#include "src/core/fabp.h"

#include "gtest/gtest.h"
#include "src/core/closed_form.h"
#include "src/core/convergence.h"
#include "src/core/coupling.h"
#include "src/graph/beliefs.h"
#include "src/graph/generators.h"
#include "tests/testing/test_util.h"

namespace linbp {
namespace {

using testing::ExpectVectorNear;

TEST(FabpTest, SingleEdgeHandValue) {
  // b = (I - c1 A + c2 D)^-1 e with c1 = 2h/(1-4h^2), c2 = 4h^2/(1-4h^2).
  // For two nodes with e = (e0, 0):
  //   (1 + c2) b0 - c1 b1 = e0,  -c1 b0 + (1 + c2) b1 = 0.
  const double h = 0.15;
  const double denom = 1.0 - 4.0 * h * h;
  const double c1 = 2.0 * h / denom;
  const double c2 = 4.0 * h * h / denom;
  const Graph g(2, {{0, 1, 1.0}});
  const FabpResult result = RunFabp(g, h, {0.08, 0.0});
  ASSERT_TRUE(result.converged);
  const double det = (1.0 + c2) * (1.0 + c2) - c1 * c1;
  EXPECT_NEAR(result.beliefs[0], 0.08 * (1.0 + c2) / det, 1e-10);
  EXPECT_NEAR(result.beliefs[1], 0.08 * c1 / det, 1e-10);
}

TEST(FabpTest, HomophilyKeepsSign) {
  const Graph g = PathGraph(4);
  const FabpResult result = RunFabp(g, 0.1, {0.1, 0.0, 0.0, 0.0});
  ASSERT_TRUE(result.converged);
  for (const double b : result.beliefs) EXPECT_GT(b, 0.0);
}

TEST(FabpTest, HeterophilyAlternatesSign) {
  const Graph g = PathGraph(4);
  const FabpResult result = RunFabp(g, -0.1, {0.1, 0.0, 0.0, 0.0});
  ASSERT_TRUE(result.converged);
  EXPECT_GT(result.beliefs[0], 0.0);
  EXPECT_LT(result.beliefs[1], 0.0);
  EXPECT_GT(result.beliefs[2], 0.0);
  EXPECT_LT(result.beliefs[3], 0.0);
}

TEST(FabpTest, DivergenceAbortsEarlyWithDiagnosticError) {
  // h = 0.45 gives c1 = 2h/(1-4h^2) ~ 4.7, so rho(c1 A) >> 1 on a path
  // graph: the Jacobi iteration diverges and must abort after a few
  // growth sweeps instead of running out the iteration budget.
  const Graph g = PathGraph(4);
  const FabpResult result =
      RunFabp(g, 0.45, {0.1, 0.0, 0.0, 0.0}, /*max_iterations=*/600);
  EXPECT_TRUE(result.diverged);
  EXPECT_TRUE(result.failed);
  EXPECT_FALSE(result.converged);
  EXPECT_LT(result.iterations, 100);
  EXPECT_NE(result.error.find("diverging"), std::string::npos)
      << result.error;
  EXPECT_NE(result.error.find("rho_hat="), std::string::npos)
      << result.error;
  EXPECT_GT(result.diagnostics.empirical_contraction, 1.0);
  EXPECT_GT(result.diagnostics.spectral_radius_estimate, 1.0);
  // The last iterate is kept for inspection.
  EXPECT_EQ(result.beliefs.size(), 4u);
}

TEST(FabpTest, ConvergedRunCarriesContractionDiagnostics) {
  const Graph g = PathGraph(4);
  const FabpResult result =
      RunFabp(g, 0.1, {0.1, 0.0, 0.0, 0.0}, 2000, 1e-14);
  ASSERT_TRUE(result.converged);
  EXPECT_GT(result.diagnostics.empirical_contraction, 0.0);
  EXPECT_LT(result.diagnostics.empirical_contraction, 1.0);
  EXPECT_EQ(result.diagnostics.predicted_sweeps_to_tolerance, 0.0);
  EXPECT_GT(result.diagnostics.fitted_sweeps, 2);
}

TEST(FabpTest, F32PrecisionTracksF64WithinFloatResolution) {
  // The f32 Jacobi twin stores the iterate as float but applies the
  // update in fp64; on a well-conditioned problem the fixed points agree
  // to float resolution, and the f64 options path stays bit-identical to
  // the legacy loose-argument overload.
  const Graph g = PathGraph(6);
  const std::vector<double> priors = {0.1, 0.0, -0.05, 0.0, 0.0, 0.08};
  FabpOptions options;
  options.tolerance = 1e-7;  // reachable by a float-stored iterate
  const FabpResult f64 = RunFabp(g, 0.12, priors, options);
  ASSERT_TRUE(f64.converged);
  options.precision = Precision::kF32;
  const FabpResult f32 = RunFabp(g, 0.12, priors, options);
  ASSERT_TRUE(f32.converged);
  ASSERT_EQ(f32.beliefs.size(), f64.beliefs.size());
  for (std::size_t i = 0; i < f32.beliefs.size(); ++i) {
    EXPECT_NEAR(f32.beliefs[i], f64.beliefs[i], 1e-6) << "at node " << i;
    // The stored iterate was float, so widening is exact.
    EXPECT_EQ(f32.beliefs[i],
              static_cast<double>(static_cast<float>(f32.beliefs[i])));
  }
  const FabpResult legacy = RunFabp(g, 0.12, priors,
                                    /*max_iterations=*/1000,
                                    /*tolerance=*/1e-7);
  ASSERT_EQ(legacy.beliefs.size(), f64.beliefs.size());
  for (std::size_t i = 0; i < legacy.beliefs.size(); ++i) {
    EXPECT_EQ(legacy.beliefs[i], f64.beliefs[i]) << "at node " << i;
  }
}

TEST(FabpDeathTest, RejectsCouplingOutOfRange) {
  const Graph g = PathGraph(2);
  EXPECT_DEATH(RunFabp(g, 0.5, {0.0, 0.0}), "1/2");
}

// Appendix E: for k = 2 the binary linearization coincides with the
// kLinBpExact variant of the multi-class system.
class FabpEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(FabpEquivalenceTest, MatchesExactLinBpWithTwoClasses) {
  const std::uint64_t seed = GetParam();
  const Graph g = RandomConnectedGraph(12, 9, seed);
  Rng rng(seed + 1);
  // Keep the coupling safely inside the convergence region of the Jacobi
  // solve: rho(c1 A) ~ 2h rho(A) must stay below 1.
  const double h = 0.4 / AdjacencySpectralRadius(g) *
                   (0.5 + 0.5 * rng.NextDouble());

  // Scalar explicit beliefs -> 2-column residual matrix [e, -e].
  std::vector<double> e_scalar(12, 0.0);
  DenseMatrix e(12, 2);
  for (std::int64_t v = 0; v < 4; ++v) {
    e_scalar[v] = 0.2 * (2.0 * rng.NextDouble() - 1.0);
    e.At(v, 0) = e_scalar[v];
    e.At(v, 1) = -e_scalar[v];
  }
  const FabpResult fabp = RunFabp(g, h, e_scalar, 2000, 1e-14);
  ASSERT_TRUE(fabp.converged);

  const DenseMatrix hhat{{h, -h}, {-h, h}};
  const DenseMatrix linbp =
      ClosedFormLinBpDense(g, hhat, e, LinBpVariant::kLinBpExact);
  std::vector<double> linbp_first(12);
  for (std::int64_t v = 0; v < 12; ++v) {
    linbp_first[v] = linbp.At(v, 0);
    // Columns are antisymmetric in the binary case.
    EXPECT_NEAR(linbp.At(v, 1), -linbp.At(v, 0), 1e-10);
  }
  ExpectVectorNear(fabp.beliefs, linbp_first, 1e-9);
}

TEST_P(FabpEquivalenceTest, WeightedGraphsMatchToo) {
  const std::uint64_t seed = GetParam();
  const Graph g = RandomWeightedConnectedGraph(10, 6, 0.5, 1.5, seed + 100);
  const double h = 0.08;
  std::vector<double> e_scalar(10, 0.0);
  DenseMatrix e(10, 2);
  e_scalar[0] = 0.1;
  e.At(0, 0) = 0.1;
  e.At(0, 1) = -0.1;
  const FabpResult fabp = RunFabp(g, h, e_scalar, 2000, 1e-14);
  ASSERT_TRUE(fabp.converged);
  const DenseMatrix hhat{{h, -h}, {-h, h}};
  const DenseMatrix linbp =
      ClosedFormLinBpDense(g, hhat, e, LinBpVariant::kLinBpExact);
  for (std::int64_t v = 0; v < 10; ++v) {
    EXPECT_NEAR(fabp.beliefs[v], linbp.At(v, 0), 1e-9) << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FabpEquivalenceTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace linbp
