#include "src/core/labeling.h"

#include "gtest/gtest.h"
#include "tests/testing/test_util.h"

namespace linbp {
namespace {

using testing::ExpectVectorNear;

// The three standardization examples below Def. 11 of the paper.
TEST(StandardizeTest, PaperExamples) {
  ExpectVectorNear(Standardize({1, 0}), {1, -1}, 1e-12);
  ExpectVectorNear(Standardize({1, 1, 1}), {0, 0, 0}, 0.0);
  ExpectVectorNear(Standardize({1, 0, 0, 0, 0}), {2, -0.5, -0.5, -0.5, -0.5},
                   1e-12);
}

TEST(StandardizeTest, ScaleInvariance) {
  // zeta(lambda x) = zeta(x), the property behind Corollary 13.
  const std::vector<double> x = {4, -1, -1, -1, -1};
  ExpectVectorNear(Standardize(x), Standardize({40, -10, -10, -10, -10}),
                   1e-12);
}

TEST(StandardizeTest, PaperSigmaExample) {
  // sigma([4,-1,-1,-1,-1]) = 2 and sigma([40,...]) = 20 (Sect. 6.1).
  EXPECT_NEAR(StandardDeviation({4, -1, -1, -1, -1}), 2.0, 1e-12);
  EXPECT_NEAR(StandardDeviation({40, -10, -10, -10, -10}), 20.0, 1e-12);
}

TEST(StandardizeTest, EmptyVector) {
  EXPECT_TRUE(Standardize({}).empty());
  EXPECT_EQ(StandardDeviation({}), 0.0);
}

TEST(StandardizeRowsTest, AppliesPerRow) {
  DenseMatrix m{{1, 0}, {1, 1}};
  const DenseMatrix out = StandardizeRows(m);
  EXPECT_NEAR(out.At(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(out.At(0, 1), -1.0, 1e-12);
  EXPECT_EQ(out.At(1, 0), 0.0);
  EXPECT_EQ(out.At(1, 1), 0.0);
}

TEST(TopBeliefsTest, UniqueMaxima) {
  DenseMatrix beliefs{{0.5, 0.2, 0.3}, {-1.0, -0.2, -0.5}};
  const TopBeliefAssignment top = TopBeliefs(beliefs);
  ASSERT_EQ(top.classes.size(), 2u);
  EXPECT_EQ(top.classes[0], std::vector<int>{0});
  EXPECT_EQ(top.classes[1], std::vector<int>{1});
  EXPECT_EQ(top.TotalBeliefs(), 2);
}

TEST(TopBeliefsTest, ExactTies) {
  DenseMatrix beliefs{{0.01, 0.01, -0.02}};
  const TopBeliefAssignment top = TopBeliefs(beliefs);
  EXPECT_EQ(top.classes[0], (std::vector<int>{0, 1}));
}

TEST(TopBeliefsTest, AllEqualRowTiesEverything) {
  DenseMatrix beliefs{{0.0, 0.0, 0.0}};
  const TopBeliefAssignment top = TopBeliefs(beliefs);
  EXPECT_EQ(top.classes[0], (std::vector<int>{0, 1, 2}));
}

TEST(TopBeliefsTest, ToleranceSeparatesNearTies) {
  // The paper's example: LinBP produced [1.0000000014, 1.0000000002,
  // -2.0000000016]e-2 (no tie) while SBP produced [1, 1, -2]e-2 (tie).
  DenseMatrix linbp_row{{1.0000000014e-2, 1.0000000002e-2, -2.0000000016e-2}};
  DenseMatrix sbp_row{{1e-2, 1e-2, -2e-2}};
  EXPECT_EQ(TopBeliefs(linbp_row).classes[0], std::vector<int>{0});
  EXPECT_EQ(TopBeliefs(sbp_row).classes[0], (std::vector<int>{0, 1}));
}

TEST(CompareAssignmentsTest, PaperPrecisionRecallExample) {
  // GT: {v1->c1, v2->c2, v3->c3}; other: {v1->{c1,c2}, v2->c2, v3->c2}.
  // Then r = 2/3 and p = 2/4 (Sect. 7).
  TopBeliefAssignment gt;
  gt.classes = {{0}, {1}, {2}};
  TopBeliefAssignment other;
  other.classes = {{0, 1}, {1}, {1}};
  const QualityMetrics metrics = CompareAssignments(gt, other);
  EXPECT_NEAR(metrics.recall, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(metrics.precision, 2.0 / 4.0, 1e-12);
  EXPECT_EQ(metrics.shared, 2);
  EXPECT_NEAR(metrics.f1,
              2.0 * (0.5 * 2.0 / 3.0) / (0.5 + 2.0 / 3.0), 1e-12);
}

TEST(CompareAssignmentsTest, IdenticalAssignmentsScorePerfect) {
  TopBeliefAssignment a;
  a.classes = {{0}, {1, 2}, {2}};
  const QualityMetrics metrics = CompareAssignments(a, a);
  EXPECT_EQ(metrics.precision, 1.0);
  EXPECT_EQ(metrics.recall, 1.0);
  EXPECT_EQ(metrics.f1, 1.0);
}

TEST(CompareAssignmentsTest, NodeSubsetRestrictsScoring) {
  TopBeliefAssignment gt;
  gt.classes = {{0}, {1}, {2}};
  TopBeliefAssignment other;
  other.classes = {{0}, {0}, {0}};
  const QualityMetrics all = CompareAssignments(gt, other);
  EXPECT_NEAR(all.recall, 1.0 / 3.0, 1e-12);
  const QualityMetrics subset = CompareAssignments(gt, other, {0});
  EXPECT_EQ(subset.recall, 1.0);
  const QualityMetrics subset2 = CompareAssignments(gt, other, {1, 2});
  EXPECT_EQ(subset2.recall, 0.0);
  EXPECT_EQ(subset2.f1, 0.0);
}

TEST(CompareAssignmentsTest, EmptyAssignments) {
  TopBeliefAssignment empty;
  const QualityMetrics metrics = CompareAssignments(empty, empty);
  EXPECT_EQ(metrics.precision, 0.0);
  EXPECT_EQ(metrics.recall, 0.0);
}

}  // namespace
}  // namespace linbp
