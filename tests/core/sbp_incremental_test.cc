#include "src/core/sbp_incremental.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <string>

#include "gtest/gtest.h"
#include "src/core/coupling.h"
#include "src/graph/beliefs.h"
#include "src/graph/generators.h"
#include "tests/testing/test_util.h"

namespace linbp {
namespace {

using testing::ExpectMatrixNear;

// Reference: from-scratch SBP on the state's current graph and beliefs.
void ExpectStateMatchesFromScratch(const SbpState& state, const Graph& graph,
                                   const DenseMatrix& hhat,
                                   const DenseMatrix& explicit_residuals,
                                   std::vector<std::int64_t> explicit_nodes) {
  std::sort(explicit_nodes.begin(), explicit_nodes.end());
  const SbpResult reference =
      RunSbp(graph, hhat, explicit_residuals, explicit_nodes);
  EXPECT_EQ(state.geodesic(), reference.geodesic);
  ExpectMatrixNear(state.beliefs(), reference.beliefs, 1e-12);
}

TEST(SbpStateTest, FromGraphMatchesRunSbp) {
  const Graph g = RandomConnectedGraph(20, 15, /*seed=*/1);
  const DenseMatrix hhat = AuctionCoupling().ScaledResidual(0.3);
  const SeededBeliefs seeded = SeedPaperBeliefs(20, 3, 5, /*seed=*/2);
  const SbpState state =
      SbpState::FromGraph(g, hhat, seeded.residuals, seeded.explicit_nodes);
  ExpectStateMatchesFromScratch(state, g, hhat, seeded.residuals,
                                seeded.explicit_nodes);
}

TEST(SbpStateTest, SinglePassInvariant) {
  // "Single-pass": the initial assignment computes every reachable
  // non-explicit node exactly once.
  const Graph g = RandomConnectedGraph(50, 40, /*seed=*/21);
  const DenseMatrix hhat = AuctionCoupling().ScaledResidual(0.3);
  const SeededBeliefs seeded = SeedPaperBeliefs(50, 3, 5, /*seed=*/22);
  const SbpState state =
      SbpState::FromGraph(g, hhat, seeded.residuals, seeded.explicit_nodes);
  // Connected graph: everything is reachable.
  EXPECT_EQ(state.last_update_recomputed_nodes(),
            50 - static_cast<std::int64_t>(seeded.explicit_nodes.size()));
}

TEST(SbpStateTest, AddExplicitBeliefOnPath) {
  // Adding a label at the far end of a path relabels only the near half.
  const Graph g = PathGraph(9);
  const DenseMatrix hhat = HomophilyCoupling2().ScaledResidual(0.4);
  DenseMatrix e(9, 2);
  e.At(0, 0) = 0.1;
  e.At(0, 1) = -0.1;
  SbpState state = SbpState::FromGraph(g, hhat, e, {0});
  EXPECT_EQ(state.geodesic()[8], 8);

  DenseMatrix new_row(1, 2);
  new_row.At(0, 0) = -0.1;
  new_row.At(0, 1) = 0.1;
  state.AddExplicitBeliefs({8}, new_row);
  EXPECT_EQ(state.geodesic()[8], 0);
  EXPECT_EQ(state.geodesic()[4], 4);

  DenseMatrix combined = e;
  combined.At(8, 0) = -0.1;
  combined.At(8, 1) = 0.1;
  ExpectStateMatchesFromScratch(state, g, hhat, combined, {0, 8});
  // Only the right half of the path needed recomputation.
  EXPECT_LE(state.last_update_recomputed_nodes(), 5);
}

TEST(SbpStateTest, OverwritingExplicitBeliefPropagates) {
  const Graph g = PathGraph(4);
  const DenseMatrix hhat = HomophilyCoupling2().ScaledResidual(0.4);
  DenseMatrix e(4, 2);
  e.At(0, 0) = 0.1;
  e.At(0, 1) = -0.1;
  SbpState state = SbpState::FromGraph(g, hhat, e, {0});
  const double before = state.beliefs().At(3, 0);

  DenseMatrix flipped(1, 2);
  flipped.At(0, 0) = -0.2;
  flipped.At(0, 1) = 0.2;
  state.AddExplicitBeliefs({0}, flipped);
  DenseMatrix combined(4, 2);
  combined.At(0, 0) = -0.2;
  combined.At(0, 1) = 0.2;
  ExpectStateMatchesFromScratch(state, g, hhat, combined, {0});
  EXPECT_LT(state.beliefs().At(3, 0), 0.0);
  EXPECT_NE(state.beliefs().At(3, 0), before);
}

TEST(SbpStateTest, AddEdgeConnectsComponents) {
  const Graph g(5, {{0, 1, 1.0}, {2, 3, 1.0}, {3, 4, 1.0}});
  const DenseMatrix hhat = HomophilyCoupling2().ScaledResidual(0.4);
  DenseMatrix e(5, 2);
  e.At(0, 0) = 0.1;
  e.At(0, 1) = -0.1;
  SbpState state = SbpState::FromGraph(g, hhat, e, {0});
  EXPECT_EQ(state.geodesic()[2], kUnreachable);

  state.AddEdges({{1, 2, 1.0}});
  const Graph updated(
      5, {{0, 1, 1.0}, {2, 3, 1.0}, {3, 4, 1.0}, {1, 2, 1.0}});
  ExpectStateMatchesFromScratch(state, updated, hhat, e, {0});
  EXPECT_EQ(state.geodesic()[4], 4);
}

TEST(SbpStateTest, AppendixCPathologicalChain) {
  // Appendix C: new edges s-v and v-t with geodesics 0, 2, 4: both v and t
  // become seeds, and t is updated twice (once via its old parent, then via
  // v's improved geodesic).
  //
  // Build a path 0-1-2-3-4 with explicit node 0 (geodesics 0..4).
  const Graph g = PathGraph(5);
  const DenseMatrix hhat = HomophilyCoupling2().ScaledResidual(0.4);
  DenseMatrix e(5, 2);
  e.At(0, 0) = 0.1;
  e.At(0, 1) = -0.1;
  SbpState state = SbpState::FromGraph(g, hhat, e, {0});
  state.AddEdges({{0, 2, 1.0}, {2, 4, 1.0}});
  const Graph updated(
      5, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}, {3, 4, 1.0},
          {0, 2, 1.0}, {2, 4, 1.0}});
  ExpectStateMatchesFromScratch(state, updated, hhat, e, {0});
  EXPECT_EQ(state.geodesic()[2], 1);
  EXPECT_EQ(state.geodesic()[4], 2);
}

TEST(SbpStateTest, RemoveEdgeDisconnectsComponent) {
  // Cutting the bridge 1-2 strands {2, 3, 4}: their geodesics revert to
  // unreachable and their belief rows zero out, exactly like a
  // from-scratch solve on the cut graph.
  const Graph g(5, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}, {3, 4, 1.0}});
  const DenseMatrix hhat = HomophilyCoupling2().ScaledResidual(0.4);
  DenseMatrix e(5, 2);
  e.At(0, 0) = 0.1;
  e.At(0, 1) = -0.1;
  SbpState state = SbpState::FromGraph(g, hhat, e, {0});
  EXPECT_EQ(state.geodesic()[4], 4);

  EXPECT_GE(state.RemoveEdges({{1, 2, 1.0}}), 0);
  const Graph cut(5, {{0, 1, 1.0}, {2, 3, 1.0}, {3, 4, 1.0}});
  ExpectStateMatchesFromScratch(state, cut, hhat, e, {0});
  EXPECT_EQ(state.geodesic()[2], kUnreachable);
  EXPECT_EQ(state.beliefs().At(4, 0), 0.0);

  // Restoring the bridge (endpoints flipped) resurrects the far side.
  EXPECT_GE(state.AddEdges({{2, 1, 1.0}}), 0);
  const Graph restored(
      5, {{0, 1, 1.0}, {2, 3, 1.0}, {3, 4, 1.0}, {2, 1, 1.0}});
  ExpectStateMatchesFromScratch(state, restored, hhat, e, {0});
  EXPECT_EQ(state.geodesic()[4], 4);
}

TEST(SbpStateTest, ReweightEdgeMatchesFromScratch) {
  const Graph g = PathGraph(5);
  const DenseMatrix hhat = HomophilyCoupling2().ScaledResidual(0.4);
  DenseMatrix e(5, 2);
  e.At(0, 0) = 0.1;
  e.At(0, 1) = -0.1;
  SbpState state = SbpState::FromGraph(g, hhat, e, {0});

  // Reweighting keeps geodesics (hop counts) but rescales the cascade.
  const std::vector<std::int64_t> before = state.geodesic();
  EXPECT_GE(state.UpdateEdgeWeights({{1, 2, 0.5}, {4, 3, 2.0}}), 0);
  EXPECT_EQ(state.geodesic(), before);
  const Graph reweighted(
      5, {{0, 1, 1.0}, {1, 2, 0.5}, {2, 3, 1.0}, {3, 4, 2.0}});
  ExpectStateMatchesFromScratch(state, reweighted, hhat, e, {0});
}

TEST(SbpStateTest, MutationsRejectInvalidBatchesWithoutAborting) {
  const Graph g = PathGraph(4);  // edges 0-1, 1-2, 2-3
  const DenseMatrix hhat = HomophilyCoupling2().ScaledResidual(0.3);
  DenseMatrix e(4, 2);
  e.At(0, 0) = 0.1;
  e.At(0, 1) = -0.1;
  SbpState state = SbpState::FromGraph(g, hhat, e, {0});
  const std::vector<std::int64_t> geodesic_before = state.geodesic();
  const DenseMatrix beliefs_before = state.beliefs();

  struct Case {
    std::vector<Edge> batch;
    const char* expect;
  };
  const std::vector<Case> cases = {
      {{{0, 2, 1.0}}, "does not exist"},
      {{{0, 4, 1.0}}, "outside"},
      {{{-1, 2, 1.0}}, "outside"},
      {{{2, 2, 1.0}}, "self-loop"},
      {{{0, 1, 1.0}, {1, 0, 2.0}}, "duplicate edge"},
  };
  for (const Case& c : cases) {
    std::string error;
    EXPECT_EQ(state.RemoveEdges(c.batch, &error), -1);
    EXPECT_NE(error.find(c.expect), std::string::npos) << error;
    error.clear();
    EXPECT_EQ(state.UpdateEdgeWeights(c.batch, &error), -1);
    EXPECT_NE(error.find(c.expect), std::string::npos) << error;
    EXPECT_EQ(state.geodesic(), geodesic_before);
    ExpectMatrixNear(state.beliefs(), beliefs_before, 0.0);
  }
  // Reweighting validates the new weight; removal names edges by their
  // endpoints and ignores it.
  std::string error;
  EXPECT_EQ(state.UpdateEdgeWeights({{0, 1, std::nan("")}}, &error), -1);
  EXPECT_NE(error.find("non-finite"), std::string::npos) << error;
  EXPECT_GE(state.RemoveEdges({{0, 1, std::nan("")}}, &error), 0) << error;

  // Hostile belief batches error out the same way.
  DenseMatrix row(1, 2);
  row.At(0, 0) = 0.05;
  row.At(0, 1) = -0.05;
  error.clear();
  EXPECT_EQ(state.AddExplicitBeliefs({7}, row, &error), -1);
  EXPECT_NE(error.find("outside"), std::string::npos) << error;
  error.clear();
  EXPECT_EQ(state.AddExplicitBeliefs({1}, DenseMatrix(1, 3), &error), -1);
  EXPECT_NE(error.find("coupling has 2"), std::string::npos) << error;
}

TEST(SbpStateTest, RejectsDuplicateEdgeWithoutAborting) {
  const Graph g = PathGraph(3);
  SbpState state = SbpState::FromGraph(
      g, HomophilyCoupling2().ScaledResidual(0.3), DenseMatrix(3, 2), {});
  std::string error;
  EXPECT_EQ(state.AddEdges({{0, 1, 1.0}}, &error), -1);
  EXPECT_NE(error.find("already exists"), std::string::npos) << error;
}

// Randomized equivalence: a sequence of incremental updates always matches
// a from-scratch recomputation.
class SbpIncrementalRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(SbpIncrementalRandomTest, BeliefBatchesMatchFromScratch) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 7919 + 13);
  const std::int64_t n = 40;
  const Graph g = RandomConnectedGraph(n, 30, seed);
  const DenseMatrix hhat = testing::RandomResidualCoupling(3, 0.2, seed + 1);

  // Start with a few explicit beliefs.
  DenseMatrix residuals(n, 3);
  std::vector<std::int64_t> explicit_nodes;
  auto random_row = [&](std::int64_t node) {
    double sum = 0.0;
    for (std::int64_t c = 0; c + 1 < 3; ++c) {
      residuals.At(node, c) = 0.2 * (2.0 * rng.NextDouble() - 1.0);
      sum += residuals.At(node, c);
    }
    residuals.At(node, 2) = -sum;
  };
  for (std::int64_t v = 0; v < 3; ++v) {
    explicit_nodes.push_back(v);
    random_row(v);
  }
  SbpState state = SbpState::FromGraph(g, hhat, residuals, explicit_nodes);

  // Three rounds of random belief batches (mixing fresh and overwritten).
  for (int round = 0; round < 3; ++round) {
    const std::int64_t batch = 1 + rng.NextInt(0, 3);
    std::vector<std::int64_t> nodes;
    DenseMatrix rows(batch, 3);
    for (std::int64_t i = 0; i < batch; ++i) {
      const std::int64_t node = rng.NextInt(0, n - 1);
      nodes.push_back(node);
      random_row(node);
      for (std::int64_t c = 0; c < 3; ++c) {
        rows.At(i, c) = residuals.At(node, c);
      }
      if (std::find(explicit_nodes.begin(), explicit_nodes.end(), node) ==
          explicit_nodes.end()) {
        explicit_nodes.push_back(node);
      }
    }
    state.AddExplicitBeliefs(nodes, rows);
    ExpectStateMatchesFromScratch(state, g, hhat, residuals, explicit_nodes);
  }
}

TEST_P(SbpIncrementalRandomTest, EdgeBatchesMatchFromScratch) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 104729 + 7);
  const std::int64_t n = 35;
  // Sparse start (possibly disconnected) so edges change geodesics a lot.
  const Graph start = ErdosRenyiGraph(n, 20, seed + 2);
  const DenseMatrix hhat = testing::RandomResidualCoupling(3, 0.25, seed + 3);
  const SeededBeliefs seeded = SeedPaperBeliefs(n, 3, 4, seed + 4);

  SbpState state =
      SbpState::FromGraph(start, hhat, seeded.residuals,
                          seeded.explicit_nodes);
  std::vector<Edge> all_edges = start.edges();
  auto edge_exists = [&](std::int64_t u, std::int64_t v) {
    for (const Edge& e : all_edges) {
      if ((e.u == u && e.v == v) || (e.u == v && e.v == u)) return true;
    }
    return false;
  };

  for (int round = 0; round < 4; ++round) {
    std::vector<Edge> batch;
    const std::int64_t want = 1 + rng.NextInt(0, 4);
    while (static_cast<std::int64_t>(batch.size()) < want) {
      const std::int64_t u = rng.NextInt(0, n - 1);
      const std::int64_t v = rng.NextInt(0, n - 1);
      if (u == v || edge_exists(u, v)) continue;
      bool in_batch = false;
      for (const Edge& e : batch) {
        if ((e.u == u && e.v == v) || (e.u == v && e.v == u)) in_batch = true;
      }
      if (in_batch) continue;
      batch.push_back({u, v, 1.0});
    }
    state.AddEdges(batch);
    all_edges.insert(all_edges.end(), batch.begin(), batch.end());
    const Graph updated(n, all_edges);
    ExpectStateMatchesFromScratch(state, updated, hhat, seeded.residuals,
                                  seeded.explicit_nodes);
  }
}

TEST_P(SbpIncrementalRandomTest, WeightedEdgeBatchesMatchFromScratch) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed + 1000);
  const std::int64_t n = 25;
  const Graph start = RandomWeightedConnectedGraph(n, 10, 0.5, 2.0, seed);
  const DenseMatrix hhat = testing::RandomResidualCoupling(2, 0.2, seed + 1);
  const SeededBeliefs seeded = SeedPaperBeliefs(n, 2, 3, seed + 2);
  SbpState state = SbpState::FromGraph(start, hhat, seeded.residuals,
                                       seeded.explicit_nodes);
  std::vector<Edge> all_edges = start.edges();
  // One weighted batch.
  std::vector<Edge> batch;
  while (batch.size() < 3) {
    const std::int64_t u = rng.NextInt(0, n - 1);
    const std::int64_t v = rng.NextInt(0, n - 1);
    if (u == v) continue;
    bool exists = false;
    for (const Edge& e : all_edges) {
      if ((e.u == u && e.v == v) || (e.u == v && e.v == u)) exists = true;
    }
    for (const Edge& e : batch) {
      if ((e.u == u && e.v == v) || (e.u == v && e.v == u)) exists = true;
    }
    if (exists) continue;
    batch.push_back({u, v, 0.5 + rng.NextDouble()});
  }
  state.AddEdges(batch);
  all_edges.insert(all_edges.end(), batch.begin(), batch.end());
  ExpectStateMatchesFromScratch(state, Graph(n, all_edges), hhat,
                                seeded.residuals, seeded.explicit_nodes);
}

TEST_P(SbpIncrementalRandomTest, RemovalBatchesMatchFromScratch) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 6151 + 3);
  const std::int64_t n = 35;
  // Sparse start so removals disconnect nodes often (the hard case:
  // geodesics reverting to unreachable and rows zeroing).
  const Graph start = ErdosRenyiGraph(n, 40, seed + 5);
  const DenseMatrix hhat = testing::RandomResidualCoupling(3, 0.25, seed + 6);
  const SeededBeliefs seeded = SeedPaperBeliefs(n, 3, 4, seed + 7);
  SbpState state = SbpState::FromGraph(start, hhat, seeded.residuals,
                                       seeded.explicit_nodes);
  std::vector<Edge> all_edges = start.edges();

  for (int round = 0; round < 4 && !all_edges.empty(); ++round) {
    // Remove a random batch of distinct existing edges.
    const std::int64_t want = std::min<std::int64_t>(
        1 + rng.NextInt(0, 3), static_cast<std::int64_t>(all_edges.size()));
    std::vector<Edge> batch;
    for (std::int64_t i = 0; i < want; ++i) {
      const std::size_t pick = static_cast<std::size_t>(
          rng.NextInt(0, static_cast<std::int64_t>(all_edges.size()) - 1));
      batch.push_back(all_edges[pick]);
      all_edges[pick] = all_edges.back();
      all_edges.pop_back();
    }
    std::string error;
    ASSERT_GE(state.RemoveEdges(batch, &error), 0) << error;
    const Graph updated(n, all_edges);
    ExpectStateMatchesFromScratch(state, updated, hhat, seeded.residuals,
                                  seeded.explicit_nodes);
  }
}

TEST_P(SbpIncrementalRandomTest, ReweightBatchesMatchFromScratch) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 389 + 29);
  const std::int64_t n = 25;
  const Graph start = RandomWeightedConnectedGraph(n, 10, 0.5, 2.0, seed);
  const DenseMatrix hhat = testing::RandomResidualCoupling(2, 0.2, seed + 1);
  const SeededBeliefs seeded = SeedPaperBeliefs(n, 2, 3, seed + 2);
  SbpState state = SbpState::FromGraph(start, hhat, seeded.residuals,
                                       seeded.explicit_nodes);
  std::vector<Edge> all_edges = start.edges();

  for (int round = 0; round < 3; ++round) {
    // Reweight a batch of distinct existing edges.
    std::vector<Edge> batch;
    std::vector<std::size_t> picked;
    while (batch.size() < 3) {
      const std::size_t pick = static_cast<std::size_t>(
          rng.NextInt(0, static_cast<std::int64_t>(all_edges.size()) - 1));
      if (std::find(picked.begin(), picked.end(), pick) != picked.end()) {
        continue;
      }
      picked.push_back(pick);
      const double weight = 0.25 + 1.5 * rng.NextDouble();
      all_edges[pick].weight = weight;
      batch.push_back({all_edges[pick].u, all_edges[pick].v, weight});
    }
    std::string error;
    ASSERT_GE(state.UpdateEdgeWeights(batch, &error), 0) << error;
    ExpectStateMatchesFromScratch(state, Graph(n, all_edges), hhat,
                                  seeded.residuals, seeded.explicit_nodes);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SbpIncrementalRandomTest,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace linbp
