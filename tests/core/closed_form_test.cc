#include "src/core/closed_form.h"

#include "gtest/gtest.h"
#include "src/core/coupling.h"
#include "src/la/kron_ops.h"
#include "src/graph/beliefs.h"
#include "src/graph/generators.h"
#include "tests/testing/test_util.h"

namespace linbp {
namespace {

using testing::ExpectMatrixNear;

TEST(ClosedFormTest, TwoNodeStarVariantHandValue) {
  // LinBP* on a single edge with Hhat = [[h, -h], [-h, h]] reduces to the
  // scalar system b1 = e1 + 2h b2, b2 = e2 + 2h b1, so
  // b1 = (e1 + 2h e2) / (1 - 4h^2).
  const double h = 0.1;
  const Graph g(2, {{0, 1, 1.0}});
  const DenseMatrix hhat{{h, -h}, {-h, h}};
  DenseMatrix e(2, 2);
  e.At(0, 0) = 0.05;
  e.At(0, 1) = -0.05;
  e.At(1, 0) = -0.02;
  e.At(1, 1) = 0.02;
  const DenseMatrix b =
      ClosedFormLinBpDense(g, hhat, e, LinBpVariant::kLinBpStar);
  const double denom = 1.0 - 4.0 * h * h;
  EXPECT_NEAR(b.At(0, 0), (0.05 + 2 * h * -0.02) / denom, 1e-12);
  EXPECT_NEAR(b.At(1, 0), (-0.02 + 2 * h * 0.05) / denom, 1e-12);
  EXPECT_NEAR(b.At(0, 1), -b.At(0, 0), 1e-12);
}

TEST(ClosedFormTest, SolutionSatisfiesFixedPointEquation) {
  // B = E + A B Hhat - D B Hhat^2 must hold exactly (Eq. 4).
  const Graph g = TorusExampleGraph();
  const DenseMatrix hhat = AuctionCoupling().ScaledResidual(0.1);
  const SeededBeliefs seeded = SeedPaperBeliefs(8, 3, 3, /*seed=*/11);
  const DenseMatrix b = ClosedFormLinBpDense(g, hhat, seeded.residuals);
  const DenseMatrix rhs = seeded.residuals.Add(
      LinBpPropagate(g.adjacency(), g.weighted_degrees(), hhat,
                     hhat.Multiply(hhat), b, /*with_echo=*/true));
  ExpectMatrixNear(b, rhs, 1e-11);
}

struct VariantCase {
  const char* name;
  LinBpVariant variant;
};

class ClosedFormVariantTest
    : public ::testing::TestWithParam<std::tuple<VariantCase, int>> {};

TEST_P(ClosedFormVariantTest, DenseMatchesIterativeUpdates) {
  const auto& [variant_case, seed] = GetParam();
  const Graph g = RandomConnectedGraph(9, 6, seed);
  const DenseMatrix hhat =
      testing::RandomResidualCoupling(3, 0.05, seed + 10);
  const SeededBeliefs seeded = SeedPaperBeliefs(9, 3, 3, seed + 20);

  const DenseMatrix dense =
      ClosedFormLinBpDense(g, hhat, seeded.residuals, variant_case.variant);

  LinBpOptions options;
  options.variant = variant_case.variant;
  options.max_iterations = 400;
  options.tolerance = 1e-14;
  const LinBpResult iterative = RunLinBp(g, hhat, seeded.residuals, options);
  ASSERT_TRUE(iterative.converged);
  ExpectMatrixNear(iterative.beliefs, dense, 1e-10);
}

TEST_P(ClosedFormVariantTest, DenseMatchesJacobiOperatorSolve) {
  const auto& [variant_case, seed] = GetParam();
  const Graph g = RandomWeightedConnectedGraph(8, 5, 0.5, 1.5, seed + 30);
  const DenseMatrix hhat =
      testing::RandomResidualCoupling(2, 0.08, seed + 40);
  const SeededBeliefs seeded = SeedPaperBeliefs(8, 2, 3, seed + 50);

  const DenseMatrix dense =
      ClosedFormLinBpDense(g, hhat, seeded.residuals, variant_case.variant);
  const ClosedFormIterativeResult jacobi = ClosedFormLinBpIterative(
      g, hhat, seeded.residuals, variant_case.variant, 500, 1e-14);
  ASSERT_TRUE(jacobi.converged);
  ExpectMatrixNear(jacobi.beliefs, dense, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    VariantsAndSeeds, ClosedFormVariantTest,
    ::testing::Combine(
        ::testing::Values(VariantCase{"LinBp", LinBpVariant::kLinBp},
                          VariantCase{"LinBpStar", LinBpVariant::kLinBpStar},
                          VariantCase{"LinBpExact",
                                      LinBpVariant::kLinBpExact}),
        ::testing::Range(0, 5)),
    [](const ::testing::TestParamInfo<std::tuple<VariantCase, int>>& info) {
      return std::string(std::get<0>(info.param).name) + "_" +
             std::to_string(std::get<1>(info.param));
    });

TEST(ClosedFormDeathTest, RejectsOversizedDenseSystem) {
  const Graph g = KroneckerPowerGraph(5);  // 243 nodes * 3 classes = 729 > 100
  const DenseMatrix hhat = AuctionCoupling().ScaledResidual(0.01);
  EXPECT_DEATH(ClosedFormLinBpDense(g, hhat, DenseMatrix(243, 3),
                                    LinBpVariant::kLinBp, /*max_dim=*/100),
               "too large");
}

}  // namespace
}  // namespace linbp
