#include "src/core/coupling_estimation.h"

#include <vector>

#include "gtest/gtest.h"
#include "src/graph/generators.h"
#include "src/util/random.h"
#include "tests/testing/test_util.h"

namespace linbp {
namespace {

using testing::ExpectMatrixNear;

// Generates a fully labeled graph whose edges are drawn according to a
// target coupling matrix: endpoints' classes are sampled from the joint
// distribution H(i, j) / k.
struct PlantedGraph {
  Graph graph;
  std::vector<int> labels;
};

PlantedGraph PlantGraph(const DenseMatrix& h, std::int64_t num_nodes,
                        std::int64_t num_edges, std::uint64_t seed) {
  const std::int64_t k = h.rows();
  Rng rng(seed);
  PlantedGraph out;
  out.labels.resize(num_nodes);
  for (auto& label : out.labels) {
    label = static_cast<int>(rng.NextBounded(k));
  }
  // Nodes bucketed by class for endpoint sampling.
  std::vector<std::vector<std::int64_t>> by_class(k);
  for (std::int64_t v = 0; v < num_nodes; ++v) {
    by_class[out.labels[v]].push_back(v);
  }
  std::vector<Edge> edges;
  std::vector<std::vector<bool>> used(num_nodes,
                                      std::vector<bool>(num_nodes, false));
  while (static_cast<std::int64_t>(edges.size()) < num_edges) {
    // Sample a class pair from the joint H(i, j)/k, then endpoints.
    const double u = rng.NextDouble();
    double acc = 0.0;
    std::int64_t ci = 0;
    std::int64_t cj = 0;
    for (std::int64_t i = 0; i < k && acc < u; ++i) {
      for (std::int64_t j = 0; j < k && acc < u; ++j) {
        acc += h.At(i, j) / static_cast<double>(k);
        ci = i;
        cj = j;
      }
    }
    if (by_class[ci].empty() || by_class[cj].empty()) continue;
    const std::int64_t a =
        by_class[ci][rng.NextBounded(by_class[ci].size())];
    const std::int64_t b =
        by_class[cj][rng.NextBounded(by_class[cj].size())];
    if (a == b || used[a][b]) continue;
    used[a][b] = used[b][a] = true;
    edges.push_back({a, b, 1.0});
  }
  out.graph = Graph(num_nodes, edges);
  return out;
}

TEST(SinkhornKnoppTest, AlreadyStochasticIsFixedPoint) {
  const DenseMatrix h{{0.7, 0.3}, {0.3, 0.7}};
  ExpectMatrixNear(SinkhornKnopp(h, 200, 1e-13), h, 1e-10);
}

TEST(SinkhornKnoppTest, BalancesRowsAndColumns) {
  const DenseMatrix m{{4.0, 1.0, 2.0}, {1.0, 3.0, 1.0}, {2.0, 1.0, 5.0}};
  const DenseMatrix balanced = SinkhornKnopp(m, 500, 1e-13);
  for (std::int64_t i = 0; i < 3; ++i) {
    double row = 0.0;
    double col = 0.0;
    for (std::int64_t j = 0; j < 3; ++j) {
      row += balanced.At(i, j);
      col += balanced.At(j, i);
    }
    EXPECT_NEAR(row, 1.0, 1e-9);
    EXPECT_NEAR(col, 1.0, 1e-9);
  }
  EXPECT_TRUE(balanced.IsSymmetric(1e-9));
}

TEST(SinkhornKnoppTest, PreservesSymmetry) {
  const DenseMatrix m = testing::RandomSymmetricMatrix(4, 0.4, 11)
                            .AddScalar(1.0);  // positive, symmetric
  EXPECT_TRUE(SinkhornKnopp(m, 500, 1e-13).IsSymmetric(1e-9));
}

TEST(EstimateCouplingTest, NoLabeledEdgesReturnsNullopt) {
  const Graph g = PathGraph(4);
  const std::vector<int> labels = {-1, 0, -1, 1};  // no labeled pair adjacent
  EXPECT_FALSE(EstimateCoupling(g, labels, 2).has_value());
}

TEST(EstimateCouplingTest, CountsAreSymmetricAndComplete) {
  const Graph g = PathGraph(4);
  const std::vector<int> labels = {0, 1, 1, 0};
  const auto estimate = EstimateCoupling(g, labels, 2);
  ASSERT_TRUE(estimate.has_value());
  EXPECT_EQ(estimate->observed_edges, 3);
  // Edges: (0,1): 0-1, (1,2): 1-1, (2,3): 1-0.
  EXPECT_EQ(estimate->counts.At(0, 1), 2.0);
  EXPECT_EQ(estimate->counts.At(1, 0), 2.0);
  EXPECT_EQ(estimate->counts.At(1, 1), 2.0);
  EXPECT_EQ(estimate->counts.At(0, 0), 0.0);
}

TEST(EstimateCouplingTest, WeightsActAsFractionalCounts) {
  const Graph g(2, {{0, 1, 2.5}});
  const std::vector<int> labels = {0, 0};
  const auto estimate = EstimateCoupling(g, labels, 2);
  ASSERT_TRUE(estimate.has_value());
  EXPECT_EQ(estimate->counts.At(0, 0), 5.0);  // both orientations
}

TEST(EstimateCouplingTest, PartialLabelsOnlyUseLabeledPairs) {
  const Graph g = PathGraph(5);
  const std::vector<int> labels = {0, 0, -1, 1, 1};
  const auto estimate = EstimateCoupling(g, labels, 2);
  ASSERT_TRUE(estimate.has_value());
  EXPECT_EQ(estimate->observed_edges, 2);  // 0-1 and 3-4
}

class EstimateRecoveryTest : public ::testing::TestWithParam<int> {};

TEST_P(EstimateRecoveryTest, RecoversPlantedCoupling) {
  const std::uint64_t seed = GetParam();
  // A clearly structured target: strong homophily for class 0, mild
  // heterophily between 1 and 2.
  const DenseMatrix target{{0.6, 0.3, 0.1},
                           {0.3, 0.0, 0.7},
                           {0.1, 0.7, 0.2}};
  const PlantedGraph planted = PlantGraph(target, 600, 8000, seed);
  CouplingEstimationOptions options;
  options.smoothing = 0.5;
  const auto estimate =
      EstimateCoupling(planted.graph, planted.labels, 3, options);
  ASSERT_TRUE(estimate.has_value());
  // With 8000 sampled edges the estimate lands within a few percent.
  ExpectMatrixNear(estimate->coupling.residual(),
                   target.AddScalar(-1.0 / 3.0), 0.05);
}

TEST_P(EstimateRecoveryTest, PartialLabelingStillRecovers) {
  const std::uint64_t seed = GetParam() + 100;
  const DenseMatrix target{{0.8, 0.2}, {0.2, 0.8}};
  PlantedGraph planted = PlantGraph(target, 500, 6000, seed);
  // Hide 50% of the labels.
  Rng rng(seed + 1);
  for (auto& label : planted.labels) {
    if (rng.NextBernoulli(0.5)) label = -1;
  }
  const auto estimate = EstimateCoupling(planted.graph, planted.labels, 2);
  ASSERT_TRUE(estimate.has_value());
  ExpectMatrixNear(estimate->coupling.residual(),
                   target.AddScalar(-0.5), 0.06);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EstimateRecoveryTest, ::testing::Range(0, 5));

}  // namespace
}  // namespace linbp
