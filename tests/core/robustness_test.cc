// Degenerate-input and failure-injection coverage across the public API:
// empty graphs, graphs with no labels, fully labeled graphs, single nodes,
// disconnected components, zero couplings, and zero-iteration runs. None of
// these may crash, and each has a well-defined result.

#include <cmath>

#include "gtest/gtest.h"
#include "src/core/bp.h"
#include "src/core/convergence.h"
#include "src/core/coupling.h"
#include "src/core/labeling.h"
#include "src/core/linbp.h"
#include "src/core/sbp.h"
#include "src/core/sbp_incremental.h"
#include "src/graph/beliefs.h"
#include "src/graph/generators.h"
#include "src/relational/linbp_sql.h"
#include "src/relational/sbp_sql.h"
#include "tests/testing/test_util.h"

namespace linbp {
namespace {

using testing::ExpectMatrixNear;

TEST(RobustnessTest, EdgelessGraphLinBp) {
  const Graph g(5, {});
  const DenseMatrix hhat = AuctionCoupling().ScaledResidual(0.1);
  DenseMatrix e(5, 3);
  e.At(2, 0) = 0.1;
  e.At(2, 1) = -0.1;
  const LinBpResult result = RunLinBp(g, hhat, e);
  EXPECT_TRUE(result.converged);
  // No propagation: beliefs equal the explicit beliefs.
  ExpectMatrixNear(result.beliefs, e, 1e-15);
}

TEST(RobustnessTest, EdgelessGraphBp) {
  const Graph g(4, {});
  const DenseMatrix h = HomophilyCoupling2().ScaledStochastic(0.3);
  DenseMatrix priors(4, 2);
  for (int v = 0; v < 4; ++v) {
    priors.At(v, 0) = 0.6;
    priors.At(v, 1) = 0.4;
  }
  const BpResult result = RunBp(g, h, priors);
  EXPECT_TRUE(result.converged);
  ExpectMatrixNear(result.beliefs, priors, 1e-15);
}

TEST(RobustnessTest, SingleNodeGraph) {
  const Graph g(1, {});
  const DenseMatrix hhat = HomophilyCoupling2().ScaledResidual(0.3);
  DenseMatrix e(1, 2);
  e.At(0, 0) = 0.2;
  e.At(0, 1) = -0.2;
  EXPECT_TRUE(RunLinBp(g, hhat, e).converged);
  const SbpResult sbp = RunSbp(g, hhat, e, {0});
  EXPECT_EQ(sbp.geodesic[0], 0);
  EXPECT_EQ(sbp.beliefs.At(0, 0), 0.2);
}

TEST(RobustnessTest, NoLabelsSbp) {
  const Graph g = PathGraph(5);
  const DenseMatrix hhat = HomophilyCoupling2().ScaledResidual(0.3);
  const SbpResult sbp = RunSbp(g, hhat, DenseMatrix(5, 2), {});
  for (int v = 0; v < 5; ++v) {
    EXPECT_EQ(sbp.geodesic[v], kUnreachable);
    EXPECT_EQ(sbp.beliefs.At(v, 0), 0.0);
  }
}

TEST(RobustnessTest, FullyLabeledSbp) {
  const Graph g = CycleGraph(6);
  const DenseMatrix hhat = HomophilyCoupling2().ScaledResidual(0.3);
  const SeededBeliefs seeded = SeedPaperBeliefs(6, 2, 6, /*seed=*/1);
  const SbpResult sbp =
      RunSbp(g, hhat, seeded.residuals, seeded.explicit_nodes);
  // Every node keeps its own explicit beliefs (geodesic 0 everywhere).
  EXPECT_EQ(sbp.max_geodesic, 0);
  ExpectMatrixNear(sbp.beliefs, seeded.residuals, 0.0);
}

TEST(RobustnessTest, ZeroCouplingFreezesPropagation) {
  const Graph g = PathGraph(4);
  const DenseMatrix zero(2, 2);
  DenseMatrix e(4, 2);
  e.At(0, 0) = 0.1;
  e.At(0, 1) = -0.1;
  const LinBpResult lin = RunLinBp(g, zero, e);
  EXPECT_TRUE(lin.converged);
  ExpectMatrixNear(lin.beliefs, e, 0.0);
  const SbpResult sbp = RunSbp(g, zero, e, {0});
  EXPECT_EQ(sbp.beliefs.At(1, 0), 0.0);  // modulated once through zero
}

TEST(RobustnessTest, ZeroIterationLinBpSqlReturnsExplicit) {
  const Graph g = PathGraph(3);
  const SeededBeliefs seeded = SeedPaperBeliefs(3, 3, 1, /*seed=*/2);
  const Table b = RunLinBpSql(
      MakeAdjacencyTable(g),
      MakeBeliefTable(seeded.residuals, seeded.explicit_nodes),
      MakeCouplingTable(AuctionCoupling().ScaledResidual(0.1)),
      /*iterations=*/0);
  ExpectMatrixNear(BeliefsFromTable(b, 3, 3), seeded.residuals, 0.0);
}

TEST(RobustnessTest, SbpSqlWithNoExplicitBeliefs) {
  const Graph g = PathGraph(4);
  Table e({"v", "c", "b"},
          {ColumnType::kInt, ColumnType::kInt, ColumnType::kDouble});
  const SbpSql sbp(MakeAdjacencyTable(g), e,
                   MakeCouplingTable(HomophilyCoupling2().residual()));
  EXPECT_EQ(sbp.geodesic().num_rows(), 0);
  EXPECT_EQ(sbp.beliefs().num_rows(), 0);
}

TEST(RobustnessTest, SbpStateOnEmptyGraphThenEdges) {
  // Build up a graph entirely through incremental updates.
  SbpState state(4, HomophilyCoupling2().ScaledResidual(0.4));
  DenseMatrix row(1, 2);
  row.At(0, 0) = 0.1;
  row.At(0, 1) = -0.1;
  state.AddExplicitBeliefs({0}, row);
  state.AddEdges({{0, 1, 1.0}});
  state.AddEdges({{1, 2, 1.0}, {2, 3, 1.0}});
  const Graph g = PathGraph(4);
  DenseMatrix e(4, 2);
  e.At(0, 0) = 0.1;
  e.At(0, 1) = -0.1;
  const SbpResult reference = RunSbp(
      g, HomophilyCoupling2().ScaledResidual(0.4), e, {0});
  EXPECT_EQ(state.geodesic(), reference.geodesic);
  ExpectMatrixNear(state.beliefs(), reference.beliefs, 1e-14);
}

TEST(RobustnessTest, DisconnectedComponentsStayIndependent) {
  // Two components, labels in only one; LinBP must leave the other at 0.
  const Graph g(6, {{0, 1, 1.0}, {1, 2, 1.0}, {3, 4, 1.0}, {4, 5, 1.0}});
  const DenseMatrix hhat = AuctionCoupling().ScaledResidual(0.1);
  DenseMatrix e(6, 3);
  e.At(0, 0) = 0.1;
  e.At(0, 1) = -0.05;
  e.At(0, 2) = -0.05;
  const LinBpResult result = RunLinBp(g, hhat, e);
  ASSERT_TRUE(result.converged);
  for (int v = 3; v < 6; ++v) {
    for (int c = 0; c < 3; ++c) EXPECT_EQ(result.beliefs.At(v, c), 0.0);
  }
}

TEST(RobustnessTest, ConvergenceAnalysisOnEdgelessGraph) {
  const Graph g(3, {});
  // rho(A) = 0: every scale converges; the threshold search must terminate
  // and report an infinite threshold instead of looping forever.
  const CouplingMatrix coupling = AuctionCoupling();
  EXPECT_EQ(AdjacencySpectralRadius(g), 0.0);
  EXPECT_TRUE(
      LinBpConverges(g, coupling.ScaledResidual(100.0), LinBpVariant::kLinBp));
  EXPECT_TRUE(std::isinf(
      ExactEpsilonThreshold(g, coupling, LinBpVariant::kLinBp)));
}

TEST(RobustnessTest, TopBeliefsOnEmptyMatrix) {
  const TopBeliefAssignment top = TopBeliefs(DenseMatrix(0, 0));
  EXPECT_TRUE(top.classes.empty());
  EXPECT_EQ(top.TotalBeliefs(), 0);
}

// Relabeling the nodes must permute the results and nothing else.
class PermutationEquivarianceTest : public ::testing::TestWithParam<int> {};

TEST_P(PermutationEquivarianceTest, LinBpAndSbpAreEquivariant) {
  const std::uint64_t seed = GetParam();
  const std::int64_t n = 18;
  const Graph g = RandomConnectedGraph(n, 14, seed);
  const DenseMatrix hhat = testing::RandomResidualCoupling(3, 0.1, seed + 1);
  const SeededBeliefs seeded = SeedPaperBeliefs(n, 3, 4, seed + 2);

  // Random permutation pi: new id of old node v is pi[v].
  Rng rng(seed + 3);
  std::vector<std::int64_t> pi(n);
  for (std::int64_t v = 0; v < n; ++v) pi[v] = v;
  for (std::int64_t v = n - 1; v > 0; --v) {
    std::swap(pi[v], pi[rng.NextInt(0, v)]);
  }
  std::vector<Edge> permuted_edges;
  for (const Edge& e : g.edges()) {
    permuted_edges.push_back({pi[e.u], pi[e.v], e.weight});
  }
  const Graph permuted(n, permuted_edges);
  DenseMatrix permuted_residuals(n, 3);
  std::vector<std::int64_t> permuted_explicit;
  for (const std::int64_t v : seeded.explicit_nodes) {
    permuted_explicit.push_back(pi[v]);
    for (int c = 0; c < 3; ++c) {
      permuted_residuals.At(pi[v], c) = seeded.residuals.At(v, c);
    }
  }

  const LinBpResult lin = RunLinBp(g, hhat, seeded.residuals);
  const LinBpResult lin_permuted =
      RunLinBp(permuted, hhat, permuted_residuals);
  ASSERT_TRUE(lin.converged && lin_permuted.converged);
  for (std::int64_t v = 0; v < n; ++v) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_NEAR(lin_permuted.beliefs.At(pi[v], c), lin.beliefs.At(v, c),
                  1e-12);
    }
  }

  const SbpResult sbp =
      RunSbp(g, hhat, seeded.residuals, seeded.explicit_nodes);
  const SbpResult sbp_permuted =
      RunSbp(permuted, hhat, permuted_residuals, permuted_explicit);
  for (std::int64_t v = 0; v < n; ++v) {
    EXPECT_EQ(sbp_permuted.geodesic[pi[v]], sbp.geodesic[v]);
    for (int c = 0; c < 3; ++c) {
      EXPECT_NEAR(sbp_permuted.beliefs.At(pi[v], c), sbp.beliefs.At(v, c),
                  1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PermutationEquivarianceTest,
                         ::testing::Range(0, 5));

TEST(RobustnessTest, SelfConsistencyUnderPermutedEdgeInput) {
  // Graph construction must not depend on edge order.
  std::vector<Edge> edges = {{0, 1, 1.0}, {1, 2, 2.0}, {0, 3, 0.5}};
  const Graph a(4, edges);
  std::reverse(edges.begin(), edges.end());
  const Graph b(4, edges);
  ExpectMatrixNear(a.adjacency().ToDense(), b.adjacency().ToDense(), 0.0);
}

}  // namespace
}  // namespace linbp
