#include "src/graph/dblp.h"

#include <cmath>

#include "gtest/gtest.h"
#include "src/core/sbp.h"

namespace linbp {
namespace {

DblpConfig SmallConfig() {
  DblpConfig config;
  config.num_papers = 400;
  config.num_authors = 420;
  config.num_conferences = 20;
  config.num_terms = 200;
  config.seed = 123;
  return config;
}

TEST(DblpTest, NodeLayout) {
  const DblpConfig config = SmallConfig();
  const DblpGraph dblp = MakeSyntheticDblp(config);
  const std::int64_t total = config.num_papers + config.num_authors +
                             config.num_conferences + config.num_terms;
  EXPECT_EQ(dblp.graph.num_nodes(), total);
  EXPECT_EQ(dblp.node_kind[0], DblpNodeKind::kPaper);
  EXPECT_EQ(dblp.node_kind[config.num_papers], DblpNodeKind::kAuthor);
  EXPECT_EQ(dblp.node_kind[config.num_papers + config.num_authors],
            DblpNodeKind::kConference);
  EXPECT_EQ(dblp.node_kind[total - 1], DblpNodeKind::kTerm);
}

TEST(DblpTest, ConferencesRoundRobinClasses) {
  const DblpConfig config = SmallConfig();
  const DblpGraph dblp = MakeSyntheticDblp(config);
  const std::int64_t conf_base = config.num_papers + config.num_authors;
  for (std::int64_t c = 0; c < config.num_conferences; ++c) {
    EXPECT_EQ(dblp.node_class[conf_base + c],
              static_cast<int>(c % config.num_classes));
  }
}

TEST(DblpTest, LabeledFractionApproximatesTarget) {
  const DblpConfig config = SmallConfig();
  const DblpGraph dblp = MakeSyntheticDblp(config);
  const double fraction =
      static_cast<double>(dblp.labeled_nodes.size()) /
      static_cast<double>(dblp.graph.num_nodes());
  EXPECT_NEAR(fraction, config.labeled_fraction, 0.01);
}

TEST(DblpTest, LabeledNodesHaveKnownClasses) {
  const DblpGraph dblp = MakeSyntheticDblp(SmallConfig());
  for (const std::int64_t node : dblp.labeled_nodes) {
    EXPECT_GE(dblp.node_class[node], 0) << node;
    EXPECT_LT(dblp.node_class[node], dblp.num_classes);
  }
}

TEST(DblpTest, EdgesOnlyConnectPapersToEntities) {
  // The graph is paper-centric: every edge touches exactly one paper.
  const DblpConfig config = SmallConfig();
  const DblpGraph dblp = MakeSyntheticDblp(config);
  for (const Edge& e : dblp.graph.edges()) {
    const bool u_is_paper = dblp.node_kind[e.u] == DblpNodeKind::kPaper;
    const bool v_is_paper = dblp.node_kind[e.v] == DblpNodeKind::kPaper;
    EXPECT_TRUE(u_is_paper != v_is_paper)
        << "edge " << e.u << "-" << e.v;
  }
}

TEST(DblpTest, EveryPaperHasConferenceAuthorsAndTerms) {
  const DblpConfig config = SmallConfig();
  const DblpGraph dblp = MakeSyntheticDblp(config);
  // Papers connect to >= 1 author + 1 conference + >= min_terms (some term
  // picks may collide, so allow a small slack).
  for (std::int64_t p = 0; p < config.num_papers; ++p) {
    EXPECT_GE(dblp.graph.Degree(p),
              1 + config.min_authors_per_paper + 1);
  }
}

TEST(DblpTest, NonIsolatedNodesAreReachableFromLabels) {
  // Zipf popularity leaves some tail authors/terms without any paper; those
  // are isolated by construction. Every node with an edge should be in the
  // labeled component (papers link everything through conferences).
  const DblpGraph dblp = MakeSyntheticDblp(SmallConfig());
  const auto geodesic = GeodesicNumbers(dblp.graph, dblp.labeled_nodes);
  std::int64_t connected = 0;
  std::int64_t reachable = 0;
  for (std::int64_t v = 0; v < dblp.graph.num_nodes(); ++v) {
    if (dblp.graph.Degree(v) == 0) continue;
    ++connected;
    if (geodesic[v] != kUnreachable) ++reachable;
  }
  EXPECT_GT(reachable, connected * 95 / 100);
}

TEST(DblpTest, Deterministic) {
  const DblpGraph a = MakeSyntheticDblp(SmallConfig());
  const DblpGraph b = MakeSyntheticDblp(SmallConfig());
  EXPECT_EQ(a.graph.num_directed_edges(), b.graph.num_directed_edges());
  EXPECT_EQ(a.labeled_nodes, b.labeled_nodes);
  EXPECT_EQ(a.node_class, b.node_class);
}

TEST(DblpTest, DifferentSeedsDiffer) {
  DblpConfig config = SmallConfig();
  const DblpGraph a = MakeSyntheticDblp(config);
  config.seed = 999;
  const DblpGraph b = MakeSyntheticDblp(config);
  EXPECT_NE(a.labeled_nodes, b.labeled_nodes);
}

TEST(DblpTest, DefaultScaleApproximatesPaperDataset) {
  // The defaults target ~36k nodes and ~300k+ directed edges (the paper's
  // DBLP subset has 36,138 nodes and 341,564 directed edges).
  const DblpConfig config;
  const std::int64_t total = config.num_papers + config.num_authors +
                             config.num_conferences + config.num_terms;
  EXPECT_NEAR(static_cast<double>(total), 36138.0, 600.0);
}

}  // namespace
}  // namespace linbp
