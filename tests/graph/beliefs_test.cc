#include "src/graph/beliefs.h"

#include <cmath>

#include "gtest/gtest.h"
#include "tests/testing/test_util.h"

namespace linbp {
namespace {

using testing::ExpectMatrixNear;
using testing::ExpectVectorNear;

TEST(BeliefConversionTest, ResidualToProbabilityAddsUniform) {
  DenseMatrix residual{{0.1, -0.1}, {0.0, 0.0}};
  ExpectMatrixNear(ResidualToProbability(residual),
                   DenseMatrix{{0.6, 0.4}, {0.5, 0.5}}, 1e-15);
}

TEST(BeliefConversionTest, RoundTrip) {
  const DenseMatrix residual = testing::RandomMatrix(4, 3, 0.05, 1);
  ExpectMatrixNear(ProbabilityToResidual(ResidualToProbability(residual)),
                   residual, 1e-15);
}

TEST(ExplicitResidualForClassTest, SumsToZero) {
  const auto r = ExplicitResidualForClass(4, 1, 0.8);
  double sum = 0.0;
  for (const double v : r) sum += v;
  EXPECT_NEAR(sum, 0.0, 1e-15);
  EXPECT_NEAR(r[1], 0.8 - 0.2, 1e-15);
  EXPECT_NEAR(r[0], -0.2, 1e-15);
}

TEST(ExplicitResidualForClassTest, StrengthOneIsOneHotProbability) {
  const auto r = ExplicitResidualForClass(2, 0, 1.0);
  EXPECT_NEAR(r[0] + 0.5, 1.0, 1e-15);
  EXPECT_NEAR(r[1] + 0.5, 0.0, 1e-15);
}

TEST(SeedPaperBeliefsTest, CountAndSortedNodes) {
  const SeededBeliefs seeded = SeedPaperBeliefs(100, 3, 12, /*seed=*/5);
  EXPECT_EQ(seeded.explicit_nodes.size(), 12u);
  for (std::size_t i = 1; i < seeded.explicit_nodes.size(); ++i) {
    EXPECT_LT(seeded.explicit_nodes[i - 1], seeded.explicit_nodes[i]);
  }
}

TEST(SeedPaperBeliefsTest, RowsAreCenteredResiduals) {
  const SeededBeliefs seeded = SeedPaperBeliefs(50, 3, 10, /*seed=*/6);
  for (const std::int64_t node : seeded.explicit_nodes) {
    double sum = 0.0;
    for (std::int64_t c = 0; c < 3; ++c) sum += seeded.residuals.At(node, c);
    EXPECT_NEAR(sum, 0.0, 1e-15);
  }
}

TEST(SeedPaperBeliefsTest, ValuesComeFromThePaperGrid) {
  // Without extra digits, the first k-1 classes use the grid
  // {-0.10, -0.09, ..., 0.10}.
  const SeededBeliefs seeded = SeedPaperBeliefs(50, 3, 20, /*seed=*/7);
  for (const std::int64_t node : seeded.explicit_nodes) {
    for (std::int64_t c = 0; c + 1 < 3; ++c) {
      const double v = seeded.residuals.At(node, c);
      EXPECT_LE(std::abs(v), 0.1 + 1e-12);
      const double hundredths = v * 100.0;
      EXPECT_NEAR(hundredths, std::round(hundredths), 1e-9);
    }
  }
}

TEST(SeedPaperBeliefsTest, UnlabeledRowsAreZero) {
  const SeededBeliefs seeded = SeedPaperBeliefs(30, 4, 5, /*seed=*/8);
  std::vector<bool> is_explicit(30, false);
  for (const std::int64_t node : seeded.explicit_nodes) {
    is_explicit[node] = true;
  }
  for (std::int64_t v = 0; v < 30; ++v) {
    if (is_explicit[v]) continue;
    for (std::int64_t c = 0; c < 4; ++c) {
      EXPECT_EQ(seeded.residuals.At(v, c), 0.0);
    }
  }
}

TEST(SeedPaperBeliefsTest, Deterministic) {
  const SeededBeliefs a = SeedPaperBeliefs(64, 3, 9, /*seed=*/42);
  const SeededBeliefs b = SeedPaperBeliefs(64, 3, 9, /*seed=*/42);
  EXPECT_EQ(a.explicit_nodes, b.explicit_nodes);
  EXPECT_EQ(a.residuals.MaxAbsDiff(b.residuals), 0.0);
}

TEST(SeedPaperBeliefsTest, ExtraDigitsBreakTies) {
  // The paper's tie-avoidance: extra digits make values like 0.0503.
  const SeededBeliefs seeded =
      SeedPaperBeliefs(50, 3, 20, /*seed=*/9, /*extra_digits=*/2);
  bool any_off_grid = false;
  for (const std::int64_t node : seeded.explicit_nodes) {
    const double v = seeded.residuals.At(node, 0);
    const double hundredths = v * 100.0;
    if (std::abs(hundredths - std::round(hundredths)) > 1e-9) {
      any_off_grid = true;
    }
  }
  EXPECT_TRUE(any_off_grid);
}

TEST(BeliefRowTest, ExtractsRow) {
  DenseMatrix m{{1, 2}, {3, 4}};
  ExpectVectorNear(BeliefRow(m, 1), {3.0, 4.0}, 0.0);
}

}  // namespace
}  // namespace linbp
