#include "src/graph/graph.h"

#include "gtest/gtest.h"
#include "src/graph/generators.h"
#include "tests/testing/test_util.h"

namespace linbp {
namespace {

using testing::ExpectVectorNear;

TEST(GraphTest, EmptyGraph) {
  const Graph g;
  EXPECT_EQ(g.num_nodes(), 0);
  EXPECT_EQ(g.num_directed_edges(), 0);
}

TEST(GraphTest, TriangleBasics) {
  const Graph g(3, {{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 1.0}});
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_undirected_edges(), 3);
  EXPECT_EQ(g.num_directed_edges(), 6);
  EXPECT_EQ(g.Degree(0), 2);
  EXPECT_TRUE(g.adjacency().IsSymmetric());
}

TEST(GraphTest, IsolatedNodesAllowed) {
  const Graph g(5, {{0, 1, 1.0}});
  EXPECT_EQ(g.Degree(4), 0);
  EXPECT_EQ(g.weighted_degrees()[4], 0.0);
}

TEST(GraphTest, EdgesAreNormalizedLowerFirst) {
  const Graph g(3, {{2, 0, 1.5}});
  ASSERT_EQ(g.edges().size(), 1u);
  EXPECT_EQ(g.edges()[0].u, 0);
  EXPECT_EQ(g.edges()[0].v, 2);
  EXPECT_EQ(g.adjacency().At(0, 2), 1.5);
  EXPECT_EQ(g.adjacency().At(2, 0), 1.5);
}

TEST(GraphTest, WeightedDegreesAreSumsOfSquaredWeights) {
  // Sect. 5.2: d_s = sum of squared weights (echo crosses edges twice).
  const Graph g(3, {{0, 1, 2.0}, {0, 2, 3.0}});
  ExpectVectorNear(g.weighted_degrees(), {13.0, 4.0, 9.0}, 1e-14);
}

TEST(GraphTest, UnweightedDegreesMatchPlainDegrees) {
  const Graph g = RandomConnectedGraph(20, 15, /*seed=*/7);
  for (std::int64_t s = 0; s < g.num_nodes(); ++s) {
    EXPECT_DOUBLE_EQ(g.weighted_degrees()[s],
                     static_cast<double>(g.Degree(s)));
  }
}

TEST(GraphDeathTest, RejectsSelfLoops) {
  EXPECT_DEATH(Graph(2, {{0, 0, 1.0}}), "self-loops");
}

TEST(GraphDeathTest, RejectsDuplicateEdges) {
  EXPECT_DEATH(Graph(3, {{0, 1, 1.0}, {1, 0, 2.0}}), "duplicate");
}

TEST(GraphDeathTest, RejectsOutOfRangeNodes) {
  EXPECT_DEATH(Graph(2, {{0, 5, 1.0}}), "");
}

TEST(ReverseEdgeIndexTest, SingleEdge) {
  const Graph g(2, {{0, 1, 1.0}});
  const auto reverse = ReverseEdgeIndex(g.adjacency());
  ASSERT_EQ(reverse.size(), 2u);
  EXPECT_EQ(reverse[0], 1);
  EXPECT_EQ(reverse[1], 0);
}

class ReverseEdgeIndexRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(ReverseEdgeIndexRandomTest, MirrorsEveryEntry) {
  const Graph g = RandomConnectedGraph(15, 20, GetParam());
  const SparseMatrix& a = g.adjacency();
  const auto reverse = ReverseEdgeIndex(a);
  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();
  for (std::int64_t s = 0; s < a.rows(); ++s) {
    for (std::int64_t e = row_ptr[s]; e < row_ptr[s + 1]; ++e) {
      const std::int64_t t = col_idx[e];
      const std::int64_t mirror = reverse[e];
      // The mirror entry lives in row t and points back at s.
      EXPECT_GE(mirror, row_ptr[t]);
      EXPECT_LT(mirror, row_ptr[t + 1]);
      EXPECT_EQ(col_idx[mirror], s);
      // reverse is an involution.
      EXPECT_EQ(reverse[mirror], e);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReverseEdgeIndexRandomTest,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace linbp
