#include "src/graph/graph.h"

#include <algorithm>

#include "gtest/gtest.h"
#include "src/graph/generators.h"
#include "tests/testing/test_util.h"

namespace linbp {
namespace {

using testing::ExpectVectorNear;

TEST(GraphTest, EmptyGraph) {
  const Graph g;
  EXPECT_EQ(g.num_nodes(), 0);
  EXPECT_EQ(g.num_directed_edges(), 0);
}

TEST(GraphTest, TriangleBasics) {
  const Graph g(3, {{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 1.0}});
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_undirected_edges(), 3);
  EXPECT_EQ(g.num_directed_edges(), 6);
  EXPECT_EQ(g.Degree(0), 2);
  EXPECT_TRUE(g.adjacency().IsSymmetric());
}

TEST(GraphTest, IsolatedNodesAllowed) {
  const Graph g(5, {{0, 1, 1.0}});
  EXPECT_EQ(g.Degree(4), 0);
  EXPECT_EQ(g.weighted_degrees()[4], 0.0);
}

TEST(GraphTest, EdgesAreNormalizedLowerFirst) {
  const Graph g(3, {{2, 0, 1.5}});
  ASSERT_EQ(g.edges().size(), 1u);
  EXPECT_EQ(g.edges()[0].u, 0);
  EXPECT_EQ(g.edges()[0].v, 2);
  EXPECT_EQ(g.adjacency().At(0, 2), 1.5);
  EXPECT_EQ(g.adjacency().At(2, 0), 1.5);
}

TEST(GraphTest, WeightedDegreesAreSumsOfSquaredWeights) {
  // Sect. 5.2: d_s = sum of squared weights (echo crosses edges twice).
  const Graph g(3, {{0, 1, 2.0}, {0, 2, 3.0}});
  ExpectVectorNear(g.weighted_degrees(), {13.0, 4.0, 9.0}, 1e-14);
}

TEST(GraphTest, UnweightedDegreesMatchPlainDegrees) {
  const Graph g = RandomConnectedGraph(20, 15, /*seed=*/7);
  for (std::int64_t s = 0; s < g.num_nodes(); ++s) {
    EXPECT_DOUBLE_EQ(g.weighted_degrees()[s],
                     static_cast<double>(g.Degree(s)));
  }
}

TEST(GraphDeathTest, RejectsSelfLoops) {
  EXPECT_DEATH(Graph(2, {{0, 0, 1.0}}), "self-loops");
}

TEST(GraphDeathTest, RejectsDuplicateEdges) {
  EXPECT_DEATH(Graph(3, {{0, 1, 1.0}, {1, 0, 2.0}}), "duplicate");
}

TEST(GraphDeathTest, RejectsOutOfRangeNodes) {
  EXPECT_DEATH(Graph(2, {{0, 5, 1.0}}), "");
}

TEST(ReverseEdgeIndexTest, SingleEdge) {
  const Graph g(2, {{0, 1, 1.0}});
  const auto reverse = ReverseEdgeIndex(g.adjacency());
  ASSERT_EQ(reverse.size(), 2u);
  EXPECT_EQ(reverse[0], 1);
  EXPECT_EQ(reverse[1], 0);
}

class ReverseEdgeIndexRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(ReverseEdgeIndexRandomTest, MirrorsEveryEntry) {
  const Graph g = RandomConnectedGraph(15, 20, GetParam());
  const SparseMatrix& a = g.adjacency();
  const auto reverse = ReverseEdgeIndex(a);
  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();
  for (std::int64_t s = 0; s < a.rows(); ++s) {
    for (std::int64_t e = row_ptr[s]; e < row_ptr[s + 1]; ++e) {
      const std::int64_t t = col_idx[e];
      const std::int64_t mirror = reverse[e];
      // The mirror entry lives in row t and points back at s.
      EXPECT_GE(mirror, row_ptr[t]);
      EXPECT_LT(mirror, row_ptr[t + 1]);
      EXPECT_EQ(col_idx[mirror], s);
      // reverse is an involution.
      EXPECT_EQ(reverse[mirror], e);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReverseEdgeIndexRandomTest,
                         ::testing::Range(0, 8));

TEST(GraphFromAdjacencyTest, ReconstructsEdgesAndDegrees) {
  const Graph original = RandomWeightedConnectedGraph(60, 80, 0.5, 2.0,
                                                      /*seed=*/21);
  const Graph rebuilt = Graph::FromAdjacency(original.adjacency());
  EXPECT_EQ(rebuilt.num_nodes(), original.num_nodes());
  EXPECT_EQ(rebuilt.num_undirected_edges(), original.num_undirected_edges());
  EXPECT_EQ(rebuilt.adjacency().row_ptr(), original.adjacency().row_ptr());
  EXPECT_EQ(rebuilt.adjacency().col_idx(), original.adjacency().col_idx());
  EXPECT_EQ(rebuilt.adjacency().values(), original.adjacency().values());
  EXPECT_EQ(rebuilt.weighted_degrees(), original.weighted_degrees());
  // The derived edge list is sorted by (u, v) with u < v and carries the
  // original weights.
  std::vector<Edge> expected = original.edges();
  std::sort(expected.begin(), expected.end(), [](const Edge& a,
                                                 const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  ASSERT_EQ(rebuilt.edges().size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(rebuilt.edges()[i].u, expected[i].u);
    EXPECT_EQ(rebuilt.edges()[i].v, expected[i].v);
    EXPECT_EQ(rebuilt.edges()[i].weight, expected[i].weight);
  }
}

TEST(GraphFromAdjacencyTest, ParallelReconstructionIsIdentical) {
  const Graph original = RandomWeightedConnectedGraph(80, 200, 0.5, 2.0,
                                                      /*seed=*/22);
  const Graph serial = Graph::FromAdjacency(original.adjacency(),
                                            exec::ExecContext::Serial());
  const Graph threaded = Graph::FromAdjacency(
      original.adjacency(), exec::ExecContext::WithThreads(4));
  EXPECT_EQ(serial.weighted_degrees(), threaded.weighted_degrees());
  ASSERT_EQ(serial.edges().size(), threaded.edges().size());
  for (std::size_t i = 0; i < serial.edges().size(); ++i) {
    EXPECT_EQ(serial.edges()[i].u, threaded.edges()[i].u);
    EXPECT_EQ(serial.edges()[i].v, threaded.edges()[i].v);
    EXPECT_EQ(serial.edges()[i].weight, threaded.edges()[i].weight);
  }
}

TEST(GraphFromAdjacencyDeathTest, RejectsAsymmetryAndSelfLoops) {
  // Asymmetric values.
  EXPECT_DEATH(Graph::FromAdjacency(SparseMatrix::FromTriplets(
                   2, 2, {{0, 1, 1.0}, {1, 0, 2.0}})),
               "not symmetric");
  // Diagonal entry.
  EXPECT_DEATH(Graph::FromAdjacency(SparseMatrix::FromTriplets(
                   2, 2, {{0, 0, 1.0}, {0, 1, 1.0}, {1, 0, 1.0}})),
               "self-loops");
  // Non-square.
  EXPECT_DEATH(Graph::FromAdjacency(SparseMatrix(2, 3)), "square");
}

}  // namespace
}  // namespace linbp
