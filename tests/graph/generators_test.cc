#include "src/graph/generators.h"

#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/convergence.h"
#include "src/core/sbp.h"

namespace linbp {
namespace {

std::int64_t Pow(std::int64_t base, int exp) {
  std::int64_t out = 1;
  for (int i = 0; i < exp; ++i) out *= base;
  return out;
}

TEST(KroneckerPowerGraphTest, MatchesFigure6aCounts) {
  // Fig. 6a: graph #g has 3^(g+4) nodes and 4^(g+4) adjacency entries.
  const struct {
    int index;
    std::int64_t nodes;
    std::int64_t entries;
  } expected[] = {
      {1, 243, 1024}, {2, 729, 4096}, {3, 2187, 16384}, {4, 6561, 65536}};
  for (const auto& row : expected) {
    const Graph g =
        KroneckerPowerGraph(KroneckerPowerForPaperIndex(row.index));
    EXPECT_EQ(g.num_nodes(), row.nodes) << "graph #" << row.index;
    EXPECT_EQ(g.num_directed_edges(), row.entries) << "graph #" << row.index;
  }
}

TEST(KroneckerPowerGraphTest, PowerOneIsPathP3) {
  const Graph g = KroneckerPowerGraph(1);
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_directed_edges(), 4);
  EXPECT_EQ(g.adjacency().At(0, 1), 1.0);
  EXPECT_EQ(g.adjacency().At(1, 2), 1.0);
  EXPECT_EQ(g.adjacency().At(0, 2), 0.0);
}

TEST(KroneckerPowerGraphTest, GeneralSizesFollowPowers) {
  for (int power = 1; power <= 6; ++power) {
    const Graph g = KroneckerPowerGraph(power);
    EXPECT_EQ(g.num_nodes(), Pow(3, power));
    EXPECT_EQ(g.num_directed_edges(), Pow(4, power));
  }
}

TEST(KroneckerPowerGraphTest, AdjacencyIsKroneckerProductOfSeed) {
  // A^(x)2 (u,v) entry = seed(u1,v1) * seed(u0,v0) in base-3 digits.
  const Graph g = KroneckerPowerGraph(2);
  const auto seed = [](std::int64_t a, std::int64_t b) {
    return (a == 1 && b != 1) || (b == 1 && a != 1) ? 1.0 : 0.0;
  };
  for (std::int64_t u = 0; u < 9; ++u) {
    for (std::int64_t v = 0; v < 9; ++v) {
      const double expected =
          seed(u / 3, v / 3) * seed(u % 3, v % 3);
      EXPECT_EQ(g.adjacency().At(u, v), expected) << u << "," << v;
    }
  }
}

TEST(KroneckerPowerGraphTest, SpectralRadiusIsPowerOfSqrt2) {
  // rho(P3) = sqrt(2); Kronecker powers multiply spectral radii.
  const Graph g = KroneckerPowerGraph(5);
  EXPECT_NEAR(AdjacencySpectralRadius(g), std::pow(std::sqrt(2.0), 5), 1e-5);
}

TEST(TorusExampleGraphTest, StructureMatchesExample20) {
  const Graph g = TorusExampleGraph();
  EXPECT_EQ(g.num_nodes(), 8);
  EXPECT_EQ(g.num_undirected_edges(), 8);
  // Outer nodes v1..v4 have degree 1, inner nodes v5..v8 degree 3.
  for (int v = 0; v < 4; ++v) EXPECT_EQ(g.Degree(v), 1) << v;
  for (int v = 4; v < 8; ++v) EXPECT_EQ(g.Degree(v), 3) << v;
  // rho(A) = 1 + sqrt(2) ~ 2.414 (Example 20).
  EXPECT_NEAR(AdjacencySpectralRadius(g), 1.0 + std::sqrt(2.0), 1e-6);
}

TEST(TorusExampleGraphTest, GeodesicStructureOfExample20) {
  const Graph g = TorusExampleGraph();
  // Explicit beliefs at v1, v2, v3 (nodes 0, 1, 2).
  const auto geodesic = GeodesicNumbers(g, {0, 1, 2});
  const std::vector<std::int64_t> expected = {0, 0, 0, 3, 1, 1, 1, 2};
  EXPECT_EQ(geodesic, expected);
}

TEST(Figure5ExampleGraphTest, GeodesicNumbersMatchExample16) {
  const Graph g = Figure5ExampleGraph();
  EXPECT_EQ(g.num_nodes(), 7);
  // Explicit beliefs at v2 and v7 (nodes 1 and 6).
  const auto geodesic = GeodesicNumbers(g, {1, 6});
  const std::vector<std::int64_t> expected = {2, 0, 1, 1, 2, 1, 0};
  EXPECT_EQ(geodesic, expected);
}

TEST(PathGraphTest, Structure) {
  const Graph g = PathGraph(4);
  EXPECT_EQ(g.num_undirected_edges(), 3);
  EXPECT_EQ(g.Degree(0), 1);
  EXPECT_EQ(g.Degree(1), 2);
}

TEST(CycleGraphTest, Structure) {
  const Graph g = CycleGraph(5);
  EXPECT_EQ(g.num_undirected_edges(), 5);
  for (std::int64_t v = 0; v < 5; ++v) EXPECT_EQ(g.Degree(v), 2);
  EXPECT_NEAR(AdjacencySpectralRadius(g), 2.0, 1e-8);
}

TEST(BinaryTreeGraphTest, Structure) {
  const Graph g = BinaryTreeGraph(7);
  EXPECT_EQ(g.num_undirected_edges(), 6);
  EXPECT_EQ(g.Degree(0), 2);   // root
  EXPECT_EQ(g.Degree(1), 3);   // internal
  EXPECT_EQ(g.Degree(6), 1);   // leaf
}

TEST(GridGraphTest, Structure) {
  const Graph g = GridGraph(3, 4);
  EXPECT_EQ(g.num_nodes(), 12);
  // 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8.
  EXPECT_EQ(g.num_undirected_edges(), 17);
  EXPECT_EQ(g.Degree(0), 2);  // corner
  EXPECT_EQ(g.Degree(5), 4);  // interior
}

TEST(ErdosRenyiGraphTest, EdgeCountAndDeterminism) {
  const Graph g1 = ErdosRenyiGraph(30, 50, /*seed=*/11);
  const Graph g2 = ErdosRenyiGraph(30, 50, /*seed=*/11);
  EXPECT_EQ(g1.num_undirected_edges(), 50);
  ASSERT_EQ(g1.edges().size(), g2.edges().size());
  for (std::size_t i = 0; i < g1.edges().size(); ++i) {
    EXPECT_EQ(g1.edges()[i].u, g2.edges()[i].u);
    EXPECT_EQ(g1.edges()[i].v, g2.edges()[i].v);
  }
}

TEST(RandomConnectedGraphTest, IsConnected) {
  const Graph g = RandomConnectedGraph(40, 10, /*seed=*/13);
  EXPECT_EQ(g.num_undirected_edges(), 49);
  const auto geodesic = GeodesicNumbers(g, {0});
  for (std::int64_t v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NE(geodesic[v], kUnreachable) << v;
  }
}

TEST(RandomWeightedConnectedGraphTest, WeightsInRange) {
  const Graph g =
      RandomWeightedConnectedGraph(20, 10, 0.5, 2.0, /*seed=*/17);
  for (const Edge& e : g.edges()) {
    EXPECT_GE(e.weight, 0.5);
    EXPECT_LE(e.weight, 2.0);
  }
}

}  // namespace
}  // namespace linbp
