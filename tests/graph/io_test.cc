#include "src/graph/io.h"

#include <cstdio>
#include <fstream>
#include <string>

#include "gtest/gtest.h"
#include "src/graph/generators.h"
#include "tests/testing/test_util.h"

namespace linbp {
namespace {

using testing::ExpectMatrixNear;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

TEST(EdgeListIoTest, RoundTrip) {
  const Graph original = RandomWeightedConnectedGraph(20, 15, 0.5, 2.0, 3);
  const std::string path = TempPath("roundtrip.edges");
  ASSERT_TRUE(WriteEdgeList(original, path));
  std::string error;
  const auto loaded = ReadEdgeList(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->num_nodes(), original.num_nodes());
  EXPECT_EQ(loaded->num_undirected_edges(), original.num_undirected_edges());
  ExpectMatrixNear(loaded->adjacency().ToDense(),
                   original.adjacency().ToDense(), 1e-12);
}

TEST(EdgeListIoTest, DefaultWeightIsOne) {
  const std::string path = TempPath("unweighted.edges");
  WriteFile(path, "0 1\n1 2\n");
  std::string error;
  const auto graph = ReadEdgeList(path, &error);
  ASSERT_TRUE(graph.has_value()) << error;
  EXPECT_EQ(graph->num_nodes(), 3);
  EXPECT_EQ(graph->adjacency().At(0, 1), 1.0);
}

TEST(EdgeListIoTest, CommentsAndBlanksIgnored) {
  const std::string path = TempPath("comments.edges");
  WriteFile(path, "# header\n\n0 1 2.5\n  \n# tail\n");
  std::string error;
  const auto graph = ReadEdgeList(path, &error);
  ASSERT_TRUE(graph.has_value()) << error;
  EXPECT_EQ(graph->num_undirected_edges(), 1);
  EXPECT_EQ(graph->adjacency().At(1, 0), 2.5);
}

TEST(EdgeListIoTest, NumNodesHintKeepsIsolatedNodes) {
  const std::string path = TempPath("hint.edges");
  WriteFile(path, "0 1\n");
  std::string error;
  const auto graph = ReadEdgeList(path, &error, /*num_nodes_hint=*/5);
  ASSERT_TRUE(graph.has_value()) << error;
  EXPECT_EQ(graph->num_nodes(), 5);
}

TEST(EdgeListIoTest, ReportsMissingFile) {
  std::string error;
  EXPECT_FALSE(ReadEdgeList(TempPath("nope.edges"), &error).has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

TEST(EdgeListIoTest, ReportsMalformedLine) {
  const std::string path = TempPath("bad.edges");
  WriteFile(path, "0 x\n");
  std::string error;
  EXPECT_FALSE(ReadEdgeList(path, &error).has_value());
  EXPECT_NE(error.find(":1:"), std::string::npos);
}

TEST(EdgeListIoTest, ReportsSelfLoopAndDuplicate) {
  const std::string self_loop = TempPath("selfloop.edges");
  WriteFile(self_loop, "2 2\n");
  std::string error;
  EXPECT_FALSE(ReadEdgeList(self_loop, &error).has_value());
  EXPECT_NE(error.find("self-loop"), std::string::npos);

  const std::string duplicate = TempPath("dup.edges");
  WriteFile(duplicate, "0 1\n1 0\n");
  EXPECT_FALSE(ReadEdgeList(duplicate, &error).has_value());
  EXPECT_NE(error.find("duplicate"), std::string::npos);
}

TEST(EdgeListIoTest, ReportsNegativeNodeIdWithLineNumber) {
  const std::string path = TempPath("negative.edges");
  WriteFile(path, "0 1\n-2 3\n");
  std::string error;
  EXPECT_FALSE(ReadEdgeList(path, &error).has_value());
  EXPECT_NE(error.find(":2:"), std::string::npos) << error;
  EXPECT_NE(error.find("negative node id"), std::string::npos) << error;
}

TEST(EdgeListIoTest, ReportsNonFiniteWeightWithLineNumber) {
  for (const char* bad : {"0 1 nan\n", "0 1 inf\n", "0 1 -inf\n"}) {
    const std::string path = TempPath("nonfinite.edges");
    WriteFile(path, bad);
    std::string error;
    EXPECT_FALSE(ReadEdgeList(path, &error).has_value()) << bad;
    EXPECT_NE(error.find(":1:"), std::string::npos) << error;
    EXPECT_NE(error.find("non-finite"), std::string::npos) << error;
  }
}

TEST(EdgeListIoTest, DuplicateErrorCarriesLineNumber) {
  const std::string path = TempPath("dupline.edges");
  WriteFile(path, "0 1\n1 2\n1 0\n");
  std::string error;
  EXPECT_FALSE(ReadEdgeList(path, &error).has_value());
  EXPECT_NE(error.find(":3:"), std::string::npos) << error;
}

TEST(BeliefIoTest, RoundTrip) {
  const SeededBeliefs original = SeedPaperBeliefs(30, 3, 6, /*seed=*/9);
  const std::string path = TempPath("beliefs.txt");
  ASSERT_TRUE(WriteBeliefs(original.residuals, original.explicit_nodes,
                           path));
  std::string error;
  const auto loaded = ReadBeliefs(path, 30, 3, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->explicit_nodes, original.explicit_nodes);
  ExpectMatrixNear(loaded->residuals, original.residuals, 1e-15);
}

TEST(BeliefIoTest, RangeChecked) {
  const std::string path = TempPath("beliefs_bad.txt");
  WriteFile(path, "5 0 0.1\n");
  std::string error;
  EXPECT_FALSE(ReadBeliefs(path, 5, 3, &error).has_value());
  EXPECT_NE(error.find("out of range"), std::string::npos);
}

TEST(BeliefIoTest, ReportsNonFiniteBeliefWithLineNumber) {
  const std::string path = TempPath("beliefs_nonfinite.txt");
  WriteFile(path, "0 0 0.1\n1 1 nan\n");
  std::string error;
  EXPECT_FALSE(ReadBeliefs(path, 5, 3, &error).has_value());
  EXPECT_NE(error.find(":2:"), std::string::npos) << error;
  EXPECT_NE(error.find("non-finite"), std::string::npos) << error;
}

TEST(LabelIoTest, RoundTrip) {
  const std::vector<int> labels = {0, -1, 2, 1, -1};
  const std::string path = TempPath("labels.txt");
  ASSERT_TRUE(WriteLabels(labels, path));
  std::string error;
  const auto loaded = ReadLabels(path, 5, 3, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(*loaded, labels);
}

TEST(LabelIoTest, RangeChecked) {
  const std::string path = TempPath("labels_bad.txt");
  WriteFile(path, "0 0\n1 7\n");
  std::string error;
  EXPECT_FALSE(ReadLabels(path, 5, 3, &error).has_value());
  EXPECT_NE(error.find(":2:"), std::string::npos) << error;
  EXPECT_NE(error.find("out of range"), std::string::npos) << error;
}

TEST(BeliefIoTest, FullPrecisionRoundTrip) {
  DenseMatrix residuals(2, 2);
  residuals.At(0, 0) = 0.1234567890123456789;
  residuals.At(0, 1) = -0.1234567890123456789;
  const std::string path = TempPath("precision.txt");
  ASSERT_TRUE(WriteBeliefs(residuals, {0}, path));
  std::string error;
  const auto loaded = ReadBeliefs(path, 2, 2, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->residuals.At(0, 0), residuals.At(0, 0));
}

}  // namespace
}  // namespace linbp
