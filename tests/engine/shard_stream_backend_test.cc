// The out-of-core acceptance suite: streamed LinBP over a multi-shard
// scenario must be bit-identical to the in-memory run at every thread
// count, with no more than two shard blocks' CSR bytes resident at once,
// and corruption appearing mid-stream must surface as an error return
// with the solver state intact.

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/convergence.h"
#include "src/core/coupling.h"
#include "src/core/fabp.h"
#include "src/core/linbp.h"
#include "src/core/linbp_incremental.h"
#include "src/dataset/registry.h"
#include "src/dataset/shard.h"
#include "src/engine/shard_stream_backend.h"
#include "src/obs/metrics.h"
#include "tests/testing/test_util.h"

namespace linbp {
namespace {

using linbp::testing::ReadBytes;
using linbp::testing::WriteBytes;

constexpr char kSpec[] = "sbm:n=1200,k=4,deg=8,mode=homophily,seed=3";
constexpr std::int64_t kShards = 5;

dataset::Scenario TestScenario() {
  std::string error;
  auto scenario = dataset::MakeScenario(kSpec, &error);
  EXPECT_TRUE(scenario.has_value()) << error;
  return std::move(*scenario);
}

// Shards the test scenario into a fresh temp dir; returns the manifest.
std::string ShardScenario(const dataset::Scenario& scenario,
                          const std::string& name,
                          dataset::ShardCompression compression =
                              dataset::ShardCompression::kNone) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::string error;
  const auto result =
      dataset::ShardSnapshot(scenario, kShards, dir, &error, compression);
  EXPECT_TRUE(result.has_value()) << error;
  EXPECT_EQ(result->num_shards, kShards);
  return result.has_value() ? result->manifest_path : "";
}

engine::ShardStreamBackend OpenBackend(const std::string& manifest,
                                       const exec::ExecContext& ctx =
                                           exec::ExecContext::Serial(),
                                       std::int64_t cache_budget = 0) {
  std::string error;
  auto backend =
      engine::ShardStreamBackend::Open(manifest, &error, ctx, cache_budget);
  EXPECT_TRUE(backend.has_value()) << error;
  return std::move(*backend);
}

TEST(ShardStreamBackendTest, OpenDerivesScenarioInputs) {
  const dataset::Scenario scenario = TestScenario();
  const std::string manifest = ShardScenario(scenario, "stream_open");
  const engine::ShardStreamBackend backend = OpenBackend(manifest);

  EXPECT_EQ(backend.num_nodes(), scenario.graph.num_nodes());
  EXPECT_EQ(backend.num_stored_entries(),
            scenario.graph.num_directed_edges());
  EXPECT_EQ(backend.k(), scenario.k);
  EXPECT_EQ(backend.name(), scenario.name);
  EXPECT_EQ(backend.weighted_degrees(), scenario.graph.weighted_degrees());
  EXPECT_EQ(backend.explicit_nodes(), scenario.explicit_nodes);
  EXPECT_EQ(
      backend.explicit_residuals().MaxAbsDiff(scenario.explicit_residuals),
      0.0);
  EXPECT_EQ(backend.coupling_residual().MaxAbsDiff(
                scenario.coupling_residual),
            0.0);
  ASSERT_TRUE(backend.HasGroundTruth());
  EXPECT_EQ(backend.ground_truth(), scenario.ground_truth);
}

TEST(ShardStreamBackendTest, ProductsMatchInMemoryBitForBit) {
  const dataset::Scenario scenario = TestScenario();
  const std::string manifest = ShardScenario(scenario, "stream_products");
  for (const int threads : {1, 4}) {
    const exec::ExecContext ctx = exec::ExecContext::WithThreads(threads);
    const engine::ShardStreamBackend backend = OpenBackend(manifest, ctx);
    const DenseMatrix b =
        testing::RandomMatrix(scenario.graph.num_nodes(), scenario.k, 0.3,
                              77);
    DenseMatrix ab;
    std::string error;
    ASSERT_TRUE(backend.MultiplyDense(b, ctx, &ab, &error)) << error;
    EXPECT_EQ(ab.MaxAbsDiff(scenario.graph.adjacency().MultiplyDense(b)),
              0.0)
        << "threads=" << threads;

    std::vector<double> x(scenario.graph.num_nodes());
    for (std::size_t i = 0; i < x.size(); ++i) x[i] = 0.001 * i - 0.7;
    std::vector<double> ax;
    ASSERT_TRUE(backend.MultiplyVector(x, ctx, &ax, &error)) << error;
    EXPECT_EQ(ax, scenario.graph.adjacency().MultiplyVector(x))
        << "threads=" << threads;
  }
}

// The headline acceptance criterion: RunLinBp over a >= 4-shard scenario
// is bit-identical to the in-memory run under LINBP_THREADS=1 and 4,
// while the reader's byte counter proves at most 2 blocks' CSR stayed
// resident.
TEST(ShardStreamBackendTest, StreamedLinBpBitIdenticalAndResidencyBounded) {
  const dataset::Scenario scenario = TestScenario();
  const std::string manifest = ShardScenario(scenario, "stream_linbp");
  const CouplingMatrix coupling = scenario.Coupling();
  const double eps =
      0.5 * ExactEpsilonThreshold(scenario.graph, coupling,
                                  LinBpVariant::kLinBp);
  const DenseMatrix hhat = coupling.ScaledResidual(eps);

  LinBpOptions reference_options;
  const LinBpResult reference =
      RunLinBp(scenario.graph, hhat, scenario.explicit_residuals,
               reference_options);
  ASSERT_TRUE(reference.converged);
  ASSERT_GE(reference.iterations, 3);

  for (const int threads : {1, 4}) {
    const exec::ExecContext ctx = exec::ExecContext::WithThreads(threads);
    const engine::ShardStreamBackend backend = OpenBackend(manifest, ctx);
    LinBpOptions options;
    options.exec = ctx;
    const LinBpResult streamed =
        RunLinBp(backend, hhat, backend.explicit_residuals(), options);
    ASSERT_FALSE(streamed.failed) << streamed.error;
    EXPECT_TRUE(streamed.converged);
    EXPECT_EQ(streamed.iterations, reference.iterations)
        << "threads=" << threads;
    EXPECT_EQ(streamed.beliefs.MaxAbsDiff(reference.beliefs), 0.0)
        << "threads=" << threads;

    // Peak residency: never more than two blocks' CSR bytes at once,
    // and everything released when the solve is done.
    const dataset::ShardStreamReader& reader = backend.reader();
    EXPECT_GT(reader.peak_resident_csr_bytes(), 0);
    EXPECT_LE(reader.peak_resident_csr_bytes(),
              2 * reader.max_block_csr_bytes())
        << "threads=" << threads;
    EXPECT_EQ(reader.resident_csr_bytes(), 0) << "threads=" << threads;
  }
}

TEST(ShardStreamBackendTest, ByteAccountingSumsConsistently) {
  obs::Registry& registry = obs::Registry::Global();
  const dataset::Scenario scenario = TestScenario();
  const std::string manifest = ShardScenario(scenario, "stream_accounting");

  const std::int64_t blocks_before =
      registry.GetCounter("shard_stream_blocks_read_total").Value();
  const std::int64_t bytes_before =
      registry.GetCounter("shard_stream_bytes_read_total").Value();
  const std::int64_t csr_before =
      registry.GetCounter("shard_stream_csr_bytes_total").Value();

  const engine::ShardStreamBackend backend = OpenBackend(manifest);
  const dataset::ShardStreamReader& reader = backend.reader();

  // Open() streams every shard exactly once to derive the solver inputs.
  EXPECT_EQ(reader.blocks_read_total(), kShards);
  std::int64_t expected_csr = 0;
  for (std::int64_t s = 0; s < kShards; ++s) {
    expected_csr += reader.block_csr_bytes(s);
  }
  EXPECT_EQ(reader.csr_bytes_read_total(), expected_csr);
  EXPECT_GE(reader.file_bytes_read_total(), expected_csr);
  EXPECT_EQ(reader.checksum_retries_total(), 0);

  // One more full pass adds exactly one more round of every total.
  std::vector<double> x(scenario.graph.num_nodes(), 1.0);
  std::vector<double> y;
  std::string error;
  ASSERT_TRUE(
      backend.MultiplyVector(x, exec::ExecContext::Serial(), &y, &error))
      << error;
  EXPECT_EQ(reader.blocks_read_total(), 2 * kShards);
  EXPECT_EQ(reader.csr_bytes_read_total(), 2 * expected_csr);

  // The global registry advanced by exactly the reader's own totals —
  // the per-reader and process-wide views of the stream sum consistently.
  EXPECT_EQ(
      registry.GetCounter("shard_stream_blocks_read_total").Value() -
          blocks_before,
      reader.blocks_read_total());
  EXPECT_EQ(registry.GetCounter("shard_stream_bytes_read_total").Value() -
                bytes_before,
            reader.file_bytes_read_total());
  EXPECT_EQ(registry.GetCounter("shard_stream_csr_bytes_total").Value() -
                csr_before,
            reader.csr_bytes_read_total());
}

TEST(ShardStreamBackendTest, StreamedFabpMatchesInMemory) {
  const dataset::Scenario scenario = TestScenario();
  const std::string manifest = ShardScenario(scenario, "stream_fabp");
  const engine::ShardStreamBackend backend = OpenBackend(manifest);
  std::vector<double> priors(scenario.graph.num_nodes(), 0.0);
  for (const std::int64_t v : scenario.explicit_nodes) {
    priors[v] = scenario.explicit_residuals.At(v, 0);
  }
  const FabpResult in_memory = RunFabp(scenario.graph, 0.02, priors);
  const FabpResult streamed = RunFabp(backend, 0.02, priors);
  ASSERT_FALSE(streamed.failed) << streamed.error;
  EXPECT_EQ(in_memory.iterations, streamed.iterations);
  EXPECT_EQ(in_memory.beliefs, streamed.beliefs);
}

TEST(ShardStreamBackendTest, SpectralRadiusMatchesInMemory) {
  const dataset::Scenario scenario = TestScenario();
  const std::string manifest = ShardScenario(scenario, "stream_rho");
  const engine::ShardStreamBackend backend = OpenBackend(manifest);
  EXPECT_EQ(AdjacencySpectralRadius(scenario.graph),
            AdjacencySpectralRadius(backend));
  // kLinBpStar: the closed form needs one streamed power iteration; the
  // kLinBp bisection would stream hundreds (too slow under TSan) while
  // exercising the exact same backend code path.
  const CouplingMatrix coupling = scenario.Coupling();
  EXPECT_EQ(ExactEpsilonThreshold(scenario.graph, coupling,
                                  LinBpVariant::kLinBpStar),
            ExactEpsilonThreshold(backend, coupling,
                                  LinBpVariant::kLinBpStar));
}

// Corruption appearing between sweeps: the state solved two sweeps cold;
// the re-solve's first propagation — the third sweep the backend ever
// streams — hits the bad checksum. The update must fail with the state
// rolled back, and succeed again once the bytes are restored.
TEST(ShardStreamBackendTest, ChecksumCorruptionMidStreamKeepsStateIntact) {
  const dataset::Scenario scenario = TestScenario();
  const std::string manifest = ShardScenario(scenario, "stream_corrupt");
  const std::string shard2 =
      std::filesystem::path(manifest).parent_path() /
      dataset::ShardFileName(2);
  const CouplingMatrix coupling = scenario.Coupling();
  const double eps =
      0.5 * ExactEpsilonThreshold(scenario.graph, coupling,
                                  LinBpVariant::kLinBp);

  auto backend = std::make_shared<engine::ShardStreamBackend>(
      OpenBackend(manifest));
  LinBpOptions options;
  options.max_iterations = 2;  // cold start = sweeps 1 and 2
  LinBpState state(backend, coupling.ScaledResidual(eps),
                   backend->explicit_residuals(), options);
  EXPECT_EQ(state.cold_start_iterations(), 2);
  const DenseMatrix before = state.beliefs();

  // Flip one payload byte of shard 2 — every later read fails its
  // checksum.
  const std::vector<char> pristine = ReadBytes(shard2);
  std::vector<char> corrupted = pristine;
  corrupted[64 + 100] ^= 0x20;
  WriteBytes(shard2, corrupted);

  const std::vector<std::int64_t> nodes = {1, 2};
  const DenseMatrix update = testing::RandomMatrix(2, scenario.k, 0.2, 99);
  EXPECT_EQ(state.UpdateExplicitBeliefs(nodes, update), -1);
  EXPECT_NE(state.last_error().find("checksum mismatch"), std::string::npos)
      << state.last_error();
  // State intact: beliefs untouched, no leaked blocks.
  EXPECT_EQ(state.beliefs().MaxAbsDiff(before), 0.0);
  EXPECT_EQ(backend->reader().resident_csr_bytes(), 0);

  // RunLinBp on the corrupted manifest fails before applying any sweep.
  const LinBpResult failed =
      RunLinBp(*backend, coupling.ScaledResidual(eps),
               backend->explicit_residuals(), LinBpOptions{});
  EXPECT_TRUE(failed.failed);
  EXPECT_NE(failed.error.find("checksum mismatch"), std::string::npos);
  EXPECT_EQ(failed.beliefs.MaxAbsDiff(backend->explicit_residuals()), 0.0);

  // Restoring the bytes restores service on the SAME backend handle.
  WriteBytes(shard2, pristine);
  EXPECT_GT(state.UpdateExplicitBeliefs(nodes, update), 0);
  EXPECT_TRUE(state.last_error().empty());
  EXPECT_EQ(backend->reader().resident_csr_bytes(), 0);
}

// Compressed (v2) shards feed the exact same solves: streamed LinBP over
// delta+varint shards is bit-identical to the in-memory run at 1 and 4
// threads, with the decoded-block cache on and off.
TEST(ShardStreamBackendTest, CompressedStreamBitIdenticalCacheOnAndOff) {
  const dataset::Scenario scenario = TestScenario();
  const std::string manifest = ShardScenario(
      scenario, "stream_v2_linbp", dataset::ShardCompression::kF64);
  const CouplingMatrix coupling = scenario.Coupling();
  const double eps =
      0.5 * ExactEpsilonThreshold(scenario.graph, coupling,
                                  LinBpVariant::kLinBp);
  const DenseMatrix hhat = coupling.ScaledResidual(eps);
  const LinBpResult reference =
      RunLinBp(scenario.graph, hhat, scenario.explicit_residuals,
               LinBpOptions{});
  ASSERT_TRUE(reference.converged);

  for (const int threads : {1, 4}) {
    for (const std::int64_t budget : {std::int64_t{0}, std::int64_t{1} << 30}) {
      const exec::ExecContext ctx = exec::ExecContext::WithThreads(threads);
      const engine::ShardStreamBackend backend =
          OpenBackend(manifest, ctx, budget);
      LinBpOptions options;
      options.exec = ctx;
      const LinBpResult streamed =
          RunLinBp(backend, hhat, backend.explicit_residuals(), options);
      ASSERT_FALSE(streamed.failed) << streamed.error;
      EXPECT_EQ(streamed.iterations, reference.iterations)
          << "threads=" << threads << " budget=" << budget;
      EXPECT_EQ(streamed.beliefs.MaxAbsDiff(reference.beliefs), 0.0)
          << "threads=" << threads << " budget=" << budget;
    }
  }
}

// f32-valued shards: the streamed products match the in-memory products
// of the same shards loaded back whole (one narrowing at write time, one
// widening at load — both paths see identical doubles).
TEST(ShardStreamBackendTest, F32ShardsMatchTheirBulkLoadBitForBit) {
  const dataset::Scenario scenario = TestScenario();
  const std::string manifest = ShardScenario(
      scenario, "stream_v2_f32", dataset::ShardCompression::kF32);
  std::string error;
  const auto widened = dataset::LoadShardedSnapshot(manifest, &error);
  ASSERT_TRUE(widened.has_value()) << error;

  const engine::ShardStreamBackend backend = OpenBackend(manifest);
  EXPECT_EQ(backend.weighted_degrees(), widened->graph.weighted_degrees());

  const exec::ExecContext ctx = exec::ExecContext::Serial();
  const DenseMatrix b =
      testing::RandomMatrix(widened->graph.num_nodes(), widened->k, 0.3, 21);
  DenseMatrix ab;
  ASSERT_TRUE(backend.MultiplyDense(b, ctx, &ab, &error)) << error;
  EXPECT_EQ(ab.MaxAbsDiff(widened->graph.adjacency().MultiplyDense(b)), 0.0);

  const CouplingMatrix coupling = widened->Coupling();
  const double eps =
      0.5 * ExactEpsilonThreshold(widened->graph, coupling,
                                  LinBpVariant::kLinBp);
  const DenseMatrix hhat = coupling.ScaledResidual(eps);
  const LinBpResult in_memory = RunLinBp(
      widened->graph, hhat, widened->explicit_residuals, LinBpOptions{});
  const LinBpResult streamed =
      RunLinBp(backend, hhat, backend.explicit_residuals(), LinBpOptions{});
  ASSERT_FALSE(streamed.failed) << streamed.error;
  EXPECT_EQ(streamed.iterations, in_memory.iterations);
  EXPECT_EQ(streamed.beliefs.MaxAbsDiff(in_memory.beliefs), 0.0);
}

// A budget covering the whole working set: Open's derivation pass reads
// each shard once and caches it; every later sweep is pure cache hits
// with zero additional disk reads.
TEST(ShardStreamBackendTest, CacheCoveringWorkingSetEndsDiskReads) {
  const dataset::Scenario scenario = TestScenario();
  const std::string manifest = ShardScenario(
      scenario, "stream_cache_all", dataset::ShardCompression::kF64);
  const std::int64_t big_budget = std::int64_t{1} << 30;
  const engine::ShardStreamBackend backend =
      OpenBackend(manifest, exec::ExecContext::Serial(), big_budget);
  const dataset::ShardStreamReader& reader = backend.reader();
  ASSERT_NE(backend.cache(), nullptr);
  EXPECT_EQ(reader.blocks_read_total(), kShards);
  const std::int64_t bytes_after_open = reader.file_bytes_read_total();

  std::vector<double> x(backend.num_nodes(), 1.0);
  std::vector<double> y1, y2;
  std::string error;
  ASSERT_TRUE(
      backend.MultiplyVector(x, exec::ExecContext::Serial(), &y1, &error))
      << error;
  ASSERT_TRUE(
      backend.MultiplyVector(x, exec::ExecContext::Serial(), &y2, &error))
      << error;
  EXPECT_EQ(y1, y2);
  // Two full passes, zero new reads: the cache served every block.
  EXPECT_EQ(reader.blocks_read_total(), kShards);
  EXPECT_EQ(reader.file_bytes_read_total(), bytes_after_open);
  EXPECT_EQ(backend.cache()->hits_total(), 2 * kShards);
  EXPECT_EQ(backend.cache()->evictions_total(), 0);
  EXPECT_LE(backend.cache()->cached_bytes(),
            backend.cache()->budget_bytes());
}

// A budget below the working set: eviction keeps residency bounded by
// budget + the two in-flight pipeline blocks, and the stream still
// produces bit-identical results.
TEST(ShardStreamBackendTest, CacheBudgetBoundsResidency) {
  const dataset::Scenario scenario = TestScenario();
  const std::string manifest = ShardScenario(
      scenario, "stream_cache_tight", dataset::ShardCompression::kF64);
  const engine::ShardStreamBackend uncached = OpenBackend(manifest);
  const std::int64_t budget = uncached.reader().max_block_csr_bytes();

  const engine::ShardStreamBackend backend =
      OpenBackend(manifest, exec::ExecContext::Serial(), budget);
  const dataset::ShardStreamReader& reader = backend.reader();
  ASSERT_NE(backend.cache(), nullptr);

  std::vector<double> x(backend.num_nodes(), 1.0);
  std::vector<double> y_cached, y_uncached;
  std::string error;
  ASSERT_TRUE(backend.MultiplyVector(x, exec::ExecContext::Serial(),
                                     &y_cached, &error))
      << error;
  ASSERT_TRUE(uncached.MultiplyVector(x, exec::ExecContext::Serial(),
                                      &y_uncached, &error))
      << error;
  EXPECT_EQ(y_cached, y_uncached);
  // The budget can't hold all kShards blocks, so eviction must have run
  // and later passes still hit the disk.
  EXPECT_GE(backend.cache()->evictions_total(), 1);
  EXPECT_GT(reader.blocks_read_total(), kShards);
  EXPECT_LE(backend.cache()->cached_bytes(), budget);
  EXPECT_LE(reader.peak_resident_csr_bytes(),
            budget + 2 * reader.max_block_csr_bytes());
}

TEST(ShardStreamBackendTest, OpenRejectsCorruptManifestAndShards) {
  const dataset::Scenario scenario = TestScenario();
  const std::string manifest = ShardScenario(scenario, "stream_bad_open");
  std::string error;
  EXPECT_FALSE(engine::ShardStreamBackend::Open("/nonexistent/manifest",
                                                &error)
                   .has_value());

  // Corrupt a shard: Open's derivation pass must reject it.
  const std::string shard0 =
      std::filesystem::path(manifest).parent_path() /
      dataset::ShardFileName(0);
  std::vector<char> bytes = ReadBytes(shard0);
  bytes[64 + 8] ^= 0x01;
  WriteBytes(shard0, bytes);
  EXPECT_FALSE(
      engine::ShardStreamBackend::Open(manifest, &error).has_value());
  EXPECT_NE(error.find("checksum mismatch"), std::string::npos) << error;
}

}  // namespace
}  // namespace linbp
