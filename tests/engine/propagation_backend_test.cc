// InMemoryBackend and the backend-generalized operators must be
// bit-for-bit the direct Graph/SparseMatrix code paths.

#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/convergence.h"
#include "src/core/coupling.h"
#include "src/core/fabp.h"
#include "src/core/linbp.h"
#include "src/core/linbp_incremental.h"
#include "src/engine/backend_ops.h"
#include "src/engine/in_memory_backend.h"
#include "src/graph/generators.h"
#include "src/la/kron_ops.h"
#include "tests/testing/test_util.h"

namespace linbp {
namespace {

Graph TestGraph() { return KroneckerPowerGraph(2); }

DenseMatrix TestBeliefs(const Graph& graph, std::int64_t k,
                        std::uint64_t seed) {
  return testing::RandomMatrix(graph.num_nodes(), k, 0.1, seed);
}

TEST(InMemoryBackendTest, ProductsMatchSparseKernels) {
  const Graph graph = TestGraph();
  const engine::InMemoryBackend backend(&graph);
  EXPECT_EQ(backend.num_nodes(), graph.num_nodes());
  EXPECT_EQ(backend.num_stored_entries(), graph.num_directed_edges());
  EXPECT_EQ(backend.weighted_degrees(), graph.weighted_degrees());

  const DenseMatrix b = TestBeliefs(graph, 3, 11);
  DenseMatrix out;
  std::string error;
  ASSERT_TRUE(backend.MultiplyDense(b, exec::ExecContext::Serial(), &out,
                                    &error));
  const DenseMatrix expected = graph.adjacency().MultiplyDense(b);
  EXPECT_EQ(out.MaxAbsDiff(expected), 0.0);

  std::vector<double> x(graph.num_nodes());
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = 0.01 * i - 0.3;
  std::vector<double> y;
  ASSERT_TRUE(backend.MultiplyVector(x, exec::ExecContext::Serial(), &y,
                                     &error));
  EXPECT_EQ(y, graph.adjacency().MultiplyVector(x));
}

TEST(BackendOpsTest, PropagateMatchesLinBpPropagate) {
  const Graph graph = TestGraph();
  const engine::InMemoryBackend backend(&graph);
  const DenseMatrix hhat = testing::RandomResidualCoupling(3, 0.05, 7);
  const DenseMatrix hhat2 = hhat.Multiply(hhat);
  const DenseMatrix b = TestBeliefs(graph, 3, 23);
  for (const bool with_echo : {true, false}) {
    const DenseMatrix expected =
        LinBpPropagate(graph.adjacency(), graph.weighted_degrees(), hhat,
                       hhat2, b, with_echo);
    DenseMatrix out;
    std::string error;
    ASSERT_TRUE(engine::BackendLinBpPropagate(
        backend, hhat, hhat2, b, with_echo, exec::ExecContext::Default(),
        &out, &error));
    EXPECT_EQ(out.MaxAbsDiff(expected), 0.0) << "with_echo=" << with_echo;
  }
}

TEST(BackendOpsTest, OperatorsMatchKronOps) {
  const Graph graph = TestGraph();
  const engine::InMemoryBackend backend(&graph);
  const DenseMatrix hhat = testing::RandomResidualCoupling(3, 0.05, 9);

  const LinBpOperator direct(&graph.adjacency(), graph.weighted_degrees(),
                             hhat, /*with_echo=*/true);
  const engine::BackendLinBpOperator generalized(&backend, hhat,
                                                 /*with_echo=*/true);
  ASSERT_EQ(direct.dim(), generalized.dim());
  std::vector<double> x(direct.dim());
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = 0.02 * i - 0.5;
  std::vector<double> y_direct;
  std::vector<double> y_generalized;
  direct.Apply(x, &y_direct);
  generalized.Apply(x, &y_generalized);
  EXPECT_EQ(y_direct, y_generalized);

  const engine::BackendAdjacencyOperator adjacency_op(&backend);
  std::vector<double> ax(graph.num_nodes(), 0.25);
  std::vector<double> y_adj;
  adjacency_op.Apply(ax, &y_adj);
  EXPECT_EQ(y_adj, graph.adjacency().MultiplyVector(ax));
}

TEST(BackendSolversTest, GraphOverloadsDelegateBitForBit) {
  const Graph graph = TestGraph();
  const engine::InMemoryBackend backend(&graph);
  const CouplingMatrix coupling = KroneckerExperimentCoupling();
  const DenseMatrix hhat = coupling.ScaledResidual(0.001);
  const DenseMatrix residuals = TestBeliefs(graph, 3, 31);

  const LinBpResult via_graph = RunLinBp(graph, hhat, residuals);
  const LinBpResult via_backend = RunLinBp(backend, hhat, residuals);
  EXPECT_FALSE(via_backend.failed);
  EXPECT_EQ(via_graph.iterations, via_backend.iterations);
  EXPECT_EQ(via_graph.beliefs.MaxAbsDiff(via_backend.beliefs), 0.0);

  std::vector<double> scalar(graph.num_nodes(), 0.0);
  scalar[0] = 0.4;
  scalar[3] = -0.2;
  const FabpResult fabp_graph = RunFabp(graph, 0.05, scalar);
  const FabpResult fabp_backend = RunFabp(backend, 0.05, scalar);
  EXPECT_FALSE(fabp_backend.failed);
  EXPECT_EQ(fabp_graph.beliefs, fabp_backend.beliefs);

  EXPECT_EQ(AdjacencySpectralRadius(graph),
            AdjacencySpectralRadius(backend));
  EXPECT_EQ(
      LinBpOperatorSpectralRadius(graph, hhat, LinBpVariant::kLinBp),
      LinBpOperatorSpectralRadius(backend, hhat, LinBpVariant::kLinBp));
  EXPECT_EQ(ExactEpsilonThreshold(graph, coupling, LinBpVariant::kLinBpStar),
            ExactEpsilonThreshold(backend, coupling,
                                  LinBpVariant::kLinBpStar));
}

TEST(LinBpStateBackendTest, BackendConstructionMatchesGraphConstruction) {
  const Graph graph = TestGraph();
  const DenseMatrix hhat =
      KroneckerExperimentCoupling().ScaledResidual(0.001);
  const DenseMatrix residuals = TestBeliefs(graph, 3, 41);

  LinBpState from_graph(graph, hhat, residuals);
  // Backend over a graph copy that outlives the state (test scope).
  const auto owned = std::make_shared<Graph>(graph);
  LinBpState from_backend(
      std::make_shared<engine::InMemoryBackend>(owned.get()), hhat,
      residuals);
  EXPECT_EQ(from_graph.cold_start_iterations(),
            from_backend.cold_start_iterations());
  EXPECT_EQ(from_graph.beliefs().MaxAbsDiff(from_backend.beliefs()), 0.0);
  EXPECT_TRUE(from_graph.has_graph());
  EXPECT_FALSE(from_backend.has_graph());

  // Edge updates need an owned graph.
  std::string error;
  EXPECT_EQ(from_backend.AddEdges({Edge{0, 2, 1.0}}, &error), -1);
  EXPECT_NE(error.find("mutable graph"), std::string::npos) << error;

  // Belief updates work on both and stay in lockstep.
  const DenseMatrix update = testing::RandomMatrix(2, 3, 0.2, 43);
  const std::vector<std::int64_t> nodes = {1, 4};
  EXPECT_EQ(from_graph.UpdateExplicitBeliefs(nodes, update),
            from_backend.UpdateExplicitBeliefs(nodes, update));
  EXPECT_EQ(from_graph.beliefs().MaxAbsDiff(from_backend.beliefs()), 0.0);
}

// Wraps InMemoryBackend but fails the Nth product on demand — the
// in-memory stand-in for a shard checksum failure mid-solve.
class FlakyBackend final : public engine::PropagationBackend {
 public:
  explicit FlakyBackend(const Graph* graph) : inner_(graph) {}
  void FailNextProduct() { armed_ = true; }

  std::int64_t num_nodes() const override { return inner_.num_nodes(); }
  std::int64_t num_stored_entries() const override {
    return inner_.num_stored_entries();
  }
  const std::vector<double>& weighted_degrees() const override {
    return inner_.weighted_degrees();
  }
  bool MultiplyDense(const DenseMatrix& b, const exec::ExecContext& ctx,
                     DenseMatrix* out, std::string* error) const override {
    if (armed_) {
      armed_ = false;
      *error = "injected stream failure";
      return false;
    }
    return inner_.MultiplyDense(b, ctx, out, error);
  }
  bool MultiplyVector(const std::vector<double>& x,
                      const exec::ExecContext& ctx, std::vector<double>* y,
                      std::string* error) const override {
    return inner_.MultiplyVector(x, ctx, y, error);
  }

 private:
  engine::InMemoryBackend inner_;
  mutable bool armed_ = false;
};

// A failed update must be all-or-nothing even when the batch names the
// same node twice (the rollback must restore the ORIGINAL row, not the
// batch's first write).
TEST(LinBpStateBackendTest, FailedDuplicateNodeUpdateRollsBackExactly) {
  const Graph graph = TestGraph();
  const DenseMatrix hhat =
      KroneckerExperimentCoupling().ScaledResidual(0.001);
  const DenseMatrix residuals = TestBeliefs(graph, 3, 51);

  const auto owned = std::make_shared<Graph>(graph);
  auto flaky = std::make_shared<FlakyBackend>(owned.get());
  LinBpState tested(flaky, hhat, residuals);
  LinBpState control(graph, hhat, residuals);
  ASSERT_EQ(tested.beliefs().MaxAbsDiff(control.beliefs()), 0.0);

  // Duplicate node 2 in the failing batch.
  flaky->FailNextProduct();
  const DenseMatrix duplicate_rows = testing::RandomMatrix(2, 3, 0.3, 53);
  EXPECT_EQ(tested.UpdateExplicitBeliefs({2, 2}, duplicate_rows), -1);
  EXPECT_NE(tested.last_error().find("injected stream failure"),
            std::string::npos);
  EXPECT_EQ(tested.beliefs().MaxAbsDiff(control.beliefs()), 0.0);

  // If the rollback left the batch's first write behind, this later
  // update would solve against a corrupted prior and diverge from the
  // control state that never saw the failure.
  const DenseMatrix update = testing::RandomMatrix(1, 3, 0.2, 55);
  EXPECT_EQ(tested.UpdateExplicitBeliefs({5}, update),
            control.UpdateExplicitBeliefs({5}, update));
  EXPECT_EQ(tested.beliefs().MaxAbsDiff(control.beliefs()), 0.0);
}

// Every edge mutation must roll back BOTH the rebuilt graph and the
// beliefs when the warm re-solve fails mid-stream; afterwards the state
// must behave exactly like one that never saw the failure.
TEST(LinBpStateBackendTest, FailedEdgeMutationsRollBackGraphAndBeliefs) {
  const Graph graph = TestGraph();
  const DenseMatrix hhat =
      KroneckerExperimentCoupling().ScaledResidual(0.001);
  const DenseMatrix residuals = TestBeliefs(graph, 3, 61);

  const auto owned = std::make_shared<Graph>(graph);
  auto flaky = std::make_shared<FlakyBackend>(owned.get());
  LinBpState tested(owned, flaky, hhat, residuals);
  LinBpState control(graph, hhat, residuals);
  ASSERT_EQ(tested.beliefs().MaxAbsDiff(control.beliefs()), 0.0);

  const Edge existing = graph.edges().front();
  const std::vector<Edge> added = {{0, graph.num_nodes() - 1, 0.8}};
  const std::vector<Edge> removed = {{existing.u, existing.v, 1.0}};
  const std::vector<Edge> reweighted = {{existing.u, existing.v, 2.5}};

  struct Case {
    const char* name;
    int (LinBpState::*mutate)(const std::vector<Edge>&, std::string*);
    const std::vector<Edge>* batch;
  };
  const Case cases[] = {
      {"AddEdges", &LinBpState::AddEdges, &added},
      {"RemoveEdges", &LinBpState::RemoveEdges, &removed},
      {"UpdateEdgeWeights", &LinBpState::UpdateEdgeWeights, &reweighted},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    flaky->FailNextProduct();
    std::string error;
    EXPECT_EQ((tested.*c.mutate)(*c.batch, &error), -1);
    EXPECT_NE(error.find("injected stream failure"), std::string::npos)
        << error;
    EXPECT_EQ(tested.graph().num_undirected_edges(),
              control.graph().num_undirected_edges());
    EXPECT_EQ(tested.beliefs().MaxAbsDiff(control.beliefs()), 0.0);
  }

  // A rollback that restored the beliefs but left the rebuilt graph (or
  // vice versa) would desync these replays from the control state. Each
  // batch is valid at its position: add the new edge, reweight it, then
  // remove the original edge.
  const std::vector<Edge> added_reweighted = {
      {0, graph.num_nodes() - 1, 2.5}};
  const Case replay[] = {
      {"AddEdges", &LinBpState::AddEdges, &added},
      {"UpdateEdgeWeights", &LinBpState::UpdateEdgeWeights,
       &added_reweighted},
      {"RemoveEdges", &LinBpState::RemoveEdges, &removed},
  };
  for (const Case& c : replay) {
    SCOPED_TRACE(c.name);
    std::string tested_error;
    std::string control_error;
    const int tested_sweeps = (tested.*c.mutate)(*c.batch, &tested_error);
    EXPECT_GE(tested_sweeps, 0) << tested_error;
    EXPECT_EQ(tested_sweeps, (control.*c.mutate)(*c.batch, &control_error))
        << tested_error << " vs " << control_error;
    EXPECT_EQ(tested.graph().num_undirected_edges(),
              control.graph().num_undirected_edges());
    EXPECT_EQ(tested.beliefs().MaxAbsDiff(control.beliefs()), 0.0);
  }
}

}  // namespace
}  // namespace linbp
