#include "src/relational/sbp_sql.h"

#include <algorithm>

#include "gtest/gtest.h"
#include "src/core/coupling.h"
#include "src/core/sbp.h"
#include "src/core/sbp_incremental.h"
#include "src/graph/beliefs.h"
#include "src/graph/generators.h"
#include "src/relational/linbp_sql.h"
#include "src/relational/ops.h"
#include "tests/testing/test_util.h"

namespace linbp {
namespace {

using testing::ExpectMatrixNear;

// Compares an SbpSql state against a from-scratch native SBP run.
void ExpectMatchesNative(const SbpSql& sql, const Graph& graph,
                         const DenseMatrix& hhat,
                         const DenseMatrix& explicit_residuals,
                         std::vector<std::int64_t> explicit_nodes) {
  std::sort(explicit_nodes.begin(), explicit_nodes.end());
  const SbpResult native =
      RunSbp(graph, hhat, explicit_residuals, explicit_nodes);
  // Beliefs.
  ExpectMatrixNear(
      BeliefsFromTable(sql.beliefs(), graph.num_nodes(), hhat.rows()),
      native.beliefs, 1e-11);
  // Geodesic numbers (table only holds reachable nodes).
  std::vector<std::int64_t> geodesic(graph.num_nodes(), kUnreachable);
  const Table& g_table = sql.geodesic();
  for (std::int64_t r = 0; r < g_table.num_rows(); ++r) {
    geodesic[g_table.IntAt(g_table.ColumnIndex("v"), r)] =
        g_table.IntAt(g_table.ColumnIndex("g"), r);
  }
  EXPECT_EQ(geodesic, native.geodesic);
}

TEST(SbpSqlTest, InitialAssignmentOnPath) {
  const Graph g = PathGraph(5);
  const DenseMatrix hhat = HomophilyCoupling2().ScaledResidual(0.4);
  DenseMatrix e(5, 2);
  e.At(0, 0) = 0.1;
  e.At(0, 1) = -0.1;
  const SbpSql sql(MakeAdjacencyTable(g), MakeBeliefTable(e, {0}),
                   MakeCouplingTable(hhat));
  ExpectMatchesNative(sql, g, hhat, e, {0});
}

TEST(SbpSqlTest, UnreachableComponentStaysOutOfG) {
  const Graph g(4, {{0, 1, 1.0}, {2, 3, 1.0}});
  const DenseMatrix hhat = HomophilyCoupling2().ScaledResidual(0.4);
  DenseMatrix e(4, 2);
  e.At(0, 0) = 0.1;
  e.At(0, 1) = -0.1;
  const SbpSql sql(MakeAdjacencyTable(g), MakeBeliefTable(e, {0}),
                   MakeCouplingTable(hhat));
  EXPECT_EQ(sql.geodesic().num_rows(), 2);  // only nodes 0 and 1
  ExpectMatchesNative(sql, g, hhat, e, {0});
}

class SbpSqlRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(SbpSqlRandomTest, InitialAssignmentMatchesNative) {
  const std::uint64_t seed = GetParam();
  const Graph g = RandomConnectedGraph(25, 20, seed);
  const DenseMatrix hhat = testing::RandomResidualCoupling(3, 0.2, seed + 1);
  const SeededBeliefs seeded = SeedPaperBeliefs(25, 3, 5, seed + 2);
  const SbpSql sql(MakeAdjacencyTable(g),
                   MakeBeliefTable(seeded.residuals, seeded.explicit_nodes),
                   MakeCouplingTable(hhat));
  ExpectMatchesNative(sql, g, hhat, seeded.residuals, seeded.explicit_nodes);
}

TEST_P(SbpSqlRandomTest, AddExplicitBeliefsMatchesNative) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed + 77);
  const std::int64_t n = 20;
  const Graph g = RandomConnectedGraph(n, 15, seed);
  const DenseMatrix hhat = testing::RandomResidualCoupling(3, 0.2, seed + 1);

  DenseMatrix residuals(n, 3);
  std::vector<std::int64_t> explicit_nodes = {0, 1};
  auto fill_row = [&](std::int64_t node) {
    double sum = 0.0;
    for (std::int64_t c = 0; c + 1 < 3; ++c) {
      residuals.At(node, c) = 0.2 * (2.0 * rng.NextDouble() - 1.0);
      sum += residuals.At(node, c);
    }
    residuals.At(node, 2) = -sum;
  };
  fill_row(0);
  fill_row(1);

  SbpSql sql(MakeAdjacencyTable(g),
             MakeBeliefTable(residuals, explicit_nodes),
             MakeCouplingTable(hhat));

  for (int round = 0; round < 2; ++round) {
    // Batch of new/overwritten beliefs.
    std::vector<std::int64_t> batch;
    for (int i = 0; i < 3; ++i) {
      const std::int64_t node = rng.NextInt(0, n - 1);
      fill_row(node);
      batch.push_back(node);
      if (std::find(explicit_nodes.begin(), explicit_nodes.end(), node) ==
          explicit_nodes.end()) {
        explicit_nodes.push_back(node);
      }
    }
    // Deduplicate batch nodes (MakeBeliefTable emits per-node rows).
    std::sort(batch.begin(), batch.end());
    batch.erase(std::unique(batch.begin(), batch.end()), batch.end());
    sql.AddExplicitBeliefs(MakeBeliefTable(residuals, batch));
    ExpectMatchesNative(sql, g, hhat, residuals, explicit_nodes);
  }
}

TEST_P(SbpSqlRandomTest, AddEdgesMatchesNative) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed + 99);
  const std::int64_t n = 18;
  const Graph start = ErdosRenyiGraph(n, 12, seed + 3);
  const DenseMatrix hhat = testing::RandomResidualCoupling(3, 0.25, seed + 4);
  const SeededBeliefs seeded = SeedPaperBeliefs(n, 3, 3, seed + 5);

  SbpSql sql(MakeAdjacencyTable(start),
             MakeBeliefTable(seeded.residuals, seeded.explicit_nodes),
             MakeCouplingTable(hhat));

  std::vector<Edge> all_edges = start.edges();
  auto exists = [&](std::int64_t u, std::int64_t v) {
    for (const Edge& e : all_edges) {
      if ((e.u == u && e.v == v) || (e.u == v && e.v == u)) return true;
    }
    return false;
  };
  for (int round = 0; round < 2; ++round) {
    std::vector<Edge> batch;
    while (batch.size() < 3) {
      const std::int64_t u = rng.NextInt(0, n - 1);
      const std::int64_t v = rng.NextInt(0, n - 1);
      if (u == v || exists(u, v)) continue;
      bool dup = false;
      for (const Edge& e : batch) {
        if ((e.u == u && e.v == v) || (e.u == v && e.v == u)) dup = true;
      }
      if (dup) continue;
      batch.push_back({u, v, 1.0});
    }
    Table an({"s", "t", "w"},
             {ColumnType::kInt, ColumnType::kInt, ColumnType::kDouble});
    for (const Edge& e : batch) {
      an.AppendRow(
          {Value::Int(e.u), Value::Int(e.v), Value::Double(e.weight)});
    }
    sql.AddEdges(an);
    all_edges.insert(all_edges.end(), batch.begin(), batch.end());
    ExpectMatchesNative(sql, Graph(n, all_edges), hhat, seeded.residuals,
                        seeded.explicit_nodes);
  }
}

TEST_P(SbpSqlRandomTest, SqlAndNativeIncrementalAgree) {
  // Three-way agreement: SQL state == native incremental state.
  const std::uint64_t seed = GetParam();
  const std::int64_t n = 15;
  const Graph g = RandomConnectedGraph(n, 10, seed + 200);
  const DenseMatrix hhat = testing::RandomResidualCoupling(2, 0.3, seed + 201);
  const SeededBeliefs seeded = SeedPaperBeliefs(n, 2, 3, seed + 202);

  SbpSql sql(MakeAdjacencyTable(g),
             MakeBeliefTable(seeded.residuals, seeded.explicit_nodes),
             MakeCouplingTable(hhat));
  SbpState native = SbpState::FromGraph(g, hhat, seeded.residuals,
                                        seeded.explicit_nodes);
  ExpectMatrixNear(BeliefsFromTable(sql.beliefs(), n, 2), native.beliefs(),
                   1e-11);

  // One edge batch applied to both.
  const std::vector<Edge> batch = {{0, n - 1, 1.0}};
  if (!g.adjacency().At(0, n - 1)) {
    Table an({"s", "t", "w"},
             {ColumnType::kInt, ColumnType::kInt, ColumnType::kDouble});
    an.AppendRow({Value::Int(0), Value::Int(n - 1), Value::Double(1.0)});
    sql.AddEdges(an);
    native.AddEdges(batch);
    ExpectMatrixNear(BeliefsFromTable(sql.beliefs(), n, 2),
                     native.beliefs(), 1e-11);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SbpSqlRandomTest, ::testing::Range(0, 8));

TEST(SbpSqlTest, NewBeliefsAttachUnreachableComponent) {
  // Two components; the second has no labels until AddExplicitBeliefs.
  const Graph g(6, {{0, 1, 1.0}, {1, 2, 1.0}, {3, 4, 1.0}, {4, 5, 1.0}});
  const DenseMatrix hhat = HomophilyCoupling2().ScaledResidual(0.4);
  DenseMatrix e(6, 2);
  e.At(0, 0) = 0.1;
  e.At(0, 1) = -0.1;
  SbpSql sql(MakeAdjacencyTable(g), MakeBeliefTable(e, {0}),
             MakeCouplingTable(hhat));
  EXPECT_EQ(sql.geodesic().num_rows(), 3);

  DenseMatrix e2 = e;
  e2.At(3, 0) = -0.2;
  e2.At(3, 1) = 0.2;
  sql.AddExplicitBeliefs(MakeBeliefTable(e2, {3}));
  ExpectMatchesNative(sql, g, hhat, e2, {0, 3});
  EXPECT_EQ(sql.geodesic().num_rows(), 6);
}

}  // namespace
}  // namespace linbp
