#include "src/relational/sql_text.h"

#include <string>

#include "gtest/gtest.h"

namespace linbp {
namespace {

void ExpectContains(const std::string& haystack, const std::string& needle) {
  EXPECT_NE(haystack.find(needle), std::string::npos)
      << "missing \"" << needle << "\" in:\n"
      << haystack;
}

TEST(SqlTextTest, SchemaDeclaresAllPaperTables) {
  const std::string sql = SchemaSql();
  for (const char* table :
       {"CREATE TABLE A", "CREATE TABLE E", "CREATE TABLE H",
        "CREATE TABLE D", "CREATE TABLE H2", "CREATE TABLE B",
        "CREATE TABLE G"}) {
    ExpectContains(sql, table);
  }
}

TEST(SqlTextTest, CouplingSquaredMatchesEq20) {
  const std::string sql = CouplingSquaredSql();
  ExpectContains(sql, "SUM(H1.h * H2.h)");
  ExpectContains(sql, "H1.c2 = H2.c1");
  ExpectContains(sql, "GROUP BY H1.c1, H2.c2");
}

TEST(SqlTextTest, DegreeUsesSquaredWeights) {
  // Sect. 5.2: the weighted degree sums squared weights.
  ExpectContains(DegreeSql(), "SUM(A.w * A.w)");
}

TEST(SqlTextTest, LinBpIterationHasBothViews) {
  const std::string sql = LinBpIterationSql(/*with_echo=*/true);
  ExpectContains(sql, "SUM(A.w * B.b * H.h)");    // V1 = A B H
  ExpectContains(sql, "SUM(D.d * B.b * H2.h)");   // V2 = D B H2
  ExpectContains(sql, "UNION ALL");               // footnote 15
  ExpectContains(sql, "-b FROM V2");              // echo subtracted
  ExpectContains(sql, "GROUP BY u.v, u.c");
}

TEST(SqlTextTest, LinBpStarSkipsEcho) {
  const std::string sql = LinBpIterationSql(/*with_echo=*/false);
  EXPECT_EQ(sql.find("V2"), std::string::npos);
  ExpectContains(sql, "SUM(A.w * B.b * H.h)");
}

TEST(SqlTextTest, TopBeliefMatchesFig9b) {
  const std::string sql = TopBeliefSql();
  ExpectContains(sql, "MAX(B2.b)");
  ExpectContains(sql, "B.v = X.v AND B.b = X.b");
}

TEST(SqlTextTest, SbpLevelUsesFrontierAndNotIn) {
  const std::string sql = SbpLevelSql();
  ExpectContains(sql, "G.g = :i - 1");           // frontier
  ExpectContains(sql, "NOT IN (SELECT G2.v");    // Fig. 9c negation
  ExpectContains(sql, "SUM(A.w * B.b * H.h)");   // Algorithm 2 line 5
}

TEST(SqlTextTest, UpsertMatchesFig9d) {
  const std::string sql = UpsertBeliefsSql();
  ExpectContains(sql, "DELETE FROM B");
  ExpectContains(sql, "WHERE v IN (SELECT Bn.v FROM Bn)");
  ExpectContains(sql, "INSERT INTO B");
}

TEST(SqlTextTest, StatementsAreTerminated) {
  for (const std::string& sql :
       {SchemaSql(), CouplingSquaredSql(), DegreeSql(),
        LinBpIterationSql(true), LinBpIterationSql(false), TopBeliefSql(),
        SbpInitializationSql(), SbpLevelSql(), UpsertBeliefsSql()}) {
    // Every non-empty statement ends with ';' (split on blank lines).
    ASSERT_FALSE(sql.empty());
    const auto last_non_ws = sql.find_last_not_of(" \n\t");
    ASSERT_NE(last_non_ws, std::string::npos);
    EXPECT_EQ(sql[last_non_ws], ';') << sql;
  }
}

}  // namespace
}  // namespace linbp
