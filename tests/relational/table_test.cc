#include "src/relational/table.h"

#include "gtest/gtest.h"

namespace linbp {
namespace {

Table MakeSampleTable() {
  Table t({"id", "value"}, {ColumnType::kInt, ColumnType::kDouble});
  t.AppendRow({Value::Int(1), Value::Double(1.5)});
  t.AppendRow({Value::Int(2), Value::Double(-0.5)});
  return t;
}

TEST(TableTest, EmptyTable) {
  Table t({"a"}, {ColumnType::kInt});
  EXPECT_EQ(t.num_rows(), 0);
  EXPECT_EQ(t.num_columns(), 1);
  EXPECT_TRUE(t.HasColumn("a"));
  EXPECT_FALSE(t.HasColumn("b"));
}

TEST(TableTest, AppendAndRead) {
  const Table t = MakeSampleTable();
  EXPECT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.IntAt(0, 0), 1);
  EXPECT_EQ(t.IntAt(0, 1), 2);
  EXPECT_EQ(t.DoubleAt(1, 0), 1.5);
  EXPECT_EQ(t.DoubleAt(1, 1), -0.5);
}

TEST(TableTest, ColumnAccessByName) {
  const Table t = MakeSampleTable();
  EXPECT_EQ(t.ColumnIndex("value"), 1);
  EXPECT_EQ(t.IntColumn("id")[1], 2);
  EXPECT_EQ(t.DoubleColumn("value")[0], 1.5);
  EXPECT_EQ(t.TypeOf("id"), ColumnType::kInt);
}

TEST(TableTest, AppendRowFromCopiesValues) {
  const Table source = MakeSampleTable();
  Table t({"id", "value"}, {ColumnType::kInt, ColumnType::kDouble});
  t.AppendRowFrom(source, 1);
  EXPECT_EQ(t.num_rows(), 1);
  EXPECT_EQ(t.IntAt(0, 0), 2);
  EXPECT_EQ(t.DoubleAt(1, 0), -0.5);
}

TEST(TableTest, ClearRemovesRows) {
  Table t = MakeSampleTable();
  t.Clear();
  EXPECT_EQ(t.num_rows(), 0);
  EXPECT_EQ(t.num_columns(), 2);
}

TEST(TableTest, ToStringSmoke) {
  const std::string rendered = MakeSampleTable().ToString();
  EXPECT_NE(rendered.find("id"), std::string::npos);
  EXPECT_NE(rendered.find("2 rows"), std::string::npos);
}

TEST(TableDeathTest, DuplicateColumnNames) {
  EXPECT_DEATH(Table({"a", "a"}, {ColumnType::kInt, ColumnType::kInt}),
               "duplicate");
}

TEST(TableDeathTest, UnknownColumn) {
  const Table t = MakeSampleTable();
  EXPECT_DEATH(t.ColumnIndex("nope"), "nope");
}

TEST(TableDeathTest, TypeMismatchOnAppend) {
  Table t({"id"}, {ColumnType::kInt});
  EXPECT_DEATH(t.AppendRow({Value::Double(1.0)}), "");
}

TEST(TableDeathTest, TypeMismatchOnRead) {
  const Table t = MakeSampleTable();
  EXPECT_DEATH(t.IntColumn("value"), "");
}

}  // namespace
}  // namespace linbp
