#include "src/relational/linbp_sql.h"

#include "gtest/gtest.h"
#include "src/core/coupling.h"
#include "src/core/linbp.h"
#include "src/graph/beliefs.h"
#include "src/graph/generators.h"
#include "src/relational/ops.h"
#include "tests/testing/test_util.h"

namespace linbp {
namespace {

using testing::ExpectMatrixNear;

TEST(LinBpSqlTablesTest, AdjacencyTableHasBothDirections) {
  const Graph g(3, {{0, 1, 2.0}, {1, 2, 1.0}});
  const Table a = MakeAdjacencyTable(g);
  EXPECT_EQ(a.num_rows(), 4);
  EXPECT_EQ(CountDistinctKeys(a, {"s", "t"}), 4);
}

TEST(LinBpSqlTablesTest, BeliefTableSkipsZeroEntries) {
  DenseMatrix residuals(3, 2);
  residuals.At(1, 0) = 0.1;
  residuals.At(1, 1) = -0.1;
  const Table e = MakeBeliefTable(residuals, {0, 1});
  // Node 0 has all-zero residuals, so only node 1 produces rows.
  EXPECT_EQ(e.num_rows(), 2);
  EXPECT_EQ(e.IntAt(0, 0), 1);
}

TEST(LinBpSqlTablesTest, BeliefsRoundTripThroughTable) {
  const SeededBeliefs seeded = SeedPaperBeliefs(10, 3, 4, /*seed=*/3);
  const Table e = MakeBeliefTable(seeded.residuals, seeded.explicit_nodes);
  ExpectMatrixNear(BeliefsFromTable(e, 10, 3), seeded.residuals, 0.0);
}

TEST(LinBpSqlTablesTest, CouplingTableHasAllEntries) {
  const Table h = MakeCouplingTable(AuctionCoupling().residual());
  EXPECT_EQ(h.num_rows(), 9);
}

TEST(LinBpSqlTablesTest, DegreeTableMatchesWeightedDegrees) {
  const Graph g = RandomWeightedConnectedGraph(12, 8, 0.5, 2.0, /*seed=*/4);
  const Table d = DeriveDegreeTable(MakeAdjacencyTable(g));
  EXPECT_EQ(d.num_rows(), 12);
  for (std::int64_t r = 0; r < d.num_rows(); ++r) {
    const std::int64_t v = d.IntAt(d.ColumnIndex("v"), r);
    EXPECT_NEAR(d.DoubleAt(d.ColumnIndex("d"), r),
                g.weighted_degrees()[v], 1e-12);
  }
}

TEST(LinBpSqlTablesTest, CouplingSquaredMatchesDenseSquare) {
  const DenseMatrix hhat = AuctionCoupling().ScaledResidual(0.3);
  const Table h2 = DeriveCouplingSquaredTable(MakeCouplingTable(hhat));
  const DenseMatrix expected = hhat.Multiply(hhat);
  ASSERT_EQ(h2.num_rows(), 9);
  for (std::int64_t r = 0; r < h2.num_rows(); ++r) {
    const std::int64_t c1 = h2.IntAt(h2.ColumnIndex("c1"), r);
    const std::int64_t c2 = h2.IntAt(h2.ColumnIndex("c2"), r);
    EXPECT_NEAR(h2.DoubleAt(h2.ColumnIndex("h"), r), expected.At(c1, c2),
                1e-13);
  }
}

// Algorithm 1 must match the matrix implementation sweep for sweep.
class LinBpSqlEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(LinBpSqlEquivalenceTest, MatchesMatrixLinBp) {
  const auto [seed, with_echo] = GetParam();
  const Graph g = RandomConnectedGraph(15, 12, seed);
  const DenseMatrix hhat = testing::RandomResidualCoupling(3, 0.06, seed + 1);
  const SeededBeliefs seeded = SeedPaperBeliefs(15, 3, 5, seed + 2);
  const int iterations = 5;

  const Table b_sql = RunLinBpSql(
      MakeAdjacencyTable(g),
      MakeBeliefTable(seeded.residuals, seeded.explicit_nodes),
      MakeCouplingTable(hhat), iterations, with_echo);

  LinBpOptions options;
  options.variant =
      with_echo ? LinBpVariant::kLinBp : LinBpVariant::kLinBpStar;
  options.max_iterations = iterations;
  options.tolerance = 0.0;  // force exactly `iterations` sweeps
  const LinBpResult reference = RunLinBp(g, hhat, seeded.residuals, options);

  ExpectMatrixNear(BeliefsFromTable(b_sql, 15, 3), reference.beliefs, 1e-11);
}

TEST_P(LinBpSqlEquivalenceTest, WeightedGraphsMatchToo) {
  const auto [seed, with_echo] = GetParam();
  const Graph g = RandomWeightedConnectedGraph(10, 8, 0.5, 1.5, seed + 100);
  const DenseMatrix hhat = testing::RandomResidualCoupling(2, 0.1, seed + 101);
  const SeededBeliefs seeded = SeedPaperBeliefs(10, 2, 3, seed + 102);

  const Table b_sql = RunLinBpSql(
      MakeAdjacencyTable(g),
      MakeBeliefTable(seeded.residuals, seeded.explicit_nodes),
      MakeCouplingTable(hhat), 4, with_echo);
  LinBpOptions options;
  options.variant =
      with_echo ? LinBpVariant::kLinBp : LinBpVariant::kLinBpStar;
  options.max_iterations = 4;
  options.tolerance = 0.0;
  const LinBpResult reference = RunLinBp(g, hhat, seeded.residuals, options);
  ExpectMatrixNear(BeliefsFromTable(b_sql, 10, 2), reference.beliefs, 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndEcho, LinBpSqlEquivalenceTest,
    ::testing::Combine(::testing::Range(0, 6), ::testing::Bool()));

}  // namespace
}  // namespace linbp
