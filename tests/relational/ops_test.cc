#include "src/relational/ops.h"

#include <algorithm>

#include "gtest/gtest.h"
#include "src/util/random.h"

namespace linbp {
namespace {

Table MakeLeft() {
  Table t({"k", "x"}, {ColumnType::kInt, ColumnType::kDouble});
  t.AppendRow({Value::Int(1), Value::Double(10)});
  t.AppendRow({Value::Int(2), Value::Double(20)});
  t.AppendRow({Value::Int(2), Value::Double(21)});
  t.AppendRow({Value::Int(3), Value::Double(30)});
  return t;
}

Table MakeRight() {
  Table t({"k", "y"}, {ColumnType::kInt, ColumnType::kInt});
  t.AppendRow({Value::Int(2), Value::Int(200)});
  t.AppendRow({Value::Int(3), Value::Int(300)});
  t.AppendRow({Value::Int(3), Value::Int(301)});
  t.AppendRow({Value::Int(4), Value::Int(400)});
  return t;
}

TEST(EquiJoinTest, SingleKeyJoin) {
  const Table joined = EquiJoin(MakeLeft(), MakeRight(), {"k"}, {"k"});
  // Matches: k=2 (2 left rows x 1 right), k=3 (1 x 2) = 4 rows.
  EXPECT_EQ(joined.num_rows(), 4);
  EXPECT_EQ(joined.num_columns(), 3);  // k, x, y
  EXPECT_TRUE(joined.HasColumn("y"));
  // Row order follows the left table.
  EXPECT_EQ(joined.IntAt(joined.ColumnIndex("k"), 0), 2);
  EXPECT_EQ(joined.IntAt(joined.ColumnIndex("y"), 0), 200);
}

TEST(EquiJoinTest, NameClashGetsPrefix) {
  Table right({"k", "x"}, {ColumnType::kInt, ColumnType::kDouble});
  right.AppendRow({Value::Int(1), Value::Double(-1)});
  const Table joined = EquiJoin(MakeLeft(), right, {"k"}, {"k"});
  EXPECT_TRUE(joined.HasColumn("x"));
  EXPECT_TRUE(joined.HasColumn("r_x"));
  EXPECT_EQ(joined.num_rows(), 1);
  EXPECT_EQ(joined.DoubleAt(joined.ColumnIndex("r_x"), 0), -1.0);
}

TEST(EquiJoinTest, TwoKeyJoin) {
  Table a({"u", "v", "w"},
          {ColumnType::kInt, ColumnType::kInt, ColumnType::kDouble});
  a.AppendRow({Value::Int(1), Value::Int(2), Value::Double(0.5)});
  a.AppendRow({Value::Int(1), Value::Int(3), Value::Double(0.6)});
  Table b({"u", "v", "z"},
          {ColumnType::kInt, ColumnType::kInt, ColumnType::kDouble});
  b.AppendRow({Value::Int(1), Value::Int(3), Value::Double(9)});
  const Table joined = EquiJoin(a, b, {"u", "v"}, {"u", "v"});
  EXPECT_EQ(joined.num_rows(), 1);
  EXPECT_EQ(joined.DoubleAt(joined.ColumnIndex("w"), 0), 0.6);
  EXPECT_EQ(joined.DoubleAt(joined.ColumnIndex("z"), 0), 9.0);
}

TEST(SemiAntiJoinTest, PartitionsLeftRows) {
  const Table semi = SemiJoin(MakeLeft(), MakeRight(), {"k"}, {"k"});
  const Table anti = AntiJoin(MakeLeft(), MakeRight(), {"k"}, {"k"});
  EXPECT_EQ(semi.num_rows(), 3);  // k = 2, 2, 3
  EXPECT_EQ(anti.num_rows(), 1);  // k = 1
  EXPECT_EQ(anti.IntAt(0, 0), 1);
  EXPECT_EQ(semi.num_rows() + anti.num_rows(), MakeLeft().num_rows());
}

TEST(GroupByTest, SumDouble) {
  const Table grouped =
      GroupBy(MakeLeft(), {"k"}, {{AggregateOp::kSum, "x", "total"}});
  EXPECT_EQ(grouped.num_rows(), 3);
  // Groups appear in first-seen order: 1, 2, 3.
  EXPECT_EQ(grouped.IntAt(0, 0), 1);
  EXPECT_EQ(grouped.DoubleAt(1, 0), 10.0);
  EXPECT_EQ(grouped.IntAt(0, 1), 2);
  EXPECT_EQ(grouped.DoubleAt(1, 1), 41.0);
}

TEST(GroupByTest, MinAndCount) {
  const Table grouped = GroupBy(MakeRight(), {"k"},
                                {{AggregateOp::kMin, "y", "min_y"},
                                 {AggregateOp::kCount, "", "n"}});
  EXPECT_EQ(grouped.num_rows(), 3);
  EXPECT_EQ(grouped.IntAt(grouped.ColumnIndex("min_y"), 1), 300);
  EXPECT_EQ(grouped.IntAt(grouped.ColumnIndex("n"), 1), 2);
}

TEST(GroupByTest, TwoKeyGrouping) {
  Table t({"a", "b", "x"},
          {ColumnType::kInt, ColumnType::kInt, ColumnType::kDouble});
  t.AppendRow({Value::Int(1), Value::Int(1), Value::Double(1)});
  t.AppendRow({Value::Int(1), Value::Int(2), Value::Double(2)});
  t.AppendRow({Value::Int(1), Value::Int(1), Value::Double(3)});
  const Table grouped =
      GroupBy(t, {"a", "b"}, {{AggregateOp::kSum, "x", "x"}});
  EXPECT_EQ(grouped.num_rows(), 2);
  EXPECT_EQ(grouped.DoubleAt(grouped.ColumnIndex("x"), 0), 4.0);
}

TEST(FilterTest, KeepsMatchingRows) {
  const Table filtered =
      Filter(MakeLeft(), [](const Table& t, std::int64_t r) {
        return t.IntAt(0, r) == 2;
      });
  EXPECT_EQ(filtered.num_rows(), 2);
}

TEST(ProjectTest, ReordersColumns) {
  const Table projected = Project(MakeLeft(), {"x", "k"});
  EXPECT_EQ(projected.num_columns(), 2);
  EXPECT_EQ(projected.column_names()[0], "x");
  EXPECT_EQ(projected.DoubleAt(0, 0), 10.0);
  EXPECT_EQ(projected.IntAt(1, 0), 1);
}

TEST(RenameTest, RenamesInPlace) {
  const Table renamed = Rename(MakeLeft(), {"k"}, {"key"});
  EXPECT_TRUE(renamed.HasColumn("key"));
  EXPECT_FALSE(renamed.HasColumn("k"));
  EXPECT_EQ(renamed.num_rows(), 4);
}

TEST(UnionAllTest, AppendsRows) {
  Table dest = MakeLeft();
  UnionAllInPlace(&dest, MakeLeft());
  EXPECT_EQ(dest.num_rows(), 8);
}

TEST(ComputedColumnTest, DoubleColumn) {
  const Table with = WithComputedDoubleColumn(
      MakeLeft(), "x2", [](const Table& t, std::int64_t r) {
        return 2.0 * t.DoubleAt(1, r);
      });
  EXPECT_EQ(with.DoubleAt(with.ColumnIndex("x2"), 2), 42.0);
}

TEST(ComputedColumnTest, IntColumn) {
  const Table with = WithComputedIntColumn(
      MakeLeft(), "k1", [](const Table& t, std::int64_t r) {
        return t.IntAt(0, r) + 1;
      });
  EXPECT_EQ(with.IntAt(with.ColumnIndex("k1"), 3), 4);
}

TEST(DistinctKeysTest, DeduplicatesAndProjects) {
  const Table distinct = DistinctKeys(MakeLeft(), {"k"});
  EXPECT_EQ(distinct.num_rows(), 3);
  EXPECT_EQ(distinct.num_columns(), 1);
}

TEST(UpsertTest, ReplacesMatchingKeysAndInserts) {
  Table target = MakeLeft();
  Table update({"k", "x"}, {ColumnType::kInt, ColumnType::kDouble});
  update.AppendRow({Value::Int(2), Value::Double(99)});
  update.AppendRow({Value::Int(7), Value::Double(70)});
  Upsert(&target, update, {"k"});
  // Both k=2 rows removed, replaced by one; k=7 inserted.
  EXPECT_EQ(target.num_rows(), 4);
  double sum = 0.0;
  for (std::int64_t r = 0; r < target.num_rows(); ++r) {
    if (target.IntAt(0, r) == 2) sum += target.DoubleAt(1, r);
  }
  EXPECT_EQ(sum, 99.0);
}

TEST(GroupByTest, MinOnDoubles) {
  const Table grouped =
      GroupBy(MakeLeft(), {"k"}, {{AggregateOp::kMin, "x", "min_x"}});
  EXPECT_EQ(grouped.DoubleAt(1, 1), 20.0);  // min(20, 21)
}

TEST(EquiJoinTest, EmptyInputsYieldEmptyOutput) {
  Table empty({"k", "y"}, {ColumnType::kInt, ColumnType::kDouble});
  EXPECT_EQ(EquiJoin(MakeLeft(), empty, {"k"}, {"k"}).num_rows(), 0);
  EXPECT_EQ(EquiJoin(empty, MakeLeft(), {"k"}, {"k"}).num_rows(), 0);
  EXPECT_EQ(GroupBy(empty, {"k"}, {{AggregateOp::kSum, "y", "y"}}).num_rows(),
            0);
  EXPECT_EQ(AntiJoin(MakeLeft(), empty, {"k"}, {"k"}).num_rows(),
            MakeLeft().num_rows());
}

TEST(UpsertTest, EmptySourceIsNoOp) {
  Table target = MakeLeft();
  Table empty({"k", "x"}, {ColumnType::kInt, ColumnType::kDouble});
  Upsert(&target, empty, {"k"});
  EXPECT_EQ(target.num_rows(), MakeLeft().num_rows());
}

TEST(CountDistinctKeysTest, Counts) {
  EXPECT_EQ(CountDistinctKeys(MakeLeft(), {"k"}), 3);
  EXPECT_EQ(CountDistinctKeys(MakeRight(), {"k"}), 3);
}

TEST(OpsDeathTest, TooManyKeyColumns) {
  Table t({"a", "b", "c"},
          {ColumnType::kInt, ColumnType::kInt, ColumnType::kInt});
  EXPECT_DEATH(CountDistinctKeys(t, {"a", "b", "c"}), "");
}

// Randomized cross-check of the hash join against a nested-loop reference.
class JoinRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(JoinRandomTest, MatchesNestedLoopReference) {
  Rng rng(GetParam() + 500);
  Table left({"k", "x"}, {ColumnType::kInt, ColumnType::kDouble});
  Table right({"k", "y"}, {ColumnType::kInt, ColumnType::kDouble});
  for (int i = 0; i < 30; ++i) {
    left.AppendRow({Value::Int(rng.NextInt(0, 9)),
                    Value::Double(rng.NextDouble())});
    right.AppendRow({Value::Int(rng.NextInt(0, 9)),
                     Value::Double(rng.NextDouble())});
  }
  const Table joined = EquiJoin(left, right, {"k"}, {"k"});
  std::int64_t expected = 0;
  for (std::int64_t l = 0; l < left.num_rows(); ++l) {
    for (std::int64_t r = 0; r < right.num_rows(); ++r) {
      if (left.IntAt(0, l) == right.IntAt(0, r)) ++expected;
    }
  }
  EXPECT_EQ(joined.num_rows(), expected);
  // Aggregate invariant: sum of x over the join equals sum over left of
  // x * (matching right rows).
  double join_sum = 0.0;
  for (std::int64_t r = 0; r < joined.num_rows(); ++r) {
    join_sum += joined.DoubleAt(joined.ColumnIndex("x"), r);
  }
  double expected_sum = 0.0;
  for (std::int64_t l = 0; l < left.num_rows(); ++l) {
    std::int64_t matches = 0;
    for (std::int64_t r = 0; r < right.num_rows(); ++r) {
      if (left.IntAt(0, l) == right.IntAt(0, r)) ++matches;
    }
    expected_sum += left.DoubleAt(1, l) * static_cast<double>(matches);
  }
  EXPECT_NEAR(join_sum, expected_sum, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinRandomTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace linbp
