// Classifying research areas in a heterogeneous bibliographic network
// (the paper's Appendix F.2 experiment, on our synthetic DBLP substitute).
//
// Papers, authors, conferences and title terms form one graph; ~10% of the
// nodes carry explicit area labels (AI/DB/DM/IR). Under homophily, LinBP
// and SBP label the remaining 90%. We report agreement with the planted
// areas per node kind.

#include <cstdio>
#include <vector>

#include "src/core/convergence.h"
#include "src/core/coupling.h"
#include "src/core/labeling.h"
#include "src/core/linbp.h"
#include "src/core/sbp.h"
#include "src/graph/beliefs.h"
#include "src/graph/dblp.h"
#include "src/util/timer.h"

int main() {
  using namespace linbp;

  DblpConfig config;       // scaled-down for a quick run
  config.num_papers = 3000;
  config.num_authors = 3100;
  config.num_terms = 1600;
  const DblpGraph dblp = MakeSyntheticDblp(config);
  const std::int64_t n = dblp.graph.num_nodes();
  std::printf("synthetic DBLP: %lld nodes, %lld directed edges, "
              "%zu labeled (%.1f%%)\n\n",
              static_cast<long long>(n),
              static_cast<long long>(dblp.graph.num_directed_edges()),
              dblp.labeled_nodes.size(),
              100.0 * static_cast<double>(dblp.labeled_nodes.size()) /
                  static_cast<double>(n));

  // Explicit beliefs from the labeled nodes' planted classes.
  DenseMatrix explicit_beliefs(n, 4);
  for (const std::int64_t v : dblp.labeled_nodes) {
    const auto row = ExplicitResidualForClass(4, dblp.node_class[v], 0.2);
    for (int c = 0; c < 4; ++c) explicit_beliefs.At(v, c) = row[c];
  }

  const CouplingMatrix coupling = DblpCoupling();  // Fig. 11a homophily
  const double eps =
      0.5 * ExactEpsilonThreshold(dblp.graph, coupling,
                                  LinBpVariant::kLinBp);
  std::printf("coupling scale eps_H = %.2e (half the Lemma 8 threshold)\n\n",
              eps);

  WallTimer timer;
  const LinBpResult lin =
      RunLinBp(dblp.graph, coupling.ScaledResidual(eps), explicit_beliefs);
  const double lin_ms = timer.Millis();
  timer.Reset();
  const SbpResult sbp = RunSbp(dblp.graph, coupling.residual(),
                               explicit_beliefs, dblp.labeled_nodes);
  const double sbp_ms = timer.Millis();

  const char* const kinds[] = {"papers", "authors", "conferences", "terms"};
  auto report = [&](const DenseMatrix& beliefs, const char* name,
                    double millis) {
    const TopBeliefAssignment top = TopBeliefs(beliefs);
    std::int64_t correct[4] = {0, 0, 0, 0};
    std::int64_t total[4] = {0, 0, 0, 0};
    for (std::int64_t v = 0; v < n; ++v) {
      if (dblp.node_class[v] < 0) continue;  // generic terms
      const int kind = static_cast<int>(dblp.node_kind[v]);
      ++total[kind];
      if (top.classes[v].size() == 1 &&
          top.classes[v][0] == dblp.node_class[v]) {
        ++correct[kind];
      }
    }
    std::printf("%-6s (%.0f ms):", name, millis);
    for (int kind = 0; kind < 4; ++kind) {
      std::printf("  %s %.1f%%", kinds[kind],
                  total[kind] == 0 ? 0.0
                                   : 100.0 * static_cast<double>(
                                                 correct[kind]) /
                                         static_cast<double>(total[kind]));
    }
    std::printf("\n");
  };
  std::printf("agreement with planted areas, by node kind:\n");
  report(lin.beliefs, "LinBP", lin_ms);
  report(sbp.beliefs, "SBP", sbp_ms);

  // Cross-method agreement (the paper's F1 metric, LinBP as reference).
  const QualityMetrics agreement =
      CompareAssignments(TopBeliefs(lin.beliefs), TopBeliefs(sbp.beliefs));
  std::printf("\nSBP vs LinBP top-belief agreement: F1 = %.3f\n",
              agreement.f1);
  return 0;
}
