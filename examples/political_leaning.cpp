// Binary-class labeling (k = 2): LinBP vs the FaBP specialization.
//
// Appendix E of the paper shows that for two classes the multi-class
// linearization collapses to the scalar FaBP system of Koutra et al. This
// example plants two communities in a random social network, labels a few
// members, and shows that (i) FaBP and LinBP produce identical rankings and
// (ii) both recover the planted communities.

#include <cstdio>
#include <vector>

#include "src/core/convergence.h"
#include "src/core/coupling.h"
#include "src/core/fabp.h"
#include "src/core/labeling.h"
#include "src/core/linbp.h"
#include "src/graph/graph.h"
#include "src/util/random.h"

int main() {
  using namespace linbp;
  const std::int64_t per_side = 80;
  const std::int64_t n = 2 * per_side;
  Rng rng(2024);

  // Two communities with dense intra- and sparse inter-community edges.
  std::vector<Edge> edges;
  std::vector<std::vector<bool>> used(n, std::vector<bool>(n, false));
  auto add = [&](std::int64_t u, std::int64_t v) {
    if (u != v && !used[u][v]) {
      used[u][v] = used[v][u] = true;
      edges.push_back({u, v, 1.0});
    }
  };
  for (std::int64_t i = 0; i < n * 4; ++i) {
    const std::int64_t side = rng.NextBounded(2);
    add(side * per_side + rng.NextInt(0, per_side - 1),
        side * per_side + rng.NextInt(0, per_side - 1));
  }
  for (std::int64_t i = 0; i < n / 8; ++i) {
    add(rng.NextInt(0, per_side - 1), per_side + rng.NextInt(0, per_side - 1));
  }
  const Graph graph(n, edges);
  std::printf("social network: %lld people, %lld friendships\n",
              static_cast<long long>(n),
              static_cast<long long>(graph.num_undirected_edges()));

  // Label 5%: the first community leans class 0, the second class 1.
  std::vector<double> fabp_priors(n, 0.0);
  DenseMatrix linbp_priors(n, 2);
  std::int64_t labels = 0;
  for (std::int64_t v = 0; v < n; ++v) {
    if (!rng.NextBernoulli(0.05)) continue;
    const double sign = v < per_side ? 1.0 : -1.0;
    fabp_priors[v] = 0.1 * sign;
    linbp_priors.At(v, 0) = 0.1 * sign;
    linbp_priors.At(v, 1) = -0.1 * sign;
    ++labels;
  }
  std::printf("labeled people: %lld\n\n", static_cast<long long>(labels));

  // Homophily strength safely inside the convergence region.
  const double rho_a = AdjacencySpectralRadius(graph);
  const double h = 0.3 / rho_a;
  std::printf("rho(A) = %.3f, homophily residual h = %.4f\n\n", rho_a, h);

  const FabpResult fabp = RunFabp(graph, h, fabp_priors);
  LinBpOptions options;
  options.variant = LinBpVariant::kLinBpExact;  // FaBP's exact counterpart
  options.max_iterations = 1000;
  options.tolerance = 1e-14;
  const DenseMatrix hhat{{h, -h}, {-h, h}};
  const LinBpResult lin = RunLinBp(graph, hhat, linbp_priors, options);

  // (i) FaBP == LinBP (k = 2).
  double max_diff = 0.0;
  for (std::int64_t v = 0; v < n; ++v) {
    const double d = std::abs(fabp.beliefs[v] - lin.beliefs.At(v, 0));
    if (d > max_diff) max_diff = d;
  }
  std::printf("max |FaBP - LinBP| over all nodes: %.2e\n", max_diff);

  // (ii) community recovery.
  std::int64_t correct = 0;
  for (std::int64_t v = 0; v < n; ++v) {
    const bool predicted_first = fabp.beliefs[v] > 0.0;
    if (predicted_first == (v < per_side)) ++correct;
  }
  std::printf("community recovery accuracy: %.1f%%\n",
              100.0 * static_cast<double>(correct) / static_cast<double>(n));
  return 0;
}
