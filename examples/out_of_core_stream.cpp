// Out-of-core LinBP: shard a scenario to disk, then solve it by
// streaming the shards instead of materializing the CSR.
//
//   ./example_out_of_core_stream [spec [shards]]
//
// The streamed solve goes through engine::ShardStreamBackend: every
// propagation sweep walks the manifest's row blocks with double-buffered
// prefetch, holding at most two blocks' CSR bytes in memory, and the
// resulting beliefs are bit-identical to the in-memory run.

#include <cstdio>
#include <string>

#include "src/core/convergence.h"
#include "src/core/linbp.h"
#include "src/dataset/registry.h"
#include "src/dataset/shard.h"
#include "src/engine/shard_stream_backend.h"
#include "src/util/mem_info.h"

int main(int argc, char** argv) {
  using namespace linbp;
  const std::string spec =
      argc > 1 ? argv[1] : "sbm:n=50000,k=4,deg=10,seed=7";
  const std::int64_t shards = argc > 2 ? std::atoll(argv[2]) : 8;
  const std::string dir = "/tmp/linbp_example_stream";

  std::string error;
  auto scenario = dataset::MakeScenario(spec, &error);
  if (!scenario.has_value()) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  const auto sharded = dataset::ShardSnapshot(*scenario, shards, dir, &error);
  if (!sharded.has_value()) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  std::printf("sharded %s into %lld row blocks under %s\n", spec.c_str(),
              static_cast<long long>(sharded->num_shards), dir.c_str());

  auto backend =
      engine::ShardStreamBackend::Open(sharded->manifest_path, &error);
  if (!backend.has_value()) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }

  const CouplingMatrix coupling = scenario->Coupling();
  const double eps =
      0.5 * ExactEpsilonThreshold(*backend, coupling, LinBpVariant::kLinBp);
  LinBpOptions options;
  options.max_iterations = 100;

  // In-memory reference on the materialized graph...
  const LinBpResult reference =
      RunLinBp(scenario->graph, coupling.ScaledResidual(eps),
               scenario->explicit_residuals, options);
  // ...and the same solve streamed from disk.
  const LinBpResult streamed =
      RunLinBp(*backend, coupling.ScaledResidual(eps),
               backend->explicit_residuals(), options);
  if (streamed.failed) {
    std::fprintf(stderr, "stream failed: %s\n", streamed.error.c_str());
    return 1;
  }

  const auto& reader = backend->reader();
  std::printf(
      "streamed LinBP: %d sweeps, max |streamed - in-memory| = %.1e\n"
      "full CSR %lld bytes; peak streamed CSR residency %lld bytes "
      "(<= 2 blocks of %lld)\n"
      "process peak RSS %lld bytes\n",
      streamed.iterations,
      streamed.beliefs.MaxAbsDiff(reference.beliefs),
      static_cast<long long>((backend->num_nodes() + 1) * 8 +
                             backend->num_stored_entries() * 12),
      static_cast<long long>(reader.peak_resident_csr_bytes()),
      static_cast<long long>(reader.max_block_csr_bytes()),
      static_cast<long long>(util::PeakRssBytes()));
  return 0;
}
