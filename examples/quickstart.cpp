// Quickstart: label the nodes of a small social network with LinBP.
//
// Scenario (Sect. 1 of the paper): we know the political leaning of a few
// people and assume homophily -- friends tend to share leanings. LinBP
// propagates the known labels through the friendship graph in closed form.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "src/core/convergence.h"
#include "src/core/coupling.h"
#include "src/core/labeling.h"
#include "src/core/linbp.h"
#include "src/graph/beliefs.h"
#include "src/graph/graph.h"

int main() {
  using namespace linbp;

  // 1. A friendship graph on 8 people (0..7).
  const Graph graph(8, {{0, 1, 1.0},
                        {0, 2, 1.0},
                        {1, 2, 1.0},
                        {2, 3, 1.0},
                        {3, 4, 1.0},
                        {4, 5, 1.0},
                        {4, 6, 1.0},
                        {5, 6, 1.0},
                        {6, 7, 1.0}});

  // 2. Homophily coupling (Fig. 1a): Democrats befriend Democrats,
  //    Republicans befriend Republicans.
  const CouplingMatrix coupling = HomophilyCoupling2();

  // 3. Explicit beliefs: person 0 is a known Democrat, person 7 a known
  //    Republican. Residual form: +/- deviation from the uniform 1/2.
  DenseMatrix explicit_beliefs(8, 2);
  explicit_beliefs.At(0, 0) = 0.1;   // D
  explicit_beliefs.At(0, 1) = -0.1;
  explicit_beliefs.At(7, 0) = -0.1;  // R
  explicit_beliefs.At(7, 1) = 0.1;

  // 4. Pick a coupling scale with guaranteed convergence (Lemma 8) and run.
  const double eps = 0.5 * ExactEpsilonThreshold(graph, coupling,
                                                 LinBpVariant::kLinBp);
  std::printf("convergence-safe coupling scale eps_H = %.4f\n\n", eps);

  const LinBpResult result =
      RunLinBp(graph, coupling.ScaledResidual(eps), explicit_beliefs);
  std::printf("LinBP converged after %d iterations (last delta %.2e)\n\n",
              result.iterations, result.last_delta);

  // 5. Read out the labels.
  const TopBeliefAssignment top = TopBeliefs(result.beliefs);
  const char* const names[] = {"Democrat", "Republican"};
  std::printf("%-8s  %-12s  %10s  %10s\n", "person", "label", "b(D)",
              "b(R)");
  for (std::int64_t v = 0; v < graph.num_nodes(); ++v) {
    std::printf("%-8lld  %-12s  %10.5f  %10.5f\n",
                static_cast<long long>(v), names[top.classes[v][0]],
                result.beliefs.At(v, 0), result.beliefs.At(v, 1));
  }
  std::printf(
      "\nPeople near person 0 lean Democrat, people near person 7 lean\n"
      "Republican, and person 3/4 sit close to the boundary.\n");
  return 0;
}
