// Scenario-driven quickstart: the whole LinBP/SBP pipeline in a few
// lines, using the dataset registry instead of hand-built graphs.
//
// Any registered workload is one spec string away — change kSpec to
// "rmat:scale=12,k=3", "dblp:", "sbm:n=100000,k=4,mode=heterophily", or
// "snap:path=saved.lbps" and everything downstream stays identical. Run
// `linbp_cli list` for the full registry.
//
// The tail of the example shows the sharded snapshot format: the same
// scenario split into nnz-balanced row-block shard files behind a
// checksummed manifest (src/dataset/shard.h), loaded back in parallel
// through the very same "snap:path=..." spec. Shard when one file stops
// being comfortable — huge graphs, parallel load, or future out-of-core
// runs; the round trip is bit-identical either way.

#include <cstdio>
#include <string>

#include "src/core/convergence.h"
#include "src/core/labeling.h"
#include "src/core/linbp.h"
#include "src/core/sbp.h"
#include "src/dataset/registry.h"
#include "src/dataset/shard.h"

int main() {
  using namespace linbp;
  const char* kSpec = "fraud:users=600,products=300,seed=11";

  std::string error;
  auto scenario = dataset::MakeScenario(kSpec, &error);
  if (!scenario.has_value()) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  std::printf("scenario %s\n  %lld nodes, %lld edges, k=%lld, %zu labeled\n",
              scenario->spec.c_str(),
              static_cast<long long>(scenario->graph.num_nodes()),
              static_cast<long long>(scenario->graph.num_undirected_edges()),
              static_cast<long long>(scenario->k),
              scenario->explicit_nodes.size());

  // A convergence-safe eps_H: half the exact Lemma 8 threshold.
  const CouplingMatrix coupling = scenario->Coupling();
  const double eps =
      0.5 * ExactEpsilonThreshold(scenario->graph, coupling,
                                  LinBpVariant::kLinBp);

  const LinBpResult linbp = RunLinBp(
      scenario->graph, coupling.ScaledResidual(eps),
      scenario->explicit_residuals);
  const SbpResult sbp =
      RunSbp(scenario->graph, coupling.residual(),
             scenario->explicit_residuals, scenario->explicit_nodes);

  // Score both methods against the planted ground truth.
  TopBeliefAssignment truth;
  truth.classes.resize(scenario->graph.num_nodes());
  std::vector<std::int64_t> known;
  for (std::int64_t v = 0; v < scenario->graph.num_nodes(); ++v) {
    if (scenario->ground_truth[v] >= 0) {
      truth.classes[v].push_back(scenario->ground_truth[v]);
      known.push_back(v);
    }
  }
  const QualityMetrics lin_quality =
      CompareAssignments(truth, TopBeliefs(linbp.beliefs), known);
  const QualityMetrics sbp_quality =
      CompareAssignments(truth, TopBeliefs(sbp.beliefs), known);
  std::printf("  LinBP: F1 %.4f after %d iterations (eps=%.4g)\n",
              lin_quality.f1, linbp.iterations, eps);
  std::printf("  SBP:   F1 %.4f (single pass, scale-free)\n",
              sbp_quality.f1);

  // Persist the scenario as a sharded snapshot (4 nnz-balanced row
  // blocks + manifest) and reload it — in parallel — via the same snap:
  // spec the CLI and benches use. Loading the manifest reproduces the
  // monolithic snapshot bit for bit.
  const std::string dir = "/tmp/linbp_quickstart_shards";
  const auto sharded = dataset::ShardSnapshot(*scenario, 4, dir, &error);
  if (!sharded.has_value()) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  auto reloaded = dataset::MakeScenario(
      "snap:path=" + sharded->manifest_path, &error,
      exec::ExecContext::WithThreads(4));
  if (!reloaded.has_value()) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  std::printf("  sharded round trip: %lld shard(s) in %s -> %lld nodes, "
              "%lld edges, identical CSR: %s\n",
              static_cast<long long>(sharded->num_shards), dir.c_str(),
              static_cast<long long>(reloaded->graph.num_nodes()),
              static_cast<long long>(
                  reloaded->graph.num_undirected_edges()),
              reloaded->graph.adjacency().values() ==
                      scenario->graph.adjacency().values()
                  ? "yes"
                  : "NO");
  return 0;
}
