// Fraud detection in an online auction network (the paper's motivating
// example, Fig. 1c): honest users (H), accomplices (A) and fraudsters (F).
//
// Accomplices trade with honest users to build reputation and with
// fraudsters to lend it; fraudsters mostly interact with accomplices,
// forming near-bipartite cores. The coupling matrix therefore mixes
// homophily (H-H) with heterophily (A-F).
//
// We synthesize such a trading network with planted roles, reveal a few
// labels, and let LinBP and SBP infer the rest.

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "src/core/convergence.h"
#include "src/core/coupling.h"
#include "src/core/labeling.h"
#include "src/core/linbp.h"
#include "src/core/sbp.h"
#include "src/graph/beliefs.h"
#include "src/graph/graph.h"
#include "src/util/random.h"

namespace {

using namespace linbp;

constexpr int kHonest = 0;
constexpr int kAccomplice = 1;
constexpr int kFraudster = 2;

struct AuctionNetwork {
  Graph graph;
  std::vector<int> role;  // planted ground truth
};

// Samples a trading network that follows the Fig. 1c interaction pattern.
AuctionNetwork MakeAuctionNetwork(std::int64_t honest, std::int64_t accomplices,
                                  std::int64_t fraudsters,
                                  std::uint64_t seed) {
  Rng rng(seed);
  const std::int64_t n = honest + accomplices + fraudsters;
  AuctionNetwork net{Graph(), std::vector<int>(n, kHonest)};
  for (std::int64_t v = honest; v < honest + accomplices; ++v) {
    net.role[v] = kAccomplice;
  }
  for (std::int64_t v = honest + accomplices; v < n; ++v) {
    net.role[v] = kFraudster;
  }

  std::vector<Edge> edges;
  std::vector<std::vector<bool>> used(n, std::vector<bool>(n, false));
  auto add = [&](std::int64_t u, std::int64_t v) {
    if (u == v || used[u][v]) return;
    used[u][v] = used[v][u] = true;
    edges.push_back({u, v, 1.0});
  };
  auto pick = [&](std::int64_t base, std::int64_t count) {
    return base + static_cast<std::int64_t>(rng.NextBounded(count));
  };

  // Honest users trade among themselves (homophily)...
  for (std::int64_t i = 0; i < honest * 3; ++i) {
    add(pick(0, honest), pick(0, honest));
  }
  // ... and with accomplices (who build reputation).
  for (std::int64_t i = 0; i < accomplices * 4; ++i) {
    add(pick(0, honest), pick(honest, accomplices));
  }
  // Fraudsters trade heavily with accomplices (near-bipartite core)...
  for (std::int64_t i = 0; i < fraudsters * 5; ++i) {
    add(pick(honest, accomplices), pick(honest + accomplices, fraudsters));
  }
  // ... and occasionally defraud honest users.
  for (std::int64_t i = 0; i < fraudsters; ++i) {
    add(pick(0, honest), pick(honest + accomplices, fraudsters));
  }
  net.graph = Graph(n, edges);
  return net;
}

}  // namespace

int main() {
  const std::int64_t honest = 60;
  const std::int64_t accomplices = 25;
  const std::int64_t fraudsters = 15;
  const AuctionNetwork net =
      MakeAuctionNetwork(honest, accomplices, fraudsters, /*seed=*/7);
  const std::int64_t n = net.graph.num_nodes();
  std::printf("auction network: %lld users, %lld trades\n",
              static_cast<long long>(n),
              static_cast<long long>(net.graph.num_undirected_edges()));

  // Reveal ~15%% of the roles (e.g. from past investigations).
  Rng rng(99);
  DenseMatrix explicit_beliefs(n, 3);
  std::vector<std::int64_t> labeled;
  for (std::int64_t v = 0; v < n; ++v) {
    if (!rng.NextBernoulli(0.15)) continue;
    labeled.push_back(v);
    const auto row = linbp::ExplicitResidualForClass(3, net.role[v], 0.3);
    for (int c = 0; c < 3; ++c) explicit_beliefs.At(v, c) = row[c];
  }
  std::printf("revealed labels: %zu users\n\n", labeled.size());

  const CouplingMatrix coupling = AuctionCoupling();
  const double eps =
      0.5 * ExactEpsilonThreshold(net.graph, coupling, LinBpVariant::kLinBp);

  // LinBP.
  const LinBpResult lin =
      RunLinBp(net.graph, coupling.ScaledResidual(eps), explicit_beliefs);
  // SBP (scale-free: uses the unscaled coupling).
  const SbpResult sbp =
      RunSbp(net.graph, coupling.residual(), explicit_beliefs, labeled);

  auto evaluate = [&](const DenseMatrix& beliefs, const char* name) {
    const TopBeliefAssignment top = TopBeliefs(beliefs);
    std::int64_t correct = 0;
    std::int64_t caught_fraudsters = 0;
    std::int64_t flagged = 0;
    for (std::int64_t v = 0; v < n; ++v) {
      if (top.classes[v].size() == 1 && top.classes[v][0] == net.role[v]) {
        ++correct;
      }
      const bool flagged_f =
          !top.classes[v].empty() && top.classes[v][0] == kFraudster;
      if (flagged_f) ++flagged;
      if (flagged_f && net.role[v] == kFraudster) ++caught_fraudsters;
    }
    std::printf("%-6s  accuracy %5.1f%%   fraudsters caught %lld/%lld "
                "(flagged %lld)\n",
                name, 100.0 * static_cast<double>(correct) /
                          static_cast<double>(n),
                static_cast<long long>(caught_fraudsters),
                static_cast<long long>(fraudsters),
                static_cast<long long>(flagged));
  };
  evaluate(lin.beliefs, "LinBP");
  evaluate(sbp.beliefs, "SBP");

  std::printf("\nmost suspicious unlabeled users (LinBP fraud score):\n");
  std::vector<std::pair<double, std::int64_t>> scores;
  std::vector<bool> is_labeled(n, false);
  for (const std::int64_t v : labeled) is_labeled[v] = true;
  for (std::int64_t v = 0; v < n; ++v) {
    if (!is_labeled[v]) scores.push_back({lin.beliefs.At(v, kFraudster), v});
  }
  std::sort(scores.rbegin(), scores.rend());
  for (int i = 0; i < 5 && i < static_cast<int>(scores.size()); ++i) {
    const auto [score, v] = scores[i];
    std::printf("  user %3lld  score %+.5f  planted role: %s\n",
                static_cast<long long>(v), score,
                net.role[v] == kFraudster     ? "FRAUDSTER"
                : net.role[v] == kAccomplice ? "accomplice"
                                             : "honest");
  }
  return 0;
}
