// Incremental labeling of a growing network with Delta-SBP (Sect. 6.3).
//
// SBP's nearest-labeled-neighbor semantics supports incremental
// maintenance: when edges or labels arrive, only the affected region is
// recomputed. This example streams updates into an SbpState and compares
// the incremental cost (nodes touched) against recomputing from scratch,
// checking that both produce identical beliefs.

#include <cstdio>
#include <vector>

#include "src/core/coupling.h"
#include "src/core/sbp.h"
#include "src/core/sbp_incremental.h"
#include "src/graph/beliefs.h"
#include "src/graph/generators.h"
#include "src/util/random.h"
#include "src/util/timer.h"

int main() {
  using namespace linbp;
  const std::int64_t n = 20000;
  Rng rng(123);

  // Start from a sparse random network with 1% labeled nodes.
  const Graph start = RandomConnectedGraph(n, n / 2, /*seed=*/5);
  const SeededBeliefs seeded = SeedPaperBeliefs(n, 3, n / 100, /*seed=*/6);
  const CouplingMatrix coupling = AuctionCoupling();

  WallTimer timer;
  SbpState state = SbpState::FromGraph(start, coupling.residual(),
                                       seeded.residuals,
                                       seeded.explicit_nodes);
  std::printf("initial SBP over %lld nodes / %lld edges: %.1f ms\n\n",
              static_cast<long long>(n),
              static_cast<long long>(start.num_undirected_edges()),
              timer.Millis());

  std::vector<Edge> all_edges = start.edges();
  DenseMatrix residuals = seeded.residuals;
  std::vector<std::int64_t> explicit_nodes = seeded.explicit_nodes;

  std::printf("%-8s %-10s %14s %14s %14s\n", "batch", "kind",
              "touched nodes", "incr [ms]", "scratch [ms]");
  for (int batch = 1; batch <= 6; ++batch) {
    const bool edge_batch = batch % 2 == 1;
    if (edge_batch) {
      // Stream 20 new random edges.
      std::vector<Edge> updates;
      while (updates.size() < 20) {
        const std::int64_t u = rng.NextInt(0, n - 1);
        const std::int64_t v = rng.NextInt(0, n - 1);
        if (u == v || start.adjacency().At(u, v) != 0.0) continue;
        bool dup = false;
        for (const Edge& e : updates) {
          if ((e.u == u && e.v == v) || (e.u == v && e.v == u)) dup = true;
        }
        if (dup) continue;
        updates.push_back({u, v, 1.0});
      }
      timer.Reset();
      state.AddEdges(updates);
      const double incr_ms = timer.Millis();
      all_edges.insert(all_edges.end(), updates.begin(), updates.end());

      timer.Reset();
      const Graph rebuilt(n, all_edges);
      const SbpResult scratch = RunSbp(rebuilt, coupling.residual(),
                                       residuals, explicit_nodes);
      const double scratch_ms = timer.Millis();
      std::printf("%-8d %-10s %14lld %14.2f %14.2f\n", batch, "edges",
                  static_cast<long long>(state.last_update_recomputed_nodes()),
                  incr_ms, scratch_ms);
      if (scratch.beliefs.MaxAbsDiff(state.beliefs()) > 1e-10) {
        std::printf("  !! incremental result deviates from scratch\n");
        return 1;
      }
    } else {
      // Stream 10 new labels.
      std::vector<std::int64_t> nodes;
      DenseMatrix rows(10, 3);
      while (nodes.size() < 10) {
        const std::int64_t v = rng.NextInt(0, n - 1);
        bool dup = false;
        for (const std::int64_t u : nodes) {
          if (u == v) dup = true;
        }
        if (dup) continue;
        const auto row = ExplicitResidualForClass(
            3, static_cast<std::int64_t>(rng.NextBounded(3)), 0.15);
        for (int c = 0; c < 3; ++c) {
          rows.At(static_cast<std::int64_t>(nodes.size()), c) = row[c];
          residuals.At(v, c) = row[c];
        }
        bool known = false;
        for (const std::int64_t u : explicit_nodes) {
          if (u == v) known = true;
        }
        if (!known) explicit_nodes.push_back(v);
        nodes.push_back(v);
      }
      timer.Reset();
      state.AddExplicitBeliefs(nodes, rows);
      const double incr_ms = timer.Millis();

      timer.Reset();
      const Graph rebuilt(n, all_edges);
      const SbpResult scratch = RunSbp(rebuilt, coupling.residual(),
                                       residuals, explicit_nodes);
      const double scratch_ms = timer.Millis();
      std::printf("%-8d %-10s %14lld %14.2f %14.2f\n", batch, "labels",
                  static_cast<long long>(state.last_update_recomputed_nodes()),
                  incr_ms, scratch_ms);
      if (scratch.beliefs.MaxAbsDiff(state.beliefs()) > 1e-10) {
        std::printf("  !! incremental result deviates from scratch\n");
        return 1;
      }
    }
  }
  std::printf(
      "\nEvery incremental update matched the from-scratch recomputation\n"
      "while touching only a small neighborhood of the change.\n");
  return 0;
}
