// Command-line front end for the linbp library; see cli_lib.h.

#include <cstdio>
#include <string>
#include <vector>

#include "tools/cli_lib.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string output;
  std::string error;
  bool usage_error = false;
  const int code = linbp::cli::RunMain(args, &output, &error, &usage_error);
  if (code != 0) {
    if (usage_error) {
      std::fprintf(stderr, "error: %s\n\n%s", error.c_str(),
                   linbp::cli::Usage().c_str());
    } else {
      std::fprintf(stderr, "error: %s\n", error.c_str());
    }
    return code;
  }
  std::fputs(output.c_str(), stdout);
  return 0;
}
