// Command-line front end for the linbp library; see cli_lib.h.

#include <cstdio>
#include <string>
#include <vector>

#include "tools/cli_lib.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string error;
  const auto options = linbp::cli::ParseOptions(args, &error);
  if (!options.has_value()) {
    std::fprintf(stderr, "error: %s\n\n%s", error.c_str(),
                 linbp::cli::Usage().c_str());
    return 1;
  }
  std::string output;
  const int code = linbp::cli::RunPipeline(*options, &output, &error);
  if (code != 0) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return code;
  }
  if (options->output_path.empty()) {
    std::fputs(output.c_str(), stdout);
  }
  return 0;
}
