// Library behind the `linbp_cli` command-line tool.
//
// The tool has one main pipeline plus four subcommands:
//   linbp_cli [flags]            read a problem (edge-list files or a
//                                --scenario spec), pick a coupling and a
//                                convergence-safe eps_H, run one of
//                                {bp, linbp, linbp*, sbp}, write labels;
//   linbp_cli list               list the registered scenarios;
//   linbp_cli convert [flags]    materialize a scenario and write it as a
//                                binary snapshot, a sharded snapshot,
//                                and/or text files;
//   linbp_cli shard [flags]      materialize a scenario and write it as a
//                                sharded snapshot (manifest + per-row-
//                                block shard files);
//   linbp_cli info [flags]       print a snapshot's or shard manifest's
//                                header;
//   linbp_cli serve [flags]      hold a warm LinBP state, answer top-k
//                                label queries, and consume update-
//                                stream lines from stdin;
//   linbp_cli trace [flags]      generate a mixed update trace plus the
//                                start/final snapshots that bracket it.
// Kept separate from main() so every step is unit testable.

#ifndef LINBP_TOOLS_CLI_LIB_H_
#define LINBP_TOOLS_CLI_LIB_H_

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace linbp {
namespace cli {

/// Parsed main-pipeline options.
struct Options {
  /// Scenario spec ("sbm:n=10000,k=4", "snap:path=g.lbps", ...). Mutually
  /// exclusive with graph_path/beliefs_path.
  std::string scenario;
  std::string graph_path;
  std::string beliefs_path;
  /// Preset name (homophily2 | heterophily2 | auction | dblp4 |
  /// kronecker3) or a path to a coupling matrix file. Empty picks the
  /// scenario's own coupling (scenario mode) or homophily2 (file mode).
  std::string coupling;
  /// Method: bp | linbp | linbp* | sbp.
  std::string method = "linbp";
  /// "auto" picks half the Lemma 8 threshold; otherwise a double.
  std::string eps = "auto";
  /// Number of classes; 0 means "infer from the coupling matrix".
  std::int64_t k = 0;
  /// Output file for "v class" lines; empty writes to stdout.
  std::string output_path;
  /// Print the convergence report (and, when ground truth is available,
  /// quality metrics) before exiting.
  bool report = false;
  /// Worker threads for the solver kernels: -1 defers to the LINBP_THREADS
  /// environment variable (default serial), 0 means all hardware threads,
  /// N >= 1 means exactly N. Results are identical for every setting.
  int threads = -1;
  /// Out-of-core mode: solve by streaming the shard manifest named by a
  /// "snap:path=MANIFEST" scenario spec instead of materializing the
  /// graph (methods linbp / linbp* only). Labels are bit-identical to
  /// the in-memory run.
  bool stream = false;
  /// Belief-storage precision on the solver hot path: "f64" (default,
  /// bit-identical to previous releases) or "f32" (half the memory
  /// traffic per sweep; labels may differ from f64 on a small fraction
  /// of hard-to-classify nodes). linbp / linbp* only.
  std::string precision = "f64";
  /// Decoded-block cache budget in bytes for --stream solves (0 = off,
  /// the strict two-blocks-resident mode). When the manifest's decoded
  /// working set fits the budget, sweeps after the first hit the cache
  /// and re-read nothing from disk. Requires --stream.
  std::int64_t cache_budget = 0;
};

/// Parsed `convert` options.
struct ConvertOptions {
  /// Scenario spec to materialize (required).
  std::string scenario;
  /// Snapshot output path (optional).
  std::string snapshot_path;
  /// Sharded snapshot output directory (optional); `shards` bounds the
  /// nnz-balanced row-block count used when it is set.
  std::string shards_dir;
  std::int64_t shards = 4;
  /// Shard payload encoding: "" = raw v1, "f64" / "f32" = compressed v2
  /// (delta+varint columns; f32 also narrows the value sections).
  std::string compress;
  /// Text export paths (each optional).
  std::string graph_path;
  std::string beliefs_path;
  std::string labels_path;
  int threads = -1;
};

/// Parsed `shard` options.
struct ShardOptions {
  /// Scenario spec to materialize (required).
  std::string scenario;
  /// Output directory for the manifest + shard files (required).
  std::string out_dir;
  /// Maximum shard count (nnz-balanced row blocks; fewer when rows run
  /// out).
  std::int64_t shards = 4;
  /// Shard payload encoding, as in ConvertOptions::compress.
  std::string compress;
  int threads = -1;
};

/// Parsed `info` options (`snapshot_path` may name a monolithic snapshot
/// or a shard manifest; the file's magic decides).
struct InfoOptions {
  std::string snapshot_path;
};

/// Parsed `serve` options: a long-running warm LinBpState answering
/// label queries while consuming update-stream lines from stdin.
struct ServeOptions {
  /// Scenario spec naming the problem to serve (required).
  std::string scenario;
  /// Optional coupling override (preset name or matrix file).
  std::string coupling;
  /// linbp | linbp* (the warm state supports the linearized variants).
  std::string method = "linbp";
  /// "auto" picks half the Lemma 8 threshold of the STARTING graph;
  /// pass an explicit value when the graph will grow much denser.
  std::string eps = "auto";
  int threads = -1;
  /// Belief-storage precision of the warm state's re-solves ("f64" or
  /// "f32"; see Options::precision).
  std::string precision = "f64";
};

/// Parsed `trace` options: generate a mixed update trace from a scenario
/// and write the serve round-trip artifacts into a directory.
struct TraceOptions {
  /// Scenario spec to derive the trace from (required).
  std::string scenario;
  /// Output directory (required); receives start.lbps, final.lbps,
  /// updates.txt, and eps.txt.
  std::string out_dir;
  std::int64_t ops = 64;
  std::uint64_t seed = 1;
  /// Variant whose convergence threshold eps.txt is computed for.
  std::string method = "linbp";
  int threads = -1;
};

/// Parses main-pipeline argv; returns nullopt and fills *error on unknown
/// flags or missing required arguments.
std::optional<Options> ParseOptions(const std::vector<std::string>& args,
                                    std::string* error);

/// Usage summary covering the pipeline and the subcommands.
std::string Usage();

/// Runs the main pipeline; returns the process exit code and fills
/// *output with the produced label lines (also written to
/// options.output_path if set).
int RunPipeline(const Options& options, std::string* output,
                std::string* error);

/// Runs the serve REPL: solves the scenario cold, then answers one
/// reply line per input line on `out` until EOF or `quit`:
///   a/d/w/b <update-stream line>  ->  "ok sweeps=N" | "error: ..."
///   q v [v...]                    ->  one "v class [class...]" per node
///   labels                        ->  label lines for every node
///   stats                         ->  one summary line (counts plus
///                                     update/query latency percentiles)
///   metrics                       ->  Prometheus text exposition dump
/// Malformed or invalid lines get an "error: ..." reply and leave the
/// state untouched; the loop never aborts on input. Returns nonzero only
/// for setup failures (bad scenario, initial solve divergence).
int RunServe(const ServeOptions& options, std::istream& in,
             std::ostream& out, std::string* error);

/// Generates a mixed update trace from the scenario and writes
/// out_dir/{start.lbps, final.lbps, updates.txt, eps.txt}: the warm
/// starting snapshot, the snapshot with every update applied, the
/// stream between them, and an eps valid for BOTH graphs (half the
/// smaller exact threshold) so warm and cold runs are comparable.
int RunTrace(const TraceOptions& options, std::string* output,
             std::string* error);

/// True iff `linbp_cli info` should warn that a full (non-streamed) load
/// of `payload_bytes` exceeds the machine's memory. `available_bytes`
/// follows util::AvailableMemoryBytes semantics: 0 means UNKNOWN (no
/// readable /proc/meminfo), and unknown never warns — a missing metric
/// is not evidence of low RAM.
bool LowRamWarning(std::int64_t payload_bytes, std::int64_t available_bytes);

/// Top-level dispatcher: handles "list", "convert", "info", and the main
/// pipeline. Fills *output with whatever should go to stdout. When
/// `usage_error` is non-null it is set to true iff the failure was an
/// argument-parsing problem (the caller then shows Usage(); runtime
/// failures like divergence keep their message front and center).
int RunMain(const std::vector<std::string>& args, std::string* output,
            std::string* error, bool* usage_error = nullptr);

}  // namespace cli
}  // namespace linbp

#endif  // LINBP_TOOLS_CLI_LIB_H_
