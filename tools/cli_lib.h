// Library behind the `linbp_cli` command-line tool.
//
// The pipeline reads an edge list and a belief list, picks a coupling
// matrix (preset name or residual matrix file), chooses a convergence-safe
// eps_H when asked to, runs one of {bp, linbp, linbp*, sbp}, and writes the
// top-belief labels. Kept separate from main() so every step is unit
// testable.

#ifndef LINBP_TOOLS_CLI_LIB_H_
#define LINBP_TOOLS_CLI_LIB_H_

#include <optional>
#include <string>
#include <vector>

namespace linbp {
namespace cli {

/// Parsed command-line options.
struct Options {
  std::string graph_path;
  std::string beliefs_path;
  /// Preset name (homophily2 | heterophily2 | auction | dblp4) or a path to
  /// a residual coupling matrix file.
  std::string coupling = "homophily2";
  /// Method: bp | linbp | linbp* | sbp.
  std::string method = "linbp";
  /// "auto" picks half the Lemma 8 threshold; otherwise a double.
  std::string eps = "auto";
  /// Number of classes; 0 means "infer from the coupling matrix".
  std::int64_t k = 0;
  /// Output file for "v class" lines; empty writes to stdout.
  std::string output_path;
  /// Print the convergence report before running.
  bool report = false;
  /// Worker threads for the solver kernels: -1 defers to the LINBP_THREADS
  /// environment variable (default serial), 0 means all hardware threads,
  /// N >= 1 means exactly N. Results are identical for every setting.
  int threads = -1;
};

/// Parses argv; returns nullopt and fills *error on unknown flags or
/// missing required arguments.
std::optional<Options> ParseOptions(const std::vector<std::string>& args,
                                    std::string* error);

/// One-line usage summary.
std::string Usage();

/// Runs the pipeline; returns the process exit code and fills *output with
/// the produced label lines (also written to options.output_path if set).
int RunPipeline(const Options& options, std::string* output,
                std::string* error);

}  // namespace cli
}  // namespace linbp

#endif  // LINBP_TOOLS_CLI_LIB_H_
