// bench_diff: record-by-record comparison of two bench JSON files.
//
// Reads the repo's BENCH_*.json shapes — the {"context": ..., "runs":
// [...]} format the bench drivers emit and the {"context": ...,
// "benchmarks": [...]} format of google-benchmark — plus a bare record
// array or a single record object. Records are matched by an identity
// key (bench/scenario/threads/... fields, or the google-benchmark
// "name"), timing fields are compared as current/baseline ratios, and
// ratios above a threshold gate the exit status. Host-provenance
// mismatches (different hardware_threads, build type, ...) warn instead
// of gating: numbers from different host shapes are not comparable, and
// the tool says so rather than failing or silently passing.

#ifndef LINBP_TOOLS_BENCH_DIFF_LIB_H_
#define LINBP_TOOLS_BENCH_DIFF_LIB_H_

#include <map>
#include <string>
#include <vector>

namespace linbp {
namespace cli {

/// One bench record, flattened for comparison.
struct BenchRecord {
  /// Identity of the record within its file, e.g.
  /// "bench=dataset_snapshot_load scenario=sbm:... threads=1" or a
  /// google-benchmark run name. Records in the two files match when
  /// their keys are equal.
  std::string key;
  /// Every numeric field (timings, counts, ratios). Only timing fields
  /// — names ending in "_seconds", plus "real_time" / "cpu_time" — are
  /// gated; the rest are informational.
  std::map<std::string, double> numbers;
  /// Host-provenance fields ("host" object of a record, or the shared
  /// top-level "context" of a google-benchmark file), stringified.
  std::map<std::string, std::string> host;
};

/// Parses one bench JSON payload into records. Accepts {"runs": [...]},
/// {"benchmarks": [...]}, a bare array of record objects, or a single
/// record object. Returns false with *error set on malformed JSON or an
/// unrecognized shape.
bool ParseBenchRecords(const std::string& json,
                       std::vector<BenchRecord>* records, std::string* error);

/// True for fields where a larger current value is a slowdown and
/// therefore gated: names ending "_seconds", "real_time", "cpu_time".
bool IsGatedTimingField(const std::string& field);

struct BenchDiffOptions {
  /// A gated field regresses when current / baseline exceeds this (and
  /// the baseline is meaningfully nonzero). The default is deliberately
  /// loose — CI shares hardware with other jobs, so only order-of-
  /// magnitude slowdowns are actionable there.
  double threshold = 5.0;
  /// Treat a baseline record with no matching current record as a
  /// failure instead of a note.
  bool fail_on_missing = false;
};

/// One compared numeric field of one matched record pair.
struct BenchDiffEntry {
  std::string key;    // record identity
  std::string field;  // numeric field name
  double baseline = 0.0;
  double current = 0.0;
  double percent = 0.0;  // (current - baseline) / baseline * 100
  bool gated = false;    // IsGatedTimingField(field)
  bool regression = false;
};

/// Full comparison outcome.
struct BenchDiffResult {
  std::vector<BenchDiffEntry> entries;  // matched fields, file order
  std::vector<std::string> warnings;    // host mismatches, unmatched current
  std::vector<std::string> missing;     // baseline records absent in current
  int regressions = 0;
  /// Gate verdict under the options: regressions > 0, or missing
  /// records with fail_on_missing.
  bool failed = false;
};

/// Compares records pairwise by key.
BenchDiffResult DiffBenchRecords(const std::vector<BenchRecord>& baseline,
                                 const std::vector<BenchRecord>& current,
                                 const BenchDiffOptions& options = {});

/// Human-readable report: one line per compared field plus warnings and
/// the verdict.
std::string FormatBenchDiffReport(const BenchDiffResult& result,
                                  const BenchDiffOptions& options);

/// The bench_diff CLI: --baseline=FILE --current=FILE [--threshold=X]
/// [--fail-on-missing]. Writes the report to *output. Returns 0 when
/// the gate passes, 1 on regression (or missing records with
/// --fail-on-missing), 2 on usage or parse errors (*error set).
int BenchDiffMain(const std::vector<std::string>& args, std::string* output,
                  std::string* error);

}  // namespace cli
}  // namespace linbp

#endif  // LINBP_TOOLS_BENCH_DIFF_LIB_H_
