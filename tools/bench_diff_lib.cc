#include "tools/bench_diff_lib.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

namespace linbp {
namespace cli {
namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON reader. The repo emits all its bench
// JSON by hand (no library dependency), so it reads it the same way.
// Covers the full JSON grammar except \u escapes beyond ASCII, which
// never appear in bench output (they decode to '?').

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& member : object) {
      if (member.first == key) return &member.second;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  JsonParser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool Parse(JsonValue* value) {
    SkipWhitespace();
    if (!ParseValue(value, 0)) return false;
    SkipWhitespace();
    if (pos_ != text_.size()) return Fail("trailing content after JSON value");
    return true;
  }

 private:
  bool Fail(const std::string& message) {
    if (error_ != nullptr) {
      *error_ = message + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool ParseValue(JsonValue* value, int depth) {
    if (depth > 64) return Fail("nesting too deep");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(value, depth);
    if (c == '[') return ParseArray(value, depth);
    if (c == '"') {
      value->kind = JsonValue::Kind::kString;
      return ParseString(&value->string);
    }
    if (c == 't' || c == 'f') return ParseKeyword(value);
    if (c == 'n') return ParseKeyword(value);
    return ParseNumber(value);
  }

  bool ParseKeyword(JsonValue* value) {
    if (text_.compare(pos_, 4, "true") == 0) {
      value->kind = JsonValue::Kind::kBool;
      value->boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      value->kind = JsonValue::Kind::kBool;
      value->boolean = false;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      value->kind = JsonValue::Kind::kNull;
      pos_ += 4;
      return true;
    }
    return Fail("unrecognized token");
  }

  bool ParseNumber(JsonValue* value) {
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    const double parsed = std::strtod(begin, &end);
    if (end == begin) return Fail("expected a value");
    value->kind = JsonValue::Kind::kNumber;
    value->number = parsed;
    pos_ += static_cast<std::size_t>(end - begin);
    return true;
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return Fail("unterminated escape");
        const char escape = text_[pos_ + 1];
        pos_ += 2;
        switch (escape) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
            const std::string hex = text_.substr(pos_, 4);
            char* end = nullptr;
            const long code = std::strtol(hex.c_str(), &end, 16);
            if (end != hex.c_str() + 4) return Fail("bad \\u escape");
            out->push_back(code >= 0x20 && code < 0x7f
                               ? static_cast<char>(code)
                               : '?');
            pos_ += 4;
            break;
          }
          default:
            return Fail("unknown escape");
        }
        continue;
      }
      out->push_back(c);
      ++pos_;
    }
    return Fail("unterminated string");
  }

  bool ParseArray(JsonValue* value, int depth) {
    value->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue element;
      SkipWhitespace();
      if (!ParseValue(&element, depth + 1)) return false;
      value->array.push_back(std::move(element));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseObject(JsonValue* value, int depth) {
    value->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':'");
      }
      ++pos_;
      SkipWhitespace();
      JsonValue member;
      if (!ParseValue(&member, depth + 1)) return false;
      value->object.emplace_back(std::move(key), std::move(member));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Record extraction.

std::string NumberToString(double value) {
  char buf[32];
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", value);
  }
  return buf;
}

std::string ScalarToString(const JsonValue& value) {
  switch (value.kind) {
    case JsonValue::Kind::kString: return value.string;
    case JsonValue::Kind::kNumber: return NumberToString(value.number);
    case JsonValue::Kind::kBool: return value.boolean ? "true" : "false";
    default: return "";
  }
}

bool IsScalar(const JsonValue& value) {
  return value.kind == JsonValue::Kind::kString ||
         value.kind == JsonValue::Kind::kNumber ||
         value.kind == JsonValue::Kind::kBool;
}

// The fields that name a run (in key order) rather than measure it.
// "name" covers google-benchmark records inside a "runs" array too.
// "precision", "compression", and "cache_budget" are identity, not
// metrics: an f32 record must never pair with an f64 one, a compressed
// stream never with a raw one, a cached run never with an uncached one
// (the numbers measure different memory or disk traffic), and a record
// without the field predates the corresponding seam, so missing-vs-
// present also keeps records apart. DiffBenchRecords diagnoses such
// near-pairs with a dedicated warning per field.
const char* const kIdentityFields[] = {"bench",     "name",    "scenario",
                                       "method",    "precision",
                                       "compression", "cache_budget",
                                       "threads",   "num_shards",
                                       "reps",      "iterations", "ops",
                                       "seed"};

// The identity fields whose absence-or-difference makes two records
// "the same logical benchmark under a different knob" — worth a
// targeted warning when it leaves a baseline record unpaired.
const char* const kSoftIdentityFields[] = {"precision", "compression",
                                           "cache_budget"};

bool IsIdentityField(const std::string& field) {
  for (const char* id : kIdentityFields) {
    if (field == id) return true;
  }
  return false;
}

// Stringifies the scalar members of a "host" / "context" object,
// skipping fields that legitimately differ between runs on the same
// machine (timestamps, load averages).
std::map<std::string, std::string> HostFields(const JsonValue& object) {
  std::map<std::string, std::string> host;
  for (const auto& member : object.object) {
    if (member.first == "date" || member.first == "load_avg" ||
        member.first == "commands" || member.first == "notes") {
      continue;
    }
    if (IsScalar(member.second)) {
      host[member.first] = ScalarToString(member.second);
    }
  }
  return host;
}

// One record object -> BenchRecord. `context_host` is the file-level
// provenance fallback for records without their own "host" object.
// `google_benchmark` keys the record by its "name" alone (the name
// already encodes every parameter).
BenchRecord ExtractRecord(const JsonValue& object,
                          const std::map<std::string, std::string>&
                              context_host,
                          bool google_benchmark, std::size_t index) {
  BenchRecord record;
  const JsonValue* host = object.Find("host");
  record.host = host != nullptr && host->kind == JsonValue::Kind::kObject
                    ? HostFields(*host)
                    : context_host;
  std::string key;
  if (google_benchmark) {
    const JsonValue* name = object.Find("name");
    if (name != nullptr && name->kind == JsonValue::Kind::kString) {
      key = name->string;
    }
  } else {
    for (const char* id : kIdentityFields) {
      const JsonValue* value = object.Find(id);
      if (value == nullptr || !IsScalar(*value)) continue;
      if (!key.empty()) key += ' ';
      key += std::string(id) + "=" + ScalarToString(*value);
    }
  }
  if (key.empty()) key = "record[" + std::to_string(index) + "]";
  record.key = key;
  for (const auto& member : object.object) {
    if (member.second.kind != JsonValue::Kind::kNumber) continue;
    if (!google_benchmark && IsIdentityField(member.first)) continue;
    record.numbers[member.first] = member.second.number;
  }
  return record;
}

bool LooksLikeRecord(const JsonValue& object) {
  return object.Find("bench") != nullptr || object.Find("name") != nullptr;
}

std::string ReadFileOrEmpty(const std::string& path, bool* ok) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *ok = false;
    return "";
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *ok = in.good() || in.eof();
  return buffer.str();
}

// Splits a record key into its soft-identity components ("precision=…",
// "compression=…", "cache_budget=…"; each empty when the record predates
// that field) and everything else. Keys that agree on the remainder but
// differ in a soft component are the same logical benchmark under a
// different knob — deliberately unpaired, but worth a targeted warning
// instead of a bare "missing" line.
std::string StripSoftIdentityComponents(
    const std::string& key,
    std::map<std::string, std::string>* components) {
  components->clear();
  std::string stripped;
  std::istringstream tokens(key);
  std::string token;
  while (tokens >> token) {
    bool soft = false;
    for (const char* field : kSoftIdentityFields) {
      const std::string prefix = std::string(field) + "=";
      if (token.compare(0, prefix.size(), prefix) == 0) {
        (*components)[field] = token.substr(prefix.size());
        soft = true;
        break;
      }
    }
    if (soft) continue;
    if (!stripped.empty()) stripped += ' ';
    stripped += token;
  }
  return stripped;
}

// Why a given soft-identity field never pairs, for the mismatch warning.
std::string SoftIdentityRationale(const std::string& field) {
  if (field == "precision") {
    return "f32 and f64 runs never pair; numbers are not comparable "
           "across precisions";
  }
  if (field == "compression") {
    return "compressed and raw shard runs never pair; stream bytes and "
           "wall times are not comparable across encodings";
  }
  return "cached and uncached stream runs never pair; disk traffic "
         "differs by design";
}

std::string Percent(double percent) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", percent);
  return buf;
}

}  // namespace

bool IsGatedTimingField(const std::string& field) {
  const std::string kSuffix = "_seconds";
  if (field.size() > kSuffix.size() &&
      field.compare(field.size() - kSuffix.size(), kSuffix.size(),
                    kSuffix) == 0) {
    return true;
  }
  return field == "real_time" || field == "cpu_time";
}

bool ParseBenchRecords(const std::string& json,
                       std::vector<BenchRecord>* records,
                       std::string* error) {
  records->clear();
  JsonValue root;
  JsonParser parser(json, error);
  if (!parser.Parse(&root)) return false;

  const JsonValue* list = nullptr;
  bool google_benchmark = false;
  std::map<std::string, std::string> context_host;
  if (root.kind == JsonValue::Kind::kObject) {
    const JsonValue* context = root.Find("context");
    if (context != nullptr && context->kind == JsonValue::Kind::kObject) {
      context_host = HostFields(*context);
    }
    if (const JsonValue* runs = root.Find("runs")) {
      list = runs;
    } else if (const JsonValue* benchmarks = root.Find("benchmarks")) {
      list = benchmarks;
      google_benchmark = true;
    } else if (LooksLikeRecord(root)) {
      records->push_back(ExtractRecord(root, context_host,
                                       /*google_benchmark=*/false, 0));
      return true;
    } else {
      if (error != nullptr) {
        *error = "object has neither \"runs\" nor \"benchmarks\" nor "
                 "record fields";
      }
      return false;
    }
    if (list->kind != JsonValue::Kind::kArray) {
      if (error != nullptr) *error = "record list is not an array";
      return false;
    }
  } else if (root.kind == JsonValue::Kind::kArray) {
    list = &root;
  } else {
    if (error != nullptr) *error = "top-level JSON is not an object or array";
    return false;
  }

  for (std::size_t i = 0; i < list->array.size(); ++i) {
    const JsonValue& element = list->array[i];
    if (element.kind != JsonValue::Kind::kObject) {
      if (error != nullptr) {
        *error = "record " + std::to_string(i) + " is not an object";
      }
      return false;
    }
    records->push_back(
        ExtractRecord(element, context_host, google_benchmark, i));
  }
  return true;
}

BenchDiffResult DiffBenchRecords(const std::vector<BenchRecord>& baseline,
                                 const std::vector<BenchRecord>& current,
                                 const BenchDiffOptions& options) {
  BenchDiffResult result;
  std::map<std::string, const BenchRecord*> current_by_key;
  for (const BenchRecord& record : current) {
    if (!current_by_key.emplace(record.key, &record).second) {
      result.warnings.push_back("duplicate current record: " + record.key);
    }
  }
  // Stripped key -> soft-identity components seen in `current`, for the
  // mismatch diagnosis of unpaired records.
  std::map<std::string, std::vector<std::map<std::string, std::string>>>
      current_by_stripped;
  for (const BenchRecord& record : current) {
    std::map<std::string, std::string> components;
    current_by_stripped[StripSoftIdentityComponents(record.key, &components)]
        .push_back(components);
  }
  std::set<std::string> matched;
  for (const BenchRecord& base : baseline) {
    const auto it = current_by_key.find(base.key);
    if (it == current_by_key.end()) {
      result.missing.push_back(base.key);
      std::map<std::string, std::string> base_components;
      const std::string stripped =
          StripSoftIdentityComponents(base.key, &base_components);
      const auto near = current_by_stripped.find(stripped);
      if (near != current_by_stripped.end()) {
        for (const auto& cur_components : near->second) {
          for (const char* field : kSoftIdentityFields) {
            const auto base_it = base_components.find(field);
            const auto cur_it = cur_components.find(field);
            const std::string base_value =
                base_it == base_components.end() ? "" : base_it->second;
            const std::string cur_value =
                cur_it == cur_components.end() ? "" : cur_it->second;
            if (base_value == cur_value) continue;
            result.warnings.push_back(
                std::string(field) + " mismatch on " + stripped +
                ": baseline \"" +
                (base_value.empty() ? "(absent)" : base_value) +
                "\" vs current \"" +
                (cur_value.empty() ? "(absent)" : cur_value) + "\" (" +
                SoftIdentityRationale(field) + ")");
          }
        }
      }
      continue;
    }
    matched.insert(base.key);
    const BenchRecord& cur = *it->second;

    // Host provenance: same-key fields must agree; a side without any
    // host block at all gets one warning, not one per field.
    if (base.host.empty() != cur.host.empty()) {
      result.warnings.push_back(
          "host provenance missing on " +
          std::string(base.host.empty() ? "baseline" : "current") +
          " side of: " + base.key);
    }
    for (const auto& field : base.host) {
      const auto cur_field = cur.host.find(field.first);
      if (cur_field != cur.host.end() &&
          cur_field->second != field.second) {
        result.warnings.push_back(
            "host mismatch on " + base.key + ": " + field.first + " \"" +
            field.second + "\" vs \"" + cur_field->second +
            "\" (numbers are not comparable across host shapes)");
      }
    }

    for (const auto& number : base.numbers) {
      const auto cur_number = cur.numbers.find(number.first);
      if (cur_number == cur.numbers.end()) continue;
      BenchDiffEntry entry;
      entry.key = base.key;
      entry.field = number.first;
      entry.baseline = number.second;
      entry.current = cur_number->second;
      entry.percent =
          std::abs(number.second) > 1e-12
              ? (cur_number->second - number.second) / number.second * 100.0
              : 0.0;
      entry.gated = IsGatedTimingField(number.first);
      // Gate only meaningful baselines: sub-nanosecond noise floors
      // produce arbitrary ratios.
      entry.regression = entry.gated && number.second > 1e-9 &&
                         cur_number->second / number.second >
                             options.threshold;
      if (entry.regression) ++result.regressions;
      result.entries.push_back(entry);
    }
  }
  for (const BenchRecord& record : current) {
    if (matched.count(record.key) == 0) {
      result.warnings.push_back("current record not in baseline: " +
                                record.key);
    }
  }
  result.failed = result.regressions > 0 ||
                  (options.fail_on_missing && !result.missing.empty());
  return result;
}

std::string FormatBenchDiffReport(const BenchDiffResult& result,
                                  const BenchDiffOptions& options) {
  std::ostringstream out;
  std::string last_key;
  for (const BenchDiffEntry& entry : result.entries) {
    if (entry.key != last_key) {
      out << entry.key << "\n";
      last_key = entry.key;
    }
    out << "  " << entry.field << ": " << entry.baseline << " -> "
        << entry.current << " (" << Percent(entry.percent) << ")"
        << (entry.regression ? "  REGRESSION" : "") << "\n";
  }
  for (const std::string& key : result.missing) {
    out << "missing in current: " << key << "\n";
  }
  for (const std::string& warning : result.warnings) {
    out << "warning: " << warning << "\n";
  }
  int gated = 0;
  for (const BenchDiffEntry& entry : result.entries) {
    if (entry.gated) ++gated;
  }
  out << (result.failed ? "FAIL" : "OK") << ": " << result.entries.size()
      << " fields compared (" << gated << " gated at "
      << NumberToString(options.threshold) << "x), " << result.regressions
      << " regressions, " << result.missing.size() << " missing\n";
  return out.str();
}

int BenchDiffMain(const std::vector<std::string>& args, std::string* output,
                  std::string* error) {
  std::string baseline_path;
  std::string current_path;
  BenchDiffOptions options;
  for (const std::string& arg : args) {
    const std::string kBaseline = "--baseline=";
    const std::string kCurrent = "--current=";
    const std::string kThreshold = "--threshold=";
    if (arg.compare(0, kBaseline.size(), kBaseline) == 0) {
      baseline_path = arg.substr(kBaseline.size());
    } else if (arg.compare(0, kCurrent.size(), kCurrent) == 0) {
      current_path = arg.substr(kCurrent.size());
    } else if (arg.compare(0, kThreshold.size(), kThreshold) == 0) {
      options.threshold = std::atof(arg.c_str() + kThreshold.size());
      if (options.threshold <= 0.0) {
        *error = "--threshold must be positive";
        return 2;
      }
    } else if (arg == "--fail-on-missing") {
      options.fail_on_missing = true;
    } else {
      *error = "unknown argument '" + arg +
               "'\nusage: bench_diff --baseline=FILE --current=FILE "
               "[--threshold=X] [--fail-on-missing]";
      return 2;
    }
  }
  if (baseline_path.empty() || current_path.empty()) {
    *error = "usage: bench_diff --baseline=FILE --current=FILE "
             "[--threshold=X] [--fail-on-missing]";
    return 2;
  }
  bool ok = false;
  const std::string baseline_json = ReadFileOrEmpty(baseline_path, &ok);
  if (!ok) {
    *error = "cannot read " + baseline_path;
    return 2;
  }
  const std::string current_json = ReadFileOrEmpty(current_path, &ok);
  if (!ok) {
    *error = "cannot read " + current_path;
    return 2;
  }
  std::vector<BenchRecord> baseline;
  std::vector<BenchRecord> current;
  std::string parse_error;
  if (!ParseBenchRecords(baseline_json, &baseline, &parse_error)) {
    *error = baseline_path + ": " + parse_error;
    return 2;
  }
  if (!ParseBenchRecords(current_json, &current, &parse_error)) {
    *error = current_path + ": " + parse_error;
    return 2;
  }
  const BenchDiffResult result = DiffBenchRecords(baseline, current, options);
  *output = FormatBenchDiffReport(result, options);
  return result.failed ? 1 : 0;
}

}  // namespace cli
}  // namespace linbp
