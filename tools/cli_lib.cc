#include "tools/cli_lib.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/core/bp.h"
#include "src/core/convergence.h"
#include "src/core/coupling.h"
#include "src/core/labeling.h"
#include "src/core/linbp.h"
#include "src/core/sbp.h"
#include "src/exec/exec_context.h"
#include "src/graph/beliefs.h"
#include "src/graph/io.h"
#include "src/la/matrix_io.h"

namespace linbp {
namespace cli {
namespace {

std::optional<CouplingMatrix> ResolveCoupling(const std::string& spec,
                                              std::string* error) {
  if (spec == "homophily2") return HomophilyCoupling2();
  if (spec == "heterophily2") return HeterophilyCoupling2();
  if (spec == "auction") return AuctionCoupling();
  if (spec == "dblp4") return DblpCoupling();
  const auto matrix = ReadDenseMatrix(spec, error);
  if (!matrix.has_value()) return std::nullopt;
  // Accept either a residual (rows sum to 0) or a stochastic matrix.
  double row_sum = 0.0;
  for (std::int64_t c = 0; c < matrix->cols(); ++c) {
    row_sum += matrix->At(0, c);
  }
  if (std::abs(row_sum) < 1e-6) {
    return CouplingMatrix::FromResidual(*matrix, 1e-6);
  }
  return CouplingMatrix::FromStochastic(*matrix, 1e-6);
}

}  // namespace

std::string Usage() {
  return
      "linbp_cli --graph=EDGES --beliefs=BELIEFS [--coupling=PRESET|FILE]\n"
      "          [--method=bp|linbp|linbp*|sbp] [--eps=auto|VALUE] [--k=K]\n"
      "          [--output=FILE] [--report] [--threads=N]\n"
      "  EDGES:   'u v [w]' per line;  BELIEFS: 'v c b' per line\n"
      "  presets: homophily2 heterophily2 auction dblp4\n"
      "  threads: 0 = all hardware threads; default: LINBP_THREADS or 1\n";
}

std::optional<Options> ParseOptions(const std::vector<std::string>& args,
                                    std::string* error) {
  Options options;
  for (const std::string& arg : args) {
    auto value_of = [&](const std::string& prefix) -> std::optional<std::string> {
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      return std::nullopt;
    };
    if (auto v = value_of("--graph=")) {
      options.graph_path = *v;
    } else if (auto v = value_of("--beliefs=")) {
      options.beliefs_path = *v;
    } else if (auto v = value_of("--coupling=")) {
      options.coupling = *v;
    } else if (auto v = value_of("--method=")) {
      options.method = *v;
    } else if (auto v = value_of("--eps=")) {
      options.eps = *v;
    } else if (auto v = value_of("--k=")) {
      options.k = std::atoll(v->c_str());
    } else if (auto v = value_of("--output=")) {
      options.output_path = *v;
    } else if (auto v = value_of("--threads=")) {
      // Strict parse (unlike ParseThreadsSpec, a bad flag is an error,
      // not a silent serial fallback).
      char* end = nullptr;
      const long long threads =
          v->empty() ? -1 : std::strtoll(v->c_str(), &end, 10);
      if (v->empty() || *end != '\0' || threads < 0) {
        *error = "--threads must be a number >= 0";
        return std::nullopt;
      }
      options.threads = static_cast<int>(
          std::min<long long>(threads, exec::kMaxThreads));
    } else if (arg == "--report") {
      options.report = true;
    } else {
      *error = "unknown argument: " + arg;
      return std::nullopt;
    }
  }
  if (options.graph_path.empty() || options.beliefs_path.empty()) {
    *error = "--graph and --beliefs are required";
    return std::nullopt;
  }
  if (options.method != "bp" && options.method != "linbp" &&
      options.method != "linbp*" && options.method != "sbp") {
    *error = "unknown method: " + options.method;
    return std::nullopt;
  }
  return options;
}

int RunPipeline(const Options& options, std::string* output,
                std::string* error) {
  const auto graph = ReadEdgeList(options.graph_path, error);
  if (!graph.has_value()) return 1;

  const auto coupling = ResolveCoupling(options.coupling, error);
  if (!coupling.has_value()) return 1;
  const std::int64_t k = options.k > 0 ? options.k : coupling->k();
  if (k != coupling->k()) {
    *error = "--k disagrees with the coupling matrix size";
    return 1;
  }

  const auto beliefs =
      ReadBeliefs(options.beliefs_path, graph->num_nodes(), k, error);
  if (!beliefs.has_value()) return 1;
  if (beliefs->explicit_nodes.empty()) {
    *error = options.beliefs_path + ": no explicit beliefs";
    return 1;
  }

  // eps_H: explicit value, or half the exact LinBP threshold.
  double eps = 0.0;
  if (options.eps == "auto") {
    const double threshold = ExactEpsilonThreshold(
        *graph, *coupling,
        options.method == "linbp*" ? LinBpVariant::kLinBpStar
                                   : LinBpVariant::kLinBp);
    eps = std::isfinite(threshold) ? 0.5 * threshold : 1.0;
  } else {
    eps = std::atof(options.eps.c_str());
    if (!(eps > 0.0)) {
      *error = "--eps must be positive or 'auto'";
      return 1;
    }
  }

  if (options.report) {
    const ConvergenceReport report = AnalyzeConvergence(*graph, *coupling);
    std::fprintf(stderr,
                 "rho(A)=%.6g rho(Hhat_o)=%.6g exact eps: LinBP %.6g, "
                 "LinBP* %.6g; using eps=%.6g\n",
                 report.adjacency_spectral_radius,
                 report.coupling_spectral_radius, report.exact_epsilon_linbp,
                 report.exact_epsilon_linbp_star, eps);
  }

  // Execution context: --threads wins; otherwise LINBP_THREADS (serial
  // when unset). Every method produces the same labels at any width.
  const exec::ExecContext ctx = options.threads >= 0
                                    ? exec::ExecContext::WithThreads(
                                          options.threads)
                                    : exec::ExecContext::Default();

  // Run the chosen method.
  DenseMatrix result_beliefs(graph->num_nodes(), k);
  if (options.method == "bp") {
    if (eps >= coupling->MaxStochasticScale()) {
      *error = "eps too large for a stochastic coupling matrix";
      return 1;
    }
    const BpResult result =
        RunBp(*graph, coupling->ScaledStochastic(eps),
              ResidualToProbability(beliefs->residuals));
    if (result.diverged) {
      *error = "BP diverged";
      return 2;
    }
    result_beliefs = ProbabilityToResidual(result.beliefs);
  } else if (options.method == "sbp") {
    result_beliefs = RunSbp(*graph, coupling->residual(), beliefs->residuals,
                            beliefs->explicit_nodes, ctx)
                         .beliefs;
  } else {
    LinBpOptions lin_options;
    lin_options.variant = options.method == "linbp*"
                              ? LinBpVariant::kLinBpStar
                              : LinBpVariant::kLinBp;
    lin_options.max_iterations = 1000;
    lin_options.exec = ctx;
    const LinBpResult result = RunLinBp(*graph, coupling->ScaledResidual(eps),
                                        beliefs->residuals, lin_options);
    if (result.diverged) {
      *error = "LinBP diverged; lower --eps (see --report)";
      return 2;
    }
    result_beliefs = result.beliefs;
  }

  // Emit "v class [class...]" lines (multiple classes on ties).
  const TopBeliefAssignment top = TopBeliefs(result_beliefs);
  std::ostringstream lines;
  for (std::int64_t v = 0; v < graph->num_nodes(); ++v) {
    lines << v;
    for (const int cls : top.classes[v]) lines << ' ' << cls;
    lines << '\n';
  }
  *output = lines.str();
  if (!options.output_path.empty()) {
    std::ofstream out(options.output_path);
    if (!out) {
      *error = options.output_path + ": cannot write";
      return 1;
    }
    out << *output;
  }
  return 0;
}

}  // namespace cli
}  // namespace linbp
