#include "tools/cli_lib.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <utility>

#include "src/core/bp.h"
#include "src/core/convergence.h"
#include "src/core/coupling.h"
#include "src/core/labeling.h"
#include "src/core/linbp.h"
#include "src/core/linbp_incremental.h"
#include "src/core/sbp.h"
#include "src/dataset/registry.h"
#include "src/dataset/scenario.h"
#include "src/dataset/shard.h"
#include "src/dataset/snapshot.h"
#include "src/dataset/update_stream.h"
#include "src/engine/shard_stream_backend.h"
#include "src/exec/exec_context.h"
#include "src/graph/beliefs.h"
#include "src/graph/io.h"
#include "src/la/matrix_io.h"
#include "src/obs/export.h"
#include "src/obs/obs.h"
#include "src/util/mem_info.h"
#include "src/util/timer.h"

namespace linbp {
namespace cli {

bool LowRamWarning(std::int64_t payload_bytes,
                   std::int64_t available_bytes) {
  // available_bytes == 0 is AvailableMemoryBytes's "unknown" fallback
  // (no /proc/meminfo, unparsable field) — warning on it would flag
  // every container whose memory we simply cannot see.
  return available_bytes > 0 && payload_bytes > available_bytes;
}

namespace {

// Parses one "--name=value" argument; returns the value when `arg` starts
// with "--name=".
std::optional<std::string> FlagValue(const std::string& arg,
                                     const std::string& prefix) {
  if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  return std::nullopt;
}

// Strict "--threads=N" parse shared by the pipeline and convert (unlike
// ParseThreadsSpec, a bad flag is an error, not a silent serial fallback).
bool ParseThreadsFlag(const std::string& value, int* threads,
                      std::string* error) {
  char* end = nullptr;
  const long long parsed =
      value.empty() ? -1 : std::strtoll(value.c_str(), &end, 10);
  if (value.empty() || *end != '\0' || parsed < 0) {
    *error = "--threads must be a number >= 0";
    return false;
  }
  *threads = static_cast<int>(std::min<long long>(parsed, exec::kMaxThreads));
  return true;
}

exec::ExecContext ContextFor(int threads) {
  return threads >= 0 ? exec::ExecContext::WithThreads(threads)
                      : exec::ExecContext::Default();
}

// Materializes the pipeline's problem instance from either a scenario
// spec or the edge-list/belief files. Scenario construction (snapshot
// deserialization in particular) parallelizes on `ctx`.
std::optional<dataset::Scenario> BuildProblem(const Options& options,
                                              const exec::ExecContext& ctx,
                                              std::string* error) {
  if (!options.scenario.empty()) {
    auto scenario = dataset::MakeScenario(options.scenario, error, ctx);
    if (!scenario.has_value()) return std::nullopt;
    if (!options.coupling.empty()) {
      const auto coupling =
          dataset::ResolveCouplingSpec(options.coupling, error);
      if (!coupling.has_value()) return std::nullopt;
      if (coupling->k() != scenario->k) {
        *error = "--coupling disagrees with the scenario's class count";
        return std::nullopt;
      }
      scenario->coupling_residual = coupling->residual();
    }
    return scenario;
  }

  const std::string coupling_spec =
      options.coupling.empty() ? "homophily2" : options.coupling;
  const auto coupling = dataset::ResolveCouplingSpec(coupling_spec, error);
  if (!coupling.has_value()) return std::nullopt;
  auto graph = ReadEdgeList(options.graph_path, error);
  if (!graph.has_value()) return std::nullopt;
  auto beliefs =
      ReadBeliefs(options.beliefs_path, graph->num_nodes(), coupling->k(),
                  error);
  if (!beliefs.has_value()) return std::nullopt;
  dataset::Scenario scenario;
  scenario.name = "file";
  scenario.k = coupling->k();
  scenario.coupling_residual = coupling->residual();
  scenario.explicit_residuals = std::move(beliefs->residuals);
  scenario.explicit_nodes = std::move(beliefs->explicit_nodes);
  scenario.graph = std::move(*graph);
  return scenario;
}

// Strict "--compress[=f64|f32]" parse shared by convert and shard; the
// bare flag means f64 (lossless).
bool ParseCompressFlag(const std::string& value, std::string* compress,
                       std::string* error) {
  if (value != "f64" && value != "f32") {
    *error = "--compress must be f64 or f32";
    return false;
  }
  *compress = value;
  return true;
}

dataset::ShardCompression CompressionFromFlag(const std::string& compress) {
  if (compress == "f64") return dataset::ShardCompression::kF64;
  if (compress == "f32") return dataset::ShardCompression::kF32;
  return dataset::ShardCompression::kNone;
}

// Strict "--shards=N" parse shared by convert and shard.
bool ParseShardsFlag(const std::string& value, std::int64_t* shards,
                     std::string* error) {
  char* end = nullptr;
  const long long parsed =
      value.empty() ? 0 : std::strtoll(value.c_str(), &end, 10);
  if (value.empty() || *end != '\0' || parsed < 1 ||
      parsed > dataset::kMaxShards) {
    *error = "--shards must be a number in [1, " +
             std::to_string(dataset::kMaxShards) + "]";
    return false;
  }
  *shards = parsed;
  return true;
}

std::optional<ConvertOptions> ParseConvertOptions(
    const std::vector<std::string>& args, std::string* error) {
  ConvertOptions options;
  for (const std::string& arg : args) {
    if (auto v = FlagValue(arg, "--scenario=")) {
      options.scenario = *v;
    } else if (auto v = FlagValue(arg, "--out=")) {
      options.snapshot_path = *v;
    } else if (auto v = FlagValue(arg, "--out-shards=")) {
      options.shards_dir = *v;
    } else if (auto v = FlagValue(arg, "--shards=")) {
      if (!ParseShardsFlag(*v, &options.shards, error)) return std::nullopt;
    } else if (arg == "--compress") {
      options.compress = "f64";
    } else if (auto v = FlagValue(arg, "--compress=")) {
      if (!ParseCompressFlag(*v, &options.compress, error)) {
        return std::nullopt;
      }
    } else if (auto v = FlagValue(arg, "--out-graph=")) {
      options.graph_path = *v;
    } else if (auto v = FlagValue(arg, "--out-beliefs=")) {
      options.beliefs_path = *v;
    } else if (auto v = FlagValue(arg, "--out-labels=")) {
      options.labels_path = *v;
    } else if (auto v = FlagValue(arg, "--threads=")) {
      if (!ParseThreadsFlag(*v, &options.threads, error)) return std::nullopt;
    } else {
      *error = "unknown argument: " + arg;
      return std::nullopt;
    }
  }
  if (options.scenario.empty()) {
    *error = "convert: --scenario is required";
    return std::nullopt;
  }
  if (options.snapshot_path.empty() && options.shards_dir.empty() &&
      options.graph_path.empty() && options.beliefs_path.empty() &&
      options.labels_path.empty()) {
    *error = "convert: pick at least one of --out, --out-shards, "
             "--out-graph, --out-beliefs, --out-labels";
    return std::nullopt;
  }
  return options;
}

int RunConvert(const ConvertOptions& options, std::string* output,
               std::string* error) {
  auto scenario = dataset::MakeScenario(options.scenario, error,
                                        ContextFor(options.threads));
  if (!scenario.has_value()) return 1;
  if (!options.snapshot_path.empty()) {
    if (!dataset::SaveSnapshot(*scenario, options.snapshot_path, error)) {
      return 1;
    }
  }
  std::int64_t shards_written = 0;
  if (!options.shards_dir.empty()) {
    const auto sharded = dataset::ShardSnapshot(
        *scenario, options.shards, options.shards_dir, error,
        CompressionFromFlag(options.compress));
    if (!sharded.has_value()) return 1;
    shards_written = sharded->num_shards;
  }
  if (!options.graph_path.empty() &&
      !WriteEdgeList(scenario->graph, options.graph_path)) {
    *error = options.graph_path + ": cannot write";
    return 1;
  }
  if (!options.beliefs_path.empty() &&
      !WriteBeliefs(scenario->explicit_residuals, scenario->explicit_nodes,
                    options.beliefs_path)) {
    *error = options.beliefs_path + ": cannot write";
    return 1;
  }
  if (!options.labels_path.empty()) {
    if (!scenario->HasGroundTruth()) {
      *error = "convert: scenario '" + scenario->name +
               "' has no ground truth to export";
      return 1;
    }
    if (!WriteLabels(scenario->ground_truth, options.labels_path)) {
      *error = options.labels_path + ": cannot write";
      return 1;
    }
  }
  std::ostringstream lines;
  lines << scenario->name << ": " << scenario->graph.num_nodes()
        << " nodes, " << scenario->graph.num_undirected_edges()
        << " edges, k=" << scenario->k << ", "
        << scenario->explicit_nodes.size() << " explicit";
  if (shards_written > 0) lines << ", " << shards_written << " shards";
  lines << "\n";
  *output = lines.str();
  return 0;
}

std::optional<ShardOptions> ParseShardOptions(
    const std::vector<std::string>& args, std::string* error) {
  ShardOptions options;
  for (const std::string& arg : args) {
    if (auto v = FlagValue(arg, "--scenario=")) {
      options.scenario = *v;
    } else if (auto v = FlagValue(arg, "--out-dir=")) {
      options.out_dir = *v;
    } else if (auto v = FlagValue(arg, "--shards=")) {
      if (!ParseShardsFlag(*v, &options.shards, error)) return std::nullopt;
    } else if (arg == "--compress") {
      options.compress = "f64";
    } else if (auto v = FlagValue(arg, "--compress=")) {
      if (!ParseCompressFlag(*v, &options.compress, error)) {
        return std::nullopt;
      }
    } else if (auto v = FlagValue(arg, "--threads=")) {
      if (!ParseThreadsFlag(*v, &options.threads, error)) return std::nullopt;
    } else {
      *error = "unknown argument: " + arg;
      return std::nullopt;
    }
  }
  if (options.scenario.empty() || options.out_dir.empty()) {
    *error = "shard: --scenario and --out-dir are required";
    return std::nullopt;
  }
  return options;
}

int RunShard(const ShardOptions& options, std::string* output,
             std::string* error) {
  auto scenario = dataset::MakeScenario(options.scenario, error,
                                        ContextFor(options.threads));
  if (!scenario.has_value()) return 1;
  const auto result = dataset::ShardSnapshot(
      *scenario, options.shards, options.out_dir, error,
      CompressionFromFlag(options.compress));
  if (!result.has_value()) return 1;
  std::ostringstream lines;
  lines << scenario->name << ": " << scenario->graph.num_nodes()
        << " nodes, " << scenario->graph.num_undirected_edges()
        << " edges -> " << result->num_shards << " shard(s), manifest "
        << result->manifest_path << "\n";
  *output = lines.str();
  return 0;
}

int RunShardManifestInfo(const InfoOptions& options, std::string* output,
                         std::string* error) {
  const auto info =
      dataset::ReadShardManifestInfo(options.snapshot_path, error);
  if (!info.has_value()) return 1;
  const bool compressed = info->version >= dataset::kShardFormatVersionV2;
  const char* compression_name =
      !compressed ? "none" : (info->values_f32 ? "varint-f32" : "varint-f64");
  const auto ratio = [](std::int64_t encoded, std::int64_t decoded) {
    return decoded > 0 ? static_cast<double>(encoded) /
                             static_cast<double>(decoded)
                       : 1.0;
  };
  std::ostringstream lines;
  lines << "sharded snapshot: " << options.snapshot_path << "\n"
        << "version:       " << info->version << "\n"
        << "compression:   " << compression_name << "\n"
        << "nodes:         " << info->num_nodes << "\n"
        << "classes k:     " << info->k << "\n"
        << "stored entries " << info->nnz << " (" << info->nnz / 2
        << " undirected edges)\n"
        << "explicit:      " << info->num_explicit << "\n"
        << "ground truth:  " << (info->has_ground_truth ? "yes" : "no")
        << "\n"
        << "scenario:      " << info->name << "\n"
        << "spec:          " << info->spec << "\n"
        << "manifest bytes " << info->file_bytes << "\n"
        << "payload bytes  " << info->total_shard_payload_bytes
        << " (all shards";
  if (compressed) {
    char ratio_buf[32];
    std::snprintf(ratio_buf, sizeof(ratio_buf), "%.2f",
                  ratio(info->total_encoded_payload_bytes,
                        info->total_shard_payload_bytes));
    lines << ", decoded; " << info->total_encoded_payload_bytes
          << " encoded on disk, ratio " << ratio_buf;
  }
  lines << ")\n"
        << "shards:        " << info->shards.size() << "\n";
  for (std::size_t s = 0; s < info->shards.size(); ++s) {
    const dataset::ShardRangeInfo& shard = info->shards[s];
    lines << "  shard " << s << ": rows [" << shard.row_begin << ", "
          << shard.row_end << "), " << shard.nnz << " entries, "
          << shard.num_explicit << " explicit, " << shard.payload_bytes
          << " bytes";
    if (compressed) {
      char ratio_buf[32];
      std::snprintf(ratio_buf, sizeof(ratio_buf), "%.2f",
                    ratio(shard.payload_bytes, shard.decoded_bytes));
      lines << " encoded (" << shard.decoded_bytes << " decoded, ratio "
            << ratio_buf << ")";
    }
    lines << ", " << shard.file << "\n";
  }
  // A full (non-streamed) load must hold every shard's payload resident
  // at once; warn when that exceeds what the machine can offer so the
  // user reaches for --stream before the OOM killer does.
  const std::int64_t available = util::AvailableMemoryBytes();
  if (LowRamWarning(info->total_shard_payload_bytes, available)) {
    lines << "warning: total shard payload (" << info->total_shard_payload_bytes
          << " bytes) exceeds available RAM (" << available
          << " bytes); solve with --stream on this manifest instead of "
             "loading it whole\n";
  }
  *output = lines.str();
  return 0;
}

int RunInfo(const InfoOptions& options, std::string* output,
            std::string* error) {
  if (dataset::LooksLikeShardManifest(options.snapshot_path)) {
    return RunShardManifestInfo(options, output, error);
  }
  const auto info = dataset::ReadSnapshotInfo(options.snapshot_path, error);
  if (!info.has_value()) return 1;
  std::ostringstream lines;
  lines << "snapshot:      " << options.snapshot_path << "\n"
        << "version:       " << info->version << "\n"
        << "nodes:         " << info->num_nodes << "\n"
        << "classes k:     " << info->k << "\n"
        << "stored entries " << info->nnz << " (" << info->nnz / 2
        << " undirected edges)\n"
        << "explicit:      " << info->num_explicit << "\n"
        << "ground truth:  " << (info->has_ground_truth ? "yes" : "no")
        << "\n"
        << "scenario:      " << info->name << "\n"
        << "spec:          " << info->spec << "\n"
        << "file bytes:    " << info->file_bytes << "\n";
  *output = lines.str();
  return 0;
}

// Shared eps_H selection: an explicit positive value, or half the exact
// Lemma 8 threshold of `graph` for the chosen variant.
bool ResolveEps(const std::string& spec, const Graph& graph,
                const CouplingMatrix& coupling, LinBpVariant variant,
                double* eps, std::string* error) {
  if (spec == "auto") {
    const double threshold = ExactEpsilonThreshold(graph, coupling, variant);
    *eps = std::isfinite(threshold) ? 0.5 * threshold : 1.0;
    return true;
  }
  *eps = std::atof(spec.c_str());
  if (!(*eps > 0.0)) {
    *error = "--eps must be positive or 'auto'";
    return false;
  }
  return true;
}

// Strict node-id parse for the serve REPL's `q` lines.
bool ParseNodeIdToken(const std::string& token, std::int64_t* out) {
  if (token.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(token.c_str(), &end, 10);
  if (*end != '\0' || errno == ERANGE) return false;
  *out = static_cast<std::int64_t>(value);
  return true;
}

// One "v class [class...]" line per queried node, from the rows of
// `beliefs` named by `nodes` (the full-graph `labels` command passes
// every node).
void EmitTopBeliefLines(const DenseMatrix& beliefs,
                        const std::vector<std::int64_t>& nodes,
                        std::ostream& out) {
  DenseMatrix rows(static_cast<std::int64_t>(nodes.size()), beliefs.cols());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::int64_t c = 0; c < beliefs.cols(); ++c) {
      rows.At(static_cast<std::int64_t>(i), c) = beliefs.At(nodes[i], c);
    }
  }
  const TopBeliefAssignment top = TopBeliefs(rows);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    out << nodes[i];
    for (const int cls : top.classes[i]) out << ' ' << cls;
    out << '\n';
  }
}

std::optional<ServeOptions> ParseServeOptions(
    const std::vector<std::string>& args, std::string* error) {
  ServeOptions options;
  for (const std::string& arg : args) {
    if (auto v = FlagValue(arg, "--scenario=")) {
      options.scenario = *v;
    } else if (auto v = FlagValue(arg, "--coupling=")) {
      options.coupling = *v;
    } else if (auto v = FlagValue(arg, "--method=")) {
      options.method = *v;
    } else if (auto v = FlagValue(arg, "--eps=")) {
      options.eps = *v;
    } else if (auto v = FlagValue(arg, "--precision=")) {
      options.precision = *v;
    } else if (auto v = FlagValue(arg, "--threads=")) {
      if (!ParseThreadsFlag(*v, &options.threads, error)) return std::nullopt;
    } else {
      *error = "unknown argument: " + arg;
      return std::nullopt;
    }
  }
  if (options.scenario.empty()) {
    *error = "serve: --scenario is required";
    return std::nullopt;
  }
  if (options.method != "linbp" && options.method != "linbp*") {
    *error = "serve supports --method=linbp or linbp* (the warm state is "
             "linearized)";
    return std::nullopt;
  }
  Precision precision = Precision::kF64;
  if (!ParsePrecision(options.precision, &precision)) {
    *error = "--precision must be f32 or f64";
    return std::nullopt;
  }
  return options;
}

std::optional<TraceOptions> ParseTraceOptions(
    const std::vector<std::string>& args, std::string* error) {
  TraceOptions options;
  for (const std::string& arg : args) {
    if (auto v = FlagValue(arg, "--scenario=")) {
      options.scenario = *v;
    } else if (auto v = FlagValue(arg, "--out-dir=")) {
      options.out_dir = *v;
    } else if (auto v = FlagValue(arg, "--ops=")) {
      std::int64_t parsed = 0;
      if (!ParseNodeIdToken(*v, &parsed) || parsed < 1) {
        *error = "--ops must be a number >= 1";
        return std::nullopt;
      }
      options.ops = parsed;
    } else if (auto v = FlagValue(arg, "--seed=")) {
      std::int64_t parsed = 0;
      if (!ParseNodeIdToken(*v, &parsed) || parsed < 0) {
        *error = "--seed must be a number >= 0";
        return std::nullopt;
      }
      options.seed = static_cast<std::uint64_t>(parsed);
    } else if (auto v = FlagValue(arg, "--method=")) {
      options.method = *v;
    } else if (auto v = FlagValue(arg, "--threads=")) {
      if (!ParseThreadsFlag(*v, &options.threads, error)) return std::nullopt;
    } else {
      *error = "unknown argument: " + arg;
      return std::nullopt;
    }
  }
  if (options.scenario.empty() || options.out_dir.empty()) {
    *error = "trace: --scenario and --out-dir are required";
    return std::nullopt;
  }
  if (options.method != "linbp" && options.method != "linbp*") {
    *error = "trace supports --method=linbp or linbp*";
    return std::nullopt;
  }
  return options;
}

int RunList(std::string* output) {
  std::ostringstream lines;
  lines << "registered scenarios (--scenario=name:key=value,...):\n";
  for (const dataset::ScenarioInfo& info : dataset::ListScenarios()) {
    lines << "  " << info.name << "  " << info.description << "\n"
          << "      params: " << info.params_help << "\n";
  }
  *output = lines.str();
  return 0;
}

}  // namespace

std::string Usage() {
  return
      "linbp_cli --graph=EDGES --beliefs=BELIEFS | --scenario=SPEC\n"
      "          [--coupling=PRESET|FILE] [--method=bp|linbp|linbp*|sbp]\n"
      "          [--eps=auto|VALUE] [--k=K] [--output=FILE] [--report]\n"
      "          [--threads=N] [--stream [--cache-budget=BYTES]]\n"
      "          [--precision=f32|f64]\n"
      "linbp_cli list\n"
      "linbp_cli convert --scenario=SPEC [--out=SNAPSHOT]\n"
      "          [--out-shards=DIR [--shards=N] [--compress[=f64|f32]]]\n"
      "          [--out-graph=FILE]\n"
      "          [--out-beliefs=FILE] [--out-labels=FILE]\n"
      "linbp_cli shard --scenario=SPEC --out-dir=DIR [--shards=N]\n"
      "          [--compress[=f64|f32]]\n"
      "linbp_cli info --snapshot=FILE|MANIFEST\n"
      "linbp_cli serve --scenario=SPEC [--coupling=PRESET|FILE]\n"
      "          [--method=linbp|linbp*] [--eps=auto|VALUE] [--threads=N]\n"
      "          [--precision=f32|f64]\n"
      "linbp_cli trace --scenario=SPEC --out-dir=DIR [--ops=N] [--seed=S]\n"
      "          [--method=linbp|linbp*]\n"
      "  global flags (any command): --metrics-out=FILE writes a JSON\n"
      "           metrics + time-series + trace-span report on exit;\n"
      "           --trace-out=FILE writes a Chrome trace-event JSON\n"
      "           (load in chrome://tracing or ui.perfetto.dev);\n"
      "           --quiet silences diagnostic notes on stderr\n"
      "  EDGES:   'u v [w]' per line;  BELIEFS: 'v c b' per line\n"
      "  SPEC:    e.g. sbm:n=10000,k=4,mode=heterophily | snap:path=g.lbps\n"
      "           (snap: also accepts a shard manifest; see "
      "`linbp_cli list`)\n"
      "  presets: homophily2 heterophily2 auction dblp4 kronecker3\n"
      "  shards:  nnz-balanced row blocks (exec::RowPartition); default 4\n"
      "  threads: 0 = all hardware threads; default: LINBP_THREADS or 1\n"
      "  precision: f64 (default, bit-exact to prior releases) or f32\n"
      "           (float32 belief storage, ~half the memory traffic per\n"
      "           sweep; delta norms and diagnostics stay fp64; labels\n"
      "           can flip on a small fraction of borderline nodes;\n"
      "           linbp/linbp* only)\n"
      "  stream:  out-of-core solve over a snap:path=MANIFEST spec; the\n"
      "           shards stream with prefetch (peak CSR = 2 blocks) and\n"
      "           labels match the in-memory run bit for bit;\n"
      "           --cache-budget=BYTES keeps decoded blocks in an LRU\n"
      "           cache so sweeps after the first skip disk when the\n"
      "           working set fits (0 = off, the default)\n"
      "  compress: write format v2 — delta+varint column ids (lossless,\n"
      "           labels unchanged) and, with =f32, float32 value\n"
      "           sections (half the value bytes; beliefs then match the\n"
      "           f32 solve of the same shards)\n"
      "  serve:   REPL on stdin; per line: a u v w | d u v | w u v w |\n"
      "           b node k r_1..r_k | q v [v...] | labels | stats |\n"
      "           metrics | quit. Updates reply 'ok sweeps=N' or\n"
      "           'error: ...' (state untouched on error); queries reply\n"
      "           label lines; stats adds convergence diagnostics\n"
      "           (rho_hat, spectral_radius, predicted_sweeps) and\n"
      "           update/query latency percentiles; metrics dumps\n"
      "           Prometheus text exposition\n"
      "  trace:   writes start.lbps, final.lbps, updates.txt, eps.txt for\n"
      "           the serve round-trip (warm replay vs cold solve)\n";
}

std::optional<Options> ParseOptions(const std::vector<std::string>& args,
                                    std::string* error) {
  Options options;
  for (const std::string& arg : args) {
    if (auto v = FlagValue(arg, "--scenario=")) {
      options.scenario = *v;
    } else if (auto v = FlagValue(arg, "--graph=")) {
      options.graph_path = *v;
    } else if (auto v = FlagValue(arg, "--beliefs=")) {
      options.beliefs_path = *v;
    } else if (auto v = FlagValue(arg, "--coupling=")) {
      options.coupling = *v;
    } else if (auto v = FlagValue(arg, "--method=")) {
      options.method = *v;
    } else if (auto v = FlagValue(arg, "--eps=")) {
      options.eps = *v;
    } else if (auto v = FlagValue(arg, "--k=")) {
      options.k = std::atoll(v->c_str());
    } else if (auto v = FlagValue(arg, "--output=")) {
      options.output_path = *v;
    } else if (auto v = FlagValue(arg, "--threads=")) {
      if (!ParseThreadsFlag(*v, &options.threads, error)) return std::nullopt;
    } else if (auto v = FlagValue(arg, "--precision=")) {
      options.precision = *v;
    } else if (auto v = FlagValue(arg, "--cache-budget=")) {
      char* end = nullptr;
      const long long parsed =
          v->empty() ? -1 : std::strtoll(v->c_str(), &end, 10);
      if (v->empty() || *end != '\0' || parsed < 0) {
        *error = "--cache-budget must be a byte count >= 0";
        return std::nullopt;
      }
      options.cache_budget = parsed;
    } else if (arg == "--report") {
      options.report = true;
    } else if (arg == "--stream") {
      options.stream = true;
    } else {
      *error = "unknown argument: " + arg;
      return std::nullopt;
    }
  }
  const bool has_files =
      !options.graph_path.empty() || !options.beliefs_path.empty();
  if (!options.scenario.empty() && has_files) {
    *error = "--scenario and --graph/--beliefs are mutually exclusive";
    return std::nullopt;
  }
  if (options.scenario.empty() &&
      (options.graph_path.empty() || options.beliefs_path.empty())) {
    *error = "either --scenario or both --graph and --beliefs are required";
    return std::nullopt;
  }
  if (options.method != "bp" && options.method != "linbp" &&
      options.method != "linbp*" && options.method != "sbp") {
    *error = "unknown method: " + options.method;
    return std::nullopt;
  }
  if (options.stream) {
    if (options.scenario.empty()) {
      *error = "--stream requires a --scenario=snap:path=MANIFEST spec";
      return std::nullopt;
    }
    if (options.method != "linbp" && options.method != "linbp*") {
      *error = "--stream supports --method=linbp or linbp* (BP and SBP "
               "need the materialized graph)";
      return std::nullopt;
    }
  }
  if (options.cache_budget > 0 && !options.stream) {
    *error = "--cache-budget requires --stream (the in-memory solver "
             "holds the whole CSR already)";
    return std::nullopt;
  }
  Precision precision = Precision::kF64;
  if (!ParsePrecision(options.precision, &precision)) {
    *error = "--precision must be f32 or f64";
    return std::nullopt;
  }
  if (precision == Precision::kF32 && options.method != "linbp" &&
      options.method != "linbp*") {
    *error = "--precision=f32 supports --method=linbp or linbp* (BP and "
             "SBP have no float32 belief path)";
    return std::nullopt;
  }
  return options;
}

namespace {

// Applies a validated --precision string to LinBpOptions. A float-stored
// iterate stalls near 1e-8, so the f64 default tolerance (1e-12) is
// unreachable at f32: it would burn the whole iteration budget on solve
// and make serve's initial solve "fail" to converge. Stop at float
// resolution instead; delta norms stay fp64 either way.
void ApplyPrecision(const std::string& precision, LinBpOptions* options) {
  ParsePrecision(precision, &options->precision);
  if (options->precision == Precision::kF32) options->tolerance = 1e-6;
}

// Emits the "v class [class...]" label lines and honors --output.
int EmitLabelLines(const TopBeliefAssignment& top, std::int64_t num_nodes,
                   const Options& options, std::string* output,
                   std::string* error) {
  std::ostringstream lines;
  for (std::int64_t v = 0; v < num_nodes; ++v) {
    lines << v;
    for (const int cls : top.classes[v]) lines << ' ' << cls;
    lines << '\n';
  }
  *output = lines.str();
  if (!options.output_path.empty()) {
    std::ofstream out(options.output_path);
    if (!out) {
      *error = options.output_path + ": cannot write";
      return 1;
    }
    out << *output;
  }
  return 0;
}

// F1 against a ground-truth vector (-1 = unknown), printed to stderr.
void ReportGroundTruthQuality(const std::vector<int>& ground_truth,
                              const TopBeliefAssignment& top) {
  TopBeliefAssignment truth;
  truth.classes.resize(ground_truth.size());
  std::vector<std::int64_t> known;
  for (std::size_t v = 0; v < ground_truth.size(); ++v) {
    if (ground_truth[v] >= 0) {
      truth.classes[v].push_back(ground_truth[v]);
      known.push_back(static_cast<std::int64_t>(v));
    }
  }
  const QualityMetrics quality = CompareAssignments(truth, top, known);
  std::fprintf(stderr, "ground truth: %lld nodes, F1 %.4f\n",
               static_cast<long long>(known.size()), quality.f1);
}

// The --stream pipeline: open the manifest as a ShardStreamBackend and
// run LinBP / LinBP* out-of-core. Every product streams the shards with
// double-buffered prefetch; beliefs (hence labels) are bit-identical to
// the in-memory run on the same manifest.
int RunStreamPipeline(const Options& options, std::string* output,
                      std::string* error) {
  const exec::ExecContext ctx = ContextFor(options.threads);
  const auto parsed = dataset::ParseScenarioSpec(options.scenario, error);
  if (!parsed.has_value()) return 1;
  dataset::ScenarioParams params = parsed->params;
  const std::string manifest_path = params.Str("path", "");
  if (parsed->name != "snap" || manifest_path.empty()) {
    *error = "--stream requires a snap:path=MANIFEST scenario spec";
    return 1;
  }
  // Mirror the registry's typo rejection: the non-stream snap: path
  // errors on unknown keys, so the streamed one must too.
  const std::vector<std::string> unconsumed = params.UnconsumedKeys();
  if (!unconsumed.empty()) {
    *error = "snap: unknown parameter '" + unconsumed.front() + "'";
    return 1;
  }
  if (!dataset::LooksLikeShardManifest(manifest_path)) {
    *error = manifest_path +
             ": not a shard manifest (--stream needs `linbp_cli shard` "
             "output; monolithic snapshots load in memory)";
    return 1;
  }
  auto backend = engine::ShardStreamBackend::Open(manifest_path, error, ctx,
                                                  options.cache_budget);
  if (!backend.has_value()) return 1;
  if (backend->explicit_nodes().empty()) {
    *error = "no explicit beliefs";
    return 1;
  }
  CouplingMatrix coupling =
      CouplingMatrix::FromResidual(backend->coupling_residual());
  if (!options.coupling.empty()) {
    const auto override_coupling =
        dataset::ResolveCouplingSpec(options.coupling, error);
    if (!override_coupling.has_value()) return 1;
    if (override_coupling->k() != backend->k()) {
      *error = "--coupling disagrees with the scenario's class count";
      return 1;
    }
    coupling = *override_coupling;
  }
  if (options.k > 0 && options.k != backend->k()) {
    *error = "--k disagrees with the coupling matrix size";
    return 1;
  }

  const LinBpVariant variant = options.method == "linbp*"
                                   ? LinBpVariant::kLinBpStar
                                   : LinBpVariant::kLinBp;
  double eps = 0.0;
  try {
    if (options.eps == "auto") {
      // The exact Lemma 8 threshold streams the shards once per power-
      // iteration step — for kLinBp that bisection means many full
      // passes over the on-disk graph BEFORE the solve. It is the same
      // computation the in-memory pipeline runs (so labels stay
      // byte-identical), but on a dataset that truly dwarfs RAM an
      // explicit --eps skips this cost entirely; say so up front.
      if (variant == LinBpVariant::kLinBp) {
        obs::Log(
            "note: --eps=auto bisects the exact convergence threshold, "
            "streaming all shards once per power-iteration step; pass "
            "--eps=VALUE to skip this on large graphs");
      }
      const double threshold = ExactEpsilonThreshold(
          *backend, coupling, variant, /*tolerance=*/1e-6, ctx);
      eps = std::isfinite(threshold) ? 0.5 * threshold : 1.0;
    } else {
      eps = std::atof(options.eps.c_str());
      if (!(eps > 0.0)) {
        *error = "--eps must be positive or 'auto'";
        return 1;
      }
    }
  } catch (const engine::StreamError& stream_error) {
    *error = stream_error.what();
    return 1;
  }
  if (options.report) {
    std::fprintf(stderr,
                 "streaming %lld shard(s), max block %lld bytes; "
                 "using eps=%.6g\n",
                 static_cast<long long>(backend->reader().num_shards()),
                 static_cast<long long>(
                     backend->reader().max_block_csr_bytes()),
                 eps);
  }

  LinBpOptions lin_options;
  lin_options.variant = variant;
  lin_options.max_iterations = 1000;
  lin_options.exec = ctx;
  ApplyPrecision(options.precision, &lin_options);
  const LinBpResult result =
      RunLinBp(*backend, coupling.ScaledResidual(eps),
               backend->explicit_residuals(), lin_options);
  if (result.failed) {
    *error = result.error;
    return 1;
  }
  if (result.diverged) {
    *error = "LinBP diverged; lower --eps (see --report)";
    return 2;
  }
  const TopBeliefAssignment top = TopBeliefs(result.beliefs);
  if (options.report && backend->HasGroundTruth()) {
    ReportGroundTruthQuality(backend->ground_truth(), top);
  }
  return EmitLabelLines(top, backend->num_nodes(), options, output, error);
}

}  // namespace

int RunPipeline(const Options& options, std::string* output,
                std::string* error) {
  if (options.stream) return RunStreamPipeline(options, output, error);
  // Execution context: --threads wins; otherwise LINBP_THREADS (serial
  // when unset). Built before the problem so snapshot loads use it too;
  // every method produces the same labels at any width.
  const exec::ExecContext ctx = ContextFor(options.threads);

  const auto scenario = BuildProblem(options, ctx, error);
  if (!scenario.has_value()) return 1;

  const CouplingMatrix coupling = scenario->Coupling();
  const std::int64_t k = options.k > 0 ? options.k : scenario->k;
  if (k != scenario->k) {
    *error = "--k disagrees with the coupling matrix size";
    return 1;
  }
  if (scenario->explicit_nodes.empty()) {
    *error = "no explicit beliefs";
    return 1;
  }
  const Graph& graph = scenario->graph;

  // eps_H: explicit value, or half the exact LinBP threshold.
  double eps = 0.0;
  if (options.eps == "auto") {
    const double threshold = ExactEpsilonThreshold(
        graph, coupling,
        options.method == "linbp*" ? LinBpVariant::kLinBpStar
                                   : LinBpVariant::kLinBp);
    eps = std::isfinite(threshold) ? 0.5 * threshold : 1.0;
  } else {
    eps = std::atof(options.eps.c_str());
    if (!(eps > 0.0)) {
      *error = "--eps must be positive or 'auto'";
      return 1;
    }
  }

  if (options.report) {
    const ConvergenceReport report = AnalyzeConvergence(graph, coupling);
    std::fprintf(stderr,
                 "rho(A)=%.6g rho(Hhat_o)=%.6g exact eps: LinBP %.6g, "
                 "LinBP* %.6g; using eps=%.6g\n",
                 report.adjacency_spectral_radius,
                 report.coupling_spectral_radius, report.exact_epsilon_linbp,
                 report.exact_epsilon_linbp_star, eps);
  }

  // Run the chosen method.
  DenseMatrix result_beliefs(graph.num_nodes(), k);
  if (options.method == "bp") {
    if (eps >= coupling.MaxStochasticScale()) {
      *error = "eps too large for a stochastic coupling matrix";
      return 1;
    }
    const BpResult result =
        RunBp(graph, coupling.ScaledStochastic(eps),
              ResidualToProbability(scenario->explicit_residuals));
    if (result.diverged) {
      *error = "BP diverged";
      return 2;
    }
    result_beliefs = ProbabilityToResidual(result.beliefs);
  } else if (options.method == "sbp") {
    result_beliefs = RunSbp(graph, coupling.residual(),
                            scenario->explicit_residuals,
                            scenario->explicit_nodes, ctx)
                         .beliefs;
  } else {
    LinBpOptions lin_options;
    lin_options.variant = options.method == "linbp*"
                              ? LinBpVariant::kLinBpStar
                              : LinBpVariant::kLinBp;
    lin_options.max_iterations = 1000;
    lin_options.exec = ctx;
    ApplyPrecision(options.precision, &lin_options);
    const LinBpResult result = RunLinBp(graph, coupling.ScaledResidual(eps),
                                        scenario->explicit_residuals,
                                        lin_options);
    if (result.diverged) {
      *error = "LinBP diverged; lower --eps (see --report)";
      return 2;
    }
    result_beliefs = result.beliefs;
  }

  const TopBeliefAssignment top = TopBeliefs(result_beliefs);

  // With ground truth available, --report also prints quality metrics.
  if (options.report && scenario->HasGroundTruth()) {
    ReportGroundTruthQuality(scenario->ground_truth, top);
  }

  return EmitLabelLines(top, graph.num_nodes(), options, output, error);
}

int RunServe(const ServeOptions& options, std::istream& in,
             std::ostream& out, std::string* error) {
  const exec::ExecContext ctx = ContextFor(options.threads);
  Options build;
  build.scenario = options.scenario;
  build.coupling = options.coupling;
  auto scenario = BuildProblem(build, ctx, error);
  if (!scenario.has_value()) return 1;
  if (scenario->explicit_nodes.empty()) {
    *error = "no explicit beliefs";
    return 1;
  }
  const CouplingMatrix coupling = scenario->Coupling();
  const LinBpVariant variant = options.method == "linbp*"
                                   ? LinBpVariant::kLinBpStar
                                   : LinBpVariant::kLinBp;
  double eps = 0.0;
  if (!ResolveEps(options.eps, scenario->graph, coupling, variant, &eps,
                  error)) {
    return 1;
  }
  LinBpOptions lin_options;
  lin_options.variant = variant;
  lin_options.max_iterations = 1000;
  lin_options.exec = ctx;
  ApplyPrecision(options.precision, &lin_options);
  // The serve session reports rho(M) alongside rho-hat in `stats`; the
  // power iteration runs once per graph shape and is reused by warm
  // re-solves.
  lin_options.estimate_spectral_radius = true;
  const std::int64_t k = scenario->k;
  const std::int64_t n = scenario->graph.num_nodes();
  LinBpState state(std::move(scenario->graph), coupling.ScaledResidual(eps),
                   std::move(scenario->explicit_residuals), lin_options);
  if (!state.converged()) {
    *error = state.last_error().empty()
                 ? "initial solve did not converge; lower --eps"
                 : state.last_error();
    return 1;
  }

  // Session-local latency accounting behind the `stats` line. Success-
  // only on purpose: failed ops leave the state untouched, and the
  // telemetry keeps the same guarantee (two stats probes bracketing any
  // amount of rejected input print identically). The same events are
  // mirrored into the global registry (per-op-kind series) for the
  // `metrics` command's Prometheus exposition.
  obs::Histogram update_latency;
  obs::Histogram query_latency;
  obs::Registry& registry = obs::Registry::Global();

  // The REPL: one reply per line, errors never abort and never touch the
  // state. Updates go through the same strict parser as stream files.
  std::string line;
  while (std::getline(in, line)) {
    if (dataset::IsUpdateStreamComment(line)) continue;
    std::istringstream fields(line);
    std::string command;
    fields >> command;
    if (command == "quit") break;
    if (command == "stats") {
      const obs::HistogramSnapshot updates = update_latency.Snapshot();
      const obs::HistogramSnapshot queries = query_latency.Snapshot();
      char latency[192];
      std::snprintf(latency, sizeof(latency),
                    " updates=%lld update_p50_ms=%.6g update_p95_ms=%.6g"
                    " queries=%lld query_p50_ms=%.6g query_p95_ms=%.6g",
                    static_cast<long long>(updates.count),
                    updates.Quantile(0.5) * 1e3, updates.Quantile(0.95) * 1e3,
                    static_cast<long long>(queries.count),
                    queries.Quantile(0.5) * 1e3, queries.Quantile(0.95) * 1e3);
      const ConvergenceDiagnostics& diag = state.diagnostics();
      char convergence[160];
      std::snprintf(convergence, sizeof(convergence),
                    " rho_hat=%.6g spectral_radius=%.6g predicted_sweeps=%.6g",
                    diag.empirical_contraction, diag.spectral_radius_estimate,
                    diag.predicted_sweeps_to_tolerance);
      out << "nodes=" << n << " edges=" << state.graph().num_undirected_edges()
          << " k=" << k << " eps=" << eps
          << " converged=" << (state.converged() ? 1 : 0)
          << " cold_sweeps=" << state.cold_start_iterations() << convergence
          << latency << '\n';
      continue;
    }
    if (command == "metrics") {
      std::string extra;
      if (fields >> extra) {
        out << "error: metrics takes no arguments\n";
        continue;
      }
      out << registry.PrometheusText();
      continue;
    }
    if (command == "labels") {
      std::string extra;
      if (fields >> extra) {
        out << "error: labels takes no arguments\n";
        continue;
      }
      WallTimer query_timer;
      std::vector<std::int64_t> all(static_cast<std::size_t>(n));
      for (std::int64_t v = 0; v < n; ++v) all[static_cast<std::size_t>(v)] = v;
      EmitTopBeliefLines(state.beliefs(), all, out);
      const double seconds = query_timer.Seconds();
      query_latency.Observe(seconds);
      LINBP_OBS_COUNTER_ADD("serve_queries_total", 1);
      LINBP_OBS_HISTOGRAM_OBSERVE("serve_query_seconds", seconds);
      continue;
    }
    if (command == "q") {
      std::vector<std::int64_t> nodes;
      std::string token;
      bool ok = true;
      while (fields >> token) {
        std::int64_t node = 0;
        if (!ParseNodeIdToken(token, &node)) {
          out << "error: malformed node id '" << token << "'\n";
          ok = false;
          break;
        }
        if (node < 0 || node >= n) {
          out << "error: node " << node << " outside [0, " << n << ")\n";
          ok = false;
          break;
        }
        nodes.push_back(node);
      }
      if (!ok) continue;
      if (nodes.empty()) {
        out << "error: q needs at least one node id\n";
        continue;
      }
      WallTimer query_timer;
      EmitTopBeliefLines(state.beliefs(), nodes, out);
      const double seconds = query_timer.Seconds();
      query_latency.Observe(seconds);
      LINBP_OBS_COUNTER_ADD("serve_queries_total", 1);
      LINBP_OBS_HISTOGRAM_OBSERVE("serve_query_seconds", seconds);
      continue;
    }
    if (command == "a" || command == "d" || command == "w" ||
        command == "b") {
      dataset::UpdateOp op;
      std::string problem;
      if (!dataset::ParseUpdateLine(line, k, &op, &problem)) {
        LINBP_OBS_COUNTER_ADD("serve_errors_total", 1);
        out << "error: " << problem << '\n';
        continue;
      }
      obs::ScopedSpan span("serve_update");
      WallTimer update_timer;
      const int sweeps = dataset::ApplyUpdateOp(op, &state, &problem);
      const double seconds = update_timer.Seconds();
      const char* kind = command == "a"   ? "add"
                         : command == "d" ? "delete"
                         : command == "w" ? "reweight"
                                          : "belief";
      if (span.active()) {
        span.SetAttr("kind", kind);
        span.SetAttr("sweeps", sweeps);
      }
      if (sweeps < 0) {
        LINBP_OBS_COUNTER_ADD("serve_errors_total", 1);
        out << "error: " << problem << '\n';
      } else {
        update_latency.Observe(seconds);
        registry.GetCounter("serve_updates_total", {{"kind", kind}}).Add(1);
        registry.GetHistogram("serve_update_seconds", {{"kind", kind}})
            .Observe(seconds);
        out << "ok sweeps=" << sweeps << '\n';
      }
      continue;
    }
    LINBP_OBS_COUNTER_ADD("serve_errors_total", 1);
    out << "error: unknown command '" << command
        << "' (a d w b q labels stats metrics quit)\n";
  }
  return 0;
}

int RunTrace(const TraceOptions& options, std::string* output,
             std::string* error) {
  const exec::ExecContext ctx = ContextFor(options.threads);
  auto scenario = dataset::MakeScenario(options.scenario, error, ctx);
  if (!scenario.has_value()) return 1;
  if (scenario->explicit_nodes.empty()) {
    *error = "trace: scenario has no explicit beliefs to serve";
    return 1;
  }
  dataset::UpdateTraceOptions trace_options;
  trace_options.num_ops = options.ops;
  trace_options.seed = options.seed;
  const dataset::UpdateTrace trace =
      dataset::GenerateUpdateTrace(*scenario, trace_options);

  std::error_code ec;
  std::filesystem::create_directories(options.out_dir, ec);
  const std::filesystem::path dir(options.out_dir);

  // Start side: the scenario minus the held-out edges the trace re-adds.
  dataset::Scenario start = *scenario;
  start.graph = Graph(scenario->graph.num_nodes(), trace.start_edges);
  if (!dataset::SaveSnapshot(start, (dir / "start.lbps").string(), error)) {
    return 1;
  }

  // Final side: every update applied to the plain problem description.
  std::vector<Edge> final_edges = trace.start_edges;
  DenseMatrix final_residuals = scenario->explicit_residuals;
  if (!dataset::ApplyUpdateOpsToProblem(trace.ops,
                                        scenario->graph.num_nodes(),
                                        &final_edges, &final_residuals,
                                        error)) {
    return 1;
  }
  dataset::Scenario final_scenario = *scenario;
  final_scenario.graph = Graph(scenario->graph.num_nodes(), final_edges);
  final_scenario.explicit_residuals = std::move(final_residuals);
  if (!dataset::SaveSnapshot(final_scenario, (dir / "final.lbps").string(),
                             error)) {
    return 1;
  }

  if (!dataset::WriteUpdateStream(trace.ops,
                                  (dir / "updates.txt").string())) {
    *error = (dir / "updates.txt").string() + ": cannot write";
    return 1;
  }

  // One eps that keeps BOTH endpoints convergent: half the smaller exact
  // threshold. A warm serve run over the stream and a cold solve of the
  // final snapshot at this eps land on the same fixed point.
  const CouplingMatrix coupling = scenario->Coupling();
  const LinBpVariant variant = options.method == "linbp*"
                                   ? LinBpVariant::kLinBpStar
                                   : LinBpVariant::kLinBp;
  const double threshold =
      std::min(ExactEpsilonThreshold(start.graph, coupling, variant),
               ExactEpsilonThreshold(final_scenario.graph, coupling,
                                     variant));
  const double eps = std::isfinite(threshold) ? 0.5 * threshold : 1.0;
  {
    std::ofstream eps_out(dir / "eps.txt");
    if (!eps_out) {
      *error = (dir / "eps.txt").string() + ": cannot write";
      return 1;
    }
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g\n", eps);
    eps_out << buffer;
  }

  std::ostringstream lines;
  lines << scenario->name << ": " << trace.start_edges.size()
        << " start edges, " << trace.ops.size() << " ops -> "
        << final_edges.size() << " final edges, eps=" << eps << ", wrote "
        << options.out_dir << "/{start.lbps, final.lbps, updates.txt, "
        << "eps.txt}\n";
  *output = lines.str();
  return 0;
}

namespace {

int RunMainDispatch(const std::vector<std::string>& args,
                    std::string* output, std::string* error,
                    bool* usage_error) {
  bool parse_failed = false;
  if (usage_error == nullptr) usage_error = &parse_failed;
  *usage_error = false;
  if (!args.empty() && args[0] == "list") {
    if (args.size() > 1) {
      *error = "list takes no arguments";
      *usage_error = true;
      return 1;
    }
    return RunList(output);
  }
  if (!args.empty() && args[0] == "convert") {
    const auto options = ParseConvertOptions(
        std::vector<std::string>(args.begin() + 1, args.end()), error);
    if (!options.has_value()) {
      *usage_error = true;
      return 1;
    }
    return RunConvert(*options, output, error);
  }
  if (!args.empty() && args[0] == "shard") {
    const auto options = ParseShardOptions(
        std::vector<std::string>(args.begin() + 1, args.end()), error);
    if (!options.has_value()) {
      *usage_error = true;
      return 1;
    }
    return RunShard(*options, output, error);
  }
  if (!args.empty() && args[0] == "serve") {
    const auto options = ParseServeOptions(
        std::vector<std::string>(args.begin() + 1, args.end()), error);
    if (!options.has_value()) {
      *usage_error = true;
      return 1;
    }
    // Replies must appear as soon as they are produced (the REPL may sit
    // on a pipe for hours), so serve streams to std::cout directly
    // instead of accumulating into *output.
    output->clear();
    return RunServe(*options, std::cin, std::cout, error);
  }
  if (!args.empty() && args[0] == "trace") {
    const auto options = ParseTraceOptions(
        std::vector<std::string>(args.begin() + 1, args.end()), error);
    if (!options.has_value()) {
      *usage_error = true;
      return 1;
    }
    return RunTrace(*options, output, error);
  }
  if (!args.empty() && args[0] == "info") {
    InfoOptions options;
    for (std::size_t i = 1; i < args.size(); ++i) {
      if (auto v = FlagValue(args[i], "--snapshot=")) {
        options.snapshot_path = *v;
      } else {
        *error = "unknown argument: " + args[i];
        *usage_error = true;
        return 1;
      }
    }
    if (options.snapshot_path.empty()) {
      *error = "info: --snapshot is required";
      *usage_error = true;
      return 1;
    }
    return RunInfo(options, output, error);
  }
  const auto options = ParseOptions(args, error);
  if (!options.has_value()) {
    *usage_error = true;
    return 1;
  }
  const int code = RunPipeline(*options, output, error);
  // The label lines went to the output file; don't echo them to stdout.
  if (code == 0 && !options->output_path.empty()) output->clear();
  return code;
}

}  // namespace

int RunMain(const std::vector<std::string>& args, std::string* output,
            std::string* error, bool* usage_error) {
  // --quiet, --metrics-out=FILE, and --trace-out=FILE apply to every
  // subcommand, so they are stripped here rather than in each parser.
  std::vector<std::string> rest;
  rest.reserve(args.size());
  std::string metrics_out;
  std::string trace_out;
  for (const std::string& arg : args) {
    if (arg == "--quiet") {
      obs::SetQuiet(true);
    } else if (auto v = FlagValue(arg, "--metrics-out=")) {
      metrics_out = *v;
    } else if (auto v = FlagValue(arg, "--trace-out=")) {
      trace_out = *v;
    } else {
      rest.push_back(arg);
    }
  }
  if (metrics_out.empty() && trace_out.empty()) {
    return RunMainDispatch(rest, output, error, usage_error);
  }
  // Spans are retained only when a report was requested; without the
  // flags ScopedSpan sees no active tracer and costs one atomic load.
  obs::Tracer tracer;
  obs::SetActiveTracer(&tracer);
  int code = RunMainDispatch(rest, output, error, usage_error);
  obs::SetActiveTracer(nullptr);
  if (!metrics_out.empty() &&
      !obs::WriteMetricsReport(metrics_out, obs::Registry::Global(),
                               &tracer) &&
      code == 0) {
    *error = "failed to write metrics report to " + metrics_out;
    code = 1;
  }
  if (!trace_out.empty() && !obs::WriteChromeTrace(trace_out, tracer) &&
      code == 0) {
    *error = "failed to write trace to " + trace_out;
    code = 1;
  }
  return code;
}

}  // namespace cli
}  // namespace linbp
