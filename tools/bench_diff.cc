// bench_diff entry point: compare two bench JSON files and gate on
// timing regressions. See tools/bench_diff_lib.h for the format rules.

#include <cstdio>
#include <string>
#include <vector>

#include "tools/bench_diff_lib.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string output;
  std::string error;
  const int code = linbp::cli::BenchDiffMain(args, &output, &error);
  if (!output.empty()) std::fputs(output.c_str(), stdout);
  if (!error.empty()) std::fprintf(stderr, "error: %s\n", error.c_str());
  return code;
}
