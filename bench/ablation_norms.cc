// Ablation: which norm makes the Lemma 9 sufficient bound tight?
//
// Lemma 9 upper-bounds the spectral radius with any sub-multiplicative
// norm and recommends minimizing over {Frobenius, induced-1, induced-inf}.
// This harness reports, per graph family, the eps_H bound each individual
// norm yields for LinBP, the combined (min) bound, the simpler Lemma 23
// bound, and the exact Lemma 8 threshold — quantifying how much of the
// exact region each choice certifies.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/convergence.h"
#include "src/core/coupling.h"
#include "src/graph/dblp.h"
#include "src/la/norms.h"
#include "src/util/table_printer.h"

namespace {

using namespace linbp;

// Lemma 9 LinBP bound for one specific norm of A / D / Hhat_o.
double BoundWithNorm(const Graph& graph, const CouplingMatrix& coupling,
                     double (*matrix_norm)(const SparseMatrix&),
                     double (*dense_norm)(const DenseMatrix&)) {
  const double a = matrix_norm(graph.adjacency());
  const double h = dense_norm(coupling.residual());
  const DenseMatrix degrees =
      DenseMatrix::Diagonal(graph.weighted_degrees());
  const double d = dense_norm(degrees);
  if (d == 0.0) return 1.0 / (a * h);
  return (std::sqrt(a * a + 4.0 * d) - a) / (2.0 * d) / h;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const bench::MetricsDumpGuard metrics_guard(args);
  const int max_graph = static_cast<int>(args.Int("max-graph", 3));

  std::printf("== Ablation: Lemma 9 norm choice (LinBP bound as %% of the "
              "exact Lemma 8 threshold) ==\n\n");
  const CouplingMatrix coupling = KroneckerExperimentCoupling();

  struct NamedGraph {
    std::string name;
    Graph graph;
  };
  std::vector<NamedGraph> graphs;
  graphs.push_back({"torus", TorusExampleGraph()});
  graphs.push_back({"grid-12x12", GridGraph(12, 12)});
  graphs.push_back({"random n=200", RandomConnectedGraph(200, 400, 3)});
  for (int index = 1; index <= max_graph; ++index) {
    graphs.push_back({"kronecker #" + std::to_string(index),
                      bench::PaperGraph(index)});
  }
  {
    DblpConfig config;
    config.num_papers = 1200;
    config.num_authors = 1250;
    config.num_terms = 650;
    graphs.push_back({"dblp (small)", MakeSyntheticDblp(config).graph});
  }

  TablePrinter table({"graph", "exact eps", "Frobenius", "induced-1",
                      "induced-inf", "min (Lemma 9)", "Lemma 23"});
  for (const auto& [name, graph] : graphs) {
    const double exact =
        ExactEpsilonThreshold(graph, coupling, LinBpVariant::kLinBp);
    auto percent = [&](double bound) {
      return TablePrinter::Num(100.0 * bound / exact, 3) + "%";
    };
    const double frobenius = BoundWithNorm(
        graph, coupling,
        static_cast<double (*)(const SparseMatrix&)>(&FrobeniusNorm),
        static_cast<double (*)(const DenseMatrix&)>(&FrobeniusNorm));
    const double induced1 = BoundWithNorm(
        graph, coupling,
        static_cast<double (*)(const SparseMatrix&)>(&Induced1Norm),
        static_cast<double (*)(const DenseMatrix&)>(&Induced1Norm));
    const double induced_inf = BoundWithNorm(
        graph, coupling,
        static_cast<double (*)(const SparseMatrix&)>(&InducedInfNorm),
        static_cast<double (*)(const DenseMatrix&)>(&InducedInfNorm));
    const double combined =
        SufficientEpsilonBound(graph, coupling, LinBpVariant::kLinBp);
    const double simple = SimpleEpsilonBound(graph, coupling);
    table.AddRow({name, TablePrinter::Num(exact, 4), percent(frobenius),
                  percent(induced1), percent(induced_inf), percent(combined),
                  percent(simple)});
  }
  table.Print();
  std::printf(
      "\n(the best single norm depends on the degree distribution: the\n"
      "induced norms win on regular-ish graphs, Frobenius on hub-heavy\n"
      "ones; minimizing per matrix — the paper's recommendation — always\n"
      "certifies the largest region, and Lemma 23 is uniformly looser)\n");
  return 0;
}
