// Experiment E3 (Fig. 6a): the synthetic Kronecker graph family used by all
// scalability experiments. Graph #g is the (g+4)-th Kronecker power of the
// path P3, giving 3^(g+4) nodes and 4^(g+4) adjacency entries; the paper
// seeds 5% of the nodes with explicit beliefs (and updates 1 permille).

#include <cstdio>

#include "bench/bench_common.h"
#include "src/util/table_printer.h"

int main(int argc, char** argv) {
  using namespace linbp;
  const bench::Args args(argc, argv);
  // Graph #7 has 4.2M adjacency entries; fine to *generate* by default.
  const int max_graph = static_cast<int>(args.Int("max-graph", 7));

  std::printf("== Fig. 6a: synthetic Kronecker graphs ==\n\n");
  TablePrinter table({"#", "nodes n", "edges e", "e/n", "expl. 5%",
                      "expl. 1permille"});
  for (int index = 1; index <= max_graph; ++index) {
    const Graph graph = bench::PaperGraph(index);
    const std::int64_t n = graph.num_nodes();
    const std::int64_t e = graph.num_directed_edges();
    table.AddRow({std::to_string(index), TablePrinter::Int(n),
                  TablePrinter::Int(e),
                  TablePrinter::Num(static_cast<double>(e) /
                                        static_cast<double>(n),
                                    3),
                  TablePrinter::Int(bench::FivePercent(n)),
                  TablePrinter::Int(bench::OnePermille(n))});
  }
  table.Print();
  std::printf("\n(paper row for graph #1: 243 nodes, 1 024 edges, e/n 4.2, "
              "12 / 1 explicit)\n");
  return 0;
}
