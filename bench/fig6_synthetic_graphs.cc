// Experiment E3 (Fig. 6a): the synthetic Kronecker graph family used by all
// scalability experiments. Graph #g is the (g+4)-th Kronecker power of the
// path P3, giving 3^(g+4) nodes and 4^(g+4) adjacency entries; the paper
// seeds 5% of the nodes with explicit beliefs (and updates 1 permille).
//
// --check: golden-value guardrail (the fig6_golden_check CTest test).
// The family is closed-form, so the goldens are exact hard-coded values:
// graph #g must have 3^(g+4) nodes and 4^(g+4) stored adjacency entries
// (the paper's Fig. 6a row for #1: 243 nodes, 1 024 edges), and the
// Sect. 7 seeding helpers must reproduce the recorded explicit counts.

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/util/table_printer.h"

int main(int argc, char** argv) {
  using namespace linbp;
  const bench::Args args(argc, argv);
  const bench::MetricsDumpGuard metrics_guard(args);
  // Graph #7 has 4.2M adjacency entries; fine to *generate* by default.
  const int max_graph = static_cast<int>(args.Int("max-graph", 7));

  if (args.Has("check")) {
    // Hard-coded goldens (paper Fig. 6a / Sect. 7), NOT recomputed from
    // the generator's or bench_common's formulas — a regression in
    // either must fail the check, so nothing here may share code with
    // what it guards.
    struct Golden {
      std::int64_t nodes;
      std::int64_t entries;
      std::int64_t five_percent;
      std::int64_t one_permille;
    };
    const Golden goldens[] = {
        {243, 1024, 12, 1},        // graph #1 (the paper's example row)
        {729, 4096, 36, 1},        // #2
        {2187, 16384, 109, 2},     // #3
        {6561, 65536, 328, 6},     // #4
    };
    const int checkable =
        static_cast<int>(sizeof(goldens) / sizeof(goldens[0]));
    int failures = 0;
    for (int index = 1; index <= std::min(max_graph, checkable); ++index) {
      const Graph graph = bench::PaperGraph(index);
      const Golden& want = goldens[index - 1];
      const bool ok = graph.num_nodes() == want.nodes &&
                      graph.num_directed_edges() == want.entries &&
                      bench::FivePercent(graph.num_nodes()) ==
                          want.five_percent &&
                      bench::OnePermille(graph.num_nodes()) ==
                          want.one_permille;
      std::printf("graph #%d  got %lld nodes / %lld entries / %lld / %lld "
                  "expl.  want %lld / %lld / %lld / %lld  %s\n",
                  index, static_cast<long long>(graph.num_nodes()),
                  static_cast<long long>(graph.num_directed_edges()),
                  static_cast<long long>(
                      bench::FivePercent(graph.num_nodes())),
                  static_cast<long long>(
                      bench::OnePermille(graph.num_nodes())),
                  static_cast<long long>(want.nodes),
                  static_cast<long long>(want.entries),
                  static_cast<long long>(want.five_percent),
                  static_cast<long long>(want.one_permille),
                  ok ? "OK" : "FAIL");
      if (!ok) ++failures;
    }
    if (failures > 0) {
      std::printf("%d golden check(s) FAILED\n", failures);
      return 1;
    }
    std::printf("all golden checks passed\n");
    return 0;
  }

  std::printf("== Fig. 6a: synthetic Kronecker graphs ==\n\n");
  TablePrinter table({"#", "nodes n", "edges e", "e/n", "expl. 5%",
                      "expl. 1permille"});
  for (int index = 1; index <= max_graph; ++index) {
    const Graph graph = bench::PaperGraph(index);
    const std::int64_t n = graph.num_nodes();
    const std::int64_t e = graph.num_directed_edges();
    table.AddRow({std::to_string(index), TablePrinter::Int(n),
                  TablePrinter::Int(e),
                  TablePrinter::Num(static_cast<double>(e) /
                                        static_cast<double>(n),
                                    3),
                  TablePrinter::Int(bench::FivePercent(n)),
                  TablePrinter::Int(bench::OnePermille(n))});
  }
  table.Print();
  std::printf("\n(paper row for graph #1: 243 nodes, 1 024 edges, e/n 4.2, "
              "12 / 1 explicit)\n");
  return 0;
}
