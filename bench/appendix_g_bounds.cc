// Experiment E14 (Appendix G): comparing the Mooij-Kappen sufficient bound
// for standard BP, c(H) * rho(A_edge) < 1, with the exact LinBP* criterion
// rho(Hhat) * rho(A) < 1, plus the appendix's empirical observation
// rho(A_edge) + 1 ~ rho(A) on realistic graphs.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/convergence.h"
#include "src/core/coupling.h"
#include "src/core/mooij.h"
#include "src/graph/dblp.h"
#include "src/util/table_printer.h"

int main(int argc, char** argv) {
  using namespace linbp;
  const bench::Args args(argc, argv);
  const bench::MetricsDumpGuard metrics_guard(args);
  const int max_graph = static_cast<int>(args.Int("max-graph", 3));

  std::printf("== Appendix G: BP vs LinBP* convergence bounds ==\n\n");

  struct NamedGraph {
    std::string name;
    Graph graph;
  };
  std::vector<NamedGraph> graphs;
  graphs.push_back({"torus (Fig. 5c)", TorusExampleGraph()});
  graphs.push_back({"cycle-32", CycleGraph(32)});
  graphs.push_back({"grid-8x8", GridGraph(8, 8)});
  for (int index = 1; index <= max_graph; ++index) {
    graphs.push_back({"kronecker #" + std::to_string(index),
                      bench::PaperGraph(index)});
  }
  {
    DblpConfig config;
    config.num_papers = 1500;
    config.num_authors = 1550;
    config.num_terms = 800;
    graphs.push_back({"dblp (small)", MakeSyntheticDblp(config).graph});
  }

  // Spectral structure: rho(A_edge) + 1 ~ rho(A) (and always <).
  std::printf("-- edge matrix vs adjacency spectral radii --\n");
  TablePrinter spectral({"graph", "rho(A)", "rho(A_edge)",
                         "rho(A_edge)+1", "ratio"});
  for (const auto& [name, graph] : graphs) {
    const double rho_a = AdjacencySpectralRadius(graph);
    const double rho_edge = EdgeMatrixSpectralRadius(graph);
    spectral.AddRow({name, TablePrinter::Num(rho_a, 4),
                     TablePrinter::Num(rho_edge, 4),
                     TablePrinter::Num(rho_edge + 1.0, 4),
                     TablePrinter::Num((rho_edge + 1.0) / rho_a, 4)});
  }
  spectral.Print();

  // Bound comparison at a common eps for the Fig. 6b coupling.
  const CouplingMatrix coupling = KroneckerExperimentCoupling();
  std::printf("\n-- bound values for Hhat = eps * Hhat_o (Fig. 6b), "
              "converges iff < 1 --\n");
  TablePrinter bounds({"graph", "eps", "c(H)", "Mooij c*rho(Ae)",
                       "LinBP* rho(H)rho(A)", "BP bound ok",
                       "LinBP* ok"});
  for (const auto& [name, graph] : graphs) {
    const double exact = ExactEpsilonThreshold(
        graph, coupling, LinBpVariant::kLinBpStar);
    const double eps = 0.8 * exact;  // just inside LinBP*'s region
    const BoundComparison comparison =
        CompareConvergenceBounds(graph, coupling.ScaledResidual(eps));
    bounds.AddRow({name, TablePrinter::Num(eps, 3),
                   TablePrinter::Num(comparison.coupling_constant, 4),
                   TablePrinter::Num(comparison.mooij_value, 4),
                   TablePrinter::Num(comparison.linbp_star_value, 4),
                   comparison.mooij_value < 1.0 ? "yes" : "no",
                   comparison.linbp_star_value < 1.0 ? "yes" : "no"});
  }
  bounds.Print();
  std::printf(
      "\n(appendix: neither bound subsumes the other; for multi-class\n"
      "couplings c(H) > rho(Hhat) usually makes the LinBP* criterion\n"
      "admit a wider range of Hhat)\n");
  return 0;
}
