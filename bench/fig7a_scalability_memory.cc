// Experiment E4 (Fig. 7a): runtime of standard BP vs LinBP in the
// in-memory implementation across Kronecker graph sizes, 5 iterations each
// (the paper's timing protocol). The headline claim: LinBP is orders of
// magnitude faster than BP at the same asymptotic (linear-in-edges)
// scaling; the paper's reference line is 100k edges/second.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/bp.h"
#include "src/core/coupling.h"
#include "src/core/linbp.h"
#include "src/graph/beliefs.h"
#include "src/util/table_printer.h"

int main(int argc, char** argv) {
  using namespace linbp;
  const bench::Args args(argc, argv);
  const int max_graph = static_cast<int>(args.Int("max-graph", 6));
  const int iterations = static_cast<int>(args.Int("iterations", 5));
  const exec::ExecContext ctx = bench::ExecFromArgs(args);
  const CouplingMatrix coupling = KroneckerExperimentCoupling();
  const double eps = 0.0005;  // inside the convergence region of Fig. 7f

  std::printf("== Fig. 7a: in-memory scalability, %d iterations, "
              "%d thread(s) ==\n\n",
              iterations, ctx.threads());
  TablePrinter table({"#", "edges", "BP", "LinBP", "BP/LinBP",
                      "BP e/s", "LinBP e/s"});
  for (int index = 1; index <= max_graph; ++index) {
    const Graph graph = bench::PaperGraph(index);
    const SeededBeliefs seeded = bench::PaperSeeds(graph, 1000 + index);
    const DenseMatrix priors = ResidualToProbability(seeded.residuals);
    const DenseMatrix h = coupling.ScaledStochastic(eps);
    const DenseMatrix hhat = coupling.ScaledResidual(eps);

    BpOptions bp_options;
    bp_options.max_iterations = iterations;
    bp_options.tolerance = 0.0;
    const double bp_seconds = bench::TimeSeconds(
        [&] { RunBp(graph, h, priors, bp_options); });

    LinBpOptions lin_options;
    lin_options.max_iterations = iterations;
    lin_options.tolerance = 0.0;
    lin_options.exec = ctx;
    const double lin_seconds = bench::TimeSeconds(
        [&] { RunLinBp(graph, hhat, seeded.residuals, lin_options); });

    const double edges = static_cast<double>(graph.num_directed_edges());
    table.AddRow({std::to_string(index),
                  TablePrinter::Int(graph.num_directed_edges()),
                  bench::FormatSeconds(bp_seconds),
                  bench::FormatSeconds(lin_seconds),
                  TablePrinter::Num(bp_seconds / lin_seconds, 3),
                  TablePrinter::Num(edges / bp_seconds, 3),
                  TablePrinter::Num(edges / lin_seconds, 3)});
  }
  table.Print();
  std::printf("\n(paper: BP/LinBP ratio grows to ~600x at graph #9; both\n"
              "scale linearly in edges; reference line 100k edges/s)\n");
  return 0;
}
