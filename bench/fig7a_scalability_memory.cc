// Experiment E4 (Fig. 7a): runtime of standard BP vs LinBP in the
// in-memory implementation across Kronecker graph sizes, 5 iterations each
// (the paper's timing protocol). The headline claim: LinBP is orders of
// magnitude faster than BP at the same asymptotic (linear-in-edges)
// scaling; the paper's reference line is 100k edges/second.
//
// --check (a CTest regression guard): the figure's timing claim is
// hardware-bound, but its premise — both methods compute the SAME labels
// under the protocol — is not. Runs BP and LinBP to convergence on
// graph #2 and asserts their label agreement over nodes reachable from
// the explicit seeds stays at the recorded golden.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/bp.h"
#include "src/core/coupling.h"
#include "src/core/labeling.h"
#include "src/core/linbp.h"
#include "src/core/sbp.h"
#include "src/graph/beliefs.h"
#include "src/util/table_printer.h"

namespace {

int RunCheck() {
  using namespace linbp;
  const Graph graph = bench::PaperGraph(2);
  const CouplingMatrix coupling = KroneckerExperimentCoupling();
  const SeededBeliefs seeded = bench::PaperSeeds(graph, 1002);
  const double eps = 0.0005;

  BpOptions bp_options;
  bp_options.max_iterations = 500;
  bp_options.tolerance = 1e-13;
  const BpResult bp = RunBp(graph, coupling.ScaledStochastic(eps),
                            ResidualToProbability(seeded.residuals),
                            bp_options);
  LinBpOptions lin_options;
  lin_options.max_iterations = 500;
  lin_options.tolerance = 1e-16;
  const LinBpResult lin = RunLinBp(graph, coupling.ScaledResidual(eps),
                                   seeded.residuals, lin_options);
  if (!bp.converged || !lin.converged) {
    std::printf("fig7a check FAILED: BP converged=%d LinBP converged=%d\n",
                bp.converged, lin.converged);
    return 1;
  }
  // Score only nodes reachable from the seeds: unlabeled components
  // carry machine-noise "labels" in BP vs exact ties in LinBP.
  const std::vector<std::int64_t> geodesic =
      GeodesicNumbers(graph, seeded.explicit_nodes);
  std::vector<std::int64_t> scored;
  for (std::int64_t v = 0; v < graph.num_nodes(); ++v) {
    if (geodesic[v] != kUnreachable) scored.push_back(v);
  }
  const QualityMetrics quality = CompareAssignments(
      TopBeliefs(ProbabilityToResidual(bp.beliefs)), TopBeliefs(lin.beliefs),
      scored);
  // Golden from a serial run of this check (deterministic: seeded graph,
  // bit-identical kernels); tolerance absorbs cross-compiler rounding on
  // near-tie labels.
  constexpr double kGoldenF1 = 1.0;
  constexpr double kTolerance = 0.02;
  const bool ok = std::abs(quality.f1 - kGoldenF1) <= kTolerance;
  std::printf("fig7a LinBP~BP agreement on %zu reachable nodes: F1 %.4f "
              "want %.4f +/- %.2f  %s\n",
              scored.size(), quality.f1, kGoldenF1, kTolerance,
              ok ? "OK" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace linbp;
  const bench::Args args(argc, argv);
  const bench::MetricsDumpGuard metrics_guard(args);
  if (args.Has("check")) return RunCheck();
  const int max_graph = static_cast<int>(args.Int("max-graph", 6));
  const int iterations = static_cast<int>(args.Int("iterations", 5));
  const exec::ExecContext ctx = bench::ExecFromArgs(args);
  const CouplingMatrix coupling = KroneckerExperimentCoupling();
  const double eps = 0.0005;  // inside the convergence region of Fig. 7f

  std::printf("== Fig. 7a: in-memory scalability, %d iterations, "
              "%d thread(s) ==\n\n",
              iterations, ctx.threads());
  TablePrinter table({"#", "edges", "BP", "LinBP", "BP/LinBP",
                      "BP e/s", "LinBP e/s"});
  for (int index = 1; index <= max_graph; ++index) {
    const Graph graph = bench::PaperGraph(index);
    const SeededBeliefs seeded = bench::PaperSeeds(graph, 1000 + index);
    const DenseMatrix priors = ResidualToProbability(seeded.residuals);
    const DenseMatrix h = coupling.ScaledStochastic(eps);
    const DenseMatrix hhat = coupling.ScaledResidual(eps);

    BpOptions bp_options;
    bp_options.max_iterations = iterations;
    bp_options.tolerance = 0.0;
    const double bp_seconds = bench::TimeSeconds(
        [&] { RunBp(graph, h, priors, bp_options); });

    LinBpOptions lin_options;
    lin_options.max_iterations = iterations;
    lin_options.tolerance = 0.0;
    lin_options.exec = ctx;
    const double lin_seconds = bench::TimeSeconds(
        [&] { RunLinBp(graph, hhat, seeded.residuals, lin_options); });

    const double edges = static_cast<double>(graph.num_directed_edges());
    table.AddRow({std::to_string(index),
                  TablePrinter::Int(graph.num_directed_edges()),
                  bench::FormatSeconds(bp_seconds),
                  bench::FormatSeconds(lin_seconds),
                  TablePrinter::Num(bp_seconds / lin_seconds, 3),
                  TablePrinter::Num(edges / bp_seconds, 3),
                  TablePrinter::Num(edges / lin_seconds, 3)});
  }
  table.Print();
  std::printf("\n(paper: BP/LinBP ratio grows to ~600x at graph #9; both\n"
              "scale linearly in edges; reference line 100k edges/s)\n");
  return 0;
}
