// Experiment E7 (Fig. 7d): time per iteration of LinBP vs SBP in the
// in-memory implementation. LinBP touches every edge in every iteration;
// SBP visits each geodesic level (and thus each edge) once, so its
// per-iteration cost varies and the total sums to a single pass.

// --check (a CTest regression guard): the per-iteration numbers are only
// meaningful if the manually instrumented sweeps compute what the
// library solvers compute — asserts the hand-rolled LinBP sweep loop
// matches RunLinBp bit-for-bit after 5 iterations, and the per-level SBP
// slice matches RunSbp at 1e-9, on graph #2.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/coupling.h"
#include "src/core/linbp.h"
#include "src/core/sbp.h"
#include "src/graph/beliefs.h"
#include "src/la/kron_ops.h"
#include "src/obs/timeseries.h"
#include "src/util/table_printer.h"
#include "src/util/timer.h"

namespace {

int RunCheck() {
  using namespace linbp;
  const Graph graph = bench::PaperGraph(2);
  const CouplingMatrix coupling = KroneckerExperimentCoupling();
  const SeededBeliefs seeded = bench::PaperSeeds(graph, 4002);
  const double eps = 0.0005;
  const int iterations = 5;
  int failures = 0;

  // The driver's manual LinBP sweep (propagate + re-add explicit) must
  // equal RunLinBp under the fixed-sweep protocol.
  const DenseMatrix hhat = coupling.ScaledResidual(eps);
  const DenseMatrix hhat2 = hhat.Multiply(hhat);
  DenseMatrix beliefs = seeded.residuals;
  for (int it = 0; it < iterations; ++it) {
    const DenseMatrix next =
        LinBpPropagate(graph.adjacency(), graph.weighted_degrees(), hhat,
                       hhat2, beliefs, /*with_echo=*/true);
    for (std::int64_t s = 0; s < next.rows(); ++s) {
      for (std::int64_t c = 0; c < next.cols(); ++c) {
        beliefs.At(s, c) = seeded.residuals.At(s, c) + next.At(s, c);
      }
    }
  }
  LinBpOptions options;
  options.max_iterations = iterations;
  options.tolerance = 0.0;
  const LinBpResult reference = RunLinBp(graph, hhat, seeded.residuals,
                                         options);
  const double linbp_diff = beliefs.MaxAbsDiff(reference.beliefs);
  std::printf("fig7d manual LinBP sweeps vs RunLinBp: max abs diff %.3e "
              "(want <= 1e-12)  %s\n",
              linbp_diff, linbp_diff <= 1e-12 ? "OK" : "FAIL");
  if (linbp_diff > 1e-12) ++failures;

  // The per-level SBP slice (run through EVERY level) must reproduce
  // RunSbp.
  const std::vector<std::int64_t> geodesic =
      GeodesicNumbers(graph, seeded.explicit_nodes);
  std::int64_t max_level = 0;
  for (const std::int64_t g : geodesic) max_level = std::max(max_level, g);
  const DenseMatrix& hh = coupling.residual();
  DenseMatrix b(graph.num_nodes(), 3);
  for (const std::int64_t s : seeded.explicit_nodes) {
    for (int c = 0; c < 3; ++c) b.At(s, c) = seeded.residuals.At(s, c);
  }
  const auto& row_ptr = graph.adjacency().row_ptr();
  const auto& col_idx = graph.adjacency().col_idx();
  const auto& values = graph.adjacency().values();
  for (std::int64_t level = 1; level <= max_level; ++level) {
    for (std::int64_t t = 0; t < graph.num_nodes(); ++t) {
      if (geodesic[t] != level) continue;
      double agg[3] = {0, 0, 0};
      for (std::int64_t e = row_ptr[t]; e < row_ptr[t + 1]; ++e) {
        const std::int64_t s = col_idx[e];
        if (geodesic[s] != level - 1) continue;
        for (int c = 0; c < 3; ++c) agg[c] += values[e] * b.At(s, c);
      }
      for (int c = 0; c < 3; ++c) {
        double value = 0.0;
        for (int j = 0; j < 3; ++j) value += agg[j] * hh.At(j, c);
        b.At(t, c) = value;
      }
    }
  }
  const SbpResult sbp = RunSbp(graph, hh, seeded.residuals,
                               seeded.explicit_nodes);
  const double sbp_diff = b.MaxAbsDiff(sbp.beliefs);
  std::printf("fig7d manual SBP level slices vs RunSbp: max abs diff %.3e "
              "(want <= 1e-9)  %s\n",
              sbp_diff, sbp_diff <= 1e-9 ? "OK" : "FAIL");
  if (sbp_diff > 1e-9) ++failures;
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace linbp;
  const bench::Args args(argc, argv);
  const bench::MetricsDumpGuard metrics_guard(args);
  if (args.Has("check")) return RunCheck();
  const int graph_index = static_cast<int>(args.Int("graph", 6));
  const int iterations = static_cast<int>(args.Int("iterations", 5));
  const CouplingMatrix coupling = KroneckerExperimentCoupling();
  const double eps = 0.0005;

  const Graph graph = bench::PaperGraph(graph_index);
  const SeededBeliefs seeded = bench::PaperSeeds(graph, 4000 + graph_index);
  std::printf("== Fig. 7d: per-iteration time on graph #%d (%lld edges) ==\n\n",
              graph_index,
              static_cast<long long>(graph.num_directed_edges()));

  // LinBP: run the library solver under the fixed-sweep protocol and
  // read each sweep's wall time back from the "linbp_sweep" obs time
  // series — the same per-sweep samples --metrics-out reports, so the
  // table and the JSON report can never disagree.
  const DenseMatrix hhat = coupling.ScaledResidual(eps);
  LinBpOptions lin_options;
  lin_options.max_iterations = iterations;
  lin_options.tolerance = 0.0;
  RunLinBp(graph, hhat, seeded.residuals, lin_options);
  std::vector<double> linbp_times(iterations, 0.0);
  for (const obs::TimeSeriesSample& sample :
       obs::TimeSeriesRegistry::Global().Get("linbp_sweep").Samples()) {
    // Index by the recorded sweep number: past the recorder capacity the
    // series decimates, and decimated samples keep their sweep ids.
    if (sample.sweep >= 1 && sample.sweep <= iterations) {
      linbp_times[sample.sweep - 1] = sample.seconds * 1e3;
    }
  }

  // SBP: time each geodesic level (its "iterations"); levels beyond the
  // maximum geodesic number cost nothing.
  const std::vector<std::int64_t> geodesic =
      GeodesicNumbers(graph, seeded.explicit_nodes);
  std::int64_t max_level = 0;
  for (const std::int64_t g : geodesic) max_level = std::max(max_level, g);
  // One full pass, timed per level: re-run RunSbp on level-censored graphs
  // would distort; instead time level slices directly.
  std::vector<double> sbp_times(iterations, 0.0);
  {
    const DenseMatrix& hh = coupling.residual();
    DenseMatrix b(graph.num_nodes(), 3);
    for (const std::int64_t s : seeded.explicit_nodes) {
      for (int c = 0; c < 3; ++c) b.At(s, c) = seeded.residuals.At(s, c);
    }
    const auto& row_ptr = graph.adjacency().row_ptr();
    const auto& col_idx = graph.adjacency().col_idx();
    const auto& values = graph.adjacency().values();
    std::vector<std::vector<std::int64_t>> levels(max_level + 1);
    for (std::int64_t v = 0; v < graph.num_nodes(); ++v) {
      if (geodesic[v] > 0) levels[geodesic[v]].push_back(v);
    }
    for (std::int64_t level = 1;
         level <= max_level && level <= iterations; ++level) {
      WallTimer timer;
      for (const std::int64_t t : levels[level]) {
        double agg[3] = {0, 0, 0};
        for (std::int64_t e = row_ptr[t]; e < row_ptr[t + 1]; ++e) {
          const std::int64_t s = col_idx[e];
          if (geodesic[s] != level - 1) continue;
          for (int c = 0; c < 3; ++c) agg[c] += values[e] * b.At(s, c);
        }
        for (int c = 0; c < 3; ++c) {
          double value = 0.0;
          for (int j = 0; j < 3; ++j) value += agg[j] * hh.At(j, c);
          b.At(t, c) = value;
        }
      }
      sbp_times[level - 1] = timer.Millis();
    }
  }

  TablePrinter table({"iteration", "LinBP [ms]", "SBP [ms]"});
  for (int it = 0; it < iterations; ++it) {
    table.AddRow({std::to_string(it + 1),
                  TablePrinter::Num(linbp_times[it], 4),
                  TablePrinter::Num(sbp_times[it], 4)});
  }
  table.Print();
  double sbp_total = 0.0;
  double linbp_total = 0.0;
  for (int it = 0; it < iterations; ++it) {
    sbp_total += sbp_times[it];
    linbp_total += linbp_times[it];
  }
  std::printf("\nLinBP total %.2f ms (constant per iteration); SBP total "
              "%.2f ms\n(varies per level and stops once every node is "
              "reached, max level %lld)\n",
              linbp_total, sbp_total, static_cast<long long>(max_level));
  return 0;
}
