// Experiment E15: google-benchmark micro-benchmarks of the hot kernels
// behind every experiment — the SpMM at the heart of the LinBP update, one
// full LinBP sweep, one BP message sweep, a complete SBP pass, geodesic
// BFS, and the power-iteration step of the convergence criteria — plus
// thread-count sweeps of the parallel SpMM/SpMV kernels (src/exec/). The
// threaded sweeps feed BENCH_spmm.json, the perf-trajectory baseline:
//   ./bench_micro_kernels --benchmark_filter='Threads'
//       --benchmark_format=json > BENCH_spmm.json

#include <benchmark/benchmark.h>

#include <map>
#include <vector>

#include "src/core/bp.h"
#include "src/core/convergence.h"
#include "src/core/coupling.h"
#include "src/core/linbp.h"
#include "src/core/sbp.h"
#include "src/exec/exec_context.h"
#include "src/graph/beliefs.h"
#include "src/graph/generators.h"
#include "src/la/kron_ops.h"

namespace {

using namespace linbp;

// One shared graph per size (the Kronecker powers of Fig. 6a).
const Graph& GraphForPower(int power) {
  static std::map<int, Graph>* cache = new std::map<int, Graph>();
  auto it = cache->find(power);
  if (it == cache->end()) {
    it = cache->emplace(power, KroneckerPowerGraph(power)).first;
  }
  return it->second;
}

// One shared pool per width so repeated benchmark runs reuse threads.
const exec::ExecContext& ContextForThreads(int threads) {
  static std::map<int, exec::ExecContext>* cache =
      new std::map<int, exec::ExecContext>();
  auto it = cache->find(threads);
  if (it == cache->end()) {
    it = cache->emplace(threads, exec::ExecContext::WithThreads(threads))
             .first;
  }
  return it->second;
}

void BM_SparseDenseMultiply(benchmark::State& state) {
  const Graph& graph = GraphForPower(static_cast<int>(state.range(0)));
  const SeededBeliefs seeded =
      SeedPaperBeliefs(graph.num_nodes(), 3,
                       graph.num_nodes() / 20 + 1, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph.adjacency().MultiplyDense(seeded.residuals));
  }
  state.SetItemsProcessed(state.iterations() * graph.num_directed_edges());
}
BENCHMARK(BM_SparseDenseMultiply)->Arg(5)->Arg(7)->Arg(9);

// Modeled memory traffic of one SpMM pass at the given scalar width:
// per stored entry one value + one column index + a gathered k-wide
// belief row, plus one output write per belief cell. Reported as
// bytes/sec so the f32 bandwidth saving shows up directly next to the
// f64 rows (same items/sec => ~half the bytes/sec).
std::int64_t SpmmSweepBytes(const Graph& graph, std::int64_t k,
                            std::int64_t scalar_bytes) {
  return graph.num_directed_edges() * (scalar_bytes + 4 + k * scalar_bytes) +
         graph.num_nodes() * k * scalar_bytes;
}

// Same model for SpMV: value + column index + one gathered x element per
// entry, one y write per row.
std::int64_t SpmvSweepBytes(const Graph& graph, std::int64_t scalar_bytes) {
  return graph.num_directed_edges() * (2 * scalar_bytes + 4) +
         graph.num_nodes() * scalar_bytes;
}

// Threaded SpMM sweep: args are (Kronecker power, thread count). The
// speedup over the serial kernel at matching power is the ROADMAP hot-path
// acceptance metric; the result is bit-identical at every width.
void BM_SpMMThreads(benchmark::State& state) {
  const Graph& graph = GraphForPower(static_cast<int>(state.range(0)));
  const exec::ExecContext& ctx =
      ContextForThreads(static_cast<int>(state.range(1)));
  const SeededBeliefs seeded =
      SeedPaperBeliefs(graph.num_nodes(), 3,
                       graph.num_nodes() / 20 + 1, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph.adjacency().MultiplyDense(seeded.residuals, ctx));
  }
  state.SetItemsProcessed(state.iterations() * graph.num_directed_edges());
  state.SetBytesProcessed(state.iterations() * SpmmSweepBytes(graph, 3, 8));
}
BENCHMARK(BM_SpMMThreads)
    ->ArgsProduct({{5, 7, 9}, {1, 2, 4, 8}})
    ->ArgNames({"power", "threads"});

// float32 twin of the threaded SpMM sweep: the same graphs through the
// f32 belief-storage kernels (SpmmRowsT<float> behind MultiplyDenseF32).
// A distinct benchmark name keeps f32 records from ever pairing with f64
// ones in tools/bench_diff.
void BM_SpMMThreadsF32(benchmark::State& state) {
  const Graph& graph = GraphForPower(static_cast<int>(state.range(0)));
  const exec::ExecContext& ctx =
      ContextForThreads(static_cast<int>(state.range(1)));
  const SeededBeliefs seeded =
      SeedPaperBeliefs(graph.num_nodes(), 3,
                       graph.num_nodes() / 20 + 1, 42);
  const DenseMatrixF32 beliefs = DenseMatrixF32::FromF64(seeded.residuals);
  graph.adjacency().values_f32();  // build the value cache outside timing
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph.adjacency().MultiplyDenseF32(beliefs, ctx));
  }
  state.SetItemsProcessed(state.iterations() * graph.num_directed_edges());
  state.SetBytesProcessed(state.iterations() * SpmmSweepBytes(graph, 3, 4));
}
BENCHMARK(BM_SpMMThreadsF32)
    ->ArgsProduct({{5, 7, 9}, {1, 2, 4, 8}})
    ->ArgNames({"power", "threads"});

// Threaded SpMV sweep (y = A x).
void BM_SpMVThreads(benchmark::State& state) {
  const Graph& graph = GraphForPower(static_cast<int>(state.range(0)));
  const exec::ExecContext& ctx =
      ContextForThreads(static_cast<int>(state.range(1)));
  std::vector<double> x(graph.num_nodes(), 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.adjacency().MultiplyVector(x, ctx));
  }
  state.SetItemsProcessed(state.iterations() * graph.num_directed_edges());
  state.SetBytesProcessed(state.iterations() * SpmvSweepBytes(graph, 8));
}
BENCHMARK(BM_SpMVThreads)
    ->ArgsProduct({{5, 7, 9}, {1, 2, 4, 8}})
    ->ArgNames({"power", "threads"});

// float32 twin of the threaded SpMV sweep (SpmvRowsT<float> behind
// MultiplyVectorF32).
void BM_SpMVThreadsF32(benchmark::State& state) {
  const Graph& graph = GraphForPower(static_cast<int>(state.range(0)));
  const exec::ExecContext& ctx =
      ContextForThreads(static_cast<int>(state.range(1)));
  std::vector<float> x(graph.num_nodes(), 1.0f);
  graph.adjacency().values_f32();  // build the value cache outside timing
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.adjacency().MultiplyVectorF32(x, ctx));
  }
  state.SetItemsProcessed(state.iterations() * graph.num_directed_edges());
  state.SetBytesProcessed(state.iterations() * SpmvSweepBytes(graph, 4));
}
BENCHMARK(BM_SpMVThreadsF32)
    ->ArgsProduct({{5, 7, 9}, {1, 2, 4, 8}})
    ->ArgNames({"power", "threads"});

// Threaded transpose SpMV sweep (y = A^T x, per-block accumulators).
void BM_TransposeSpMVThreads(benchmark::State& state) {
  const Graph& graph = GraphForPower(static_cast<int>(state.range(0)));
  const exec::ExecContext& ctx =
      ContextForThreads(static_cast<int>(state.range(1)));
  std::vector<double> x(graph.num_nodes(), 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph.adjacency().TransposeMultiplyVector(x, ctx));
  }
  state.SetItemsProcessed(state.iterations() * graph.num_directed_edges());
}
BENCHMARK(BM_TransposeSpMVThreads)
    ->ArgsProduct({{5, 7, 9}, {1, 2, 4, 8}})
    ->ArgNames({"power", "threads"});

void BM_LinBpSweep(benchmark::State& state) {
  const Graph& graph = GraphForPower(static_cast<int>(state.range(0)));
  const CouplingMatrix coupling = KroneckerExperimentCoupling();
  const DenseMatrix hhat = coupling.ScaledResidual(0.0005);
  const DenseMatrix hhat2 = hhat.Multiply(hhat);
  const SeededBeliefs seeded =
      SeedPaperBeliefs(graph.num_nodes(), 3,
                       graph.num_nodes() / 20 + 1, 43);
  DenseMatrix beliefs = seeded.residuals;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        LinBpPropagate(graph.adjacency(), graph.weighted_degrees(), hhat,
                       hhat2, beliefs, /*with_echo=*/true));
  }
  state.SetItemsProcessed(state.iterations() * graph.num_directed_edges());
}
BENCHMARK(BM_LinBpSweep)->Arg(5)->Arg(7)->Arg(9);

void BM_BpFiveSweeps(benchmark::State& state) {
  const Graph& graph = GraphForPower(static_cast<int>(state.range(0)));
  const CouplingMatrix coupling = KroneckerExperimentCoupling();
  const DenseMatrix h = coupling.ScaledStochastic(0.0005);
  const SeededBeliefs seeded =
      SeedPaperBeliefs(graph.num_nodes(), 3,
                       graph.num_nodes() / 20 + 1, 44);
  const DenseMatrix priors = ResidualToProbability(seeded.residuals);
  BpOptions options;
  options.max_iterations = 5;
  options.tolerance = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunBp(graph, h, priors, options));
  }
  state.SetItemsProcessed(state.iterations() * graph.num_directed_edges() *
                          5);
}
BENCHMARK(BM_BpFiveSweeps)->Arg(5)->Arg(7);

void BM_SbpFullPass(benchmark::State& state) {
  const Graph& graph = GraphForPower(static_cast<int>(state.range(0)));
  const CouplingMatrix coupling = KroneckerExperimentCoupling();
  const SeededBeliefs seeded =
      SeedPaperBeliefs(graph.num_nodes(), 3,
                       graph.num_nodes() / 20 + 1, 45);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunSbp(graph, coupling.residual(),
                                    seeded.residuals,
                                    seeded.explicit_nodes));
  }
  state.SetItemsProcessed(state.iterations() * graph.num_directed_edges());
}
BENCHMARK(BM_SbpFullPass)->Arg(5)->Arg(7)->Arg(9);

void BM_GeodesicBfs(benchmark::State& state) {
  const Graph& graph = GraphForPower(static_cast<int>(state.range(0)));
  const SeededBeliefs seeded =
      SeedPaperBeliefs(graph.num_nodes(), 3,
                       graph.num_nodes() / 20 + 1, 46);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GeodesicNumbers(graph, seeded.explicit_nodes));
  }
  state.SetItemsProcessed(state.iterations() * graph.num_directed_edges());
}
BENCHMARK(BM_GeodesicBfs)->Arg(5)->Arg(7)->Arg(9);

void BM_PowerIterationStep(benchmark::State& state) {
  const Graph& graph = GraphForPower(static_cast<int>(state.range(0)));
  const CouplingMatrix coupling = KroneckerExperimentCoupling();
  const LinBpOperator op(&graph.adjacency(), graph.weighted_degrees(),
                         coupling.ScaledResidual(0.0005),
                         /*with_echo=*/true);
  std::vector<double> x(op.dim(), 1.0);
  std::vector<double> y;
  for (auto _ : state) {
    op.Apply(x, &y);
    benchmark::DoNotOptimize(y);
    std::swap(x, y);
  }
  state.SetItemsProcessed(state.iterations() * graph.num_directed_edges());
}
BENCHMARK(BM_PowerIterationStep)->Arg(5)->Arg(7);

}  // namespace

BENCHMARK_MAIN();
