// Experiment E13 (Fig. 11): the DBLP experiment on the synthetic
// heterogeneous bibliographic graph (4 classes, ~10.4% labeled, homophily
// coupling of Fig. 11a). F1 of LinBP / LinBP* / SBP against BP as ground
// truth across the eps_H sweep. The paper's result: > 0.9 F1 while BP
// converges, with LinBP tracking BP almost exactly; SBP slightly lower
// due to ties.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/bp.h"
#include "src/core/convergence.h"
#include "src/core/coupling.h"
#include "src/core/labeling.h"
#include "src/core/linbp.h"
#include "src/core/sbp.h"
#include "src/graph/beliefs.h"
#include "src/graph/dblp.h"
#include "src/util/table_printer.h"

int main(int argc, char** argv) {
  using namespace linbp;
  const bench::Args args(argc, argv);
  const bench::MetricsDumpGuard metrics_guard(args);

  DblpConfig config;
  if (!args.Has("full")) {
    // Scaled-down default so the sweep finishes in seconds; --full runs the
    // paper-sized graph (~36k nodes, ~300k directed edges).
    config.num_papers = 3000;
    config.num_authors = 3100;
    config.num_terms = 1600;
  }
  const DblpGraph dblp = MakeSyntheticDblp(config);
  const Graph& graph = dblp.graph;
  const std::int64_t n = graph.num_nodes();
  const CouplingMatrix coupling = DblpCoupling();

  std::printf("== Fig. 11: synthetic DBLP (%lld nodes, %lld directed edges, "
              "%zu labeled) ==\n\n",
              static_cast<long long>(n),
              static_cast<long long>(graph.num_directed_edges()),
              dblp.labeled_nodes.size());
  const double exact =
      ExactEpsilonThreshold(graph, coupling, LinBpVariant::kLinBp);
  std::printf("Lemma 8 exact eps threshold: %.3e (paper: ~1.3e-3)\n\n",
              exact);

  DenseMatrix explicit_beliefs(n, 4);
  for (const std::int64_t v : dblp.labeled_nodes) {
    const auto row = ExplicitResidualForClass(4, dblp.node_class[v], 0.1);
    for (int c = 0; c < 4; ++c) explicit_beliefs.At(v, c) = row[c];
  }

  const SbpResult sbp = RunSbp(graph, coupling.residual(), explicit_beliefs,
                               dblp.labeled_nodes);
  const TopBeliefAssignment sbp_top = TopBeliefs(sbp.beliefs);

  TablePrinter table({"eps_H", "LinBP F1", "LinBP* F1", "SBP F1"});
  const std::vector<double> eps_grid = {1e-7, 1e-6, 1e-5, 1e-4, 3e-4,
                                        6e-4, 1e-3, 2e-3};
  for (const double eps : eps_grid) {
    // Ground truth: BP at this eps.
    BpOptions bp_options;
    bp_options.max_iterations = 300;
    bp_options.tolerance = 1e-12;
    const BpResult bp =
        RunBp(graph, coupling.ScaledStochastic(eps),
              ResidualToProbability(explicit_beliefs), bp_options);
    if (!bp.converged) {
      table.AddRow({TablePrinter::Num(eps, 2), "-", "-", "-"});
      continue;
    }
    const TopBeliefAssignment gt =
        TopBeliefs(ProbabilityToResidual(bp.beliefs));

    std::vector<std::string> row = {TablePrinter::Num(eps, 2)};
    for (const LinBpVariant variant :
         {LinBpVariant::kLinBp, LinBpVariant::kLinBpStar}) {
      LinBpOptions options;
      options.variant = variant;
      options.max_iterations = 300;
      options.tolerance = 1e-16;
      const LinBpResult lin = RunLinBp(graph, coupling.ScaledResidual(eps),
                                       explicit_beliefs, options);
      row.push_back(lin.converged
                        ? TablePrinter::Num(
                              CompareAssignments(gt, TopBeliefs(lin.beliefs))
                                  .f1,
                              5)
                        : "-");
    }
    row.push_back(TablePrinter::Num(CompareAssignments(gt, sbp_top).f1, 5));
    table.AddRow(row);
  }
  table.Print();
  std::printf("\n(paper: LinBP/LinBP* F1 ~1.0 while BP converges; SBP above\n"
              "0.95 but below LinBP because of tie-induced extra labels)\n");
  return 0;
}
