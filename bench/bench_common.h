// Shared helpers for the experiment harnesses (one binary per paper
// table/figure; see DESIGN.md section 3 for the full index).

#ifndef LINBP_BENCH_BENCH_COMMON_H_
#define LINBP_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <thread>

#include "src/exec/exec_context.h"
#include "src/graph/beliefs.h"
#include "src/graph/generators.h"
#include "src/graph/graph.h"
#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/timer.h"

namespace linbp {
namespace bench {

/// The paper's graph #index (Fig. 6a): Kronecker power index + 4.
inline Graph PaperGraph(int index) {
  return KroneckerPowerGraph(KroneckerPowerForPaperIndex(index));
}

/// Number of explicit nodes at the paper's 5% rate.
inline std::int64_t FivePercent(std::int64_t n) {
  return std::max<std::int64_t>(1, n * 5 / 100);
}

/// Number of explicit nodes at the paper's 1 permille rate.
inline std::int64_t OnePermille(std::int64_t n) {
  return std::max<std::int64_t>(1, n / 1000);
}

/// The paper's seeding protocol: 5% random nodes, k = 3, grid beliefs.
inline SeededBeliefs PaperSeeds(const Graph& graph, std::uint64_t seed,
                                int extra_digits = 0) {
  return SeedPaperBeliefs(graph.num_nodes(), 3,
                          FivePercent(graph.num_nodes()), seed, extra_digits);
}

/// Wall-clock seconds of one invocation.
inline double TimeSeconds(const std::function<void()>& fn) {
  WallTimer timer;
  fn();
  return timer.Seconds();
}

/// Minimal "--flag=value" parser for the bench binaries.
class Args {
 public:
  Args(int argc, char** argv) : argc_(argc), argv_(argv) {}

  /// Integer flag "--name=V" with a default.
  std::int64_t Int(const char* name, std::int64_t fallback) const {
    const std::string prefix = std::string("--") + name + "=";
    for (int i = 1; i < argc_; ++i) {
      if (std::strncmp(argv_[i], prefix.c_str(), prefix.size()) == 0) {
        return std::atoll(argv_[i] + prefix.size());
      }
    }
    return fallback;
  }

  /// Floating-point flag "--name=V" with a default.
  double Double(const char* name, double fallback) const {
    const std::string prefix = std::string("--") + name + "=";
    for (int i = 1; i < argc_; ++i) {
      if (std::strncmp(argv_[i], prefix.c_str(), prefix.size()) == 0) {
        return std::atof(argv_[i] + prefix.size());
      }
    }
    return fallback;
  }

  /// String flag "--name=V" with a default.
  std::string Str(const char* name, const std::string& fallback) const {
    const std::string prefix = std::string("--") + name + "=";
    for (int i = 1; i < argc_; ++i) {
      if (std::strncmp(argv_[i], prefix.c_str(), prefix.size()) == 0) {
        return std::string(argv_[i] + prefix.size());
      }
    }
    return fallback;
  }

  /// Presence flag "--name".
  bool Has(const char* name) const {
    const std::string flag = std::string("--") + name;
    for (int i = 1; i < argc_; ++i) {
      if (flag == argv_[i]) return true;
    }
    return false;
  }

 private:
  int argc_;
  char** argv_;
};

/// Execution context for a driver from its "--threads=N" flag: N >= 1
/// means exactly N lanes, 0 means all hardware threads, and an absent flag
/// defers to LINBP_THREADS (serial when unset). Drivers sweep thread
/// counts by re-running with different flags; solver results are
/// identical at every width.
inline exec::ExecContext ExecFromArgs(const Args& args) {
  const std::int64_t threads = args.Int("threads", -1);
  return threads >= 0
             ? exec::ExecContext::WithThreads(static_cast<int>(threads))
             : exec::ExecContext::Default();
}

/// Provenance block for BENCH_*.json records (no surrounding braces, so
/// callers splice it next to their own fields): the machine's hardware
/// thread count, the LINBP_THREADS environment override ("" when unset),
/// and the build type. Recorded numbers are only comparable against
/// numbers from the same host shape, and this makes that checkable.
inline std::string HostJsonBlock() {
  const char* env = std::getenv("LINBP_THREADS");
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "\"host\": {\"hardware_threads\": %u, "
                "\"linbp_threads\": \"%s\", \"build\": \"%s\"}",
                std::thread::hardware_concurrency(),
                env != nullptr ? env : "",
#ifdef NDEBUG
                "Release"
#else
                "Debug"
#endif
  );
  return buf;
}

/// Scoped --metrics-out=FILE / --trace-out=FILE support for a bench
/// driver: installs a span tracer for the driver's lifetime and writes
/// the combined metrics + time-series + trace report (and/or the Chrome
/// trace-event file for chrome://tracing / ui.perfetto.dev) on
/// destruction. A driver declares one at the top of main(); without
/// either flag the guard is a no-op.
class MetricsDumpGuard {
 public:
  explicit MetricsDumpGuard(const Args& args)
      : path_(args.Str("metrics-out", "")),
        trace_path_(args.Str("trace-out", "")) {
    if (!path_.empty() || !trace_path_.empty()) {
      obs::SetActiveTracer(&tracer_);
    }
  }
  ~MetricsDumpGuard() {
    if (path_.empty() && trace_path_.empty()) return;
    obs::SetActiveTracer(nullptr);
    if (!path_.empty() &&
        !obs::WriteMetricsReport(path_, obs::Registry::Global(),
                                 &tracer_)) {
      std::fprintf(stderr, "error: failed to write metrics report to %s\n",
                   path_.c_str());
    }
    if (!trace_path_.empty() &&
        !obs::WriteChromeTrace(trace_path_, tracer_)) {
      std::fprintf(stderr, "error: failed to write trace to %s\n",
                   trace_path_.c_str());
    }
  }
  MetricsDumpGuard(const MetricsDumpGuard&) = delete;
  MetricsDumpGuard& operator=(const MetricsDumpGuard&) = delete;

 private:
  std::string path_;
  std::string trace_path_;
  obs::Tracer tracer_;
};

/// "4 sec" / "12.3 ms" style duration rendering.
inline std::string FormatSeconds(double seconds) {
  char buf[64];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.0f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  }
  return buf;
}

}  // namespace bench
}  // namespace linbp

#endif  // LINBP_BENCH_BENCH_COMMON_H_
