// Experiment E6 (Fig. 7c): the combined timing table over the largest
// graphs — BP and LinBP in memory, LinBP / SBP / Delta-SBP on the
// relational engine, plus the paper's ratio columns.

// --check (a CTest regression guard): the table compares the SAME
// computation across engines, so the in-memory LinBP and the relational
// RunLinBpSql must agree — asserts belief parity at 1e-9 after the
// 5-iteration protocol on graph #1.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/bp.h"
#include "src/core/coupling.h"
#include "src/core/linbp.h"
#include "src/graph/beliefs.h"
#include "src/relational/linbp_sql.h"
#include "src/relational/sbp_sql.h"
#include "src/util/table_printer.h"

namespace {

int RunCheck() {
  using namespace linbp;
  const Graph graph = bench::PaperGraph(1);
  const std::int64_t n = graph.num_nodes();
  const CouplingMatrix coupling = KroneckerExperimentCoupling();
  const SeededBeliefs seeded = bench::PaperSeeds(graph, 3001);
  const double eps = 0.0005;
  const int iterations = 5;

  LinBpOptions options;
  options.max_iterations = iterations;
  options.tolerance = 0.0;
  const LinBpResult memory = RunLinBp(graph, coupling.ScaledResidual(eps),
                                      seeded.residuals, options);
  const Table b = RunLinBpSql(
      MakeAdjacencyTable(graph),
      MakeBeliefTable(seeded.residuals, seeded.explicit_nodes),
      MakeCouplingTable(coupling.ScaledResidual(eps)), iterations);
  const double diff =
      memory.beliefs.MaxAbsDiff(BeliefsFromTable(b, n, 3));
  const bool ok = diff <= 1e-9;
  std::printf("fig7c LinBP memory vs SQL engine on graph #1: max abs diff "
              "%.3e (want <= 1e-9)  %s\n",
              diff, ok ? "OK" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace linbp;
  const bench::Args args(argc, argv);
  const bench::MetricsDumpGuard metrics_guard(args);
  if (args.Has("check")) return RunCheck();
  const int min_graph = static_cast<int>(args.Int("min-graph", 2));
  const int max_graph = static_cast<int>(args.Int("max-graph", 5));
  const int iterations = 5;
  const CouplingMatrix coupling = KroneckerExperimentCoupling();
  const double eps = 0.0005;

  std::printf("== Fig. 7c: timing of all methods (memory / relational) ==\n\n");
  TablePrinter table({"#", "BP[mem]", "LinBP[mem]", "LinBP[SQL]", "SBP[SQL]",
                      "dSBP[SQL]", "BP/LinBP", "LinBP/SBP", "SBP/dSBP"});
  for (int index = min_graph; index <= max_graph; ++index) {
    const Graph graph = bench::PaperGraph(index);
    const std::int64_t n = graph.num_nodes();
    const SeededBeliefs seeded = bench::PaperSeeds(graph, 3000 + index);

    BpOptions bp_options;
    bp_options.max_iterations = iterations;
    bp_options.tolerance = 0.0;
    const double bp_mem = bench::TimeSeconds([&] {
      RunBp(graph, coupling.ScaledStochastic(eps),
            ResidualToProbability(seeded.residuals), bp_options);
    });

    LinBpOptions lin_options;
    lin_options.max_iterations = iterations;
    lin_options.tolerance = 0.0;
    const double lin_mem = bench::TimeSeconds([&] {
      RunLinBp(graph, coupling.ScaledResidual(eps), seeded.residuals,
               lin_options);
    });

    const Table a = MakeAdjacencyTable(graph);
    const Table e = MakeBeliefTable(seeded.residuals, seeded.explicit_nodes);
    const double lin_sql = bench::TimeSeconds([&] {
      RunLinBpSql(a, e, MakeCouplingTable(coupling.ScaledResidual(eps)),
                  iterations);
    });

    WallTimer timer;
    SbpSql sbp(a, e, MakeCouplingTable(coupling.residual()));
    const double sbp_sql = timer.Seconds();
    const SeededBeliefs update =
        SeedPaperBeliefs(n, 3, bench::OnePermille(n), 9100 + index);
    const double dsbp_sql = bench::TimeSeconds([&] {
      sbp.AddExplicitBeliefs(
          MakeBeliefTable(update.residuals, update.explicit_nodes));
    });

    table.AddRow({std::to_string(index), bench::FormatSeconds(bp_mem),
                  bench::FormatSeconds(lin_mem),
                  bench::FormatSeconds(lin_sql),
                  bench::FormatSeconds(sbp_sql),
                  bench::FormatSeconds(dsbp_sql),
                  TablePrinter::Num(bp_mem / lin_mem, 3),
                  TablePrinter::Num(lin_sql / sbp_sql, 3),
                  TablePrinter::Num(sbp_sql / dsbp_sql, 3)});
  }
  table.Print();
  std::printf("\n(paper graph #5 row: BP 2 s / LinBP 0.03 s in JAVA; LinBP\n"
              "40 s / SBP 4 s / dSBP 0.5 s on PostgreSQL; ratios 60 / 10 /\n"
              "7.5 — absolute numbers differ, ratios keep their shape)\n");
  return 0;
}
