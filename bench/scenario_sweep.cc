// Scenario sweep: run any registered dataset scenario end-to-end.
//
// For each spec the driver materializes the scenario, runs LinBP (eps_H =
// half the exact Lemma 8 threshold) and SBP, and reports wall-clock times
// plus F1 against the planted ground truth (or, for truthless scenarios
// like the paper's Kronecker family, LinBP-vs-SBP agreement).
//
// Modes:
//   --scenario=SPEC   sweep a single spec instead of the default suite
//   --check           assert the default suite's F1 scores stay within
//                     tolerance of recorded golden values (regression
//                     guardrail, registered as a CTest test). With
//                     --scenario plus --golden=IDX, checks that single
//                     spec against suite entry IDX's goldens instead —
//                     the CI shard round-trip loads a sharded manifest
//                     of a suite scenario and asserts identical quality.
//   --io-bench        compare text edge-list parsing vs binary snapshot
//                     loading vs parallel sharded-snapshot loading on
//                     one scenario and print a JSON record (the source
//                     of BENCH_dataset.json); --shards=N bounds the
//                     shard count (default: max(2, threads))
//   --stream          shard one scenario, run LinBP in memory and
//                     out-of-core (ShardStreamBackend), assert the
//                     beliefs are bit-identical, and print a JSON record
//                     with wall-clock and peak-RSS columns (also lands
//                     in BENCH_dataset.json).
//                     --compress=none|f64|f32 picks the shard payload
//                     encoding (v1 raw, v2 delta+varint, v2 + f32
//                     values); --cache-budget=BYTES enables the decoded-
//                     block LRU cache for the streamed solve. The record
//                     carries both as identity fields plus the solve's
//                     stream bytes per sweep and cache hit rate.
//   --parity          run every suite spec (or --scenario=SPEC) with
//                     float64 AND float32 belief storage and assert the
//                     fp32 run stays faithful: label flips on at most
//                     0.5% of nodes and a final residual delta at the
//                     fp32 noise floor. Registered as a CTest test at 1
//                     and 4 threads (the precision-seam guardrail).
//   --precision=P     belief-storage precision for the sweep / stream
//                     modes: f64 (default) or f32
//   --threads=N       kernel thread count (0 = all hardware threads)

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/convergence.h"
#include "src/core/labeling.h"
#include "src/core/linbp.h"
#include "src/core/sbp.h"
#include "src/dataset/registry.h"
#include "src/dataset/shard.h"
#include "src/dataset/snapshot.h"
#include "src/engine/shard_stream_backend.h"
#include "src/graph/io.h"
#include "src/util/mem_info.h"
#include "src/util/table_printer.h"

namespace {

using namespace linbp;

// The default sweep covers every built-in workload at bench-friendly
// sizes; --check asserts on exactly this suite.
const std::vector<std::string>& DefaultSuite() {
  static const std::vector<std::string> suite = {
      "sbm:n=4000,k=4,deg=8,mode=homophily,seed=3",
      // k = 2 keeps heterophily informative: with more classes a
      // cross-class edge only says "one of the k-1 others".
      "sbm:n=4000,k=2,deg=8,mode=heterophily,seed=3",
      "rmat:scale=12,ef=8,k=3,seed=3",
      "fraud:users=1200,products=600,seed=3",
      "dblp:papers=800,authors=900,terms=400,seed=3",
      "kronecker:g=3,seed=3",
  };
  return suite;
}

struct SweepResult {
  std::string spec;
  double build_seconds = 0.0;
  double linbp_seconds = 0.0;
  double sbp_seconds = 0.0;
  int linbp_iterations = 0;
  // F1 vs ground truth (or -1 when the scenario has none).
  double linbp_f1 = -1.0;
  double sbp_f1 = -1.0;
  // F1 agreement between the two methods over all nodes.
  double agreement_f1 = 0.0;
  std::int64_t nodes = 0;
  std::int64_t edges = 0;
};

TopBeliefAssignment GroundTruthAssignment(
    const dataset::Scenario& scenario, std::vector<std::int64_t>* known) {
  TopBeliefAssignment truth;
  truth.classes.resize(scenario.graph.num_nodes());
  for (std::int64_t v = 0; v < scenario.graph.num_nodes(); ++v) {
    if (scenario.ground_truth[v] >= 0) {
      truth.classes[v].push_back(scenario.ground_truth[v]);
      known->push_back(v);
    }
  }
  return truth;
}

bool RunOne(const std::string& spec, const exec::ExecContext& ctx,
            Precision precision, SweepResult* result) {
  result->spec = spec;
  std::string error;
  dataset::Scenario scenario;
  result->build_seconds = bench::TimeSeconds([&] {
    auto built = dataset::MakeScenario(spec, &error, ctx);
    if (built.has_value()) scenario = std::move(*built);
  });
  if (scenario.k == 0) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return false;
  }
  result->nodes = scenario.graph.num_nodes();
  result->edges = scenario.graph.num_undirected_edges();

  const CouplingMatrix coupling = scenario.Coupling();
  const double threshold =
      ExactEpsilonThreshold(scenario.graph, coupling, LinBpVariant::kLinBp);
  const double eps = std::isfinite(threshold) ? 0.5 * threshold : 1.0;

  LinBpResult linbp;
  LinBpOptions options;
  options.max_iterations = 1000;
  options.exec = ctx;
  options.precision = precision;
  result->linbp_seconds = bench::TimeSeconds([&] {
    linbp = RunLinBp(scenario.graph, coupling.ScaledResidual(eps),
                     scenario.explicit_residuals, options);
  });
  result->linbp_iterations = linbp.iterations;
  if (linbp.diverged) {
    std::fprintf(stderr, "error: LinBP diverged on %s\n", spec.c_str());
    return false;
  }

  SbpResult sbp;
  result->sbp_seconds = bench::TimeSeconds([&] {
    sbp = RunSbp(scenario.graph, coupling.residual(),
                 scenario.explicit_residuals, scenario.explicit_nodes, ctx);
  });

  const TopBeliefAssignment linbp_top = TopBeliefs(linbp.beliefs);
  const TopBeliefAssignment sbp_top = TopBeliefs(sbp.beliefs);
  result->agreement_f1 = CompareAssignments(linbp_top, sbp_top).f1;
  if (scenario.HasGroundTruth()) {
    std::vector<std::int64_t> known;
    const TopBeliefAssignment truth = GroundTruthAssignment(scenario, &known);
    result->linbp_f1 = CompareAssignments(truth, linbp_top, known).f1;
    result->sbp_f1 = CompareAssignments(truth, sbp_top, known).f1;
  }
  return true;
}

int RunSweep(const std::vector<std::string>& specs,
             const exec::ExecContext& ctx, Precision precision) {
  TablePrinter table({"scenario", "n", "e", "build", "LinBP", "iters",
                      "SBP", "F1 LinBP", "F1 SBP", "agree"});
  for (const std::string& spec : specs) {
    SweepResult r;
    if (!RunOne(spec, ctx, precision, &r)) return 1;
    auto f1 = [](double value) {
      return value < 0.0 ? std::string("-") : TablePrinter::Num(value, 4);
    };
    table.AddRow({r.spec, TablePrinter::Int(r.nodes),
                  TablePrinter::Int(r.edges),
                  bench::FormatSeconds(r.build_seconds),
                  bench::FormatSeconds(r.linbp_seconds),
                  TablePrinter::Int(r.linbp_iterations),
                  bench::FormatSeconds(r.sbp_seconds), f1(r.linbp_f1),
                  f1(r.sbp_f1), TablePrinter::Num(r.agreement_f1, 4)});
  }
  table.Print();
  return 0;
}

// Golden F1 values for the default suite, recorded from a serial run of
// this driver (deterministic: every scenario is seeded and the kernels
// are bit-identical across thread counts). The tolerance absorbs
// cross-compiler rounding that could flip near-tie labels.
struct Golden {
  double linbp_f1;
  double sbp_f1;
};
constexpr double kF1Tolerance = 0.02;

// `spec_override` + `golden_index` check one spec against a suite
// entry's goldens (e.g. a sharded snapshot of that suite scenario, which
// must reproduce its quality exactly); empty override checks the whole
// default suite.
int RunCheck(const exec::ExecContext& ctx, const std::string& spec_override,
             std::int64_t golden_index) {
  const std::vector<Golden> goldens = {
      {0.9047, 0.8449},  // sbm homophily
      {0.9719, 0.9527},  // sbm heterophily (k = 2)
      {0.8387, 0.8213},  // rmat
      {0.9478, 0.9420},  // fraud
      {0.7306, 0.7227},  // dblp
      {-1.0, -1.0},      // kronecker (no ground truth; agreement only)
  };
  std::vector<std::string> suite = DefaultSuite();
  std::vector<std::size_t> indices(suite.size());
  for (std::size_t i = 0; i < suite.size(); ++i) indices[i] = i;
  if (!spec_override.empty()) {
    if (golden_index < 0 ||
        golden_index >= static_cast<std::int64_t>(goldens.size())) {
      std::fprintf(stderr,
                   "error: --golden must name a suite index in [0, %zu)\n",
                   goldens.size());
      return 1;
    }
    suite = {spec_override};
    indices = {static_cast<std::size_t>(golden_index)};
  }
  int failures = 0;
  for (std::size_t i = 0; i < suite.size(); ++i) {
    SweepResult r;
    // Goldens were recorded at f64; --check always runs f64.
    if (!RunOne(suite[i], ctx, Precision::kF64, &r)) return 1;
    auto check = [&](const char* what, double got, double want) {
      if (want < 0.0) return;  // no golden for truthless scenarios
      const bool ok = std::abs(got - want) <= kF1Tolerance;
      std::printf("%-6s %-50s got %.4f want %.4f +/- %.2f  %s\n", what,
                  r.spec.c_str(), got, want, kF1Tolerance,
                  ok ? "OK" : "FAIL");
      if (!ok) ++failures;
    };
    check("linbp", r.linbp_f1, goldens[indices[i]].linbp_f1);
    check("sbp", r.sbp_f1, goldens[indices[i]].sbp_f1);
  }
  if (failures > 0) {
    std::printf("%d golden check(s) FAILED\n", failures);
    return 1;
  }
  std::printf("all golden checks passed\n");
  return 0;
}

// --parity: the precision-seam quality guardrail. Solves every spec
// twice — float64 and float32 belief storage, identical options
// otherwise — and asserts the fp32 run stays faithful to fp64:
//   * both runs finish without divergence or failure,
//   * the top-1 labels differ on at most 0.5% of nodes (fp32 rounding
//     may legitimately flip near-tie nodes, never well-separated ones),
//   * the fp32 final residual delta sits at the float32 noise floor
//     (<= 1e-5; the fp64 tolerance of 1e-12 is below float resolution,
//     so the fp32 run is expected to stall there rather than meet it).
int RunParity(const std::vector<std::string>& specs,
              const exec::ExecContext& ctx) {
  constexpr double kMaxFlipFraction = 0.005;
  constexpr double kF32DeltaFloor = 1e-5;
  int failures = 0;
  for (const std::string& spec : specs) {
    std::string error;
    auto scenario = dataset::MakeScenario(spec, &error, ctx);
    if (!scenario.has_value()) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    const CouplingMatrix coupling = scenario->Coupling();
    const double threshold = ExactEpsilonThreshold(scenario->graph, coupling,
                                                   LinBpVariant::kLinBp);
    const double eps = std::isfinite(threshold) ? 0.5 * threshold : 1.0;
    LinBpOptions options;
    options.max_iterations = 1000;
    options.exec = ctx;
    const LinBpResult f64 =
        RunLinBp(scenario->graph, coupling.ScaledResidual(eps),
                 scenario->explicit_residuals, options);
    options.precision = Precision::kF32;
    const LinBpResult f32 =
        RunLinBp(scenario->graph, coupling.ScaledResidual(eps),
                 scenario->explicit_residuals, options);
    if (f64.diverged || f64.failed || f32.diverged || f32.failed) {
      std::printf("parity %-50s solver FAILED (f64 %s, f32 %s)\n",
                  spec.c_str(), f64.failed ? "failed" : "ok",
                  f32.failed ? "failed" : "ok");
      ++failures;
      continue;
    }
    const TopBeliefAssignment top64 = TopBeliefs(f64.beliefs);
    const TopBeliefAssignment top32 = TopBeliefs(f32.beliefs);
    const std::int64_t n = scenario->graph.num_nodes();
    std::int64_t flips = 0;
    for (std::int64_t v = 0; v < n; ++v) {
      if (top64.classes[v] != top32.classes[v]) ++flips;
    }
    const double flip_fraction =
        n > 0 ? static_cast<double>(flips) / static_cast<double>(n) : 0.0;
    const bool flips_ok = flip_fraction <= kMaxFlipFraction;
    const bool delta_ok = f32.last_delta <= kF32DeltaFloor;
    std::printf("parity %-50s flips %lld/%lld (%.4f%%, bound 0.5%%)  "
                "f32 delta %.3e (floor %.0e)  %s\n",
                spec.c_str(), static_cast<long long>(flips),
                static_cast<long long>(n), 100.0 * flip_fraction,
                f32.last_delta, kF32DeltaFloor,
                (flips_ok && delta_ok) ? "OK" : "FAIL");
    if (!flips_ok || !delta_ok) ++failures;
  }
  if (failures > 0) {
    std::printf("%d precision parity check(s) FAILED\n", failures);
    return 1;
  }
  std::printf("all precision parity checks passed\n");
  return 0;
}

int RunIoBench(const std::string& spec, const exec::ExecContext& ctx,
               int reps, std::int64_t shards) {
  std::string error;
  auto scenario = dataset::MakeScenario(spec, &error, ctx);
  if (!scenario.has_value()) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  const std::string edges_path = "/tmp/linbp_iobench_edges.txt";
  const std::string beliefs_path = "/tmp/linbp_iobench_beliefs.txt";
  const std::string snapshot_path = "/tmp/linbp_iobench.lbps";
  const std::string shards_dir = "/tmp/linbp_iobench_shards";
  if (shards <= 0) shards = std::max(2, ctx.threads());
  const auto sharded =
      dataset::ShardSnapshot(*scenario, shards, shards_dir, &error);
  if (!WriteEdgeList(scenario->graph, edges_path) ||
      !WriteBeliefs(scenario->explicit_residuals, scenario->explicit_nodes,
                    beliefs_path) ||
      !dataset::SaveSnapshot(*scenario, snapshot_path, &error) ||
      !sharded.has_value()) {
    std::fprintf(stderr, "error: cannot write bench inputs (%s)\n",
                 error.c_str());
    return 1;
  }

  double text_seconds = 1e100;
  double snap_seconds = 1e100;
  double shard_seconds = 1e100;
  for (int rep = 0; rep < reps; ++rep) {
    text_seconds = std::min(text_seconds, bench::TimeSeconds([&] {
      auto graph = ReadEdgeList(edges_path, &error);
      if (!graph.has_value()) std::abort();
      auto beliefs = ReadBeliefs(beliefs_path, graph->num_nodes(),
                                 scenario->k, &error);
      if (!beliefs.has_value()) std::abort();
    }));
    snap_seconds = std::min(snap_seconds, bench::TimeSeconds([&] {
      auto loaded = dataset::LoadSnapshot(snapshot_path, &error, ctx);
      if (!loaded.has_value()) std::abort();
    }));
    shard_seconds = std::min(shard_seconds, bench::TimeSeconds([&] {
      auto loaded =
          dataset::LoadShardedSnapshot(sharded->manifest_path, &error, ctx);
      if (!loaded.has_value()) std::abort();
    }));
  }
  std::printf(
      "{\n"
      "  \"bench\": \"dataset_snapshot_load\",\n"
      "  \"scenario\": \"%s\",\n"
      "  \"nodes\": %lld,\n"
      "  \"undirected_edges\": %lld,\n"
      "  \"threads\": %d,\n"
      "  \"reps\": %d,\n"
      "  \"text_parse_seconds\": %.6f,\n"
      "  \"snapshot_load_seconds\": %.6f,\n"
      "  \"speedup\": %.2f,\n"
      "  \"num_shards\": %lld,\n"
      "  \"sharded_load_seconds\": %.6f,\n"
      "  \"sharded_vs_monolithic\": %.2f,\n"
      "  \"peak_rss_bytes\": %lld,\n"
      "  %s\n"
      "}\n",
      spec.c_str(), static_cast<long long>(scenario->graph.num_nodes()),
      static_cast<long long>(scenario->graph.num_undirected_edges()),
      ctx.threads(), reps, text_seconds, snap_seconds,
      text_seconds / snap_seconds,
      static_cast<long long>(sharded->num_shards), shard_seconds,
      snap_seconds / shard_seconds,
      static_cast<long long>(util::PeakRssBytes()),
      bench::HostJsonBlock().c_str());
  return 0;
}

// --stream: the out-of-core proof bench. Runs the same LinBP solve twice
// — resident CSR vs streamed shards — asserts bit-identity, and reports
// wall-clock + peak-RSS + peak streamed-CSR residency. The in-memory
// solve runs FIRST so its peak RSS (full CSR + solver state) is what the
// process-wide VmHWM records; the streamed residency column is the
// reader's exact byte counter, immune to that ordering.
int RunStreamBench(const std::string& spec, const exec::ExecContext& ctx,
                   std::int64_t shards, int iterations, Precision precision,
                   const std::string& compress,
                   std::int64_t cache_budget) {
  std::string error;
  auto scenario = dataset::MakeScenario(spec, &error, ctx);
  if (!scenario.has_value()) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  const std::string shards_dir = "/tmp/linbp_streambench_shards";
  if (shards <= 0) shards = std::max<std::int64_t>(4, ctx.threads());
  dataset::ShardCompression compression = dataset::ShardCompression::kNone;
  const char* compression_name = "none";
  if (compress == "f64") {
    compression = dataset::ShardCompression::kF64;
    compression_name = "varint-f64";
  } else if (compress == "f32") {
    compression = dataset::ShardCompression::kF32;
    compression_name = "varint-f32";
  } else if (compress != "none") {
    std::fprintf(stderr, "error: --compress must be none, f64, or f32\n");
    return 1;
  }
  const auto sharded = dataset::ShardSnapshot(*scenario, shards, shards_dir,
                                              &error, compression);
  if (!sharded.has_value()) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  if (compression == dataset::ShardCompression::kF32) {
    // f32 shards narrow the values once at write time; the fair (and
    // bit-identical) in-memory reference is a solve over the same
    // narrowed graph, i.e. the shards loaded back whole.
    scenario = dataset::LoadShardedSnapshot(sharded->manifest_path, &error,
                                            ctx);
    if (!scenario.has_value()) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
  }

  const CouplingMatrix coupling = scenario->Coupling();
  const double threshold =
      ExactEpsilonThreshold(scenario->graph, coupling, LinBpVariant::kLinBp);
  const double eps = std::isfinite(threshold) ? 0.5 * threshold : 1.0;
  LinBpOptions options;
  options.max_iterations = iterations;
  options.tolerance = 0.0;  // fixed-sweep timing protocol
  options.exec = ctx;
  // Bit-identity between the resident and streamed runs holds per
  // precision: the f32 path narrows shard values once per block load and
  // runs the same row-owned kernels, so the assertion below stays exact.
  options.precision = precision;

  LinBpResult in_memory;
  const double memory_seconds = bench::TimeSeconds([&] {
    in_memory = RunLinBp(scenario->graph, coupling.ScaledResidual(eps),
                         scenario->explicit_residuals, options);
  });

  std::optional<linbp::engine::ShardStreamBackend> backend;
  const double open_seconds = bench::TimeSeconds([&] {
    backend = linbp::engine::ShardStreamBackend::Open(sharded->manifest_path,
                                                      &error, ctx,
                                                      cache_budget);
  });
  if (!backend.has_value()) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  // Deltas around the timed solve isolate the sweeps' disk traffic from
  // the derivation pass Open already charged to the same counters.
  const std::int64_t bytes_before = backend->reader().file_bytes_read_total();
  const std::int64_t blocks_before = backend->reader().blocks_read_total();
  LinBpResult streamed;
  const double stream_seconds = bench::TimeSeconds([&] {
    streamed = RunLinBp(*backend, coupling.ScaledResidual(eps),
                        backend->explicit_residuals(), options);
  });
  const std::int64_t solve_bytes_read =
      backend->reader().file_bytes_read_total() - bytes_before;
  const std::int64_t solve_blocks_read =
      backend->reader().blocks_read_total() - blocks_before;
  std::int64_t cache_hits = 0;
  double cache_hit_rate = 0.0;
  if (backend->cache() != nullptr) {
    cache_hits = backend->cache()->hits_total();
    const std::int64_t lookups =
        cache_hits + backend->cache()->misses_total();
    if (lookups > 0) {
      cache_hit_rate = static_cast<double>(cache_hits) /
                       static_cast<double>(lookups);
    }
  }
  if (streamed.failed) {
    std::fprintf(stderr, "error: %s\n", streamed.error.c_str());
    return 1;
  }
  const double max_abs_diff =
      streamed.beliefs.MaxAbsDiff(in_memory.beliefs);
  if (max_abs_diff != 0.0) {
    std::fprintf(stderr,
                 "error: streamed beliefs differ from in-memory "
                 "(max abs diff %.3e)\n",
                 max_abs_diff);
    return 1;
  }

  std::printf(
      "{\n"
      "  \"bench\": \"stream_solve\",\n"
      "  \"scenario\": \"%s\",\n"
      "  \"nodes\": %lld,\n"
      "  \"undirected_edges\": %lld,\n"
      "  \"threads\": %d,\n"
      "  \"iterations\": %d,\n"
      "  \"precision\": \"%s\",\n"
      "  \"compression\": \"%s\",\n"
      "  \"cache_budget\": %lld,\n"
      "  \"num_shards\": %lld,\n"
      "  \"inmemory_solve_seconds\": %.6f,\n"
      "  \"stream_open_seconds\": %.6f,\n"
      "  \"stream_solve_seconds\": %.6f,\n"
      "  \"stream_vs_inmemory\": %.2f,\n"
      "  \"beliefs_bit_identical\": true,\n"
      "  \"solve_bytes_read\": %lld,\n"
      "  \"solve_bytes_per_sweep\": %lld,\n"
      "  \"solve_blocks_read\": %lld,\n"
      "  \"cache_hits\": %lld,\n"
      "  \"cache_hit_rate\": %.4f,\n"
      "  \"full_csr_bytes\": %lld,\n"
      "  \"max_block_csr_bytes\": %lld,\n"
      "  \"peak_stream_resident_csr_bytes\": %lld,\n"
      "  \"peak_rss_bytes\": %lld,\n"
      "  %s\n"
      "}\n",
      spec.c_str(), static_cast<long long>(scenario->graph.num_nodes()),
      static_cast<long long>(scenario->graph.num_undirected_edges()),
      ctx.threads(), iterations, PrecisionName(precision), compression_name,
      static_cast<long long>(cache_budget),
      static_cast<long long>(sharded->num_shards), memory_seconds,
      open_seconds, stream_seconds, stream_seconds / memory_seconds,
      static_cast<long long>(solve_bytes_read),
      static_cast<long long>(iterations > 0 ? solve_bytes_read / iterations
                                            : 0),
      static_cast<long long>(solve_blocks_read),
      static_cast<long long>(cache_hits), cache_hit_rate,
      static_cast<long long>(
          (scenario->graph.num_nodes() + 1) * 8 +
          scenario->graph.num_directed_edges() * 12),
      static_cast<long long>(backend->reader().max_block_csr_bytes()),
      static_cast<long long>(backend->reader().peak_resident_csr_bytes()),
      static_cast<long long>(util::PeakRssBytes()),
      bench::HostJsonBlock().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const bench::MetricsDumpGuard metrics_guard(args);
  const exec::ExecContext ctx = bench::ExecFromArgs(args);
  Precision precision = Precision::kF64;
  if (!ParsePrecision(args.Str("precision", "f64"), &precision)) {
    std::fprintf(stderr, "error: --precision must be f32 or f64\n");
    return 1;
  }
  if (args.Has("check")) {
    return RunCheck(ctx, args.Str("scenario", ""), args.Int("golden", -1));
  }
  if (args.Has("parity")) {
    const std::string spec = args.Str("scenario", "");
    return RunParity(spec.empty() ? DefaultSuite()
                                  : std::vector<std::string>{spec},
                     ctx);
  }
  if (args.Has("io-bench")) {
    return RunIoBench(args.Str("scenario", "sbm:n=200000,k=4,deg=10,seed=5"),
                      ctx, static_cast<int>(args.Int("reps", 3)),
                      args.Int("shards", 0));
  }
  if (args.Has("stream")) {
    return RunStreamBench(
        args.Str("scenario", "sbm:n=200000,k=4,deg=10,seed=5"), ctx,
        args.Int("shards", 0),
        static_cast<int>(args.Int("iterations", 10)), precision,
        args.Str("compress", "none"), args.Int("cache-budget", 0));
  }
  const std::string spec = args.Str("scenario", "");
  std::printf("== scenario sweep (LinBP vs SBP, %s beliefs) ==\n\n",
              PrecisionName(precision));
  const int code = spec.empty() ? RunSweep(DefaultSuite(), ctx, precision)
                                : RunSweep({spec}, ctx, precision);
  if (code == 0) {
    std::printf("\n(F1 columns compare against planted ground truth; "
                "'agree' is LinBP-vs-SBP label agreement)\n");
  }
  return code;
}
