// Experiment E8 (Fig. 7e): Delta-SBP vs recompute-from-scratch on the
// relational engine for a varying fraction of new explicit beliefs. The
// protocol fixes 10% explicit nodes *after* the update and varies which
// fraction of them is new: at x% new, the state starts with (10 - x/10)%
// and receives the remaining x/10 % as a batch. The paper's crossover:
// incremental wins below ~50% new beliefs.

// --check (a CTest regression guard): the crossover curve is only valid
// if every point compares equal computations — asserts dSBP-vs-scratch
// belief parity at 1e-9 for the 40% point of the protocol on graph #2.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/coupling.h"
#include "src/graph/beliefs.h"
#include "src/relational/linbp_sql.h"
#include "src/relational/sbp_sql.h"
#include "src/util/table_printer.h"

namespace {

int RunCheck() {
  using namespace linbp;
  const Graph graph = bench::PaperGraph(2);
  const std::int64_t n = graph.num_nodes();
  const CouplingMatrix coupling = KroneckerExperimentCoupling();
  const Table a = MakeAdjacencyTable(graph);
  const Table h = MakeCouplingTable(coupling.residual());
  const std::int64_t total_explicit = std::max<std::int64_t>(1, n / 10);
  const SeededBeliefs all = SeedPaperBeliefs(n, 3, total_explicit, 5002);
  const std::int64_t num_new = total_explicit * 40 / 100;
  const std::int64_t num_old = total_explicit - num_new;
  const std::vector<std::int64_t> old_nodes(
      all.explicit_nodes.begin(), all.explicit_nodes.begin() + num_old);
  const std::vector<std::int64_t> new_nodes(
      all.explicit_nodes.begin() + num_old, all.explicit_nodes.end());

  SbpSql incremental(a, MakeBeliefTable(all.residuals, old_nodes), h);
  incremental.AddExplicitBeliefs(MakeBeliefTable(all.residuals, new_nodes));
  const SbpSql scratch(
      a, MakeBeliefTable(all.residuals, all.explicit_nodes), h);
  const double diff =
      BeliefsFromTable(incremental.beliefs(), n, 3)
          .MaxAbsDiff(BeliefsFromTable(scratch.beliefs(), n, 3));
  const bool ok = diff <= 1e-9;
  std::printf("fig7e dSBP (40%% new) vs scratch on graph #2: max abs diff "
              "%.3e (want <= 1e-9)  %s\n",
              diff, ok ? "OK" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace linbp;
  const bench::Args args(argc, argv);
  const bench::MetricsDumpGuard metrics_guard(args);
  if (args.Has("check")) return RunCheck();
  const int graph_index = static_cast<int>(args.Int("graph", 4));
  const Graph graph = bench::PaperGraph(graph_index);
  const std::int64_t n = graph.num_nodes();
  const CouplingMatrix coupling = KroneckerExperimentCoupling();
  const Table a = MakeAdjacencyTable(graph);
  const Table h = MakeCouplingTable(coupling.residual());

  // 10% explicit after the update, seeded once so every configuration works
  // with the same final belief set.
  const std::int64_t total_explicit =
      std::max<std::int64_t>(1, n / 10);
  const SeededBeliefs all =
      SeedPaperBeliefs(n, 3, total_explicit, 5000 + graph_index);

  std::printf("== Fig. 7e: dSBP vs SBP recompute, graph #%d "
              "(%lld nodes, 10%% explicit after update) ==\n\n",
              graph_index, static_cast<long long>(n));
  TablePrinter table({"new fraction", "initial expl.", "new expl.",
                      "dSBP", "SBP scratch", "speedup"});
  for (const int percent_new : {10, 20, 40, 50, 60, 80, 100}) {
    const std::int64_t num_new = total_explicit * percent_new / 100;
    const std::int64_t num_old = total_explicit - num_new;
    const std::vector<std::int64_t> old_nodes(
        all.explicit_nodes.begin(), all.explicit_nodes.begin() + num_old);
    const std::vector<std::int64_t> new_nodes(
        all.explicit_nodes.begin() + num_old, all.explicit_nodes.end());

    // Incremental: bootstrap with the old labels, then add the batch.
    SbpSql incremental(a, MakeBeliefTable(all.residuals, old_nodes), h);
    const double delta_seconds = bench::TimeSeconds([&] {
      incremental.AddExplicitBeliefs(
          MakeBeliefTable(all.residuals, new_nodes));
    });

    // From scratch with the full final label set.
    const double scratch_seconds = bench::TimeSeconds([&] {
      SbpSql scratch(a, MakeBeliefTable(all.residuals, all.explicit_nodes),
                     h);
    });

    table.AddRow({std::to_string(percent_new) + "%",
                  TablePrinter::Int(num_old), TablePrinter::Int(num_new),
                  bench::FormatSeconds(delta_seconds),
                  bench::FormatSeconds(scratch_seconds),
                  TablePrinter::Num(scratch_seconds / delta_seconds, 3)});
  }
  table.Print();
  std::printf("\n(paper: incremental updates win below ~50%% new beliefs\n"
              "and approach the scratch cost as the fraction grows)\n");
  return 0;
}
