// Experiment E12 (Fig. 10b): Delta-SBP for edge insertions vs recompute
// from scratch, varying the fraction of new edges. The protocol keeps 10%
// of nodes explicit, holds out x% of the final edges, and either streams
// them through Algorithm 4 or rebuilds the state from scratch. Edge updates
// pay for wave propagation, so the incremental advantage fades much faster
// than for belief updates (the paper's crossover: ~3% new edges).
//
// --check: golden-value guardrail (the fig10b_golden_check CTest test).
// The figure's claim only stands if Delta-SBP computes the SAME beliefs
// as the recompute it is raced against, so the check streams a held-out
// edge fraction through Algorithm 4 and asserts the final belief table
// matches the from-scratch state bit-for-bit within 1e-9 — on a smaller
// graph than the timing run, so it is cheap enough for every CI pass.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/coupling.h"
#include "src/graph/beliefs.h"
#include "src/relational/linbp_sql.h"
#include "src/relational/sbp_sql.h"
#include "src/util/random.h"
#include "src/util/table_printer.h"

int main(int argc, char** argv) {
  using namespace linbp;
  const bench::Args args(argc, argv);
  const bench::MetricsDumpGuard metrics_guard(args);
  const bool check = args.Has("check");
  const int graph_index =
      static_cast<int>(args.Int("graph", check ? 2 : 4));
  const Graph graph = bench::PaperGraph(graph_index);
  const std::int64_t n = graph.num_nodes();
  const CouplingMatrix coupling = KroneckerExperimentCoupling();
  const Table h = MakeCouplingTable(coupling.residual());
  const SeededBeliefs seeded = SeedPaperBeliefs(
      n, 3, std::max<std::int64_t>(1, n / 10), 8000 + graph_index);
  const Table e = MakeBeliefTable(seeded.residuals, seeded.explicit_nodes);

  // Deterministic shuffle so the held-out fraction is a uniform sample of
  // the edges rather than the tail of the generator's enumeration order.
  std::vector<Edge> all_edges = graph.edges();
  {
    Rng rng(31337);
    for (std::size_t i = all_edges.size(); i > 1; --i) {
      std::swap(all_edges[i - 1], all_edges[rng.NextBounded(i)]);
    }
  }
  const auto total = static_cast<std::int64_t>(all_edges.size());

  if (check) {
    int failures = 0;
    for (const int percent : {2, 5}) {
      const std::int64_t num_new = total * percent / 100;
      const std::int64_t num_old = total - num_new;
      const Graph start(n, std::vector<Edge>(all_edges.begin(),
                                             all_edges.begin() + num_old));
      SbpSql incremental(MakeAdjacencyTable(start), e, h);
      Table an({"s", "t", "w"},
               {ColumnType::kInt, ColumnType::kInt, ColumnType::kDouble});
      for (std::int64_t i = num_old; i < total; ++i) {
        an.AppendRow({Value::Int(all_edges[i].u),
                      Value::Int(all_edges[i].v),
                      Value::Double(all_edges[i].weight)});
      }
      incremental.AddEdges(an);
      const SbpSql scratch(MakeAdjacencyTable(graph), e, h);
      const DenseMatrix delta_beliefs =
          BeliefsFromTable(incremental.beliefs(), n, 3);
      const DenseMatrix scratch_beliefs =
          BeliefsFromTable(scratch.beliefs(), n, 3);
      double max_diff = 0.0;
      for (std::int64_t v = 0; v < n; ++v) {
        for (std::int64_t c = 0; c < 3; ++c) {
          max_diff = std::max(max_diff,
                              std::abs(delta_beliefs.At(v, c) -
                                       scratch_beliefs.At(v, c)));
        }
      }
      const bool ok = max_diff <= 1e-9 &&
                      incremental.beliefs().num_rows() ==
                          scratch.beliefs().num_rows() &&
                      incremental.beliefs().num_rows() > 0;
      std::printf("graph #%d, %d%% new edges (%lld): dSBP vs scratch "
                  "max |diff| %.3g (want <= 1e-9), %lld belief rows  %s\n",
                  graph_index, percent, static_cast<long long>(num_new),
                  max_diff,
                  static_cast<long long>(incremental.beliefs().num_rows()),
                  ok ? "OK" : "FAIL");
      if (!ok) ++failures;
    }
    if (failures > 0) {
      std::printf("%d golden check(s) FAILED\n", failures);
      return 1;
    }
    std::printf("all golden checks passed\n");
    return 0;
  }

  std::printf("== Fig. 10b: dSBP(edges) vs SBP recompute, graph #%d "
              "(%lld undirected edges) ==\n\n",
              graph_index, static_cast<long long>(total));
  TablePrinter table({"new edges", "count", "dSBP", "SBP scratch",
                      "speedup"});
  for (const int percent : {1, 2, 3, 5, 8, 10}) {
    const std::int64_t num_new = total * percent / 100;
    const std::int64_t num_old = total - num_new;
    const std::vector<Edge> old_edges(all_edges.begin(),
                                      all_edges.begin() + num_old);
    const Graph start(n, old_edges);

    SbpSql incremental(MakeAdjacencyTable(start), e, h);
    Table an({"s", "t", "w"},
             {ColumnType::kInt, ColumnType::kInt, ColumnType::kDouble});
    for (std::int64_t i = num_old; i < total; ++i) {
      an.AppendRow({Value::Int(all_edges[i].u), Value::Int(all_edges[i].v),
                    Value::Double(all_edges[i].weight)});
    }
    const double delta_seconds =
        bench::TimeSeconds([&] { incremental.AddEdges(an); });

    const double scratch_seconds = bench::TimeSeconds(
        [&] { SbpSql scratch(MakeAdjacencyTable(graph), e, h); });

    table.AddRow({std::to_string(percent) + "%", TablePrinter::Int(num_new),
                  bench::FormatSeconds(delta_seconds),
                  bench::FormatSeconds(scratch_seconds),
                  TablePrinter::Num(scratch_seconds / delta_seconds, 3)});
  }
  table.Print();
  std::printf("\n(paper: edge updates only pay off for small fractions —\n"
              "crossover around ~3%% of the edges — while belief updates\n"
              "stayed profitable up to ~50%%, cf. fig7e)\n");
  return 0;
}
