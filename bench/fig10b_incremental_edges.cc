// Experiment E12 (Fig. 10b): Delta-SBP for edge insertions vs recompute
// from scratch, varying the fraction of new edges. The protocol keeps 10%
// of nodes explicit, holds out x% of the final edges, and either streams
// them through Algorithm 4 or rebuilds the state from scratch. Edge updates
// pay for wave propagation, so the incremental advantage fades much faster
// than for belief updates (the paper's crossover: ~3% new edges).

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/coupling.h"
#include "src/graph/beliefs.h"
#include "src/relational/linbp_sql.h"
#include "src/relational/sbp_sql.h"
#include "src/util/random.h"
#include "src/util/table_printer.h"

int main(int argc, char** argv) {
  using namespace linbp;
  const bench::Args args(argc, argv);
  const int graph_index = static_cast<int>(args.Int("graph", 4));
  const Graph graph = bench::PaperGraph(graph_index);
  const std::int64_t n = graph.num_nodes();
  const CouplingMatrix coupling = KroneckerExperimentCoupling();
  const Table h = MakeCouplingTable(coupling.residual());
  const SeededBeliefs seeded = SeedPaperBeliefs(
      n, 3, std::max<std::int64_t>(1, n / 10), 8000 + graph_index);
  const Table e = MakeBeliefTable(seeded.residuals, seeded.explicit_nodes);

  // Deterministic shuffle so the held-out fraction is a uniform sample of
  // the edges rather than the tail of the generator's enumeration order.
  std::vector<Edge> all_edges = graph.edges();
  {
    Rng rng(31337);
    for (std::size_t i = all_edges.size(); i > 1; --i) {
      std::swap(all_edges[i - 1], all_edges[rng.NextBounded(i)]);
    }
  }
  const auto total = static_cast<std::int64_t>(all_edges.size());

  std::printf("== Fig. 10b: dSBP(edges) vs SBP recompute, graph #%d "
              "(%lld undirected edges) ==\n\n",
              graph_index, static_cast<long long>(total));
  TablePrinter table({"new edges", "count", "dSBP", "SBP scratch",
                      "speedup"});
  for (const int percent : {1, 2, 3, 5, 8, 10}) {
    const std::int64_t num_new = total * percent / 100;
    const std::int64_t num_old = total - num_new;
    const std::vector<Edge> old_edges(all_edges.begin(),
                                      all_edges.begin() + num_old);
    const Graph start(n, old_edges);

    SbpSql incremental(MakeAdjacencyTable(start), e, h);
    Table an({"s", "t", "w"},
             {ColumnType::kInt, ColumnType::kInt, ColumnType::kDouble});
    for (std::int64_t i = num_old; i < total; ++i) {
      an.AppendRow({Value::Int(all_edges[i].u), Value::Int(all_edges[i].v),
                    Value::Double(all_edges[i].weight)});
    }
    const double delta_seconds =
        bench::TimeSeconds([&] { incremental.AddEdges(an); });

    const double scratch_seconds = bench::TimeSeconds(
        [&] { SbpSql scratch(MakeAdjacencyTable(graph), e, h); });

    table.AddRow({std::to_string(percent) + "%", TablePrinter::Int(num_new),
                  bench::FormatSeconds(delta_seconds),
                  bench::FormatSeconds(scratch_seconds),
                  TablePrinter::Num(scratch_seconds / delta_seconds, 3)});
  }
  table.Print();
  std::printf("\n(paper: edge updates only pay off for small fractions —\n"
              "crossover around ~3%% of the edges — while belief updates\n"
              "stayed profitable up to ~50%%, cf. fig7e)\n");
  return 0;
}
