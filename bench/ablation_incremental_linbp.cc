// Ablation: warm-started incremental LinBP (the Sect. 8 future-work item).
//
// After a change to the explicit beliefs, re-solving the linear system from
// the previous solution converges in sweeps ~ log(||change||/tol), while a
// cold start always pays log(||B*||/tol). The harness shows both regimes:
// replacing beliefs with entirely new values (change as large as the
// solution — warm start saves nothing) versus perturbing them by a shrinking
// delta (warm start sweeps fall with log delta).

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/convergence.h"
#include "src/core/coupling.h"
#include "src/core/linbp.h"
#include "src/core/linbp_incremental.h"
#include "src/graph/beliefs.h"
#include "src/util/table_printer.h"

int main(int argc, char** argv) {
  using namespace linbp;
  const bench::Args args(argc, argv);
  const bench::MetricsDumpGuard metrics_guard(args);
  const int graph_index = static_cast<int>(args.Int("graph", 4));
  const Graph graph = bench::PaperGraph(graph_index);
  const std::int64_t n = graph.num_nodes();
  const CouplingMatrix coupling = KroneckerExperimentCoupling();
  const double eps =
      0.8 * ExactEpsilonThreshold(graph, coupling, LinBpVariant::kLinBp);
  const SeededBeliefs seeded = bench::PaperSeeds(graph, 888);

  LinBpOptions options;
  options.max_iterations = 5000;
  options.tolerance = 1e-12;

  WallTimer timer;
  LinBpState state(graph, coupling.ScaledResidual(eps), seeded.residuals,
                   options);
  const double cold_seconds = timer.Seconds();
  std::printf("== Ablation: warm-started incremental LinBP, graph #%d ==\n\n",
              graph_index);
  std::printf("cold start: %d sweeps, %s (eps at 80%% of the exact "
              "threshold)\n\n",
              state.cold_start_iterations(),
              bench::FormatSeconds(cold_seconds).c_str());

  // Perturb 10% of the explicit nodes by a relative delta; delta = 1 is a
  // full replacement.
  const std::int64_t batch =
      std::max<std::int64_t>(1, seeded.explicit_nodes.size() / 10);
  std::vector<std::int64_t> nodes(seeded.explicit_nodes.begin(),
                                  seeded.explicit_nodes.begin() + batch);

  TablePrinter table({"delta", "warm sweeps", "cold sweeps", "warm time",
                      "cold time", "sweep savings"});
  for (const double delta : {1.0, 0.1, 0.01, 0.001, 0.0001}) {
    // new = old + delta * random grid value (rows stay centered).
    const SeededBeliefs noise =
        SeedPaperBeliefs(n, 3, batch, 999 + static_cast<int>(1e5 * delta));
    DenseMatrix rows(batch, 3);
    DenseMatrix combined = seeded.residuals;
    for (std::int64_t i = 0; i < batch; ++i) {
      for (int c = 0; c < 3; ++c) {
        const double value =
            seeded.residuals.At(nodes[i], c) +
            delta * noise.residuals.At(noise.explicit_nodes[i], c);
        rows.At(i, c) = value;
        combined.At(nodes[i], c) = value;
      }
    }
    // Reset the state to the base solution, then apply the perturbation.
    LinBpState warm_state(graph, coupling.ScaledResidual(eps),
                          seeded.residuals, options);
    timer.Reset();
    const int warm_sweeps = warm_state.UpdateExplicitBeliefs(nodes, rows);
    const double warm_seconds = timer.Seconds();

    timer.Reset();
    const LinBpResult cold =
        RunLinBp(graph, coupling.ScaledResidual(eps), combined, options);
    const double cold_update_seconds = timer.Seconds();

    table.AddRow({TablePrinter::Num(delta, 2), std::to_string(warm_sweeps),
                  std::to_string(cold.iterations),
                  bench::FormatSeconds(warm_seconds),
                  bench::FormatSeconds(cold_update_seconds),
                  TablePrinter::Num(100.0 * (1.0 - static_cast<double>(
                                                       warm_sweeps) /
                                                       cold.iterations),
                                    3) +
                      "%"});
  }
  table.Print();
  std::printf("\n(warm-start sweeps shrink with log(delta): refreshing\n"
              "slightly stale beliefs is nearly free, while wholesale\n"
              "replacement costs a cold start — the LINVIEW-style delta\n"
              "maintenance the paper cites would remove that limit)\n");
  return 0;
}
