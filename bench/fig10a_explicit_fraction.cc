// Experiment E11 (Fig. 10a): runtime of LinBP vs SBP on the relational
// engine as the fraction of explicit nodes grows. LinBP gets slightly
// slower (denser belief tables mean larger joins every iteration) while
// SBP gets slightly faster (fewer geodesic levels to traverse).

#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/coupling.h"
#include "src/graph/beliefs.h"
#include "src/relational/linbp_sql.h"
#include "src/relational/sbp_sql.h"
#include "src/util/table_printer.h"

int main(int argc, char** argv) {
  using namespace linbp;
  const bench::Args args(argc, argv);
  const bench::MetricsDumpGuard metrics_guard(args);
  const int graph_index = static_cast<int>(args.Int("graph", 4));
  const int iterations = static_cast<int>(args.Int("iterations", 5));
  const Graph graph = bench::PaperGraph(graph_index);
  const std::int64_t n = graph.num_nodes();
  const CouplingMatrix coupling = KroneckerExperimentCoupling();
  const double eps = 0.0005;
  const Table a = MakeAdjacencyTable(graph);
  const Table h_scaled = MakeCouplingTable(coupling.ScaledResidual(eps));
  const Table h_unscaled = MakeCouplingTable(coupling.residual());

  std::printf("== Fig. 10a: runtime vs fraction of explicit nodes, "
              "graph #%d ==\n\n",
              graph_index);
  TablePrinter table({"explicit", "LinBP(SQL)", "SBP(SQL)"});
  for (const int percent : {5, 10, 20, 40, 60, 80}) {
    const std::int64_t num_explicit =
        std::max<std::int64_t>(1, n * percent / 100);
    const SeededBeliefs seeded =
        SeedPaperBeliefs(n, 3, num_explicit, 7000 + percent);
    const Table e = MakeBeliefTable(seeded.residuals, seeded.explicit_nodes);

    const double linbp_seconds = bench::TimeSeconds(
        [&] { RunLinBpSql(a, e, h_scaled, iterations); });
    const double sbp_seconds =
        bench::TimeSeconds([&] { SbpSql sbp(a, e, h_unscaled); });

    table.AddRow({std::to_string(percent) + "%",
                  bench::FormatSeconds(linbp_seconds),
                  bench::FormatSeconds(sbp_seconds)});
  }
  table.Print();
  std::printf("\n(paper: LinBP drifts slightly up, SBP slightly down as\n"
              "explicit beliefs densify; both effects are minor)\n");
  return 0;
}
