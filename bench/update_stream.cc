// Mixed update-stream replay: warm incremental serving vs cold re-solves.
//
// For every built-in scenario family, GenerateUpdateTrace manufactures an
// interleaved add/delete/reweight/belief trace; the bench replays it
// against a warm LinBpState (the `linbp_cli serve` engine) measuring
// per-update latency by kind and the warm sweep counts, then solves the
// final graph cold for the comparison the figure-10b benches make for
// SBP. One JSON record per scenario feeds BENCH_dataset.json.
//
// --check: parity guardrail (the update_stream_parity_check CTest test).
// The warm numbers only mean anything if replay lands on the same fixed
// point as a from-scratch solve, so the check replays a trace on LinBP
// AND SBP states and asserts the final beliefs match the cold solves on
// the final graph within 1e-9.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/convergence.h"
#include "src/core/coupling.h"
#include "src/core/linbp_incremental.h"
#include "src/core/sbp.h"
#include "src/core/sbp_incremental.h"
#include "src/dataset/registry.h"
#include "src/dataset/update_stream.h"
#include "src/util/table_printer.h"

namespace {

using namespace linbp;

struct TraceProblem {
  dataset::Scenario scenario;
  dataset::UpdateTrace trace;
  Graph start_graph;
  Graph final_graph;
  DenseMatrix final_residuals;
  double eps = 0.0;
};

// Builds the trace and both endpoint graphs, and picks an eps convergent
// on BOTH (half the smaller exact threshold), mirroring `linbp_cli
// trace`.
bool BuildTraceProblem(const std::string& spec, std::int64_t num_ops,
                       std::uint64_t seed, const exec::ExecContext& ctx,
                       TraceProblem* out) {
  std::string error;
  auto scenario = dataset::MakeScenario(spec, &error, ctx);
  if (!scenario.has_value()) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return false;
  }
  out->scenario = std::move(*scenario);
  dataset::UpdateTraceOptions options;
  options.num_ops = num_ops;
  options.seed = seed;
  out->trace = dataset::GenerateUpdateTrace(out->scenario, options);
  const std::int64_t n = out->scenario.graph.num_nodes();
  out->start_graph = Graph(n, out->trace.start_edges);
  std::vector<Edge> final_edges = out->trace.start_edges;
  out->final_residuals = out->scenario.explicit_residuals;
  if (!dataset::ApplyUpdateOpsToProblem(out->trace.ops, n, &final_edges,
                                        &out->final_residuals, &error)) {
    std::fprintf(stderr, "error: generated trace is invalid: %s\n",
                 error.c_str());
    return false;
  }
  out->final_graph = Graph(n, final_edges);
  const CouplingMatrix coupling = out->scenario.Coupling();
  const double threshold = std::min(
      ExactEpsilonThreshold(out->start_graph, coupling, LinBpVariant::kLinBp),
      ExactEpsilonThreshold(out->final_graph, coupling,
                            LinBpVariant::kLinBp));
  out->eps = std::isfinite(threshold) ? 0.5 * threshold : 1.0;
  return true;
}

LinBpOptions TightOptions(const exec::ExecContext& ctx) {
  LinBpOptions options;
  options.max_iterations = 2000;
  options.tolerance = 1e-13;
  options.exec = ctx;
  return options;
}

int RunCheck(const exec::ExecContext& ctx) {
  const std::vector<std::string> suite = {
      "sbm:n=400,k=4,deg=8,mode=homophily,seed=3",
      "sbm:n=400,k=2,deg=8,mode=heterophily,seed=3",
      "rmat:scale=8,ef=6,k=3,seed=3",
      "fraud:users=200,products=100,seed=3",
      "dblp:papers=150,authors=160,terms=80,seed=3",
      "kronecker:g=2,seed=3",
  };
  int failures = 0;
  for (const std::string& spec : suite) {
    TraceProblem problem;
    if (!BuildTraceProblem(spec, /*num_ops=*/40, /*seed=*/11, ctx,
                           &problem)) {
      ++failures;
      continue;
    }
    const CouplingMatrix coupling = problem.scenario.Coupling();
    const DenseMatrix hhat = coupling.ScaledResidual(problem.eps);
    std::string error;

    // LinBP: warm replay vs cold solve of the final problem.
    LinBpState warm(problem.start_graph, hhat,
                    problem.scenario.explicit_residuals,
                    TightOptions(ctx));
    bool replay_ok = true;
    for (const dataset::UpdateOp& op : problem.trace.ops) {
      if (dataset::ApplyUpdateOp(op, &warm, &error) < 0) {
        std::fprintf(stderr, "error: LinBP replay rejected '%s': %s\n",
                     dataset::FormatUpdateOp(op).c_str(), error.c_str());
        replay_ok = false;
        break;
      }
    }
    const LinBpState cold(problem.final_graph, hhat, problem.final_residuals,
                          TightOptions(ctx));
    const double linbp_diff =
        replay_ok ? warm.beliefs().MaxAbsDiff(cold.beliefs()) : 1.0;

    // SBP: warm replay vs from-scratch run on the final graph.
    SbpState sbp = SbpState::FromGraph(
        problem.start_graph, coupling.residual(),
        problem.scenario.explicit_residuals,
        problem.scenario.explicit_nodes, ctx);
    bool sbp_ok = true;
    for (const dataset::UpdateOp& op : problem.trace.ops) {
      if (dataset::ApplyUpdateOp(op, &sbp, &error) < 0) {
        std::fprintf(stderr, "error: SBP replay rejected '%s': %s\n",
                     dataset::FormatUpdateOp(op).c_str(), error.c_str());
        sbp_ok = false;
        break;
      }
    }
    std::vector<std::int64_t> final_explicit;
    for (std::int64_t v = 0; v < problem.final_residuals.rows(); ++v) {
      for (std::int64_t c = 0; c < problem.final_residuals.cols(); ++c) {
        if (problem.final_residuals.At(v, c) != 0.0) {
          final_explicit.push_back(v);
          break;
        }
      }
    }
    const SbpResult sbp_cold =
        RunSbp(problem.final_graph, coupling.residual(),
               problem.final_residuals, final_explicit, ctx);
    const double sbp_diff =
        sbp_ok ? sbp.beliefs().MaxAbsDiff(sbp_cold.beliefs) : 1.0;

    const bool ok =
        replay_ok && sbp_ok && linbp_diff <= 1e-9 && sbp_diff <= 1e-9;
    std::printf("%-46s linbp |diff| %.3g, sbp |diff| %.3g "
                "(want <= 1e-9)  %s\n",
                spec.c_str(), linbp_diff, sbp_diff, ok ? "OK" : "FAIL");
    if (!ok) ++failures;
  }
  if (failures > 0) {
    std::printf("%d parity check(s) FAILED\n", failures);
    return 1;
  }
  std::printf("all parity checks passed\n");
  return 0;
}

int RunBench(const exec::ExecContext& ctx, std::int64_t num_ops,
             std::uint64_t seed) {
  const std::vector<std::string> suite = {
      "sbm:n=4000,k=4,deg=8,mode=homophily,seed=3",
      "sbm:n=4000,k=2,deg=8,mode=heterophily,seed=3",
      "rmat:scale=12,ef=8,k=3,seed=3",
      "fraud:users=1200,products=600,seed=3",
      "dblp:papers=800,authors=900,terms=400,seed=3",
      "kronecker:g=3,seed=3",
  };
  std::printf("== update-stream replay: warm LinBpState vs cold solves "
              "==\n\n");
  TablePrinter table({"scenario", "ops", "warm sweeps", "cold sweeps",
                      "mean update", "cold solve", "speedup"});
  for (const std::string& spec : suite) {
    TraceProblem problem;
    if (!BuildTraceProblem(spec, num_ops, seed, ctx, &problem)) return 1;
    const CouplingMatrix coupling = problem.scenario.Coupling();
    const DenseMatrix hhat = coupling.ScaledResidual(problem.eps);
    std::string error;

    LinBpState warm(problem.start_graph, hhat,
                    problem.scenario.explicit_residuals,
                    TightOptions(ctx));
    std::int64_t kind_count[4] = {0, 0, 0, 0};
    double kind_seconds[4] = {0.0, 0.0, 0.0, 0.0};
    std::int64_t warm_sweeps = 0;
    double replay_seconds = 0.0;
    for (const dataset::UpdateOp& op : problem.trace.ops) {
      int sweeps = 0;
      const double seconds = bench::TimeSeconds(
          [&] { sweeps = dataset::ApplyUpdateOp(op, &warm, &error); });
      if (sweeps < 0) {
        std::fprintf(stderr, "error: replay rejected '%s': %s\n",
                     dataset::FormatUpdateOp(op).c_str(), error.c_str());
        return 1;
      }
      const int kind = static_cast<int>(op.kind);
      ++kind_count[kind];
      kind_seconds[kind] += seconds;
      warm_sweeps += sweeps;
      replay_seconds += seconds;
    }

    int cold_sweeps = 0;
    double cold_seconds = 0.0;
    DenseMatrix cold_beliefs;
    cold_seconds = bench::TimeSeconds([&] {
      LinBpState cold(problem.final_graph, hhat, problem.final_residuals,
                      TightOptions(ctx));
      cold_sweeps = cold.cold_start_iterations();
      cold_beliefs = cold.beliefs();
    });
    const double parity = warm.beliefs().MaxAbsDiff(cold_beliefs);

    const double mean_update =
        replay_seconds / static_cast<double>(problem.trace.ops.size());
    const double per_update_cold = cold_seconds;
    table.AddRow({problem.scenario.name,
                  TablePrinter::Int(
                      static_cast<std::int64_t>(problem.trace.ops.size())),
                  TablePrinter::Int(warm_sweeps),
                  TablePrinter::Int(cold_sweeps),
                  bench::FormatSeconds(mean_update),
                  bench::FormatSeconds(cold_seconds),
                  TablePrinter::Num(per_update_cold / mean_update, 2)});

    std::printf(
        "{\n"
        "  \"bench\": \"update_stream\",\n"
        "  \"scenario\": \"%s\",\n"
        "  \"nodes\": %lld,\n"
        "  \"start_edges\": %lld,\n"
        "  \"final_edges\": %lld,\n"
        "  \"threads\": %d,\n"
        "  \"ops\": %lld,\n"
        "  \"ops_add\": %lld,\n"
        "  \"ops_delete\": %lld,\n"
        "  \"ops_reweight\": %lld,\n"
        "  \"ops_belief\": %lld,\n"
        "  \"warm_total_sweeps\": %lld,\n"
        "  \"cold_solve_sweeps\": %d,\n"
        "  \"mean_update_seconds\": %.6g,\n"
        "  \"mean_add_seconds\": %.6g,\n"
        "  \"mean_delete_seconds\": %.6g,\n"
        "  \"mean_reweight_seconds\": %.6g,\n"
        "  \"mean_belief_seconds\": %.6g,\n"
        "  \"cold_solve_seconds\": %.6g,\n"
        "  \"cold_vs_warm_update\": %.2f,\n"
        "  \"warm_vs_cold_max_abs_diff\": %.3g,\n"
        "  %s\n"
        "}\n",
        problem.scenario.spec.c_str(),
        static_cast<long long>(problem.scenario.graph.num_nodes()),
        static_cast<long long>(problem.start_graph.num_undirected_edges()),
        static_cast<long long>(problem.final_graph.num_undirected_edges()),
        ctx.threads(),
        static_cast<long long>(problem.trace.ops.size()),
        static_cast<long long>(kind_count[0]),
        static_cast<long long>(kind_count[1]),
        static_cast<long long>(kind_count[2]),
        static_cast<long long>(kind_count[3]),
        static_cast<long long>(warm_sweeps), cold_sweeps, mean_update,
        kind_count[0] > 0 ? kind_seconds[0] / kind_count[0] : 0.0,
        kind_count[1] > 0 ? kind_seconds[1] / kind_count[1] : 0.0,
        kind_count[2] > 0 ? kind_seconds[2] / kind_count[2] : 0.0,
        kind_count[3] > 0 ? kind_seconds[3] / kind_count[3] : 0.0,
        cold_seconds, per_update_cold / mean_update, parity,
        bench::HostJsonBlock().c_str());
  }
  table.Print();
  std::printf("\n(per-update latency includes the warm re-solve; 'speedup' "
              "is one cold solve over one mean warm update — the serving "
              "margin)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const bench::MetricsDumpGuard metrics_guard(args);
  const exec::ExecContext ctx = bench::ExecFromArgs(args);
  if (args.Has("check")) return RunCheck(ctx);
  return RunBench(ctx, args.Int("ops", 48), args.Int("seed", 11));
}
