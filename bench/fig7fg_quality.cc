// Experiments E9/E10 (Fig. 7f/7g): label quality across the eps_H sweep.
//  * Fig. 7f: recall and precision of LinBP with BP as ground truth.
//  * Fig. 7g: recall/precision of SBP w.r.t. LinBP, and of LinBP* w.r.t.
//    LinBP (the latter two are equal since both are unique assignments).
// The vertical reference lines of the figures are the Lemma 9 (sufficient)
// and Lemma 8 (exact) thresholds, printed below.

// --check (a CTest regression guard): asserts the figures' quality
// claims at one eps inside the guaranteed-convergence region on
// graph #2 — LinBP must match BP's labels essentially exactly
// (recall = precision = 1 up to tolerance), and SBP~LinBP recall /
// precision must stay at their recorded goldens.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/bp.h"
#include "src/core/convergence.h"
#include "src/core/coupling.h"
#include "src/core/labeling.h"
#include "src/core/linbp.h"
#include "src/core/sbp.h"
#include "src/graph/beliefs.h"
#include "src/util/table_printer.h"

namespace {

int RunCheck() {
  using namespace linbp;
  const Graph graph = bench::PaperGraph(2);
  const CouplingMatrix coupling = KroneckerExperimentCoupling();
  const SeededBeliefs seeded = bench::PaperSeeds(graph, 6002);
  const double eps = 1e-5;  // well inside the Lemma 9 region for graph #2
  int failures = 0;

  const SbpResult sbp = RunSbp(graph, coupling.residual(), seeded.residuals,
                               seeded.explicit_nodes);
  std::vector<std::int64_t> scored;
  for (std::int64_t v = 0; v < graph.num_nodes(); ++v) {
    if (sbp.geodesic[v] != kUnreachable) scored.push_back(v);
  }

  LinBpOptions options;
  options.max_iterations = 500;
  options.tolerance = 1e-16;
  const LinBpResult lin = RunLinBp(graph, coupling.ScaledResidual(eps),
                                   seeded.residuals, options);
  BpOptions bp_options;
  bp_options.max_iterations = 500;
  bp_options.tolerance = 1e-13;
  const BpResult bp = RunBp(graph, coupling.ScaledStochastic(eps),
                            ResidualToProbability(seeded.residuals),
                            bp_options);
  if (!lin.converged || !bp.converged) {
    std::printf("fig7fg check FAILED: LinBP converged=%d BP converged=%d\n",
                lin.converged, bp.converged);
    return 1;
  }
  const TopBeliefAssignment lin_top = TopBeliefs(lin.beliefs);

  auto check = [&failures](const char* what, double got, double want,
                           double tolerance) {
    const bool ok = std::abs(got - want) <= tolerance;
    std::printf("fig7fg %-22s got %.4f want %.4f +/- %.3f  %s\n", what, got,
                want, tolerance, ok ? "OK" : "FAIL");
    if (!ok) ++failures;
  };
  // Fig. 7f claim: inside the guaranteed region LinBP reproduces BP.
  const QualityMetrics vs_bp = CompareAssignments(
      TopBeliefs(ProbabilityToResidual(bp.beliefs)), lin_top, scored);
  check("LinBP~BP recall", vs_bp.recall, 1.0, 0.001);
  check("LinBP~BP precision", vs_bp.precision, 1.0, 0.001);
  // Fig. 7g: SBP w.r.t. LinBP (goldens from a serial run; SBP's exact
  // ties drag precision below recall).
  const QualityMetrics vs_sbp =
      CompareAssignments(lin_top, TopBeliefs(sbp.beliefs), scored);
  check("SBP~LinBP recall", vs_sbp.recall, 1.0, 0.02);
  check("SBP~LinBP precision", vs_sbp.precision, 0.9979, 0.02);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace linbp;
  const bench::Args args(argc, argv);
  const bench::MetricsDumpGuard metrics_guard(args);
  if (args.Has("check")) return RunCheck();
  const int graph_index = static_cast<int>(args.Int("graph", 4));
  const int extra_digits = static_cast<int>(args.Int("extra-digits", 0));
  const Graph graph = bench::PaperGraph(graph_index);
  const CouplingMatrix coupling = KroneckerExperimentCoupling();
  const SeededBeliefs seeded =
      bench::PaperSeeds(graph, 6000 + graph_index, extra_digits);

  const double sufficient =
      SufficientEpsilonBound(graph, coupling, LinBpVariant::kLinBp);
  const double exact =
      ExactEpsilonThreshold(graph, coupling, LinBpVariant::kLinBp);
  std::printf("== Fig. 7f/7g: quality vs eps_H on graph #%d ==\n\n",
              graph_index);
  std::printf("Lemma 9 sufficient eps: %.3e   Lemma 8 exact eps: %.3e\n"
              "(the paper's graph #5 values: 2e-4 and 2.8e-3)\n\n",
              sufficient, exact);

  const SbpResult sbp = RunSbp(graph, coupling.residual(), seeded.residuals,
                               seeded.explicit_nodes);
  const TopBeliefAssignment sbp_top = TopBeliefs(sbp.beliefs);

  // Score only nodes reachable from explicit beliefs: nodes in unlabeled
  // components carry no information, and their "labels" are machine noise
  // around the uniform belief (BP) vs an exact three-way tie (LinBP/SBP).
  std::vector<std::int64_t> scored_nodes;
  for (std::int64_t v = 0; v < graph.num_nodes(); ++v) {
    if (sbp.geodesic[v] != kUnreachable) scored_nodes.push_back(v);
  }
  std::printf("scoring %zu of %lld nodes (reachable from explicit "
              "beliefs)\n\n",
              scored_nodes.size(),
              static_cast<long long>(graph.num_nodes()));

  TablePrinter table({"eps_H", "LinBP~BP r", "LinBP~BP p", "LinBP*~LinBP r=p",
                      "SBP~LinBP r", "SBP~LinBP p"});
  const std::vector<double> eps_grid = {1e-8, 1e-7, 1e-6, 1e-5, 1e-4,
                                        2e-4, 5e-4, 1e-3, 2e-3, 5e-3};
  for (const double eps : eps_grid) {
    LinBpOptions options;
    options.max_iterations = 500;
    options.tolerance = 1e-16;
    const LinBpResult lin = RunLinBp(graph, coupling.ScaledResidual(eps),
                                     seeded.residuals, options);
    std::vector<std::string> row = {TablePrinter::Num(eps, 2)};
    if (!lin.converged) {
      table.AddRow({row[0], "-", "-", "-", "-", "-"});
      continue;
    }
    const TopBeliefAssignment lin_top = TopBeliefs(lin.beliefs);

    // Fig. 7f: LinBP w.r.t. BP.
    std::string r_bp = "-";
    std::string p_bp = "-";
    BpOptions bp_options;
    bp_options.max_iterations = 500;
    bp_options.tolerance = 1e-13;
    const BpResult bp =
        RunBp(graph, coupling.ScaledStochastic(eps),
              ResidualToProbability(seeded.residuals), bp_options);
    if (bp.converged) {
      const QualityMetrics quality = CompareAssignments(
          TopBeliefs(ProbabilityToResidual(bp.beliefs)), lin_top,
          scored_nodes);
      r_bp = TablePrinter::Num(quality.recall, 5);
      p_bp = TablePrinter::Num(quality.precision, 5);
    }

    // Fig. 7g: LinBP* w.r.t. LinBP (unique assignments: r == p).
    options.variant = LinBpVariant::kLinBpStar;
    const LinBpResult star = RunLinBp(graph, coupling.ScaledResidual(eps),
                                      seeded.residuals, options);
    const std::string star_rp =
        star.converged
            ? TablePrinter::Num(
                  CompareAssignments(lin_top, TopBeliefs(star.beliefs),
                                     scored_nodes)
                      .recall,
                  5)
            : "-";

    // Fig. 7g: SBP w.r.t. LinBP.
    const QualityMetrics sbp_quality =
        CompareAssignments(lin_top, sbp_top, scored_nodes);
    table.AddRow({row[0], r_bp, p_bp, star_rp,
                  TablePrinter::Num(sbp_quality.recall, 5),
                  TablePrinter::Num(sbp_quality.precision, 5)});
  }
  table.Print();
  std::printf(
      "\n(paper: LinBP matches BP exactly inside the guaranteed range,\n"
      "accuracy > 99.9%% overall; SBP~LinBP recall ~0.995 / precision\n"
      "~0.978 with SBP's extra tied labels dragging precision below\n"
      "recall; --extra-digits=2 applies the paper's tie-avoidance remedy)\n");
  return 0;
}
