// Ablation: what does the echo-cancellation term buy?
//
// LinBP keeps the -D B Hhat^2 term that compensates for a node's beliefs
// echoing back through its neighbors; LinBP* drops it. This harness
// quantifies the trade-off the paper discusses: LinBP* converges over a
// wider eps_H range (its operator has a smaller spectral radius), while
// LinBP tracks BP slightly more faithfully at larger eps_H, and both cost
// the same per sweep up to the extra rank-k term.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/bp.h"
#include "src/core/convergence.h"
#include "src/core/coupling.h"
#include "src/core/labeling.h"
#include "src/core/linbp.h"
#include "src/core/sbp.h"
#include "src/graph/beliefs.h"
#include "src/util/table_printer.h"

int main(int argc, char** argv) {
  using namespace linbp;
  const bench::Args args(argc, argv);
  const bench::MetricsDumpGuard metrics_guard(args);
  const int graph_index = static_cast<int>(args.Int("graph", 3));
  const Graph graph = bench::PaperGraph(graph_index);
  const CouplingMatrix coupling = KroneckerExperimentCoupling();
  const SeededBeliefs seeded = bench::PaperSeeds(graph, 777);

  const double exact_linbp =
      ExactEpsilonThreshold(graph, coupling, LinBpVariant::kLinBp);
  const double exact_star =
      ExactEpsilonThreshold(graph, coupling, LinBpVariant::kLinBpStar);
  std::printf("== Ablation: echo cancellation, graph #%d ==\n\n",
              graph_index);
  std::printf("exact eps thresholds: LinBP %.4e, LinBP* %.4e "
              "(star region is %.1f%% wider)\n\n",
              exact_linbp, exact_star,
              100.0 * (exact_star / exact_linbp - 1.0));

  // Score only information-bearing nodes (see fig7fg_quality.cc).
  const std::vector<std::int64_t> geodesic =
      GeodesicNumbers(graph, seeded.explicit_nodes);
  std::vector<std::int64_t> scored_nodes;
  for (std::int64_t v = 0; v < graph.num_nodes(); ++v) {
    if (geodesic[v] != kUnreachable) scored_nodes.push_back(v);
  }

  TablePrinter table({"eps/exact", "eps_H", "LinBP F1 vs BP",
                      "LinBP* F1 vs BP", "LinBP sweeps", "LinBP* sweeps"});
  for (const double fraction : {0.05, 0.2, 0.5, 0.8, 0.95}) {
    const double eps = fraction * exact_linbp;
    BpOptions bp_options;
    bp_options.max_iterations = 1000;
    bp_options.tolerance = 1e-13;
    const BpResult bp =
        RunBp(graph, coupling.ScaledStochastic(eps),
              ResidualToProbability(seeded.residuals), bp_options);
    std::vector<std::string> row = {TablePrinter::Num(fraction, 2),
                                    TablePrinter::Num(eps, 3)};
    if (!bp.converged) {
      table.AddRow({row[0], row[1], "- (BP diverged)", "-", "-", "-"});
      continue;
    }
    const TopBeliefAssignment gt =
        TopBeliefs(ProbabilityToResidual(bp.beliefs));
    std::vector<std::string> sweeps;
    for (const LinBpVariant variant :
         {LinBpVariant::kLinBp, LinBpVariant::kLinBpStar}) {
      LinBpOptions options;
      options.variant = variant;
      options.max_iterations = 3000;
      options.tolerance = 1e-13;
      const LinBpResult lin = RunLinBp(graph, coupling.ScaledResidual(eps),
                                       seeded.residuals, options);
      row.push_back(lin.converged
                        ? TablePrinter::Num(
                              CompareAssignments(gt, TopBeliefs(lin.beliefs),
                                                 scored_nodes)
                                  .f1,
                              5)
                        : "-");
      sweeps.push_back(lin.converged ? std::to_string(lin.iterations) : "-");
    }
    row.insert(row.end(), sweeps.begin(), sweeps.end());
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "\n(near the threshold LinBP needs more sweeps — its operator's\n"
      "spectral radius is closer to 1 at the same eps — while accuracy\n"
      "differences against BP stay within ties; the echo term mainly\n"
      "matters for the convergence *criterion*, Eq. 16 vs Eq. 17)\n");
  return 0;
}
