// Experiment E1/E2 (Fig. 4a-d, Example 20): on the 8-node torus with the
// Fig. 1c coupling, sweep eps_H and report the standardized beliefs of node
// v4 under BP, LinBP and LinBP*, their standard deviations, and the
// convergence thresholds. As eps_H -> 0 every method approaches the SBP
// limit [-0.069, 1.258, -1.189]; each stops converging at its predicted
// threshold (rho lines in the figure).
//
// --check: golden-value guardrail (registered as the fig4_golden_check
// CTest test). Asserts the spectral radii, the exact and sufficient
// convergence thresholds, and the SBP limit of v4 against the values the
// paper reports (Example 20 / Fig. 4), which this driver reproduced at
// the time the goldens were recorded.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/bp.h"
#include "src/core/convergence.h"
#include "src/core/coupling.h"
#include "src/core/labeling.h"
#include "src/core/linbp.h"
#include "src/core/sbp.h"
#include "src/graph/beliefs.h"
#include "src/util/table_printer.h"

int main(int argc, char** argv) {
  using namespace linbp;
  const bench::Args args(argc, argv);
  const bench::MetricsDumpGuard metrics_guard(args);

  const Graph graph = TorusExampleGraph();
  const CouplingMatrix coupling = AuctionCoupling();
  DenseMatrix explicit_beliefs(8, 3);
  const double seeds[3][3] = {{2, -1, -1}, {-1, 2, -1}, {-1, -1, 2}};
  for (int v = 0; v < 3; ++v) {
    for (int c = 0; c < 3; ++c) explicit_beliefs.At(v, c) = seeds[v][c];
  }

  if (args.Has("check")) {
    const ConvergenceReport report = AnalyzeConvergence(graph, coupling);
    const SbpResult sbp =
        RunSbp(graph, coupling.residual(), explicit_beliefs, {0, 1, 2});
    const std::vector<double> sbp_std =
        Standardize(BeliefRow(sbp.beliefs, 3));
    // Recorded from this driver; agrees with the paper's Example 20 /
    // Fig. 4 to its printed precision. The tolerance absorbs
    // cross-platform eigensolver and libm rounding only.
    struct Golden {
      const char* what;
      double got;
      double want;
      double tolerance;
    };
    const Golden goldens[] = {
        {"rho(A)", report.adjacency_spectral_radius, 2.4142, 1e-3},
        {"rho(Hhat_o)", report.coupling_spectral_radius, 0.6292, 1e-3},
        {"exact eps LinBP", report.exact_epsilon_linbp, 0.4877, 1e-3},
        {"exact eps LinBP*", report.exact_epsilon_linbp_star, 0.6584, 1e-3},
        {"norm bound LinBP", report.sufficient_epsilon_linbp, 0.3597, 1e-3},
        {"norm bound LinBP*", report.sufficient_epsilon_linbp_star, 0.4545,
         1e-3},
        {"SBP limit c1", sbp_std[0], -0.069, 2e-3},
        {"SBP limit c2", sbp_std[1], 1.258, 2e-3},
        {"SBP limit c3", sbp_std[2], -1.189, 2e-3},
    };
    int failures = 0;
    for (const Golden& g : goldens) {
      const bool ok = std::abs(g.got - g.want) <= g.tolerance;
      std::printf("%-18s got %9.4f want %9.4f +/- %.0e  %s\n", g.what,
                  g.got, g.want, g.tolerance, ok ? "OK" : "FAIL");
      if (!ok) ++failures;
    }
    if (failures > 0) {
      std::printf("%d golden check(s) FAILED\n", failures);
      return 1;
    }
    std::printf("all golden checks passed\n");
    return 0;
  }

  std::printf("== Fig. 4 / Example 20: standardized beliefs of v4 ==\n\n");
  const ConvergenceReport report = AnalyzeConvergence(graph, coupling);
  std::printf("rho(A) = %.4f (paper: 2.414), rho(Hhat_o) = %.4f "
              "(paper: 0.629)\n",
              report.adjacency_spectral_radius,
              report.coupling_spectral_radius);
  std::printf("exact thresholds  (rho lines): LinBP %.4f (paper ~0.488), "
              "LinBP* %.4f (paper ~0.658)\n",
              report.exact_epsilon_linbp, report.exact_epsilon_linbp_star);
  std::printf("norm bounds (|| lines, Lemma 9): LinBP %.4f (paper ~0.360), "
              "LinBP* %.4f (paper ~0.455)\n\n",
              report.sufficient_epsilon_linbp,
              report.sufficient_epsilon_linbp_star);

  const SbpResult sbp =
      RunSbp(graph, coupling.residual(), explicit_beliefs, {0, 1, 2});
  const std::vector<double> sbp_std =
      Standardize(BeliefRow(sbp.beliefs, 3));
  std::printf("SBP limit (dashed lines): [%.3f, %.3f, %.3f], "
              "sigma = eps^3 * %.4f\n\n",
              sbp_std[0], sbp_std[1], sbp_std[2],
              StandardDeviation(BeliefRow(sbp.beliefs, 3)));

  TablePrinter table({"eps_H", "BP c1", "BP c2", "BP c3", "LinBP c1",
                      "LinBP c2", "LinBP c3", "LinBP* c1", "LinBP* c2",
                      "LinBP* c3", "sig(BP)", "sig(LinBP)", "sig(LinBP*)"});
  const std::vector<double> eps_grid = {0.01, 0.02, 0.05, 0.1, 0.2, 0.3,
                                        0.4,  0.45, 0.5,  0.6, 0.7, 0.8, 1.0};
  for (const double eps : eps_grid) {
    std::vector<std::string> row = {TablePrinter::Num(eps, 3)};
    // BP: priors must be valid probabilities; scale the residuals down the
    // same way for every eps (standardization removes the scale again).
    std::vector<std::string> bp_cells(3, "-");
    std::string bp_sigma = "-";
    if (eps < coupling.MaxStochasticScale()) {
      BpOptions options;
      options.max_iterations = 2000;
      options.tolerance = 1e-12;
      const BpResult bp =
          RunBp(graph, coupling.ScaledStochastic(eps),
                ResidualToProbability(explicit_beliefs.Scale(0.1)), options);
      if (bp.converged) {
        const std::vector<double> residual =
            BeliefRow(ProbabilityToResidual(bp.beliefs), 3);
        const std::vector<double> standardized = Standardize(residual);
        for (int c = 0; c < 3; ++c) {
          bp_cells[c] = TablePrinter::Num(standardized[c], 4);
        }
        bp_sigma = TablePrinter::Num(StandardDeviation(residual), 3);
      }
    }
    row.insert(row.end(), bp_cells.begin(), bp_cells.end());

    std::vector<std::string> lin_cells;
    std::vector<std::string> sigma_cells = {bp_sigma};
    for (const LinBpVariant variant :
         {LinBpVariant::kLinBp, LinBpVariant::kLinBpStar}) {
      LinBpOptions options;
      options.variant = variant;
      options.max_iterations = 3000;
      options.tolerance = 1e-14;
      const LinBpResult lin = RunLinBp(
          graph, coupling.ScaledResidual(eps), explicit_beliefs, options);
      if (lin.converged) {
        const std::vector<double> residual = BeliefRow(lin.beliefs, 3);
        const std::vector<double> standardized = Standardize(residual);
        for (int c = 0; c < 3; ++c) {
          lin_cells.push_back(TablePrinter::Num(standardized[c], 4));
        }
        sigma_cells.push_back(
            TablePrinter::Num(StandardDeviation(residual), 3));
      } else {
        for (int c = 0; c < 3; ++c) lin_cells.push_back("-");
        sigma_cells.push_back("-");
      }
    }
    row.insert(row.end(), lin_cells.begin(), lin_cells.end());
    row.insert(row.end(), sigma_cells.begin(), sigma_cells.end());
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "\n('-' marks non-convergence; note BP stops converging first, then\n"
      "LinBP at ~0.488, then LinBP* at ~0.658, matching Fig. 4.)\n");
  return 0;
}
