// Experiment E5 (Fig. 7b): runtime of LinBP vs SBP vs Delta-SBP on the
// relational engine (the PostgreSQL stand-in) across Kronecker graph sizes.
// LinBP runs 5 iterations, SBP runs to termination, Delta-SBP applies a
// batch of new explicit beliefs for 1 permille of the nodes on top of the
// initial 5% (the paper's update protocol).

// --check (a CTest regression guard): the figure's speedup claim only
// means anything if Delta-SBP computes the same beliefs as a from-scratch
// SBP — asserts that parity at 1e-9 on graph #1 with the paper's update
// protocol (batch of new beliefs on top of an initial seed set).

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/coupling.h"
#include "src/graph/beliefs.h"
#include "src/relational/linbp_sql.h"
#include "src/relational/ops.h"
#include "src/relational/sbp_sql.h"
#include "src/util/table_printer.h"

namespace {

int RunCheck() {
  using namespace linbp;
  const Graph graph = bench::PaperGraph(1);
  const std::int64_t n = graph.num_nodes();
  const CouplingMatrix coupling = KroneckerExperimentCoupling();
  const Table a = MakeAdjacencyTable(graph);
  const Table h = MakeCouplingTable(coupling.residual());
  // One seeded pool split into an initial set and a later batch, so the
  // incremental and the scratch run end with identical explicit beliefs.
  const std::int64_t total = bench::FivePercent(n) + bench::OnePermille(n);
  const SeededBeliefs all = SeedPaperBeliefs(n, 3, total, 2001);
  const std::int64_t num_old = bench::FivePercent(n);
  const std::vector<std::int64_t> old_nodes(
      all.explicit_nodes.begin(), all.explicit_nodes.begin() + num_old);
  const std::vector<std::int64_t> new_nodes(
      all.explicit_nodes.begin() + num_old, all.explicit_nodes.end());

  SbpSql incremental(a, MakeBeliefTable(all.residuals, old_nodes), h);
  incremental.AddExplicitBeliefs(MakeBeliefTable(all.residuals, new_nodes));
  const SbpSql scratch(
      a, MakeBeliefTable(all.residuals, all.explicit_nodes), h);

  const DenseMatrix delta =
      BeliefsFromTable(incremental.beliefs(), n, 3);
  const DenseMatrix full = BeliefsFromTable(scratch.beliefs(), n, 3);
  const double diff = delta.MaxAbsDiff(full);
  const bool ok = diff <= 1e-9;
  std::printf("fig7b dSBP vs scratch SBP on graph #1: max abs diff %.3e "
              "(want <= 1e-9)  %s\n",
              diff, ok ? "OK" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace linbp;
  const bench::Args args(argc, argv);
  const bench::MetricsDumpGuard metrics_guard(args);
  if (args.Has("check")) return RunCheck();
  const int max_graph = static_cast<int>(args.Int("max-graph", 5));
  const int iterations = static_cast<int>(args.Int("iterations", 5));
  const CouplingMatrix coupling = KroneckerExperimentCoupling();
  const double eps = 0.0005;

  std::printf("== Fig. 7b: relational-engine scalability ==\n\n");
  TablePrinter table({"#", "edges", "LinBP(SQL)", "SBP(SQL)", "dSBP(SQL)",
                      "LinBP/SBP", "SBP/dSBP"});
  for (int index = 1; index <= max_graph; ++index) {
    const Graph graph = bench::PaperGraph(index);
    const std::int64_t n = graph.num_nodes();
    const SeededBeliefs seeded = bench::PaperSeeds(graph, 2000 + index);
    const Table a = MakeAdjacencyTable(graph);
    const Table e = MakeBeliefTable(seeded.residuals, seeded.explicit_nodes);
    const Table h = MakeCouplingTable(coupling.ScaledResidual(eps));
    const Table h_unscaled = MakeCouplingTable(coupling.residual());

    const double linbp_seconds = bench::TimeSeconds(
        [&] { RunLinBpSql(a, e, h, iterations); });
    double sbp_seconds = 0.0;
    {
      WallTimer timer;
      SbpSql sbp(a, e, h_unscaled);
      sbp_seconds = timer.Seconds();

      // Delta-SBP: new beliefs for 1 permille of all nodes.
      const SeededBeliefs update =
          SeedPaperBeliefs(n, 3, bench::OnePermille(n), 9000 + index);
      const Table en =
          MakeBeliefTable(update.residuals, update.explicit_nodes);
      const double delta_seconds =
          bench::TimeSeconds([&] { sbp.AddExplicitBeliefs(en); });

      const double edges = static_cast<double>(graph.num_directed_edges());
      (void)edges;
      table.AddRow({std::to_string(index),
                    TablePrinter::Int(graph.num_directed_edges()),
                    bench::FormatSeconds(linbp_seconds),
                    bench::FormatSeconds(sbp_seconds),
                    bench::FormatSeconds(delta_seconds),
                    TablePrinter::Num(linbp_seconds / sbp_seconds, 3),
                    TablePrinter::Num(sbp_seconds / delta_seconds, 3)});
    }
  }
  table.Print();
  std::printf("\n(paper: SBP ~10x faster than LinBP on SQL; dSBP another\n"
              "~2.5x on the larger graphs; all scale linearly in edges)\n");
  return 0;
}
