#include "src/graph/generators.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "src/util/check.h"
#include "src/util/random.h"

namespace linbp {
namespace {

// Key for de-duplicating undirected edges in the random generators.
std::uint64_t EdgeKey(std::int64_t u, std::int64_t v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | static_cast<std::uint64_t>(v);
}

}  // namespace

Graph KroneckerPowerGraph(int power) {
  LINBP_CHECK(power >= 1);
  // Seed: the path P3 (adjacency entries (0,1), (1,0), (1,2), (2,1)).
  // Kronecker product rule: (u, v) is an edge of A^{(x)h} iff
  // (u_i, v_i) is a seed edge for every base-3 digit position i.
  // We expand iteratively: E_h = {(3u+a, 3v+b) : (u,v) in E_{h-1},
  // (a,b) in E_seed}, keeping only u < v to enumerate undirected edges once.
  const std::pair<int, int> seed_entries[] = {{0, 1}, {1, 0}, {1, 2}, {2, 1}};
  // Directed entry lists keep the recursion simple; we halve at the end.
  std::vector<std::pair<std::int64_t, std::int64_t>> entries = {
      {0, 1}, {1, 0}, {1, 2}, {2, 1}};
  std::int64_t num_nodes = 3;
  for (int level = 2; level <= power; ++level) {
    std::vector<std::pair<std::int64_t, std::int64_t>> next;
    next.reserve(entries.size() * 4);
    for (const auto& [u, v] : entries) {
      for (const auto& [a, b] : seed_entries) {
        next.emplace_back(3 * u + a, 3 * v + b);
      }
    }
    entries = std::move(next);
    num_nodes *= 3;
  }
  std::vector<Edge> edges;
  edges.reserve(entries.size() / 2);
  for (const auto& [u, v] : entries) {
    if (u < v) edges.push_back({u, v, 1.0});
  }
  return Graph(num_nodes, edges);
}

int KroneckerPowerForPaperIndex(int index) {
  LINBP_CHECK(index >= 1);
  return index + 4;
}

Graph TorusExampleGraph() {
  // 0-indexed: v1..v4 are nodes 0..3 (outer), v5..v8 are nodes 4..7 (inner).
  const std::vector<Edge> edges = {
      {4, 5, 1.0}, {5, 6, 1.0}, {6, 7, 1.0}, {4, 7, 1.0},  // inner cycle
      {0, 4, 1.0}, {1, 5, 1.0}, {2, 6, 1.0}, {3, 7, 1.0},  // spokes
  };
  return Graph(8, edges);
}

Graph Figure5ExampleGraph() {
  // 0-indexed: paper node v_i is node i-1.
  const std::vector<Edge> edges = {
      {0, 2, 1.0}, {0, 3, 1.0}, {0, 4, 1.0}, {1, 2, 1.0}, {1, 3, 1.0},
      {2, 6, 1.0}, {3, 4, 1.0}, {4, 5, 1.0}, {5, 6, 1.0},
  };
  return Graph(7, edges);
}

Graph PathGraph(std::int64_t num_nodes) {
  LINBP_CHECK(num_nodes >= 1);
  std::vector<Edge> edges;
  for (std::int64_t i = 0; i + 1 < num_nodes; ++i) {
    edges.push_back({i, i + 1, 1.0});
  }
  return Graph(num_nodes, edges);
}

Graph CycleGraph(std::int64_t num_nodes) {
  LINBP_CHECK(num_nodes >= 3);
  std::vector<Edge> edges;
  for (std::int64_t i = 0; i < num_nodes; ++i) {
    edges.push_back({i, (i + 1) % num_nodes, 1.0});
  }
  return Graph(num_nodes, edges);
}

Graph BinaryTreeGraph(std::int64_t num_nodes) {
  LINBP_CHECK(num_nodes >= 1);
  std::vector<Edge> edges;
  for (std::int64_t i = 1; i < num_nodes; ++i) {
    edges.push_back({(i - 1) / 2, i, 1.0});
  }
  return Graph(num_nodes, edges);
}

Graph GridGraph(std::int64_t rows, std::int64_t cols) {
  LINBP_CHECK(rows >= 1 && cols >= 1);
  std::vector<Edge> edges;
  auto id = [cols](std::int64_t r, std::int64_t c) { return r * cols + c; };
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.push_back({id(r, c), id(r, c + 1), 1.0});
      if (r + 1 < rows) edges.push_back({id(r, c), id(r + 1, c), 1.0});
    }
  }
  return Graph(rows * cols, edges);
}

Graph ErdosRenyiGraph(std::int64_t num_nodes, std::int64_t num_edges,
                      std::uint64_t seed) {
  LINBP_CHECK(num_nodes >= 2);
  const std::int64_t max_edges = num_nodes * (num_nodes - 1) / 2;
  LINBP_CHECK(num_edges >= 0 && num_edges <= max_edges);
  Rng rng(seed);
  std::unordered_set<std::uint64_t> used;
  std::vector<Edge> edges;
  edges.reserve(num_edges);
  while (static_cast<std::int64_t>(edges.size()) < num_edges) {
    const std::int64_t u = rng.NextInt(0, num_nodes - 1);
    const std::int64_t v = rng.NextInt(0, num_nodes - 1);
    if (u == v) continue;
    if (!used.insert(EdgeKey(u, v)).second) continue;
    edges.push_back({u, v, 1.0});
  }
  return Graph(num_nodes, edges);
}

Graph RandomConnectedGraph(std::int64_t num_nodes, std::int64_t extra_edges,
                           std::uint64_t seed) {
  return RandomWeightedConnectedGraph(num_nodes, extra_edges, 1.0, 1.0, seed);
}

Graph RandomWeightedConnectedGraph(std::int64_t num_nodes,
                                   std::int64_t extra_edges,
                                   double min_weight, double max_weight,
                                   std::uint64_t seed) {
  LINBP_CHECK(num_nodes >= 1);
  LINBP_CHECK(min_weight <= max_weight);
  Rng rng(seed);
  auto weight = [&] {
    return min_weight + (max_weight - min_weight) * rng.NextDouble();
  };
  std::unordered_set<std::uint64_t> used;
  std::vector<Edge> edges;
  // Random spanning tree: attach each node to a random earlier node.
  for (std::int64_t v = 1; v < num_nodes; ++v) {
    const std::int64_t u = rng.NextInt(0, v - 1);
    used.insert(EdgeKey(u, v));
    edges.push_back({u, v, weight()});
  }
  const std::int64_t max_extra =
      num_nodes * (num_nodes - 1) / 2 - (num_nodes - 1);
  std::int64_t remaining = std::min(extra_edges, max_extra);
  while (remaining > 0) {
    const std::int64_t u = rng.NextInt(0, num_nodes - 1);
    const std::int64_t v = rng.NextInt(0, num_nodes - 1);
    if (u == v) continue;
    if (!used.insert(EdgeKey(u, v)).second) continue;
    edges.push_back({u, v, weight()});
    --remaining;
  }
  return Graph(num_nodes, edges);
}

}  // namespace linbp
