// Synthetic DBLP-like heterogeneous graph (substitute for the real dataset).
//
// The paper's Appendix F.2 experiment uses the DBLP subset of [Ji et al.,
// ECML/PKDD'10]: 36,138 nodes (papers, authors, conferences, terms),
// 341,564 directed edges, 4 classes (AI, DB, DM, IR), 10.4% of the nodes
// explicitly labeled. That snapshot is not redistributable here, so this
// module generates a synthetic graph with the same node-type mix, class
// structure, degree profile, and labeling rate:
//   * each paper belongs to one of 4 areas and is connected to its authors,
//     one conference, and its title terms;
//   * conferences are few and strongly area-specific;
//   * authors mostly publish inside one area;
//   * terms are many, Zipf-popular, and partially area-specific (titles
//     share generic words across areas).
// The experiment itself (F1 agreement of LinBP/LinBP*/SBP with BP under
// homophily) only depends on these structural properties.

#ifndef LINBP_GRAPH_DBLP_H_
#define LINBP_GRAPH_DBLP_H_

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"

namespace linbp {

/// Parameters of the synthetic DBLP generator. Defaults approximate the
/// scale of the paper's dataset; tests and benches shrink them.
struct DblpConfig {
  std::int64_t num_papers = 14000;
  std::int64_t num_authors = 14500;
  std::int64_t num_conferences = 20;
  std::int64_t num_terms = 7600;
  std::int64_t num_classes = 4;           // AI, DB, DM, IR
  double labeled_fraction = 0.104;        // ~10.4% of all nodes
  double author_same_class_prob = 0.85;   // author-paper class agreement
  double term_specific_prob = 0.65;       // term belongs to one area
  std::int64_t min_authors_per_paper = 1;
  std::int64_t max_authors_per_paper = 4;
  std::int64_t min_terms_per_paper = 4;
  std::int64_t max_terms_per_paper = 10;
  std::uint64_t seed = 42;
};

/// Node kinds, in node-id order: papers, authors, conferences, terms.
enum class DblpNodeKind { kPaper, kAuthor, kConference, kTerm };

/// The generated graph plus metadata.
struct DblpGraph {
  Graph graph;
  std::int64_t num_classes = 4;
  /// Ground-truth class per node; -1 for nodes without a clear class
  /// (generic terms).
  std::vector<int> node_class;
  /// Kind of each node.
  std::vector<DblpNodeKind> node_kind;
  /// Nodes carrying explicit labels (sorted).
  std::vector<std::int64_t> labeled_nodes;
};

/// Generates the synthetic DBLP graph; deterministic under config.seed.
DblpGraph MakeSyntheticDblp(const DblpConfig& config);

}  // namespace linbp

#endif  // LINBP_GRAPH_DBLP_H_
