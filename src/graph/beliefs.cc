#include "src/graph/beliefs.h"

#include <algorithm>
#include <unordered_set>

#include "src/util/check.h"
#include "src/util/random.h"

namespace linbp {

DenseMatrix ResidualToProbability(const DenseMatrix& residual) {
  const double k = static_cast<double>(residual.cols());
  LINBP_CHECK(k > 0);
  return residual.AddScalar(1.0 / k);
}

DenseMatrix ProbabilityToResidual(const DenseMatrix& probability) {
  const double k = static_cast<double>(probability.cols());
  LINBP_CHECK(k > 0);
  return probability.AddScalar(-1.0 / k);
}

std::vector<double> ExplicitResidualForClass(std::int64_t k, std::int64_t cls,
                                             double strength) {
  LINBP_CHECK(k >= 2 && cls >= 0 && cls < k);
  std::vector<double> residual(k, -strength / static_cast<double>(k));
  residual[cls] += strength;
  return residual;
}

SeededBeliefs SeedPaperBeliefs(std::int64_t num_nodes, std::int64_t k,
                               std::int64_t num_explicit, std::uint64_t seed,
                               int extra_digits) {
  LINBP_CHECK(k >= 2);
  LINBP_CHECK(num_explicit >= 0 && num_explicit <= num_nodes);
  Rng rng(seed);
  // Sample distinct nodes.
  std::unordered_set<std::int64_t> chosen;
  while (static_cast<std::int64_t>(chosen.size()) < num_explicit) {
    chosen.insert(rng.NextInt(0, num_nodes - 1));
  }
  SeededBeliefs out;
  out.residuals = DenseMatrix(num_nodes, k);
  out.explicit_nodes.assign(chosen.begin(), chosen.end());
  std::sort(out.explicit_nodes.begin(), out.explicit_nodes.end());
  double extra_scale = 1.0;
  for (int d = 0; d < extra_digits; ++d) extra_scale /= 10.0;
  for (const std::int64_t node : out.explicit_nodes) {
    // Redraw any all-zero row: an explicit node must deviate from the
    // uniform belief (the paper defines explicit nodes by ehat != 0, and
    // the relational encoding represents zero residuals as absent rows).
    bool all_zero = true;
    while (all_zero) {
      double sum = 0.0;
      for (std::int64_t c = 0; c + 1 < k; ++c) {
        // Grid {-0.1, -0.09, ..., 0.09, 0.1} (21 values), plus optional
        // extra digits to avoid exact ties (the paper's recommendation).
        double value = 0.01 * static_cast<double>(rng.NextInt(-10, 10));
        if (extra_digits > 0) {
          value += 0.01 * extra_scale *
                   static_cast<double>(rng.NextInt(-9, 9));
        }
        out.residuals.At(node, c) = value;
        sum += value;
        if (value != 0.0) all_zero = false;
      }
      out.residuals.At(node, k - 1) = -sum;
    }
  }
  return out;
}

std::vector<double> BeliefRow(const DenseMatrix& matrix, std::int64_t node) {
  LINBP_CHECK(node >= 0 && node < matrix.rows());
  std::vector<double> row(matrix.cols());
  for (std::int64_t c = 0; c < matrix.cols(); ++c) row[c] = matrix.At(node, c);
  return row;
}

}  // namespace linbp
