// Plain-text persistence for graphs, belief matrices, and label lists.
//
// Formats match the relational schemas of Sect. 5.3 so data can round-trip
// between files, the matrix implementations, and the relational engine:
//   edge list:   one "u v [w]" line per undirected edge (w defaults to 1),
//                '#' starts a comment line;
//   belief list: one "v c b" line per nonzero residual entry;
//   label list:  one "v c" line per node with a known class.
//
// All readers validate their input (negative node ids, out-of-range
// classes, non-finite weights/beliefs, duplicate edges) and report
// "path:line: message" parse errors instead of aborting.

#ifndef LINBP_GRAPH_IO_H_
#define LINBP_GRAPH_IO_H_

#include <optional>
#include <string>

#include "src/graph/beliefs.h"
#include "src/graph/graph.h"

namespace linbp {

/// Writes the graph as an edge list. Returns false on I/O failure.
bool WriteEdgeList(const Graph& graph, const std::string& path);

/// Reads an edge list. The node count is max(node id) + 1, or
/// `num_nodes_hint` if that is larger (use it to keep trailing isolated
/// nodes). Returns nullopt and fills *error on parse or I/O failure.
std::optional<Graph> ReadEdgeList(const std::string& path,
                                  std::string* error,
                                  std::int64_t num_nodes_hint = 0);

/// Writes the nonzero rows of a residual belief matrix as "v c b" lines.
bool WriteBeliefs(const DenseMatrix& residuals,
                  const std::vector<std::int64_t>& explicit_nodes,
                  const std::string& path);

/// Reads a belief list into an n x k residual matrix plus the sorted list
/// of nodes that had at least one entry.
std::optional<SeededBeliefs> ReadBeliefs(const std::string& path,
                                         std::int64_t num_nodes,
                                         std::int64_t k, std::string* error);

/// Writes "v c" lines for every node whose label is >= 0.
bool WriteLabels(const std::vector<int>& labels, const std::string& path);

/// Reads a label list into a per-node class vector (-1 for nodes without a
/// line). Classes must be in [0, k); node ids in [0, num_nodes).
std::optional<std::vector<int>> ReadLabels(const std::string& path,
                                           std::int64_t num_nodes,
                                           std::int64_t k, std::string* error);

}  // namespace linbp

#endif  // LINBP_GRAPH_IO_H_
