// Graph generators for the paper's experiments and for tests.
//
// The paper's synthetic workload (Fig. 6a) is a family of Kronecker graphs
// [Leskovec et al., PKDD'05] with n = 3^h nodes and e = 4^h adjacency
// entries: exactly the deterministic Kronecker powers of the 3-node path
// P3, whose adjacency matrix has 4 nonzero entries. The Fig. 5c "torus" is
// the 8-node example graph of Example 20 (inner 4-cycle plus 4 spokes),
// verified against every constant reported in the paper (rho(A) = 1 +
// sqrt(2), convergence thresholds 0.488 / 0.658 / 0.360 / 0.455).

#ifndef LINBP_GRAPH_GENERATORS_H_
#define LINBP_GRAPH_GENERATORS_H_

#include <cstdint>

#include "src/graph/graph.h"

namespace linbp {

/// Deterministic Kronecker power of the path P3: n = 3^power nodes and
/// 4^power adjacency entries, matching Fig. 6a ("graph #g" has
/// power = g + 4). `power` must be >= 1.
Graph KroneckerPowerGraph(int power);

/// The paper numbers its Kronecker graphs 1..9; returns the Kronecker power
/// for that index (index + 4).
int KroneckerPowerForPaperIndex(int index);

/// The 8-node Example 20 graph (Fig. 5c): inner cycle v5-v6-v7-v8 plus
/// spokes v1-v5, v2-v6, v3-v7, v4-v8. Nodes are 0-indexed, so paper node
/// v_i is node i-1.
Graph TorusExampleGraph();

/// The 7-node graph of Fig. 5a/b (Examples 16 and 18). Edges: v1-v3, v1-v4,
/// v1-v5, v2-v3, v2-v4, v3-v7, v4-v5, v5-v6, v6-v7. With explicit beliefs
/// at v2 and v7 this reproduces both examples: v1 has geodesic number 2
/// with three shortest paths (two from v2, one from v7), and edge v1-v5
/// connects two geodesic-2 nodes so SBP drops it (Example 18).
Graph Figure5ExampleGraph();

/// Path graph 0-1-2-...-(n-1).
Graph PathGraph(std::int64_t num_nodes);

/// Cycle graph on n >= 3 nodes.
Graph CycleGraph(std::int64_t num_nodes);

/// Complete binary tree with `num_nodes` nodes (node i's parent is
/// (i-1)/2).
Graph BinaryTreeGraph(std::int64_t num_nodes);

/// 2D grid of rows x cols nodes with 4-neighborhoods.
Graph GridGraph(std::int64_t rows, std::int64_t cols);

/// Erdos-Renyi G(n, m): `num_edges` distinct undirected edges sampled
/// uniformly, deterministic under `seed`.
Graph ErdosRenyiGraph(std::int64_t num_nodes, std::int64_t num_edges,
                      std::uint64_t seed);

/// Random connected graph: a random spanning tree plus `extra_edges`
/// random non-duplicate edges. Used heavily by property tests.
Graph RandomConnectedGraph(std::int64_t num_nodes, std::int64_t extra_edges,
                           std::uint64_t seed);

/// Same as RandomConnectedGraph but with random edge weights drawn
/// uniformly from [min_weight, max_weight].
Graph RandomWeightedConnectedGraph(std::int64_t num_nodes,
                                   std::int64_t extra_edges,
                                   double min_weight, double max_weight,
                                   std::uint64_t seed);

}  // namespace linbp

#endif  // LINBP_GRAPH_GENERATORS_H_
