// Undirected weighted graphs.
//
// A Graph is built incrementally from undirected edges and then frozen into
// a symmetric CSR adjacency matrix. Per Sect. 5.2 of the paper, the degree
// of a node in a weighted graph is the sum of the *squared* weights of its
// incident edges (the echo travels across each edge twice).

#ifndef LINBP_GRAPH_GRAPH_H_
#define LINBP_GRAPH_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/la/sparse_matrix.h"

namespace linbp {

/// One undirected weighted edge.
struct Edge {
  std::int64_t u = 0;
  std::int64_t v = 0;
  double weight = 1.0;
};

/// Immutable undirected weighted graph with a CSR adjacency view.
class Graph {
 public:
  /// Creates an empty graph with no nodes.
  Graph() : adjacency_(0, 0) {}

  /// Builds a graph on `num_nodes` nodes from undirected edges. Each edge
  /// {u, v, w} contributes both A(u,v) = w and A(v,u) = w. Self-loops and
  /// duplicate edges are rejected (the paper's graphs have neither).
  Graph(std::int64_t num_nodes, const std::vector<Edge>& edges);

  /// Adopts an already-symmetric CSR adjacency matrix (the snapshot
  /// deserialization path: the matrix comes from SparseMatrix::FromCsr, so
  /// the edge list and weighted degrees are *derived* instead of re-built
  /// from triplets). Aborts if the matrix is not square, has diagonal
  /// entries, or is not symmetric in pattern and values. The symmetry
  /// sweep, edge-list reconstruction, and degree computation fan out on
  /// `ctx`; the derived edge list is sorted by (u, v), which is also the
  /// order the original constructor produces for sorted input.
  static Graph FromAdjacency(SparseMatrix adjacency,
                             const exec::ExecContext& ctx =
                                 exec::ExecContext::Default());

  /// FromAdjacency without the symmetry/self-loop sweep, for callers that
  /// have ALREADY verified both (the snapshot loader's error-returning
  /// validation pass) — the derived edge list and degrees are computed
  /// either way. Adopting an unverified matrix is undefined behavior.
  static Graph FromValidatedAdjacency(SparseMatrix adjacency,
                                      const exec::ExecContext& ctx =
                                          exec::ExecContext::Default());

  std::int64_t num_nodes() const { return adjacency_.rows(); }

  /// Number of stored adjacency entries (2x the undirected edge count, the
  /// paper's convention in Fig. 6a).
  std::int64_t num_directed_edges() const { return adjacency_.NumNonZeros(); }

  /// Number of undirected edges.
  std::int64_t num_undirected_edges() const {
    return adjacency_.NumNonZeros() / 2;
  }

  /// Symmetric weighted adjacency matrix A.
  const SparseMatrix& adjacency() const { return adjacency_; }

  /// Weighted degrees d_s = sum over neighbors of w_{s,t}^2 (Sect. 5.2).
  /// For unweighted graphs this equals the ordinary degree.
  const std::vector<double>& weighted_degrees() const {
    return weighted_degrees_;
  }

  /// Number of neighbors of `node`.
  std::int64_t Degree(std::int64_t node) const;

  /// The original undirected edge list (u < v normalized).
  const std::vector<Edge>& edges() const { return edges_; }

 private:
  static Graph FromAdjacencyImpl(SparseMatrix adjacency,
                                 const exec::ExecContext& ctx, bool validate);

  SparseMatrix adjacency_;
  std::vector<double> weighted_degrees_;
  std::vector<Edge> edges_;
};

/// For a structurally symmetric CSR matrix, returns for every stored entry
/// e = (s -> t) the index of its mirror entry (t -> s). Message-passing BP
/// and the directed edge matrix of Appendix G both need this mapping.
std::vector<std::int64_t> ReverseEdgeIndex(const SparseMatrix& adjacency);

/// Validates a batch of edges to be ADDED to `graph`: endpoints in
/// range, no self-loops, finite weights, no duplicate undirected pair
/// within the batch, and no edge already stored in the adjacency (the
/// stored pattern decides — a zero weight is still a stored entry).
/// Returns an empty string for a valid batch, else a description of the
/// first problem. This is the error-returning complement of the
/// CHECK-aborting Graph constructor, for the incremental solvers' edge
/// streams arriving from user input.
std::string ValidateNewEdgeBatch(const Graph& graph,
                                 const std::vector<Edge>& edges);

/// Validates a batch of edges to be REMOVED from `graph`: endpoints in
/// range, every named undirected edge currently stored in the adjacency,
/// and no duplicate pair within the batch. Weights are ignored — removal
/// names an edge, it does not assert its weight. Returns an empty string
/// for a valid batch, else a description of the first problem.
std::string ValidateEdgeRemovalBatch(const Graph& graph,
                                     const std::vector<Edge>& edges);

/// Validates a batch of edge REWEIGHTS on `graph`: endpoints in range,
/// every named undirected edge currently stored, finite new weights, and
/// no duplicate pair within the batch. Returns an empty string for a
/// valid batch, else a description of the first problem.
std::string ValidateEdgeReweightBatch(const Graph& graph,
                                      const std::vector<Edge>& edges);

}  // namespace linbp

#endif  // LINBP_GRAPH_GRAPH_H_
