#include "src/graph/io.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "src/util/check.h"

namespace linbp {
namespace {

bool IsCommentOrBlank(const std::string& line) {
  for (const char c : line) {
    if (c == '#') return true;
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

std::string ParseError(const std::string& path, int line_number,
                       const std::string& message) {
  std::ostringstream out;
  out << path << ":" << line_number << ": " << message;
  return out.str();
}

// Strict double parse: the whole token must convert. Unlike operator>>,
// this accepts "nan"/"inf" spellings, which the callers then reject with
// a specific non-finite error instead of silently skipping the token.
bool ParseDoubleToken(const std::string& token, double* out) {
  char* end = nullptr;
  *out = std::strtod(token.c_str(), &end);
  return !token.empty() && *end == '\0';
}

}  // namespace

bool WriteEdgeList(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out.precision(17);  // weights must round-trip exactly
  out << "# undirected edge list: u v w  (" << graph.num_nodes()
      << " nodes, " << graph.num_undirected_edges() << " edges)\n";
  for (const Edge& e : graph.edges()) {
    out << e.u << ' ' << e.v << ' ' << e.weight << '\n';
  }
  return static_cast<bool>(out);
}

std::optional<Graph> ReadEdgeList(const std::string& path,
                                  std::string* error,
                                  std::int64_t num_nodes_hint) {
  LINBP_CHECK(error != nullptr);
  std::ifstream in(path);
  if (!in) {
    *error = path + ": cannot open";
    return std::nullopt;
  }
  std::vector<Edge> edges;
  std::int64_t max_node = -1;
  // Duplicates are detected here, with the offending line number, so
  // malformed files fail with a parse error instead of a CHECK abort
  // inside Graph.
  std::unordered_set<std::uint64_t> seen;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (IsCommentOrBlank(line)) continue;
    std::istringstream fields(line);
    Edge e;
    if (!(fields >> e.u >> e.v)) {
      *error = ParseError(path, line_number, "expected 'u v [w]'");
      return std::nullopt;
    }
    std::string weight_token;
    if (fields >> weight_token) {
      if (!ParseDoubleToken(weight_token, &e.weight)) {
        *error = ParseError(path, line_number,
                            "malformed weight '" + weight_token + "'");
        return std::nullopt;
      }
      std::string extra;
      if (fields >> extra) {
        *error = ParseError(path, line_number, "trailing content");
        return std::nullopt;
      }
    } else {
      e.weight = 1.0;
    }
    if (e.u < 0 || e.v < 0) {
      *error = ParseError(path, line_number, "negative node id");
      return std::nullopt;
    }
    if (e.u == e.v) {
      *error = ParseError(path, line_number, "self-loop");
      return std::nullopt;
    }
    if (!std::isfinite(e.weight)) {
      *error = ParseError(path, line_number, "non-finite edge weight");
      return std::nullopt;
    }
    const std::uint64_t key =
        (static_cast<std::uint64_t>(std::min(e.u, e.v)) << 32) |
        static_cast<std::uint64_t>(std::max(e.u, e.v));
    if (!seen.insert(key).second) {
      *error = ParseError(path, line_number,
                          "duplicate edge " + std::to_string(e.u) + "-" +
                              std::to_string(e.v));
      return std::nullopt;
    }
    max_node = std::max({max_node, e.u, e.v});
    edges.push_back(e);
  }
  const std::int64_t num_nodes = std::max(max_node + 1, num_nodes_hint);
  return Graph(num_nodes, edges);
}

bool WriteBeliefs(const DenseMatrix& residuals,
                  const std::vector<std::int64_t>& explicit_nodes,
                  const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << "# explicit residual beliefs: v c b\n";
  out.precision(17);
  for (const std::int64_t v : explicit_nodes) {
    for (std::int64_t c = 0; c < residuals.cols(); ++c) {
      const double b = residuals.At(v, c);
      if (b != 0.0) out << v << ' ' << c << ' ' << b << '\n';
    }
  }
  return static_cast<bool>(out);
}

std::optional<SeededBeliefs> ReadBeliefs(const std::string& path,
                                         std::int64_t num_nodes,
                                         std::int64_t k, std::string* error) {
  LINBP_CHECK(error != nullptr);
  std::ifstream in(path);
  if (!in) {
    *error = path + ": cannot open";
    return std::nullopt;
  }
  SeededBeliefs out;
  out.residuals = DenseMatrix(num_nodes, k);
  std::unordered_set<std::int64_t> nodes;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (IsCommentOrBlank(line)) continue;
    std::istringstream fields(line);
    std::int64_t v = 0;
    std::int64_t c = 0;
    std::string belief_token;
    double b = 0.0;
    if (!(fields >> v >> c >> belief_token) ||
        !ParseDoubleToken(belief_token, &b)) {
      *error = ParseError(path, line_number, "expected 'v c b'");
      return std::nullopt;
    }
    if (v < 0 || v >= num_nodes || c < 0 || c >= k) {
      *error = ParseError(path, line_number, "node or class out of range");
      return std::nullopt;
    }
    if (!std::isfinite(b)) {
      *error = ParseError(path, line_number, "non-finite belief");
      return std::nullopt;
    }
    out.residuals.At(v, c) += b;
    nodes.insert(v);
  }
  out.explicit_nodes.assign(nodes.begin(), nodes.end());
  std::sort(out.explicit_nodes.begin(), out.explicit_nodes.end());
  return out;
}

bool WriteLabels(const std::vector<int>& labels, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << "# ground-truth labels: v c\n";
  for (std::size_t v = 0; v < labels.size(); ++v) {
    if (labels[v] >= 0) out << v << ' ' << labels[v] << '\n';
  }
  return static_cast<bool>(out);
}

std::optional<std::vector<int>> ReadLabels(const std::string& path,
                                           std::int64_t num_nodes,
                                           std::int64_t k,
                                           std::string* error) {
  LINBP_CHECK(error != nullptr);
  std::ifstream in(path);
  if (!in) {
    *error = path + ": cannot open";
    return std::nullopt;
  }
  std::vector<int> labels(num_nodes, -1);
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (IsCommentOrBlank(line)) continue;
    std::istringstream fields(line);
    std::int64_t v = 0;
    std::int64_t c = 0;
    if (!(fields >> v >> c)) {
      *error = ParseError(path, line_number, "expected 'v c'");
      return std::nullopt;
    }
    if (v < 0 || v >= num_nodes || c < 0 || c >= k) {
      *error = ParseError(path, line_number, "node or class out of range");
      return std::nullopt;
    }
    labels[v] = static_cast<int>(c);
  }
  return labels;
}

}  // namespace linbp
