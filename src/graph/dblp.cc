#include "src/graph/dblp.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "src/util/check.h"
#include "src/util/random.h"

namespace linbp {
namespace {

// Samples an index in [0, n) with Zipf(1.0) popularity via inverse-CDF on a
// precomputed cumulative table.
class ZipfSampler {
 public:
  explicit ZipfSampler(std::int64_t n) : cdf_(n) {
    double total = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      total += 1.0 / static_cast<double>(i + 1);
      cdf_[i] = total;
    }
    for (auto& v : cdf_) v /= total;
  }

  std::int64_t Sample(Rng* rng) const {
    const double u = rng->NextDouble();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return it == cdf_.end() ? static_cast<std::int64_t>(cdf_.size()) - 1
                            : it - cdf_.begin();
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace

DblpGraph MakeSyntheticDblp(const DblpConfig& config) {
  LINBP_CHECK(config.num_classes >= 2);
  LINBP_CHECK(config.num_conferences >= config.num_classes);
  LINBP_CHECK(config.min_authors_per_paper >= 1);
  LINBP_CHECK(config.max_authors_per_paper >= config.min_authors_per_paper);
  LINBP_CHECK(config.min_terms_per_paper >= 1);
  LINBP_CHECK(config.max_terms_per_paper >= config.min_terms_per_paper);
  Rng rng(config.seed);

  const std::int64_t k = config.num_classes;
  const std::int64_t paper_base = 0;
  const std::int64_t author_base = paper_base + config.num_papers;
  const std::int64_t conf_base = author_base + config.num_authors;
  const std::int64_t term_base = conf_base + config.num_conferences;
  const std::int64_t num_nodes = term_base + config.num_terms;

  DblpGraph out;
  out.num_classes = k;
  out.node_class.assign(num_nodes, -1);
  out.node_kind.assign(num_nodes, DblpNodeKind::kPaper);
  for (std::int64_t i = author_base; i < conf_base; ++i) {
    out.node_kind[i] = DblpNodeKind::kAuthor;
  }
  for (std::int64_t i = conf_base; i < term_base; ++i) {
    out.node_kind[i] = DblpNodeKind::kConference;
  }
  for (std::int64_t i = term_base; i < num_nodes; ++i) {
    out.node_kind[i] = DblpNodeKind::kTerm;
  }

  // Conferences: round-robin over classes (e.g. 5 venues per area).
  for (std::int64_t c = 0; c < config.num_conferences; ++c) {
    out.node_class[conf_base + c] = static_cast<int>(c % k);
  }
  // Authors: one home area each.
  for (std::int64_t a = 0; a < config.num_authors; ++a) {
    out.node_class[author_base + a] = static_cast<int>(rng.NextBounded(k));
  }
  // Terms: area-specific with probability term_specific_prob, else generic.
  for (std::int64_t t = 0; t < config.num_terms; ++t) {
    if (rng.NextBernoulli(config.term_specific_prob)) {
      out.node_class[term_base + t] = static_cast<int>(rng.NextBounded(k));
    }
  }

  // Popularity distributions: prolific authors and frequent terms.
  ZipfSampler author_popularity(config.num_authors);
  ZipfSampler term_popularity(config.num_terms);

  std::vector<Edge> edges;
  edges.reserve(config.num_papers *
                (config.max_authors_per_paper + config.max_terms_per_paper +
                 1));
  std::unordered_set<std::uint64_t> used;
  auto add_edge = [&](std::int64_t u, std::int64_t v) {
    const std::uint64_t key = (static_cast<std::uint64_t>(std::min(u, v))
                               << 32) |
                              static_cast<std::uint64_t>(std::max(u, v));
    if (used.insert(key).second) edges.push_back({u, v, 1.0});
  };

  for (std::int64_t p = 0; p < config.num_papers; ++p) {
    const int paper_class = static_cast<int>(rng.NextBounded(k));
    const std::int64_t paper = paper_base + p;
    out.node_class[paper] = paper_class;

    // Conference: a venue of the paper's area with high probability.
    std::int64_t conf;
    if (rng.NextBernoulli(0.9)) {
      const std::int64_t venues_per_class = config.num_conferences / k;
      conf = paper_class +
             static_cast<std::int64_t>(rng.NextBounded(venues_per_class)) * k;
    } else {
      conf = static_cast<std::int64_t>(rng.NextBounded(config.num_conferences));
    }
    add_edge(paper, conf_base + conf);

    // Authors: rejection-sample popular authors whose home area matches
    // with probability author_same_class_prob.
    const std::int64_t num_authors =
        rng.NextInt(config.min_authors_per_paper, config.max_authors_per_paper);
    for (std::int64_t i = 0; i < num_authors; ++i) {
      std::int64_t author = 0;
      const bool want_same = rng.NextBernoulli(config.author_same_class_prob);
      for (int attempt = 0; attempt < 64; ++attempt) {
        author = author_popularity.Sample(&rng);
        const bool same =
            out.node_class[author_base + author] == paper_class;
        if (same == want_same) break;
      }
      add_edge(paper, author_base + author);
    }

    // Terms: mostly terms of the paper's area or generic ones.
    const std::int64_t num_terms =
        rng.NextInt(config.min_terms_per_paper, config.max_terms_per_paper);
    for (std::int64_t i = 0; i < num_terms; ++i) {
      std::int64_t term = 0;
      for (int attempt = 0; attempt < 64; ++attempt) {
        term = term_popularity.Sample(&rng);
        const int term_class = out.node_class[term_base + term];
        if (term_class < 0 || term_class == paper_class) break;
      }
      add_edge(paper, term_base + term);
    }
  }

  // Explicit labels: all conferences (strongly indicative, as in the
  // original dataset) plus random papers/authors up to labeled_fraction.
  std::unordered_set<std::int64_t> labeled;
  for (std::int64_t c = 0; c < config.num_conferences; ++c) {
    labeled.insert(conf_base + c);
  }
  const auto target =
      static_cast<std::int64_t>(std::llround(config.labeled_fraction *
                                             static_cast<double>(num_nodes)));
  while (static_cast<std::int64_t>(labeled.size()) < target) {
    // Only papers and authors receive extra labels; their classes are known.
    const std::int64_t node = rng.NextInt(0, conf_base - 1);
    labeled.insert(node);
  }
  out.labeled_nodes.assign(labeled.begin(), labeled.end());
  std::sort(out.labeled_nodes.begin(), out.labeled_nodes.end());

  out.graph = Graph(num_nodes, edges);
  return out;
}

}  // namespace linbp
