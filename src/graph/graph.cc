#include "src/graph/graph.h"

#include <algorithm>
#include <utility>

#include "src/util/check.h"

namespace linbp {

Graph::Graph(std::int64_t num_nodes, const std::vector<Edge>& edges)
    : adjacency_(num_nodes, num_nodes) {
  edges_.reserve(edges.size());
  std::vector<Triplet> triplets;
  triplets.reserve(edges.size() * 2);
  for (const Edge& e : edges) {
    LINBP_CHECK(e.u >= 0 && e.u < num_nodes && e.v >= 0 && e.v < num_nodes);
    LINBP_CHECK_MSG(e.u != e.v, "self-loops are not supported");
    Edge normalized = e;
    if (normalized.u > normalized.v) std::swap(normalized.u, normalized.v);
    edges_.push_back(normalized);
    triplets.push_back({normalized.u, normalized.v, normalized.weight});
    triplets.push_back({normalized.v, normalized.u, normalized.weight});
  }
  // Reject duplicates: FromTriplets would silently sum them.
  std::vector<std::pair<std::int64_t, std::int64_t>> keys;
  keys.reserve(edges_.size());
  for (const Edge& e : edges_) keys.emplace_back(e.u, e.v);
  std::sort(keys.begin(), keys.end());
  LINBP_CHECK_MSG(std::adjacent_find(keys.begin(), keys.end()) == keys.end(),
                  "duplicate undirected edge");
  adjacency_ = SparseMatrix::FromTriplets(num_nodes, num_nodes,
                                          std::move(triplets));
  weighted_degrees_ = adjacency_.SquaredRowSums();
}

std::int64_t Graph::Degree(std::int64_t node) const {
  LINBP_CHECK(node >= 0 && node < num_nodes());
  return adjacency_.row_ptr()[node + 1] - adjacency_.row_ptr()[node];
}

std::vector<std::int64_t> ReverseEdgeIndex(const SparseMatrix& adjacency) {
  LINBP_CHECK(adjacency.rows() == adjacency.cols());
  const auto& row_ptr = adjacency.row_ptr();
  const auto& col_idx = adjacency.col_idx();
  std::vector<std::int64_t> reverse(col_idx.size());
  for (std::int64_t s = 0; s < adjacency.rows(); ++s) {
    for (std::int64_t e = row_ptr[s]; e < row_ptr[s + 1]; ++e) {
      const std::int64_t t = col_idx[e];
      // Within row t, columns are sorted; binary search for s.
      const auto begin = col_idx.begin() + row_ptr[t];
      const auto end = col_idx.begin() + row_ptr[t + 1];
      const auto it =
          std::lower_bound(begin, end, static_cast<std::int32_t>(s));
      LINBP_CHECK_MSG(it != end && *it == s,
                      "adjacency matrix is not structurally symmetric");
      reverse[e] = it - col_idx.begin();
    }
  }
  return reverse;
}

}  // namespace linbp
