#include "src/graph/graph.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "src/util/check.h"

namespace linbp {

Graph::Graph(std::int64_t num_nodes, const std::vector<Edge>& edges)
    : adjacency_(num_nodes, num_nodes) {
  edges_.reserve(edges.size());
  std::vector<Triplet> triplets;
  triplets.reserve(edges.size() * 2);
  for (const Edge& e : edges) {
    LINBP_CHECK(e.u >= 0 && e.u < num_nodes && e.v >= 0 && e.v < num_nodes);
    LINBP_CHECK_MSG(e.u != e.v, "self-loops are not supported");
    Edge normalized = e;
    if (normalized.u > normalized.v) std::swap(normalized.u, normalized.v);
    edges_.push_back(normalized);
    triplets.push_back({normalized.u, normalized.v, normalized.weight});
    triplets.push_back({normalized.v, normalized.u, normalized.weight});
  }
  // Reject duplicates: FromTriplets would silently sum them.
  std::vector<std::pair<std::int64_t, std::int64_t>> keys;
  keys.reserve(edges_.size());
  for (const Edge& e : edges_) keys.emplace_back(e.u, e.v);
  std::sort(keys.begin(), keys.end());
  LINBP_CHECK_MSG(std::adjacent_find(keys.begin(), keys.end()) == keys.end(),
                  "duplicate undirected edge");
  adjacency_ = SparseMatrix::FromTriplets(num_nodes, num_nodes,
                                          std::move(triplets));
  weighted_degrees_ = adjacency_.SquaredRowSums();
}

Graph Graph::FromAdjacency(SparseMatrix adjacency,
                           const exec::ExecContext& ctx) {
  return FromAdjacencyImpl(std::move(adjacency), ctx, /*validate=*/true);
}

Graph Graph::FromValidatedAdjacency(SparseMatrix adjacency,
                                    const exec::ExecContext& ctx) {
  return FromAdjacencyImpl(std::move(adjacency), ctx, /*validate=*/false);
}

// One parallel sweep optionally validates (no self-loops, symmetric
// pattern and values via a mirror binary search per entry), computes the
// weighted degrees, and counts each row's upper-triangle entries for the
// edge-list reconstruction below. Rows are chunk-owned, so the writes
// race with nothing.
Graph Graph::FromAdjacencyImpl(SparseMatrix adjacency,
                               const exec::ExecContext& ctx, bool validate) {
  LINBP_CHECK_MSG(adjacency.rows() == adjacency.cols(),
                  "adjacency matrix must be square");
  const std::int64_t n = adjacency.rows();
  const auto& row_ptr = adjacency.row_ptr();
  const auto& col_idx = adjacency.col_idx();
  const auto& values = adjacency.values();

  Graph graph;
  graph.weighted_degrees_.assign(n, 0.0);
  std::vector<std::int64_t> upper_count(n, 0);
  ctx.ParallelFor(0, n, /*min_grain=*/512, [&](std::int64_t row_begin,
                                               std::int64_t row_end) {
    for (std::int64_t r = row_begin; r < row_end; ++r) {
      double degree = 0.0;
      std::int64_t upper = 0;
      for (std::int64_t e = row_ptr[r]; e < row_ptr[r + 1]; ++e) {
        const std::int64_t c = col_idx[e];
        if (validate) {
          LINBP_CHECK_MSG(c != r, "self-loops are not supported");
          const auto begin = col_idx.begin() + row_ptr[c];
          const auto end = col_idx.begin() + row_ptr[c + 1];
          const auto it =
              std::lower_bound(begin, end, static_cast<std::int32_t>(r));
          LINBP_CHECK_MSG(it != end && *it == r &&
                              values[it - col_idx.begin()] == values[e],
                          "adjacency matrix is not symmetric");
        }
        degree += values[e] * values[e];
        if (c > r) ++upper;
      }
      graph.weighted_degrees_[r] = degree;
      upper_count[r] = upper;
    }
  });

  // Exclusive prefix over the per-row counts, then a parallel fill: every
  // undirected edge appears exactly once as its upper-triangle entry.
  std::vector<std::int64_t> edge_offset(n + 1, 0);
  for (std::int64_t r = 0; r < n; ++r) {
    edge_offset[r + 1] = edge_offset[r] + upper_count[r];
  }
  graph.edges_.resize(edge_offset[n]);
  ctx.ParallelFor(0, n, /*min_grain=*/512, [&](std::int64_t row_begin,
                                               std::int64_t row_end) {
    for (std::int64_t r = row_begin; r < row_end; ++r) {
      std::int64_t pos = edge_offset[r];
      for (std::int64_t e = row_ptr[r]; e < row_ptr[r + 1]; ++e) {
        const std::int64_t c = col_idx[e];
        if (c > r) graph.edges_[pos++] = Edge{r, c, values[e]};
      }
    }
  });
  graph.adjacency_ = std::move(adjacency);
  return graph;
}

std::int64_t Graph::Degree(std::int64_t node) const {
  LINBP_CHECK(node >= 0 && node < num_nodes());
  return adjacency_.row_ptr()[node + 1] - adjacency_.row_ptr()[node];
}

std::string ValidateNewEdgeBatch(const Graph& graph,
                                 const std::vector<Edge>& edges) {
  const std::int64_t n = graph.num_nodes();
  const auto& row_ptr = graph.adjacency().row_ptr();
  const auto& col_idx = graph.adjacency().col_idx();
  std::vector<std::pair<std::int64_t, std::int64_t>> keys;
  keys.reserve(edges.size());
  for (const Edge& e : edges) {
    if (e.u < 0 || e.u >= n || e.v < 0 || e.v >= n) {
      return "edge (" + std::to_string(e.u) + ", " + std::to_string(e.v) +
             ") has an endpoint outside [0, " + std::to_string(n) + ")";
    }
    if (e.u == e.v) {
      return "self-loop on node " + std::to_string(e.u) +
             " is not supported";
    }
    if (!std::isfinite(e.weight)) {
      return "edge (" + std::to_string(e.u) + ", " + std::to_string(e.v) +
             ") has a non-finite weight";
    }
    const std::int64_t u = std::min(e.u, e.v);
    const std::int64_t v = std::max(e.u, e.v);
    const auto begin = col_idx.begin() + row_ptr[u];
    const auto end = col_idx.begin() + row_ptr[u + 1];
    if (std::binary_search(begin, end, static_cast<std::int32_t>(v))) {
      return "edge (" + std::to_string(u) + ", " + std::to_string(v) +
             ") already exists in the graph";
    }
    keys.emplace_back(u, v);
  }
  std::sort(keys.begin(), keys.end());
  const auto dup = std::adjacent_find(keys.begin(), keys.end());
  if (dup != keys.end()) {
    return "duplicate edge (" + std::to_string(dup->first) + ", " +
           std::to_string(dup->second) + ") in the batch";
  }
  return std::string();
}

namespace {

// Shared core of the removal/reweight validators: both name edges that
// must already be stored, differ only in whether the weight matters.
std::string ValidateExistingEdgeBatch(const Graph& graph,
                                      const std::vector<Edge>& edges,
                                      bool check_weights) {
  const std::int64_t n = graph.num_nodes();
  const auto& row_ptr = graph.adjacency().row_ptr();
  const auto& col_idx = graph.adjacency().col_idx();
  std::vector<std::pair<std::int64_t, std::int64_t>> keys;
  keys.reserve(edges.size());
  for (const Edge& e : edges) {
    if (e.u < 0 || e.u >= n || e.v < 0 || e.v >= n) {
      return "edge (" + std::to_string(e.u) + ", " + std::to_string(e.v) +
             ") has an endpoint outside [0, " + std::to_string(n) + ")";
    }
    if (e.u == e.v) {
      return "self-loop on node " + std::to_string(e.u) +
             " is not supported";
    }
    if (check_weights && !std::isfinite(e.weight)) {
      return "edge (" + std::to_string(e.u) + ", " + std::to_string(e.v) +
             ") has a non-finite weight";
    }
    const std::int64_t u = std::min(e.u, e.v);
    const std::int64_t v = std::max(e.u, e.v);
    const auto begin = col_idx.begin() + row_ptr[u];
    const auto end = col_idx.begin() + row_ptr[u + 1];
    if (!std::binary_search(begin, end, static_cast<std::int32_t>(v))) {
      return "edge (" + std::to_string(u) + ", " + std::to_string(v) +
             ") does not exist in the graph";
    }
    keys.emplace_back(u, v);
  }
  std::sort(keys.begin(), keys.end());
  const auto dup = std::adjacent_find(keys.begin(), keys.end());
  if (dup != keys.end()) {
    return "duplicate edge (" + std::to_string(dup->first) + ", " +
           std::to_string(dup->second) + ") in the batch";
  }
  return std::string();
}

}  // namespace

std::string ValidateEdgeRemovalBatch(const Graph& graph,
                                     const std::vector<Edge>& edges) {
  return ValidateExistingEdgeBatch(graph, edges, /*check_weights=*/false);
}

std::string ValidateEdgeReweightBatch(const Graph& graph,
                                      const std::vector<Edge>& edges) {
  return ValidateExistingEdgeBatch(graph, edges, /*check_weights=*/true);
}

std::vector<std::int64_t> ReverseEdgeIndex(const SparseMatrix& adjacency) {
  LINBP_CHECK(adjacency.rows() == adjacency.cols());
  const auto& row_ptr = adjacency.row_ptr();
  const auto& col_idx = adjacency.col_idx();
  std::vector<std::int64_t> reverse(col_idx.size());
  for (std::int64_t s = 0; s < adjacency.rows(); ++s) {
    for (std::int64_t e = row_ptr[s]; e < row_ptr[s + 1]; ++e) {
      const std::int64_t t = col_idx[e];
      // Within row t, columns are sorted; binary search for s.
      const auto begin = col_idx.begin() + row_ptr[t];
      const auto end = col_idx.begin() + row_ptr[t + 1];
      const auto it =
          std::lower_bound(begin, end, static_cast<std::int32_t>(s));
      LINBP_CHECK_MSG(it != end && *it == s,
                      "adjacency matrix is not structurally symmetric");
      reverse[e] = it - col_idx.begin();
    }
  }
  return reverse;
}

}  // namespace linbp
