// Belief matrices and the paper's explicit-belief seeding protocol.
//
// Beliefs live in two equivalent representations:
//   * probability rows summing to 1 (standard BP),
//   * residual rows centered around 1/k and summing to 0 (LinBP / SBP).
// Explicit beliefs are the rows with nonzero residuals.

#ifndef LINBP_GRAPH_BELIEFS_H_
#define LINBP_GRAPH_BELIEFS_H_

#include <cstdint>
#include <vector>

#include "src/la/dense_matrix.h"

namespace linbp {

/// Converts a residual belief matrix (rows sum to 0) to probabilities
/// (adds 1/k to every entry).
DenseMatrix ResidualToProbability(const DenseMatrix& residual);

/// Converts a probability belief matrix (rows sum to 1) to residuals
/// (subtracts 1/k from every entry).
DenseMatrix ProbabilityToResidual(const DenseMatrix& probability);

/// Residual belief vector for "node believes class `cls`" with the given
/// strength: strength * (indicator(cls) - 1/k). Strength 1 corresponds to a
/// one-hot probability row.
std::vector<double> ExplicitResidualForClass(std::int64_t k, std::int64_t cls,
                                             double strength);

/// Explicit beliefs produced by the paper's seeding protocol (Sect. 7):
/// a subset of nodes receives random centered beliefs; for each chosen node,
/// k-1 classes get random values from {-0.1, -0.09, ..., 0.09, 0.1} and the
/// last class the negative sum.
struct SeededBeliefs {
  DenseMatrix residuals;                    // n x k, zero rows if unlabeled
  std::vector<std::int64_t> explicit_nodes; // sorted node ids
};

/// Seeds `num_explicit` distinct random nodes of an n-node graph
/// (deterministic under `seed`). `extra_digits` > 0 adds that many extra
/// random decimal digits to each belief, the paper's tie-avoidance trick
/// ("0.0503 instead of 0.05").
SeededBeliefs SeedPaperBeliefs(std::int64_t num_nodes, std::int64_t k,
                               std::int64_t num_explicit, std::uint64_t seed,
                               int extra_digits = 0);

/// Row `node` of `matrix` as a vector of length k.
std::vector<double> BeliefRow(const DenseMatrix& matrix, std::int64_t node);

}  // namespace linbp

#endif  // LINBP_GRAPH_BELIEFS_H_
