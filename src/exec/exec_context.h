// Execution context: where (and how wide) parallel kernels run.
//
// An ExecContext is a small copyable handle on a ThreadPool (or nothing,
// for serial execution). Kernels take one and split their row space into
// deterministic static chunks: the chunking depends only on the context's
// thread count and the problem shape, never on runtime timing, so a given
// (matrix, context) pair always produces the same answer. Per-row-owned
// kernels (SpMV, SpMM) are additionally bit-identical to the serial code
// for every thread count.
//
// The process-wide Default() context reads the LINBP_THREADS environment
// variable once: unset or 1 means serial, 0 means all hardware threads,
// N > 1 means an N-thread pool.

#ifndef LINBP_EXEC_EXEC_CONTEXT_H_
#define LINBP_EXEC_EXEC_CONTEXT_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "src/exec/thread_pool.h"

namespace linbp {
namespace exec {

/// Default minimum work units (FLOP-ish) a chunk must amortize before a
/// kernel fans out; below it the serial path is cheaper than the dispatch.
inline constexpr std::int64_t kDefaultMinWorkPerChunk = 1024;

/// Sanity bound on requested thread counts (every spec is clamped to
/// [1, kMaxThreads]); far above useful oversubscription, far below
/// anything that could exhaust process thread limits.
inline constexpr int kMaxThreads = 8192;

/// Parses a LINBP_THREADS-style spec: nullptr/empty/non-numeric -> 1
/// (serial), 0 -> hardware concurrency, otherwise the value clamped
/// to [1, kMaxThreads].
int ParseThreadsSpec(const char* spec);

/// Copyable handle selecting serial or pooled parallel execution.
class ExecContext {
 public:
  /// Serial context (no pool).
  ExecContext() = default;

  /// Serial context, spelled explicitly.
  static ExecContext Serial() { return ExecContext(); }

  /// Context with `threads` concurrent lanes; 0 means hardware
  /// concurrency, <= 1 means serial. Creating a context with threads > 1
  /// spawns the pool immediately; copies share it.
  static ExecContext WithThreads(int threads);

  /// Process-wide context configured from the LINBP_THREADS environment
  /// variable (read once at first use).
  static const ExecContext& Default();

  /// Number of concurrent lanes (1 for serial contexts).
  int threads() const { return pool_ ? pool_->num_threads() : 1; }

  bool IsSerial() const { return threads() <= 1; }

  /// Number of chunks [0, n) splits into given `min_grain` items per
  /// chunk: min(threads, n / max(1, min_grain)), at least 1. Exposed so
  /// callers can pre-size per-chunk reduction buffers.
  std::int64_t NumChunks(std::int64_t n, std::int64_t min_grain) const;

  /// Runs body(chunk, begin, end) for `num_chunks` equal contiguous
  /// chunks of [0, n). Serial (in chunk order) when the context is serial
  /// or num_chunks <= 1; otherwise on the pool. Exceptions from `body`
  /// propagate to the caller.
  void RunChunks(std::int64_t n, std::int64_t num_chunks,
                 const std::function<void(std::int64_t, std::int64_t,
                                          std::int64_t)>& body) const;

  /// Convenience: chunked parallel loop over [begin, end) with at least
  /// `min_grain` items per chunk; body receives sub-ranges that exactly
  /// tile the input range.
  void ParallelFor(std::int64_t begin, std::int64_t end,
                   std::int64_t min_grain,
                   const std::function<void(std::int64_t, std::int64_t)>&
                       body) const;

  /// Runs body(block) for blocks [0, num_blocks), one task per block
  /// (for pre-computed partitions such as RowPartition). Serial when the
  /// context is serial or num_blocks <= 1.
  void RunBlocks(std::int64_t num_blocks,
                 const std::function<void(std::int64_t)>& body) const;

 private:
  std::shared_ptr<ThreadPool> pool_;  // null = serial
};

}  // namespace exec
}  // namespace linbp

#endif  // LINBP_EXEC_EXEC_CONTEXT_H_
