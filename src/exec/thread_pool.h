// Fixed-size thread pool with a blocking fork-join primitive.
//
// The pool is deliberately simple (no work stealing, no futures): every
// kernel in this library decomposes into a statically known number of
// independent index tasks, so a single shared claim counter plus a
// completion latch is both robust and fast enough. One batch runs at a
// time; concurrent ParallelRun callers serialize on an internal mutex.

#ifndef LINBP_EXEC_THREAD_POOL_H_
#define LINBP_EXEC_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace linbp {
namespace exec {

/// A pool of `num_threads - 1` worker threads; the caller of ParallelRun
/// participates as the remaining thread, so `num_threads` tasks make
/// progress concurrently.
class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers. `num_threads` is clamped to >= 1
  /// (a 1-thread pool has no workers and runs everything inline).
  explicit ThreadPool(int num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Joins all workers. Must not be called while a ParallelRun is active.
  ~ThreadPool();

  int num_threads() const { return num_threads_; }

  /// Runs task(0), ..., task(num_tasks - 1) across the pool and blocks
  /// until all of them finished. Tasks are claimed dynamically from a
  /// shared counter, so any task may run on any thread (including the
  /// caller). The first exception thrown by a task is rethrown here after
  /// every remaining task was drained (tasks claimed after the exception
  /// are skipped). Calls from inside a running task execute serially on
  /// the calling thread instead of deadlocking.
  void ParallelRun(std::int64_t num_tasks,
                   const std::function<void(std::int64_t)>& task);

 private:
  // One fork-join batch; lives on the ParallelRun caller's stack.
  struct Batch {
    const std::function<void(std::int64_t)>* task = nullptr;
    std::int64_t num_tasks = 0;
    std::atomic<std::int64_t> next{0};       // next index to claim
    std::atomic<std::int64_t> completed{0};  // indices drained (run or skipped)
    std::atomic<bool> cancelled{false};      // set after the first exception
    std::exception_ptr error;                // guarded by error_mutex
    std::mutex error_mutex;
  };

  void WorkerLoop();
  // Claims and runs indices from `batch` until none remain.
  static void DrainBatch(Batch* batch);

  int num_threads_ = 1;
  std::mutex mutex_;
  std::condition_variable work_cv_;  // workers wait here for a new batch
  std::condition_variable done_cv_;  // the caller waits here for completion
  Batch* batch_ = nullptr;           // guarded by mutex_
  std::uint64_t generation_ = 0;     // guarded by mutex_; bumped per batch
  int active_workers_ = 0;           // guarded by mutex_
  bool shutdown_ = false;            // guarded by mutex_
  std::mutex run_mutex_;             // serializes ParallelRun callers
  std::vector<std::thread> workers_;
};

}  // namespace exec
}  // namespace linbp

#endif  // LINBP_EXEC_THREAD_POOL_H_
