#include "src/exec/exec_context.h"

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "src/util/check.h"

namespace linbp {
namespace exec {

int ParseThreadsSpec(const char* spec) {
  if (spec == nullptr || *spec == '\0') return 1;
  char* end = nullptr;
  const long long value = std::strtoll(spec, &end, 10);
  if (end == spec || *end != '\0') return 1;
  if (value == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }
  if (value < 1) return 1;
  return value > kMaxThreads ? kMaxThreads : static_cast<int>(value);
}

ExecContext ExecContext::WithThreads(int threads) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : static_cast<int>(hw);
  }
  threads = std::min(threads, kMaxThreads);
  ExecContext ctx;
  if (threads > 1) ctx.pool_ = std::make_shared<ThreadPool>(threads);
  return ctx;
}

const ExecContext& ExecContext::Default() {
  static const ExecContext* context = new ExecContext(
      ExecContext::WithThreads(ParseThreadsSpec(std::getenv("LINBP_THREADS"))));
  return *context;
}

std::int64_t ExecContext::NumChunks(std::int64_t n,
                                    std::int64_t min_grain) const {
  if (n <= 0) return 1;
  const std::int64_t by_grain = n / std::max<std::int64_t>(1, min_grain);
  return std::clamp<std::int64_t>(by_grain, 1,
                                  static_cast<std::int64_t>(threads()));
}

void ExecContext::RunChunks(
    std::int64_t n, std::int64_t num_chunks,
    const std::function<void(std::int64_t, std::int64_t, std::int64_t)>& body)
    const {
  if (n <= 0) return;
  LINBP_CHECK(num_chunks >= 1);
  num_chunks = std::min(num_chunks, n);
  // Deterministic static chunking: chunk c covers [c*n/num_chunks,
  // (c+1)*n/num_chunks), which tiles [0, n) with sizes differing by <= 1.
  auto run_chunk = [&](std::int64_t c) {
    const std::int64_t begin = c * n / num_chunks;
    const std::int64_t end = (c + 1) * n / num_chunks;
    body(c, begin, end);
  };
  if (pool_ == nullptr || num_chunks <= 1) {
    for (std::int64_t c = 0; c < num_chunks; ++c) run_chunk(c);
    return;
  }
  pool_->ParallelRun(num_chunks, run_chunk);
}

void ExecContext::ParallelFor(
    std::int64_t begin, std::int64_t end, std::int64_t min_grain,
    const std::function<void(std::int64_t, std::int64_t)>& body) const {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  RunChunks(n, NumChunks(n, min_grain),
            [&](std::int64_t /*chunk*/, std::int64_t lo, std::int64_t hi) {
              body(begin + lo, begin + hi);
            });
}

void ExecContext::RunBlocks(
    std::int64_t num_blocks,
    const std::function<void(std::int64_t)>& body) const {
  if (num_blocks <= 0) return;
  if (pool_ == nullptr || num_blocks == 1) {
    for (std::int64_t b = 0; b < num_blocks; ++b) body(b);
    return;
  }
  pool_->ParallelRun(num_blocks, body);
}

}  // namespace exec
}  // namespace linbp
