// Double-buffered producer/consumer pipelining.
//
// Out-of-core kernels alternate between I/O (read + deserialize the next
// row block) and compute (apply the current block). Running them strictly
// in sequence leaves the CPU idle during every read; running all blocks
// concurrently defeats the point of streaming (every block resident at
// once). RunDoubleBuffered is the narrow middle: at most TWO items are
// ever alive — the one being consumed and the one being produced — and
// with `overlap` set the production of item i+1 runs on a dedicated
// thread while item i is consumed, so I/O and compute overlap without
// touching the fork-join ThreadPool (whose batches serialize, and whose
// workers the consumer is free to use for its own parallelism).
//
// Item lifecycle per slot: the slot is reset to a default-constructed
// Item BEFORE the next production starts, so a caller counting live
// resources in Item's constructor/destructor observes at most two items
// at any instant.

#ifndef LINBP_EXEC_PIPELINE_H_
#define LINBP_EXEC_PIPELINE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "src/obs/obs.h"
#include "src/util/timer.h"

namespace linbp {
namespace exec {

/// Runs produce(0), then for each i: consume(i) while produce(i + 1) runs
/// (on a separate thread iff `overlap`; inline otherwise). Production and
/// consumption of DIFFERENT items must be safe to run concurrently when
/// `overlap` is set. Either callback returning false stops the pipeline;
/// the first failure's message is left in *error (callbacks write their
/// message into the passed string). Exceptions from consume propagate
/// after the in-flight producer thread is joined. Returns true when every
/// item was produced and consumed.
template <typename Item>
bool RunDoubleBuffered(
    std::int64_t num_items, bool overlap,
    const std::function<bool(std::int64_t, Item*, std::string*)>& produce,
    const std::function<bool(std::int64_t, Item*, std::string*)>& consume,
    std::string* error) {
  if (num_items <= 0) return true;
  Item slots[2];
  // Stall accounting: time the consumer spends blocked waiting for
  // production — the initial produce(0), inline production when not
  // overlapping, and the tail of a prefetch that outlived its overlapped
  // compute. This is exactly the time a faster producer would win back.
  {
    obs::ScopedSpan span("pipeline_initial_produce");
    WallTimer stall_timer;
    const bool ok = produce(0, &slots[0], error);
    LINBP_OBS_HISTOGRAM_OBSERVE("pipeline_prefetch_stall_seconds",
                                stall_timer.Seconds());
    if (!ok) return false;
  }
  for (std::int64_t i = 0; i < num_items; ++i) {
    Item& current = slots[i % 2];
    Item& next = slots[(i + 1) % 2];
    bool next_ok = true;
    std::string next_error;
    std::thread prefetch;
    if (i + 1 < num_items) {
      // Release whatever the slot held (item i - 1, already consumed)
      // before the new item comes alive: peak liveness stays at two.
      next = Item();
      if (overlap) {
        prefetch = std::thread(
            [&, i] { next_ok = produce(i + 1, &next, &next_error); });
      } else {
        WallTimer stall_timer;
        next_ok = produce(i + 1, &next, &next_error);
        LINBP_OBS_HISTOGRAM_OBSERVE("pipeline_prefetch_stall_seconds",
                                    stall_timer.Seconds());
      }
    }
    bool consumed = false;
    std::string consume_error;
    try {
      consumed = consume(i, &current, &consume_error);
    } catch (...) {
      if (prefetch.joinable()) prefetch.join();
      throw;
    }
    current = Item();  // done with item i; drop it before waiting on I/O
    if (prefetch.joinable()) {
      WallTimer stall_timer;
      prefetch.join();
      LINBP_OBS_HISTOGRAM_OBSERVE("pipeline_prefetch_stall_seconds",
                                  stall_timer.Seconds());
    }
    LINBP_OBS_COUNTER_ADD("pipeline_items_total", 1);
    if (!consumed) {
      *error = consume_error;
      return false;
    }
    if (!next_ok) {
      *error = next_error;
      return false;
    }
  }
  return true;
}

}  // namespace exec
}  // namespace linbp

#endif  // LINBP_EXEC_PIPELINE_H_
