#include "src/exec/row_partition.h"

#include <algorithm>

#include "src/util/check.h"

namespace linbp {
namespace exec {

RowPartition RowPartition::Uniform(std::int64_t num_rows,
                                   std::int64_t max_blocks) {
  LINBP_CHECK(num_rows >= 0 && max_blocks >= 1);
  const std::int64_t blocks = std::max<std::int64_t>(
      1, std::min(max_blocks, num_rows));
  std::vector<std::int64_t> bounds(blocks + 1);
  for (std::int64_t b = 0; b <= blocks; ++b) {
    bounds[b] = b * num_rows / blocks;
  }
  return RowPartition(std::move(bounds));
}

RowPartition RowPartition::NnzBalanced(
    const std::vector<std::int64_t>& row_ptr, std::int64_t max_blocks) {
  LINBP_CHECK(!row_ptr.empty() && max_blocks >= 1);
  const std::int64_t num_rows = static_cast<std::int64_t>(row_ptr.size()) - 1;
  const std::int64_t total = row_ptr[num_rows];
  if (total == 0) return Uniform(num_rows, max_blocks);
  const std::int64_t blocks = std::max<std::int64_t>(
      1, std::min(max_blocks, num_rows));

  // Cut block b at the first row whose cumulative nnz reaches the ideal
  // prefix (b+1) * total / blocks, always advancing at least one row so no
  // block is empty.
  std::vector<std::int64_t> bounds;
  bounds.reserve(blocks + 1);
  bounds.push_back(0);
  std::int64_t row = 0;
  for (std::int64_t b = 0; b < blocks && row < num_rows; ++b) {
    const std::int64_t target = (b + 1) * total / blocks;
    std::int64_t cut = row + 1;
    // Rows left must stay >= blocks remaining after this one.
    const std::int64_t max_cut = num_rows - (blocks - 1 - b);
    while (cut < max_cut && row_ptr[cut] < target) ++cut;
    bounds.push_back(cut);
    row = cut;
  }
  bounds.back() = num_rows;
  return RowPartition(std::move(bounds));
}

}  // namespace exec
}  // namespace linbp
