// Static partitions of a CSR row space into contiguous blocks.
//
// Parallel sparse kernels split rows, not entries, so a balanced split
// must account for the nonzeros per row: on skewed graphs a uniform row
// split leaves one thread with most of the work. NnzBalanced() sweeps the
// CSR row_ptr once and cuts blocks of approximately equal nonzero count.
// The partition is a pure function of (row_ptr, max_blocks), which keeps
// parallel runs deterministic — and is the seam future sharded / out-of-
// core backends will reuse to assign row ranges to shards.

#ifndef LINBP_EXEC_ROW_PARTITION_H_
#define LINBP_EXEC_ROW_PARTITION_H_

#include <cstdint>
#include <vector>

namespace linbp {
namespace exec {

/// An ordered list of contiguous row blocks [begin(b), end(b)) that
/// exactly tiles [0, num_rows).
class RowPartition {
 public:
  /// At most `max_blocks` blocks of (almost) equal row count.
  static RowPartition Uniform(std::int64_t num_rows, std::int64_t max_blocks);

  /// At most `max_blocks` blocks of approximately equal stored-entry
  /// count, computed from a CSR row_ptr array (size num_rows + 1,
  /// monotone). Every block holds at least one row; fewer blocks are
  /// returned when rows run out.
  static RowPartition NnzBalanced(const std::vector<std::int64_t>& row_ptr,
                                  std::int64_t max_blocks);

  std::int64_t num_blocks() const {
    return static_cast<std::int64_t>(bounds_.size()) - 1;
  }
  std::int64_t begin(std::int64_t block) const { return bounds_[block]; }
  std::int64_t end(std::int64_t block) const { return bounds_[block + 1]; }

  /// Block boundaries: bounds()[b] .. bounds()[b+1] is block b.
  const std::vector<std::int64_t>& bounds() const { return bounds_; }

 private:
  explicit RowPartition(std::vector<std::int64_t> bounds)
      : bounds_(std::move(bounds)) {}

  std::vector<std::int64_t> bounds_;  // size num_blocks + 1, starts at 0
};

}  // namespace exec
}  // namespace linbp

#endif  // LINBP_EXEC_ROW_PARTITION_H_
