#include "src/exec/thread_pool.h"

#include <algorithm>

namespace linbp {
namespace exec {
namespace {

// True while the current thread is executing tasks of some batch; nested
// ParallelRun calls fall back to serial execution instead of deadlocking
// on run_mutex_ / the claim counter.
thread_local bool t_inside_batch = false;

void RunSerial(std::int64_t num_tasks,
               const std::function<void(std::int64_t)>& task) {
  for (std::int64_t i = 0; i < num_tasks; ++i) task(i);
}

}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(num_threads_ - 1);
  try {
    for (int t = 0; t < num_threads_ - 1; ++t) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  } catch (...) {
    // Thread creation failed (resource limits): shut down the workers
    // that did start, then surface the error as a catchable exception
    // instead of std::terminate from joinable-thread destructors.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& w : workers_) w.join();
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::DrainBatch(Batch* batch) {
  t_inside_batch = true;
  for (;;) {
    const std::int64_t i = batch->next.fetch_add(1);
    if (i >= batch->num_tasks) break;
    if (!batch->cancelled.load()) {
      try {
        (*batch->task)(i);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(batch->error_mutex);
          if (!batch->error) batch->error = std::current_exception();
        }
        batch->cancelled.store(true);
      }
    }
    batch->completed.fetch_add(1);
  }
  t_inside_batch = false;
}

void ThreadPool::WorkerLoop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    Batch* batch = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || (batch_ != nullptr && generation_ != seen_generation);
      });
      if (shutdown_) return;
      seen_generation = generation_;
      batch = batch_;
      ++active_workers_;
    }
    DrainBatch(batch);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_workers_;
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::ParallelRun(std::int64_t num_tasks,
                             const std::function<void(std::int64_t)>& task) {
  if (num_tasks <= 0) return;
  if (num_threads_ <= 1 || num_tasks == 1 || t_inside_batch) {
    RunSerial(num_tasks, task);
    return;
  }

  std::lock_guard<std::mutex> run_lock(run_mutex_);
  Batch batch;
  batch.task = &task;
  batch.num_tasks = num_tasks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch_ = &batch;
    ++generation_;
  }
  work_cv_.notify_all();

  DrainBatch(&batch);

  // Wait until every index was drained AND every worker left DrainBatch;
  // the latter keeps the stack-allocated batch alive for stragglers that
  // claimed an out-of-range index.
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] {
      return batch.completed.load() == batch.num_tasks && active_workers_ == 0;
    });
    batch_ = nullptr;
  }
  if (batch.error) std::rethrow_exception(batch.error);
}

}  // namespace exec
}  // namespace linbp
