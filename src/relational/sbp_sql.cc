#include "src/relational/sbp_sql.h"

#include <algorithm>
#include <utility>

#include "src/relational/ops.h"
#include "src/util/check.h"

namespace linbp {
namespace {

// (v, g) table from a (v)-keyed table plus a constant geodesic number.
Table WithConstantGeodesic(const Table& nodes, std::int64_t g) {
  return WithComputedIntColumn(
      nodes, "g", [g](const Table&, std::int64_t) { return g; });
}

}  // namespace

SbpSql::SbpSql(Table a, Table e, Table h)
    : a_(std::move(a)),
      h_(std::move(h)),
      g_({"v", "g"}, {ColumnType::kInt, ColumnType::kInt}),
      b_({"v", "c", "b"},
         {ColumnType::kInt, ColumnType::kInt, ColumnType::kDouble}) {
  // Algorithm 2, line 1: G(v, 0) :- E(v, _, _);  B(v, c, b) :- E(v, c, b).
  g_ = WithConstantGeodesic(DistinctKeys(e, {"v"}), 0);
  UnionAllInPlace(&b_, e);

  for (std::int64_t i = 1;; ++i) {
    // Line 4: G(t, i) :- G(s, i-1), A(s, t, _), not G(t, _).
    const Table frontier = Rename(
        Project(Filter(g_,
                       [i](const Table& t, std::int64_t r) {
                         return t.IntAt(t.ColumnIndex("g"), r) == i - 1;
                       }),
                {"v"}),
        {"v"}, {"s"});
    if (frontier.num_rows() == 0) break;
    const Table reached =
        DistinctKeys(EquiJoin(frontier, a_, {"s"}, {"s"}), {"t"});
    const Table fresh = AntiJoin(reached, g_, {"t"}, {"v"});
    if (fresh.num_rows() == 0) break;
    const Table gn = WithConstantGeodesic(Rename(fresh, {"t"}, {"v"}), i);
    UnionAllInPlace(&g_, gn);
    // Line 5: beliefs of the new nodes from parents at level i-1.
    RecomputeBeliefsFor(gn);
  }
}

void SbpSql::RecomputeBeliefsFor(const Table& frontier) {
  if (frontier.num_rows() == 0) return;
  // Edges into the target nodes, annotated with the parent's geodesic g and
  // the target's geodesic t_g, keeping geodesic-increasing edges only:
  // B(t, c2, sum(w*b*h)) :- Gn(t, gt), A(s, t, w), B(s, c1, b),
  //                         G(s, gt - 1), H(c1, c2, h).
  const Table into_targets = SemiJoin(a_, frontier, {"t"}, {"v"});
  const Table with_parent_g = EquiJoin(into_targets, g_, {"s"}, {"v"});
  const Table with_target_g =
      EquiJoin(with_parent_g, frontier, {"t"}, {"v"}, "t_");
  const Table geodesic_edges =
      Filter(with_target_g, [](const Table& t, std::int64_t r) {
        return t.IntAt(t.ColumnIndex("g"), r) ==
               t.IntAt(t.ColumnIndex("t_g"), r) - 1;
      });
  const Table with_beliefs = EquiJoin(geodesic_edges, b_, {"s"}, {"v"});
  const Table with_coupling = EquiJoin(with_beliefs, h_, {"c"}, {"c1"});
  const Table product = WithComputedDoubleColumn(
      with_coupling, "p", [](const Table& t, std::int64_t r) {
        return t.DoubleAt(t.ColumnIndex("w"), r) *
               t.DoubleAt(t.ColumnIndex("b"), r) *
               t.DoubleAt(t.ColumnIndex("h"), r);
      });
  const Table bn = Rename(
      GroupBy(product, {"t", "c2"}, {{AggregateOp::kSum, "p", "b"}}),
      {"t", "c2"}, {"v", "c"});
  // Replace the beliefs of every frontier node (a recomputed node with no
  // contributing parents must lose its stale rows, so delete by frontier,
  // not by bn).
  b_ = AntiJoin(b_, frontier, {"v"}, {"v"});
  UnionAllInPlace(&b_, bn);
}

void SbpSql::AddExplicitBeliefs(const Table& en) {
  // Lines 1-2: Gn(v, 0) and Bn(v, c, b) from En, upserted into G and B.
  Table gn = WithConstantGeodesic(DistinctKeys(en, {"v"}), 0);
  Upsert(&g_, gn, {"v"});
  b_ = AntiJoin(b_, en, {"v"}, {"v"});
  UnionAllInPlace(&b_, en);

  for (std::int64_t i = 1;; ++i) {
    // Line 5: Gn(t, i) :- Gn(s, i-1), A(s, t, _), not (G(t, gt), gt < i).
    const Table frontier = Rename(Project(gn, {"v"}), {"v"}, {"s"});
    const Table reached =
        DistinctKeys(EquiJoin(frontier, a_, {"s"}, {"s"}), {"t"});
    const Table settled = Filter(g_, [i](const Table& t, std::int64_t r) {
      return t.IntAt(t.ColumnIndex("g"), r) < i;
    });
    const Table next = AntiJoin(reached, settled, {"t"}, {"v"});
    if (next.num_rows() == 0) break;
    gn = WithConstantGeodesic(Rename(next, {"t"}, {"v"}), i);
    Upsert(&g_, gn, {"v"});
    // Line 6: recompute beliefs of the updated nodes.
    RecomputeBeliefsFor(gn);
  }
}

void SbpSql::AddEdges(const Table& an) {
  // Line 1: insert both directions into A.
  Table directed = an;
  const Table reversed = Rename(an, {"s", "t"}, {"t_orig", "s_orig"});
  {
    Table swapped = Rename(reversed, {"s_orig", "t_orig"}, {"s", "t"});
    UnionAllInPlace(&directed, Project(swapped, {"s", "t", "w"}));
  }
  UnionAllInPlace(&a_, directed);

  // Line 2 (corrected guard, see DESIGN.md): seed nodes are the targets of
  // new edges whose source is closer to explicit beliefs:
  //   Gn(t, min(gs + 1)) :- G(s, gs), An(s, t, _), not (G(t, gt), gt <= gs).
  Table frontier = directed;  // (s, t, w) rows; sources annotated below
  for (std::int64_t round = 0;; ++round) {
    // Annotate sources with gs. (First round: the new edges; later rounds:
    // all out-edges of the previously updated nodes.)
    const Table with_gs = EquiJoin(frontier, g_, {"s"}, {"v"});
    if (with_gs.num_rows() == 0) break;
    // Split targets by reachability to evaluate "gt <= gs or missing".
    const Table matched = EquiJoin(with_gs, g_, {"t"}, {"v"}, "t_");
    const Table improving =
        Filter(matched, [](const Table& t, std::int64_t r) {
          return t.IntAt(t.ColumnIndex("t_g"), r) >
                 t.IntAt(t.ColumnIndex("g"), r);
        });
    const Table unreachable = AntiJoin(with_gs, g_, {"t"}, {"v"});
    // Candidate geodesic numbers gs + 1, minimized per target.
    auto candidate = [](const Table& t, std::int64_t r) {
      return t.IntAt(t.ColumnIndex("g"), r) + 1;
    };
    Table candidates = Project(
        WithComputedIntColumn(improving, "gn", candidate), {"t", "gn"});
    UnionAllInPlace(
        &candidates,
        Project(WithComputedIntColumn(unreachable, "gn", candidate),
                {"t", "gn"}));
    if (candidates.num_rows() == 0) break;
    Table gn_raw =
        GroupBy(candidates, {"t"}, {{AggregateOp::kMin, "gn", "gn"}});
    // Final geodesic: min(candidate, existing gt) — an equal-level wave
    // keeps gt and only refreshes beliefs.
    const Table known = EquiJoin(gn_raw, g_, {"t"}, {"v"}, "old_");
    Table gn = Project(
        Rename(WithComputedIntColumn(
                   known, "gmin",
                   [](const Table& t, std::int64_t r) {
                     return std::min(t.IntAt(t.ColumnIndex("gn"), r),
                                     t.IntAt(t.ColumnIndex("g"), r));
                   }),
               {"t"}, {"v"}),
        {"v", "gmin"});
    gn = Rename(gn, {"gmin"}, {"g"});
    {
      const Table fresh = AntiJoin(gn_raw, g_, {"t"}, {"v"});
      UnionAllInPlace(
          &gn, Rename(Project(fresh, {"t", "gn"}), {"t", "gn"}, {"v", "g"}));
    }
    Upsert(&g_, gn, {"v"});
    RecomputeBeliefsFor(gn);
    // Next wave: all out-edges of the nodes just updated.
    frontier = SemiJoin(a_, Rename(gn, {"v"}, {"s"}), {"s"}, {"s"});
  }
}

}  // namespace linbp
