// Relational operators over Table.
//
// Enough of a query engine to express Algorithms 1-4 of the paper as
// operator plans: hash equi-joins on up to two integer key columns,
// group-by with sum/min/count aggregates, anti-/semi-joins (the paper's
// "not exists" and "except" clauses), filters, projections, union-all, and
// keyed upserts (the paper's "!" notation, Fig. 9d).

#ifndef LINBP_RELATIONAL_OPS_H_
#define LINBP_RELATIONAL_OPS_H_

#include <functional>
#include <string>
#include <vector>

#include "src/relational/table.h"

namespace linbp {

/// Hash equi-join. Keys are int columns (1 or 2 of them). The output schema
/// is all left columns followed by all non-key right columns; clashing
/// right column names get the `right_prefix` prepended.
Table EquiJoin(const Table& left, const Table& right,
               const std::vector<std::string>& left_keys,
               const std::vector<std::string>& right_keys,
               const std::string& right_prefix = "r_");

/// Rows of `left` with at least one key match in `right`.
Table SemiJoin(const Table& left, const Table& right,
               const std::vector<std::string>& left_keys,
               const std::vector<std::string>& right_keys);

/// Rows of `left` with no key match in `right` (NOT EXISTS).
Table AntiJoin(const Table& left, const Table& right,
               const std::vector<std::string>& left_keys,
               const std::vector<std::string>& right_keys);

/// Aggregate function for GroupBy.
enum class AggregateOp { kSum, kMin, kCount };

/// One aggregate: `input` is a column of the source table (ignored for
/// kCount), `output` the name of the result column.
struct Aggregate {
  AggregateOp op;
  std::string input;
  std::string output;
};

/// Groups by int key columns and evaluates aggregates. kSum/kMin keep the
/// input column's type; kCount yields an int column.
Table GroupBy(const Table& table, const std::vector<std::string>& keys,
              const std::vector<Aggregate>& aggregates);

/// Keeps rows for which `predicate(table, row)` returns true.
Table Filter(const Table& table,
             const std::function<bool(const Table&, std::int64_t)>& predicate);

/// Keeps only `columns`, in the given order.
Table Project(const Table& table, const std::vector<std::string>& columns);

/// Renames columns (parallel old/new vectors).
Table Rename(const Table& table, const std::vector<std::string>& from,
             const std::vector<std::string>& to);

/// Appends all rows of `source` (identical schema) to `dest`.
void UnionAllInPlace(Table* dest, const Table& source);

/// Appends a double column computed row-by-row from existing columns.
Table WithComputedDoubleColumn(
    const Table& table, const std::string& name,
    const std::function<double(const Table&, std::int64_t)>& fn);

/// Appends an int column computed row-by-row from existing columns.
Table WithComputedIntColumn(
    const Table& table, const std::string& name,
    const std::function<std::int64_t(const Table&, std::int64_t)>& fn);

/// Deduplicates rows on the given int key columns (keeps first occurrence),
/// projecting to exactly those columns.
Table DistinctKeys(const Table& table, const std::vector<std::string>& keys);

/// The paper's "!" upsert (Fig. 9d): deletes every row of `target` whose
/// key appears in `source`, then inserts all rows of `source`. Schemas must
/// match; keys are int columns.
void Upsert(Table* target, const Table& source,
            const std::vector<std::string>& keys);

/// Number of distinct key combinations in the table.
std::int64_t CountDistinctKeys(const Table& table,
                               const std::vector<std::string>& keys);

}  // namespace linbp

#endif  // LINBP_RELATIONAL_OPS_H_
