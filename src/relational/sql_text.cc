#include "src/relational/sql_text.h"

namespace linbp {

std::string SchemaSql() {
  return R"sql(CREATE TABLE A  (s  BIGINT, t  BIGINT, w DOUBLE PRECISION);
CREATE TABLE E  (v  BIGINT, c  BIGINT, b DOUBLE PRECISION);
CREATE TABLE H  (c1 BIGINT, c2 BIGINT, h DOUBLE PRECISION);
CREATE TABLE D  (v  BIGINT, d  DOUBLE PRECISION);
CREATE TABLE H2 (c1 BIGINT, c2 BIGINT, h DOUBLE PRECISION);
CREATE TABLE B  (v  BIGINT, c  BIGINT, b DOUBLE PRECISION);
CREATE TABLE G  (v  BIGINT, g  BIGINT);
)sql";
}

std::string CouplingSquaredSql() {
  // Eq. 20 / Fig. 9a.
  return R"sql(INSERT INTO H2
SELECT H1.c1, H2.c2, SUM(H1.h * H2.h) AS h
FROM H AS H1, H AS H2
WHERE H1.c2 = H2.c1
GROUP BY H1.c1, H2.c2;
)sql";
}

std::string DegreeSql() {
  return R"sql(INSERT INTO D
SELECT A.s AS v, SUM(A.w * A.w) AS d
FROM A
GROUP BY A.s;
)sql";
}

std::string LinBpIterationSql(bool with_echo) {
  // Algorithm 1, lines 3-4 (footnote 15: UNION ALL + GROUP BY).
  std::string sql = R"sql(CREATE TEMP TABLE V1 AS
SELECT A.t AS v, H.c2 AS c, SUM(A.w * B.b * H.h) AS b
FROM A, B, H
WHERE A.s = B.v AND B.c = H.c1
GROUP BY A.t, H.c2;
)sql";
  if (with_echo) {
    sql += R"sql(
CREATE TEMP TABLE V2 AS
SELECT D.v, H2.c2 AS c, SUM(D.d * B.b * H2.h) AS b
FROM D, B, H2
WHERE D.v = B.v AND B.c = H2.c1
GROUP BY D.v, H2.c2;
)sql";
  }
  sql += R"sql(
DELETE FROM B;
INSERT INTO B
SELECT u.v, u.c, SUM(u.b) AS b
FROM (
  SELECT v, c, b FROM E
  UNION ALL
  SELECT v, c, b FROM V1
)sql";
  if (with_echo) {
    sql += R"sql(  UNION ALL
  SELECT v, c, -b FROM V2
)sql";
  }
  sql += R"sql() AS u
GROUP BY u.v, u.c;

DROP TABLE V1;
)sql";
  if (with_echo) sql += "DROP TABLE V2;\n";
  return sql;
}

std::string TopBeliefSql() {
  // Fig. 9b.
  return R"sql(SELECT B.v, B.c
FROM B,
     (SELECT B2.v, MAX(B2.b) AS b
      FROM B AS B2
      GROUP BY B2.v) AS X
WHERE B.v = X.v AND B.b = X.b;
)sql";
}

std::string SbpInitializationSql() {
  // Algorithm 2, line 1.
  return R"sql(INSERT INTO G
SELECT DISTINCT E.v, 0 AS g FROM E;

INSERT INTO B
SELECT v, c, b FROM E;
)sql";
}

std::string SbpLevelSql() {
  // Algorithm 2, lines 4-5 for level :i (Fig. 9c shows i = 1). The host
  // driver binds :i and loops until no rows are inserted into G.
  return R"sql(INSERT INTO G
SELECT DISTINCT A.t AS v, :i AS g
FROM G, A
WHERE G.v = A.s AND G.g = :i - 1
  AND A.t NOT IN (SELECT G2.v FROM G AS G2);

INSERT INTO B
SELECT Gt.v, H.c2 AS c, SUM(A.w * B.b * H.h) AS b
FROM G AS Gt, A, B, G AS Gs, H
WHERE Gt.g = :i
  AND A.t = Gt.v AND A.s = Gs.v AND Gs.g = :i - 1
  AND B.v = A.s AND B.c = H.c1
GROUP BY Gt.v, H.c2;
)sql";
}

std::string UpsertBeliefsSql() {
  // Fig. 9d: the "!B(v,c,b) :- Bn(v,c,b)" upsert.
  return R"sql(DELETE FROM B
WHERE v IN (SELECT Bn.v FROM Bn);

INSERT INTO B
SELECT * FROM Bn;
)sql";
}

}  // namespace linbp
