// Rendering the paper's algorithms as actual SQL text (Fig. 9 / Sect. 5.3).
//
// The authors published their LinBP/SBP implementations as PostgreSQL
// scripts; this module regenerates equivalent SQL from the same schemas so
// the operator plans in linbp_sql.cc / sbp_sql.cc can be audited against a
// real DBMS. The emitted statements use only standard joins, aggregates,
// UNION ALL, and NOT EXISTS (plus a driver loop the host has to provide,
// exactly as in the paper).

#ifndef LINBP_RELATIONAL_SQL_TEXT_H_
#define LINBP_RELATIONAL_SQL_TEXT_H_

#include <string>

namespace linbp {

/// CREATE TABLE statements for the paper's schema: A(s,t,w), E(v,c,b),
/// H(c1,c2,h), plus derived D(v,d) and H2(c1,c2,h) and result B(v,c,b).
std::string SchemaSql();

/// Eq. 20 / Fig. 9a: materializing H2 = Hhat^2.
std::string CouplingSquaredSql();

/// The degree table D(s, sum(w*w)) of Sect. 5.3.
std::string DegreeSql();

/// One LinBP iteration (Algorithm 1, lines 3-4): V1 = A B H, V2 = D B H2,
/// recombined with E via UNION ALL + GROUP BY (footnote 15). With
/// `with_echo` false the V2 branch is omitted (LinBP*).
std::string LinBpIterationSql(bool with_echo = true);

/// Fig. 9b: the top-belief query over B.
std::string TopBeliefSql();

/// Algorithm 2 as SQL: the initialization plus the per-level loop body
/// (Fig. 9c shows the geodesic-frontier insert for i = 1).
std::string SbpInitializationSql();
std::string SbpLevelSql();

/// Fig. 9d: the upsert ("!B") pattern used by the incremental algorithms.
std::string UpsertBeliefsSql();

}  // namespace linbp

#endif  // LINBP_RELATIONAL_SQL_TEXT_H_
