#include "src/relational/table.h"

#include <sstream>
#include <unordered_set>

#include "src/util/check.h"

namespace linbp {

Table::Table(std::vector<std::string> names, std::vector<ColumnType> types)
    : names_(std::move(names)), types_(std::move(types)) {
  LINBP_CHECK(names_.size() == types_.size());
  std::unordered_set<std::string> seen;
  for (const auto& name : names_) {
    LINBP_CHECK_MSG(seen.insert(name).second, "duplicate column name");
  }
  columns_.resize(names_.size());
  for (std::size_t c = 0; c < names_.size(); ++c) {
    columns_[c].type = types_[c];
  }
}

std::int64_t Table::ColumnIndex(const std::string& name) const {
  for (std::size_t c = 0; c < names_.size(); ++c) {
    if (names_[c] == name) return static_cast<std::int64_t>(c);
  }
  LINBP_CHECK_MSG(false, name.c_str());
  return -1;
}

bool Table::HasColumn(const std::string& name) const {
  for (const auto& n : names_) {
    if (n == name) return true;
  }
  return false;
}

const std::vector<std::int64_t>& Table::IntColumn(std::int64_t index) const {
  LINBP_CHECK(types_[index] == ColumnType::kInt);
  return columns_[index].ints;
}

const std::vector<double>& Table::DoubleColumn(std::int64_t index) const {
  LINBP_CHECK(types_[index] == ColumnType::kDouble);
  return columns_[index].doubles;
}

void Table::AppendRow(const std::vector<Value>& values) {
  LINBP_CHECK(values.size() == names_.size());
  for (std::size_t c = 0; c < values.size(); ++c) {
    LINBP_CHECK(values[c].type == types_[c]);
    if (types_[c] == ColumnType::kInt) {
      columns_[c].ints.push_back(values[c].int_value);
    } else {
      columns_[c].doubles.push_back(values[c].double_value);
    }
  }
  ++num_rows_;
}

void Table::AppendRowFrom(const Table& source, std::int64_t row) {
  LINBP_CHECK(source.num_columns() == num_columns());
  LINBP_CHECK(row >= 0 && row < source.num_rows());
  for (std::size_t c = 0; c < names_.size(); ++c) {
    LINBP_CHECK(source.types_[c] == types_[c]);
    if (types_[c] == ColumnType::kInt) {
      columns_[c].ints.push_back(source.columns_[c].ints[row]);
    } else {
      columns_[c].doubles.push_back(source.columns_[c].doubles[row]);
    }
  }
  ++num_rows_;
}

void Table::Clear() {
  for (auto& column : columns_) {
    column.ints.clear();
    column.doubles.clear();
  }
  num_rows_ = 0;
}

void Table::Reserve(std::int64_t rows) {
  for (auto& column : columns_) {
    if (column.type == ColumnType::kInt) {
      column.ints.reserve(rows);
    } else {
      column.doubles.reserve(rows);
    }
  }
}

std::int64_t Table::IntAt(std::int64_t column, std::int64_t row) const {
  LINBP_CHECK(types_[column] == ColumnType::kInt);
  return columns_[column].ints[row];
}

double Table::DoubleAt(std::int64_t column, std::int64_t row) const {
  LINBP_CHECK(types_[column] == ColumnType::kDouble);
  return columns_[column].doubles[row];
}

std::string Table::ToString(std::int64_t max_rows) const {
  std::ostringstream out;
  for (std::size_t c = 0; c < names_.size(); ++c) {
    out << (c == 0 ? "" : " | ") << names_[c];
  }
  out << "  (" << num_rows_ << " rows)\n";
  const std::int64_t limit = std::min(num_rows_, max_rows);
  for (std::int64_t r = 0; r < limit; ++r) {
    for (std::size_t c = 0; c < names_.size(); ++c) {
      out << (c == 0 ? "" : " | ");
      if (types_[c] == ColumnType::kInt) {
        out << columns_[c].ints[r];
      } else {
        out << columns_[c].doubles[r];
      }
    }
    out << '\n';
  }
  if (limit < num_rows_) out << "...\n";
  return out.str();
}

std::vector<std::int64_t>* Table::MutableIntColumn(std::int64_t index) {
  LINBP_CHECK(types_[index] == ColumnType::kInt);
  return &columns_[index].ints;
}

std::vector<double>* Table::MutableDoubleColumn(std::int64_t index) {
  LINBP_CHECK(types_[index] == ColumnType::kDouble);
  return &columns_[index].doubles;
}

}  // namespace linbp
