#include "src/relational/linbp_sql.h"

#include "src/relational/ops.h"
#include "src/util/check.h"

namespace linbp {

Table MakeAdjacencyTable(const Graph& graph) {
  Table a({"s", "t", "w"},
          {ColumnType::kInt, ColumnType::kInt, ColumnType::kDouble});
  a.Reserve(graph.num_directed_edges());
  for (const Edge& e : graph.edges()) {
    a.AppendRow({Value::Int(e.u), Value::Int(e.v), Value::Double(e.weight)});
    a.AppendRow({Value::Int(e.v), Value::Int(e.u), Value::Double(e.weight)});
  }
  return a;
}

Table MakeBeliefTable(const DenseMatrix& residuals,
                      const std::vector<std::int64_t>& explicit_nodes) {
  Table e({"v", "c", "b"},
          {ColumnType::kInt, ColumnType::kInt, ColumnType::kDouble});
  for (const std::int64_t node : explicit_nodes) {
    for (std::int64_t c = 0; c < residuals.cols(); ++c) {
      const double b = residuals.At(node, c);
      if (b != 0.0) {
        e.AppendRow({Value::Int(node), Value::Int(c), Value::Double(b)});
      }
    }
  }
  return e;
}

Table MakeCouplingTable(const DenseMatrix& hhat) {
  Table h({"c1", "c2", "h"},
          {ColumnType::kInt, ColumnType::kInt, ColumnType::kDouble});
  for (std::int64_t i = 0; i < hhat.rows(); ++i) {
    for (std::int64_t j = 0; j < hhat.cols(); ++j) {
      h.AppendRow(
          {Value::Int(i), Value::Int(j), Value::Double(hhat.At(i, j))});
    }
  }
  return h;
}

DenseMatrix BeliefsFromTable(const Table& beliefs, std::int64_t num_nodes,
                             std::int64_t k) {
  DenseMatrix out(num_nodes, k);
  const auto& v = beliefs.IntColumn("v");
  const auto& c = beliefs.IntColumn("c");
  const auto& b = beliefs.DoubleColumn("b");
  for (std::int64_t r = 0; r < beliefs.num_rows(); ++r) {
    LINBP_CHECK(v[r] >= 0 && v[r] < num_nodes && c[r] >= 0 && c[r] < k);
    out.At(v[r], c[r]) += b[r];
  }
  return out;
}

Table DeriveDegreeTable(const Table& a) {
  // D(s, sum(w*w)) :- A(s, t, w).
  const Table squared = WithComputedDoubleColumn(
      a, "ww", [](const Table& t, std::int64_t r) {
        const double w = t.DoubleAt(t.ColumnIndex("w"), r);
        return w * w;
      });
  Table d = GroupBy(squared, {"s"}, {{AggregateOp::kSum, "ww", "d"}});
  return Rename(d, {"s"}, {"v"});
}

Table DeriveCouplingSquaredTable(const Table& h) {
  // H2(c1, c2, sum(h1*h2)) :- H(c1, c3, h1), H(c3, c2, h2)  (Eq. 20).
  const Table right = Rename(h, {"c1", "c2", "h"}, {"c3", "c2n", "h2"});
  const Table joined = EquiJoin(h, right, {"c2"}, {"c3"});
  const Table product = WithComputedDoubleColumn(
      joined, "hh", [](const Table& t, std::int64_t r) {
        return t.DoubleAt(t.ColumnIndex("h"), r) *
               t.DoubleAt(t.ColumnIndex("h2"), r);
      });
  Table h2 = GroupBy(product, {"c1", "c2n"}, {{AggregateOp::kSum, "hh", "h"}});
  return Rename(h2, {"c2n"}, {"c2"});
}

namespace {

// V1(t, c2, sum(w*b*h)) :- A(s,t,w), B(s,c1,b), H(c1,c2,h).
Table ComputeV1(const Table& a, const Table& b, const Table& h) {
  const Table ab = EquiJoin(a, b, {"s"}, {"v"});  // (s, t, w, c, b)
  const Table abh = EquiJoin(ab, h, {"c"}, {"c1"});  // + (c2, h)
  const Table product = WithComputedDoubleColumn(
      abh, "p", [](const Table& t, std::int64_t r) {
        return t.DoubleAt(t.ColumnIndex("w"), r) *
               t.DoubleAt(t.ColumnIndex("b"), r) *
               t.DoubleAt(t.ColumnIndex("h"), r);
      });
  Table v1 = GroupBy(product, {"t", "c2"}, {{AggregateOp::kSum, "p", "b"}});
  return Rename(v1, {"t", "c2"}, {"v", "c"});
}

// V2(s, c2, sum(d*b*h)) :- D(s,d), B(s,c1,b), H2(c1,c2,h).
Table ComputeV2(const Table& d, const Table& b, const Table& h2) {
  const Table db = EquiJoin(d, b, {"v"}, {"v"});  // (v, d, c, b)
  const Table dbh = EquiJoin(db, h2, {"c"}, {"c1"});  // + (c2, h)
  const Table product = WithComputedDoubleColumn(
      dbh, "p", [](const Table& t, std::int64_t r) {
        return t.DoubleAt(t.ColumnIndex("d"), r) *
               t.DoubleAt(t.ColumnIndex("b"), r) *
               t.DoubleAt(t.ColumnIndex("h"), r);
      });
  Table v2 = GroupBy(product, {"v", "c2"}, {{AggregateOp::kSum, "p", "b"}});
  return Rename(v2, {"c2"}, {"c"});
}

}  // namespace

Table RunLinBpSql(const Table& a, const Table& e, const Table& h,
                  int iterations, bool with_echo) {
  const Table d = DeriveDegreeTable(a);
  const Table h2 = DeriveCouplingSquaredTable(h);

  // B(v, c, b) :- E(v, c, b)  (line 1 of Algorithm 1).
  Table b = e;
  for (int it = 0; it < iterations; ++it) {
    const Table v1 = ComputeV1(a, b, h);
    // Recombine via union-all + group-by (footnote 15): B = E + V1 - V2.
    Table combined = e;
    UnionAllInPlace(&combined, v1);
    if (with_echo) {
      const Table v2 = ComputeV2(d, b, h2);
      const Table v2_negated = Project(
          Rename(WithComputedDoubleColumn(
                     v2, "nb",
                     [](const Table& t, std::int64_t r) {
                       return -t.DoubleAt(t.ColumnIndex("b"), r);
                     }),
                 {"b", "nb"}, {"b_old", "b"}),
          {"v", "c", "b"});
      UnionAllInPlace(&combined, v2_negated);
    }
    b = GroupBy(combined, {"v", "c"}, {{AggregateOp::kSum, "b", "b"}});
  }
  return b;
}

}  // namespace linbp
