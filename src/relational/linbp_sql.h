// LinBP as a relational operator plan (Algorithm 1 / Sect. 5.3).
//
// Schemas match the paper:
//   A(s, t, w)    weighted directed adjacency entries (both directions)
//   E(v, c, b)    explicit residual beliefs (only nonzero rows)
//   H(c1, c2, h)  residual coupling strengths
//   D(v, d)       weighted degrees, derived:  D(s, sum(w*w)) :- A(s, t, w)
//   H2(c1,c2,h)   Hhat^2, derived per Eq. 20
//   B(v, c, b)    final residual beliefs (rows absent = residual 0)
// Each iteration materializes V1 = A B H and V2 = D B H2 and recombines
// them with E via union-all + group-by (the paper's footnote 15).

#ifndef LINBP_RELATIONAL_LINBP_SQL_H_
#define LINBP_RELATIONAL_LINBP_SQL_H_

#include <vector>

#include "src/graph/graph.h"
#include "src/la/dense_matrix.h"
#include "src/relational/table.h"

namespace linbp {

/// A(s, t, w) from a graph (two rows per undirected edge).
Table MakeAdjacencyTable(const Graph& graph);

/// E(v, c, b) from residual beliefs: one row per nonzero entry of the
/// listed explicit nodes.
Table MakeBeliefTable(const DenseMatrix& residuals,
                      const std::vector<std::int64_t>& explicit_nodes);

/// H(c1, c2, h) from a (scaled) residual coupling matrix, all k*k entries.
Table MakeCouplingTable(const DenseMatrix& hhat);

/// Materializes a belief table back into a dense n x k residual matrix
/// (missing rows become zeros).
DenseMatrix BeliefsFromTable(const Table& beliefs, std::int64_t num_nodes,
                             std::int64_t k);

/// D(v, d) :- A(s, t, w), d = sum(w * w) group by s.
Table DeriveDegreeTable(const Table& a);

/// H2(c1, c2, h) :- H(c1, c3, h1), H(c3, c2, h2), h = sum(h1 * h2)  (Eq. 20).
Table DeriveCouplingSquaredTable(const Table& h);

/// Runs `iterations` sweeps of Algorithm 1 and returns B(v, c, b).
/// With `with_echo` false the V2 term is skipped (LinBP*).
Table RunLinBpSql(const Table& a, const Table& e, const Table& h,
                  int iterations, bool with_echo = true);

}  // namespace linbp

#endif  // LINBP_RELATIONAL_LINBP_SQL_H_
