// A tiny in-memory column-store table.
//
// Sections 5.3 and 6.3 of the paper implement LinBP and SBP in standard SQL
// (joins + aggregates + iteration) on PostgreSQL. This module provides the
// minimal relational substrate needed to express those algorithms as
// operator plans: named columns of int64 or double, plus the operators in
// src/relational/ops.h. Missing rows mean "residual zero", the same sparse
// encoding the paper's SQL schema uses.

#ifndef LINBP_RELATIONAL_TABLE_H_
#define LINBP_RELATIONAL_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace linbp {

/// Column type tag.
enum class ColumnType { kInt, kDouble };

/// One table cell used by row-wise construction helpers.
struct Value {
  ColumnType type;
  std::int64_t int_value;
  double double_value;

  static Value Int(std::int64_t v) { return {ColumnType::kInt, v, 0.0}; }
  static Value Double(double v) { return {ColumnType::kDouble, 0, v}; }
};

/// Column-oriented table with a fixed schema.
class Table {
 public:
  /// Creates an empty table; `names` and `types` must have equal size and
  /// names must be unique.
  Table(std::vector<std::string> names, std::vector<ColumnType> types);

  std::int64_t num_rows() const { return num_rows_; }
  std::int64_t num_columns() const {
    return static_cast<std::int64_t>(names_.size());
  }
  const std::vector<std::string>& column_names() const { return names_; }
  const std::vector<ColumnType>& column_types() const { return types_; }

  /// Index of a column by name; aborts if absent.
  std::int64_t ColumnIndex(const std::string& name) const;

  /// True if the table has a column with that name.
  bool HasColumn(const std::string& name) const;

  ColumnType TypeOf(const std::string& name) const {
    return types_[ColumnIndex(name)];
  }

  /// Raw column access (by index or name). Type must match.
  const std::vector<std::int64_t>& IntColumn(std::int64_t index) const;
  const std::vector<double>& DoubleColumn(std::int64_t index) const;
  const std::vector<std::int64_t>& IntColumn(const std::string& name) const {
    return IntColumn(ColumnIndex(name));
  }
  const std::vector<double>& DoubleColumn(const std::string& name) const {
    return DoubleColumn(ColumnIndex(name));
  }

  /// Appends one row; values must match the schema.
  void AppendRow(const std::vector<Value>& values);

  /// Appends row `row` of `source`, whose schema must match exactly.
  void AppendRowFrom(const Table& source, std::int64_t row);

  /// Removes all rows.
  void Clear();

  /// Pre-allocates capacity.
  void Reserve(std::int64_t rows);

  /// Cell accessors.
  std::int64_t IntAt(std::int64_t column, std::int64_t row) const;
  double DoubleAt(std::int64_t column, std::int64_t row) const;

  /// Renders the table for debugging / test failure messages.
  std::string ToString(std::int64_t max_rows = 50) const;

  /// Direct mutable column access for operators (same-type columns only).
  std::vector<std::int64_t>* MutableIntColumn(std::int64_t index);
  std::vector<double>* MutableDoubleColumn(std::int64_t index);
  void set_num_rows(std::int64_t rows) { num_rows_ = rows; }

 private:
  struct Column {
    ColumnType type;
    std::vector<std::int64_t> ints;
    std::vector<double> doubles;
  };

  std::vector<std::string> names_;
  std::vector<ColumnType> types_;
  std::vector<Column> columns_;
  std::int64_t num_rows_ = 0;
};

}  // namespace linbp

#endif  // LINBP_RELATIONAL_TABLE_H_
