#include "src/relational/ops.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "src/util/check.h"

namespace linbp {
namespace {

// Packs one or two int key columns into a single 64-bit hash key. Values
// must fit in 32 bits (node and class ids always do).
class KeyReader {
 public:
  KeyReader(const Table& table, const std::vector<std::string>& keys) {
    LINBP_CHECK_MSG(!keys.empty() && keys.size() <= 2,
                    "1 or 2 int key columns supported");
    for (const auto& key : keys) {
      columns_.push_back(&table.IntColumn(key));
    }
  }

  std::uint64_t At(std::int64_t row) const {
    std::uint64_t packed = 0;
    for (const auto* column : columns_) {
      const std::int64_t v = (*column)[row];
      LINBP_CHECK_MSG(v >= 0 && v <= 0x7fffffff, "key out of 32-bit range");
      packed = (packed << 32) | static_cast<std::uint64_t>(v);
    }
    return packed;
  }

 private:
  std::vector<const std::vector<std::int64_t>*> columns_;
};

// Schema of the join output and the mapping back to source columns.
struct JoinSchema {
  std::vector<std::string> names;
  std::vector<ColumnType> types;
  std::vector<std::int64_t> left_columns;   // indices into left
  std::vector<std::int64_t> right_columns;  // indices into right
};

JoinSchema MakeJoinSchema(const Table& left, const Table& right,
                          const std::vector<std::string>& right_keys,
                          const std::string& right_prefix) {
  JoinSchema schema;
  for (std::int64_t c = 0; c < left.num_columns(); ++c) {
    schema.names.push_back(left.column_names()[c]);
    schema.types.push_back(left.column_types()[c]);
    schema.left_columns.push_back(c);
  }
  for (std::int64_t c = 0; c < right.num_columns(); ++c) {
    const std::string& name = right.column_names()[c];
    if (std::find(right_keys.begin(), right_keys.end(), name) !=
        right_keys.end()) {
      continue;  // key columns equal the left side's; drop them
    }
    const bool clashes =
        std::find(schema.names.begin(), schema.names.end(), name) !=
        schema.names.end();
    schema.names.push_back(clashes ? right_prefix + name : name);
    schema.types.push_back(right.column_types()[c]);
    schema.right_columns.push_back(c);
  }
  return schema;
}

}  // namespace

Table EquiJoin(const Table& left, const Table& right,
               const std::vector<std::string>& left_keys,
               const std::vector<std::string>& right_keys,
               const std::string& right_prefix) {
  LINBP_CHECK(left_keys.size() == right_keys.size());
  const JoinSchema schema =
      MakeJoinSchema(left, right, right_keys, right_prefix);
  Table out(schema.names, schema.types);

  // Build a hash index on the smaller input conceptually; for simplicity we
  // always build on the right (algorithm plans put the smaller table right).
  const KeyReader right_reader(right, right_keys);
  std::unordered_map<std::uint64_t, std::vector<std::int64_t>> index;
  index.reserve(right.num_rows() * 2);
  for (std::int64_t r = 0; r < right.num_rows(); ++r) {
    index[right_reader.At(r)].push_back(r);
  }

  const KeyReader left_reader(left, left_keys);
  std::vector<Value> row(schema.names.size());
  for (std::int64_t l = 0; l < left.num_rows(); ++l) {
    const auto it = index.find(left_reader.At(l));
    if (it == index.end()) continue;
    for (const std::int64_t r : it->second) {
      std::size_t c = 0;
      for (const std::int64_t lc : schema.left_columns) {
        row[c++] = left.column_types()[lc] == ColumnType::kInt
                       ? Value::Int(left.IntAt(lc, l))
                       : Value::Double(left.DoubleAt(lc, l));
      }
      for (const std::int64_t rc : schema.right_columns) {
        row[c++] = right.column_types()[rc] == ColumnType::kInt
                       ? Value::Int(right.IntAt(rc, r))
                       : Value::Double(right.DoubleAt(rc, r));
      }
      out.AppendRow(row);
    }
  }
  return out;
}

namespace {

Table FilterByKeyMembership(const Table& left, const Table& right,
                            const std::vector<std::string>& left_keys,
                            const std::vector<std::string>& right_keys,
                            bool keep_matches) {
  LINBP_CHECK(left_keys.size() == right_keys.size());
  const KeyReader right_reader(right, right_keys);
  std::unordered_set<std::uint64_t> keys;
  keys.reserve(right.num_rows() * 2);
  for (std::int64_t r = 0; r < right.num_rows(); ++r) {
    keys.insert(right_reader.At(r));
  }
  Table out(left.column_names(), left.column_types());
  const KeyReader left_reader(left, left_keys);
  for (std::int64_t l = 0; l < left.num_rows(); ++l) {
    const bool match = keys.count(left_reader.At(l)) > 0;
    if (match == keep_matches) out.AppendRowFrom(left, l);
  }
  return out;
}

}  // namespace

Table SemiJoin(const Table& left, const Table& right,
               const std::vector<std::string>& left_keys,
               const std::vector<std::string>& right_keys) {
  return FilterByKeyMembership(left, right, left_keys, right_keys, true);
}

Table AntiJoin(const Table& left, const Table& right,
               const std::vector<std::string>& left_keys,
               const std::vector<std::string>& right_keys) {
  return FilterByKeyMembership(left, right, left_keys, right_keys, false);
}

Table GroupBy(const Table& table, const std::vector<std::string>& keys,
              const std::vector<Aggregate>& aggregates) {
  std::vector<std::string> out_names = keys;
  std::vector<ColumnType> out_types(keys.size(), ColumnType::kInt);
  for (const Aggregate& agg : aggregates) {
    out_names.push_back(agg.output);
    out_types.push_back(agg.op == AggregateOp::kCount
                            ? ColumnType::kInt
                            : table.TypeOf(agg.input));
  }
  Table out(out_names, out_types);

  const KeyReader reader(table, keys);
  // group id per distinct key, in first-seen order.
  std::unordered_map<std::uint64_t, std::int64_t> group_of;
  std::vector<std::int64_t> representative_row;
  std::vector<std::int64_t> group_ids(table.num_rows());
  for (std::int64_t r = 0; r < table.num_rows(); ++r) {
    const auto [it, inserted] = group_of.try_emplace(
        reader.At(r), static_cast<std::int64_t>(representative_row.size()));
    if (inserted) representative_row.push_back(r);
    group_ids[r] = it->second;
  }
  const auto num_groups = static_cast<std::int64_t>(representative_row.size());

  // Evaluate each aggregate into per-group accumulators.
  std::vector<std::vector<double>> double_accumulators(aggregates.size());
  std::vector<std::vector<std::int64_t>> int_accumulators(aggregates.size());
  for (std::size_t a = 0; a < aggregates.size(); ++a) {
    const Aggregate& agg = aggregates[a];
    const bool is_int = agg.op == AggregateOp::kCount ||
                        table.TypeOf(agg.input) == ColumnType::kInt;
    if (agg.op == AggregateOp::kCount) {
      int_accumulators[a].assign(num_groups, 0);
      for (std::int64_t r = 0; r < table.num_rows(); ++r) {
        ++int_accumulators[a][group_ids[r]];
      }
      continue;
    }
    if (is_int) {
      int_accumulators[a].assign(
          num_groups, agg.op == AggregateOp::kMin
                          ? std::numeric_limits<std::int64_t>::max()
                          : 0);
      const auto& column = table.IntColumn(agg.input);
      for (std::int64_t r = 0; r < table.num_rows(); ++r) {
        auto& acc = int_accumulators[a][group_ids[r]];
        acc = agg.op == AggregateOp::kMin ? std::min(acc, column[r])
                                          : acc + column[r];
      }
    } else {
      double_accumulators[a].assign(
          num_groups, agg.op == AggregateOp::kMin
                          ? std::numeric_limits<double>::infinity()
                          : 0.0);
      const auto& column = table.DoubleColumn(agg.input);
      for (std::int64_t r = 0; r < table.num_rows(); ++r) {
        auto& acc = double_accumulators[a][group_ids[r]];
        acc = agg.op == AggregateOp::kMin ? std::min(acc, column[r])
                                          : acc + column[r];
      }
    }
  }

  std::vector<Value> row(out_names.size());
  for (std::int64_t g = 0; g < num_groups; ++g) {
    std::size_t c = 0;
    for (const auto& key : keys) {
      row[c++] = Value::Int(table.IntAt(table.ColumnIndex(key),
                                        representative_row[g]));
    }
    for (std::size_t a = 0; a < aggregates.size(); ++a) {
      if (out_types[keys.size() + a] == ColumnType::kInt) {
        row[c++] = Value::Int(int_accumulators[a][g]);
      } else {
        row[c++] = Value::Double(double_accumulators[a][g]);
      }
    }
    out.AppendRow(row);
  }
  return out;
}

Table Filter(const Table& table,
             const std::function<bool(const Table&, std::int64_t)>& predicate) {
  Table out(table.column_names(), table.column_types());
  for (std::int64_t r = 0; r < table.num_rows(); ++r) {
    if (predicate(table, r)) out.AppendRowFrom(table, r);
  }
  return out;
}

Table Project(const Table& table, const std::vector<std::string>& columns) {
  std::vector<ColumnType> types;
  for (const auto& name : columns) types.push_back(table.TypeOf(name));
  Table out(columns, types);
  std::vector<std::int64_t> indices;
  for (const auto& name : columns) indices.push_back(table.ColumnIndex(name));
  std::vector<Value> row(columns.size());
  for (std::int64_t r = 0; r < table.num_rows(); ++r) {
    for (std::size_t c = 0; c < indices.size(); ++c) {
      row[c] = table.TypeOf(columns[c]) == ColumnType::kInt
                   ? Value::Int(table.IntAt(indices[c], r))
                   : Value::Double(table.DoubleAt(indices[c], r));
    }
    out.AppendRow(row);
  }
  return out;
}

Table Rename(const Table& table, const std::vector<std::string>& from,
             const std::vector<std::string>& to) {
  LINBP_CHECK(from.size() == to.size());
  std::vector<std::string> names = table.column_names();
  for (std::size_t i = 0; i < from.size(); ++i) {
    names[table.ColumnIndex(from[i])] = to[i];
  }
  Table out(names, table.column_types());
  for (std::int64_t r = 0; r < table.num_rows(); ++r) out.AppendRowFrom(table, r);
  return out;
}

void UnionAllInPlace(Table* dest, const Table& source) {
  LINBP_CHECK(dest->column_names() == source.column_names());
  for (std::int64_t r = 0; r < source.num_rows(); ++r) {
    dest->AppendRowFrom(source, r);
  }
}

Table WithComputedDoubleColumn(
    const Table& table, const std::string& name,
    const std::function<double(const Table&, std::int64_t)>& fn) {
  std::vector<std::string> names = table.column_names();
  std::vector<ColumnType> types = table.column_types();
  names.push_back(name);
  types.push_back(ColumnType::kDouble);
  Table out(names, types);
  std::vector<Value> row(names.size());
  for (std::int64_t r = 0; r < table.num_rows(); ++r) {
    for (std::int64_t c = 0; c < table.num_columns(); ++c) {
      row[c] = table.column_types()[c] == ColumnType::kInt
                   ? Value::Int(table.IntAt(c, r))
                   : Value::Double(table.DoubleAt(c, r));
    }
    row.back() = Value::Double(fn(table, r));
    out.AppendRow(row);
  }
  return out;
}

Table WithComputedIntColumn(
    const Table& table, const std::string& name,
    const std::function<std::int64_t(const Table&, std::int64_t)>& fn) {
  std::vector<std::string> names = table.column_names();
  std::vector<ColumnType> types = table.column_types();
  names.push_back(name);
  types.push_back(ColumnType::kInt);
  Table out(names, types);
  std::vector<Value> row(names.size());
  for (std::int64_t r = 0; r < table.num_rows(); ++r) {
    for (std::int64_t c = 0; c < table.num_columns(); ++c) {
      row[c] = table.column_types()[c] == ColumnType::kInt
                   ? Value::Int(table.IntAt(c, r))
                   : Value::Double(table.DoubleAt(c, r));
    }
    row.back() = Value::Int(fn(table, r));
    out.AppendRow(row);
  }
  return out;
}

Table DistinctKeys(const Table& table, const std::vector<std::string>& keys) {
  const Table projected = Project(table, keys);
  const KeyReader reader(projected, keys);
  std::unordered_set<std::uint64_t> seen;
  Table out(projected.column_names(), projected.column_types());
  for (std::int64_t r = 0; r < projected.num_rows(); ++r) {
    if (seen.insert(reader.At(r)).second) out.AppendRowFrom(projected, r);
  }
  return out;
}

void Upsert(Table* target, const Table& source,
            const std::vector<std::string>& keys) {
  LINBP_CHECK(target->column_names() == source.column_names());
  // DELETE FROM target WHERE key IN (SELECT key FROM source), then INSERT.
  Table kept = AntiJoin(*target, source, keys, keys);
  UnionAllInPlace(&kept, source);
  *target = std::move(kept);
}

std::int64_t CountDistinctKeys(const Table& table,
                               const std::vector<std::string>& keys) {
  const KeyReader reader(table, keys);
  std::unordered_set<std::uint64_t> seen;
  for (std::int64_t r = 0; r < table.num_rows(); ++r) {
    seen.insert(reader.At(r));
  }
  return static_cast<std::int64_t>(seen.size());
}

}  // namespace linbp
