// SBP as relational operator plans (Algorithms 2-4 / Sect. 6.3, App. C).
//
// The state mirrors the paper's schema: besides A / E / H it keeps
//   G(v, g)   geodesic number per reachable node,
//   B(v, c, b) final residual beliefs (rows absent = residual 0).
// Initial assignment (Algorithm 2) visits nodes level by level; the batch
// updates (Algorithms 3 and 4) touch only affected nodes. Algorithm 4 uses
// the corrected guard g_t > g_s discussed in DESIGN.md.

#ifndef LINBP_RELATIONAL_SBP_SQL_H_
#define LINBP_RELATIONAL_SBP_SQL_H_

#include "src/relational/table.h"

namespace linbp {

/// Dynamic SBP computation state over relational tables.
class SbpSql {
 public:
  /// Runs Algorithm 2 on adjacency table `a` (schema A(s,t,w)), explicit
  /// beliefs `e` (E(v,c,b)), and coupling table `h` (H(c1,c2,h)).
  SbpSql(Table a, Table e, Table h);

  /// Algorithm 3: batch-adds explicit beliefs En(v, c, b); existing
  /// explicit nodes in En get their beliefs replaced.
  void AddExplicitBeliefs(const Table& en);

  /// Algorithm 4: batch-adds undirected edges An(s, t, w); both directions
  /// are inserted into A.
  void AddEdges(const Table& an);

  /// Final beliefs B(v, c, b).
  const Table& beliefs() const { return b_; }

  /// Geodesic numbers G(v, g) (reachable nodes only).
  const Table& geodesic() const { return g_; }

  /// Adjacency table A(s, t, w).
  const Table& adjacency() const { return a_; }

 private:
  // B(t, c2, sum(w*b*h)) for the target nodes in `frontier` (schema (v,g)),
  // reading parents at geodesic g-1 from the *current* G and B; result is
  // upserted into B keyed on v.
  void RecomputeBeliefsFor(const Table& frontier);

  Table a_;
  Table h_;
  Table g_;
  Table b_;
};

}  // namespace linbp

#endif  // LINBP_RELATIONAL_SBP_SQL_H_
