#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/util/check.h"

namespace linbp {
namespace obs {

int ThisThreadShard() {
  static std::atomic<unsigned> next{0};
  thread_local const int slot = static_cast<int>(
      next.fetch_add(1, std::memory_order_relaxed) %
      static_cast<unsigned>(kMetricShards));
  return slot;
}

namespace internal {
const std::atomic<bool>* AlwaysEnabled() {
  static const std::atomic<bool> on{true};
  return &on;
}
}  // namespace internal

std::int64_t Counter::Value() const {
  std::int64_t total = 0;
  for (const internal::CounterShard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (internal::CounterShard& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

double HistogramSnapshot::Quantile(double q) const {
  if (count <= 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(count);
  double cumulative = 0.0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const double previous = cumulative;
    cumulative += static_cast<double>(counts[b]);
    if (cumulative < target || counts[b] == 0) continue;
    if (b >= bounds.size()) {
      // Overflow bucket: no finite upper edge; clamp to the last bound.
      return bounds.empty() ? 0.0 : bounds.back();
    }
    const double lower = b == 0 ? 0.0 : bounds[b - 1];
    const double fraction =
        (target - previous) / static_cast<double>(counts[b]);
    return lower + (bounds[b] - lower) * std::min(1.0, std::max(0.0, fraction));
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

std::vector<double> Histogram::DefaultLatencyBounds() {
  return {1e-6,  2.5e-6, 5e-6,  1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4,
          5e-4,  1e-3,   2.5e-3, 5e-3, 1e-2,  2.5e-2, 5e-2, 1e-1,
          2.5e-1, 5e-1,  1.0,   2.5,  5.0,   10.0, 30.0, 60.0};
}

Histogram::Histogram(std::vector<double> bounds,
                     const std::atomic<bool>* enabled)
    : enabled_(enabled), bounds_(std::move(bounds)) {
  LINBP_CHECK_MSG(!bounds_.empty(), "histogram needs at least one bucket");
  for (std::size_t b = 0; b < bounds_.size(); ++b) {
    LINBP_CHECK_MSG(std::isfinite(bounds_[b]) && bounds_[b] > 0.0 &&
                        (b == 0 || bounds_[b - 1] < bounds_[b]),
                    "histogram bounds must be finite, positive, ascending");
  }
  const std::size_t buckets = bounds_.size() + 1;
  for (Shard& shard : shards_) {
    shard.counts.reset(new std::atomic<std::int64_t>[buckets]);
    for (std::size_t b = 0; b < buckets; ++b) {
      shard.counts[b].store(0, std::memory_order_relaxed);
    }
  }
}

void Histogram::Observe(double value) {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  // NaN would poison the sum silently; count it in the overflow bucket
  // with a zero contribution so the event is at least visible.
  const double contribution = std::isfinite(value) ? value : 0.0;
  std::size_t bucket = bounds_.size();
  if (std::isfinite(value)) {
    bucket = static_cast<std::size_t>(
        std::lower_bound(bounds_.begin(), bounds_.end(), value) -
        bounds_.begin());
  }
  Shard& shard = shards_[ThisThreadShard()];
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  double sum = shard.sum.load(std::memory_order_relaxed);
  while (!shard.sum.compare_exchange_weak(sum, sum + contribution,
                                          std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.bounds = bounds_;
  snapshot.counts.assign(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (std::size_t b = 0; b < snapshot.counts.size(); ++b) {
      snapshot.counts[b] += shard.counts[b].load(std::memory_order_relaxed);
    }
    snapshot.sum += shard.sum.load(std::memory_order_relaxed);
  }
  for (const std::int64_t c : snapshot.counts) snapshot.count += c;
  return snapshot;
}

void Histogram::Reset() {
  for (Shard& shard : shards_) {
    for (std::size_t b = 0; b < bounds_.size() + 1; ++b) {
      shard.counts[b].store(0, std::memory_order_relaxed);
    }
    shard.sum.store(0.0, std::memory_order_relaxed);
  }
}

Registry& Registry::Global() {
  static Registry* registry = new Registry();
  return *registry;
}

namespace {

std::string MetricKeyOf(const std::string& name, const Labels& labels) {
  std::string key = name;
  key.push_back('\x1f');
  for (const auto& [label, value] : labels) {
    key += label;
    key.push_back('\x1e');
    key += value;
    key.push_back('\x1e');
  }
  return key;
}

std::string RenderLabels(const Labels& labels,
                         const std::string& extra = {}) {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [label, value] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += label + "=\"" + value + "\"";
  }
  if (!extra.empty()) {
    if (!first) out.push_back(',');
    out += extra;
  }
  out.push_back('}');
  return out;
}

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string FormatBound(double bound) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%g", bound);
  return buffer;
}

std::string LabelsJson(const Labels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [label, value] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += "\"" + JsonEscape(label) + "\":\"" + JsonEscape(value) + "\"";
  }
  out.push_back('}');
  return out;
}

}  // namespace

Registry::Entry& Registry::FindOrCreate(Kind kind, const std::string& name,
                                        const Labels& labels,
                                        std::vector<double> bounds) {
  const std::string key = MetricKeyOf(name, labels);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = metrics_.find(key);
  if (it == metrics_.end()) {
    Entry entry;
    entry.kind = kind;
    entry.name = name;
    entry.labels = labels;
    switch (kind) {
      case Kind::kCounter:
        entry.counter.reset(new Counter(&enabled_));
        break;
      case Kind::kGauge:
        entry.gauge.reset(new Gauge(&enabled_));
        break;
      case Kind::kHistogram:
        entry.histogram.reset(new Histogram(std::move(bounds), &enabled_));
        break;
    }
    it = metrics_.emplace(key, std::move(entry)).first;
  }
  LINBP_CHECK_MSG(it->second.kind == kind,
                  "metric re-registered with a different type");
  return it->second;
}

Counter& Registry::GetCounter(const std::string& name, const Labels& labels) {
  return *FindOrCreate(Kind::kCounter, name, labels, {}).counter;
}

Gauge& Registry::GetGauge(const std::string& name, const Labels& labels) {
  return *FindOrCreate(Kind::kGauge, name, labels, {}).gauge;
}

Histogram& Registry::GetHistogram(const std::string& name,
                                  const Labels& labels,
                                  std::vector<double> bounds) {
  return *FindOrCreate(Kind::kHistogram, name, labels, std::move(bounds))
              .histogram;
}

std::size_t Registry::num_metrics() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return metrics_.size();
}

std::string Registry::PrometheusText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  std::string last_name;
  for (const auto& [key, entry] : metrics_) {
    (void)key;
    if (entry.name != last_name) {
      out += "# TYPE " + entry.name + " ";
      switch (entry.kind) {
        case Kind::kCounter:
          out += "counter\n";
          break;
        case Kind::kGauge:
          out += "gauge\n";
          break;
        case Kind::kHistogram:
          out += "histogram\n";
          break;
      }
      last_name = entry.name;
    }
    const std::string labels = RenderLabels(entry.labels);
    switch (entry.kind) {
      case Kind::kCounter:
        out += entry.name + labels + " " +
               std::to_string(entry.counter->Value()) + "\n";
        break;
      case Kind::kGauge:
        out += entry.name + labels + " " +
               std::to_string(entry.gauge->Value()) + "\n";
        break;
      case Kind::kHistogram: {
        const HistogramSnapshot snapshot = entry.histogram->Snapshot();
        std::int64_t cumulative = 0;
        for (std::size_t b = 0; b < snapshot.counts.size(); ++b) {
          cumulative += snapshot.counts[b];
          const std::string le =
              b < snapshot.bounds.size()
                  ? "le=\"" + FormatBound(snapshot.bounds[b]) + "\""
                  : std::string("le=\"+Inf\"");
          out += entry.name + "_bucket" + RenderLabels(entry.labels, le) +
                 " " + std::to_string(cumulative) + "\n";
        }
        out += entry.name + "_sum" + labels + " " +
               FormatDouble(snapshot.sum) + "\n";
        out += entry.name + "_count" + labels + " " +
               std::to_string(snapshot.count) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string Registry::Json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string counters, gauges, histograms;
  for (const auto& [key, entry] : metrics_) {
    (void)key;
    const std::string head = "{\"name\":\"" + JsonEscape(entry.name) +
                             "\",\"labels\":" + LabelsJson(entry.labels);
    switch (entry.kind) {
      case Kind::kCounter:
        if (!counters.empty()) counters.push_back(',');
        counters += head + ",\"value\":" +
                    std::to_string(entry.counter->Value()) + "}";
        break;
      case Kind::kGauge:
        if (!gauges.empty()) gauges.push_back(',');
        gauges += head + ",\"value\":" +
                  std::to_string(entry.gauge->Value()) + "}";
        break;
      case Kind::kHistogram: {
        const HistogramSnapshot snapshot = entry.histogram->Snapshot();
        if (!histograms.empty()) histograms.push_back(',');
        histograms += head + ",\"count\":" + std::to_string(snapshot.count) +
                      ",\"sum\":" + FormatDouble(snapshot.sum) +
                      ",\"p50\":" + FormatDouble(snapshot.Quantile(0.50)) +
                      ",\"p95\":" + FormatDouble(snapshot.Quantile(0.95)) +
                      ",\"p99\":" + FormatDouble(snapshot.Quantile(0.99)) +
                      ",\"buckets\":[";
        for (std::size_t b = 0; b < snapshot.counts.size(); ++b) {
          if (b > 0) histograms.push_back(',');
          const std::string le = b < snapshot.bounds.size()
                                     ? FormatDouble(snapshot.bounds[b])
                                     : std::string("\"+Inf\"");
          histograms += "{\"le\":" + le + ",\"count\":" +
                        std::to_string(snapshot.counts[b]) + "}";
        }
        histograms += "]}";
        break;
      }
    }
  }
  return "{\"counters\":[" + counters + "],\"gauges\":[" + gauges +
         "],\"histograms\":[" + histograms + "]}";
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [key, entry] : metrics_) {
    (void)key;
    switch (entry.kind) {
      case Kind::kCounter:
        entry.counter->Reset();
        break;
      case Kind::kGauge:
        entry.gauge->Reset();
        break;
      case Kind::kHistogram:
        entry.histogram->Reset();
        break;
    }
  }
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace obs
}  // namespace linbp
