// Thread-safe metrics: counters, gauges, and fixed-bucket histograms,
// collected in a process-wide registry.
//
// Every write path is a relaxed atomic op on a per-thread shard (threads
// hash onto kMetricShards cache-line-padded slots), so instrumentation is
// cheap enough to leave on inside solver sweeps and the streaming
// pipeline; reads merge the shards. Two off switches exist on top of
// that:
//   - runtime null-sink: Registry::SetEnabled(false) makes every Add /
//     Observe through that registry return after one relaxed load;
//   - compile-time: building with -DLINBP_OBS_DISABLED turns the
//     LINBP_OBS_* macros (src/obs/obs.h) into `(void)0`, removing the
//     instrumentation from the binary entirely (pinned by
//     tests/obs/obs_disabled_test.cc).
//
// Metric objects are created once by the registry and NEVER destroyed or
// moved while the process lives — call sites may cache `Counter&`
// references in function-local statics. Registry::Reset() zeroes values
// in place and keeps every reference valid (it exists for tests).
//
// Naming follows the Prometheus conventions the text exposition emits
// (Registry::PrometheusText): counters end in `_total`, histograms of
// durations end in `_seconds`, and label sets are part of the metric
// identity ({kind="add"} and {kind="delete"} are distinct series).

#ifndef LINBP_OBS_METRICS_H_
#define LINBP_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace linbp {
namespace obs {

/// Number of per-thread write shards per metric. Threads are assigned
/// round-robin slots on first use; collisions just share an atomic.
inline constexpr int kMetricShards = 16;

/// Stable shard index of the calling thread in [0, kMetricShards).
int ThisThreadShard();

/// Label set attached to a metric ({{"kind", "add"}, ...}). Order is
/// preserved in the exposition output.
using Labels = std::vector<std::pair<std::string, std::string>>;

namespace internal {
/// Shared "always on" flag for metrics constructed outside a registry.
const std::atomic<bool>* AlwaysEnabled();

struct alignas(64) CounterShard {
  std::atomic<std::int64_t> value{0};
};
}  // namespace internal

/// Monotonically increasing 64-bit counter.
class Counter {
 public:
  explicit Counter(const std::atomic<bool>* enabled =
                       internal::AlwaysEnabled())
      : enabled_(enabled) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(std::int64_t delta) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    shards_[ThisThreadShard()].value.fetch_add(delta,
                                               std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  /// Merged value across shards.
  std::int64_t Value() const;

  /// Zeroes in place (concurrent writers keep a valid object).
  void Reset();

 private:
  const std::atomic<bool>* enabled_;  // not owned
  internal::CounterShard shards_[kMetricShards];
};

/// Last-write-wins 64-bit gauge.
class Gauge {
 public:
  explicit Gauge(const std::atomic<bool>* enabled =
                     internal::AlwaysEnabled())
      : enabled_(enabled) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(std::int64_t value) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.store(value, std::memory_order_relaxed);
  }
  std::int64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  const std::atomic<bool>* enabled_;  // not owned
  std::atomic<std::int64_t> value_{0};
};

/// Merged histogram state; quantiles interpolate within buckets.
struct HistogramSnapshot {
  std::vector<double> bounds;         // ascending upper bounds
  std::vector<std::int64_t> counts;   // bounds.size() + 1 (+Inf overflow)
  std::int64_t count = 0;
  double sum = 0.0;

  /// Linear-interpolated quantile estimate, q in [0, 1]. Returns 0 for an
  /// empty histogram; values in the overflow bucket clamp to the largest
  /// finite bound.
  double Quantile(double q) const;
};

/// Fixed-bucket histogram (counts + sum), p50/p95/p99 via Snapshot().
class Histogram {
 public:
  /// Bucket upper bounds must be finite, positive, and strictly
  /// ascending; an implicit +Inf bucket is appended.
  explicit Histogram(std::vector<double> bounds = DefaultLatencyBounds(),
                     const std::atomic<bool>* enabled =
                         internal::AlwaysEnabled());
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);

  HistogramSnapshot Snapshot() const;
  std::int64_t Count() const { return Snapshot().count; }

  void Reset();

  const std::vector<double>& bounds() const { return bounds_; }

  /// Default duration buckets, in seconds: 1us .. 60s, roughly 1-2.5-5
  /// per decade. Serving latencies, sweep latencies, and I/O stalls all
  /// land well inside this range.
  static std::vector<double> DefaultLatencyBounds();

 private:
  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<std::int64_t>[]> counts;
    std::atomic<double> sum{0.0};
  };

  const std::atomic<bool>* enabled_;  // not owned
  std::vector<double> bounds_;
  Shard shards_[kMetricShards];
};

/// Name + labels -> metric map. Thread-safe; returned references stay
/// valid for the registry's lifetime (call sites cache them in statics).
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry every LINBP_OBS_* macro records into.
  static Registry& Global();

  Counter& GetCounter(const std::string& name, const Labels& labels = {});
  Gauge& GetGauge(const std::string& name, const Labels& labels = {});
  Histogram& GetHistogram(
      const std::string& name, const Labels& labels = {},
      std::vector<double> bounds = Histogram::DefaultLatencyBounds());

  /// Runtime null-sink switch: when disabled, every Add/Set/Observe on
  /// metrics owned by this registry is a no-op (one relaxed load).
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Number of registered series.
  std::size_t num_metrics() const;

  /// Prometheus text exposition format (one # TYPE line per metric name,
  /// histogram expanded into _bucket/_sum/_count series).
  std::string PrometheusText() const;

  /// The registry as a JSON object string:
  ///   {"counters": [...], "gauges": [...], "histograms": [...]}
  /// Histogram entries carry count/sum/p50/p95/p99 and the raw buckets.
  std::string Json() const;

  /// Zeroes every metric in place; references returned by Get* stay
  /// valid. For tests.
  void Reset();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string name;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& FindOrCreate(Kind kind, const std::string& name,
                      const Labels& labels, std::vector<double> bounds);

  mutable std::mutex mutex_;
  std::atomic<bool> enabled_{true};
  // Key: name + '\x1f' + serialized labels; sorted so label variants of
  // one name are adjacent in the exposition output.
  std::map<std::string, Entry> metrics_;
};

/// Escapes a string for embedding in a JSON string literal (no quotes
/// added). Shared by the metrics and span exporters.
std::string JsonEscape(const std::string& s);

}  // namespace obs
}  // namespace linbp

#endif  // LINBP_OBS_METRICS_H_
