#include "src/obs/export.h"

#include <cstdio>

#include "src/obs/obs.h"

namespace linbp {
namespace obs {

namespace {
std::atomic<bool> g_quiet{false};
}  // namespace

void SetQuiet(bool quiet) {
  g_quiet.store(quiet, std::memory_order_relaxed);
}

bool Quiet() { return g_quiet.load(std::memory_order_relaxed); }

void Log(const std::string& message) {
  if (Quiet()) return;
  std::fprintf(stderr, "linbp: %s\n", message.c_str());
}

std::string MetricsReportJson(const Registry& registry, const Tracer* tracer,
                              const TimeSeriesRegistry& timeseries) {
  std::string out = "{\"metrics\":" + registry.Json() +
                    ",\"timeseries\":" + timeseries.Json() + ",\"trace\":";
  out += tracer != nullptr ? tracer->Json() : std::string("null");
  out += "}";
  return out;
}

namespace {

bool WriteWholeFile(const std::string& path, const std::string& payload) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return false;
  const bool wrote =
      std::fwrite(payload.data(), 1, payload.size(), file) == payload.size();
  const bool flushed = std::fflush(file) == 0;
  const bool closed = std::fclose(file) == 0;
  return wrote && flushed && closed;
}

}  // namespace

bool WriteMetricsReport(const std::string& path, const Registry& registry,
                        const Tracer* tracer,
                        const TimeSeriesRegistry& timeseries) {
  return WriteWholeFile(path,
                        MetricsReportJson(registry, tracer, timeseries));
}

bool WriteChromeTrace(const std::string& path, const Tracer& tracer) {
  return WriteWholeFile(path, tracer.ChromeTraceJson());
}

}  // namespace obs
}  // namespace linbp
