#include "src/obs/export.h"

#include <cstdio>

#include "src/obs/obs.h"

namespace linbp {
namespace obs {

namespace {
std::atomic<bool> g_quiet{false};
}  // namespace

void SetQuiet(bool quiet) {
  g_quiet.store(quiet, std::memory_order_relaxed);
}

bool Quiet() { return g_quiet.load(std::memory_order_relaxed); }

void Log(const std::string& message) {
  if (Quiet()) return;
  std::fprintf(stderr, "linbp: %s\n", message.c_str());
}

std::string MetricsReportJson(const Registry& registry,
                              const Tracer* tracer) {
  std::string out = "{\"metrics\":" + registry.Json() + ",\"trace\":";
  out += tracer != nullptr ? tracer->Json() : std::string("null");
  out += "}";
  return out;
}

bool WriteMetricsReport(const std::string& path, const Registry& registry,
                        const Tracer* tracer) {
  const std::string report = MetricsReportJson(registry, tracer);
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return false;
  const bool wrote =
      std::fwrite(report.data(), 1, report.size(), file) == report.size();
  const bool flushed = std::fflush(file) == 0;
  const bool closed = std::fclose(file) == 0;
  return wrote && flushed && closed;
}

}  // namespace obs
}  // namespace linbp
