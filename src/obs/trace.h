// Scoped trace spans: RAII timers that form a span tree per thread and
// export as JSON (see README "Observability" for the schema).
//
// A Tracer owns the spans. One tracer at a time can be installed as the
// process-wide active tracer (SetActiveTracer); ScopedSpan reads it on
// construction and becomes a complete no-op when none is installed, so
// instrumented code paths cost one relaxed atomic load when tracing is
// off. Spans are low-frequency events (per solver sweep, per serve op,
// per stream block batch) — the tracer just takes a mutex per begin/end.
//
// Parent/child nesting is tracked per thread: a span's parent is the
// innermost span still open on the same thread. Spans started on pool
// threads while no span is open on that thread become roots.

#ifndef LINBP_OBS_TRACE_H_
#define LINBP_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace linbp {
namespace obs {

/// Collects spans; thread-safe. Spans reference their parent by index,
/// Json() renders the forest nested.
class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Opens a span on the calling thread; returns its index.
  int BeginSpan(const std::string& name);

  /// Closes span `index` (must be the innermost open span of the calling
  /// thread) and attaches `attrs`. Attribute values must already be JSON
  /// value literals (see ScopedSpan::SetAttr).
  void EndSpan(int index,
               std::vector<std::pair<std::string, std::string>> attrs);

  std::size_t num_spans() const;

  /// {"spans": [{"name":..., "start_s":..., "dur_s":..., "attrs":{...},
  ///             "children":[...]} ...]}
  /// start_s is seconds since the tracer was constructed. Spans still
  /// open at export time appear with "dur_s": -1.
  std::string Json() const;

  /// The span set as a Chrome trace-event JSON array (the format
  /// chrome://tracing and Perfetto load): one complete ("ph":"X") event
  /// per closed span with microsecond ts/dur, pid 0, and a small stable
  /// tid per recording thread, so the per-thread nesting renders as
  /// stacked slices. Attrs export as the event's "args". Spans still
  /// open at export time are skipped (they have no duration yet).
  std::string ChromeTraceJson() const;

 private:
  struct Span {
    std::string name;
    int parent = -1;
    int tid = 0;
    double start_s = 0.0;
    double dur_s = -1.0;
    std::vector<std::pair<std::string, std::string>> attrs;
  };

  double Now() const;

  mutable std::mutex mutex_;
  std::vector<Span> spans_;
  std::map<std::thread::id, std::vector<int>> stacks_;
  std::map<std::thread::id, int> tids_;
  std::chrono::steady_clock::time_point epoch_;
};

/// The installed tracer, or nullptr. Installation is not synchronized
/// with concurrent span creation — install before starting work.
Tracer* ActiveTracer();
void SetActiveTracer(Tracer* tracer);

/// RAII span against the active tracer. No-op (one atomic load) when no
/// tracer is installed.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan();

  bool active() const { return tracer_ != nullptr; }

  /// Attach an attribute, exported into the span's "attrs" JSON object.
  void SetAttr(const std::string& key, const std::string& value);
  void SetAttr(const std::string& key, const char* value);
  void SetAttr(const std::string& key, double value);
  void SetAttr(const std::string& key, std::int64_t value);
  void SetAttr(const std::string& key, int value) {
    SetAttr(key, static_cast<std::int64_t>(value));
  }

 private:
  Tracer* tracer_;
  int index_ = -1;
  std::vector<std::pair<std::string, std::string>> attrs_;
};

}  // namespace obs
}  // namespace linbp

#endif  // LINBP_OBS_TRACE_H_
