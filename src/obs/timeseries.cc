#include "src/obs/timeseries.h"

#include <cstdio>

#include "src/util/check.h"

namespace linbp {
namespace obs {

TimeSeries::TimeSeries(std::size_t capacity, const std::atomic<bool>* enabled)
    : enabled_(enabled), capacity_(capacity) {
  LINBP_CHECK_MSG(capacity_ >= 2 && capacity_ % 2 == 0,
                  "time-series capacity must be even and >= 2");
  samples_.reserve(capacity_);
}

void TimeSeries::BeginRun() {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(mutex_);
  samples_.clear();
  appends_ = 0;
  stride_ = 1;
  ++runs_;
}

void TimeSeries::Append(const TimeSeriesSample& sample) {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const std::int64_t index = appends_++;
  if (index % stride_ != 0) return;
  samples_.push_back(sample);
  if (samples_.size() < capacity_) return;
  // Decimate: stored sample i sits at append index i * stride_, so
  // keeping the even slots leaves exactly the multiples of 2 * stride_.
  for (std::size_t i = 0; 2 * i < samples_.size(); ++i) {
    samples_[i] = samples_[2 * i];
  }
  samples_.resize(samples_.size() / 2);
  stride_ *= 2;
}

std::vector<TimeSeriesSample> TimeSeries::Samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return samples_;
}

std::int64_t TimeSeries::runs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return runs_;
}

std::int64_t TimeSeries::total_appends() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return appends_;
}

std::int64_t TimeSeries::stride() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stride_;
}

void TimeSeries::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  samples_.clear();
  appends_ = 0;
  stride_ = 1;
  runs_ = 0;
}

namespace {

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

std::string TimeSeries::Json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "\"runs\":" + std::to_string(runs_) +
                    ",\"total_appends\":" + std::to_string(appends_) +
                    ",\"stride\":" + std::to_string(stride_) +
                    ",\"samples\":[";
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const TimeSeriesSample& s = samples_[i];
    if (i > 0) out.push_back(',');
    out += "{\"sweep\":" + std::to_string(s.sweep) +
           ",\"delta\":" + FormatDouble(s.delta) +
           ",\"delta_l2\":" + FormatDouble(s.delta_l2) +
           ",\"seconds\":" + FormatDouble(s.seconds) +
           ",\"bytes_streamed\":" + std::to_string(s.bytes_streamed) +
           ",\"precision\":\"" + s.precision + "\"}";
  }
  out += "]";
  return out;
}

TimeSeriesRegistry& TimeSeriesRegistry::Global() {
  static TimeSeriesRegistry* registry = new TimeSeriesRegistry();
  return *registry;
}

TimeSeries& TimeSeriesRegistry::Get(const std::string& name,
                                    std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = series_.find(name);
  if (it == series_.end()) {
    it = series_
             .emplace(name, std::make_unique<TimeSeries>(capacity, &enabled_))
             .first;
  }
  return *it->second;
}

std::size_t TimeSeriesRegistry::num_series() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return series_.size();
}

void TimeSeriesRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, series] : series_) series->Reset();
}

std::string TimeSeriesRegistry::Json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"series\":[";
  bool first = true;
  for (const auto& [name, series] : series_) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":\"" + JsonEscape(name) + "\"," + series->Json() + "}";
  }
  out += "]}";
  return out;
}

}  // namespace obs
}  // namespace linbp
