#include "src/obs/trace.h"

#include <cstdio>

#include "src/obs/metrics.h"
#include "src/util/check.h"

namespace linbp {
namespace obs {

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

double Tracer::Now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

int Tracer::BeginSpan(const std::string& name) {
  const double start = Now();
  std::lock_guard<std::mutex> lock(mutex_);
  Span span;
  span.name = name;
  span.start_s = start;
  const std::thread::id thread = std::this_thread::get_id();
  span.tid = tids_.emplace(thread, static_cast<int>(tids_.size()))
                 .first->second;
  std::vector<int>& stack = stacks_[thread];
  span.parent = stack.empty() ? -1 : stack.back();
  const int index = static_cast<int>(spans_.size());
  spans_.push_back(std::move(span));
  stack.push_back(index);
  return index;
}

void Tracer::EndSpan(
    int index, std::vector<std::pair<std::string, std::string>> attrs) {
  const double end = Now();
  std::lock_guard<std::mutex> lock(mutex_);
  LINBP_CHECK(index >= 0 && index < static_cast<int>(spans_.size()));
  std::vector<int>& stack = stacks_[std::this_thread::get_id()];
  LINBP_CHECK_MSG(!stack.empty() && stack.back() == index,
                  "spans must close innermost-first on their own thread");
  stack.pop_back();
  Span& span = spans_[index];
  span.dur_s = end - span.start_s;
  span.attrs = std::move(attrs);
}

std::size_t Tracer::num_spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

namespace {

std::string FormatSeconds(double seconds) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9f", seconds);
  return buffer;
}

}  // namespace

std::string Tracer::Json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  // children[i] = indices of spans whose parent is i; roots under -1.
  std::vector<std::vector<int>> children(spans_.size());
  std::vector<int> roots;
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    const int parent = spans_[i].parent;
    if (parent < 0) {
      roots.push_back(static_cast<int>(i));
    } else {
      children[parent].push_back(static_cast<int>(i));
    }
  }
  std::string out = "{\"spans\":[";
  // Iterative pre-order render; frame = (span index, next child slot).
  bool first_root = true;
  for (const int root : roots) {
    if (!first_root) out.push_back(',');
    first_root = false;
    std::vector<std::pair<int, std::size_t>> frames{{root, 0}};
    while (!frames.empty()) {
      auto& [index, next_child] = frames.back();
      const Span& span = spans_[index];
      if (next_child == 0) {
        out += "{\"name\":\"" + JsonEscape(span.name) +
               "\",\"start_s\":" + FormatSeconds(span.start_s) +
               ",\"dur_s\":" + FormatSeconds(span.dur_s) + ",\"attrs\":{";
        for (std::size_t a = 0; a < span.attrs.size(); ++a) {
          if (a > 0) out.push_back(',');
          out += "\"" + JsonEscape(span.attrs[a].first) +
                 "\":" + span.attrs[a].second;
        }
        out += "},\"children\":[";
      }
      if (next_child < children[index].size()) {
        if (next_child > 0) out.push_back(',');
        const int child = children[index][next_child];
        ++next_child;
        frames.emplace_back(child, 0);
      } else {
        out += "]}";
        frames.pop_back();
      }
    }
  }
  out += "]}";
  return out;
}

std::string Tracer::ChromeTraceJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "[";
  bool first = true;
  for (const Span& span : spans_) {
    if (span.dur_s < 0.0) continue;  // still open: no complete event yet
    if (!first) out.push_back(',');
    first = false;
    char timing[96];
    // Complete ("X") events; ts/dur are microseconds. Nesting is implied
    // by containment within one tid, which per-thread innermost-first
    // span closing guarantees.
    std::snprintf(timing, sizeof(timing),
                  "\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,"
                  "\"tid\":%d",
                  span.start_s * 1e6, span.dur_s * 1e6, span.tid);
    out += "{\"name\":\"" + JsonEscape(span.name) +
           "\",\"cat\":\"linbp\"," + timing + ",\"args\":{";
    for (std::size_t a = 0; a < span.attrs.size(); ++a) {
      if (a > 0) out.push_back(',');
      out += "\"" + JsonEscape(span.attrs[a].first) +
             "\":" + span.attrs[a].second;
    }
    out += "}}";
  }
  out += "]";
  return out;
}

namespace {
std::atomic<Tracer*> g_active_tracer{nullptr};
}  // namespace

Tracer* ActiveTracer() {
  return g_active_tracer.load(std::memory_order_acquire);
}

void SetActiveTracer(Tracer* tracer) {
  g_active_tracer.store(tracer, std::memory_order_release);
}

ScopedSpan::ScopedSpan(const char* name) : tracer_(ActiveTracer()) {
  if (tracer_ != nullptr) index_ = tracer_->BeginSpan(name);
}

ScopedSpan::~ScopedSpan() {
  if (tracer_ != nullptr) tracer_->EndSpan(index_, std::move(attrs_));
}

void ScopedSpan::SetAttr(const std::string& key, const std::string& value) {
  if (tracer_ == nullptr) return;
  attrs_.emplace_back(key, "\"" + JsonEscape(value) + "\"");
}

void ScopedSpan::SetAttr(const std::string& key, const char* value) {
  SetAttr(key, std::string(value));
}

void ScopedSpan::SetAttr(const std::string& key, double value) {
  if (tracer_ == nullptr) return;
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  attrs_.emplace_back(key, buffer);
}

void ScopedSpan::SetAttr(const std::string& key, std::int64_t value) {
  if (tracer_ == nullptr) return;
  attrs_.emplace_back(key, std::to_string(value));
}

}  // namespace obs
}  // namespace linbp
