// Combined metrics + span-tree report, the payload behind every CLI and
// bench driver's --metrics-out=FILE flag.

#ifndef LINBP_OBS_EXPORT_H_
#define LINBP_OBS_EXPORT_H_

#include <string>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace linbp {
namespace obs {

/// {"metrics": <Registry::Json()>, "trace": <Tracer::Json() or null>}
std::string MetricsReportJson(const Registry& registry, const Tracer* tracer);

/// Writes MetricsReportJson to `path` (flush- and close-checked).
/// Returns false on any I/O failure.
bool WriteMetricsReport(const std::string& path, const Registry& registry,
                        const Tracer* tracer);

}  // namespace obs
}  // namespace linbp

#endif  // LINBP_OBS_EXPORT_H_
