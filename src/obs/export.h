// Combined metrics + time-series + span-tree report, the payload behind
// every CLI and bench driver's --metrics-out=FILE flag, plus the Chrome
// trace-event file behind --trace-out=FILE.

#ifndef LINBP_OBS_EXPORT_H_
#define LINBP_OBS_EXPORT_H_

#include <string>

#include "src/obs/metrics.h"
#include "src/obs/timeseries.h"
#include "src/obs/trace.h"

namespace linbp {
namespace obs {

/// {"metrics": <Registry::Json()>,
///  "timeseries": <TimeSeriesRegistry::Json()>,
///  "trace": <Tracer::Json() or null>}
std::string MetricsReportJson(const Registry& registry, const Tracer* tracer,
                              const TimeSeriesRegistry& timeseries =
                                  TimeSeriesRegistry::Global());

/// Writes MetricsReportJson to `path` (flush- and close-checked).
/// Returns false on any I/O failure.
bool WriteMetricsReport(const std::string& path, const Registry& registry,
                        const Tracer* tracer,
                        const TimeSeriesRegistry& timeseries =
                            TimeSeriesRegistry::Global());

/// Writes `tracer`'s Tracer::ChromeTraceJson() to `path` (flush- and
/// close-checked; load the file in chrome://tracing or Perfetto).
/// Returns false on any I/O failure.
bool WriteChromeTrace(const std::string& path, const Tracer& tracer);

}  // namespace obs
}  // namespace linbp

#endif  // LINBP_OBS_EXPORT_H_
