// Instrumentation entry points: the LINBP_OBS_* macros hot paths use to
// record into the global registry, plus the quiet-gated diagnostic log
// sink.
//
// Build with -DLINBP_OBS_DISABLED to compile every macro down to
// `(void)0` — no registry lookups, no atomics, no series created
// (tests/obs/obs_disabled_test.cc pins this). The class APIs in
// metrics.h / trace.h are unaffected by the flag, so there is no ODR
// hazard when translation units with and without the flag link against
// the same linbp_obs library.
//
// The macros cache the metric reference in a function-local static, so
// the registry mutex is taken once per call site, not per event.

#ifndef LINBP_OBS_OBS_H_
#define LINBP_OBS_OBS_H_

#include <string>

#include "src/obs/metrics.h"
#include "src/obs/timeseries.h"
#include "src/obs/trace.h"

#ifndef LINBP_OBS_DISABLED

/// Adds `delta` to global counter `name` (a string literal).
#define LINBP_OBS_COUNTER_ADD(name, delta)                                 \
  do {                                                                     \
    static ::linbp::obs::Counter& linbp_obs_counter_ =                     \
        ::linbp::obs::Registry::Global().GetCounter(name);                 \
    linbp_obs_counter_.Add(delta);                                         \
  } while (false)

/// Sets global gauge `name` (a string literal) to `value`.
#define LINBP_OBS_GAUGE_SET(name, value)                                   \
  do {                                                                     \
    static ::linbp::obs::Gauge& linbp_obs_gauge_ =                         \
        ::linbp::obs::Registry::Global().GetGauge(name);                   \
    linbp_obs_gauge_.Set(value);                                           \
  } while (false)

/// Records `value` into global histogram `name` (a string literal) with
/// the default latency buckets.
#define LINBP_OBS_HISTOGRAM_OBSERVE(name, value)                           \
  do {                                                                     \
    static ::linbp::obs::Histogram& linbp_obs_histogram_ =                 \
        ::linbp::obs::Registry::Global().GetHistogram(name);               \
    linbp_obs_histogram_.Observe(value);                                   \
  } while (false)

/// Starts a new run of global time series `name` (a string literal).
#define LINBP_OBS_TIMESERIES_BEGIN_RUN(name)                                \
  do {                                                                      \
    static ::linbp::obs::TimeSeries& linbp_obs_series_ =                    \
        ::linbp::obs::TimeSeriesRegistry::Global().Get(name);               \
    linbp_obs_series_.BeginRun();                                           \
  } while (false)

/// Appends an obs::TimeSeriesSample to global time series `name`.
#define LINBP_OBS_TIMESERIES_APPEND(name, sample)                           \
  do {                                                                      \
    static ::linbp::obs::TimeSeries& linbp_obs_series_ =                    \
        ::linbp::obs::TimeSeriesRegistry::Global().Get(name);               \
    linbp_obs_series_.Append(sample);                                       \
  } while (false)

#else  // LINBP_OBS_DISABLED

#define LINBP_OBS_COUNTER_ADD(name, delta) ((void)0)
#define LINBP_OBS_GAUGE_SET(name, value) ((void)0)
#define LINBP_OBS_HISTOGRAM_OBSERVE(name, value) ((void)0)
#define LINBP_OBS_TIMESERIES_BEGIN_RUN(name) ((void)0)
// References `sample` unevaluated so locals built only for this call
// stay warning-free in disabled builds.
#define LINBP_OBS_TIMESERIES_APPEND(name, sample) ((void)sizeof(sample))

#endif  // LINBP_OBS_DISABLED

namespace linbp {
namespace obs {

/// Quiet mode suppresses Log() output (set by the CLI `--quiet` flag).
/// Golden-producing stdout is never routed through Log, so quiet mode
/// only silences diagnostics.
void SetQuiet(bool quiet);
bool Quiet();

/// Writes "linbp: <message>\n" to stderr unless quiet mode is on. All
/// *new* diagnostic chatter goes through here so one flag silences it.
void Log(const std::string& message);

}  // namespace obs
}  // namespace linbp

#endif  // LINBP_OBS_OBS_H_
