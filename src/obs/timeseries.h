// Bounded per-run time-series: the per-sweep trajectory of a solver run
// (residual deltas, wall seconds, streamed bytes), kept alongside the
// scalar metrics in src/obs/metrics.h and emitted in the --metrics-out
// JSON report.
//
// A TimeSeries holds the samples of the CURRENT run only: BeginRun()
// clears it, Append() records one sweep. Memory stays bounded no matter
// how long a run is — once `capacity` samples are stored the series
// decimates itself (keeps every second stored sample and doubles its
// stride), so a 10^6-sweep run still costs `capacity` samples and the
// kept sweeps are deterministic: exactly those whose 0-based append
// index is a multiple of the final stride.
//
// Series are registered by name in TimeSeriesRegistry::Global() (hot
// paths use the LINBP_OBS_TIMESERIES_* macros in src/obs/obs.h, which
// compile out under LINBP_OBS_DISABLED) and share the registry-level
// null-sink contract of metrics: SetEnabled(false) turns Append and
// BeginRun into a relaxed-load no-op, so instrumented solves stay
// bit-identical to uninstrumented ones (test-enforced).

#ifndef LINBP_OBS_TIMESERIES_H_
#define LINBP_OBS_TIMESERIES_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/metrics.h"

namespace linbp {
namespace obs {

/// One recorded solver sweep.
struct TimeSeriesSample {
  std::int64_t sweep = 0;        // 1-based sweep index within the run
  double delta = 0.0;            // L-inf residual delta of the sweep
  double delta_l2 = 0.0;         // L2 norm of the belief change
  double seconds = 0.0;          // wall seconds of the sweep
  std::int64_t bytes_streamed = 0;  // shard bytes read during the sweep
  // Belief-storage precision of the run ("f64" or "f32"), kept as a
  // plain string so obs stays independent of the la layer's enum.
  std::string precision = "f64";
};

/// Default bound on stored samples per run. Must be even (the decimation
/// step halves the stored set in place).
inline constexpr std::size_t kDefaultTimeSeriesCapacity = 512;

/// A bounded recorder for one named series. Thread-safe; writes take a
/// mutex — series record per solver sweep, not per row, so this is far
/// off every hot path.
class TimeSeries {
 public:
  explicit TimeSeries(std::size_t capacity = kDefaultTimeSeriesCapacity,
                      const std::atomic<bool>* enabled =
                          internal::AlwaysEnabled());
  TimeSeries(const TimeSeries&) = delete;
  TimeSeries& operator=(const TimeSeries&) = delete;

  /// Starts a new run: clears the stored samples, resets the stride, and
  /// increments runs(). Solvers call this once per (re-)solve.
  void BeginRun();

  /// Records one sweep of the current run. Samples whose 0-based append
  /// index is not a multiple of the current stride are counted (see
  /// total_appends) but not stored.
  void Append(const TimeSeriesSample& sample);

  /// Snapshot of the stored samples of the current run, in append order.
  std::vector<TimeSeriesSample> Samples() const;

  /// Number of BeginRun() calls since construction / Reset().
  std::int64_t runs() const;

  /// Appends seen by the current run, including decimated-away ones.
  std::int64_t total_appends() const;

  /// Current decimation stride (1 until the capacity first fills).
  std::int64_t stride() const;

  std::size_t capacity() const { return capacity_; }

  /// Clears samples AND the run counter (for tests).
  void Reset();

  /// {"runs":N,"total_appends":M,"stride":S,"samples":[{...} ...]}
  std::string Json() const;

 private:
  const std::atomic<bool>* enabled_;  // not owned
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<TimeSeriesSample> samples_;
  std::int64_t runs_ = 0;
  std::int64_t appends_ = 0;  // of the current run
  std::int64_t stride_ = 1;
};

/// Name -> TimeSeries map mirroring obs::Registry: thread-safe, returned
/// references stay valid for the registry's lifetime (macro call sites
/// cache them in function-local statics), and SetEnabled(false) null-
/// sinks every series it owns.
class TimeSeriesRegistry {
 public:
  TimeSeriesRegistry() = default;
  TimeSeriesRegistry(const TimeSeriesRegistry&) = delete;
  TimeSeriesRegistry& operator=(const TimeSeriesRegistry&) = delete;

  /// The process-wide registry the LINBP_OBS_TIMESERIES_* macros use.
  static TimeSeriesRegistry& Global();

  /// Finds or creates the series `name`.
  TimeSeries& Get(const std::string& name,
                  std::size_t capacity = kDefaultTimeSeriesCapacity);

  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  std::size_t num_series() const;

  /// Resets every series in place (references stay valid). For tests.
  void Reset();

  /// {"series":[{"name":...,<TimeSeries::Json() fields>} ...]}, series
  /// in name order.
  std::string Json() const;

 private:
  mutable std::mutex mutex_;
  std::atomic<bool> enabled_{true};
  std::map<std::string, std::unique_ptr<TimeSeries>> series_;
};

}  // namespace obs
}  // namespace linbp

#endif  // LINBP_OBS_TIMESERIES_H_
