#include "src/util/random.h"

#include <cmath>

#include "src/util/check.h"

namespace linbp {
namespace {

std::uint64_t SplitMix64(std::uint64_t* x) {
  std::uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(&s);
}

std::uint64_t Rng::NextUint64() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  LINBP_CHECK(bound > 0);
  // Rejection sampling on the top of the range to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  while (true) {
    const std::uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::NextInt(std::int64_t lo, std::int64_t hi) {
  LINBP_CHECK(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(NextBounded(span));
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  constexpr double kPi = 3.14159265358979323846;
  const double angle = 2.0 * kPi * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

}  // namespace linbp
