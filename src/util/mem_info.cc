#include "src/util/mem_info.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace linbp {
namespace util {

namespace internal {
std::int64_t ParseProcKbLines(std::istream& in, const std::string& field) {
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(field, 0) != 0 || line.size() <= field.size() ||
        line[field.size()] != ':') {
      continue;
    }
    std::istringstream rest(line.substr(field.size() + 1));
    std::int64_t kb = 0;
    std::string unit;
    if (!(rest >> kb >> unit) || kb < 0 || unit != "kB") return 0;
    return kb * 1024;
  }
  return 0;
}
}  // namespace internal

namespace {

// 0 when the file or field is missing or malformed ("unknown", never
// "no memory" — see the header contract).
std::int64_t ReadProcKbField(const char* path, const std::string& field) {
  std::ifstream in(path);
  if (!in) return 0;
  return internal::ParseProcKbLines(in, field);
}

}  // namespace

std::int64_t PeakRssBytes() {
  return ReadProcKbField("/proc/self/status", "VmHWM");
}

std::int64_t CurrentRssBytes() {
  return ReadProcKbField("/proc/self/status", "VmRSS");
}

std::int64_t AvailableMemoryBytes() {
  return ReadProcKbField("/proc/meminfo", "MemAvailable");
}

}  // namespace util
}  // namespace linbp
