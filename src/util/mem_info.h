// Process and system memory probes, for the out-of-core benches and the
// `linbp_cli info` RAM warning. Linux-only data sources with graceful
// fallbacks: callers must treat 0 as "unknown", never as "no memory".

#ifndef LINBP_UTIL_MEM_INFO_H_
#define LINBP_UTIL_MEM_INFO_H_

#include <cstdint>
#include <iosfwd>
#include <string>

namespace linbp {
namespace util {

namespace internal {
/// Scans status-style lines ("<field>:  <value> kB") for `field` and
/// returns the value in bytes. Returns 0 — the "unknown" sentinel, NOT
/// zero bytes — when the field is missing, malformed, negative, or in a
/// unit other than kB. Exposed for tests pinning that contract.
std::int64_t ParseProcKbLines(std::istream& in, const std::string& field);
}  // namespace internal

/// Peak resident set size of this process in bytes (VmHWM from
/// /proc/self/status). Returns 0 when the probe is unavailable (non-Linux
/// or unreadable procfs).
std::int64_t PeakRssBytes();

/// Current resident set size in bytes (VmRSS). 0 when unavailable.
std::int64_t CurrentRssBytes();

/// Memory available to this process without swapping, in bytes
/// (MemAvailable from /proc/meminfo). 0 when unavailable.
std::int64_t AvailableMemoryBytes();

}  // namespace util
}  // namespace linbp

#endif  // LINBP_UTIL_MEM_INFO_H_
