// Lightweight precondition / invariant macros.
//
// LINBP_CHECK aborts with a diagnostic when a documented precondition of a
// public API is violated or an internal invariant breaks. The library does
// not throw exceptions; misuse is a programming error, not a recoverable
// condition.

#ifndef LINBP_UTIL_CHECK_H_
#define LINBP_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define LINBP_CHECK(cond)                                                    \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "LINBP_CHECK failed at %s:%d: %s\n", __FILE__,    \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (false)

#define LINBP_CHECK_MSG(cond, msg)                                           \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "LINBP_CHECK failed at %s:%d: %s (%s)\n",         \
                   __FILE__, __LINE__, #cond, msg);                          \
      std::abort();                                                          \
    }                                                                        \
  } while (false)

#endif  // LINBP_UTIL_CHECK_H_
