// Wall-clock timing for the benchmark harnesses.

#ifndef LINBP_UTIL_TIMER_H_
#define LINBP_UTIL_TIMER_H_

#include <chrono>

namespace linbp {

/// Simple monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace linbp

#endif  // LINBP_UTIL_TIMER_H_
