// Deterministic pseudo-random number generation.
//
// All randomized components of the library (graph generators, belief
// seeding, property tests) take an explicit seed and use this generator, so
// every experiment in the repository is exactly reproducible.

#ifndef LINBP_UTIL_RANDOM_H_
#define LINBP_UTIL_RANDOM_H_

#include <cstdint>

namespace linbp {

/// xoshiro256** PRNG seeded via splitmix64. Deterministic across platforms,
/// much faster than std::mt19937_64, and good enough statistically for
/// synthetic workload generation.
class Rng {
 public:
  /// Creates a generator whose full 256-bit state is derived from `seed`.
  explicit Rng(std::uint64_t seed);

  /// Returns the next 64 uniformly random bits.
  std::uint64_t NextUint64();

  /// Returns a uniform integer in [0, bound). `bound` must be > 0.
  /// Uses rejection sampling, so the result is exactly uniform.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Returns a uniform double in [0, 1).
  double NextDouble();

  /// Returns a uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi);

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool NextBernoulli(double p);

  /// Returns a standard normal variate (Box-Muller, one value per call).
  double NextGaussian();

 private:
  std::uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace linbp

#endif  // LINBP_UTIL_RANDOM_H_
