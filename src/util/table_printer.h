// Aligned plain-text tables for the benchmark harnesses.
//
// Every experiment binary prints the same rows/series the paper reports;
// this helper keeps the output readable and diffable.

#ifndef LINBP_UTIL_TABLE_PRINTER_H_
#define LINBP_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace linbp {

/// Collects rows of string cells and prints them with aligned columns.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends one row; must have as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table (header, separator, rows) to a string.
  std::string ToString() const;

  /// Prints the table to stdout.
  void Print() const;

  /// Formats a double with `digits` significant digits.
  static std::string Num(double value, int digits = 4);

  /// Formats an integer with thousands separators ("1 048 576").
  static std::string Int(long long value);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace linbp

#endif  // LINBP_UTIL_TABLE_PRINTER_H_
