#include "src/util/table_printer.h"

#include <cstdio>
#include <sstream>

#include "src/util/check.h"

namespace linbp {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  LINBP_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      // Right-align every cell; simple and uniform.
      out << std::string(widths[c] - row[c].size(), ' ') << row[c];
    }
    out << '\n';
  };
  emit_row(headers_);
  std::string sep;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c != 0) sep += "  ";
    sep += std::string(widths[c], '-');
  }
  out << sep << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TablePrinter::Print() const {
  const std::string rendered = ToString();
  std::fwrite(rendered.data(), 1, rendered.size(), stdout);
  std::fflush(stdout);
}

std::string TablePrinter::Num(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
  return buf;
}

std::string TablePrinter::Int(long long value) {
  const bool negative = value < 0;
  unsigned long long magnitude =
      negative ? -static_cast<unsigned long long>(value) : value;
  std::string digits = std::to_string(magnitude);
  std::string grouped;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) grouped += ' ';
    grouped += *it;
    ++count;
  }
  if (negative) grouped += '-';
  return {grouped.rbegin(), grouped.rend()};
}

}  // namespace linbp
