// Dense factorizations and eigenvalue routines for small matrices.
//
// The paper needs: inverses of (I_k - Hhat^2) (Lemma 6), LU solves of the
// nk x nk closed-form system on small graphs (Prop. 7), and eigenvalues of
// the symmetric residual coupling matrix Hhat (rho(Hhat), Lemma 8).

#ifndef LINBP_LA_DENSE_LINALG_H_
#define LINBP_LA_DENSE_LINALG_H_

#include <optional>
#include <vector>

#include "src/la/dense_matrix.h"

namespace linbp {

/// LU factorization with partial pivoting of a square matrix.
/// Returns std::nullopt if the matrix is numerically singular.
class LuFactorization {
 public:
  /// Factors `a`; fails (returns nullopt) on singular input.
  static std::optional<LuFactorization> Compute(const DenseMatrix& a);

  /// Solves A x = b for one right-hand side.
  std::vector<double> Solve(const std::vector<double>& b) const;

  /// Solves A X = B column-by-column.
  DenseMatrix SolveMatrix(const DenseMatrix& b) const;

 private:
  LuFactorization() = default;
  DenseMatrix lu_;             // combined L (unit diag) and U factors
  std::vector<int> pivots_;    // row permutation
};

/// Returns the inverse of a square matrix, or nullopt if singular.
std::optional<DenseMatrix> Inverse(const DenseMatrix& a);

/// All eigenvalues of a symmetric matrix via the cyclic Jacobi rotation
/// method. The input must be symmetric; values are returned unsorted.
std::vector<double> SymmetricEigenvalues(const DenseMatrix& a,
                                         double tol = 1e-13,
                                         int max_sweeps = 64);

/// Spectral radius (max |eigenvalue|) of a symmetric matrix.
double SymmetricSpectralRadius(const DenseMatrix& a);

}  // namespace linbp

#endif  // LINBP_LA_DENSE_LINALG_H_
