#include "src/la/dense_linalg.h"

#include <cmath>

#include "src/util/check.h"

namespace linbp {

std::optional<LuFactorization> LuFactorization::Compute(const DenseMatrix& a) {
  LINBP_CHECK(a.rows() == a.cols());
  const std::int64_t n = a.rows();
  LuFactorization f;
  f.lu_ = a;
  f.pivots_.resize(n);
  for (std::int64_t col = 0; col < n; ++col) {
    // Partial pivoting: pick the largest magnitude entry in this column.
    std::int64_t pivot_row = col;
    double pivot_mag = std::abs(f.lu_.At(col, col));
    for (std::int64_t r = col + 1; r < n; ++r) {
      const double mag = std::abs(f.lu_.At(r, col));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = r;
      }
    }
    if (pivot_mag < 1e-300) return std::nullopt;  // numerically singular
    f.pivots_[col] = static_cast<int>(pivot_row);
    if (pivot_row != col) {
      for (std::int64_t c = 0; c < n; ++c) {
        std::swap(f.lu_.At(col, c), f.lu_.At(pivot_row, c));
      }
    }
    const double pivot = f.lu_.At(col, col);
    for (std::int64_t r = col + 1; r < n; ++r) {
      const double factor = f.lu_.At(r, col) / pivot;
      f.lu_.At(r, col) = factor;
      if (factor == 0.0) continue;
      for (std::int64_t c = col + 1; c < n; ++c) {
        f.lu_.At(r, c) -= factor * f.lu_.At(col, c);
      }
    }
  }
  return f;
}

std::vector<double> LuFactorization::Solve(const std::vector<double>& b) const {
  const std::int64_t n = lu_.rows();
  LINBP_CHECK(static_cast<std::int64_t>(b.size()) == n);
  std::vector<double> x = b;
  // Apply the row permutation, then forward- and back-substitute.
  for (std::int64_t i = 0; i < n; ++i) {
    std::swap(x[i], x[pivots_[i]]);
  }
  for (std::int64_t i = 1; i < n; ++i) {
    double acc = x[i];
    for (std::int64_t j = 0; j < i; ++j) acc -= lu_.At(i, j) * x[j];
    x[i] = acc;
  }
  for (std::int64_t i = n - 1; i >= 0; --i) {
    double acc = x[i];
    for (std::int64_t j = i + 1; j < n; ++j) acc -= lu_.At(i, j) * x[j];
    x[i] = acc / lu_.At(i, i);
  }
  return x;
}

DenseMatrix LuFactorization::SolveMatrix(const DenseMatrix& b) const {
  LINBP_CHECK(b.rows() == lu_.rows());
  DenseMatrix x(b.rows(), b.cols());
  std::vector<double> column(b.rows());
  for (std::int64_t c = 0; c < b.cols(); ++c) {
    for (std::int64_t r = 0; r < b.rows(); ++r) column[r] = b.At(r, c);
    const std::vector<double> solved = Solve(column);
    for (std::int64_t r = 0; r < b.rows(); ++r) x.At(r, c) = solved[r];
  }
  return x;
}

std::optional<DenseMatrix> Inverse(const DenseMatrix& a) {
  const auto lu = LuFactorization::Compute(a);
  if (!lu.has_value()) return std::nullopt;
  return lu->SolveMatrix(DenseMatrix::Identity(a.rows()));
}

std::vector<double> SymmetricEigenvalues(const DenseMatrix& a, double tol,
                                         int max_sweeps) {
  LINBP_CHECK_MSG(a.IsSymmetric(1e-9), "Jacobi eigensolver needs symmetry");
  DenseMatrix m = a;
  const std::int64_t n = m.rows();
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off_diag = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = i + 1; j < n; ++j) {
        off_diag += m.At(i, j) * m.At(i, j);
      }
    }
    if (std::sqrt(2.0 * off_diag) < tol) break;
    for (std::int64_t p = 0; p < n; ++p) {
      for (std::int64_t q = p + 1; q < n; ++q) {
        const double apq = m.At(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const double app = m.At(p, p);
        const double aqq = m.At(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        // Stable computation of tan of the rotation angle.
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::int64_t i = 0; i < n; ++i) {
          const double mip = m.At(i, p);
          const double miq = m.At(i, q);
          m.At(i, p) = c * mip - s * miq;
          m.At(i, q) = s * mip + c * miq;
        }
        for (std::int64_t i = 0; i < n; ++i) {
          const double mpi = m.At(p, i);
          const double mqi = m.At(q, i);
          m.At(p, i) = c * mpi - s * mqi;
          m.At(q, i) = s * mpi + c * mqi;
        }
      }
    }
  }
  std::vector<double> eigenvalues(n);
  for (std::int64_t i = 0; i < n; ++i) eigenvalues[i] = m.At(i, i);
  return eigenvalues;
}

double SymmetricSpectralRadius(const DenseMatrix& a) {
  double radius = 0.0;
  for (const double ev : SymmetricEigenvalues(a)) {
    radius = std::max(radius, std::abs(ev));
  }
  return radius;
}

}  // namespace linbp
