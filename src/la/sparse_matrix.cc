#include "src/la/sparse_matrix.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace linbp {

SparseMatrix::SparseMatrix(std::int64_t rows, std::int64_t cols)
    : rows_(rows), cols_(cols), row_ptr_(rows + 1, 0) {
  LINBP_CHECK(rows >= 0 && cols >= 0);
}

SparseMatrix SparseMatrix::FromTriplets(std::int64_t rows, std::int64_t cols,
                                        std::vector<Triplet> triplets) {
  SparseMatrix m(rows, cols);
  for (const Triplet& t : triplets) {
    LINBP_CHECK(t.row >= 0 && t.row < rows && t.col >= 0 && t.col < cols);
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  m.col_idx_.reserve(triplets.size());
  m.values_.reserve(triplets.size());
  std::size_t i = 0;
  while (i < triplets.size()) {
    // Sum runs of duplicate (row, col) coordinates.
    double sum = triplets[i].value;
    std::size_t j = i + 1;
    while (j < triplets.size() && triplets[j].row == triplets[i].row &&
           triplets[j].col == triplets[i].col) {
      sum += triplets[j].value;
      ++j;
    }
    m.col_idx_.push_back(static_cast<std::int32_t>(triplets[i].col));
    m.values_.push_back(sum);
    ++m.row_ptr_[triplets[i].row + 1];
    i = j;
  }
  for (std::int64_t r = 0; r < rows; ++r) m.row_ptr_[r + 1] += m.row_ptr_[r];
  return m;
}

std::vector<double> SparseMatrix::MultiplyVector(
    const std::vector<double>& x) const {
  LINBP_CHECK(static_cast<std::int64_t>(x.size()) == cols_);
  std::vector<double> y(rows_, 0.0);
  for (std::int64_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::int64_t e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e) {
      acc += values_[e] * x[col_idx_[e]];
    }
    y[r] = acc;
  }
  return y;
}

std::vector<double> SparseMatrix::TransposeMultiplyVector(
    const std::vector<double>& x) const {
  LINBP_CHECK(static_cast<std::int64_t>(x.size()) == rows_);
  std::vector<double> y(cols_, 0.0);
  for (std::int64_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::int64_t e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e) {
      y[col_idx_[e]] += values_[e] * xr;
    }
  }
  return y;
}

DenseMatrix SparseMatrix::MultiplyDense(const DenseMatrix& b) const {
  LINBP_CHECK(b.rows() == cols_);
  const std::int64_t k = b.cols();
  DenseMatrix out(rows_, k);
  const double* b_data = b.data().data();
  double* out_data = out.mutable_data().data();
  for (std::int64_t r = 0; r < rows_; ++r) {
    double* out_row = out_data + r * k;
    for (std::int64_t e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e) {
      const double w = values_[e];
      const double* b_row = b_data + static_cast<std::int64_t>(col_idx_[e]) * k;
      for (std::int64_t c = 0; c < k; ++c) out_row[c] += w * b_row[c];
    }
  }
  return out;
}

SparseMatrix SparseMatrix::Transpose() const {
  SparseMatrix t(cols_, rows_);
  t.col_idx_.resize(values_.size());
  t.values_.resize(values_.size());
  // Counting sort of entries by column index.
  for (const std::int32_t c : col_idx_) ++t.row_ptr_[c + 1];
  for (std::int64_t r = 0; r < cols_; ++r) t.row_ptr_[r + 1] += t.row_ptr_[r];
  std::vector<std::int64_t> cursor(t.row_ptr_.begin(), t.row_ptr_.end() - 1);
  for (std::int64_t r = 0; r < rows_; ++r) {
    for (std::int64_t e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e) {
      const std::int64_t pos = cursor[col_idx_[e]]++;
      t.col_idx_[pos] = static_cast<std::int32_t>(r);
      t.values_[pos] = values_[e];
    }
  }
  return t;
}

std::vector<double> SparseMatrix::AbsRowSums() const {
  std::vector<double> sums(rows_, 0.0);
  for (std::int64_t r = 0; r < rows_; ++r) {
    for (std::int64_t e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e) {
      sums[r] += std::abs(values_[e]);
    }
  }
  return sums;
}

std::vector<double> SparseMatrix::AbsColSums() const {
  std::vector<double> sums(cols_, 0.0);
  for (std::size_t e = 0; e < values_.size(); ++e) {
    sums[col_idx_[e]] += std::abs(values_[e]);
  }
  return sums;
}

std::vector<double> SparseMatrix::SquaredRowSums() const {
  std::vector<double> sums(rows_, 0.0);
  for (std::int64_t r = 0; r < rows_; ++r) {
    for (std::int64_t e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e) {
      sums[r] += values_[e] * values_[e];
    }
  }
  return sums;
}

double SparseMatrix::At(std::int64_t row, std::int64_t col) const {
  LINBP_CHECK(row >= 0 && row < rows_ && col >= 0 && col < cols_);
  const auto begin = col_idx_.begin() + row_ptr_[row];
  const auto end = col_idx_.begin() + row_ptr_[row + 1];
  const auto it =
      std::lower_bound(begin, end, static_cast<std::int32_t>(col));
  if (it == end || *it != col) return 0.0;
  return values_[it - col_idx_.begin()];
}

DenseMatrix SparseMatrix::ToDense() const {
  DenseMatrix d(rows_, cols_);
  for (std::int64_t r = 0; r < rows_; ++r) {
    for (std::int64_t e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e) {
      d.At(r, col_idx_[e]) += values_[e];
    }
  }
  return d;
}

bool SparseMatrix::IsSymmetric() const {
  if (rows_ != cols_) return false;
  const SparseMatrix t = Transpose();
  if (t.row_ptr_ != row_ptr_ || t.col_idx_ != col_idx_) return false;
  for (std::size_t e = 0; e < values_.size(); ++e) {
    if (t.values_[e] != values_[e]) return false;
  }
  return true;
}

}  // namespace linbp
