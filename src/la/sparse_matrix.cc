#include "src/la/sparse_matrix.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <utility>

#include "src/exec/row_partition.h"
#include "src/util/check.h"

namespace linbp {
namespace {

// Shared blocked row iteration for the product kernels: splits the rows
// into nnz-balanced blocks sized for `ctx` and the per-entry work, and
// runs body(row_begin, row_end) per block. Falls back to one serial block
// when the context is serial or the total work is too small to amortize a
// dispatch.
void ForEachRowBlock(const exec::ExecContext& ctx,
                     const std::vector<std::int64_t>& row_ptr,
                     std::int64_t work_per_entry,
                     const std::function<void(std::int64_t, std::int64_t)>&
                         body) {
  const std::int64_t num_rows =
      static_cast<std::int64_t>(row_ptr.size()) - 1;
  if (num_rows <= 0) return;
  const std::int64_t work = row_ptr[num_rows] * work_per_entry;
  const std::int64_t blocks =
      ctx.NumChunks(work, exec::kDefaultMinWorkPerChunk);
  if (blocks <= 1) {
    body(0, num_rows);
    return;
  }
  const exec::RowPartition partition =
      exec::RowPartition::NnzBalanced(row_ptr, blocks);
  ctx.RunBlocks(partition.num_blocks(), [&](std::int64_t b) {
    body(partition.begin(b), partition.end(b));
  });
}

}  // namespace

template <typename Scalar>
void SpmmRowsT(const std::int64_t* row_ptr, const std::int32_t* col_idx,
               const Scalar* values, std::int64_t row_begin,
               std::int64_t row_end, const Scalar* b, std::int64_t k,
               Scalar* out) {
  // Cache-blocked inner loop: the k dimension is tiled so each tile's
  // accumulators stay in registers while the row's entries stream by. For
  // a fixed output element the entry order is unchanged, so the result is
  // bit-identical to the untiled scalar kernel of the same Scalar. The
  // operand pointers are restrict-qualified and the per-entry tile update
  // carries an `omp simd` hint (the build adds -fopenmp-simd, no OpenMP
  // runtime): the acc[c] lanes are independent, so vectorizing across c
  // changes no accumulation order. gcc 12.2 -O3 -fopt-info-vec reports
  // "loop vectorized using 16 byte vectors" for both instantiations
  // (verified 2026-08; rerun with
  //   g++ -std=c++17 -O3 -fopenmp-simd -fopt-info-vec -c \
  //     src/la/sparse_matrix.cc -I.
  // when touching this kernel).
  constexpr std::int64_t kColTile = 8;
  const Scalar* __restrict__ vals = values;
  const std::int32_t* __restrict__ cols = col_idx;
  for (std::int64_t r = row_begin; r < row_end; ++r) {
    Scalar* __restrict__ out_row = out + r * k;
    const std::int64_t e_begin = row_ptr[r];
    const std::int64_t e_end = row_ptr[r + 1];
    for (std::int64_t c0 = 0; c0 < k; c0 += kColTile) {
      const std::int64_t tile = std::min(kColTile, k - c0);
      Scalar acc[kColTile] = {};
      for (std::int64_t e = e_begin; e < e_end; ++e) {
        const Scalar w = vals[e];
        const Scalar* __restrict__ b_row =
            b + static_cast<std::int64_t>(cols[e]) * k + c0;
#pragma omp simd
        for (std::int64_t c = 0; c < tile; ++c) acc[c] += w * b_row[c];
      }
      for (std::int64_t c = 0; c < tile; ++c) out_row[c0 + c] = acc[c];
    }
  }
}

template <typename Scalar>
void SpmvRowsT(const std::int64_t* row_ptr, const std::int32_t* col_idx,
               const Scalar* values, std::int64_t row_begin,
               std::int64_t row_end, const Scalar* x, Scalar* y) {
  // The stored-zero skip protects 0 * inf / 0 * nan in operand vectors
  // (explicit entries with zero weight are legal CSR); it lives here, in
  // the one per-scalar implementation, so MultiplyVector and the
  // row-range entry point cannot drift.
  for (std::int64_t r = row_begin; r < row_end; ++r) {
    Scalar acc = Scalar(0);
    for (std::int64_t e = row_ptr[r]; e < row_ptr[r + 1]; ++e) {
      const Scalar w = values[e];
      if (w == Scalar(0)) continue;
      acc += w * x[col_idx[e]];
    }
    y[r] = acc;
  }
}

template <typename Scalar>
void SpmtvRowsT(const std::int64_t* row_ptr, const std::int32_t* col_idx,
                const Scalar* values, std::int64_t row_begin,
                std::int64_t row_end, const Scalar* x, Scalar* out) {
  for (std::int64_t r = row_begin; r < row_end; ++r) {
    const Scalar xr = x[r];
    if (xr == Scalar(0)) continue;
    for (std::int64_t e = row_ptr[r]; e < row_ptr[r + 1]; ++e) {
      const Scalar w = values[e];
      if (w == Scalar(0)) continue;
      out[col_idx[e]] += w * xr;
    }
  }
}

template void SpmmRowsT<double>(const std::int64_t*, const std::int32_t*,
                                const double*, std::int64_t, std::int64_t,
                                const double*, std::int64_t, double*);
template void SpmmRowsT<float>(const std::int64_t*, const std::int32_t*,
                               const float*, std::int64_t, std::int64_t,
                               const float*, std::int64_t, float*);
template void SpmvRowsT<double>(const std::int64_t*, const std::int32_t*,
                                const double*, std::int64_t, std::int64_t,
                                const double*, double*);
template void SpmvRowsT<float>(const std::int64_t*, const std::int32_t*,
                               const float*, std::int64_t, std::int64_t,
                               const float*, float*);
template void SpmtvRowsT<double>(const std::int64_t*, const std::int32_t*,
                                 const double*, std::int64_t, std::int64_t,
                                 const double*, double*);
template void SpmtvRowsT<float>(const std::int64_t*, const std::int32_t*,
                                const float*, std::int64_t, std::int64_t,
                                const float*, float*);

SparseMatrix::SparseMatrix(std::int64_t rows, std::int64_t cols)
    : rows_(rows), cols_(cols), row_ptr_(rows + 1, 0) {
  LINBP_CHECK(rows >= 0 && cols >= 0);
}

SparseMatrix SparseMatrix::FromTriplets(std::int64_t rows, std::int64_t cols,
                                        std::vector<Triplet> triplets) {
  SparseMatrix m(rows, cols);
  for (const Triplet& t : triplets) {
    LINBP_CHECK(t.row >= 0 && t.row < rows && t.col >= 0 && t.col < cols);
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  m.col_idx_.reserve(triplets.size());
  m.values_.reserve(triplets.size());
  std::size_t i = 0;
  while (i < triplets.size()) {
    // Sum runs of duplicate (row, col) coordinates.
    double sum = triplets[i].value;
    std::size_t j = i + 1;
    while (j < triplets.size() && triplets[j].row == triplets[i].row &&
           triplets[j].col == triplets[i].col) {
      sum += triplets[j].value;
      ++j;
    }
    m.col_idx_.push_back(static_cast<std::int32_t>(triplets[i].col));
    m.values_.push_back(sum);
    ++m.row_ptr_[triplets[i].row + 1];
    i = j;
  }
  for (std::int64_t r = 0; r < rows; ++r) m.row_ptr_[r + 1] += m.row_ptr_[r];
  return m;
}

SparseMatrix SparseMatrix::FromCsr(std::int64_t rows, std::int64_t cols,
                                   std::vector<std::int64_t> row_ptr,
                                   std::vector<std::int32_t> col_idx,
                                   std::vector<double> values,
                                   const exec::ExecContext& ctx) {
  LINBP_CHECK(static_cast<std::int64_t>(row_ptr.size()) == rows + 1);
  LINBP_CHECK(col_idx.size() == values.size());
  LINBP_CHECK(row_ptr.front() == 0);
  LINBP_CHECK(row_ptr.back() == static_cast<std::int64_t>(col_idx.size()));
  ctx.ParallelFor(0, rows, /*min_grain=*/4096,
                  [&](std::int64_t row_begin, std::int64_t row_end) {
                    for (std::int64_t r = row_begin; r < row_end; ++r) {
                      LINBP_CHECK(row_ptr[r] <= row_ptr[r + 1]);
                      for (std::int64_t e = row_ptr[r]; e < row_ptr[r + 1];
                           ++e) {
                        LINBP_CHECK(col_idx[e] >= 0 && col_idx[e] < cols);
                        LINBP_CHECK_MSG(e == row_ptr[r] ||
                                            col_idx[e - 1] < col_idx[e],
                                        "CSR columns must be strictly "
                                        "increasing within a row");
                      }
                    }
                  });
  return FromValidatedCsr(rows, cols, std::move(row_ptr),
                          std::move(col_idx), std::move(values));
}

SparseMatrix SparseMatrix::FromValidatedCsr(
    std::int64_t rows, std::int64_t cols, std::vector<std::int64_t> row_ptr,
    std::vector<std::int32_t> col_idx, std::vector<double> values) {
  SparseMatrix m(rows, cols);
  LINBP_CHECK(static_cast<std::int64_t>(row_ptr.size()) == rows + 1);
  LINBP_CHECK(col_idx.size() == values.size());
  m.row_ptr_ = std::move(row_ptr);
  m.col_idx_ = std::move(col_idx);
  m.values_ = std::move(values);
  return m;
}

std::vector<double> SparseMatrix::MultiplyVector(
    const std::vector<double>& x, const exec::ExecContext& ctx) const {
  LINBP_CHECK(static_cast<std::int64_t>(x.size()) == cols_);
  std::vector<double> y(rows_, 0.0);
  ForEachRowBlock(ctx, row_ptr_, /*work_per_entry=*/1,
                  [&](std::int64_t row_begin, std::int64_t row_end) {
                    SpmvRows(row_ptr_.data(), col_idx_.data(), values_.data(),
                             row_begin, row_end, x.data(), y.data());
                  });
  return y;
}

std::vector<double> SparseMatrix::TransposeMultiplyVector(
    const std::vector<double>& x, const exec::ExecContext& ctx) const {
  LINBP_CHECK(static_cast<std::int64_t>(x.size()) == rows_);
  std::vector<double> y(cols_, 0.0);
  const std::int64_t blocks =
      ctx.NumChunks(NumNonZeros(), exec::kDefaultMinWorkPerChunk);
  auto scatter_rows = [&](std::int64_t row_begin, std::int64_t row_end,
                          double* out) {
    SpmtvRowsT<double>(row_ptr_.data(), col_idx_.data(), values_.data(),
                       row_begin, row_end, x.data(), out);
  };
  if (blocks <= 1 || rows_ <= 1) {
    scatter_rows(0, rows_, y.data());
    return y;
  }
  // Blocked per-thread-accumulator reduction: every block scatters into a
  // private column accumulator; the partials are then summed in block
  // order, which keeps the result deterministic for a fixed context.
  const exec::RowPartition partition =
      exec::RowPartition::NnzBalanced(row_ptr_, blocks);
  std::vector<std::vector<double>> partials(
      partition.num_blocks(), std::vector<double>(cols_, 0.0));
  ctx.RunBlocks(partition.num_blocks(), [&](std::int64_t b) {
    scatter_rows(partition.begin(b), partition.end(b), partials[b].data());
  });
  for (const std::vector<double>& partial : partials) {
    for (std::int64_t c = 0; c < cols_; ++c) y[c] += partial[c];
  }
  return y;
}

DenseMatrix SparseMatrix::MultiplyDense(const DenseMatrix& b,
                                        const exec::ExecContext& ctx) const {
  LINBP_CHECK(b.rows() == cols_);
  const std::int64_t k = b.cols();
  DenseMatrix out(rows_, k);
  const double* b_data = b.data().data();
  double* out_data = out.mutable_data().data();
  // The k-tiled kernel itself lives in SpmmRows (shared with the
  // out-of-core block-apply path); this wrapper only supplies the
  // nnz-balanced parallel row blocking.
  ForEachRowBlock(ctx, row_ptr_, /*work_per_entry=*/k,
                  [&](std::int64_t row_begin, std::int64_t row_end) {
                    SpmmRows(row_ptr_.data(), col_idx_.data(), values_.data(),
                             row_begin, row_end, b_data, k, out_data);
                  });
  return out;
}

std::shared_ptr<const std::vector<float>> SparseMatrix::values_f32() const {
  std::shared_ptr<const std::vector<float>> cached =
      std::atomic_load(&values_f32_cache_);
  if (cached != nullptr) return cached;
  auto built = std::make_shared<std::vector<float>>(values_.size());
  for (std::size_t i = 0; i < values_.size(); ++i) {
    (*built)[i] = static_cast<float>(values_[i]);
  }
  std::shared_ptr<const std::vector<float>> publish = std::move(built);
  // On a lost race, adopt the winner's copy (identical contents) so
  // every caller shares one allocation.
  if (std::atomic_compare_exchange_strong(&values_f32_cache_, &cached,
                                          publish)) {
    return publish;
  }
  return cached;
}

DenseMatrixF32 SparseMatrix::MultiplyDenseF32(
    const DenseMatrixF32& b, const exec::ExecContext& ctx) const {
  LINBP_CHECK(b.rows() == cols_);
  const std::int64_t k = b.cols();
  DenseMatrixF32 out(rows_, k);
  const std::shared_ptr<const std::vector<float>> vals = values_f32();
  const float* b_data = b.data().data();
  float* out_data = out.mutable_data().data();
  // f32 entries cost half the bandwidth of f64, so the nnz-balanced
  // blocking sees half the per-entry work (floor 1 keeps k=1 sane).
  const std::int64_t work_per_entry = std::max<std::int64_t>(1, k / 2);
  ForEachRowBlock(ctx, row_ptr_, work_per_entry,
                  [&](std::int64_t row_begin, std::int64_t row_end) {
                    SpmmRowsT<float>(row_ptr_.data(), col_idx_.data(),
                                     vals->data(), row_begin, row_end, b_data,
                                     k, out_data);
                  });
  return out;
}

std::vector<float> SparseMatrix::MultiplyVectorF32(
    const std::vector<float>& x, const exec::ExecContext& ctx) const {
  LINBP_CHECK(static_cast<std::int64_t>(x.size()) == cols_);
  std::vector<float> y(rows_, 0.0f);
  const std::shared_ptr<const std::vector<float>> vals = values_f32();
  ForEachRowBlock(ctx, row_ptr_, /*work_per_entry=*/1,
                  [&](std::int64_t row_begin, std::int64_t row_end) {
                    SpmvRowsT<float>(row_ptr_.data(), col_idx_.data(),
                                     vals->data(), row_begin, row_end,
                                     x.data(), y.data());
                  });
  return y;
}

SparseMatrix SparseMatrix::Transpose() const {
  SparseMatrix t(cols_, rows_);
  t.col_idx_.resize(values_.size());
  t.values_.resize(values_.size());
  // Counting sort of entries by column index.
  for (const std::int32_t c : col_idx_) ++t.row_ptr_[c + 1];
  for (std::int64_t r = 0; r < cols_; ++r) t.row_ptr_[r + 1] += t.row_ptr_[r];
  std::vector<std::int64_t> cursor(t.row_ptr_.begin(), t.row_ptr_.end() - 1);
  for (std::int64_t r = 0; r < rows_; ++r) {
    for (std::int64_t e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e) {
      const std::int64_t pos = cursor[col_idx_[e]]++;
      t.col_idx_[pos] = static_cast<std::int32_t>(r);
      t.values_[pos] = values_[e];
    }
  }
  return t;
}

std::vector<double> SparseMatrix::AbsRowSums() const {
  std::vector<double> sums(rows_, 0.0);
  for (std::int64_t r = 0; r < rows_; ++r) {
    for (std::int64_t e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e) {
      sums[r] += std::abs(values_[e]);
    }
  }
  return sums;
}

std::vector<double> SparseMatrix::AbsColSums() const {
  std::vector<double> sums(cols_, 0.0);
  for (std::size_t e = 0; e < values_.size(); ++e) {
    sums[col_idx_[e]] += std::abs(values_[e]);
  }
  return sums;
}

std::vector<double> SparseMatrix::SquaredRowSums() const {
  std::vector<double> sums(rows_, 0.0);
  for (std::int64_t r = 0; r < rows_; ++r) {
    for (std::int64_t e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e) {
      sums[r] += values_[e] * values_[e];
    }
  }
  return sums;
}

double SparseMatrix::At(std::int64_t row, std::int64_t col) const {
  LINBP_CHECK(row >= 0 && row < rows_ && col >= 0 && col < cols_);
  const auto begin = col_idx_.begin() + row_ptr_[row];
  const auto end = col_idx_.begin() + row_ptr_[row + 1];
  const auto it =
      std::lower_bound(begin, end, static_cast<std::int32_t>(col));
  if (it == end || *it != col) return 0.0;
  return values_[it - col_idx_.begin()];
}

DenseMatrix SparseMatrix::ToDense() const {
  DenseMatrix d(rows_, cols_);
  for (std::int64_t r = 0; r < rows_; ++r) {
    for (std::int64_t e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e) {
      d.At(r, col_idx_[e]) += values_[e];
    }
  }
  return d;
}

bool SparseMatrix::IsSymmetric() const {
  if (rows_ != cols_) return false;
  const SparseMatrix t = Transpose();
  if (t.row_ptr_ != row_ptr_ || t.col_idx_ != col_idx_) return false;
  for (std::size_t e = 0; e < values_.size(); ++e) {
    if (t.values_[e] != values_[e]) return false;
  }
  return true;
}

}  // namespace linbp
