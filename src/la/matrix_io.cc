#include "src/la/matrix_io.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "src/util/check.h"

namespace linbp {

bool WriteDenseMatrix(const DenseMatrix& matrix, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out.precision(17);
  out << "# " << matrix.rows() << " x " << matrix.cols() << " matrix\n";
  for (std::int64_t r = 0; r < matrix.rows(); ++r) {
    for (std::int64_t c = 0; c < matrix.cols(); ++c) {
      out << (c == 0 ? "" : " ") << matrix.At(r, c);
    }
    out << '\n';
  }
  return static_cast<bool>(out);
}

std::optional<DenseMatrix> ReadDenseMatrix(const std::string& path,
                                           std::string* error) {
  LINBP_CHECK(error != nullptr);
  std::ifstream in(path);
  if (!in) {
    *error = path + ": cannot open";
    return std::nullopt;
  }
  std::vector<std::vector<double>> rows;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::vector<double> row;
    double value = 0.0;
    while (fields >> value) row.push_back(value);
    if (!fields.eof()) {
      *error = path + ":" + std::to_string(line_number) + ": bad number";
      return std::nullopt;
    }
    if (row.empty()) continue;
    if (!rows.empty() && row.size() != rows.front().size()) {
      *error = path + ":" + std::to_string(line_number) +
               ": inconsistent row length";
      return std::nullopt;
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) {
    *error = path + ": no rows";
    return std::nullopt;
  }
  DenseMatrix matrix(static_cast<std::int64_t>(rows.size()),
                     static_cast<std::int64_t>(rows.front().size()));
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < rows[r].size(); ++c) {
      matrix.At(static_cast<std::int64_t>(r), static_cast<std::int64_t>(c)) =
          rows[r][c];
    }
  }
  return matrix;
}

}  // namespace linbp
