// Scalar precision selection for the propagation hot path.
//
// The LinBP sweep is a pure SpMM pipeline and memory bandwidth is its
// binding resource, so storing beliefs (and streaming CSR values) as
// float32 halves the bytes moved per sweep. The linearization theory
// tolerates the perturbation when rho(M) < 1 — the iteration contracts
// small errors the same way it contracts the residual — so f32 is an
// accuracy-vs-cost knob, not a correctness risk, for classification
// workloads. Convergence diagnostics (delta norms, rho-hat fits,
// spectral estimates) always accumulate in fp64 regardless of the
// storage precision.

#ifndef LINBP_LA_PRECISION_H_
#define LINBP_LA_PRECISION_H_

#include <string>

namespace linbp {

/// Storage precision of the belief matrices and kernel operands on the
/// solver hot path. kF64 is the default and is bit-identical to the
/// pre-seam code path; kF32 stores beliefs/residuals as float and runs
/// the float kernels, with fp64 accumulation for all norms and
/// diagnostics.
enum class Precision {
  kF64,
  kF32,
};

/// Canonical spelling used by --precision flags and bench records.
inline const char* PrecisionName(Precision p) {
  return p == Precision::kF32 ? "f32" : "f64";
}

/// Parses "f32"/"f64" (the only accepted spellings). Returns false and
/// leaves *out untouched on anything else.
inline bool ParsePrecision(const std::string& text, Precision* out) {
  if (text == "f64") {
    *out = Precision::kF64;
    return true;
  }
  if (text == "f32") {
    *out = Precision::kF32;
    return true;
  }
  return false;
}

}  // namespace linbp

#endif  // LINBP_LA_PRECISION_H_
