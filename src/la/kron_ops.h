// Implicit linear operators over vectorized belief matrices.
//
// The closed form of LinBP (Prop. 7) involves the nk x nk matrix
// M = Hhat (x) A - Hhat^2 (x) D. Materializing it is infeasible for large
// graphs, but every algorithm only needs M * vec(B), which by Roth's column
// lemma equals vec(A*B*Hhat - D*B*Hhat^2) -- one sparse-dense product plus
// two tiny dense products. These operators power the exact convergence
// criteria (Lemma 8) and the Jacobi closed-form solver at scale.

#ifndef LINBP_LA_KRON_OPS_H_
#define LINBP_LA_KRON_OPS_H_

#include <cstdint>
#include <vector>

#include "src/exec/exec_context.h"
#include "src/la/dense_matrix.h"
#include "src/la/sparse_matrix.h"

namespace linbp {

/// Abstract square linear operator y = M x.
class LinearOperator {
 public:
  virtual ~LinearOperator() = default;

  /// Dimension of the (square) operator.
  virtual std::int64_t dim() const = 0;

  /// Computes y = M x. `y` is resized as needed; `x` and `y` must not alias.
  virtual void Apply(const std::vector<double>& x,
                     std::vector<double>* y) const = 0;
};

/// Dense operator wrapper (tests and tiny systems).
class DenseOperator final : public LinearOperator {
 public:
  explicit DenseOperator(DenseMatrix m);
  std::int64_t dim() const override { return m_.rows(); }
  void Apply(const std::vector<double>& x,
             std::vector<double>* y) const override;

 private:
  DenseMatrix m_;
};

/// One LinBP propagation step applied at the matrix level:
///   returns A*B*Hhat        - D*B*Hhat2   if `with_echo`
///   returns A*B*Hhat                      otherwise,
/// where D = diag(degrees). `hhat2` must be Hhat^2 (precomputed by callers
/// so repeated steps do not recompute it). The SpMM and the echo update
/// run on `ctx`; both are per-row-owned, so the result is bit-identical
/// across thread counts.
DenseMatrix LinBpPropagate(const SparseMatrix& adjacency,
                           const std::vector<double>& degrees,
                           const DenseMatrix& hhat, const DenseMatrix& hhat2,
                           const DenseMatrix& beliefs, bool with_echo,
                           const exec::ExecContext& ctx);
inline DenseMatrix LinBpPropagate(const SparseMatrix& adjacency,
                                  const std::vector<double>& degrees,
                                  const DenseMatrix& hhat,
                                  const DenseMatrix& hhat2,
                                  const DenseMatrix& beliefs, bool with_echo) {
  return LinBpPropagate(adjacency, degrees, hhat, hhat2, beliefs, with_echo,
                        exec::ExecContext::Default());
}

/// The echo-cancellation update shared by LinBpPropagate and the
/// backend-generalized propagation in src/engine: subtracts
/// degrees[s] * echo(s, c) from propagated(s, c) in place, chunked over
/// `ctx` with per-row ownership (bit-identical across thread counts).
void SubtractDegreeScaledEcho(const std::vector<double>& degrees,
                              const DenseMatrix& echo,
                              const exec::ExecContext& ctx,
                              DenseMatrix* propagated);

/// Float32-storage variant of the echo cancellation: operands are f32,
/// each element's update is computed in fp64 and rounded once on store.
/// Same per-row ownership, bit-identical across thread counts.
void SubtractDegreeScaledEchoF32(const std::vector<double>& degrees,
                                 const DenseMatrixF32& echo,
                                 const exec::ExecContext& ctx,
                                 DenseMatrixF32* propagated);

/// The implicit operator vec(B) -> vec(A*B*Hhat [- D*B*Hhat^2]).
/// Vectorization is column-major (class-major), matching the paper's vec().
class LinBpOperator final : public LinearOperator {
 public:
  /// `adjacency` must be square (n x n); `degrees` are the weighted degrees
  /// d_s = sum of squared edge weights; `hhat` is the k x k residual
  /// coupling matrix. With `with_echo` false the echo-cancellation term is
  /// dropped (LinBP*). Apply() runs its SpMM on `ctx`.
  LinBpOperator(const SparseMatrix* adjacency, std::vector<double> degrees,
                DenseMatrix hhat, bool with_echo,
                exec::ExecContext ctx = exec::ExecContext::Default());

  std::int64_t dim() const override;
  void Apply(const std::vector<double>& x,
             std::vector<double>* y) const override;

  const DenseMatrix& hhat() const { return hhat_; }
  const DenseMatrix& hhat2() const { return hhat2_; }

 private:
  const SparseMatrix* adjacency_;  // not owned
  std::vector<double> degrees_;
  DenseMatrix hhat_;
  DenseMatrix hhat2_;
  bool with_echo_;
  exec::ExecContext ctx_;
};

/// Converts between the column-major vec() layout of length n*k and the
/// n x k dense belief matrix.
DenseMatrix UnvectorizeBeliefs(const std::vector<double>& v, std::int64_t n,
                               std::int64_t k);
std::vector<double> VectorizeBeliefs(const DenseMatrix& b);

}  // namespace linbp

#endif  // LINBP_LA_KRON_OPS_H_
