// Small dense matrices (row-major, double).
//
// Used throughout for k x k coupling matrices, n x k belief matrices, and
// the materialized nk x nk closed-form systems on small graphs. The class
// deliberately stays minimal: the library's large objects are sparse
// (src/la/sparse_matrix.h); dense matrices here are either tiny (k <= ~10)
// or test-sized.

#ifndef LINBP_LA_DENSE_MATRIX_H_
#define LINBP_LA_DENSE_MATRIX_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace linbp {

/// Row-major dense matrix of doubles.
class DenseMatrix {
 public:
  /// Creates an empty 0 x 0 matrix.
  DenseMatrix() = default;

  /// Creates a `rows` x `cols` matrix of zeros.
  DenseMatrix(std::int64_t rows, std::int64_t cols);

  /// Creates a matrix from nested initializer lists:
  ///   DenseMatrix m{{1, 2}, {3, 4}};
  /// All rows must have the same length.
  DenseMatrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Returns the `dim` x `dim` identity matrix.
  static DenseMatrix Identity(std::int64_t dim);

  /// Returns a matrix with `diag` on the diagonal and zeros elsewhere.
  static DenseMatrix Diagonal(const std::vector<double>& diag);

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }

  double& At(std::int64_t r, std::int64_t c) { return data_[r * cols_ + c]; }
  double At(std::int64_t r, std::int64_t c) const {
    return data_[r * cols_ + c];
  }

  /// Raw row-major storage (size rows * cols).
  const std::vector<double>& data() const { return data_; }
  std::vector<double>& mutable_data() { return data_; }

  /// Returns this + other. Shapes must match.
  DenseMatrix Add(const DenseMatrix& other) const;

  /// Returns this - other. Shapes must match.
  DenseMatrix Sub(const DenseMatrix& other) const;

  /// Returns this * scalar.
  DenseMatrix Scale(double scalar) const;

  /// Returns this * other (standard matrix product). Inner dims must match.
  DenseMatrix Multiply(const DenseMatrix& other) const;

  /// Returns the transpose.
  DenseMatrix Transpose() const;

  /// Returns this with `value` added to every entry.
  DenseMatrix AddScalar(double value) const;

  /// Returns matrix-vector product this * x. x.size() must equal cols().
  std::vector<double> MultiplyVector(const std::vector<double>& x) const;

  /// Maximum absolute difference to `other` (shapes must match).
  double MaxAbsDiff(const DenseMatrix& other) const;

  /// Maximum absolute entry.
  double MaxAbs() const;

  /// True if the matrix equals its transpose up to `tol`.
  bool IsSymmetric(double tol = 1e-12) const;

  /// vec(X): stacks columns into a single vector of length rows * cols
  /// (column-major order, as in the paper's closed form).
  std::vector<double> Vectorize() const;

  /// Inverse of vec: rebuilds a rows x cols matrix from a stacked vector.
  static DenseMatrix FromVectorized(const std::vector<double>& v,
                                    std::int64_t rows, std::int64_t cols);

  /// Kronecker product this (x) other.
  DenseMatrix Kronecker(const DenseMatrix& other) const;

  /// Human-readable rendering for test failure messages.
  std::string ToString(int digits = 6) const;

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace linbp

#endif  // LINBP_LA_DENSE_MATRIX_H_
