#include "src/la/dense_matrix.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "src/util/check.h"

namespace linbp {

DenseMatrix::DenseMatrix(std::int64_t rows, std::int64_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {
  LINBP_CHECK(rows >= 0 && cols >= 0);
}

DenseMatrix::DenseMatrix(
    std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = static_cast<std::int64_t>(rows.size());
  cols_ = rows_ == 0 ? 0 : static_cast<std::int64_t>(rows.begin()->size());
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    LINBP_CHECK(static_cast<std::int64_t>(row.size()) == cols_);
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

DenseMatrix DenseMatrix::Identity(std::int64_t dim) {
  DenseMatrix m(dim, dim);
  for (std::int64_t i = 0; i < dim; ++i) m.At(i, i) = 1.0;
  return m;
}

DenseMatrix DenseMatrix::Diagonal(const std::vector<double>& diag) {
  const auto dim = static_cast<std::int64_t>(diag.size());
  DenseMatrix m(dim, dim);
  for (std::int64_t i = 0; i < dim; ++i) m.At(i, i) = diag[i];
  return m;
}

DenseMatrix DenseMatrix::Add(const DenseMatrix& other) const {
  LINBP_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  DenseMatrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] + other.data_[i];
  }
  return out;
}

DenseMatrix DenseMatrix::Sub(const DenseMatrix& other) const {
  LINBP_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  DenseMatrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] - other.data_[i];
  }
  return out;
}

DenseMatrix DenseMatrix::Scale(double scalar) const {
  DenseMatrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] * scalar;
  }
  return out;
}

DenseMatrix DenseMatrix::Multiply(const DenseMatrix& other) const {
  LINBP_CHECK(cols_ == other.rows_);
  DenseMatrix out(rows_, other.cols_);
  for (std::int64_t i = 0; i < rows_; ++i) {
    for (std::int64_t l = 0; l < cols_; ++l) {
      const double a = At(i, l);
      if (a == 0.0) continue;
      for (std::int64_t j = 0; j < other.cols_; ++j) {
        out.At(i, j) += a * other.At(l, j);
      }
    }
  }
  return out;
}

DenseMatrix DenseMatrix::Transpose() const {
  DenseMatrix out(cols_, rows_);
  for (std::int64_t i = 0; i < rows_; ++i) {
    for (std::int64_t j = 0; j < cols_; ++j) out.At(j, i) = At(i, j);
  }
  return out;
}

DenseMatrix DenseMatrix::AddScalar(double value) const {
  DenseMatrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] + value;
  }
  return out;
}

std::vector<double> DenseMatrix::MultiplyVector(
    const std::vector<double>& x) const {
  LINBP_CHECK(static_cast<std::int64_t>(x.size()) == cols_);
  std::vector<double> y(rows_, 0.0);
  for (std::int64_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (std::int64_t j = 0; j < cols_; ++j) acc += At(i, j) * x[j];
    y[i] = acc;
  }
  return y;
}

double DenseMatrix::MaxAbsDiff(const DenseMatrix& other) const {
  LINBP_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  double max_diff = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    const double d = std::abs(data_[i] - other.data_[i]);
    if (d > max_diff) max_diff = d;
  }
  return max_diff;
}

double DenseMatrix::MaxAbs() const {
  double max_abs = 0.0;
  for (const double v : data_) {
    if (std::abs(v) > max_abs) max_abs = std::abs(v);
  }
  return max_abs;
}

bool DenseMatrix::IsSymmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (std::int64_t i = 0; i < rows_; ++i) {
    for (std::int64_t j = i + 1; j < cols_; ++j) {
      if (std::abs(At(i, j) - At(j, i)) > tol) return false;
    }
  }
  return true;
}

std::vector<double> DenseMatrix::Vectorize() const {
  std::vector<double> v(rows_ * cols_);
  for (std::int64_t j = 0; j < cols_; ++j) {
    for (std::int64_t i = 0; i < rows_; ++i) v[j * rows_ + i] = At(i, j);
  }
  return v;
}

DenseMatrix DenseMatrix::FromVectorized(const std::vector<double>& v,
                                        std::int64_t rows, std::int64_t cols) {
  LINBP_CHECK(static_cast<std::int64_t>(v.size()) == rows * cols);
  DenseMatrix m(rows, cols);
  for (std::int64_t j = 0; j < cols; ++j) {
    for (std::int64_t i = 0; i < rows; ++i) m.At(i, j) = v[j * rows + i];
  }
  return m;
}

DenseMatrix DenseMatrix::Kronecker(const DenseMatrix& other) const {
  DenseMatrix out(rows_ * other.rows_, cols_ * other.cols_);
  for (std::int64_t i = 0; i < rows_; ++i) {
    for (std::int64_t j = 0; j < cols_; ++j) {
      const double a = At(i, j);
      if (a == 0.0) continue;
      for (std::int64_t p = 0; p < other.rows_; ++p) {
        for (std::int64_t q = 0; q < other.cols_; ++q) {
          out.At(i * other.rows_ + p, j * other.cols_ + q) =
              a * other.At(p, q);
        }
      }
    }
  }
  return out;
}

std::string DenseMatrix::ToString(int digits) const {
  std::ostringstream out;
  for (std::int64_t i = 0; i < rows_; ++i) {
    out << (i == 0 ? "[[" : " [");
    for (std::int64_t j = 0; j < cols_; ++j) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.*g", digits, At(i, j));
      out << (j == 0 ? "" : ", ") << buf;
    }
    out << (i + 1 == rows_ ? "]]" : "]\n");
  }
  return out.str();
}

}  // namespace linbp
