// Compressed-sparse-row (CSR) matrices.
//
// The adjacency matrix A of the network is the only large matrix in the
// paper; every algorithm reduces to products of A with skinny dense n x k
// matrices (SpMM) or vectors (SpMV). The CSR layout here is immutable once
// built, which keeps the hot kernels simple and cache-friendly.
//
// The three product kernels accept an exec::ExecContext and run on its
// thread pool over nnz-balanced row blocks (exec::RowPartition). SpMV and
// SpMM assign whole output rows to exactly one block, so their parallel
// results are bit-identical to the serial kernel for every thread count.
// TransposeMultiplyVector scatters into shared output columns and instead
// reduces per-block partial vectors in block order: deterministic for a
// fixed context, equal to serial only up to floating-point rounding. The
// context-free overloads use exec::ExecContext::Default() (LINBP_THREADS).

#ifndef LINBP_LA_SPARSE_MATRIX_H_
#define LINBP_LA_SPARSE_MATRIX_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/exec/exec_context.h"
#include "src/la/dense_matrix.h"
#include "src/la/dense_matrix_f32.h"

namespace linbp {

/// One (row, col, value) coordinate entry used to build a SparseMatrix.
struct Triplet {
  std::int64_t row = 0;
  std::int64_t col = 0;
  double value = 0.0;
};

/// Block-apply SpMM entry point: the serial row-range kernel behind
/// SparseMatrix::MultiplyDense, exposed so out-of-core backends can apply
/// one row block of a CSR matrix without materializing the whole matrix.
/// Computes, for every r in [row_begin, row_end),
///   out[r*k + c] = sum over e in [row_ptr[r], row_ptr[r+1]) of
///                  values[e] * b[col_idx[e]*k + c],
/// with the same k-tiled accumulation order as MultiplyDense, so applying
/// a matrix block by block is bit-identical to the monolithic product.
/// `row_ptr` is indexed by the same row numbering as `out` (callers
/// applying a rebased shard block pass its local row_ptr and an `out`
/// pointer pre-offset to the block's first output row).
///
/// There is exactly one implementation per scalar type: the double-named
/// entry points below and the SparseMatrix::Multiply* methods all land
/// on these templates, so the row-range and whole-matrix paths cannot
/// drift. Instantiated for float and double only.
template <typename Scalar>
void SpmmRowsT(const std::int64_t* row_ptr, const std::int32_t* col_idx,
               const Scalar* values, std::int64_t row_begin,
               std::int64_t row_end, const Scalar* b, std::int64_t k,
               Scalar* out);

/// Block-apply SpMV entry point: the serial row-range kernel behind
/// SparseMatrix::MultiplyVector (stored zero entries skipped). Writes
/// y[r] for r in [row_begin, row_end) under the same conventions as
/// SpmmRowsT.
template <typename Scalar>
void SpmvRowsT(const std::int64_t* row_ptr, const std::int32_t* col_idx,
               const Scalar* values, std::int64_t row_begin,
               std::int64_t row_end, const Scalar* x, Scalar* y);

/// Transpose-SpMV scatter over a row range: for every r in
/// [row_begin, row_end) with x[r] != 0, adds values[e] * x[r] into
/// out[col_idx[e]] (stored zeros skipped). Callers own the reduction
/// discipline; SparseMatrix::TransposeMultiplyVector sums per-block
/// partials in block order.
template <typename Scalar>
void SpmtvRowsT(const std::int64_t* row_ptr, const std::int32_t* col_idx,
                const Scalar* values, std::int64_t row_begin,
                std::int64_t row_end, const Scalar* x, Scalar* out);

extern template void SpmmRowsT<double>(const std::int64_t*,
                                       const std::int32_t*, const double*,
                                       std::int64_t, std::int64_t,
                                       const double*, std::int64_t, double*);
extern template void SpmmRowsT<float>(const std::int64_t*,
                                      const std::int32_t*, const float*,
                                      std::int64_t, std::int64_t, const float*,
                                      std::int64_t, float*);
extern template void SpmvRowsT<double>(const std::int64_t*,
                                       const std::int32_t*, const double*,
                                       std::int64_t, std::int64_t,
                                       const double*, double*);
extern template void SpmvRowsT<float>(const std::int64_t*,
                                      const std::int32_t*, const float*,
                                      std::int64_t, std::int64_t, const float*,
                                      float*);
extern template void SpmtvRowsT<double>(const std::int64_t*,
                                        const std::int32_t*, const double*,
                                        std::int64_t, std::int64_t,
                                        const double*, double*);
extern template void SpmtvRowsT<float>(const std::int64_t*,
                                       const std::int32_t*, const float*,
                                       std::int64_t, std::int64_t,
                                       const float*, float*);

/// Double-named wrappers kept for the (large) existing call surface.
inline void SpmmRows(const std::int64_t* row_ptr, const std::int32_t* col_idx,
                     const double* values, std::int64_t row_begin,
                     std::int64_t row_end, const double* b, std::int64_t k,
                     double* out) {
  SpmmRowsT<double>(row_ptr, col_idx, values, row_begin, row_end, b, k, out);
}
inline void SpmvRows(const std::int64_t* row_ptr, const std::int32_t* col_idx,
                     const double* values, std::int64_t row_begin,
                     std::int64_t row_end, const double* x, double* y) {
  SpmvRowsT<double>(row_ptr, col_idx, values, row_begin, row_end, x, y);
}

/// Immutable CSR sparse matrix of doubles.
class SparseMatrix {
 public:
  /// Creates an empty rows x cols matrix (no stored entries).
  SparseMatrix(std::int64_t rows, std::int64_t cols);

  /// Builds from coordinate triplets. Duplicate (row, col) pairs are summed;
  /// entries that sum to exactly zero are kept (callers that want pruning
  /// should not emit them). Indices must be in range.
  static SparseMatrix FromTriplets(std::int64_t rows, std::int64_t cols,
                                   std::vector<Triplet> triplets);

  /// Adopts already-built CSR arrays without re-sorting (the fast path for
  /// binary snapshot deserialization). The invariants FromTriplets
  /// establishes are checked, not recomputed: row_ptr must be a monotone
  /// array of size rows + 1 ending at col_idx.size(), and every row's
  /// column indices must be strictly increasing and in [0, cols). The
  /// per-row validation sweep fans out on `ctx`. Aborts on violation;
  /// callers deserializing untrusted bytes must validate first (see
  /// src/dataset/snapshot.cc).
  static SparseMatrix FromCsr(std::int64_t rows, std::int64_t cols,
                              std::vector<std::int64_t> row_ptr,
                              std::vector<std::int32_t> col_idx,
                              std::vector<double> values,
                              const exec::ExecContext& ctx =
                                  exec::ExecContext::Default());

  /// Adopts CSR arrays whose invariants the caller has ALREADY verified
  /// (the snapshot loader runs its own error-returning sweep first, so
  /// re-validating here would double the deserialization cost). Only the
  /// array shapes are CHECKed; adopting unverified arrays is undefined
  /// behavior in the kernels.
  static SparseMatrix FromValidatedCsr(std::int64_t rows, std::int64_t cols,
                                       std::vector<std::int64_t> row_ptr,
                                       std::vector<std::int32_t> col_idx,
                                       std::vector<double> values);

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }

  /// Number of stored entries.
  std::int64_t NumNonZeros() const {
    return static_cast<std::int64_t>(values_.size());
  }

  /// CSR internals, exposed for kernels that iterate rows directly.
  const std::vector<std::int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<std::int32_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }

  /// Float32 copy of values(), built lazily on first use and cached for
  /// the matrix's lifetime (the CSR arrays are immutable once built, so
  /// the cache can never go stale — graph mutations construct a new
  /// SparseMatrix). Thread-safe: concurrent first calls may both build,
  /// but exactly one copy is published and all callers see a complete
  /// vector. Costs nnz * 4 bytes while alive.
  std::shared_ptr<const std::vector<float>> values_f32() const;

  /// y = A * x. Zero-weight stored entries are skipped. Bit-identical
  /// across thread counts (per-row ownership).
  std::vector<double> MultiplyVector(const std::vector<double>& x,
                                     const exec::ExecContext& ctx) const;
  std::vector<double> MultiplyVector(const std::vector<double>& x) const {
    return MultiplyVector(x, exec::ExecContext::Default());
  }

  /// y = A^T * x (without materializing the transpose). Parallel runs
  /// reduce per-block partial vectors in block order: deterministic for a
  /// fixed context, equal to the serial result up to rounding.
  std::vector<double> TransposeMultiplyVector(
      const std::vector<double>& x, const exec::ExecContext& ctx) const;
  std::vector<double> TransposeMultiplyVector(
      const std::vector<double>& x) const {
    return TransposeMultiplyVector(x, exec::ExecContext::Default());
  }

  /// C = A * B for a dense row-major B with a small number of columns.
  /// This is the LinBP hot kernel (B is the n x k belief matrix).
  /// Bit-identical across thread counts (per-row ownership). Unlike the
  /// SpMV kernels, stored zero entries are NOT skipped here: the per-entry
  /// branch is not amortized by k in the hottest loop, and belief
  /// operands are always finite.
  DenseMatrix MultiplyDense(const DenseMatrix& b,
                            const exec::ExecContext& ctx) const;
  DenseMatrix MultiplyDense(const DenseMatrix& b) const {
    return MultiplyDense(b, exec::ExecContext::Default());
  }

  /// Float32 C = A * B: same kernel template and blocking as
  /// MultiplyDense, running on the cached f32 value array. Bit-identical
  /// across thread counts (per-row ownership), but NOT bit-comparable to
  /// the fp64 product — parity is a statistical guarantee (see
  /// src/la/precision.h).
  DenseMatrixF32 MultiplyDenseF32(const DenseMatrixF32& b,
                                  const exec::ExecContext& ctx) const;

  /// Float32 y = A * x (stored zeros skipped, like MultiplyVector).
  std::vector<float> MultiplyVectorF32(const std::vector<float>& x,
                                       const exec::ExecContext& ctx) const;

  /// Returns the explicit transpose (CSR of A^T).
  SparseMatrix Transpose() const;

  /// Row sums of |a_ij| (used for the induced infinity norm).
  std::vector<double> AbsRowSums() const;

  /// Column sums of |a_ij| (used for the induced 1-norm).
  std::vector<double> AbsColSums() const;

  /// Row sums of a_ij^2; for a symmetric weighted adjacency matrix this is
  /// the paper's weighted degree d_s = sum of squared edge weights
  /// (Sect. 5.2).
  std::vector<double> SquaredRowSums() const;

  /// Value at (row, col); zero if not stored. O(log deg) per lookup.
  double At(std::int64_t row, std::int64_t col) const;

  /// Materializes the matrix densely (tests and small closed forms only).
  DenseMatrix ToDense() const;

  /// True if the matrix equals its transpose exactly (pattern and values).
  bool IsSymmetric() const;

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::vector<std::int64_t> row_ptr_;
  std::vector<std::int32_t> col_idx_;
  std::vector<double> values_;
  // Lazily-built f32 copy of values_ (see values_f32()). Accessed only
  // through std::atomic_load / std::atomic_compare_exchange_strong so
  // concurrent kernel launches can share one publication.
  mutable std::shared_ptr<const std::vector<float>> values_f32_cache_;
};

}  // namespace linbp

#endif  // LINBP_LA_SPARSE_MATRIX_H_
