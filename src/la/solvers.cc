#include "src/la/solvers.h"

#include <cmath>

#include "src/util/check.h"
#include "src/util/random.h"
#include "src/util/timer.h"

namespace linbp {

PowerIterationResult PowerIteration(const LinearOperator& op,
                                    int max_iterations, double tolerance,
                                    std::uint64_t seed) {
  const std::int64_t n = op.dim();
  PowerIterationResult result;
  if (n == 0) {
    result.converged = true;
    return result;
  }
  Rng rng(seed);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.NextDouble() + 0.1;
  std::vector<double> y;
  double prev_estimate = -1.0;
  for (int it = 1; it <= max_iterations; ++it) {
    op.Apply(x, &y);
    double norm_sq = 0.0;
    for (const double v : y) norm_sq += v * v;
    const double norm = std::sqrt(norm_sq);
    result.iterations = it;
    if (norm == 0.0) {
      // x is in the null space; the dominant eigenvalue estimate is 0.
      result.spectral_radius = 0.0;
      result.converged = true;
      return result;
    }
    for (std::int64_t i = 0; i < n; ++i) x[i] = y[i] / norm;
    result.spectral_radius = norm;
    if (prev_estimate >= 0.0 &&
        std::abs(norm - prev_estimate) <=
            tolerance * std::max(1.0, std::abs(norm))) {
      result.converged = true;
      return result;
    }
    prev_estimate = norm;
  }
  return result;
}

double FitContractionRate(const std::vector<double>& deltas, int window) {
  // ln(delta_i) ~ a + b * i over the trailing window; rho-hat = e^b.
  // Indices keep their position in `deltas` so skipped (non-positive)
  // entries leave gaps instead of compressing the fit.
  const std::size_t begin =
      window > 0 && deltas.size() > static_cast<std::size_t>(window)
          ? deltas.size() - static_cast<std::size_t>(window)
          : 0;
  double n = 0.0, sum_i = 0.0, sum_y = 0.0, sum_ii = 0.0, sum_iy = 0.0;
  for (std::size_t i = begin; i < deltas.size(); ++i) {
    const double d = deltas[i];
    if (!std::isfinite(d) || d <= 0.0) continue;
    const double xi = static_cast<double>(i);
    const double yi = std::log(d);
    n += 1.0;
    sum_i += xi;
    sum_y += yi;
    sum_ii += xi * xi;
    sum_iy += xi * yi;
  }
  if (n < 2.0) return 0.0;
  const double denom = n * sum_ii - sum_i * sum_i;
  if (denom <= 0.0) return 0.0;
  const double slope = (n * sum_iy - sum_i * sum_y) / denom;
  return std::exp(slope);
}

JacobiResult JacobiSolve(const LinearOperator& op, const std::vector<double>& x,
                         int max_iterations, double tolerance,
                         const JacobiIterationObserver& observer,
                         int divergence_patience) {
  LINBP_CHECK(static_cast<std::int64_t>(x.size()) == op.dim());
  JacobiResult result;
  result.solution.assign(x.size(), 0.0);
  std::vector<double> propagated;
  std::vector<double> deltas;
  if (divergence_patience > 0) deltas.reserve(max_iterations);
  int growth_streak = 0;
  for (int it = 1; it <= max_iterations; ++it) {
    WallTimer iteration_timer;
    op.Apply(result.solution, &propagated);
    double delta = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double next = x[i] + propagated[i];
      delta = std::max(delta, std::abs(next - result.solution[i]));
      result.solution[i] = next;
    }
    result.iterations = it;
    if (divergence_patience > 0) {
      growth_streak = delta > result.last_delta && it > 1
                          ? growth_streak + 1
                          : 0;
      deltas.push_back(delta);
    }
    result.last_delta = delta;
    if (observer) observer(it, delta, iteration_timer.Seconds());
    if (delta <= tolerance) {
      result.converged = true;
      break;
    }
    if (divergence_patience > 0 && growth_streak >= divergence_patience &&
        delta > deltas.front() && FitContractionRate(deltas) > 1.0) {
      result.diverged = true;
      break;
    }
  }
  return result;
}

}  // namespace linbp
