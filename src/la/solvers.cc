#include "src/la/solvers.h"

#include <cmath>

#include "src/util/check.h"
#include "src/util/random.h"
#include "src/util/timer.h"

namespace linbp {

PowerIterationResult PowerIteration(const LinearOperator& op,
                                    int max_iterations, double tolerance,
                                    std::uint64_t seed) {
  const std::int64_t n = op.dim();
  PowerIterationResult result;
  if (n == 0) {
    result.converged = true;
    return result;
  }
  Rng rng(seed);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.NextDouble() + 0.1;
  std::vector<double> y;
  double prev_estimate = -1.0;
  for (int it = 1; it <= max_iterations; ++it) {
    op.Apply(x, &y);
    double norm_sq = 0.0;
    for (const double v : y) norm_sq += v * v;
    const double norm = std::sqrt(norm_sq);
    result.iterations = it;
    if (norm == 0.0) {
      // x is in the null space; the dominant eigenvalue estimate is 0.
      result.spectral_radius = 0.0;
      result.converged = true;
      return result;
    }
    for (std::int64_t i = 0; i < n; ++i) x[i] = y[i] / norm;
    result.spectral_radius = norm;
    if (prev_estimate >= 0.0 &&
        std::abs(norm - prev_estimate) <=
            tolerance * std::max(1.0, std::abs(norm))) {
      result.converged = true;
      return result;
    }
    prev_estimate = norm;
  }
  return result;
}

JacobiResult JacobiSolve(const LinearOperator& op, const std::vector<double>& x,
                         int max_iterations, double tolerance,
                         const JacobiIterationObserver& observer) {
  LINBP_CHECK(static_cast<std::int64_t>(x.size()) == op.dim());
  JacobiResult result;
  result.solution.assign(x.size(), 0.0);
  std::vector<double> propagated;
  for (int it = 1; it <= max_iterations; ++it) {
    WallTimer iteration_timer;
    op.Apply(result.solution, &propagated);
    double delta = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double next = x[i] + propagated[i];
      delta = std::max(delta, std::abs(next - result.solution[i]));
      result.solution[i] = next;
    }
    result.iterations = it;
    result.last_delta = delta;
    if (observer) observer(it, delta, iteration_timer.Seconds());
    if (delta <= tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace linbp
