// Iterative solvers: power iteration and the Jacobi fixed-point method.
//
// The paper's convergence theory (Sect. 5.1) rests on the Jacobi method for
// y = (I - M)^-1 x, whose update y <- x + M y converges iff rho(M) < 1
// (Eq. 13). Power iteration estimates rho(M) for the exact criteria of
// Lemma 8 without materializing M.

#ifndef LINBP_LA_SOLVERS_H_
#define LINBP_LA_SOLVERS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/la/kron_ops.h"

namespace linbp {

/// Result of a power-iteration spectral radius estimate.
struct PowerIterationResult {
  double spectral_radius = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Estimates rho(M) via power iteration with a deterministic pseudo-random
/// start vector. Converges for symmetric operators and for non-negative
/// operators (Perron-Frobenius); both cases cover every use in this library.
PowerIterationResult PowerIteration(const LinearOperator& op,
                                    int max_iterations = 200,
                                    double tolerance = 1e-9,
                                    std::uint64_t seed = 12345);

/// Empirical contraction rate rho-hat: least-squares log-linear fit of
/// the per-iteration residual deltas (the slope of ln(delta) over the
/// iteration index, exponentiated). Uses the last `window` entries of
/// `deltas`, skipping non-finite and non-positive values. Asymptotically
/// this estimates rho(M) of the underlying Jacobi update (Eq. 13: the
/// residual contracts by rho(M) per sweep). Returns 0 when fewer than 2
/// usable deltas remain.
double FitContractionRate(const std::vector<double>& deltas, int window = 16);

/// Result of the Jacobi fixed-point solve.
struct JacobiResult {
  std::vector<double> solution;
  int iterations = 0;
  bool converged = false;
  /// The solve aborted early: the delta grew for `divergence_patience`
  /// consecutive iterations with a fitted contraction rate above 1.
  bool diverged = false;
  double last_delta = 0.0;  // max abs change in the final sweep
};

/// Per-iteration telemetry hook for JacobiSolve: (1-based iteration,
/// max abs change, wall seconds of the iteration). Observers only read;
/// the solution is identical with or without one installed. The la layer
/// stays observability-free — callers (e.g. RunFabp) bridge this into
/// their own metrics.
using JacobiIterationObserver = std::function<void(int, double, double)>;

/// Solves y = x + M y by fixed-point iteration from y = 0 (equivalently,
/// y = (I - M)^-1 x when rho(M) < 1). Stops when the max abs change drops
/// below `tolerance` or after `max_iterations` sweeps. With
/// `divergence_patience` > 0 the solve also aborts (result.diverged) once
/// the delta has risen for that many consecutive iterations, exceeds its
/// starting value, and FitContractionRate over the recent window is
/// above 1 — a diverging rho(M) >= 1 system then stops in O(patience)
/// sweeps instead of spinning to `max_iterations`.
JacobiResult JacobiSolve(const LinearOperator& op, const std::vector<double>& x,
                         int max_iterations = 200, double tolerance = 1e-12,
                         const JacobiIterationObserver& observer = {},
                         int divergence_patience = 0);

}  // namespace linbp

#endif  // LINBP_LA_SOLVERS_H_
